package zstream_test

import (
	"strings"
	"testing"

	zstream "repro"
)

// TestPaperQueryCorpus compiles and plans every query the paper presents
// (Queries 1-8, adapted to concrete constants where the paper uses
// symbolic x/y/v thresholds) and checks structural properties of each
// compiled plan.
func TestPaperQueryCorpus(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		classes int
		explain []string // fragments that must appear in the plan
	}{
		{
			name: "Query1-sequence-with-equality",
			src: `PATTERN T1;T2;T3
				WHERE T1.name = T3.name
				AND T2.name = 'Google'
				AND T1.price > 1.05 * T2.price
				AND T3.price < 0.97 * T2.price
				WITHIN 10 secs
				RETURN T1, T2, T3`,
			classes: 3,
			explain: []string{"seq", "leaf"},
		},
		{
			name: "Query2-negation",
			src: `PATTERN T1; !T2; T3
				WHERE T1.name = T3.name
				AND T2.name = T3.name
				AND T1.price > 100
				AND T2.price < 100
				AND T3.price > 120
				WITHIN 10 secs
				RETURN T1, T3`,
			classes: 3,
			explain: []string{"nseq"},
		},
		{
			name: "Query3-kleene-aggregate",
			src: `PATTERN T1;T2^5;T3
				WHERE T1.name = T3.name
				WHERE T2.name = 'Google'
				AND sum(T2.volume) > 1000
				AND T3.price > 1.2 * T1.price
				WITHIN 10 secs
				RETURN T1, sum(T2.volume), T3`,
			classes: 3,
			explain: []string{"kseq(^5)"},
		},
		{
			name: "Query4-selectivity",
			src: `PATTERN IBM;Sun;Oracle
				WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle'
				AND IBM.price > Sun.price
				WITHIN 200 units`,
			classes: 3,
			explain: []string{"seq"},
		},
		{
			name: "Query5-rates",
			src: `PATTERN IBM;Sun;Oracle
				WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle'
				WITHIN 200 units`,
			classes: 3,
			explain: []string{"seq"},
		},
		{
			name: "Query6-four-classes",
			src: `PATTERN IBM;Sun;Oracle;Google
				WHERE IBM.name='IBM' AND Sun.name='Sun'
				AND Oracle.name='Oracle' AND Google.name='Google'
				AND Oracle.price > Sun.price
				AND Oracle.price > Google.price
				WITHIN 100 units`,
			classes: 4,
			explain: []string{"seq"},
		},
		{
			name: "Query7-negation-no-preds",
			src: `PATTERN IBM; !Sun; Oracle
				WHERE IBM.name='IBM' AND Sun.name='Sun' AND Oracle.name='Oracle'
				WITHIN 200 units`,
			classes: 3,
			explain: []string{"nseq"},
		},
		{
			name: "Query8-weblog",
			src: `PATTERN P; J; C
				WHERE P.desc='publication' AND J.desc='project' AND C.desc='courses'
				AND P.ip = J.ip = C.ip
				WITHIN 10 hours`,
			classes: 3,
			explain: []string{"seq"},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			q, err := zstream.Compile(c.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if got := len(q.Classes()); got != c.classes {
				t.Errorf("classes = %d, want %d", got, c.classes)
			}
			eng, err := zstream.NewEngine(q)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			exp := eng.Explain()
			for _, frag := range c.explain {
				if !strings.Contains(exp, frag) {
					t.Errorf("plan lacks %q:\n%s", frag, exp)
				}
			}
			cost, shape, err := q.EstimateCost()
			if err != nil || cost <= 0 || shape == "" {
				t.Errorf("estimate: cost=%v shape=%q err=%v", cost, shape, err)
			}
			// every query must accept a basic event without panicking
			eng.Process(zstream.NewStock(1, 1, 1, "IBM", 100, 100))
			eng.Flush()
		})
	}
}
