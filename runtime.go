package zstream

import (
	"repro/internal/runtime"
)

// QueryID identifies a query registered with a Runtime.
type QueryID = runtime.QueryID

// RuntimeStats aggregates runtime counters: shard count, live queries,
// events ingested, matches delivered, and the summed per-shard engine
// counters.
type RuntimeStats = runtime.Stats

// Errors returned by Runtime methods.
var (
	// ErrClosed is returned by Ingest/Register/Unregister after Close.
	ErrClosed = runtime.ErrClosed
	// ErrOutOfOrder is returned by Ingest for a timestamp that precedes an
	// already ingested one.
	ErrOutOfOrder = runtime.ErrOutOfOrder
	// ErrUnknownQuery is returned by Unregister for an id that is not live.
	ErrUnknownQuery = runtime.ErrUnknownQuery
)

// RuntimeOption configures a Runtime.
type RuntimeOption func(*runtime.Config)

// WithShards sets the number of worker goroutines (stream partitions);
// default GOMAXPROCS.
func WithShards(n int) RuntimeOption {
	return func(c *runtime.Config) { c.Shards = n }
}

// WithPartitionBy names the event attribute whose value routes an event to
// a shard (default "name", the paper's stock symbol).
func WithPartitionBy(attr string) RuntimeOption {
	return func(c *runtime.Config) { c.PartitionBy = attr }
}

// WithIngestBatch sets how many events Ingest accumulates before handing
// batches to the workers (default 256). Smaller batches lower match
// latency; larger batches raise throughput.
func WithIngestBatch(n int) RuntimeOption {
	return func(c *runtime.Config) { c.BatchSize = n }
}

// WithQueueDepth sets the per-worker input queue depth in batches (default
// 8); when a worker falls that far behind, Ingest blocks (backpressure).
func WithQueueDepth(n int) RuntimeOption {
	return func(c *runtime.Config) { c.QueueLen = n }
}

// WithNaiveFanout disables the predicate-indexed multi-query router, so
// every ingested event is delivered to every registered query's engine.
// The router is semantics-preserving and strictly faster on parameterized
// standing-query workloads; this knob exists for differential testing and
// as an escape hatch.
func WithNaiveFanout() RuntimeOption {
	return func(c *runtime.Config) { c.NaiveFanout = true }
}

// WithRangeDispatch enables or disables the router's generation-2
// sorted-threshold dispatch for range atoms (`attr > const` and friends;
// default enabled). Disabled, range atoms fall back to interned residual
// evaluation — one eval per distinct constant per event. Dispatch is
// semantics-preserving, so WithRangeDispatch(false) exists for
// differential testing and benchmarking the win.
func WithRangeDispatch(enabled bool) RuntimeOption {
	return func(c *runtime.Config) { c.NoRangeDispatch = !enabled }
}

// WithSubplanSharing enables or disables cross-query execution sharing
// (default enabled): textually identical queries are deduplicated onto one
// engine with match fan-out, and queries whose canonical class prefixes
// coincide share one per-shard materialization of the prefix joins instead
// of each buffering and assembling them privately. Sharing is semantics-
// preserving — the match stream is byte-identical with it on or off — so
// WithSubplanSharing(false) exists for differential testing, benchmarking
// the win, and as an escape hatch.
func WithSubplanSharing(enabled bool) RuntimeOption {
	return func(c *runtime.Config) { c.NoSharing = !enabled }
}

// Runtime executes many registered queries concurrently over one
// partitioned event stream. Events ingested into the Runtime are sharded
// by a partition-key attribute across worker goroutines, each owning a
// private engine per query and shard; the per-shard match streams are
// merged back into a single end-time-ordered output and delivered to each
// query's OnMatch callback from one goroutine.
//
// Sharding gives every query partition-local semantics: a match combines
// only events whose partition keys landed in the same shard. For queries
// whose predicates equate the key across all classes (the common CEP
// shape — "per symbol", "per IP", "per user"), the output is identical to
// a single Engine over the whole stream, for any shard count; see
// repro/internal/runtime for the full contract.
type Runtime struct {
	rt *runtime.Runtime
}

// NewRuntime creates a runtime and starts its workers.
func NewRuntime(opts ...RuntimeOption) *Runtime {
	var cfg runtime.Config
	for _, o := range opts {
		o(&cfg)
	}
	return &Runtime{rt: runtime.New(cfg)}
}

// Register adds a compiled query, configured with the same options as
// NewEngine (OnMatch, WithPlan, WithAdaptation, ...), and returns its id.
// Engine construction errors are reported here, before the query is
// installed anywhere. The query observes events ingested after Register
// returns; its OnMatch callback runs on the merger goroutine, in end-time
// order merged globally across all queries and shards.
func (r *Runtime) Register(q *Query, opts ...Option) (QueryID, error) {
	ec := engineConfig{cfg: defaultCoreConfig()}
	for _, o := range opts {
		o(&ec)
	}
	return r.rt.Register(q.q, ec.cfg, ec.emit)
}

// Unregister removes a live query; in-window partial matches are
// discarded, already-emitted matches still deliver.
func (r *Runtime) Unregister(id QueryID) error { return r.rt.Unregister(id) }

// Ingest feeds one event to every registered query's shard. Timestamps
// must be non-decreasing. Ingest blocks when workers fall behind
// (backpressure) and must not reuse the event afterwards.
func (r *Runtime) Ingest(ev *Event) error { return r.rt.Ingest(ev) }

// Close flushes all engines, delivers every remaining match, and stops the
// workers. Idempotent; the runtime rejects further use with ErrClosed.
func (r *Runtime) Close() error { return r.rt.Close() }

// Stats returns aggregated counters; safe to call while ingesting.
func (r *Runtime) Stats() RuntimeStats { return r.rt.Stats() }
