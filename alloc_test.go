// Allocation regression tests for the zero-allocation hot path: steady-
// state ingest must not allocate at all, and an assembly round (including
// match emission) must stay under a fixed per-event allocation budget.
// These are the programmatic counterpart of the CI bench gate's allocs/op
// comparison against BENCH_*.json.
package zstream_test

import (
	"fmt"
	"testing"

	zstream "repro"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/router"
	"repro/internal/workload"
)

// allocStream generates a monotone stock stream long enough for a warmup
// phase plus testing.AllocsPerRun's extra invocation.
func allocStream(n int, sel float64) []*event.Event {
	return workload.GenStocks(workload.StockSpec{
		N: n, Seed: 8, Names: []string{"IBM", "Sun", "Oracle"},
		Weights:    []float64{1, 1, 1},
		FixedPrice: map[string]float64{"Sun": workload.SelectivityPrice(sel)},
	})
}

// TestIngestSteadyStateZeroAllocs drives an engine past its warmup (pool
// fill, buffer growth, compaction) on a match-free workload, then asserts
// that processing an event — including the assembly rounds that fire and
// evict along the way — performs zero heap allocations.
func TestIngestSteadyStateZeroAllocs(t *testing.T) {
	q := query.MustParse(`
		PATTERN IBM; Sun
		WHERE IBM.name = 'IBM' AND Sun.name = 'Sun' AND IBM.price > Sun.price + 1000000
		WITHIN 200 units`)
	eng, err := core.NewEngine(q, core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	events := allocStream(45000, 0.5)
	warm := 30000
	for _, ev := range events[:warm] {
		eng.Process(ev)
	}
	i := warm
	avg := testing.AllocsPerRun(10000, func() {
		eng.Process(events[i])
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state ingest allocates %.2f allocs/event, want 0", avg)
	}
	if m := eng.Snapshot().Matches; m != 0 {
		t.Fatalf("workload expected to be match-free, got %d matches", m)
	}
}

// TestIngestSteadyStateZeroAllocsWithMatches is the stronger variant: the
// workload produces matches, but with a nil emit callback (counting only)
// the whole ingest+assembly+drain cycle still runs allocation-free —
// output records are pooled and recycled as the root buffer drains.
func TestIngestSteadyStateZeroAllocsWithMatches(t *testing.T) {
	q := query.MustParse(`
		PATTERN IBM; Sun
		WHERE IBM.name = 'IBM' AND Sun.name = 'Sun' AND IBM.price > Sun.price
		WITHIN 50 units`)
	eng, err := core.NewEngine(q, core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	events := allocStream(45000, 0.5)
	warm := 30000
	for _, ev := range events[:warm] {
		eng.Process(ev)
	}
	before := eng.Snapshot().Matches
	i := warm
	avg := testing.AllocsPerRun(10000, func() {
		eng.Process(events[i])
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state ingest+assembly allocates %.2f allocs/event, want 0", avg)
	}
	if after := eng.Snapshot().Matches; after == before {
		t.Fatal("measured region produced no matches; test is vacuous")
	}
}

// TestAssemblyAllocBudget bounds the allocation cost of the full serving
// path — ingest, assembly, match materialization through a live emit
// callback — on the Figure 8 workload. Materialized matches are real
// output and must allocate, but the per-event average has to stay far
// below the pre-pooling cost (~11 allocs/event on this workload).
func TestAssemblyAllocBudget(t *testing.T) {
	q := query.MustParse(`
		PATTERN IBM; Sun
		WHERE IBM.name = 'IBM' AND Sun.name = 'Sun' AND Sun.price > IBM.price + 90
		WITHIN 200 units`)
	var matches uint64
	eng, err := core.NewEngine(q, core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 256},
		func(*core.Match) { matches++ })
	if err != nil {
		t.Fatal(err)
	}
	// Uniform random prices (no pinned selectivity): the +90 constraint
	// makes matches rare-but-present.
	events := workload.GenStocks(workload.StockSpec{
		N: 45000, Seed: 8, Names: []string{"IBM", "Sun", "Oracle"},
		Weights: []float64{1, 1, 1},
	})
	warm := 30000
	for _, ev := range events[:warm] {
		eng.Process(ev)
	}
	matches = 0
	i := warm
	const runs = 10000
	avg := testing.AllocsPerRun(runs, func() {
		eng.Process(events[i])
		i++
	})
	if matches == 0 {
		t.Fatal("measured region produced no matches; test is vacuous")
	}
	// The steady-state path itself is allocation-free (see the tests
	// above); what remains is materializing matches for the emit callback,
	// which is real output. Allow a fixed number of allocations per
	// emitted match plus a small per-event slack.
	matchRate := float64(matches) / float64(runs+1) // AllocsPerRun runs f once extra
	budget := 0.25 + 10*matchRate
	if avg > budget {
		t.Fatalf("serving path allocates %.2f allocs/event, budget %.2f (%.3f matches/event)", avg, budget, matchRate)
	}
}

// TestRouterDeliverySteadyStateZeroAllocs pins the PR 3 invariant: the
// routed delivery path — classify a batch, deliver per-engine mini-batches
// through the pre-admitted fast path — allocates nothing per event in
// steady state, just like direct Process ingest.
func TestRouterDeliverySteadyStateZeroAllocs(t *testing.T) {
	r := router.New()
	engines := map[int64]*core.Engine{}
	for i := 0; i < 16; i++ {
		q := query.MustParse(fmt.Sprintf(`
			PATTERN A; B
			WHERE A.name = 'S%02d' AND A.price > 50 AND B.name = 'S%02d'
			  AND B.price < A.price - 1000000
			WITHIN 200 units`, i%8, i%8))
		eng, err := core.NewEngine(q, core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 64}, nil)
		if err != nil {
			t.Fatal(err)
		}
		engines[int64(i)] = eng
		r.Add(int64(i), q.Info, eng)
	}
	names := make([]string, 8)
	weights := make([]float64, 8)
	for i := range names {
		names[i] = fmt.Sprintf("S%02d", i)
		weights[i] = 1
	}
	events := workload.GenStocks(workload.StockSpec{N: 45000, Seed: 5, Names: names, Weights: weights})
	deliver := func(evs []*event.Event) {
		for _, sb := range r.Route(evs) {
			eng := sb.Payload.(*core.Engine)
			for _, d := range sb.Events {
				eng.ProcessAdmitted(d.Ev, d.Mask)
			}
		}
	}
	warm := 30000
	deliver(events[:warm])
	i := warm
	avg := testing.AllocsPerRun(10000, func() {
		deliver(events[i : i+1])
		i++
	})
	if avg != 0 {
		t.Fatalf("routed steady-state delivery allocates %.2f allocs/event, want 0", avg)
	}
	var processed uint64
	for _, eng := range engines {
		processed += eng.Snapshot().Events
	}
	if processed == 0 {
		t.Fatal("no engine received events; test is vacuous")
	}
}

// TestRuntimeIngestWALOffZeroAllocs pins the durability plane's zero-cost
// guarantee for runtimes that never opted in: with no WAL configured, the
// sharded runtime's steady-state ingest path — shard hash, pooled batch
// append, channel flush, worker dispatch, heartbeat merge — allocates
// nothing per event. Every WAL hook on the hot path hides behind one nil
// check.
func TestRuntimeIngestWALOffZeroAllocs(t *testing.T) {
	rt := zstream.NewRuntime(zstream.WithShards(2), zstream.WithIngestBatch(64))
	cq := zstream.MustCompile(`
		PATTERN A; B
		WHERE A.name = B.name AND B.price > A.price + 1000000
		WITHIN 100 units`)
	if _, err := rt.Register(cq); err != nil {
		t.Fatal(err)
	}
	events := allocStream(45000, 0.5)
	warm := 30000
	for _, ev := range events[:warm] {
		if err := rt.Ingest(ev); err != nil {
			t.Fatal(err)
		}
	}
	i := warm
	avg := testing.AllocsPerRun(10000, func() {
		if err := rt.Ingest(events[i]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("WAL-off runtime ingest allocates %.2f allocs/event, want 0", avg)
	}
	if st := rt.Stats(); st.WALEnabled || st.EventsIngested == 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}
