// Package zstream is a cost-based composite-event (CEP) query processor,
// a from-scratch Go implementation of "ZStream: A Cost-based Query
// Processor for Adaptively Detecting Composite Events" (Mei & Madden,
// SIGMOD 2009).
//
// ZStream evaluates PATTERN / WHERE / WITHIN / RETURN queries over event
// streams using tree-shaped physical plans whose operators unify sequence,
// conjunction, disjunction, negation and Kleene closure as variants of a
// join. A cost model (§5.1 of the paper) with a dynamic-programming plan
// search (Algorithm 5) picks the cheapest operator ordering, and the
// engine can re-plan on the fly as stream statistics drift (§5.3).
//
// Quick start:
//
//	q, err := zstream.Compile(`
//	    PATTERN T1; T2; T3
//	    WHERE T1.name = T3.name
//	      AND T2.name = 'Google'
//	      AND T1.price > 1.05 * T2.price
//	      AND T3.price < 0.97 * T2.price
//	    WITHIN 10 secs
//	    RETURN T1, T2, T3`)
//	eng, err := zstream.NewEngine(q, zstream.OnMatch(func(m *zstream.Match) {
//	    fmt.Println(m.Fields)
//	}))
//	for _, ev := range ticks {
//	    eng.Process(ev)
//	}
//	eng.Flush()
//
// # Concurrent multi-query serving
//
// An Engine runs one query on one goroutine. A Runtime hosts many
// registered queries at once and uses every core: it shards the input
// stream by a partition-key attribute across worker goroutines (each
// owning a private per-shard engine for every query), applies
// backpressure through bounded batched queues, and heap-merges the
// per-shard match streams back into a single end-time-ordered output.
// Queries can be registered and unregistered while the stream is live:
//
//	rt := zstream.NewRuntime(zstream.WithShards(8))
//	id, err := rt.Register(q, zstream.OnMatch(func(m *zstream.Match) { ... }))
//	for _, ev := range ticks {
//	    rt.Ingest(ev)
//	}
//	rt.Close()
//
// Sharded evaluation is partition-local: for queries that equate the
// partition key across all event classes (per-symbol, per-IP, ... — the
// common CEP shape), the merged output is identical to a single Engine
// over the whole stream; see the Runtime type for the exact contract.
package zstream

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/event"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/query"
)

// Event is one primitive stream event (timestamp plus typed attributes).
type Event = event.Event

// Value is a typed attribute value.
type Value = event.Value

// Schema names the attributes of a stream's events.
type Schema = event.Schema

// Match is one detected composite event, with the RETURN-clause fields.
type Match = core.Match

// Field is one RETURN-clause output of a match.
type Field = core.Field

// Stats reports engine counters: matches emitted, assembly rounds run,
// plan switches performed, peak live-buffer bytes and events processed.
type Stats = core.EngineStats

// Re-exported event constructors.
var (
	// NewSchema builds a schema; attribute order defines value order.
	NewSchema = event.NewSchema
	// MustSchema is NewSchema panicking on error.
	MustSchema = event.MustSchema
	// NewEvent builds an event for a schema at a timestamp.
	NewEvent = event.New
	// Float builds a float attribute value; Int and Str build integer and
	// string values.
	Float = event.Float
	// Int builds an integer attribute value.
	Int = event.Int
	// Str builds a string attribute value.
	Str = event.Str
	// NewStock builds an event with the paper's stock schema
	// (id, name, price, volume).
	NewStock = event.NewStock
)

// Query is a compiled CEP query.
type Query struct {
	q *query.Query
}

// Compile parses, normalizes (§5.2.1 rewrites) and analyzes a query.
func Compile(src string) (*Query, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// MustCompile is Compile panicking on error.
func MustCompile(src string) *Query {
	q, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return q
}

// String renders the normalized query text.
func (q *Query) String() string { return q.q.String() }

// Window returns the WITHIN constraint in ticks.
func (q *Query) Window() int64 { return q.q.Within }

// Classes returns the event-class aliases in temporal order.
func (q *Query) Classes() []string {
	var out []string
	for _, c := range q.q.Info.Classes {
		out = append(out, c.Alias)
	}
	return out
}

// Plan selects the initial plan strategy.
type Plan int

const (
	// PlanOptimal searches for the cheapest tree with Algorithm 5.
	PlanOptimal Plan = iota
	// PlanLeftDeep forces the left-deep tree.
	PlanLeftDeep
	// PlanRightDeep forces the right-deep tree.
	PlanRightDeep
)

// Option configures an Engine.
type Option func(*engineConfig)

type engineConfig struct {
	cfg  core.Config
	emit func(*Match)
}

// defaultCoreConfig is the baseline engine configuration shared by
// NewEngine and Runtime.Register.
func defaultCoreConfig() core.Config {
	return core.Config{Strategy: core.StrategyOptimal, UseHash: true}
}

// OnMatch installs the match callback; matches arrive in end-time order.
func OnMatch(f func(*Match)) Option {
	return func(c *engineConfig) { c.emit = f }
}

// WithPlan selects the initial plan strategy (default PlanOptimal).
func WithPlan(p Plan) Option {
	return func(c *engineConfig) {
		switch p {
		case PlanLeftDeep:
			c.cfg.Strategy = core.StrategyLeftDeep
		case PlanRightDeep:
			c.cfg.Strategy = core.StrategyRightDeep
		default:
			c.cfg.Strategy = core.StrategyOptimal
		}
	}
}

// WithBatchSize sets the batch-iterator batch size (§4.3; default 64).
func WithBatchSize(n int) Option {
	return func(c *engineConfig) { c.cfg.BatchSize = n }
}

// WithAdaptation enables on-the-fly re-planning (§5.3): statistics are
// sampled at the leaves, and when they drift the plan search re-runs and
// installs a cheaper plan without losing or duplicating matches.
func WithAdaptation() Option {
	return func(c *engineConfig) { c.cfg.Adaptive = true }
}

// WithoutHashing disables hash-based equality predicates (§5.2.2), which
// are on by default.
func WithoutHashing() Option {
	return func(c *engineConfig) { c.cfg.UseHash = false }
}

// WithNegationOnTop forces negation to run as a final filter instead of
// the NSEQ push-down (§4.4.2); for experiments.
func WithNegationOnTop() Option {
	return func(c *engineConfig) { c.cfg.Negation = plan.NegTop }
}

// WithMaxDisorder tolerates events arriving up to d ticks out of order by
// buffering them in a reordering stage (§4.1).
func WithMaxDisorder(d int64) Option {
	return func(c *engineConfig) { c.cfg.MaxDisorder = d }
}

// Engine executes one query over a stream.
type Engine struct {
	eng *core.Engine
}

// NewEngine builds an execution engine for q.
func NewEngine(q *Query, opts ...Option) (*Engine, error) {
	ec := engineConfig{cfg: defaultCoreConfig()}
	for _, o := range opts {
		o(&ec)
	}
	eng, err := core.NewEngine(q.q, ec.cfg, ec.emit)
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng}, nil
}

// Process feeds one event. Events must arrive in non-decreasing timestamp
// order unless WithMaxDisorder is set. Events carrying a pre-assigned,
// strictly increasing Seq are adopted untouched (and may be shared with
// other engines); events with Seq == 0 are stamped in place, so the caller
// must not reuse them afterwards.
func (e *Engine) Process(ev *Event) { e.eng.Process(ev) }

// Flush forces a final assembly round, confirming trailing negations and
// closures and emitting all remaining matches.
func (e *Engine) Flush() { e.eng.Flush() }

// Stats returns the engine counters.
func (e *Engine) Stats() Stats { return e.eng.Snapshot() }

// Explain renders the current physical plan, one operator per line.
func (e *Engine) Explain() string { return e.eng.Plan().Explain() }

// Run consumes events from in and sends matches on the returned channel,
// which is closed after in closes and the final flush completes. Matches
// are sent in end-time order (the same order OnMatch observes; an OnMatch
// option passed here is overridden by the channel send). The engine is
// constructed before the consuming goroutine starts, so a bad query or
// option combination is reported synchronously as an error and no
// goroutine is leaked. The engine must not be used concurrently elsewhere.
func (q *Query) Run(in <-chan *Event, opts ...Option) (<-chan *Match, error) {
	out := make(chan *Match, 64)
	// Copy rather than append in place: appending could overwrite a
	// caller-owned backing array shared with other option slices.
	all := make([]Option, 0, len(opts)+1)
	all = append(all, opts...)
	all = append(all, OnMatch(func(m *Match) { out <- m }))
	eng, err := NewEngine(q, all...)
	if err != nil {
		return nil, err
	}
	go func() {
		defer close(out)
		for ev := range in {
			eng.Process(ev)
		}
		eng.Flush()
	}()
	return out, nil
}

// EstimateCost runs the cost model (§5.1) for q under uniform default
// statistics and returns the optimal plan's estimated cost and its shape
// rendered as a parenthesized unit tree.
func (q *Query) EstimateCost() (costEstimate float64, shape string, err error) {
	st := cost.UniformStats(q.q.Info, q.q.Within, 1)
	r, err := optimizer.Optimize(q.q, st, true)
	if err != nil {
		return 0, "", err
	}
	return r.Estimate.Cost, r.Shape.String(), nil
}
