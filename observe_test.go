package zstream

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// get issues one request against the observability handler and returns the
// status code and body.
func get(t *testing.T, rt *Runtime, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	NewObservabilityHandler(rt).ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	b, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, string(b)
}

func TestObservabilityHandler(t *testing.T) {
	rt := NewRuntime(WithShards(2))
	defer rt.Close()
	q := MustCompile(`PATTERN T1; T2
		WHERE T1.name = T2.name AND T1.price > 100
		WITHIN 10 RETURN T1, T2`)
	id, err := rt.Register(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		name := "IBM"
		if i%2 == 0 {
			name = "SUN"
		}
		if err := rt.Ingest(NewStock(0, int64(i), int64(i), name, float64(90+i%20), 1)); err != nil {
			t.Fatal(err)
		}
	}

	code, body := get(t, rt, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		"zstream_events_ingested_total 200",
		"zstream_live_queries 1",
		`zstream_query_records_in_total{query="` + strconv.FormatInt(int64(id), 10) + `"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, rt, "/explain")
	if code != 200 {
		t.Fatalf("/explain: status %d", code)
	}
	var ids []QueryID
	if err := json.Unmarshal([]byte(body), &ids); err != nil {
		t.Fatalf("/explain: %v in %q", err, body)
	}
	if len(ids) != 1 || ids[0] != id {
		t.Errorf("/explain ids = %v, want [%d]", ids, id)
	}

	code, body = get(t, rt, "/explain/"+strconv.FormatInt(int64(id), 10))
	if code != 200 {
		t.Fatalf("/explain/{id}: status %d: %s", code, body)
	}
	var doc ExplainDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != ExplainVersion {
		t.Errorf("version = %q, want %q", doc.Version, ExplainVersion)
	}
	if doc.QueryID != int64(id) || len(doc.Plans) == 0 {
		t.Errorf("document incomplete: id=%d plans=%d", doc.QueryID, len(doc.Plans))
	}

	if code, _ := get(t, rt, "/explain/999"); code != 404 {
		t.Errorf("/explain/999: status %d, want 404", code)
	}
	if code, _ := get(t, rt, "/explain/bogus"); code != 400 {
		t.Errorf("/explain/bogus: status %d, want 400", code)
	}
}

// TestEngineExplainDoc covers the standalone-engine document: live counters
// appear after processing, and the cost section reflects the configured
// strategy.
func TestEngineExplainDoc(t *testing.T) {
	q := MustCompile(`PATTERN T1; T2
		WHERE T1.name = T2.name AND T1.price > 100
		WITHIN 10 RETURN T1, T2`)
	eng, err := NewEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		eng.Process(NewStock(0, int64(i), int64(i), "IBM", float64(95+i%10), 1))
	}
	eng.Flush()
	doc := eng.ExplainDoc()
	if doc.Version != ExplainVersion || doc.QueryID != 0 {
		t.Errorf("envelope = %q id=%d", doc.Version, doc.QueryID)
	}
	if doc.Strategy.Strategy != "optimal" || !doc.Strategy.UseHash {
		t.Errorf("strategy = %+v", doc.Strategy)
	}
	if len(doc.Plans) != 1 || doc.Plans[0].Tree == nil {
		t.Fatalf("plans = %+v", doc.Plans)
	}
	if doc.Plans[0].Tree.In == 0 && doc.Plans[0].Tree.Out == 0 {
		t.Error("no live counters after 100 events")
	}
	if doc.Sharing != nil || doc.Router != nil {
		t.Error("standalone document must omit sharing and router sections")
	}
	if !strings.Contains(doc.Text, "leaf(0)") {
		t.Errorf("text rendering incomplete: %q", doc.Text)
	}
}
