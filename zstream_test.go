package zstream_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	zstream "repro"
)

func tick(seq uint64, ts int64, name string, price float64) *zstream.Event {
	return zstream.NewStock(seq, ts, int64(seq), name, price, 100)
}

func TestCompileErrors(t *testing.T) {
	if _, err := zstream.Compile("nonsense"); err == nil {
		t.Error("bad query compiled")
	}
	if _, err := zstream.Compile("PATTERN !A WITHIN 5"); err == nil {
		t.Error("lone negation compiled")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic")
		}
	}()
	zstream.MustCompile("nope")
}

func TestQueryAccessors(t *testing.T) {
	q := zstream.MustCompile("PATTERN A;B;C WITHIN 10 secs")
	if q.Window() != 10_000 {
		t.Errorf("window = %d", q.Window())
	}
	if got := q.Classes(); len(got) != 3 || got[0] != "A" {
		t.Errorf("classes = %v", got)
	}
	if !strings.Contains(q.String(), "A ; B ; C") {
		t.Errorf("string = %q", q.String())
	}
}

func TestQuery1EndToEnd(t *testing.T) {
	// the paper's Query 1 with x=5%, y=3%: a stock first 5% above the
	// Google price, then 3% below it, within 10 seconds.
	q := zstream.MustCompile(`
		PATTERN T1; T2; T3
		WHERE T1.name = T3.name
		  AND T2.name = 'Google'
		  AND T1.price > 1.05 * T2.price
		  AND T3.price < 0.97 * T2.price
		WITHIN 10 secs
		RETURN T1, T2, T3`)
	var matches []*zstream.Match
	eng, err := zstream.NewEngine(q, zstream.OnMatch(func(m *zstream.Match) {
		matches = append(matches, m)
	}))
	if err != nil {
		t.Fatal(err)
	}
	eng.Process(tick(1, 1000, "IBM", 110)) // T1 candidate
	eng.Process(tick(2, 2000, "Google", 100))
	eng.Process(tick(3, 3000, "IBM", 95)) // T3: 95 < 97
	eng.Process(tick(4, 4000, "Sun", 96)) // name mismatch with T1
	eng.Flush()

	if len(matches) != 1 {
		t.Fatalf("matches = %d", len(matches))
	}
	m := matches[0]
	if m.Start != 1000 || m.End != 3000 {
		t.Errorf("interval [%d,%d]", m.Start, m.End)
	}
	if len(m.Fields) != 3 || m.Fields[0].Events[0].Get("name").S != "IBM" {
		t.Errorf("fields wrong: %+v", m.Fields)
	}
}

func TestQuery2NegationEndToEnd(t *testing.T) {
	// Query 2: price rises 20% above threshold 100 with no dip below 100
	// in between.
	q := zstream.MustCompile(`
		PATTERN T1; !T2; T3
		WHERE T1.name = T2.name = T3.name
		  AND T1.price > 100
		  AND T2.price < 100
		  AND T3.price > 120
		WITHIN 10 secs
		RETURN T1, T3`)
	var got []*zstream.Match
	eng, err := zstream.NewEngine(q, zstream.OnMatch(func(m *zstream.Match) { got = append(got, m) }))
	if err != nil {
		t.Fatal(err)
	}
	eng.Process(tick(1, 1000, "IBM", 105))
	eng.Process(tick(2, 2000, "IBM", 90)) // dip: negates the first IBM
	eng.Process(tick(3, 3000, "IBM", 101))
	eng.Process(tick(4, 4000, "IBM", 130)) // matches with tick 3 only
	eng.Flush()

	if len(got) != 1 {
		t.Fatalf("matches = %d", len(got))
	}
	if got[0].Fields[0].Events[0].Ts != 3000 {
		t.Errorf("T1 = %v", got[0].Fields[0].Events[0])
	}
}

func TestQuery3KleeneEndToEnd(t *testing.T) {
	// Query 3 shape with count 3: total Google volume over 3 ticks.
	q := zstream.MustCompile(`
		PATTERN T1; T2^3; T3
		WHERE T1.name = T3.name
		  AND T2.name = 'Google'
		  AND sum(T2.volume) > 250
		  AND T3.price > 1.2 * T1.price
		WITHIN 10 secs
		RETURN T1, sum(T2.volume) AS vol, T3`)
	var got []*zstream.Match
	eng, err := zstream.NewEngine(q, zstream.OnMatch(func(m *zstream.Match) { got = append(got, m) }))
	if err != nil {
		t.Fatal(err)
	}
	eng.Process(tick(1, 1000, "IBM", 100))
	eng.Process(tick(2, 2000, "Google", 500))
	eng.Process(tick(3, 3000, "Google", 500))
	eng.Process(tick(4, 4000, "Google", 500))
	eng.Process(tick(5, 5000, "IBM", 130))
	eng.Flush()

	if len(got) != 1 {
		t.Fatalf("matches = %d", len(got))
	}
	vol := got[0].Fields[1]
	if vol.Name != "vol" || vol.Value.F != 300 {
		t.Errorf("vol field = %+v", vol)
	}
}

func TestRunChannels(t *testing.T) {
	q := zstream.MustCompile(`PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 100`)
	in := make(chan *zstream.Event, 8)
	out, err := q.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	in <- tick(1, 1, "A", 1)
	in <- tick(2, 2, "B", 1)
	in <- tick(3, 3, "A", 1)
	close(in)
	var n int
	for range out {
		n++
	}
	if n != 1 {
		t.Errorf("channel matches = %d", n)
	}
}

func TestEngineOptions(t *testing.T) {
	q := zstream.MustCompile(`PATTERN A;B;C WITHIN 100`)
	for _, opts := range [][]zstream.Option{
		{zstream.WithPlan(zstream.PlanLeftDeep)},
		{zstream.WithPlan(zstream.PlanRightDeep)},
		{zstream.WithPlan(zstream.PlanOptimal), zstream.WithBatchSize(8)},
		{zstream.WithAdaptation()},
		{zstream.WithoutHashing()},
		{zstream.WithMaxDisorder(50)},
	} {
		eng, err := zstream.NewEngine(q, opts...)
		if err != nil {
			t.Fatalf("options %v: %v", opts, err)
		}
		eng.Process(tick(1, 1, "X", 1))
		eng.Flush()
	}
}

func TestNegationOnTopOption(t *testing.T) {
	q := zstream.MustCompile(`PATTERN A;!B;C WITHIN 100`)
	eng, err := zstream.NewEngine(q, zstream.WithNegationOnTop())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eng.Explain(), "neg-top") {
		t.Errorf("explain lacks neg-top:\n%s", eng.Explain())
	}
}

func TestExplainAndStats(t *testing.T) {
	q := zstream.MustCompile(`PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 100`)
	eng, err := zstream.NewEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eng.Explain(), "seq") {
		t.Errorf("explain:\n%s", eng.Explain())
	}
	eng.Process(tick(1, 1, "A", 1))
	eng.Process(tick(2, 2, "B", 1))
	eng.Flush()
	st := eng.Stats()
	if st.Matches != 1 || st.Events != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEstimateCost(t *testing.T) {
	q := zstream.MustCompile(`PATTERN A;B;C;D WITHIN 100`)
	c, shape, err := q.EstimateCost()
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 || shape == "" {
		t.Errorf("estimate = %v shape = %q", c, shape)
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s := zstream.MustSchema("Sensors", "temp", "room")
	e, err := zstream.NewEvent(s, 42, zstream.Float(21.5), zstream.Str("lab"))
	if err != nil {
		t.Fatal(err)
	}
	q := zstream.MustCompile(`
		PATTERN Warm; Hot
		WHERE Warm.temp > 20 AND Hot.temp > 30 AND Warm.room = Hot.room
		WITHIN 100`)
	eng, err := zstream.NewEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	eng.Process(e)
	e2, _ := zstream.NewEvent(s, 50, zstream.Float(35), zstream.Str("lab"))
	eng.Process(e2)
	eng.Flush()
	if eng.Stats().Matches != 1 {
		t.Errorf("matches = %d", eng.Stats().Matches)
	}
}

func TestRuntimeEndToEnd(t *testing.T) {
	// Per-symbol price rise, partition-local over "name": the runtime's
	// merged output must equal a single engine's.
	q := zstream.MustCompile(`
		PATTERN Low; High
		WHERE Low.name = High.name AND High.price > 1.10 * Low.price
		WITHIN 10 secs
		RETURN Low, High`)

	ticks := []*zstream.Event{
		tick(1, 1000, "IBM", 100), tick(2, 1500, "Sun", 50),
		tick(3, 2000, "IBM", 103), tick(4, 2500, "Sun", 58),
		tick(5, 3000, "IBM", 114), tick(6, 9000, "IBM", 140),
	}

	var single []string
	eng, err := zstream.NewEngine(q, zstream.OnMatch(func(m *zstream.Match) {
		single = append(single, renderInterval(m))
	}))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range ticks {
		cp := *ev
		eng.Process(&cp)
	}
	eng.Flush()

	rt := zstream.NewRuntime(zstream.WithShards(2), zstream.WithIngestBatch(2))
	var merged []string
	id, err := rt.Register(q, zstream.OnMatch(func(m *zstream.Match) {
		merged = append(merged, renderInterval(m))
	}))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range ticks {
		cp := *ev
		if err := rt.Ingest(&cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	if len(single) == 0 {
		t.Fatal("single engine found no matches; test is vacuous")
	}
	if strings.Join(merged, "|") != strings.Join(single, "|") {
		t.Errorf("runtime = %v, single engine = %v", merged, single)
	}

	st := rt.Stats()
	if st.Shards != 2 || st.EventsIngested != uint64(len(ticks)) ||
		st.MatchesDelivered != uint64(len(single)) {
		t.Errorf("stats = %+v", st)
	}
	if err := rt.Unregister(id); err != zstream.ErrClosed {
		t.Errorf("Unregister after Close = %v", err)
	}
}

func TestRuntimeRegisterError(t *testing.T) {
	rt := zstream.NewRuntime(zstream.WithShards(1))
	defer rt.Close()
	q := zstream.MustCompile("PATTERN A;B WITHIN 10")
	if _, err := rt.Register(q); err != nil {
		t.Fatalf("valid register failed: %v", err)
	}
	if err := rt.Unregister(zstream.QueryID(999)); !errors.Is(err, zstream.ErrUnknownQuery) {
		t.Errorf("Unregister(999) = %v", err)
	}
}

func renderInterval(m *zstream.Match) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%d..%d]", m.Start, m.End)
	for _, f := range m.Fields {
		for _, e := range f.Events {
			fmt.Fprintf(&b, " %s@%d", e.Get("name").S, e.Ts)
		}
	}
	return b.String()
}
