package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/event"
)

// StockSpec configures the synthetic stock stream. One event is emitted
// per tick; the event's symbol is drawn proportionally to Weights, which is
// how the paper controls relative event rates (e.g. 1:100:100:100).
//
// Multi-class predicate selectivities are calibrated analytically: prices
// default to uniform [0,100); fixing a symbol's price to 100*(1-s) makes
// the predicate "X.price > Y.price" hold with probability s when X's price
// is uniform (§6.1.1's selectivity knob).
type StockSpec struct {
	N       int
	Seed    int64
	Names   []string
	Weights []float64
	// FixedPrice pins a symbol's price (selectivity calibration).
	FixedPrice map[string]float64
	// StartTs is the first timestamp (default 0).
	StartTs int64
}

// SelectivityPrice returns the fixed price that makes "X.price > Y.price"
// hold with probability sel when X.price is uniform in [0,100) and Y's
// price is pinned to the returned value.
func SelectivityPrice(sel float64) float64 { return 100 * (1 - sel) }

// GenStocks produces the event stream. Sequence numbers are 1-based
// arrival order; timestamps advance by one tick per event.
func GenStocks(spec StockSpec) []*event.Event {
	rng := rand.New(rand.NewSource(spec.Seed))
	if len(spec.Weights) != len(spec.Names) {
		panic(fmt.Sprintf("workload: %d weights for %d names", len(spec.Weights), len(spec.Names)))
	}
	total := 0.0
	for _, w := range spec.Weights {
		total += w
	}
	out := make([]*event.Event, 0, spec.N)
	ts := spec.StartTs
	for i := 0; i < spec.N; i++ {
		r := rng.Float64() * total
		idx := 0
		for acc := spec.Weights[0]; r > acc && idx < len(spec.Names)-1; {
			idx++
			acc += spec.Weights[idx]
		}
		name := spec.Names[idx]
		price, pinned := spec.FixedPrice[name]
		if !pinned {
			price = rng.Float64() * 100
		}
		out = append(out, event.NewStock(uint64(i+1), ts, int64(i), name, price, float64(1+rng.Intn(100))))
		ts++
	}
	return out
}

// Concat concatenates stream segments, rewriting timestamps and sequence
// numbers to stay monotonic (the Figure 14 adaptation input).
func Concat(segments ...[]*event.Event) []*event.Event {
	var out []*event.Event
	var ts int64
	var seq uint64
	for _, seg := range segments {
		if len(seg) == 0 {
			continue
		}
		base := seg[0].Ts
		for _, e := range seg {
			seq++
			cp := *e
			cp.Seq = seq
			cp.Ts = ts + (e.Ts - base)
			out = append(out, &cp)
		}
		ts = out[len(out)-1].Ts + 1
	}
	return out
}

// WeblogSpec configures the synthetic web log. The real dataset (Table 4)
// had 1.5M records over one month with 6,775 publication, 11,610 project
// and 16,083 course accesses; the defaults reproduce those proportions at
// any N.
type WeblogSpec struct {
	N    int
	Seed int64
	// SpanTicks is the total time covered (default one month of
	// milliseconds, matching the 10-hour WITHIN window in ticks).
	SpanTicks int64
	// IPs is the client population (default 4096), with Zipf-ish skew.
	IPs int
	// Counts of the three interesting access classes (defaults scale the
	// paper's Table 4 to N).
	Publications, Projects, Courses int
}

// Table4 holds the paper's reference record counts.
var Table4 = struct {
	Total, Publications, Projects, Courses int
}{1_500_000, 6775, 11610, 16083}

// WeblogCounts reports the generated per-class record counts.
type WeblogCounts struct {
	Total, Publications, Projects, Courses int
}

// String implements fmt.Stringer.
func (c WeblogCounts) String() string {
	return fmt.Sprintf("total=%d publication=%d project=%d courses=%d",
		c.Total, c.Publications, c.Projects, c.Courses)
}

// GenWeblog produces the web-access stream and the per-class counts.
func GenWeblog(spec WeblogSpec) ([]*event.Event, WeblogCounts) {
	if spec.SpanTicks <= 0 {
		spec.SpanTicks = 30 * 24 * 3_600_000 // one month in ms
	}
	if spec.IPs <= 0 {
		spec.IPs = 4096
	}
	scale := func(ref int) int {
		return int(float64(ref) * float64(spec.N) / float64(Table4.Total))
	}
	if spec.Publications == 0 {
		spec.Publications = scale(Table4.Publications)
	}
	if spec.Projects == 0 {
		spec.Projects = scale(Table4.Projects)
	}
	if spec.Courses == 0 {
		spec.Courses = scale(Table4.Courses)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(spec.IPs-1))

	// assign class labels to record positions without replacement
	kind := make([]byte, spec.N)
	assign := func(count int, label byte) {
		for placed := 0; placed < count; {
			p := rng.Intn(spec.N)
			if kind[p] == 0 {
				kind[p] = label
				placed++
			}
		}
	}
	assign(spec.Publications, 'p')
	assign(spec.Projects, 'j')
	assign(spec.Courses, 'c')

	out := make([]*event.Event, 0, spec.N)
	counts := WeblogCounts{Total: spec.N}
	ticksPer := float64(spec.SpanTicks) / float64(spec.N)
	for i := 0; i < spec.N; i++ {
		ts := int64(float64(i) * ticksPer)
		ipID := zipf.Uint64()
		ip := fmt.Sprintf("18.26.%d.%d", ipID/256%256, ipID%256)
		var url, desc string
		switch kind[i] {
		case 'p':
			url, desc = fmt.Sprintf("/publications/paper%d.pdf", rng.Intn(500)), "publication"
			counts.Publications++
		case 'j':
			url, desc = fmt.Sprintf("/projects/project%d.html", rng.Intn(40)), "project"
			counts.Projects++
		case 'c':
			url, desc = fmt.Sprintf("/courses/course%d/", rng.Intn(20)), "courses"
			counts.Courses++
		default:
			url, desc = fmt.Sprintf("/misc/page%d.html", rng.Intn(10000)), "other"
		}
		e := event.NewWeblog(uint64(i+1), ts, ip, url, desc)
		out = append(out, e)
	}
	return out, counts
}
