package workload

import (
	"math"
	"testing"
)

func TestGenStocksDeterministic(t *testing.T) {
	spec := StockSpec{N: 100, Seed: 7, Names: []string{"A", "B"}, Weights: []float64{1, 1}}
	a := GenStocks(spec)
	b := GenStocks(spec)
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Get("name") != b[i].Get("name") || a[i].Get("price") != b[i].Get("price") {
			t.Fatalf("not deterministic at %d", i)
		}
	}
}

func TestGenStocksTimestampsAndSeqs(t *testing.T) {
	evs := GenStocks(StockSpec{N: 50, Seed: 1, Names: []string{"X"}, Weights: []float64{1}, StartTs: 10})
	for i, e := range evs {
		if e.Ts != int64(10+i) {
			t.Fatalf("ts[%d] = %d", i, e.Ts)
		}
		if e.Seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d", i, e.Seq)
		}
	}
}

func TestGenStocksRateRatios(t *testing.T) {
	evs := GenStocks(StockSpec{N: 50_000, Seed: 3,
		Names: []string{"IBM", "Sun", "Oracle"}, Weights: []float64{1, 10, 10}})
	counts := map[string]int{}
	for _, e := range evs {
		counts[e.Get("name").S]++
	}
	// IBM should get ~1/21 of events
	frac := float64(counts["IBM"]) / 50_000
	if math.Abs(frac-1.0/21) > 0.01 {
		t.Errorf("IBM fraction = %v, want ~%v", frac, 1.0/21)
	}
	if counts["Sun"] == 0 || counts["Oracle"] == 0 {
		t.Error("missing symbols")
	}
}

func TestSelectivityCalibration(t *testing.T) {
	// P(IBM.price > Sun.price) should be ~sel when Sun is pinned
	for _, sel := range []float64{1, 0.5, 0.25, 1.0 / 32} {
		spec := StockSpec{N: 100_000, Seed: 5,
			Names: []string{"IBM", "Sun"}, Weights: []float64{1, 1},
			FixedPrice: map[string]float64{"Sun": SelectivityPrice(sel)}}
		evs := GenStocks(spec)
		pass, total := 0, 0
		thresh := SelectivityPrice(sel)
		for _, e := range evs {
			if e.Get("name").S == "IBM" {
				total++
				if e.Get("price").F > thresh {
					pass++
				}
			}
		}
		got := float64(pass) / float64(total)
		if math.Abs(got-sel) > 0.02 {
			t.Errorf("sel %v: measured %v", sel, got)
		}
	}
}

func TestConcat(t *testing.T) {
	s1 := GenStocks(StockSpec{N: 10, Seed: 1, Names: []string{"A"}, Weights: []float64{1}})
	s2 := GenStocks(StockSpec{N: 10, Seed: 2, Names: []string{"B"}, Weights: []float64{1}})
	all := Concat(s1, s2)
	if len(all) != 20 {
		t.Fatalf("len = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Ts < all[i-1].Ts {
			t.Fatalf("ts not monotonic at %d", i)
		}
		if all[i].Seq != all[i-1].Seq+1 {
			t.Fatalf("seq not consecutive at %d", i)
		}
	}
	// originals untouched
	if s2[0].Seq != 1 {
		t.Error("Concat mutated input")
	}
}

func TestConcatEmptySegments(t *testing.T) {
	s1 := GenStocks(StockSpec{N: 5, Seed: 1, Names: []string{"A"}, Weights: []float64{1}})
	all := Concat(nil, s1, nil)
	if len(all) != 5 {
		t.Fatalf("len = %d", len(all))
	}
}

func TestGenWeblogTable4Proportions(t *testing.T) {
	evs, counts := GenWeblog(WeblogSpec{N: 150_000, Seed: 9})
	if counts.Total != 150_000 || len(evs) != 150_000 {
		t.Fatalf("total = %d", counts.Total)
	}
	// scaled Table 4: 677/1161/1608 at N=150k
	if counts.Publications != 677 || counts.Projects != 1161 || counts.Courses != 1608 {
		t.Errorf("counts = %v", counts)
	}
	// timestamps monotonic, span ~1 month
	last := int64(-1)
	for _, e := range evs {
		if e.Ts < last {
			t.Fatal("weblog timestamps not monotonic")
		}
		last = e.Ts
	}
	if last <= 0 || last > 30*24*3_600_000 {
		t.Errorf("span end = %d", last)
	}
}

func TestGenWeblogExactTable4AtFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1.5M-record generation")
	}
	_, counts := GenWeblog(WeblogSpec{N: Table4.Total, Seed: 1})
	if counts.Publications != Table4.Publications ||
		counts.Projects != Table4.Projects ||
		counts.Courses != Table4.Courses {
		t.Errorf("full-scale counts %v != Table 4 %v", counts, Table4)
	}
}

func TestGenWeblogFields(t *testing.T) {
	evs, _ := GenWeblog(WeblogSpec{N: 1000, Seed: 2})
	kinds := map[string]bool{}
	for _, e := range evs {
		kinds[e.Get("desc").S] = true
		if e.Get("ip").S == "" || e.Get("url").S == "" {
			t.Fatal("empty fields")
		}
	}
	for _, k := range []string{"publication", "project", "courses", "other"} {
		if !kinds[k] {
			t.Errorf("kind %q missing", k)
		}
	}
}
