// Package workload generates the evaluation inputs of §6: synthetic stock
// streams with controlled relative event rates and multi-class predicate
// selectivities (§6.1), and a synthetic web-access log standing in for the
// MIT DB-group web server log of §6.5 (see DESIGN.md for the substitution
// rationale).
package workload
