package slicepool

import "testing"

func TestRoundTripClearsToCap(t *testing.T) {
	var p Pool[*int]
	b := p.Get()
	if b != nil {
		t.Fatalf("empty pool must return nil, got len %d cap %d", len(b), cap(b))
	}
	x := 7
	for i := 0; i < 50; i++ {
		b = append(b, &x)
	}
	p.Put(b)
	got := p.Get()
	if len(got) != 0 {
		t.Fatalf("recycled slice not reset: len %d", len(got))
	}
	if cap(got) >= 50 {
		for i, e := range got[:50] {
			if e != nil {
				t.Fatalf("recycled slice pins pointer at %d", i)
			}
		}
	}
	// A shorter second use must not leave the longer first use's tail
	// pinned after Put (Put clears to capacity).
	got = append(got, &x)
	p.Put(got)
	again := p.Get()
	if cap(again) >= 50 {
		for i, e := range again[:cap(again)] {
			if e != nil {
				t.Fatalf("stale tail pinned at %d", i)
			}
		}
	}
	p.Put(nil) // must not panic
}

func TestSteadyStateZeroAllocs(t *testing.T) {
	var p Pool[int]
	seed := make([]int, 0, 64)
	p.Put(seed)
	avg := testing.AllocsPerRun(1000, func() {
		b := p.Get()
		b = append(b, 1, 2, 3)
		p.Put(b)
	})
	if avg != 0 {
		t.Fatalf("steady-state Get/Put allocates %.2f/op, want 0", avg)
	}
}
