// Package slicepool provides a generic sync.Pool of slices whose backing
// arrays AND boxed slice headers both recycle, so steady-state Get/Put
// pairs perform zero allocations. (A naive sync.Pool.Put(&b) of a local
// slice heap-allocates a fresh *[]T box on every call — the two-pool
// scheme threads emptied boxes back instead.)
//
// Put clears every element up to capacity before pooling, so a recycled
// slice never pins the pointers a previous, larger use stored in it.
// Safe for concurrent use; used for the runtime's ingest batches
// (event.GetBatch/PutBatch) and worker→merger match batches.
package slicepool
