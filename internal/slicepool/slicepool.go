package slicepool

import "sync"

// Pool recycles []T slices across goroutines.
type Pool[T any] struct {
	full    sync.Pool // *[]T carrying a live backing array
	headers sync.Pool // *[]T emptied boxes awaiting reuse
}

// Get returns an empty slice with whatever capacity a previous Put left
// behind (nil when the pool is empty).
func (p *Pool[T]) Get() []T {
	v := p.full.Get()
	if v == nil {
		return nil
	}
	box := v.(*[]T)
	b := *box
	*box = nil
	p.headers.Put(box)
	return b[:0]
}

// Put recycles a slice. All elements up to capacity are zeroed; the caller
// must not use the slice afterwards.
func (p *Pool[T]) Put(b []T) {
	if cap(b) == 0 {
		return
	}
	clear(b[:cap(b)])
	var box *[]T
	if v := p.headers.Get(); v != nil {
		box = v.(*[]T)
	} else {
		box = new([]T)
	}
	*box = b[:0]
	p.full.Put(box)
}
