// Package optimizer searches for the optimal physical tree plan of a query
// (§5.2): algebraic rewrites are applied during analysis (query.Normalize,
// §5.2.1), equality predicates become hash lookups when enabled (§5.2.2),
// and operator order is chosen by the dynamic program of Algorithm 5
// (§5.2.3), which exploits the optimal-substructure property of Theorem 5.1
// and considers bushy plans.
package optimizer
