package optimizer

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
)

func TestOptimizeTwoClasses(t *testing.T) {
	q := query.MustParse("PATTERN A;B WITHIN 100")
	st := cost.UniformStats(q.Info, q.Within, 1)
	r, err := Optimize(q, st, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shape.String() != "(0 1)" {
		t.Errorf("shape = %s", r.Shape)
	}
	if r.Estimate.Cost <= 0 {
		t.Errorf("cost = %v", r.Estimate.Cost)
	}
}

func TestOptimizePrefersRareFirst(t *testing.T) {
	q := query.MustParse("PATTERN A;B;C WITHIN 200")
	st := cost.UniformStats(q.Info, q.Within, 1)
	st.Rate = []float64{0.001, 1, 1}
	r, err := Optimize(q, st, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shape.String() != "((0 1) 2)" {
		t.Errorf("rare-A shape = %s, want left-deep", r.Shape)
	}
	st.Rate = []float64{1, 1, 0.001}
	r, err = Optimize(q, st, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shape.String() != "(0 (1 2))" {
		t.Errorf("rare-C shape = %s, want right-deep", r.Shape)
	}
}

func TestOptimizePrefersSelectivePredicateFirst(t *testing.T) {
	// Query 6 regime 2: the Sun-Oracle predicate is very selective; the
	// optimizer should evaluate it first (the "inner" plan)
	q := query.MustParse(`PATTERN A;B;C;D
		WHERE C.price > B.price AND C.price > D.price WITHIN 100`)
	st := cost.UniformStats(q.Info, q.Within, 1)
	st.PredSel[0] = 1.0 / 50 // B-C predicate
	st.PredSel[1] = 1
	r, err := Optimize(q, st, false)
	if err != nil {
		t.Fatal(err)
	}
	// the B-C join must appear as a bottom-most pair
	if s := r.Shape.String(); s != "(0 ((1 2) 3))" && s != "((0 (1 2)) 3)" {
		t.Errorf("selective-predicate shape = %s", s)
	}
}

// TestOptimalBeatsAllShapes is the optimality property: the DP's choice
// never costs more than any explicitly enumerated shape.
func TestOptimalBeatsAllShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := query.MustParse(`PATTERN A;B;C;D
		WHERE A.price > B.price AND C.price > D.price AND A.volume = D.volume
		WITHIN 100`)
	var shapes []*plan.Shape
	var build func(lo, hi int) []*plan.Shape
	build = func(lo, hi int) []*plan.Shape {
		if hi-lo == 1 {
			return []*plan.Shape{plan.ShapeLeaf(lo)}
		}
		var out []*plan.Shape
		for mid := lo + 1; mid < hi; mid++ {
			for _, l := range build(lo, mid) {
				for _, r := range build(mid, hi) {
					out = append(out, plan.Join(l, r))
				}
			}
		}
		return out
	}
	shapes = build(0, 4)
	if len(shapes) != 5 { // catalan(3)
		t.Fatalf("enumerated %d shapes", len(shapes))
	}
	for trial := 0; trial < 50; trial++ {
		st := cost.UniformStats(q.Info, q.Within, 1)
		for i := range st.Rate {
			st.Rate[i] = rng.Float64()*2 + 0.001
		}
		for i := range st.PredSel {
			st.PredSel[i] = rng.Float64()*0.9 + 0.05
		}
		opt, err := Optimize(q, st, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range shapes {
			est, err := EstimateShape(q, st, false, plan.NegAuto, sh)
			if err != nil {
				t.Fatal(err)
			}
			if opt.Estimate.Cost > est.Cost*(1+1e-9) {
				t.Fatalf("trial %d: optimal %v costs more than shape %s (%v)",
					trial, opt.Estimate.Cost, sh, est.Cost)
			}
		}
	}
}

func TestOptimizeNegationPlacement(t *testing.T) {
	q := query.MustParse("PATTERN A;!B;C WITHIN 100")
	st := cost.UniformStats(q.Info, q.Within, 1)
	r, err := Optimize(q, st, false)
	if err != nil {
		t.Fatal(err)
	}
	// push-down avoids materializing the unneeded combinations; with
	// uniform stats it must win
	if r.Negation != plan.NegPushdown {
		t.Errorf("negation placement = %v, want pushdown", r.Negation)
	}

	// when push-down is ineligible, top must be chosen
	q2 := query.MustParse("PATTERN A;!B;C WHERE B.price < A.price AND B.price < C.price WITHIN 100")
	r2, err := Optimize(q2, cost.UniformStats(q2.Info, q2.Within, 1), false)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Negation != plan.NegTop {
		t.Errorf("ineligible pushdown: placement = %v", r2.Negation)
	}
}

func TestSearchSingleUnit(t *testing.T) {
	q := query.MustParse("PATTERN A&B WITHIN 100")
	st := cost.UniformStats(q.Info, q.Within, 1)
	units, _, err := plan.Units(q.Info, plan.NegAuto)
	if err != nil {
		t.Fatal(err)
	}
	shape, est := Search(cost.NewEstimator(q.Info, st, false), units)
	if shape.String() != "0" || est.Cost <= 0 {
		t.Errorf("single-unit search: %s %v", shape, est)
	}
}

func TestEstimateShapeValidates(t *testing.T) {
	q := query.MustParse("PATTERN A;B;C WITHIN 100")
	st := cost.UniformStats(q.Info, q.Within, 1)
	if _, err := EstimateShape(q, st, false, plan.NegAuto, plan.LeftDeep(2)); err == nil {
		t.Error("wrong-arity shape accepted")
	}
}

func TestOptimizeErrors(t *testing.T) {
	if _, err := Optimize(&query.Query{}, nil, false); err == nil {
		t.Error("unanalyzed query accepted")
	}
}

// TestDPTimingLength20 asserts the §5.2.3 claim: an optimal plan for a
// 20-class pattern is found in well under 10 ms.
func TestDPTimingLength20(t *testing.T) {
	pat := "C0"
	for i := 1; i < 20; i++ {
		pat += fmt.Sprintf(";C%d", i)
	}
	q := query.MustParse("PATTERN " + pat + " WITHIN 100")
	st := cost.UniformStats(q.Info, q.Within, 1)
	start := time.Now()
	const reps = 20
	for i := 0; i < reps; i++ {
		if _, err := Optimize(q, st, false); err != nil {
			t.Fatal(err)
		}
	}
	per := time.Since(start) / reps
	if per > 10*time.Millisecond {
		t.Errorf("planning a 20-class pattern took %v, paper promises < 10ms", per)
	}
}

func TestOptimizeBushyPlanFound(t *testing.T) {
	// two tight pairs with a weak middle connection: the DP should find a
	// bushy plan, which Selinger-style left-deep-only search cannot
	q := query.MustParse(`PATTERN A;B;C;D
		WHERE A.price > B.price AND C.price > D.price WITHIN 100`)
	st := cost.UniformStats(q.Info, q.Within, 1)
	st.Rate = []float64{1, 1, 1, 1}
	st.PredSel[0] = 0.01
	st.PredSel[1] = 0.01
	r, err := Optimize(q, st, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shape.String() != "((0 1) (2 3))" {
		t.Errorf("shape = %s, want bushy", r.Shape)
	}
}
