package optimizer

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
)

// Result is a chosen plan shape with its estimated cost.
type Result struct {
	Shape    *plan.Shape
	Units    []*plan.Unit
	Estimate cost.Estimate
	// Negation reports the placement the search settled on.
	Negation plan.NegPlacement
}

// Optimize returns the minimum-cost shape for q under the given statistics
// (Algorithm 5). When the query contains negation, both the pushed-down
// and on-top placements are costed and the cheaper one is returned.
func Optimize(q *query.Query, st *cost.Stats, useHash bool) (*Result, error) {
	in := q.Info
	if in == nil {
		return nil, fmt.Errorf("optimizer: query not analyzed")
	}

	hasNeg := false
	for _, t := range in.Terms {
		if t.Kind == query.TermNeg {
			hasNeg = true
		}
	}
	if !hasNeg {
		return optimizeWith(q, st, useHash, plan.NegAuto)
	}

	// cost both negation placements; pushdown may be ineligible.
	top, topErr := optimizeWith(q, st, useHash, plan.NegTop)
	push, pushErr := optimizeWith(q, st, useHash, plan.NegPushdown)
	switch {
	case topErr != nil && pushErr != nil:
		return nil, topErr
	case pushErr != nil:
		return top, nil
	case topErr != nil:
		return push, nil
	case push.Estimate.Cost <= top.Estimate.Cost:
		return push, nil
	default:
		return top, nil
	}
}

func optimizeWith(q *query.Query, st *cost.Stats, useHash bool, negMode plan.NegPlacement) (*Result, error) {
	in := q.Info
	units, topNegs, err := plan.Units(in, negMode)
	if err != nil {
		return nil, err
	}
	est := cost.NewEstimator(in, st, useHash)
	shape, e := Search(est, units)
	// add the top-filter cost for deferred negations
	for range topNegs {
		e = est.NegTopEstimate(e, est.DefaultNegSurvival())
	}
	return &Result{Shape: shape, Units: units, Estimate: e, Negation: negMode}, nil
}

// Search runs Algorithm 5 over the units: Min[s][i] is the minimal cost of
// any tree covering the s units starting at i, ROOT[s][i] the split that
// achieves it, and CARD[s][i] the (split-independent) output cardinality.
// Complexity is O(n^3) in the number of units, bushy plans included.
func Search(est *cost.Estimator, units []*plan.Unit) (*plan.Shape, cost.Estimate) {
	n := len(units)
	if n == 1 {
		return plan.ShapeLeaf(0), est.UnitEstimate(units[0])
	}

	// classesRange[i][j] caches the classes covered by units [i, j).
	classesRange := make([][][]int, n+1)
	for i := 0; i <= n; i++ {
		classesRange[i] = make([][]int, n+1)
	}
	var gather func(i, j int) []int
	gather = func(i, j int) []int {
		if classesRange[i][j] != nil {
			return classesRange[i][j]
		}
		var out []int
		for u := i; u < j; u++ {
			out = append(out, units[u].Classes...)
		}
		classesRange[i][j] = out
		return out
	}

	minCost := make([][]float64, n+1) // [size][start]
	card := make([][]float64, n+1)
	root := make([][]int, n+1)
	for s := 0; s <= n; s++ {
		minCost[s] = make([]float64, n)
		card[s] = make([]float64, n)
		root[s] = make([]int, n)
	}
	for i := 0; i < n; i++ {
		e := est.UnitEstimate(units[i])
		minCost[1][i], card[1][i] = e.Cost, e.Card
	}

	for s := 2; s <= n; s++ { // s is sub-tree size
		for i := 0; i+s <= n; i++ { // i is sub-tree start
			minCost[s][i] = math.Inf(1)
			for r := i + 1; r < i+s; r++ { // r is root split position
				lSize, rSize := r-i, i+s-r
				l := cost.Estimate{Cost: minCost[lSize][i], Card: card[lSize][i]}
				rr := cost.Estimate{Cost: minCost[rSize][r], Card: card[rSize][r]}
				surv := 1.0
				if units[r].Kind == plan.UnitNSeqLeft {
					surv = est.DefaultNegSurvival()
				}
				e := est.SeqJoin(l, rr, gather(i, r), gather(r, i+s), surv)
				if e.Cost < minCost[s][i] {
					minCost[s][i] = e.Cost
					card[s][i] = e.Card
					root[s][i] = r
				}
			}
		}
	}

	// reconstruct the optimal tree by walking ROOT in reverse
	var rebuild func(i, s int) *plan.Shape
	rebuild = func(i, s int) *plan.Shape {
		if s == 1 {
			return plan.ShapeLeaf(i)
		}
		r := root[s][i]
		return plan.Join(rebuild(i, r-i), rebuild(r, s-(r-i)))
	}
	return rebuild(0, n), cost.Estimate{Cost: minCost[n][0], Card: card[n][0]}
}

// EstimateShape costs an explicit shape (for comparing fixed plans against
// the optimum, Figures 9/11/13).
func EstimateShape(q *query.Query, st *cost.Stats, useHash bool, negMode plan.NegPlacement, shape *plan.Shape) (cost.Estimate, error) {
	units, topNegs, err := plan.Units(q.Info, negMode)
	if err != nil {
		return cost.Estimate{}, err
	}
	if err := shape.Validate(len(units)); err != nil {
		return cost.Estimate{}, err
	}
	est := cost.NewEstimator(q.Info, st, useHash)
	e := est.ShapeEstimate(units, shape)
	for range topNegs {
		e = est.NegTopEstimate(e, est.DefaultNegSurvival())
	}
	return e, nil
}
