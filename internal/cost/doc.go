// Package cost implements the ZStream cost model of §5.1: Formula (1)
// C = Ci + (n·k)·Ci + p·Co per operator, with the per-operator input and
// output cost formulas of Table 2 and the terminology of Table 1
// (CARD_E = R_E · TW_p · P_E, implicit time-predicate selectivity Pt, and
// multi-class predicate selectivity P_{E1,E2}).
//
// The estimator works over planning units and shapes from internal/plan,
// generalizing operand cardinalities to sub-plans by substituting operator
// output cardinality, exactly as §5.1 prescribes.
package cost
