package cost

import (
	"math"
	"testing"

	"repro/internal/plan"
	"repro/internal/query"
)

func estimator(t *testing.T, src string, rates []float64, predSel float64) (*Estimator, []*plan.Unit) {
	t.Helper()
	q := query.MustParse(src)
	st := UniformStats(q.Info, q.Within, 1)
	copy(st.Rate, rates)
	for i := range st.PredSel {
		st.PredSel[i] = predSel
	}
	units, _, err := plan.Units(q.Info, plan.NegAuto)
	if err != nil {
		t.Fatal(err)
	}
	return NewEstimator(q.Info, st, false), units
}

func TestClassCard(t *testing.T) {
	q := query.MustParse("PATTERN A;B WITHIN 100")
	st := UniformStats(q.Info, q.Within, 0.5)
	st.SingleSel[0] = 0.1
	// CARD = R * TW * P = 0.5 * 100 * 0.1
	if got := st.ClassCard(0); math.Abs(got-5) > 1e-9 {
		t.Errorf("ClassCard = %v", got)
	}
}

func TestSeqJoinFormula(t *testing.T) {
	// Table 2 sequence row: Ci = CARD_A*CARD_B*Pt, Co = Ci * P_{A,B};
	// C = Ci + n*k*Ci + p*Co
	est, units := estimator(t, "PATTERN A;B WHERE A.price > B.price WITHIN 100", []float64{1, 1}, 0.5)
	l := est.UnitEstimate(units[0])
	r := est.UnitEstimate(units[1])
	if l.Card != 100 || r.Card != 100 {
		t.Fatalf("unit cards: %v %v", l.Card, r.Card)
	}
	e := est.SeqJoin(l, r, []int{0}, []int{1}, 1)
	ci := 100.0 * 100 * 0.5
	co := ci * 0.5
	want := ci + 1*K*ci + P*co
	if math.Abs(e.Cost-want) > 1e-6 {
		t.Errorf("seq cost = %v, want %v", e.Cost, want)
	}
	if math.Abs(e.Card-co) > 1e-6 {
		t.Errorf("seq card = %v, want %v", e.Card, co)
	}
}

func TestSeqJoinNoPred(t *testing.T) {
	est, units := estimator(t, "PATTERN A;B WITHIN 10", []float64{2, 3}, -1)
	l, r := est.UnitEstimate(units[0]), est.UnitEstimate(units[1])
	e := est.SeqJoin(l, r, []int{0}, []int{1}, 1)
	ci := 20.0 * 30 * 0.5
	want := ci + ci // no preds: Ci + Co with sel 1
	if math.Abs(e.Cost-want) > 1e-6 {
		t.Errorf("cost = %v, want %v", e.Cost, want)
	}
}

func TestConjCostHigherThanSeq(t *testing.T) {
	// §5.2.1: C_DIS < C_SEQ < C_CON for identical operands
	qSeq := query.MustParse("PATTERN A;B WITHIN 100")
	qConj := query.MustParse("PATTERN A&B WITHIN 100")
	qDisj := query.MustParse("PATTERN A|B WITHIN 100")

	costOf := func(q *query.Query) float64 {
		st := UniformStats(q.Info, q.Within, 1)
		units, _, err := plan.Units(q.Info, plan.NegAuto)
		if err != nil {
			t.Fatal(err)
		}
		est := NewEstimator(q.Info, st, false)
		if len(units) == 1 {
			return est.UnitEstimate(units[0]).Cost
		}
		l, r := est.UnitEstimate(units[0]), est.UnitEstimate(units[1])
		return est.SeqJoin(l, r, []int{0}, []int{1}, 1).Cost
	}
	seq, conj, disj := costOf(qSeq), costOf(qConj), costOf(qDisj)
	if !(disj < seq && seq < conj) {
		t.Errorf("cost order violated: disj=%v seq=%v conj=%v", disj, seq, conj)
	}
}

func TestKleeneCostCountVsStar(t *testing.T) {
	// with a closure count, each eligible middle event is emitted cnt
	// times on average: N (and hence cost) scales with cnt
	estC, unitsC := estimator(t, "PATTERN A;B^5;C WITHIN 100", []float64{1, 1, 1}, -1)
	estS, unitsS := estimator(t, "PATTERN A;B*;C WITHIN 100", []float64{1, 1, 1}, -1)
	cCount := estC.UnitEstimate(unitsC[0]).Cost
	cStar := estS.UnitEstimate(unitsS[0]).Cost
	if cCount <= cStar {
		t.Errorf("count-closure cost (%v) should exceed star (%v)", cCount, cStar)
	}
}

func TestNegationUnitCost(t *testing.T) {
	// NSEQ input cost is CARD of the anchor class, not of the negation
	// class (§5.1): growing the negation class rate must not change it
	for _, negRate := range []float64{1, 100} {
		est, units := estimator(t, "PATTERN A;!B;C WITHIN 100", []float64{1, negRate, 1}, -1)
		e := est.UnitEstimate(units[1])
		if e.Card != 100 {
			t.Errorf("negRate %v: NSEQ card = %v, want 100", negRate, e.Card)
		}
	}
}

func TestHashReducesInputCost(t *testing.T) {
	q := query.MustParse("PATTERN A;B WHERE A.name = B.name WITHIN 100")
	st := UniformStats(q.Info, q.Within, 1)
	for i := range st.PredSel {
		st.PredSel[i] = 0.1
	}
	units, _, err := plan.Units(q.Info, plan.NegAuto)
	if err != nil {
		t.Fatal(err)
	}
	plain := NewEstimator(q.Info, st, false)
	hashed := NewEstimator(q.Info, st, true)
	l, r := plain.UnitEstimate(units[0]), plain.UnitEstimate(units[1])
	cPlain := plain.SeqJoin(l, r, []int{0}, []int{1}, 1)
	cHash := hashed.SeqJoin(l, r, []int{0}, []int{1}, 1)
	if cHash.Cost >= cPlain.Cost {
		t.Errorf("hash cost %v >= scan cost %v", cHash.Cost, cPlain.Cost)
	}
	if math.Abs(cHash.Card-cPlain.Card) > 1e-9 {
		t.Errorf("hash changed output card: %v vs %v", cHash.Card, cPlain.Card)
	}
}

func TestShapeEstimateMatchesManualComposition(t *testing.T) {
	est, units := estimator(t, "PATTERN A;B;C WITHIN 100", []float64{1, 2, 3}, -1)
	ld := plan.LeftDeep(3)
	auto := est.ShapeEstimate(units, ld)
	ab := est.SeqJoin(est.UnitEstimate(units[0]), est.UnitEstimate(units[1]), []int{0}, []int{1}, 1)
	manual := est.SeqJoin(ab, est.UnitEstimate(units[2]), []int{0, 1}, []int{2}, 1)
	if math.Abs(auto.Cost-manual.Cost) > 1e-6 || math.Abs(auto.Card-manual.Card) > 1e-6 {
		t.Errorf("auto %+v != manual %+v", auto, manual)
	}
}

func TestRateAsymmetryFavorsRareFirst(t *testing.T) {
	// rare first class: left-deep cheaper; rare last class: right-deep
	// cheaper (the Figure 10/11 crossover)
	mk := func(rates []float64) (ldc, rdc float64) {
		est, units := estimator(t, "PATTERN A;B;C WITHIN 200", rates, -1)
		return est.ShapeEstimate(units, plan.LeftDeep(3)).Cost,
			est.ShapeEstimate(units, plan.RightDeep(3)).Cost
	}
	ld, rd := mk([]float64{0.01, 1, 1})
	if ld >= rd {
		t.Errorf("rare-A: left-deep %v should beat right-deep %v", ld, rd)
	}
	ld, rd = mk([]float64{1, 1, 0.01})
	if rd >= ld {
		t.Errorf("rare-C: right-deep %v should beat left-deep %v", rd, ld)
	}
}

func TestPredSelDefaults(t *testing.T) {
	q := query.MustParse("PATTERN A;B WHERE A.price > B.price WITHIN 10")
	st := UniformStats(q.Info, q.Within, 1)
	if st.predSel(0) != DefaultPredSel {
		t.Errorf("default pred sel = %v", st.predSel(0))
	}
	st.PredSel[0] = 0.25
	if st.predSel(0) != 0.25 {
		t.Errorf("explicit pred sel = %v", st.predSel(0))
	}
	if st.pt() != DefaultTimeSel {
		t.Errorf("default Pt = %v", st.pt())
	}
	st.TimeSel = 0.7
	if st.pt() != 0.7 {
		t.Errorf("explicit Pt = %v", st.pt())
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Card: 10, Cost: 100}
	if e.String() == "" {
		t.Error("empty string")
	}
}

func TestDisjUnitCost(t *testing.T) {
	est, units := estimator(t, "PATTERN (A|B);C WITHIN 100", []float64{1, 2, 1}, -1)
	e := est.UnitEstimate(units[0])
	if e.Card != 300 { // 100 + 200
		t.Errorf("disj card = %v", e.Card)
	}
}

func TestConjUnitCost(t *testing.T) {
	est, units := estimator(t, "PATTERN (A&B);C WITHIN 100", []float64{1, 1, 1}, -1)
	e := est.UnitEstimate(units[0])
	// Ci = 100*100, no preds, Co = Ci
	if e.Card != 10000 || e.Cost != 20000 {
		t.Errorf("conj estimate = %+v", e)
	}
}
