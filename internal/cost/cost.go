package cost

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/plan"
	"repro/internal/query"
)

// Default weights, experimentally determined by the paper.
const (
	// K weighs predicate-evaluation cost against input access (§5.1).
	K = 0.25
	// P weighs output assembly cost (§5.1).
	P = 1.0
	// DefaultTimeSel is the default selectivity Pt of the implicit time
	// predicate E1.end-ts < E2.start-ts (Table 1).
	DefaultTimeSel = 0.5
	// DefaultPredSel is the selectivity assumed for predicates with no
	// statistics.
	DefaultPredSel = 0.5
)

// Stats supplies the statistics of Table 1 for one query.
type Stats struct {
	// Window is the query's TW_p in ticks.
	Window float64
	// Rate[c] is R_E: events of class c per tick, before leaf filters.
	Rate []float64
	// SingleSel[c] is P_E: combined selectivity of the pushed-down
	// single-class predicates of class c (1 when none).
	SingleSel []float64
	// PredSel[i] is the selectivity of the i-th multi-class predicate of
	// the query (parallel to Info.Preds). Entries <= 0 fall back to
	// DefaultPredSel.
	PredSel []float64
	// TimeSel overrides Pt; 0 means DefaultTimeSel.
	TimeSel float64
}

// UniformStats builds a Stats with identical rates, no single-class
// filtering, and default predicate selectivities — a neutral starting point
// that callers refine.
func UniformStats(in *query.Info, window int64, rate float64) *Stats {
	n := in.NumClasses()
	s := &Stats{Window: float64(window), Rate: make([]float64, n), SingleSel: make([]float64, n),
		PredSel: make([]float64, len(in.Preds))}
	for i := 0; i < n; i++ {
		s.Rate[i] = rate
		s.SingleSel[i] = 1
	}
	for i := range s.PredSel {
		s.PredSel[i] = -1
	}
	return s
}

func (s *Stats) pt() float64 {
	if s.TimeSel > 0 {
		return s.TimeSel
	}
	return DefaultTimeSel
}

func (s *Stats) predSel(i int) float64 {
	if i < len(s.PredSel) && s.PredSel[i] > 0 {
		return s.PredSel[i]
	}
	return DefaultPredSel
}

// ClassCard returns CARD_E = R_E * TW_p * P_E for class c.
func (s *Stats) ClassCard(c int) float64 {
	return s.Rate[c] * s.Window * s.SingleSel[c]
}

// Estimate is the costed summary of a (sub-)plan.
type Estimate struct {
	// Card is the output cardinality per window (CARD_O).
	Card float64
	// Cost is the summed operator cost of the sub-plan per Formula (1).
	Cost float64
}

// Estimator estimates plan costs for one analyzed query.
type Estimator struct {
	In    *query.Info
	Stats *Stats
	// UseHash mirrors the plan option: hash-evaluated equality predicates
	// reduce the probed input to the matching partition (§5.2.2 models
	// partitions as event classes).
	UseHash bool
}

// NewEstimator builds an estimator.
func NewEstimator(in *query.Info, st *Stats, useHash bool) *Estimator {
	return &Estimator{In: in, Stats: st, UseHash: useHash}
}

// UnitEstimate returns the cardinality and internal operator cost of one
// planning unit (Table 2 rows for the unit's operator).
func (e *Estimator) UnitEstimate(u *plan.Unit) Estimate {
	st := e.Stats
	pt := st.pt()
	switch u.Kind {
	case plan.UnitSimple:
		return Estimate{Card: st.ClassCard(u.Classes[0])}

	case plan.UnitConj:
		// left-deep chain of CONJ operators: Ci = CARD_A * CARD_B,
		// Co = Ci * P_{A,B}.
		est := Estimate{Card: st.ClassCard(u.Classes[0])}
		built := []int{u.Classes[0]}
		for _, c := range u.Classes[1:] {
			ci := est.Card * st.ClassCard(c)
			sel, n := e.predSelBetween(built, []int{c})
			co := ci * sel
			est.Cost += ci + float64(n)*K*ci + P*co
			est.Card = co
			built = append(built, c)
		}
		return est

	case plan.UnitDisj:
		// Ci = Co = sum of input cardinalities.
		var sum float64
		for _, c := range u.Classes {
			sum += st.ClassCard(c)
		}
		return Estimate{Card: sum, Cost: sum + P*sum}

	case plan.UnitKSeq:
		// Table 2 Kleene-closure row. Missing anchors contribute 1.
		cardA, cardC := 1.0, 1.0
		ptAB, ptBC, ptAC := 1.0, 1.0, 1.0
		if u.StartClass >= 0 {
			cardA = st.ClassCard(u.StartClass)
			ptAB, ptAC = pt, pt
		}
		if u.EndClass >= 0 {
			cardC = st.ClassCard(u.EndClass)
			ptBC = pt
			if u.StartClass < 0 {
				ptAC = 1
			}
		}
		n := st.ClassCard(u.MidClass) * ptAB * ptBC
		if u.Closure == query.ClosureCount {
			n *= float64(u.Count)
		}
		ci := cardA * cardC * ptAC * n
		sel, npred := e.predSelWithin(u.Classes)
		co := ci * sel
		return Estimate{Card: co, Cost: ci + float64(npred)*K*ci + P*co}

	case plan.UnitNSeqLeft, plan.UnitNSeqRight:
		// Table 2 pushed-down negation: the NSEQ input cost is the
		// anchor's cardinality (each anchor event directly locates its
		// negating event); output cardinality equals the anchor's.
		card := st.ClassCard(u.Anchor)
		_, npred := e.predSelBetween(u.NegClasses, []int{u.Anchor})
		return Estimate{Card: card, Cost: card + float64(npred)*K*card + P*card}
	}
	return Estimate{}
}

// SeqJoin estimates a sequence operator combining two costed sub-plans
// covering the given class sets (Table 2 sequence row):
//
//	Ci = CARD_A * CARD_B * Pt    Co = Ci * P_{A,B}
//
// Negation survival: when the right side's leftmost unit is an NSEQ block,
// the Figure 4 time guards discard the share of combinations whose left
// part precedes the negating event; Table 2 models this as the
// (1 - Pt_{A,B}·Pt_{B,C}) factor on the output.
func (e *Estimator) SeqJoin(l, r Estimate, leftCls, rightCls []int, negSurvival float64) Estimate {
	st := e.Stats
	ci := l.Card * r.Card * st.pt()
	sel, n := e.predSelBetween(leftCls, rightCls)
	if negSurvival > 0 && negSurvival < 1 {
		sel *= negSurvival
	}
	co := ci * sel // output cardinality is hash-independent
	ciProbed := ci
	if e.UseHash {
		// hash-evaluated equality predicates restrict probing to the
		// matching partition: the equality selectivity applies to the
		// input-access cost, and the predicate costs nothing to check.
		eqSel := 1.0
		for i, pi := range e.In.Preds {
			if pi.EqJoin != nil && predBetween(pi, leftCls, rightCls) {
				eqSel *= st.predSel(i)
				n--
			}
		}
		ciProbed *= eqSel
	}
	return Estimate{
		Card: co,
		Cost: l.Cost + r.Cost + ciProbed + float64(n)*K*ciProbed + P*co,
	}
}

// NegTopEstimate adds the negation-on-top filter cost (Table 2 negation
// row): Ci = CARD of the child plan; the output keeps the share of
// composites with no interleaving negation event.
func (e *Estimator) NegTopEstimate(child Estimate, survival float64) Estimate {
	ci := child.Card
	co := child.Card * survival
	return Estimate{Card: co, Cost: child.Cost + ci + P*co}
}

// DefaultNegSurvival is the share of composites not invalidated by a
// negation term, 1 - Pt_{A,B}·Pt_{B,C} with default time selectivities.
func (e *Estimator) DefaultNegSurvival() float64 {
	pt := e.Stats.pt()
	return 1 - pt*pt
}

// ShapeEstimate estimates a full shape over units (sum of all operator
// costs, §5.1: "the cost of an entire tree plan can simply be estimated by
// adding up the costs of all the operators in the tree").
func (e *Estimator) ShapeEstimate(units []*plan.Unit, s *plan.Shape) Estimate {
	if s.Unit >= 0 {
		return e.UnitEstimate(units[s.Unit])
	}
	l := e.ShapeEstimate(units, s.L)
	r := e.ShapeEstimate(units, s.R)
	surv := 1.0
	if u := units[s.R.Leaves()[0]]; u.Kind == plan.UnitNSeqLeft {
		surv = e.DefaultNegSurvival()
	}
	return e.SeqJoin(l, r, e.classesOf(units, s.L), e.classesOf(units, s.R), surv)
}

// NodeEstimate is the per-operator cost breakdown of one shape node, for
// EXPLAIN output: leaf-position nodes describe planning units, internal
// nodes the SEQ joins combining them. Cost is cumulative (children
// included), so the root's estimate equals ShapeEstimate's result.
type NodeEstimate struct {
	// Desc names the node: the unit's string form for leaves, "seq" for
	// internal joins.
	Desc string
	// Classes are the event classes the node's output covers, sorted.
	Classes []int
	// Est is the node's costed summary per Formula (1).
	Est Estimate
	// Children are the node's sub-plans, left to right (empty for units).
	Children []*NodeEstimate
}

// ShapeBreakdown renders the per-node estimates of a full shape, mirroring
// ShapeEstimate's recursion node by node.
func (e *Estimator) ShapeBreakdown(units []*plan.Unit, s *plan.Shape) *NodeEstimate {
	if s.Unit >= 0 {
		u := units[s.Unit]
		cls := append([]int{}, u.Classes...)
		sort.Ints(cls)
		return &NodeEstimate{Desc: u.String(), Classes: cls, Est: e.UnitEstimate(u)}
	}
	l := e.ShapeBreakdown(units, s.L)
	r := e.ShapeBreakdown(units, s.R)
	surv := 1.0
	if u := units[s.R.Leaves()[0]]; u.Kind == plan.UnitNSeqLeft {
		surv = e.DefaultNegSurvival()
	}
	lc, rc := e.classesOf(units, s.L), e.classesOf(units, s.R)
	est := e.SeqJoin(l.Est, r.Est, lc, rc, surv)
	cls := append(append([]int{}, lc...), rc...)
	sort.Ints(cls)
	return &NodeEstimate{Desc: "seq", Classes: cls, Est: est,
		Children: []*NodeEstimate{l, r}}
}

func (e *Estimator) classesOf(units []*plan.Unit, s *plan.Shape) []int {
	var out []int
	for _, ui := range s.Leaves() {
		out = append(out, units[ui].Classes...)
	}
	return out
}

// predSelBetween returns the product of selectivities and the count of
// multi-class predicates spanning the two class sets (contained in their
// union, non-aggregate).
func (e *Estimator) predSelBetween(a, b []int) (sel float64, n int) {
	sel = 1.0
	for i, pi := range e.In.Preds {
		if predBetween(pi, a, b) {
			sel *= e.Stats.predSel(i)
			n++
		}
	}
	return sel, n
}

// predSelWithin returns the product of selectivities of non-single
// predicates fully contained in the class set (KSEQ blocks).
func (e *Estimator) predSelWithin(cls []int) (sel float64, n int) {
	set := toSet(cls)
	sel = 1.0
	for i, pi := range e.In.Preds {
		if pi.Single() && !pi.HasAgg {
			continue
		}
		all := true
		for _, c := range pi.Classes {
			if !set[c] {
				all = false
			}
		}
		if all {
			sel *= e.Stats.predSel(i)
			n++
		}
	}
	return sel, n
}

func predBetween(pi *query.PredInfo, a, b []int) bool {
	if pi.Single() || pi.HasAgg {
		return false
	}
	sa, sb := toSet(a), toSet(b)
	spansA, spansB := false, false
	for _, c := range pi.Classes {
		switch {
		case sa[c]:
			spansA = true
		case sb[c]:
			spansB = true
		default:
			return false // references a class outside the union
		}
	}
	return spansA && spansB
}

func toSet(xs []int) map[int]bool {
	m := make(map[int]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}

// String renders the estimate.
func (est Estimate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "card=%.3g cost=%.3g", est.Card, est.Cost)
	return b.String()
}
