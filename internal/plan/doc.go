// Package plan turns an analyzed query into a physical tree plan (§4.1):
// leaf buffers with pushed-down single-class predicates, internal operator
// nodes with multi-class predicates, hash-based equality evaluation
// (§5.2.2), and negation placed either as an NSEQ push-down or as a final
// NEG filter (§4.4.2).
//
// Planning happens in two steps: the pattern's terms are grouped into
// *units* — the leaf blocks of operator ordering (a plain class, a
// conjunction, a disjunction, a fused KSEQ triple, or a class fused with an
// adjacent negation) — and a binary *shape* over the units picks the order
// in which sequence operators combine them (left-deep, right-deep, bushy,
// or an arbitrary tree produced by the optimizer's dynamic program).
//
// BuildSharedPrefix is the shared-subplan variant of Build: the leading
// run of single-class units is replaced by an externally fed source node
// (the shared producer's output), with prefix-internal predicates skipped
// locally and cross-boundary predicates attached to the joins above it.
package plan
