package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/buffer"
	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/operator"
	"repro/internal/query"
)

// Options configures physical plan construction.
type Options struct {
	// Negation selects NSEQ push-down vs the NEG-on-top filter (§4.4.2).
	Negation NegPlacement
	// UseHash enables hash-based evaluation of equality predicates
	// (§5.2.2).
	UseHash bool
	// Adaptive retains consumed leaf-buffer records so the engine can
	// switch plans without losing state (§5.3). Static mode drops them
	// (Algorithm 1 line 7).
	Adaptive bool
}

// Plan is an executable physical tree plan.
type Plan struct {
	Root    operator.Node
	Leaves  []*operator.Leaf // indexed by class
	Buffers []*buffer.Buf    // every buffer of the plan (EAT eviction, memory)
	Window  int64
	Info    *query.Info
	Units   []*Unit
	Shape   *Shape
	Opts    Options

	// emitChecks are record-level conditions applied when draining the
	// root (negation cases whose exact bounds need the full match span).
	emitChecks []func(*buffer.Record) bool
}

// Build constructs a physical plan for q over the given shape. When leaves
// is non-nil it must hold one leaf per class (shared with a previous plan,
// for adaptive switching); otherwise fresh leaves are created.
func Build(q *query.Query, shape *Shape, opts Options, leaves []*operator.Leaf) (*Plan, error) {
	in := q.Info
	if in == nil {
		return nil, fmt.Errorf("plan: query not analyzed")
	}
	units, topNegs, err := Units(in, opts.Negation)
	if err != nil {
		return nil, err
	}
	if shape == nil {
		shape = LeftDeep(len(units))
	}
	if err := shape.Validate(len(units)); err != nil {
		return nil, err
	}

	b := &builder{q: q, in: in, opts: opts, units: units, window: q.Within,
		predPlaced: make([]bool, len(in.Preds))}
	b.findDisjClasses()
	if leaves != nil {
		if len(leaves) != in.NumClasses() {
			return nil, fmt.Errorf("plan: %d shared leaves for %d classes", len(leaves), in.NumClasses())
		}
		b.leaves = leaves
	} else if err := b.makeLeaves(); err != nil {
		return nil, err
	}

	root, err := b.buildShape(shape)
	if err != nil {
		return nil, err
	}

	// negation-on-top filter, if any terms were deferred
	root, err = b.negFilterOn(root, topNegs)
	if err != nil {
		return nil, err
	}

	// unplaced multi-class predicates are a programming error in the
	// planner (single-class predicates live in leaf filters, negation
	// predicates inside NSEQ/NEG nodes) — except predicates between two
	// alternatives of one disjunction, which can never be co-bound and
	// pass vacuously under the disjunction-tolerant rule
	for i, placed := range b.predPlaced {
		pi := in.Preds[i]
		if !placed && !pi.Single() && !b.isNegPred(pi) && !b.withinOneDisj(pi) {
			return nil, fmt.Errorf("plan: predicate %s was not placed", pi)
		}
	}

	p := &Plan{
		Root: root, Leaves: b.leaves, Window: q.Within, Info: in,
		Units: units, Shape: shape, Opts: opts, emitChecks: b.emitChecks,
	}
	p.collectBuffers()
	return p, nil
}

// BuildSharedPrefix constructs a physical plan for q whose first prefixLen
// classes are not evaluated locally: their buffering and joining is
// delegated to a shared subplan (one producer serving many queries), and
// src — a leaf-position node the runtime wires to the producer's output —
// stands in for the whole prefix subtree. The remaining units chain onto
// src left-deep; predicates fully contained in the prefix are the
// producer's responsibility and are skipped here, while predicates
// spanning the prefix and later classes attach to the joins above src as
// usual. Prefix classes get shadow leaves (filter evaluation and observer
// accounting without buffering), so ProcessAdmitted/Process behave exactly
// as in an unshared engine.
//
// The prefix must be a leading run of UnitSimple units covering classes
// 0..prefixLen-1 under opts.Negation — callers establish eligibility with
// query.SharablePrefix plus the unit check (see core.SharedPrefixLen).
func BuildSharedPrefix(q *query.Query, opts Options, prefixLen int, src operator.Node) (*Plan, error) {
	in := q.Info
	if in == nil {
		return nil, fmt.Errorf("plan: query not analyzed")
	}
	units, topNegs, err := Units(in, opts.Negation)
	if err != nil {
		return nil, err
	}
	if prefixLen < 2 || prefixLen >= len(units) {
		return nil, fmt.Errorf("plan: shared prefix of %d units needs at least one local unit above it (%d units total)", prefixLen, len(units))
	}
	for i := 0; i < prefixLen; i++ {
		if units[i].Kind != UnitSimple || units[i].Classes[0] != i {
			return nil, fmt.Errorf("plan: unit %d (%s) is not a plain class; prefix not shareable", i, units[i])
		}
	}

	b := &builder{q: q, in: in, opts: opts, units: units, window: q.Within,
		predPlaced: make([]bool, len(in.Preds)), shadowPrefix: prefixLen}
	b.findDisjClasses()
	if err := b.makeLeaves(); err != nil {
		return nil, err
	}
	// Predicates fully inside the prefix are evaluated by the producer.
	prefixCls := make([]int, prefixLen)
	for c := 0; c < prefixLen; c++ {
		prefixCls[c] = c
	}
	for i, pi := range in.Preds {
		if !pi.Single() && !pi.HasAgg && pi.Classes[len(pi.Classes)-1] < prefixLen {
			b.predPlaced[i] = true
		}
	}

	operator.SetDesc(src, operator.Desc{Classes: prefixCls,
		Detail: fmt.Sprintf("prefix=%d", prefixLen)})
	node := src
	built := append([]int{}, prefixCls...)
	for ui := prefixLen; ui < len(units); ui++ {
		u := units[ui]
		un, err := b.buildUnit(u)
		if err != nil {
			return nil, err
		}
		cover := append(append([]int{}, built...), u.Classes...)
		sort.Ints(cover)
		preds, hashJoin, predTexts, hashCond, err := b.nodePreds(cover, built, u.Classes, true)
		if err != nil {
			return nil, err
		}
		var guards []operator.PairGuard
		if u.Kind == UnitNSeqLeft {
			guards = append(guards, negLeftGuard(u.NegClasses))
		}
		dropRight := !b.opts.Adaptive || u.Kind != UnitSimple
		seq := operator.NewSeq(node, un, b.window, guards, preds, dropRight)
		if hashJoin != nil {
			seq.UseHash(*hashJoin)
		}
		seq.SetDesc(operator.Desc{Classes: cover, Preds: predTexts, Detail: hashCond})
		node = seq
		built = append(built, u.Classes...)
		sort.Ints(built)
	}
	root, err := b.negFilterOn(node, topNegs)
	if err != nil {
		return nil, err
	}

	for i, placed := range b.predPlaced {
		pi := in.Preds[i]
		if !placed && !pi.Single() && !b.isNegPred(pi) && !b.withinOneDisj(pi) {
			return nil, fmt.Errorf("plan: predicate %s was not placed", pi)
		}
	}

	p := &Plan{
		Root: root, Leaves: b.leaves, Window: q.Within, Info: in,
		Units: units, Shape: nil, Opts: opts, emitChecks: b.emitChecks,
	}
	p.collectBuffers()
	return p, nil
}

// collectBuffers walks the tree gathering every buffer (plus negation leaf
// buffers referenced by NSEQ/NEG nodes, which are leaves and already
// counted).
func (p *Plan) collectBuffers() {
	seen := map[*buffer.Buf]bool{}
	var walk func(n operator.Node)
	walk = func(n operator.Node) {
		if n == nil || seen[n.Out()] {
			return
		}
		seen[n.Out()] = true
		p.Buffers = append(p.Buffers, n.Out())
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p.Root)
	for _, l := range p.Leaves {
		if !seen[l.Out()] {
			seen[l.Out()] = true
			p.Buffers = append(p.Buffers, l.Out())
		}
	}
}

// EmitOK applies the emission-time negation checks to a root record.
func (p *Plan) EmitOK(r *buffer.Record) bool {
	for _, chk := range p.emitChecks {
		if !chk(r) {
			return false
		}
	}
	return true
}

// Fingerprint returns a deterministic identity string for the plan's
// physical structure: the nested operator labels (which encode leaf
// classes, hash mode, closure counts and negation placement). Two plans
// with equal fingerprints have structurally identical trees, so their
// per-node counters may be summed position-by-position; a plan switch is
// observable as a fingerprint change between consecutive snapshots.
func (p *Plan) Fingerprint() string {
	var sb strings.Builder
	var walk func(n operator.Node)
	walk = func(n operator.Node) {
		sb.WriteString(n.Label())
		ch := n.Children()
		if len(ch) == 0 {
			return
		}
		sb.WriteByte('(')
		for i, c := range ch {
			if i > 0 {
				sb.WriteByte(',')
			}
			walk(c)
		}
		sb.WriteByte(')')
	}
	walk(p.Root)
	return sb.String()
}

// Explain renders the operator tree, one node per line.
func (p *Plan) Explain() string {
	var sb strings.Builder
	var walk func(n operator.Node, depth int)
	walk = func(n operator.Node, depth int) {
		fmt.Fprintf(&sb, "%s%s\n", strings.Repeat("  ", depth), n.Label())
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(p.Root, 0)
	return sb.String()
}

// ---------------------------------------------------------------------------
// builder
// ---------------------------------------------------------------------------

type builder struct {
	q           *query.Query
	in          *query.Info
	opts        Options
	units       []*Unit
	window      int64
	leaves      []*operator.Leaf
	predPlaced  []bool
	disjClasses map[int]bool
	emitChecks  []func(*buffer.Record) bool
	// shadowPrefix > 0 marks classes [0, shadowPrefix) as delegated to a
	// shared subplan: their leaves evaluate filters but never buffer.
	shadowPrefix int
}

// findDisjClasses records which classes belong to disjunction units: a
// predicate referencing them passes when the class is unbound (the match
// came through the other alternative).
func (b *builder) findDisjClasses() {
	b.disjClasses = map[int]bool{}
	for _, u := range b.units {
		if u.Kind == UnitDisj {
			for _, c := range u.Classes {
				b.disjClasses[c] = true
			}
		}
	}
}

// makeLeaves creates one leaf per class with its single-class predicates
// pushed down.
func (b *builder) makeLeaves() error {
	n := b.in.NumClasses()
	b.leaves = make([]*operator.Leaf, n)
	for c := 0; c < n; c++ {
		var cmps []*query.Cmp
		var texts []string
		for _, pi := range b.in.Preds {
			if pi.Single() && pi.Classes[0] == c && !pi.HasAgg {
				cmps = append(cmps, pi.Cmp)
				texts = append(texts, pi.Cmp.String())
			}
		}
		filter, err := expr.CompilePreds(cmps)
		if err != nil {
			return err
		}
		if len(cmps) == 0 {
			filter = nil
		}
		detail := b.in.Classes[c].Alias
		if c < b.shadowPrefix {
			b.leaves[c] = operator.NewShadowLeaf(c, n, filter)
			detail += " (shadow)"
		} else {
			b.leaves[c] = operator.NewLeaf(c, n, filter)
		}
		b.leaves[c].SetDesc(operator.Desc{Classes: []int{c}, Preds: texts, Detail: detail})
	}
	return nil
}

// withinOneDisj reports whether the predicate references two or more
// alternatives of the same disjunction term. Such alternatives are never
// bound together, so the predicate is vacuously satisfied (ref semantics).
func (b *builder) withinOneDisj(pi *query.PredInfo) bool {
	for _, t := range b.in.Terms {
		if t.Kind != query.TermDisj {
			continue
		}
		set := toSet(t.Classes)
		n := 0
		for _, c := range pi.Classes {
			if set[c] {
				n++
			}
		}
		if n >= 2 {
			return true
		}
	}
	return false
}

// isNegPred reports whether the predicate references a negated class (it is
// evaluated inside an NSEQ or NEG filter rather than a SEQ node).
func (b *builder) isNegPred(pi *query.PredInfo) bool {
	for _, c := range pi.Classes {
		if b.in.Classes[c].Negated {
			return true
		}
	}
	return false
}

// negPred compiles the conjunction of multi-class predicates touching the
// given negation classes; texts are their source forms for EXPLAIN.
func (b *builder) negPred(negClasses []int) (expr.Predicate, []string, error) {
	negSet := map[int]bool{}
	for _, c := range negClasses {
		negSet[c] = true
	}
	var cmps []*query.Cmp
	var texts []string
	for _, pi := range b.in.Preds {
		if pi.Single() || pi.HasAgg {
			continue
		}
		for _, c := range pi.Classes {
			if negSet[c] {
				cmps = append(cmps, pi.Cmp)
				texts = append(texts, pi.Cmp.String())
				break
			}
		}
	}
	if len(cmps) == 0 {
		return nil, nil, nil
	}
	p, err := expr.CompilePreds(cmps)
	return p, texts, err
}

// negFilterOn wraps root in the negation-on-top filter for the deferred
// negation terms (a no-op when none were deferred), attaching the EXPLAIN
// description.
func (b *builder) negFilterOn(root operator.Node, topNegs []TopNeg) (operator.Node, error) {
	if len(topNegs) == 0 {
		return root, nil
	}
	specs := make([]operator.NegSpec, 0, len(topNegs))
	var negCls []int
	var texts []string
	for _, tn := range topNegs {
		pred, predTexts, err := b.negPred(tn.NegClasses)
		if err != nil {
			return nil, err
		}
		texts = append(texts, predTexts...)
		bufs := make([]*buffer.Buf, len(tn.NegClasses))
		for i, c := range tn.NegClasses {
			bufs[i] = b.leaves[c].Out()
		}
		negCls = append(negCls, tn.NegClasses...)
		specs = append(specs, operator.NegSpec{
			NegBufs: bufs, Pred: pred, Prev: tn.Prev, Next: tn.Next,
		})
	}
	nf := operator.NewNegFilter(root, specs, b.q.Within)
	cover := append(append([]int{}, root.Describe().Classes...), negCls...)
	sort.Ints(cover)
	nf.SetDesc(operator.Desc{Classes: cover, Preds: texts,
		Detail: fmt.Sprintf("terms=%d", len(specs))})
	return nf, nil
}

// buildShape recursively constructs the operator tree for a shape node.
func (b *builder) buildShape(s *Shape) (operator.Node, error) {
	if s.Unit >= 0 {
		return b.buildUnit(b.units[s.Unit])
	}
	ln, err := b.buildShape(s.L)
	if err != nil {
		return nil, err
	}
	rn, err := b.buildShape(s.R)
	if err != nil {
		return nil, err
	}

	leftCls := b.coveredClasses(s.L)
	rightCls := b.coveredClasses(s.R)
	cover := append(append([]int{}, leftCls...), rightCls...)

	preds, hashJoin, predTexts, hashCond, err := b.nodePreds(cover, leftCls, rightCls, true)
	if err != nil {
		return nil, err
	}
	var guards []operator.PairGuard
	// middle-negation guard: when the right subtree's leftmost unit is an
	// NSEQ-left block, restrict left records to those ending at or after
	// the negating event (Figure 4's extra time constraint).
	if u := b.units[s.R.Leaves()[0]]; u.Kind == UnitNSeqLeft {
		guards = append(guards, negLeftGuard(u.NegClasses))
	}

	// Consumed right-side prefixes may be dropped unless the right child is
	// a leaf buffer that adaptive mode must retain for plan switching.
	dropRight := !b.opts.Adaptive || s.R.Unit < 0 || b.units[s.R.Unit].Kind != UnitSimple
	seq := operator.NewSeq(ln, rn, b.window, guards, preds, dropRight)
	if hashJoin != nil {
		seq.UseHash(*hashJoin)
	}
	sort.Ints(cover)
	seq.SetDesc(operator.Desc{Classes: cover, Preds: predTexts, Detail: hashCond})
	return seq, nil
}

// negLeftGuard passes a candidate (l, r) when r's negating event (if any)
// occurred no later than l's end: a of A may combine with (b, c) only when
// a.End >= b.ts.
func negLeftGuard(negClasses []int) operator.PairGuard {
	return func(l, r *buffer.Record) bool {
		for _, nc := range negClasses {
			if bEv := r.Slots[nc].E; bEv != nil && l.End < bEv.Ts {
				return false
			}
		}
		return true
	}
}

// coveredClasses returns the classes covered by a shape subtree, sorted.
func (b *builder) coveredClasses(s *Shape) []int {
	var out []int
	for _, ui := range s.Leaves() {
		out = append(out, b.units[ui].Classes...)
	}
	sort.Ints(out)
	return out
}

// nodePreds collects the multi-class predicates to evaluate at a sequence
// node covering exactly `cover`: predicates whose classes span both
// children and are fully contained in the cover, excluding negation and
// aggregate predicates (handled inside units). When hashing is enabled and
// an equality predicate joins the two children, it is returned as a
// HashSpec instead (only the first such predicate; further ones remain
// ordinary predicates). texts are the source forms of the placed
// predicates and hashCond the source form of the hash-probed equality,
// for EXPLAIN node descriptions.
func (b *builder) nodePreds(cover, leftCls, rightCls []int, allowHash bool) (pred expr.Predicate, hashSpec *operator.HashSpec, texts []string, hashCond string, err error) {
	coverSet := toSet(cover)
	leftSet := toSet(leftCls)
	rightSet := toSet(rightCls)

	var cmps []*query.Cmp
	var disjCmps []*query.Cmp // predicates touching disjunction alternatives
	var disjRefs [][]int
	var hash *operator.HashSpec
	for i, pi := range b.in.Preds {
		if pi.Single() || pi.HasAgg || b.isNegPred(pi) || b.predPlaced[i] {
			continue
		}
		inCover, spansL, spansR, touchesDisj := true, false, false, false
		for _, c := range pi.Classes {
			if !coverSet[c] {
				inCover = false
			}
			if leftSet[c] {
				spansL = true
			}
			if rightSet[c] {
				spansR = true
			}
			if b.disjClasses[c] {
				touchesDisj = true
			}
		}
		if !inCover || !spansL || !spansR {
			continue
		}
		b.predPlaced[i] = true
		if touchesDisj {
			disjCmps = append(disjCmps, pi.Cmp)
			disjRefs = append(disjRefs, pi.Classes)
			texts = append(texts, pi.Cmp.String())
			continue
		}
		if allowHash && b.opts.UseHash && hash == nil && pi.EqJoin != nil {
			if spec, ok := b.hashSpecFor(pi.EqJoin, leftSet, rightSet); ok {
				hash = &spec
				hashCond = pi.Cmp.String()
				continue
			}
		}
		cmps = append(cmps, pi.Cmp)
		texts = append(texts, pi.Cmp.String())
	}
	var preds []expr.Predicate
	if len(cmps) > 0 {
		p, err := expr.CompilePreds(cmps)
		if err != nil {
			return nil, nil, nil, "", err
		}
		preds = append(preds, p)
	}
	for k, c := range disjCmps {
		p, err := expr.CompilePred(c)
		if err != nil {
			return nil, nil, nil, "", err
		}
		preds = append(preds, disjTolerant(p, disjRefs[k], b.disjClasses))
	}
	switch len(preds) {
	case 0:
		return nil, hash, texts, hashCond, nil
	case 1:
		return preds[0], hash, texts, hashCond, nil
	default:
		all := preds
		return func(env expr.Env) bool {
			for _, p := range all {
				if !p(env) {
					return false
				}
			}
			return true
		}, hash, texts, hashCond, nil
	}
}

// disjTolerant wraps a predicate that references disjunction alternatives:
// when a referenced alternative is unbound (the match came through another
// branch of the disjunction), the predicate is vacuously satisfied.
func disjTolerant(p expr.Predicate, classes []int, disjClasses map[int]bool) expr.Predicate {
	var watch []int
	for _, c := range classes {
		if disjClasses[c] {
			watch = append(watch, c)
		}
	}
	return func(env expr.Env) bool {
		for _, c := range watch {
			if env.Event(c) == nil {
				return true
			}
		}
		return p(env)
	}
}

// hashSpecFor orients an equality join so the build side is in the left
// subtree and the probe side in the right (Algorithm 1 loops right outer,
// so "the hash table is built on A.f", §5.2.2).
func (b *builder) hashSpecFor(eq *query.EqJoin, leftSet, rightSet map[int]bool) (operator.HashSpec, bool) {
	var lc, rc int
	var la, ra string
	switch {
	case leftSet[eq.ClassL] && rightSet[eq.ClassR]:
		lc, la, rc, ra = eq.ClassL, eq.AttrL, eq.ClassR, eq.AttrR
	case leftSet[eq.ClassR] && rightSet[eq.ClassL]:
		lc, la, rc, ra = eq.ClassR, eq.AttrR, eq.ClassL, eq.AttrL
	default:
		return operator.HashSpec{}, false
	}
	lkey, rkey := expr.CompileKey(la), expr.CompileKey(ra)
	return operator.HashSpec{
		LeftKey: func(r *buffer.Record) event.Value {
			if ev := r.Slots[lc].E; ev != nil {
				return lkey(ev)
			}
			return event.Value{}
		},
		RightKey: func(r *buffer.Record) event.Value {
			if ev := r.Slots[rc].E; ev != nil {
				return rkey(ev)
			}
			return event.Value{}
		},
	}, true
}

// buildUnit constructs the operator subtree for one unit.
func (b *builder) buildUnit(u *Unit) (operator.Node, error) {
	switch u.Kind {
	case UnitSimple:
		return b.leaves[u.Classes[0]], nil

	case UnitConj:
		// left-deep chain of CONJ nodes; predicates internal to the
		// conjunction attach at the lowest covering node.
		var node operator.Node = b.leaves[u.Classes[0]]
		built := []int{u.Classes[0]}
		for _, c := range u.Classes[1:] {
			preds, _, predTexts, _, err := b.nodePreds(append(append([]int{}, built...), c), built, []int{c}, false)
			if err != nil {
				return nil, err
			}
			cj := operator.NewConj(node, b.leaves[c], b.window, preds)
			built = append(built, c)
			cover := append([]int{}, built...)
			sort.Ints(cover)
			cj.SetDesc(operator.Desc{Classes: cover, Preds: predTexts})
			node = cj
		}
		return node, nil

	case UnitDisj:
		children := make([]operator.Node, len(u.Classes))
		for i, c := range u.Classes {
			children[i] = b.leaves[c]
		}
		dj := operator.NewDisj(children, !b.opts.Adaptive)
		dj.SetDesc(operator.Desc{Classes: append([]int{}, u.Classes...)})
		return dj, nil

	case UnitKSeq:
		return b.buildKSeq(u)

	case UnitNSeqLeft:
		pred, predTexts, err := b.negPred(u.NegClasses)
		if err != nil {
			return nil, err
		}
		bufs := make([]*buffer.Buf, len(u.NegClasses))
		for i, c := range u.NegClasses {
			bufs[i] = b.leaves[c].Out()
		}
		ns := operator.NewNSeqLeft(bufs, u.NegClasses, b.leaves[u.Anchor], b.window, pred, !b.opts.Adaptive)
		ns.SetDesc(operator.Desc{Classes: sortedCover(u.NegClasses, u.Anchor), Preds: predTexts})
		// a leading negation (no classes before it) is checked at
		// emission: the negating event must fall outside the window
		// preceding the match end.
		if minClass(u.NegClasses) == 0 {
			negCls := append([]int{}, u.NegClasses...)
			w := b.window
			b.emitChecks = append(b.emitChecks, func(r *buffer.Record) bool {
				for _, nc := range negCls {
					if bEv := r.Slots[nc].E; bEv != nil && bEv.Ts >= r.End-w {
						return false
					}
				}
				return true
			})
		}
		return ns, nil

	case UnitNSeqRight:
		pred, predTexts, err := b.negPred(u.NegClasses)
		if err != nil {
			return nil, err
		}
		bufs := make([]*buffer.Buf, len(u.NegClasses))
		for i, c := range u.NegClasses {
			bufs[i] = b.leaves[c].Out()
		}
		ns := operator.NewNSeqRight(b.leaves[u.Anchor], bufs, u.NegClasses, b.window, pred, !b.opts.Adaptive)
		ns.SetDesc(operator.Desc{Classes: sortedCover(u.NegClasses, u.Anchor), Preds: predTexts})
		negCls := append([]int{}, u.NegClasses...)
		w := b.window
		b.emitChecks = append(b.emitChecks, func(r *buffer.Record) bool {
			for _, nc := range negCls {
				if bEv := r.Slots[nc].E; bEv != nil && bEv.Ts <= r.Start+w {
					return false
				}
			}
			return true
		})
		return ns, nil
	}
	return nil, fmt.Errorf("plan: unknown unit kind %v", u.Kind)
}

// buildKSeq assembles the trinary KSEQ node and splits its predicates into
// per-event and group parts.
func (b *builder) buildKSeq(u *Unit) (operator.Node, error) {
	unitSet := toSet(u.Classes)
	var perEvent, group []*query.Cmp
	var texts []string
	for i, pi := range b.in.Preds {
		if pi.Single() && !pi.HasAgg {
			continue // pushed to leaves
		}
		inUnit := true
		for _, c := range pi.Classes {
			if !unitSet[c] {
				inUnit = false
			}
		}
		touchesMid := false
		for _, c := range pi.Classes {
			if c == u.MidClass {
				touchesMid = true
			}
		}
		if !inUnit {
			if touchesMid && !pi.HasAgg {
				return nil, fmt.Errorf("plan: predicate %s references closure class %s and classes outside its KSEQ block", pi, b.in.Classes[u.MidClass].Alias)
			}
			continue
		}
		b.predPlaced[i] = true
		texts = append(texts, pi.Cmp.String())
		switch {
		case pi.HasAgg:
			group = append(group, pi.Cmp)
		case touchesMid:
			perEvent = append(perEvent, pi.Cmp)
		default: // start-end predicate: checked on the assembled record
			group = append(group, pi.Cmp)
		}
	}
	var pe, gp expr.Predicate
	var err error
	if len(perEvent) > 0 {
		if pe, err = expr.CompilePreds(perEvent); err != nil {
			return nil, err
		}
	}
	if len(group) > 0 {
		if gp, err = expr.CompilePreds(group); err != nil {
			return nil, err
		}
	}
	var start, end operator.Node
	if u.StartClass >= 0 {
		start = b.leaves[u.StartClass]
	}
	if u.EndClass >= 0 {
		end = b.leaves[u.EndClass]
	}
	ks := operator.NewKSeq(start, b.leaves[u.MidClass].Out(), u.MidClass, end,
		b.in.NumClasses(), b.window, u.Closure, u.Count, pe, gp, !b.opts.Adaptive)
	cover := append([]int{}, u.Classes...)
	sort.Ints(cover)
	ks.SetDesc(operator.Desc{Classes: cover, Preds: texts,
		Detail: fmt.Sprintf("mid=%s", b.in.Classes[u.MidClass].Alias)})
	return ks, nil
}

// sortedCover returns classes plus extra, sorted ascending.
func sortedCover(classes []int, extra int) []int {
	out := append([]int{extra}, classes...)
	sort.Ints(out)
	return out
}

func toSet(xs []int) map[int]bool {
	m := make(map[int]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}

func minClass(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
