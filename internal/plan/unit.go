package plan

import (
	"fmt"
	"strings"

	"repro/internal/query"
)

// UnitKind classifies a planning unit.
type UnitKind int

const (
	// UnitSimple is a single event class.
	UnitSimple UnitKind = iota
	// UnitConj is a conjunction of classes (evaluated by CONJ nodes).
	UnitConj
	// UnitDisj is a disjunction of classes (evaluated by a DISJ merge).
	UnitDisj
	// UnitKSeq is a Kleene closure fused with its start/end anchor classes.
	UnitKSeq
	// UnitNSeqLeft is a negation fused with its following class:
	// NSEQ(!B, C) (Algorithm 2).
	UnitNSeqLeft
	// UnitNSeqRight is a trailing negation fused with its preceding class:
	// NSEQ(B, !C).
	UnitNSeqRight
)

// String implements fmt.Stringer.
func (k UnitKind) String() string {
	return [...]string{"class", "conj", "disj", "kseq", "nseq<", "nseq>"}[k]
}

// Unit is one leaf block of operator ordering. Units appear in temporal
// order; sequence operators may only combine contiguous runs of units.
type Unit struct {
	Kind UnitKind
	// Classes are all classes the unit binds, in temporal order,
	// including negated ones.
	Classes []int

	// Negation fields (UnitNSeqLeft / UnitNSeqRight).
	NegClasses []int
	Anchor     int // the non-negated class of the block

	// Kleene fields (UnitKSeq). StartClass/EndClass are -1 when the
	// closure opens/closes the pattern.
	StartClass int
	MidClass   int
	EndClass   int
	Closure    query.ClosureKind
	Count      int
}

// NonNegClasses returns the unit's classes excluding negated ones.
func (u *Unit) NonNegClasses() []int {
	if len(u.NegClasses) == 0 {
		return u.Classes
	}
	neg := map[int]bool{}
	for _, c := range u.NegClasses {
		neg[c] = true
	}
	var out []int
	for _, c := range u.Classes {
		if !neg[c] {
			out = append(out, c)
		}
	}
	return out
}

// String implements fmt.Stringer.
func (u *Unit) String() string {
	return fmt.Sprintf("%s%v", u.Kind, u.Classes)
}

// NegPlacement selects how negation terms are evaluated.
type NegPlacement int

const (
	// NegAuto lets the planner push negation down when eligible.
	NegAuto NegPlacement = iota
	// NegPushdown forces NSEQ; ineligible patterns are rejected.
	NegPushdown
	// NegTop forces the negation-on-top filter.
	NegTop
)

// TopNeg describes a negation term deferred to the top-of-plan filter.
type TopNeg struct {
	Term       int
	NegClasses []int
	Prev, Next []int // non-negated classes before/after the term
}

// Units derives the planning units for an analyzed query.
// topNegs lists negation terms that could not (or were configured not to)
// be pushed down and must be applied by a NEG filter above the root.
func Units(in *query.Info, placement NegPlacement) (units []*Unit, topNegs []TopNeg, err error) {
	// First pass: decide which negation terms are pushed down.
	type negDecision struct {
		push  bool
		left  bool // true: fuse with following term (NSEQ-left)
		fused int  // term index of the anchor
	}
	negs := map[int]negDecision{}
	for ti, t := range in.Terms {
		if t.Kind != query.TermNeg {
			continue
		}
		eligible, left, anchor := negPushdownTarget(in, ti)
		switch placement {
		case NegTop:
			negs[ti] = negDecision{push: false}
		case NegPushdown:
			if !eligible {
				return nil, nil, fmt.Errorf("plan: negation term %d cannot be pushed down (predicates span multiple non-negation classes or no adjacent plain class)", ti)
			}
			negs[ti] = negDecision{push: true, left: left, fused: anchor}
		default:
			negs[ti] = negDecision{push: eligible, left: left, fused: anchor}
		}
	}

	// Second pass: build units, fusing pushed-down negations and Kleene
	// closures with their anchor classes.
	fusedInto := map[int]int{} // term index -> unit index it was fused into
	for ti := 0; ti < len(in.Terms); ti++ {
		t := in.Terms[ti]
		switch t.Kind {
		case query.TermNeg:
			d := negs[ti]
			if !d.push {
				topNegs = append(topNegs, TopNeg{
					Term:       ti,
					NegClasses: t.Classes,
					Prev:       classesBefore(in, ti),
					Next:       classesAfter(in, ti),
				})
				continue
			}
			if d.left {
				// fuse with the FOLLOWING class term
				anchor := in.Terms[d.fused]
				units = append(units, &Unit{
					Kind:       UnitNSeqLeft,
					Classes:    append(append([]int{}, t.Classes...), anchor.Classes[0]),
					NegClasses: t.Classes,
					Anchor:     anchor.Classes[0],
				})
				fusedInto[d.fused] = len(units) - 1
				ti = d.fused // skip the anchor term
			} else {
				// trailing negation: fuse with the PRECEDING unit, which
				// must be the last unit built and a simple class
				last := len(units) - 1
				if last < 0 || units[last].Kind != UnitSimple {
					return nil, nil, fmt.Errorf("plan: trailing negation needs a preceding plain class")
				}
				prev := units[last]
				units[last] = &Unit{
					Kind:       UnitNSeqRight,
					Classes:    append(append([]int{}, prev.Classes...), t.Classes...),
					NegClasses: t.Classes,
					Anchor:     prev.Classes[0],
				}
			}
		case query.TermClass:
			if _, fused := fusedInto[ti]; fused {
				continue
			}
			units = append(units, &Unit{Kind: UnitSimple, Classes: t.Classes})
		case query.TermConj:
			units = append(units, &Unit{Kind: UnitConj, Classes: t.Classes})
		case query.TermDisj:
			units = append(units, &Unit{Kind: UnitDisj, Classes: t.Classes})
		case query.TermKleene:
			u := &Unit{
				Kind:       UnitKSeq,
				MidClass:   t.Classes[0],
				StartClass: -1,
				EndClass:   -1,
				Closure:    t.Closure,
				Count:      t.Count,
			}
			// fuse the preceding simple unit as the start anchor
			if n := len(units); n > 0 && units[n-1].Kind == UnitSimple {
				u.StartClass = units[n-1].Classes[0]
				units = units[:n-1]
			}
			// fuse the following simple class term as the end anchor
			if ti+1 < len(in.Terms) && in.Terms[ti+1].Kind == query.TermClass {
				u.EndClass = in.Terms[ti+1].Classes[0]
				fusedInto[ti+1] = len(units)
			}
			if u.StartClass < 0 && u.EndClass < 0 && len(in.Terms) > 1 {
				return nil, nil, fmt.Errorf("plan: Kleene closure must be adjacent to a plain event class")
			}
			var cls []int
			if u.StartClass >= 0 {
				cls = append(cls, u.StartClass)
			}
			cls = append(cls, u.MidClass)
			if u.EndClass >= 0 {
				cls = append(cls, u.EndClass)
			}
			u.Classes = cls
			units = append(units, u)
		}
	}
	if len(units) == 0 {
		return nil, nil, fmt.Errorf("plan: pattern has no positive event classes")
	}
	return units, topNegs, nil
}

// negPushdownTarget decides whether the negation term ti is NSEQ-eligible
// and which neighbor it fuses with. A negation can be pushed down when its
// multi-class predicates reference at most one non-negation class (§4.4.2)
// and that class is an adjacent plain class. Predicates with aggregates are
// never eligible.
func negPushdownTarget(in *query.Info, ti int) (eligible, left bool, anchorTerm int) {
	t := in.Terms[ti]
	negSet := map[int]bool{}
	for _, c := range t.Classes {
		negSet[c] = true
	}
	// collect the non-negation classes the negation's predicates touch
	refs := map[int]bool{}
	for _, p := range in.Preds {
		touchesNeg := false
		for _, c := range p.Classes {
			if negSet[c] {
				touchesNeg = true
			}
		}
		if !touchesNeg {
			continue
		}
		if p.HasAgg {
			return false, false, 0
		}
		for _, c := range p.Classes {
			if !negSet[c] {
				refs[c] = true
			}
		}
	}
	if len(refs) > 1 {
		return false, false, 0
	}

	followOK := ti+1 < len(in.Terms) && in.Terms[ti+1].Kind == query.TermClass
	precedeOK := ti == len(in.Terms)-1 && ti > 0 && in.Terms[ti-1].Kind == query.TermClass

	if len(refs) == 1 {
		var ref int
		for c := range refs {
			ref = c
		}
		if followOK && in.Terms[ti+1].Classes[0] == ref {
			return true, true, ti + 1
		}
		if precedeOK && in.Terms[ti-1].Classes[0] == ref {
			return true, false, ti - 1
		}
		return false, false, 0
	}
	// unconstrained negation: prefer the following class (Algorithm 2),
	// fall back to trailing form
	if followOK {
		return true, true, ti + 1
	}
	if precedeOK {
		return true, false, ti - 1
	}
	return false, false, 0
}

func classesBefore(in *query.Info, ti int) []int {
	var out []int
	for i := 0; i < ti; i++ {
		if in.Terms[i].Kind != query.TermNeg {
			out = append(out, in.Terms[i].Classes...)
		}
	}
	return out
}

func classesAfter(in *query.Info, ti int) []int {
	var out []int
	for i := ti + 1; i < len(in.Terms); i++ {
		if in.Terms[i].Kind != query.TermNeg {
			out = append(out, in.Terms[i].Classes...)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// shapes
// ---------------------------------------------------------------------------

// Shape is a binary tree over unit indexes. A leaf has Unit >= 0 and nil
// children; an internal node has Unit == -1. The in-order traversal of a
// valid shape visits units 0..n-1 consecutively (sequences only combine
// contiguous, ordered runs).
type Shape struct {
	Unit int
	L, R *Shape
}

// ShapeLeaf returns a leaf shape for unit i.
func ShapeLeaf(i int) *Shape { return &Shape{Unit: i} }

// Join combines two shapes with a sequence operator.
func Join(l, r *Shape) *Shape { return &Shape{Unit: -1, L: l, R: r} }

// LeftDeep builds ((0;1);2);... over n units.
func LeftDeep(n int) *Shape {
	s := ShapeLeaf(0)
	for i := 1; i < n; i++ {
		s = Join(s, ShapeLeaf(i))
	}
	return s
}

// RightDeep builds 0;(1;(2;...)) over n units.
func RightDeep(n int) *Shape {
	s := ShapeLeaf(n - 1)
	for i := n - 2; i >= 0; i-- {
		s = Join(ShapeLeaf(i), s)
	}
	return s
}

// Leaves returns the unit indexes in in-order.
func (s *Shape) Leaves() []int {
	if s == nil {
		return nil
	}
	if s.Unit >= 0 {
		return []int{s.Unit}
	}
	return append(s.L.Leaves(), s.R.Leaves()...)
}

// Validate checks that the shape covers exactly units 0..n-1 in order.
func (s *Shape) Validate(n int) error {
	ls := s.Leaves()
	if len(ls) != n {
		return fmt.Errorf("plan: shape covers %d units, want %d", len(ls), n)
	}
	for i, u := range ls {
		if u != i {
			return fmt.Errorf("plan: shape leaf %d is unit %d; units must appear in temporal order", i, u)
		}
	}
	return nil
}

// String implements fmt.Stringer.
func (s *Shape) String() string {
	if s.Unit >= 0 {
		return fmt.Sprint(s.Unit)
	}
	return "(" + s.L.String() + " " + s.R.String() + ")"
}

// ParseShape parses the String() form: "(((0 1) 2) 3)".
func ParseShape(src string) (*Shape, error) {
	toks := strings.Fields(strings.ReplaceAll(strings.ReplaceAll(src, "(", " ( "), ")", " ) "))
	pos := 0
	var parse func() (*Shape, error)
	parse = func() (*Shape, error) {
		if pos >= len(toks) {
			return nil, fmt.Errorf("plan: unexpected end of shape")
		}
		tok := toks[pos]
		pos++
		if tok == "(" {
			l, err := parse()
			if err != nil {
				return nil, err
			}
			r, err := parse()
			if err != nil {
				return nil, err
			}
			if pos >= len(toks) || toks[pos] != ")" {
				return nil, fmt.Errorf("plan: expected ')' in shape")
			}
			pos++
			return Join(l, r), nil
		}
		var u int
		if _, err := fmt.Sscanf(tok, "%d", &u); err != nil {
			return nil, fmt.Errorf("plan: bad shape token %q", tok)
		}
		return ShapeLeaf(u), nil
	}
	s, err := parse()
	if err != nil {
		return nil, err
	}
	if pos != len(toks) {
		return nil, fmt.Errorf("plan: trailing shape tokens")
	}
	return s, nil
}
