package plan

import (
	"strings"
	"testing"

	"repro/internal/query"
)

func unitsOf(t *testing.T, src string, mode NegPlacement) ([]*Unit, []TopNeg) {
	t.Helper()
	q := query.MustParse(src)
	units, negs, err := Units(q.Info, mode)
	if err != nil {
		t.Fatalf("Units(%q): %v", src, err)
	}
	return units, negs
}

func TestUnitsSimpleSequence(t *testing.T) {
	units, negs := unitsOf(t, "PATTERN A;B;C WITHIN 10", NegAuto)
	if len(units) != 3 || len(negs) != 0 {
		t.Fatalf("units=%v negs=%v", units, negs)
	}
	for i, u := range units {
		if u.Kind != UnitSimple || u.Classes[0] != i {
			t.Errorf("unit %d = %v", i, u)
		}
	}
}

func TestUnitsNegationPushdown(t *testing.T) {
	units, negs := unitsOf(t, "PATTERN A;!B;C WITHIN 10", NegAuto)
	if len(units) != 2 || len(negs) != 0 {
		t.Fatalf("units=%v negs=%v", units, negs)
	}
	if units[1].Kind != UnitNSeqLeft || units[1].Anchor != 2 {
		t.Errorf("nseq unit = %+v", units[1])
	}
	if len(units[1].NegClasses) != 1 || units[1].NegClasses[0] != 1 {
		t.Errorf("neg classes = %v", units[1].NegClasses)
	}
}

func TestUnitsNegationTrailing(t *testing.T) {
	units, _ := unitsOf(t, "PATTERN A;B;!C WITHIN 10", NegAuto)
	if len(units) != 2 {
		t.Fatalf("units = %v", units)
	}
	if units[1].Kind != UnitNSeqRight || units[1].Anchor != 1 {
		t.Errorf("trailing unit = %+v", units[1])
	}
}

func TestUnitsNegationTopForced(t *testing.T) {
	units, negs := unitsOf(t, "PATTERN A;!B;C WITHIN 10", NegTop)
	if len(units) != 2 || len(negs) != 1 {
		t.Fatalf("units=%v negs=%v", units, negs)
	}
	if negs[0].NegClasses[0] != 1 || negs[0].Prev[0] != 0 || negs[0].Next[0] != 2 {
		t.Errorf("topneg = %+v", negs[0])
	}
}

func TestUnitsNegationPredOnPreceding(t *testing.T) {
	// predicate between negation and its preceding class: push-down is
	// ineligible (Algorithm 2 requires predicates on one side only, and
	// the left form needs them on the following class)
	q := query.MustParse("PATTERN A;!B;C WHERE B.price < A.price WITHIN 10")
	_, negs, err := Units(q.Info, NegAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(negs) != 1 {
		t.Fatalf("expected NEG-top fallback, negs = %v", negs)
	}
	if _, _, err := Units(q.Info, NegPushdown); err == nil {
		t.Error("forced pushdown should fail")
	}
}

func TestUnitsNegationPredBothSides(t *testing.T) {
	q := query.MustParse("PATTERN A;!B;C WHERE B.price < A.price AND B.price < C.price WITHIN 10")
	_, negs, err := Units(q.Info, NegAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(negs) != 1 {
		t.Error("predicates over two non-negation classes must fall back to NEG-top (§4.4.2)")
	}
}

func TestUnitsKleeneFusing(t *testing.T) {
	units, _ := unitsOf(t, "PATTERN A;B*;C;D WITHIN 10", NegAuto)
	if len(units) != 2 {
		t.Fatalf("units = %v", units)
	}
	k := units[0]
	if k.Kind != UnitKSeq || k.StartClass != 0 || k.MidClass != 1 || k.EndClass != 2 {
		t.Errorf("kseq unit = %+v", k)
	}
	if units[1].Kind != UnitSimple || units[1].Classes[0] != 3 {
		t.Errorf("tail unit = %+v", units[1])
	}
}

func TestUnitsKleeneBoundary(t *testing.T) {
	units, _ := unitsOf(t, "PATTERN B*;C WITHIN 10", NegAuto)
	if len(units) != 1 || units[0].StartClass != -1 || units[0].EndClass != 1 {
		t.Fatalf("leading closure units = %+v", units[0])
	}
	units, _ = unitsOf(t, "PATTERN A;B+ WITHIN 10", NegAuto)
	if len(units) != 1 || units[0].StartClass != 0 || units[0].EndClass != -1 {
		t.Fatalf("trailing closure units = %+v", units[0])
	}
}

func TestUnitsConjDisj(t *testing.T) {
	units, _ := unitsOf(t, "PATTERN (A&B);(C|D);E WITHIN 10", NegAuto)
	if len(units) != 3 {
		t.Fatalf("units = %v", units)
	}
	if units[0].Kind != UnitConj || units[1].Kind != UnitDisj || units[2].Kind != UnitSimple {
		t.Errorf("kinds: %v %v %v", units[0].Kind, units[1].Kind, units[2].Kind)
	}
}

func TestNonNegClasses(t *testing.T) {
	units, _ := unitsOf(t, "PATTERN A;!B;C WITHIN 10", NegAuto)
	nn := units[1].NonNegClasses()
	if len(nn) != 1 || nn[0] != 2 {
		t.Errorf("NonNegClasses = %v", nn)
	}
	simple := &Unit{Kind: UnitSimple, Classes: []int{5}}
	if got := simple.NonNegClasses(); len(got) != 1 || got[0] != 5 {
		t.Errorf("simple NonNegClasses = %v", got)
	}
}

func TestShapes(t *testing.T) {
	ld := LeftDeep(4)
	if got := ld.String(); got != "(((0 1) 2) 3)" {
		t.Errorf("LeftDeep = %q", got)
	}
	rd := RightDeep(4)
	if got := rd.String(); got != "(0 (1 (2 3)))" {
		t.Errorf("RightDeep = %q", got)
	}
	if err := ld.Validate(4); err != nil {
		t.Error(err)
	}
	if err := ld.Validate(3); err == nil {
		t.Error("wrong arity accepted")
	}
	bad := Join(ShapeLeaf(1), ShapeLeaf(0))
	if err := bad.Validate(2); err == nil {
		t.Error("out-of-order shape accepted")
	}
}

func TestParseShape(t *testing.T) {
	for _, src := range []string{"0", "(0 1)", "(((0 1) 2) 3)", "((0 1) (2 3))", "(0 ((1 2) 3))"} {
		s, err := ParseShape(src)
		if err != nil {
			t.Errorf("ParseShape(%q): %v", src, err)
			continue
		}
		if s.String() != src {
			t.Errorf("round trip: %q -> %q", src, s.String())
		}
	}
	for _, src := range []string{"", "(0", "(0 1))", "(x 1)", "(0 1) 2"} {
		if _, err := ParseShape(src); err == nil {
			t.Errorf("ParseShape(%q): expected error", src)
		}
	}
}

func TestBuildShapesAndExplain(t *testing.T) {
	q := query.MustParse(`PATTERN A;B;C;D
		WHERE A.name='A' AND B.name='B' AND C.name='C' AND D.name='D'
		AND A.price > D.price WITHIN 10`)
	for _, src := range []string{"(((0 1) 2) 3)", "(0 (1 (2 3)))", "((0 1) (2 3))", "(0 ((1 2) 3))"} {
		sh, err := ParseShape(src)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Build(q, sh, Options{}, nil)
		if err != nil {
			t.Fatalf("Build(%s): %v", src, err)
		}
		if len(p.Leaves) != 4 {
			t.Errorf("%s: leaves = %d", src, len(p.Leaves))
		}
		if len(p.Buffers) == 0 {
			t.Errorf("%s: no buffers", src)
		}
		exp := p.Explain()
		if strings.Count(exp, "seq") != 3 || strings.Count(exp, "leaf") != 4 {
			t.Errorf("%s: explain:\n%s", src, exp)
		}
	}
}

func TestBuildHashPlacement(t *testing.T) {
	q := query.MustParse(`PATTERN A;B;C WHERE A.name = C.name WITHIN 10`)
	p, err := Build(q, LeftDeep(3), Options{UseHash: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Explain(), "seq[hash]") {
		t.Errorf("hash join not placed:\n%s", p.Explain())
	}
	// without the option, no hash node
	p2, err := Build(q, LeftDeep(3), Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p2.Explain(), "hash") {
		t.Error("hash placed although disabled")
	}
}

func TestBuildNegationPlans(t *testing.T) {
	q := query.MustParse(`PATTERN A;!B;C WITHIN 10`)
	push, err := Build(q, nil, Options{Negation: NegPushdown}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(push.Explain(), "nseq") {
		t.Errorf("pushdown plan:\n%s", push.Explain())
	}
	top, err := Build(q, nil, Options{Negation: NegTop}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(top.Explain(), "neg-top") {
		t.Errorf("top plan:\n%s", top.Explain())
	}
}

func TestBuildSharedLeaves(t *testing.T) {
	q := query.MustParse(`PATTERN A;B;C WITHIN 10`)
	p1, err := Build(q, LeftDeep(3), Options{Adaptive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Build(q, RightDeep(3), Options{Adaptive: true}, p1.Leaves)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Leaves {
		if p1.Leaves[i] != p2.Leaves[i] {
			t.Errorf("leaf %d not shared", i)
		}
	}
	// wrong arity rejected
	if _, err := Build(q, LeftDeep(3), Options{}, p1.Leaves[:2]); err == nil {
		t.Error("mismatched shared leaves accepted")
	}
}

func TestBuildErrors(t *testing.T) {
	q := query.MustParse(`PATTERN A;B;C WITHIN 10`)
	bad := Join(ShapeLeaf(0), ShapeLeaf(2))
	if _, err := Build(q, bad, Options{}, nil); err == nil {
		t.Error("invalid shape accepted")
	}
	if _, err := Build(&query.Query{}, nil, Options{}, nil); err == nil {
		t.Error("unanalyzed query accepted")
	}
	// Kleene per-event predicate reaching outside its block
	q2 := query.MustParse(`PATTERN A;B;C*;D WHERE C.price > A.price WITHIN 10`)
	if _, err := Build(q2, nil, Options{}, nil); err == nil {
		t.Error("out-of-block closure predicate accepted")
	}
}

func TestUnitKindString(t *testing.T) {
	for k, want := range map[UnitKind]string{
		UnitSimple: "class", UnitConj: "conj", UnitDisj: "disj",
		UnitKSeq: "kseq", UnitNSeqLeft: "nseq<", UnitNSeqRight: "nseq>",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
