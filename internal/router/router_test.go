package router

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/query"
)

func info(t *testing.T, src string) *query.Info {
	t.Helper()
	return query.MustParse(src).Info
}

// routeOne routes a single event and returns the delivered masks by sub id.
func routeOne(r *Router, ev *event.Event) map[int64]uint64 {
	out := map[int64]uint64{}
	for _, sb := range r.Route([]*event.Event{ev}) {
		for _, d := range sb.Events {
			out[sb.ID] = d.Mask
		}
	}
	return out
}

func TestEqualityDispatch(t *testing.T) {
	r := New()
	for i, sym := range []string{"IBM", "Sun", "Oracle"} {
		r.Add(int64(i), info(t, fmt.Sprintf(
			`PATTERN A; B WHERE A.name = '%s' AND B.name = '%s' AND B.price > A.price WITHIN 10`, sym, sym)), nil)
	}
	got := routeOne(r, event.NewStock(1, 1, 1, "Sun", 50, 1))
	if len(got) != 1 || got[1] != 0b11 {
		t.Fatalf("Sun event delivered to %v, want {1: 0b11}", got)
	}
	if got := routeOne(r, event.NewStock(2, 2, 1, "Google", 50, 1)); len(got) != 0 {
		t.Fatalf("Google event delivered to %v, want nothing", got)
	}
	st := r.Stats()
	if st.Events != 2 || st.Deliveries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestResidualDedupe(t *testing.T) {
	r := New()
	// 8 queries over different symbols share the identical residual
	// "price * volume > 90" on both classes (different aliases, same
	// fingerprint; the arithmetic keeps it off the range-dispatch path).
	for i := 0; i < 8; i++ {
		src := fmt.Sprintf(`PATTERN L%d; H%d WHERE L%d.name = 'S%d' AND L%d.price * L%d.volume > 90
			AND H%d.name = 'S%d' AND H%d.price * H%d.volume > 90 WITHIN 10`, i, i, i, i, i, i, i, i, i, i)
		r.Add(int64(i), info(t, src), nil)
	}
	if n := len(r.atomBy); n != 1 {
		t.Fatalf("distinct residual atoms = %d, want 1 (deduped)", n)
	}
	r.Route([]*event.Event{event.NewStock(1, 1, 1, "S3", 95, 1)})
	st := r.Stats()
	if st.ResidualEvals != 1 {
		t.Errorf("residual evals = %d, want 1 (once per event, not per query)", st.ResidualEvals)
	}
	if st.Deliveries != 1 {
		t.Errorf("deliveries = %d, want 1", st.Deliveries)
	}
	// below the price threshold: dispatch hits S3's entries, residual fails
	r.Route([]*event.Event{event.NewStock(2, 2, 1, "S3", 50, 1)})
	if st := r.Stats(); st.Deliveries != 1 {
		t.Errorf("low-price event delivered, deliveries = %d", st.Deliveries)
	}
}

func TestResidualOnlyScanAndMask(t *testing.T) {
	r := New()
	r.Add(1, info(t, `PATTERN A; B WHERE A.price > 90 AND B.price < 10 WITHIN 10`), nil)
	if got := routeOne(r, event.NewStock(1, 1, 1, "X", 95, 1)); got[1] != 0b01 {
		t.Errorf("high-price mask = %b, want 01", got[1])
	}
	if got := routeOne(r, event.NewStock(2, 2, 1, "X", 5, 1)); got[1] != 0b10 {
		t.Errorf("low-price mask = %b, want 10", got[1])
	}
	if got := routeOne(r, event.NewStock(3, 3, 1, "X", 50, 1)); len(got) != 0 {
		t.Errorf("mid-price delivered %v, want nothing", got)
	}
}

func TestAlwaysAdmittedClassDegradesToFullDelivery(t *testing.T) {
	r := New()
	// B has no single-class predicate: every event must reach the query
	// with B's bit set (the documented O(Q) degradation).
	r.Add(1, info(t, `PATTERN A; B WHERE A.name = 'IBM' WITHIN 10`), nil)
	if got := routeOne(r, event.NewStock(1, 1, 1, "Sun", 50, 1)); got[1] != 0b10 {
		t.Errorf("Sun mask = %b, want 10 (B only)", got[1])
	}
	if got := routeOne(r, event.NewStock(2, 2, 1, "IBM", 50, 1)); got[1] != 0b11 {
		t.Errorf("IBM mask = %b, want 11", got[1])
	}
}

func TestManyClassFallback(t *testing.T) {
	var names []string
	for i := 0; i < 65; i++ {
		names = append(names, fmt.Sprintf("C%d", i))
	}
	src := "PATTERN " + strings.Join(names, "; ") + " WHERE C0.name = 'IBM' WITHIN 1000"
	r := New()
	r.Add(1, info(t, src), nil)
	if got := routeOne(r, event.NewStock(1, 1, 1, "Sun", 50, 1)); got[1] != MaskAll {
		t.Errorf("65-class query mask = %x, want MaskAll", got[1])
	}
}

func TestTsEqualityStaysResidual(t *testing.T) {
	r := New()
	r.Add(1, info(t, `PATTERN A; B WHERE A.ts = 5 WITHIN 10`), nil)
	if got := routeOne(r, event.NewStock(1, 5, 1, "X", 50, 1)); got[1] != 0b11 {
		t.Errorf("ts=5 event mask = %b, want 11", got[1])
	}
	if got := routeOne(r, event.NewStock(2, 6, 1, "X", 50, 1)); got[1] != 0b10 {
		t.Errorf("ts=6 event mask = %b, want 10", got[1])
	}
}

func TestSchemaLazinessAndMissingAttr(t *testing.T) {
	r := New()
	r.Add(1, info(t, `PATTERN A; B WHERE A.price > 90 AND B.ip = '1.2.3.4' WITHIN 10`), nil)
	// Stock schema has no "ip": B's eq atom can never hold there.
	if got := routeOne(r, event.NewStock(1, 1, 1, "X", 95, 1)); got[1] != 0b01 {
		t.Errorf("stock mask = %b, want 01", got[1])
	}
	// Weblog has no "price": A's residual evaluates against null → false.
	if got := routeOne(r, event.NewWeblog(2, 2, "1.2.3.4", "/", "x")); got[1] != 0b10 {
		t.Errorf("weblog mask = %b, want 10", got[1])
	}
	if len(r.tables) != 2 {
		t.Errorf("compiled tables = %d, want 2 (one per schema seen)", len(r.tables))
	}
}

func TestRemoveReleasesAtomsAndStopsDelivery(t *testing.T) {
	r := New()
	r.Add(1, info(t, `PATTERN A; B WHERE A.name = 'IBM' AND A.price * A.volume > 90 AND B.name = 'IBM' WITHIN 10`), nil)
	r.Add(2, info(t, `PATTERN X; Y WHERE X.name = 'IBM' AND X.price * X.volume > 90 AND Y.name = 'IBM' WITHIN 10`), nil)
	if n := len(r.atomBy); n != 1 {
		t.Fatalf("atoms = %d, want 1 shared", n)
	}
	ev := event.NewStock(1, 1, 1, "IBM", 95, 1)
	if got := routeOne(r, ev); len(got) != 2 {
		t.Fatalf("delivered to %v, want both", got)
	}
	r.Remove(1)
	if got := routeOne(r, ev); len(got) != 1 || got[2] == 0 {
		t.Errorf("after remove delivered to %v, want only 2", got)
	}
	if n := len(r.atomBy); n != 1 {
		t.Errorf("atoms after partial remove = %d, want 1 (still referenced)", n)
	}
	r.Remove(2)
	if n := len(r.atomBy); n != 0 {
		t.Errorf("atoms after full remove = %d, want 0", n)
	}
	if r.Subs() != 0 {
		t.Errorf("subs = %d", r.Subs())
	}
}

// TestRouteSteadyStateZeroAllocs pins the routing hot path: once schema
// tables are compiled and scratch batches warmed, routing allocates
// nothing per event.
func TestRouteSteadyStateZeroAllocs(t *testing.T) {
	r := New()
	for i := 0; i < 64; i++ {
		r.Add(int64(i), info(t, fmt.Sprintf(
			`PATTERN A; B WHERE A.name = 'S%02d' AND A.price > 90 AND B.name = 'S%02d' WITHIN 10`, i%16, i%16)), nil)
	}
	// Pure threshold-family queries exercise the sorted-threshold stab path.
	for i := 0; i < 64; i++ {
		r.Add(int64(64+i), info(t, fmt.Sprintf(
			`PATTERN A; B WHERE A.price > %d AND A.price <= %d WITHIN 10`, i, i+10)), nil)
	}
	events := make([]*event.Event, 256)
	for i := range events {
		events[i] = event.NewStock(uint64(i+1), int64(i), 1, fmt.Sprintf("S%02d", i%16), float64(i%100), 1)
	}
	for i := 0; i < 4; i++ { // warm scratch
		r.Route(events)
	}
	avg := testing.AllocsPerRun(100, func() { r.Route(events) })
	if avg != 0 {
		t.Errorf("Route allocates %.2f per batch in steady state, want 0", avg)
	}
}
