package router

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/query"
)

func TestRangeDispatchBasics(t *testing.T) {
	r := New()
	// 64 threshold-family queries: same shape, distinct constants. Under
	// gen-2 none of them interns a residual atom, and routing one event
	// costs one binary search (per direction), not 64 predicate evals.
	for i := 0; i < 64; i++ {
		r.Add(int64(i), info(t, fmt.Sprintf(
			`PATTERN A; B WHERE A.price > %d AND B.name = 'X' WITHIN 10`, i)), nil)
	}
	if n := len(r.atomBy); n != 0 {
		t.Fatalf("residual atoms = %d, want 0 (ranges dispatch, not intern)", n)
	}
	got := routeOne(r, event.NewStock(1, 1, 1, "X", 10.5, 1))
	for i := 0; i < 64; i++ {
		wantA := 10.5 > float64(i)
		m := got[int64(i)]
		if gotA := m&0b01 != 0; gotA != wantA {
			t.Errorf("query %d (price > %d): A admitted = %v, want %v", i, i, gotA, wantA)
		}
		if m&0b10 == 0 {
			t.Errorf("query %d: B bit missing from mask %b", i, m)
		}
	}
	st := r.Stats()
	if st.ResidualEvals != 0 {
		t.Errorf("residual evals = %d, want 0", st.ResidualEvals)
	}
	if st.RangeProbes != 1 {
		t.Errorf("range probes = %d, want 1 (one gt stab)", st.RangeProbes)
	}
	if n := r.RangeTableSize(); n != 64 {
		t.Errorf("range table size = %d, want 64", n)
	}
}

func TestRangeBoundarySemantics(t *testing.T) {
	cases := []struct {
		pred            string
		below, at, over bool // admission at th-1, th, th+1 for th=50
	}{
		{`A.price < 50`, true, false, false},
		{`A.price <= 50`, true, true, false},
		{`A.price > 50`, false, false, true},
		{`A.price >= 50`, false, true, true},
		// literal-on-left orientation must normalize to the same atom
		{`50 > A.price`, true, false, false},
		{`50 >= A.price`, true, true, false},
		{`50 < A.price`, false, false, true},
		{`50 <= A.price`, false, true, true},
	}
	for _, tc := range cases {
		r := New()
		r.Add(1, info(t, fmt.Sprintf(`PATTERN A; B WHERE %s WITHIN 10`, tc.pred)), nil)
		for i, want := range []bool{tc.below, tc.at, tc.over} {
			price := float64(49 + i)
			got := routeOne(r, event.NewStock(uint64(i+1), int64(i), 1, "X", price, 1))
			if adm := got[1]&0b01 != 0; adm != want {
				t.Errorf("%s at price=%g: admitted = %v, want %v", tc.pred, price, adm, want)
			}
		}
	}
}

func TestRangeBetweenShape(t *testing.T) {
	r := New()
	// Two-sided conjunction: dispatches on the first range atom, checks the
	// second as an entry-level compare.
	r.Add(1, info(t, `PATTERN A; B WHERE A.price > 10 AND A.price <= 20 WITHIN 10`), nil)
	for _, tc := range []struct {
		price float64
		want  bool
	}{{10, false}, {10.5, true}, {20, true}, {20.5, false}, {5, false}} {
		got := routeOne(r, event.NewStock(1, 1, 1, "X", tc.price, 1))
		if adm := got[1]&0b01 != 0; adm != tc.want {
			t.Errorf("10 < price <= 20 at %g: admitted = %v, want %v", tc.price, adm, tc.want)
		}
	}
}

func TestRangeDuplicateThresholds(t *testing.T) {
	r := New()
	// Four queries sharing one threshold, differing only in strictness and
	// direction: the equal-threshold walk must filter by inclusivity.
	r.Add(1, info(t, `PATTERN A; B WHERE A.price > 50 WITHIN 10`), nil)
	r.Add(2, info(t, `PATTERN A; B WHERE A.price >= 50 WITHIN 10`), nil)
	r.Add(3, info(t, `PATTERN A; B WHERE A.price < 50 WITHIN 10`), nil)
	r.Add(4, info(t, `PATTERN A; B WHERE A.price <= 50 WITHIN 10`), nil)
	got := routeOne(r, event.NewStock(1, 1, 1, "X", 50, 1))
	for id, want := range map[int64]bool{1: false, 2: true, 3: false, 4: true} {
		if adm := got[id]&0b01 != 0; adm != want {
			t.Errorf("query %d at price=50: admitted = %v, want %v", id, adm, want)
		}
	}
}

func TestRangeChurnIncremental(t *testing.T) {
	r := New()
	r.Add(1, info(t, `PATTERN A; B WHERE A.price > 10 WITHIN 10`), nil)
	ev := event.NewStock(1, 1, 1, "X", 95, 1)
	if got := routeOne(r, ev); got[1]&0b01 == 0 {
		t.Fatalf("query 1 not admitted: %v", got)
	}
	// Incremental Add must land in the already-compiled table.
	r.Add(2, info(t, `PATTERN A; B WHERE A.price > 20 WITHIN 10`), nil)
	if got := routeOne(r, ev); got[2]&0b01 == 0 {
		t.Fatalf("incrementally added query 2 not admitted: %v", got)
	}
	if n := r.RangeTableSize(); n != 2 {
		t.Errorf("range table size = %d, want 2", n)
	}
	r.Remove(1)
	got := routeOne(r, ev)
	if _, ok := got[1]; ok {
		t.Errorf("removed query 1 still delivered: %v", got)
	}
	if got[2]&0b01 == 0 {
		t.Errorf("query 2 lost after removing 1: %v", got)
	}
	if n := r.RangeTableSize(); n != 1 {
		t.Errorf("range table size after remove = %d, want 1", n)
	}
}

func TestRangeDescribeReportsAtoms(t *testing.T) {
	r := New()
	r.Add(1, info(t, `PATTERN A; B WHERE A.name = 'IBM' AND A.price > 90 AND A.price * A.volume > 5 WITHIN 10`), nil)
	si, ok := r.Describe(1)
	if !ok {
		t.Fatal("Describe failed")
	}
	a := si.Classes[0]
	if len(a.EqAtoms) != 1 || len(a.RangeAtoms) != 1 || len(a.Residual) != 1 {
		t.Fatalf("class A atoms eq=%v range=%v resid=%v, want 1 of each", a.EqAtoms, a.RangeAtoms, a.Residual)
	}
	if a.RangeAtoms[0] != "A.price > 90" {
		t.Errorf("range atom text = %q", a.RangeAtoms[0])
	}
}

func TestRangeTsStaysResidual(t *testing.T) {
	r := New()
	// ts is a pseudo-attribute with no schema position: a ts comparison
	// must take the residual path, not the threshold table.
	r.Add(1, info(t, `PATTERN A; B WHERE A.ts > 5 WITHIN 10`), nil)
	if n := len(r.atomBy); n != 1 {
		t.Fatalf("residual atoms = %d, want 1 (ts comparison)", n)
	}
	if got := routeOne(r, event.NewStock(1, 7, 1, "X", 50, 1)); got[1]&0b01 == 0 {
		t.Errorf("ts=7 not admitted for ts > 5: %v", got)
	}
	if got := routeOne(r, event.NewStock(2, 3, 1, "X", 50, 1)); got[1]&0b01 != 0 {
		t.Errorf("ts=3 admitted for ts > 5: %v", got)
	}
}

func TestRangeDisableFallsBackToResidual(t *testing.T) {
	r := New()
	r.DisableRangeDispatch()
	r.Add(1, info(t, `PATTERN A; B WHERE A.price > 90 WITHIN 10`), nil)
	if n := len(r.atomBy); n != 1 {
		t.Fatalf("gen-1 mode residual atoms = %d, want 1", n)
	}
	if got := routeOne(r, event.NewStock(1, 1, 1, "X", 95, 1)); got[1]&0b01 == 0 {
		t.Errorf("gen-1 mode did not admit: %v", got)
	}
	if st := r.Stats(); st.RangeProbes != 0 || st.ResidualEvals != 1 {
		t.Errorf("gen-1 stats = %+v, want 0 probes / 1 residual eval", st)
	}
}

// TestRangePropertyMatchesExprEval is the satellite property test: for
// generated threshold sets (duplicates, negatives, zero, int- and
// float-valued) and probe values sitting exactly on, just off, and far from
// every boundary, range-dispatch admission must equal direct expr
// evaluation of the same comparison.
func TestRangePropertyMatchesExprEval(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ops := []string{"<", "<=", ">", ">="}
	for trial := 0; trial < 20; trial++ {
		nq := 1 + rng.Intn(24)
		type q struct {
			op string
			th float64
		}
		qs := make([]q, nq)
		thPool := []float64{-100, -1.5, -1, 0, 0.5, 1, 2, 50, 50.5, 1e6}
		for i := range qs {
			th := thPool[rng.Intn(len(thPool))]
			if rng.Intn(3) == 0 {
				th = float64(rng.Intn(200) - 100) // force duplicate-ish ints
			}
			qs[i] = q{op: ops[rng.Intn(len(ops))], th: th}
		}
		r := New()
		preds := make([]expr.Predicate, nq)
		for i, qq := range qs {
			// 'f' formatting: the grammar has no exponent literals.
			src := fmt.Sprintf(`PATTERN A; B WHERE A.price %s %s WITHIN 10`,
				qq.op, strconv.FormatFloat(qq.th, 'f', -1, 64))
			qi := info(t, src)
			r.Add(int64(i), qi, nil)
			var cmp *query.Cmp
			for _, pi := range qi.Preds {
				cmp = pi.Cmp
			}
			p, err := expr.CompilePred(cmp)
			if err != nil {
				t.Fatalf("compile %q: %v", src, err)
			}
			preds[i] = p
		}
		// Probe every threshold exactly, ±epsilon, ±1, plus random values.
		var probes []float64
		for _, qq := range qs {
			probes = append(probes, qq.th, qq.th-0.25, qq.th+0.25, qq.th-1, qq.th+1)
		}
		for i := 0; i < 16; i++ {
			probes = append(probes, (rng.Float64()-0.5)*300)
		}
		for pi, v := range probes {
			ev := event.NewStock(uint64(pi+1), int64(pi), 1, "X", v, 1)
			got := routeOne(r, ev)
			for i := range qs {
				env := expr.EventEnv{Class: 0, E: ev}
				want := preds[i](&env)
				if adm := got[int64(i)]&0b01 != 0; adm != want {
					t.Fatalf("trial %d: price %s %g at v=%g: dispatch=%v expr=%v",
						trial, qs[i].op, qs[i].th, v, adm, want)
				}
			}
		}
	}
}

// TestIntFloatLiteralCoherence is the satellite cross-layer regression:
// an integer-typed event value, a float literal of equal numeric value, and
// an int literal must agree across (1) expr comparison eval, (2) the
// eq-dispatch map key, and (3) sorted-threshold keys. event.Int stores
// KindFloat, so all three layers compare float64s — this pins that.
func TestIntFloatLiteralCoherence(t *testing.T) {
	r := New()
	r.Add(1, info(t, `PATTERN A; B WHERE A.volume = 5 WITHIN 10`), nil)   // eq, int literal
	r.Add(2, info(t, `PATTERN A; B WHERE A.volume = 5.0 WITHIN 10`), nil) // eq, float literal
	r.Add(3, info(t, `PATTERN A; B WHERE A.volume >= 5 WITHIN 10`), nil)  // range, int literal
	r.Add(4, info(t, `PATTERN A; B WHERE A.volume >= 5.0 WITHIN 10`), nil)

	// volume arrives as event.Int (KindFloat under the hood) via NewStock.
	got := routeOne(r, event.NewStock(1, 1, 1, "X", 10, 5))
	for id := int64(1); id <= 4; id++ {
		if got[id]&0b01 == 0 {
			t.Errorf("query %d: int-valued volume=5 not admitted (mask %b)", id, got[id])
		}
	}
	// And an explicitly Int-constructed value must hit the same map keys.
	ev := event.MustNew(event.Stock, 2, event.Int(1), event.Str("X"), event.Float(10), event.Int(5))
	ev.Seq = 2
	got = routeOne(r, ev)
	for id := int64(1); id <= 4; id++ {
		if got[id]&0b01 == 0 {
			t.Errorf("query %d: event.Int(5) volume not admitted (mask %b)", id, got[id])
		}
	}
	// expr eval agrees with both.
	qi := info(t, `PATTERN A; B WHERE A.volume = 5 WITHIN 10`)
	var cmp *query.Cmp
	for _, pi := range qi.Preds {
		cmp = pi.Cmp
	}
	p, err := expr.CompilePred(cmp)
	if err != nil {
		t.Fatal(err)
	}
	env := expr.EventEnv{Class: 0, E: ev}
	if !p(&env) {
		t.Error("expr eval rejects event.Int(5) = 5")
	}
}

// TestRangeFingerprintMatchesCmp pins that FingerprintRangeAtom produces
// byte-identical output to FingerprintCmp for any comparison RangeAtom
// accepts, in either orientation — the invariant that lets range and
// residual layers share one canonical atom identity.
func TestRangeFingerprintMatchesCmp(t *testing.T) {
	for _, src := range []string{
		`PATTERN A; B WHERE A.price > 90 WITHIN 10`,
		`PATTERN A; B WHERE 90 < A.price WITHIN 10`,
		`PATTERN A; B WHERE A.price <= -2.5 WITHIN 10`,
		`PATTERN A; B WHERE 0 >= A.volume WITHIN 10`,
	} {
		qi := info(t, src)
		for _, pi := range qi.Preds {
			attr, op, th, ok := query.RangeAtom(pi.Cmp)
			if !ok {
				t.Fatalf("%s: RangeAtom rejected %s", src, pi.Cmp)
			}
			want, canonical := query.FingerprintCmp(pi.Cmp)
			if !canonical {
				t.Fatalf("%s: not canonical", src)
			}
			if got := query.FingerprintRangeAtom(attr, op, th); got != want {
				t.Errorf("%s: FingerprintRangeAtom = %q, FingerprintCmp = %q", src, got, want)
			}
		}
	}
}
