package router

import (
	"math/bits"
	"slices"

	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/query"
)

// MaskAll marks a delivery whose admission was NOT proved per class: the
// receiving engine must evaluate its leaf filters as usual (fallback
// subscriptions).
const MaskAll = ^uint64(0)

// Delivery is one admitted event for one subscriber with the set of
// admitted classes (bit i ⇔ class index i), or MaskAll for fallbacks.
type Delivery struct {
	Ev   *event.Event
	Mask uint64
}

// SubBatch is one subscriber's mini-batch for the routed event batch.
// Events appear in input order. The slice is owned by the router and valid
// only until the next Route call.
type SubBatch struct {
	ID      int64
	Payload any
	Events  []Delivery
}

// Stats counts router work since creation.
type Stats struct {
	Events        uint64 // events routed
	Deliveries    uint64 // (subscriber, event) pairs yielded
	ResidualEvals uint64 // deduped residual predicate evaluations
	RangeProbes   uint64 // sorted-threshold table stabs (binary searches)
}

// eqAtom is one `attr = const` admission atom, by attribute name
// (resolved to a value position per schema at table-compile time).
type eqAtom struct {
	attr string
	val  event.Value
	text string // predicate source text, for EXPLAIN
}

// rangeAtom is one `attr OP const` admission atom (OP in <, <=, >, >=),
// normalized attribute-on-the-left by query.RangeAtom. Range atoms compile
// into per-schema sorted-threshold tables: one binary search per event per
// (attr, direction) replaces one interned-residual evaluation per distinct
// constant, so a family of thousands of threshold-alert queries costs
// O(log thresholds + admitted) instead of O(distinct thresholds).
type rangeAtom struct {
	attr string
	op   query.CmpOp // CmpLt/CmpLte/CmpGt/CmpGte, attr on the left
	th   float64
	text string // predicate source text, for EXPLAIN
}

// classAdm is the compiled admission condition of one query class: all eq
// atoms, all range atoms and all residual atoms must hold.
type classAdm struct {
	bit   uint64
	eqs   []eqAtom
	rngs  []rangeAtom
	resid []int // indices into Router.atoms
}

// sub is one registered query.
type sub struct {
	id      int64
	payload any
	classes []classAdm
	// alwaysMask covers classes with no single-class predicates: they
	// admit every event unconditionally.
	alwaysMask uint64
	// fallback subscriptions always receive every event with MaskAll
	// (>64 classes, or predicate compilation failed).
	fallback bool
	// nclasses is the query's class count (admitted's length for indexed
	// subscriptions).
	nclasses int
	// admitted counts per-class admissions since Add (EXPLAIN's
	// unconditioned view); nil for fallback subscriptions, whose
	// deliveries prove nothing per class.
	admitted []uint64
	// baseEvents is the router's event counter at Add time, so
	// events-seen-since-subscribe = stats.Events - baseEvents.
	baseEvents uint64

	// per-event accumulation scratch (epoch-stamped).
	mask  uint64
	epoch uint64
	batch []Delivery
}

// atom is one deduplicated residual predicate with a per-event memo.
type atom struct {
	fp    string
	text  string // predicate source text, for EXPLAIN
	pred  expr.Predicate
	env   expr.EventEnv // Class bound to the introducing query's class
	refs  int
	epoch uint64
	val   bool
}

// entry is one (subscriber, class) admission check in a compiled schema
// table: the remaining eq and range atoms (beyond the dispatch atom, if
// any) plus the residual atom set.
type entry struct {
	s        *sub
	bit      uint64
	extra    []resolvedEq
	extraRng []resolvedRange
	resid    []int
}

type resolvedEq struct {
	idx int // value position in the schema
	val event.Value
}

// resolvedRange is an entry-level range check: the second side of a
// BETWEEN-shaped conjunction, or a range atom on a class whose dispatch is
// served by an eq atom. One float compare per candidate entry.
type resolvedRange struct {
	idx int // value position in the schema
	op  query.CmpOp
	th  float64
}

// dispatchGroup hash-dispatches on one attribute position: the event's
// value at idx selects the entries to check.
type dispatchGroup struct {
	idx   int
	byVal map[event.Value][]entry
}

// rangeEntry is one subscriber entry keyed by its dispatch threshold in a
// sorted-threshold list. incl marks an inclusive bound (<= / >=): an event
// whose value equals th admits the entry only when incl is set.
type rangeEntry struct {
	th   float64
	incl bool
	e    entry
}

// rangeGroup range-dispatches on one attribute position: gt holds entries
// whose dispatch atom is `attr > th` / `attr >= th`, lt entries with
// `attr < th` / `attr <= th`, each sorted ascending by threshold. An event
// value v stabs each side with one binary search: gt admits the prefix of
// thresholds below v, lt the suffix above it, with equal thresholds
// filtered by incl. Enumerating the admitted segment is O(answers) — work
// any dispatch scheme pays — while rejected thresholds cost nothing.
type rangeGroup struct {
	idx int
	gt  []rangeEntry
	lt  []rangeEntry
}

// schemaTable is the index specialized to one event schema. Tables are
// compiled lazily on first sight of a schema and invalidated by
// Add/Remove.
type schemaTable struct {
	groups []dispatchGroup
	ranges []rangeGroup
	scan   []entry // residual-only classes: checked for every event
}

// Router indexes subscriptions and classifies event batches. Not safe for
// concurrent use; each shard worker owns one.
type Router struct {
	subs []*sub
	byID map[int64]*sub
	// flat is the per-event O(Q) remainder: fallback subscriptions and
	// subscriptions with an always-admitted class. Everything else is
	// reached only through dispatch/scan entries.
	flat    []*sub
	atoms   []*atom
	atomBy  map[string]int
	freeIDs []int // recycled atom slots
	tables  map[*event.Schema]*schemaTable
	// lastSchema/lastTable cache the previous event's table: consecutive
	// events almost always share a schema, turning the per-event map
	// probe into a pointer compare.
	lastSchema *event.Schema
	lastTable  *schemaTable
	epoch      uint64
	stats      Stats
	// noRange forces range atoms back onto the interned-residual path (the
	// generation-1 router). Kept for differential testing: generation-2
	// dispatch is semantics-preserving, so production routers leave it off.
	noRange bool

	// reused scratch: subs admitted for the current event / batch, and the
	// returned batch headers.
	touched []*sub
	active  []*sub
	out     []SubBatch
}

// New returns an empty router.
func New() *Router {
	return &Router{
		byID:   map[int64]*sub{},
		atomBy: map[string]int{},
		tables: map[*event.Schema]*schemaTable{},
	}
}

// DisableRangeDispatch reverts the router to generation-1 behavior: range
// atoms are interned as residual predicates and evaluated once per distinct
// constant per event, instead of compiling into sorted-threshold tables.
// Must be called before the first Add; exists for differential testing.
func (r *Router) DisableRangeDispatch() { r.noRange = true }

// Add registers a query's admission predicates under id. The payload rides
// along in SubBatch for the caller's dispatch (e.g. the engine). Existing
// schema tables are updated incrementally; the subscription takes effect
// for the next Route call, which — with the runtime's queue-ordered
// registration ops — is an exact stream position.
func (r *Router) Add(id int64, info *query.Info, payload any) {
	s := &sub{id: id, payload: payload, baseEvents: r.stats.Events}
	// Class bits are indexed by ClassInfo.Idx, which suffix-only infos
	// (shared-prefix consumers) retain from the full query, so sizing must
	// follow the max index, not the class count.
	for _, ci := range info.Classes {
		if ci.Idx+1 > s.nclasses {
			s.nclasses = ci.Idx + 1
		}
	}
	if s.nclasses > 64 {
		s.fallback = true
	} else if classes, always, ok := r.compileClasses(info); ok {
		s.classes, s.alwaysMask = classes, always
		s.admitted = make([]uint64, s.nclasses)
	} else {
		s.fallback = true // predicate compilation failed
	}
	r.subs = append(r.subs, s)
	r.byID[id] = s
	if s.fallback || s.alwaysMask != 0 {
		r.flat = append(r.flat, s)
	}
	if !s.fallback {
		for sc, t := range r.tables {
			r.addToTable(t, s, sc)
		}
	}
}

// Remove drops the subscription and releases its residual atoms. Compiled
// tables are rebuilt lazily from the remaining subscriptions.
func (r *Router) Remove(id int64) {
	s, ok := r.byID[id]
	if !ok {
		return
	}
	delete(r.byID, id)
	for i, x := range r.subs {
		if x == s {
			r.subs = append(r.subs[:i], r.subs[i+1:]...)
			break
		}
	}
	for i, x := range r.flat {
		if x == s {
			r.flat = append(r.flat[:i], r.flat[i+1:]...)
			break
		}
	}
	for _, ca := range s.classes {
		for _, ai := range ca.resid {
			r.releaseAtom(ai)
		}
	}
	// Entry slices hold *sub pointers; dropping the tables is simpler and
	// safer than surgically removing entries, and unregistration is rare
	// relative to per-event routing.
	clear(r.tables)
	r.lastSchema, r.lastTable = nil, nil
}

// compileClasses builds the admission conditions for every class, mirroring
// exactly the predicate set plan.Build pushes into leaf filters
// (single-class, non-aggregate).
func (r *Router) compileClasses(info *query.Info) (classes []classAdm, always uint64, ok bool) {
	for _, ci := range info.Classes {
		ca := classAdm{bit: 1 << uint(ci.Idx)}
		for _, pi := range info.Preds {
			if !pi.Single() || pi.Classes[0] != ci.Idx || pi.HasAgg {
				continue
			}
			if attr, lit, ok := query.EqualityAtom(pi.Cmp); ok && attr != expr.TsAttr {
				ca.eqs = append(ca.eqs, eqAtom{attr: attr, val: litValue(lit), text: pi.Cmp.String()})
				continue
			}
			// ts is a pseudo-attribute, not a schema value position, so ts
			// comparisons stay residual (same rule as eq atoms above).
			if attr, op, th, ok := query.RangeAtom(pi.Cmp); ok && attr != expr.TsAttr && !r.noRange {
				ca.rngs = append(ca.rngs, rangeAtom{attr: attr, op: op, th: th, text: pi.Cmp.String()})
				continue
			}
			ai, ok := r.atomFor(pi.Cmp, ci.Idx)
			if !ok {
				// roll back the refs this compilation took
				for _, c := range classes {
					for _, prev := range c.resid {
						r.releaseAtom(prev)
					}
				}
				for _, prev := range ca.resid {
					r.releaseAtom(prev)
				}
				return nil, 0, false
			}
			ca.resid = append(ca.resid, ai)
		}
		if len(ca.eqs) == 0 && len(ca.rngs) == 0 && len(ca.resid) == 0 {
			always |= ca.bit
			continue
		}
		classes = append(classes, ca)
	}
	return classes, always, true
}

// releaseAtom decrements an atom's refcount, recycling its slot at zero.
func (r *Router) releaseAtom(i int) {
	a := r.atoms[i]
	a.refs--
	if a.refs == 0 {
		delete(r.atomBy, a.fp)
		r.atoms[i] = &atom{} // dead slot
		r.freeIDs = append(r.freeIDs, i)
	}
}

// atomFor interns a residual predicate by canonical fingerprint.
func (r *Router) atomFor(c *query.Cmp, class int) (int, bool) {
	fp, canonical := query.FingerprintCmp(c)
	if !canonical {
		// An AST node fingerprinting doesn't know: deduplicating on a
		// lossy fingerprint could conflate distinct predicates, so the
		// whole subscription falls back to unproven delivery.
		return 0, false
	}
	if i, ok := r.atomBy[fp]; ok {
		r.atoms[i].refs++
		return i, true
	}
	pred, err := expr.CompilePred(c)
	if err != nil {
		return 0, false
	}
	a := &atom{fp: fp, text: c.String(), pred: pred, env: expr.EventEnv{Class: class}, refs: 1}
	var i int
	if n := len(r.freeIDs); n > 0 {
		i = r.freeIDs[n-1]
		r.freeIDs = r.freeIDs[:n-1]
		r.atoms[i] = a
	} else {
		i = len(r.atoms)
		r.atoms = append(r.atoms, a)
	}
	r.atomBy[fp] = i
	return i, true
}

func litValue(lit query.Expr) event.Value {
	switch x := lit.(type) {
	case *query.NumLit:
		return event.Float(x.V)
	case *query.StrLit:
		return event.Str(x.V)
	}
	return event.Value{}
}

// maxCachedTables bounds the schema-table cache. Tables are keyed by
// *event.Schema identity; a well-behaved source shares one Schema per
// stream, but nothing stops a feed adapter from constructing a fresh
// Schema per message, which would otherwise grow the map by one compiled
// table per event. Past the bound the cache is dropped wholesale: a
// stable working set stays fast, a pathological schema-churn feed
// degrades to per-event compilation (≈ naive fan-out cost) with flat
// memory instead of an OOM.
const maxCachedTables = 64

// tableFor returns (compiling if needed) the index for one schema.
func (r *Router) tableFor(sc *event.Schema) *schemaTable {
	if sc == r.lastSchema {
		return r.lastTable
	}
	t, ok := r.tables[sc]
	if !ok {
		if len(r.tables) >= maxCachedTables {
			clear(r.tables)
		}
		t = &schemaTable{}
		for _, s := range r.subs {
			if !s.fallback {
				r.addToTable(t, s, sc)
			}
		}
		r.tables[sc] = t
	}
	r.lastSchema, r.lastTable = sc, t
	return t
}

// addToTable integrates one subscription into a schema table. A class with
// an eq or range atom whose attribute the schema lacks can never admit an
// event of that schema (a null value satisfies no comparison) and
// contributes nothing. Dispatch preference per class: the first eq atom
// (hash lookup) when one exists, else the first range atom (sorted-
// threshold stab); every remaining atom of either kind becomes an O(1)
// entry-level check — a BETWEEN-shaped `attr > a AND attr < b` pair
// dispatches on the lower bound and checks the upper per candidate.
func (r *Router) addToTable(t *schemaTable, s *sub, sc *event.Schema) {
	for i := range s.classes {
		ca := &s.classes[i]
		if len(ca.eqs) == 0 && len(ca.rngs) == 0 {
			t.scan = append(t.scan, entry{s: s, bit: ca.bit, resid: ca.resid})
			continue
		}
		e := entry{s: s, bit: ca.bit, resid: ca.resid}
		dispatchIdx, reachable := -1, true
		var dispatchVal event.Value
		for _, eq := range ca.eqs {
			idx := sc.Index(eq.attr)
			if idx < 0 {
				reachable = false
				break
			}
			if dispatchIdx < 0 {
				dispatchIdx, dispatchVal = idx, eq.val
				continue
			}
			e.extra = append(e.extra, resolvedEq{idx: idx, val: eq.val})
		}
		if !reachable {
			continue
		}
		rngDispatch := -1 // index into ca.rngs of the range dispatch atom
		var rngDispatchIdx int
		for ri, rng := range ca.rngs {
			idx := sc.Index(rng.attr)
			if idx < 0 {
				reachable = false
				break
			}
			if dispatchIdx < 0 && rngDispatch < 0 {
				rngDispatch, rngDispatchIdx = ri, idx
				continue
			}
			e.extraRng = append(e.extraRng, resolvedRange{idx: idx, op: rng.op, th: rng.th})
		}
		if !reachable {
			continue
		}
		if dispatchIdx >= 0 {
			g := t.group(dispatchIdx)
			g.byVal[dispatchVal] = append(g.byVal[dispatchVal], e)
			continue
		}
		rng := ca.rngs[rngDispatch]
		g := t.rangeGroup(rngDispatchIdx)
		re := rangeEntry{th: rng.th, incl: rng.op == query.CmpLte || rng.op == query.CmpGte, e: e}
		if rng.op == query.CmpGt || rng.op == query.CmpGte {
			g.gt = insertSorted(g.gt, re)
		} else {
			g.lt = insertSorted(g.lt, re)
		}
	}
}

// insertSorted places re into a threshold-ascending list, keeping
// registration order among equal thresholds (append semantics) so delivery
// sets stay registration-stable under churn.
func insertSorted(list []rangeEntry, re rangeEntry) []rangeEntry {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid].th <= re.th {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return slices.Insert(list, lo, re)
}

func (t *schemaTable) group(idx int) *dispatchGroup {
	for i := range t.groups {
		if t.groups[i].idx == idx {
			return &t.groups[i]
		}
	}
	t.groups = append(t.groups, dispatchGroup{idx: idx, byVal: map[event.Value][]entry{}})
	return &t.groups[len(t.groups)-1]
}

func (t *schemaTable) rangeGroup(idx int) *rangeGroup {
	for i := range t.ranges {
		if t.ranges[i].idx == idx {
			return &t.ranges[i]
		}
	}
	t.ranges = append(t.ranges, rangeGroup{idx: idx})
	return &t.ranges[len(t.ranges)-1]
}

// Route classifies a batch of events and returns one mini-batch per
// subscriber that admits at least one of them (registration-stable order
// of first admission). All returned slices are router-owned scratch,
// reused by the next Route call; steady-state routing allocates nothing.
func (r *Router) Route(events []*event.Event) []SubBatch {
	// Scratch is always cleared before truncation, so backing-array tails
	// never retain stale pointers: without this, a query whose batch once
	// grew large would pin long-evicted events (and, via Payload, even
	// unregistered engines) for as long as the router lives.
	for _, s := range r.active {
		clear(s.batch)
		s.batch = s.batch[:0]
	}
	clear(r.active)
	r.active = r.active[:0]
	clear(r.out)
	r.out = r.out[:0]

	for _, ev := range events {
		r.epoch++
		t := r.tableFor(ev.Schema)
		for _, s := range r.flat {
			if s.fallback {
				r.admit(s, MaskAll)
			} else {
				r.admit(s, s.alwaysMask)
			}
		}
		for gi := range t.groups {
			g := &t.groups[gi]
			if es, ok := g.byVal[ev.Vals[g.idx]]; ok {
				for i := range es {
					r.tryEntry(&es[i], ev)
				}
			}
		}
		for gi := range t.ranges {
			r.stabRange(&t.ranges[gi], ev)
		}
		for i := range t.scan {
			r.tryEntry(&t.scan[i], ev)
		}
		for _, s := range r.touched {
			if len(s.batch) == 0 {
				r.active = append(r.active, s)
			}
			s.batch = append(s.batch, Delivery{Ev: ev, Mask: s.mask})
			if !s.fallback {
				for m := s.mask; m != 0; m &= m - 1 {
					s.admitted[bits.TrailingZeros64(m)]++
				}
			}
			r.stats.Deliveries++
		}
		clear(r.touched)
		r.touched = r.touched[:0]
		r.stats.Events++
	}

	for _, s := range r.active {
		r.out = append(r.out, SubBatch{ID: s.id, Payload: s.payload, Events: s.batch})
	}
	return r.out
}

// admit accumulates class bits for the current event, tracking first touch.
func (r *Router) admit(s *sub, bits uint64) {
	if s.epoch != r.epoch {
		s.epoch = r.epoch
		s.mask = 0
		r.touched = append(r.touched, s)
	}
	s.mask |= bits
}

// stabRange admits the entries of one sorted-threshold group for the
// current event: one binary search per populated direction, then a linear
// walk over exactly the admitted segment. Non-numeric (or null) values
// satisfy no comparison and skip the group outright.
func (r *Router) stabRange(g *rangeGroup, ev *event.Event) {
	v := ev.Vals[g.idx]
	if v.Kind != event.KindFloat {
		return
	}
	f := v.F
	if n := len(g.gt); n > 0 {
		// First threshold >= f: everything left of it is strictly below f.
		lo, hi := 0, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if g.gt[mid].th < f {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		for i := 0; i < lo; i++ {
			r.tryEntry(&g.gt[i].e, ev)
		}
		// Equal thresholds admit only inclusive (>=) entries.
		for i := lo; i < n && g.gt[i].th == f; i++ {
			if g.gt[i].incl {
				r.tryEntry(&g.gt[i].e, ev)
			}
		}
		r.stats.RangeProbes++
	}
	if n := len(g.lt); n > 0 {
		// First threshold > f: everything right of it is strictly above f.
		lo, hi := 0, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if g.lt[mid].th <= f {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		for i := lo; i < n; i++ {
			r.tryEntry(&g.lt[i].e, ev)
		}
		// Equal thresholds admit only inclusive (<=) entries.
		for i := lo - 1; i >= 0 && g.lt[i].th == f; i-- {
			if g.lt[i].incl {
				r.tryEntry(&g.lt[i].e, ev)
			}
		}
		r.stats.RangeProbes++
	}
}

// tryEntry checks one (subscriber, class) condition against the event.
func (r *Router) tryEntry(e *entry, ev *event.Event) {
	for _, x := range e.extra {
		if !ev.Vals[x.idx].Equal(x.val) {
			return
		}
	}
	for _, x := range e.extraRng {
		v := ev.Vals[x.idx]
		if v.Kind != event.KindFloat || !cmpFloat(v.F, x.op, x.th) {
			return
		}
	}
	for _, ai := range e.resid {
		if !r.evalAtom(ai, ev) {
			return
		}
	}
	r.admit(e.s, e.bit)
}

// cmpFloat applies one normalized range operator. It mirrors
// expr.CompilePred's numeric comparison exactly: the admission a threshold
// table proves must equal what the engine's own leaf filter would compute.
func cmpFloat(v float64, op query.CmpOp, th float64) bool {
	switch op {
	case query.CmpLt:
		return v < th
	case query.CmpLte:
		return v <= th
	case query.CmpGt:
		return v > th
	default:
		return v >= th
	}
}

// evalAtom evaluates a residual predicate at most once per event.
func (r *Router) evalAtom(i int, ev *event.Event) bool {
	a := r.atoms[i]
	if a.epoch != r.epoch {
		a.epoch = r.epoch
		a.env.E = ev
		a.val = a.pred(&a.env)
		a.env.E = nil
		r.stats.ResidualEvals++
	}
	return a.val
}

// ClassAdmission is the EXPLAIN view of one class's compiled admission
// condition and its live counter.
type ClassAdmission struct {
	// Class is the class index.
	Class int
	// EqAtoms are the hash-dispatchable `attr = const` predicate texts.
	EqAtoms []string
	// RangeAtoms are the `attr OP const` predicate texts served by
	// sorted-threshold dispatch (or entry-level float compares).
	RangeAtoms []string
	// Residual are the interned predicate texts evaluated per event.
	Residual []string
	// Always reports an unconditional class (no single-class predicates).
	Always bool
	// Admitted counts events this class admitted since subscription.
	Admitted uint64
}

// SubInfo is the EXPLAIN view of one subscription.
type SubInfo struct {
	// Fallback reports unproven MaskAll delivery (>64 classes or
	// predicate compilation failed); Classes is nil then.
	Fallback bool
	// Events counts events routed since this subscription was added: the
	// denominator for per-class admission rates.
	Events uint64
	// Classes holds one entry per class index, in order.
	Classes []ClassAdmission
}

// Describe returns the EXPLAIN view of subscription id. The second result
// is false when id is not registered.
func (r *Router) Describe(id int64) (SubInfo, bool) {
	s, ok := r.byID[id]
	if !ok {
		return SubInfo{}, false
	}
	si := SubInfo{Fallback: s.fallback, Events: r.stats.Events - s.baseEvents}
	if s.fallback {
		return si, true
	}
	si.Classes = make([]ClassAdmission, s.nclasses)
	for i := range si.Classes {
		si.Classes[i] = ClassAdmission{
			Class:    i,
			Always:   s.alwaysMask&(1<<uint(i)) != 0,
			Admitted: s.admitted[i],
		}
	}
	for _, ca := range s.classes {
		cls := bits.TrailingZeros64(ca.bit)
		for _, eq := range ca.eqs {
			si.Classes[cls].EqAtoms = append(si.Classes[cls].EqAtoms, eq.text)
		}
		for _, rng := range ca.rngs {
			si.Classes[cls].RangeAtoms = append(si.Classes[cls].RangeAtoms, rng.text)
		}
		for _, ai := range ca.resid {
			si.Classes[cls].Residual = append(si.Classes[cls].Residual, r.atoms[ai].text)
		}
	}
	return si, true
}

// Stats returns the router's counters.
func (r *Router) Stats() Stats { return r.stats }

// Subs returns the number of live subscriptions.
func (r *Router) Subs() int { return len(r.subs) }

// RangeTableSize returns the total entry count across every compiled
// sorted-threshold list (all cached schema tables, both directions): the
// live size of the range-dispatch index, for the metrics surface.
func (r *Router) RangeTableSize() int {
	n := 0
	for _, t := range r.tables {
		for i := range t.ranges {
			n += len(t.ranges[i].gt) + len(t.ranges[i].lt)
		}
	}
	return n
}
