// Package router is the per-shard discrimination network that decides,
// once per event, which registered queries receive it. With thousands of
// standing queries — most of them parameterized variants of one another
// ("alert when <symbol> dips 5%") — delivering every event to every
// engine makes ingest cost O(Q) per event even when almost no query cares.
// The router cuts that to O(matching):
//
//   - Every query's leaf-admission predicates (the single-class, non-
//     aggregate WHERE atoms plan.Build pushes into leaf filters) are
//     compiled into an index, grouped lazily by event schema.
//   - `attr = const` atoms become hash-dispatch maps (attr position →
//     value → subscriber entries): one map lookup replaces evaluating the
//     equality for every query that wrote it.
//   - The remaining ("residual") atoms are deduplicated by the canonical
//     fingerprint of their AST (query.FingerprintCmp), so each distinct
//     predicate is evaluated at most once per event no matter how many
//     queries share it; results are memoized per event via epoch stamps.
//
// Route yields one mini-batch per subscriber that admitted at least one
// event, tagged with the per-event class bitmask the router proved, so
// engines can skip re-evaluating leaf filters (core.Engine.ProcessAdmitted)
// and engines whose classes all reject an event are never touched.
//
// Degradation: a class with no single-class predicates admits every event,
// so its query is touched for every event (O(Q) again for such queries);
// queries with more than 64 classes, or whose predicates fail to compile,
// fall back to unconditional delivery with MaskAll. The router assumes the
// sequential, single-goroutine use the runtime's shard workers provide.
//
// The runtime also registers shared-subplan producers (core.Subplan) as
// subscribers, compiled from their prefix query's Info: the producer then
// receives exactly the events any of its consuming queries' prefix classes
// admit, with the same per-class masks engines get.
package router
