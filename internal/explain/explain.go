// Package explain assembles the zstream-explain/v1 document: a stable,
// versioned JSON description of one registered query's physical plan,
// cost-model view, sharing decisions, router subscription and live
// operator counters. The document shape is modeled on granite-db's
// PhysicalPlanNode / ExplainPayload: a versioned envelope, a
// human-readable text rendering, and a physical tree of
// {node, props, children} entries.
//
// The package is deliberately free of engine dependencies: internal/core
// builds the engine-local sections, internal/runtime merges per-shard
// sections into one document. Determinism contract: for a fixed-strategy
// query with no ingested events, every field of the document is a pure
// function of the query text and configuration, so golden tests can pin
// the serialized bytes.
package explain

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/buffer"
	"repro/internal/cost"
	"repro/internal/operator"
	"repro/internal/query"
)

// Version identifies the document schema. Consumers must reject documents
// whose version they do not recognize; schema changes bump the suffix.
const Version = "zstream-explain/v1"

// Doc is the root zstream-explain/v1 document.
type Doc struct {
	// Version is always the Version constant.
	Version string `json:"version"`
	// QueryID is the runtime's query handle (0 for a standalone engine).
	QueryID int64 `json:"query_id,omitempty"`
	// Query describes the compiled query.
	Query Query `json:"query"`
	// Strategy is the configured planning strategy.
	Strategy Strategy `json:"strategy"`
	// Cost is the cost-model view of the chosen plan (absent for
	// shared-prefix consumer plans, whose prefix cost belongs to the
	// producer).
	Cost *Cost `json:"cost,omitempty"`
	// Plans lists the live physical plan variants. Fixed-strategy queries
	// always have exactly one; under adaptation shards re-plan
	// independently, so each distinct fingerprint gets one entry with the
	// shards currently running it.
	Plans []PlanVariant `json:"plans"`
	// Sharing describes multi-query sharing decisions (absent for a
	// standalone engine).
	Sharing *Sharing `json:"sharing,omitempty"`
	// Router describes the predicate-index subscription (absent for a
	// standalone engine or a naive-fanout runtime).
	Router *Router `json:"router,omitempty"`
	// Text is a human-readable rendering of the first plan variant.
	Text string `json:"text"`
}

// Query describes the compiled query.
type Query struct {
	// Pattern is the canonical query text.
	Pattern string `json:"pattern"`
	// Window is the WITHIN length in ticks.
	Window int64 `json:"window"`
	// Classes lists the event-class aliases by class index; negated
	// classes carry a '!' prefix.
	Classes []string `json:"classes"`
	// Predicates lists every WHERE predicate in source form.
	Predicates []string `json:"predicates,omitempty"`
}

// Strategy is the configured planning strategy.
type Strategy struct {
	// Strategy is "optimal", "left-deep", "right-deep" or "fixed".
	Strategy string `json:"strategy"`
	// Adaptive reports whether runtime re-planning (§5.3) is enabled.
	Adaptive bool `json:"adaptive"`
	// UseHash reports whether equality predicates use hash indexes
	// (§5.2.2).
	UseHash bool `json:"use_hash"`
	// Negation is "auto", "pushdown" or "top" (§4.4.2).
	Negation string `json:"negation"`
	// BatchSize is the events-per-assembly-round batch size.
	BatchSize int `json:"batch_size"`
}

// Cost is the cost-model view of the chosen plan (paper §5.1, Table 1/2).
type Cost struct {
	// Source is "uniform-default" (no statistics collected yet) or
	// "collected" (adaptive statistics snapshot).
	Source string `json:"source"`
	// TimeSel is the implicit time-predicate selectivity Pt.
	TimeSel float64 `json:"time_selectivity"`
	// Classes holds per-class rate / selectivity / cardinality.
	Classes []ClassCost `json:"classes"`
	// PredSel holds per-predicate selectivities for the multi-class
	// predicates (negative values mean the default is in effect).
	PredSel []PredSel `json:"predicate_selectivities,omitempty"`
	// Tree is the per-node breakdown over the chosen shape; the root
	// carries the whole-plan estimate.
	Tree *CostNode `json:"tree,omitempty"`
	// TotalCard and TotalCost are the root estimate (Formula (1)).
	TotalCard float64 `json:"total_card"`
	TotalCost float64 `json:"total_cost"`
}

// ClassCost is one class's Table 1 statistics view.
type ClassCost struct {
	// Class is the class alias.
	Class string `json:"class"`
	// Rate is R_E, events per tick before leaf filters.
	Rate float64 `json:"rate"`
	// SingleSel is P_E, the pushed-down single-class filter selectivity.
	SingleSel float64 `json:"single_selectivity"`
	// Card is CARD_E = R_E * TW_p * P_E.
	Card float64 `json:"card"`
}

// PredSel is one multi-class predicate's selectivity.
type PredSel struct {
	// Predicate is the predicate's source form.
	Predicate string `json:"predicate"`
	// Selectivity is the modeled selectivity; negative means unknown
	// (DefaultPredSel applies).
	Selectivity float64 `json:"selectivity"`
}

// CostNode is one node of the per-operator cost breakdown.
type CostNode struct {
	// Node names the operator or planning unit.
	Node string `json:"node"`
	// Classes are the event classes the node's output covers.
	Classes []int `json:"classes,omitempty"`
	// Card is the estimated output cardinality per window.
	Card float64 `json:"card"`
	// Cost is the cumulative estimated cost (children included).
	Cost float64 `json:"cost"`
	// Children are the sub-plans, left to right.
	Children []*CostNode `json:"children,omitempty"`
}

// PlanVariant is one live physical plan shape.
type PlanVariant struct {
	// Fingerprint is the deterministic structural identity of the plan
	// tree (plan.Fingerprint).
	Fingerprint string `json:"fingerprint"`
	// Shards lists the shard indexes currently running this plan.
	Shards []int `json:"shards"`
	// Switches is the total number of adaptive plan switches performed by
	// these shards since registration.
	Switches uint64 `json:"plan_switches"`
	// LastSwitch records the most recent re-plan (absent before the
	// first switch).
	LastSwitch *Switch `json:"last_switch,omitempty"`
	// Tree is the operator tree with live counters, summed across the
	// listed shards.
	Tree *Node `json:"tree"`
}

// Switch records one adaptive re-plan as a before/after fingerprint pair.
type Switch struct {
	// From and To are the plan fingerprints before and after the switch.
	From string `json:"from"`
	To   string `json:"to"`
}

// Node is one operator of the physical tree, modeled on granite-db's
// PhysicalPlanNode: an operator name, descriptive props, live counters and
// children.
type Node struct {
	// Node is the operator label (leaf(0), seq[hash], kseq(+), ...).
	Node string `json:"node"`
	// Classes are the event-class indexes the node's output binds.
	Classes []int `json:"classes,omitempty"`
	// Predicates are the value predicates evaluated at this node.
	Predicates []string `json:"predicates,omitempty"`
	// Detail is operator-specific extra information (class alias, hash
	// condition, shared-prefix length).
	Detail string `json:"detail,omitempty"`
	// In counts candidates examined: pairs tried (joins), events scanned
	// (negation/closure), arrivals (leaves).
	In uint64 `json:"records_in"`
	// Out counts records appended to the node's output buffer.
	Out uint64 `json:"records_out"`
	// Buffered is the node's current live output-buffer length.
	Buffered int `json:"buffered"`
	// Evicted counts records reclaimed from the output buffer by EAT
	// eviction (§4.3).
	Evicted uint64 `json:"evicted"`
	// Children are the child operators, left to right.
	Children []*Node `json:"children,omitempty"`
}

// Sharing describes the runtime's multi-query sharing decisions for one
// query.
type Sharing struct {
	// GroupID is the engine group the query runs in.
	GroupID int64 `json:"group_id"`
	// Members is the number of queries aliased onto the group (whole-query
	// deduplication; 1 means unshared).
	Members int `json:"members"`
	// PrefixLen is the number of leading classes delegated to a shared
	// producer (0 when the plan is self-contained).
	PrefixLen int `json:"shared_prefix_len,omitempty"`
	// ProducerID identifies the attached producer subplan.
	ProducerID int64 `json:"producer_id,omitempty"`
	// ProducerReaders is how many engine groups read the producer.
	ProducerReaders int `json:"producer_readers,omitempty"`
	// ProducerTree is the producer's operator tree with live counters,
	// summed across shards.
	ProducerTree *Node `json:"producer_tree,omitempty"`
}

// Router describes how the predicate-indexed router delivers events to the
// query's engine group.
type Router struct {
	// Mode is "indexed" (per-class admission masks), "fallback" (the
	// subscription could not be compiled; every event is delivered with
	// all classes admitted) or "naive" (router disabled).
	Mode string `json:"mode"`
	// Events is the number of events routed past the subscription since
	// it was added, summed across shards.
	Events uint64 `json:"events_routed"`
	// Classes holds the per-class subscription detail.
	Classes []RouterClass `json:"classes,omitempty"`
}

// RouterClass is one class's router subscription view. Admitted/Events is
// the unconditioned admission rate (every event counted); LeafPassed/
// LeafSeen is the conditioned view the engine observes (only delivered
// events counted). Comparing the two shows how much selectivity the router
// absorbs before the engine ever sees an event.
type RouterClass struct {
	// Class is the class alias.
	Class string `json:"class"`
	// EqAtoms lists the equality predicates served by hash dispatch.
	EqAtoms []string `json:"eq_atoms,omitempty"`
	// RangeAtoms lists the comparison predicates served by sorted-threshold
	// dispatch (or entry-level float compares for extra bounds).
	RangeAtoms []string `json:"range_atoms,omitempty"`
	// Residuals lists the predicates evaluated per event (memoized across
	// subscriptions).
	Residuals []string `json:"residuals,omitempty"`
	// Always reports an unconstrained class (admits every event).
	Always bool `json:"always,omitempty"`
	// Admitted counts events admitted for this class (unconditioned).
	Admitted uint64 `json:"admitted"`
	// AdmissionRate is Admitted / Events (0 when no events routed).
	AdmissionRate float64 `json:"admission_rate"`
	// LeafSeen / LeafPassed are the class leaf's conditioned counters.
	LeafSeen   uint64 `json:"leaf_seen"`
	LeafPassed uint64 `json:"leaf_passed"`
	// PassRate is LeafPassed / LeafSeen (0 when nothing delivered).
	PassRate float64 `json:"pass_rate"`
}

// JSON serializes the document with stable two-space indentation.
func (d *Doc) JSON() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// QuerySection builds the Query section from a compiled query.
func QuerySection(q *query.Query) Query {
	in := q.Info
	out := Query{Pattern: q.String(), Window: q.Within}
	for _, ci := range in.Classes {
		alias := ci.Alias
		if ci.Negated {
			alias = "!" + alias
		}
		out.Classes = append(out.Classes, alias)
	}
	for _, pi := range in.Preds {
		out.Predicates = append(out.Predicates, pi.String())
	}
	return out
}

// CostSection builds the Cost section from a statistics snapshot and the
// chosen shape's breakdown (which may be nil for consumer plans).
func CostSection(in *query.Info, st *cost.Stats, source string, tree *cost.NodeEstimate) *Cost {
	ts := st.TimeSel
	if ts == 0 {
		ts = cost.DefaultTimeSel
	}
	c := &Cost{Source: source, TimeSel: ts}
	for i, ci := range in.Classes {
		c.Classes = append(c.Classes, ClassCost{
			Class:     ci.Alias,
			Rate:      st.Rate[i],
			SingleSel: st.SingleSel[i],
			Card:      st.ClassCard(i),
		})
	}
	for i, pi := range in.Preds {
		if pi.Single() {
			continue
		}
		sel := -1.0
		if i < len(st.PredSel) {
			sel = st.PredSel[i]
		}
		c.PredSel = append(c.PredSel, PredSel{Predicate: pi.String(), Selectivity: sel})
	}
	if tree != nil {
		c.Tree = costNode(tree)
		c.TotalCard = tree.Est.Card
		c.TotalCost = tree.Est.Cost
	}
	return c
}

func costNode(n *cost.NodeEstimate) *CostNode {
	out := &CostNode{Node: n.Desc, Classes: n.Classes, Card: n.Est.Card, Cost: n.Est.Cost}
	for _, c := range n.Children {
		out.Children = append(out.Children, costNode(c))
	}
	return out
}

// Tree snapshots an operator tree into explain nodes with live counters.
// Must run on the goroutine that owns the operators (see Node.Counters).
func Tree(n operator.Node) *Node {
	if n == nil {
		return nil
	}
	d := n.Describe()
	c := n.Counters()
	out := &Node{
		Node:       n.Label(),
		Classes:    d.Classes,
		Predicates: d.Preds,
		Detail:     d.Detail,
		In:         c.In,
		Out:        c.Out,
		Buffered:   n.Out().Len(),
		Evicted:    n.Out().Evicted(),
	}
	for _, ch := range n.Children() {
		out.Children = append(out.Children, Tree(ch))
	}
	return out
}

// Merge adds src's counters into dst position-by-position. The trees must
// be structurally identical (same labels, same arity) — the caller
// guarantees this by merging only trees with equal plan fingerprints.
// Returns false (leaving dst partially updated) on a structural mismatch,
// which indicates a fingerprint collision bug.
func Merge(dst, src *Node) bool {
	if dst.Node != src.Node || len(dst.Children) != len(src.Children) {
		return false
	}
	dst.In += src.In
	dst.Out += src.Out
	dst.Buffered += src.Buffered
	dst.Evicted += src.Evicted
	for i := range dst.Children {
		if !Merge(dst.Children[i], src.Children[i]) {
			return false
		}
	}
	return true
}

// Totals is the whole-tree counter roll-up used by the metrics surface.
type Totals struct {
	// In and Out sum every node's candidate / emission counters.
	In, Out uint64
	// Buffered sums the live record counts of every buffer in the tree.
	Buffered int
	// Evicted sums EAT evictions across every buffer in the tree.
	Evicted uint64
}

// TreeTotals rolls up an operator tree's counters without materializing
// explain nodes. Like Tree, it must run on the owning goroutine. Leaf
// buffers referenced by negation operators are not walked (they are
// engine-owned leaves reported separately).
func TreeTotals(n operator.Node) Totals {
	var t Totals
	var walk func(n operator.Node)
	seen := map[*buffer.Buf]bool{}
	walk = func(n operator.Node) {
		c := n.Counters()
		t.In += c.In
		t.Out += c.Out
		if b := n.Out(); !seen[b] {
			seen[b] = true
			t.Buffered += b.Len()
			t.Evicted += b.Evicted()
		}
		for _, ch := range n.Children() {
			walk(ch)
		}
	}
	walk(n)
	return t
}

// Render writes the human-readable plan text: one node per line with
// classes, predicates and counters.
func Render(n *Node) string {
	var sb strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.Node)
		if n.Detail != "" {
			fmt.Fprintf(&sb, " [%s]", n.Detail)
		}
		if len(n.Predicates) > 0 {
			fmt.Fprintf(&sb, " {%s}", strings.Join(n.Predicates, " AND "))
		}
		fmt.Fprintf(&sb, " in=%d out=%d buf=%d", n.In, n.Out, n.Buffered)
		sb.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return sb.String()
}

// Ratio is a divide-by-zero-safe rate helper (JSON cannot carry NaN).
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
