// Package nfa is the NFA-based baseline ZStream is compared against (§6):
// a SASE-style evaluator [15] with one state per event class in pattern
// order, active instance stacks (AIS), and a recent-instance pointer (RIP)
// per instance. A match is assembled by backward search from each final-
// state instance through the RIP-bounded prefixes of the earlier stacks.
//
// Following the paper's baseline faithfully:
//   - the evaluation order is fixed (backward from the final state), which
//     is why its performance tracks the right-deep tree plan;
//   - intermediate results are not materialized: every final-state instance
//     re-runs the backward search;
//   - negation is applied as a post-filter on complete matches;
//   - conjunction, disjunction and Kleene closure are not supported.
package nfa
