package nfa

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/query"
)

// instance is one AIS entry.
type instance struct {
	ev *event.Event
	// rip is the absolute index of the most recent instance in the
	// previous stack when this instance was inserted.
	rip int
}

// stack is an AIS with an absolute base offset so pruning does not
// invalidate RIPs.
type stack struct {
	base int
	inst []instance
}

func (s *stack) len() int             { return s.base + len(s.inst) }
func (s *stack) at(abs int) *instance { return &s.inst[abs-s.base] }
func (s *stack) push(i instance)      { s.inst = append(s.inst, i) }
func (s *stack) pruneBefore(ts int64) {
	drop := 0
	for drop < len(s.inst) && s.inst[drop].ev.Ts < ts {
		drop++
	}
	if drop > 0 {
		s.inst = append(s.inst[:0], s.inst[drop:]...)
		s.base += drop
	}
}

// negState buffers negation-class events for the post-filter.
type negState struct {
	term    int
	classes []int
	events  [][]*event.Event // per class
	pred    expr.Predicate
	prev    []int
	next    []int
}

// pendingMatch is a complete match awaiting trailing-negation confirmation.
type pendingMatch struct {
	bound []*event.Event // per positive state
	start int64
}

// Machine evaluates one sequential (optionally negated) pattern.
type Machine struct {
	q      *query.Query
	window int64

	// positive states, in pattern order; pos[i] is the class index.
	pos     []int
	filters []expr.Predicate // single-class filters per state
	stacks  []*stack
	// preds[i] are the multi-class predicates evaluable once state i is
	// bound during backward search (all other referenced classes are at
	// later states).
	preds [][]expr.Predicate

	negs     []*negState
	trailing bool
	pending  []pendingMatch

	emit    func(bound []*event.Event)
	matches uint64
	now     int64
	seen    int
	peakRec int
}

// New compiles q into an NFA machine. Patterns with conjunction,
// disjunction or Kleene closure are rejected, as in the paper's baseline.
func New(q *query.Query) (*Machine, error) {
	in := q.Info
	if in == nil {
		return nil, fmt.Errorf("nfa: query not analyzed")
	}
	m := &Machine{q: q, window: q.Within, now: -1 << 62}
	stateOf := map[int]int{} // class -> positive state index
	for ti, t := range in.Terms {
		switch t.Kind {
		case query.TermClass:
			stateOf[t.Classes[0]] = len(m.pos)
			m.pos = append(m.pos, t.Classes[0])
		case query.TermNeg:
			ns := &negState{term: ti, classes: t.Classes,
				events: make([][]*event.Event, len(t.Classes))}
			m.negs = append(m.negs, ns)
			if ti == len(in.Terms)-1 {
				m.trailing = true
			}
		default:
			return nil, fmt.Errorf("nfa: %v patterns are not supported by the NFA baseline", t.Kind)
		}
	}
	if len(m.pos) == 0 {
		return nil, fmt.Errorf("nfa: no positive event classes")
	}

	// single-class filters per state and per negation class
	m.filters = make([]expr.Predicate, len(m.pos))
	m.stacks = make([]*stack, len(m.pos))
	for i := range m.stacks {
		m.stacks[i] = &stack{}
	}
	singleOf := func(c int) (expr.Predicate, error) {
		var cmps []*query.Cmp
		for _, pi := range in.Preds {
			if pi.Single() && !pi.HasAgg && pi.Classes[0] == c {
				cmps = append(cmps, pi.Cmp)
			}
		}
		if len(cmps) == 0 {
			return nil, nil
		}
		return expr.CompilePreds(cmps)
	}
	for i, c := range m.pos {
		f, err := singleOf(c)
		if err != nil {
			return nil, err
		}
		m.filters[i] = f
	}

	// multi-class predicates: during backward search state i is bound
	// after states i+1..n-1, so a predicate is evaluable at the smallest
	// state it references.
	m.preds = make([][]expr.Predicate, len(m.pos))
	for _, pi := range in.Preds {
		if pi.Single() || pi.HasAgg {
			continue
		}
		negPred := false
		for _, c := range pi.Classes {
			if in.Classes[c].Negated {
				negPred = true
			}
		}
		if negPred {
			continue // attached to the negation post-filter below
		}
		lowest := len(m.pos)
		for _, c := range pi.Classes {
			if s, ok := stateOf[c]; ok && s < lowest {
				lowest = s
			}
		}
		p, err := expr.CompilePred(pi.Cmp)
		if err != nil {
			return nil, err
		}
		m.preds[lowest] = append(m.preds[lowest], p)
	}

	// negation post-filter predicates and surrounding classes
	for _, ns := range m.negs {
		negSet := map[int]bool{}
		for _, c := range ns.classes {
			negSet[c] = true
		}
		var cmps []*query.Cmp
		for _, pi := range in.Preds {
			if pi.Single() || pi.HasAgg {
				continue
			}
			touches := false
			for _, c := range pi.Classes {
				if negSet[c] {
					touches = true
				}
			}
			if touches {
				cmps = append(cmps, pi.Cmp)
			}
		}
		if len(cmps) > 0 {
			p, err := expr.CompilePreds(cmps)
			if err != nil {
				return nil, err
			}
			ns.pred = p
		}
		for i := 0; i < ns.term; i++ {
			if in.Terms[i].Kind != query.TermNeg {
				ns.prev = append(ns.prev, in.Terms[i].Classes...)
			}
		}
		for i := ns.term + 1; i < len(in.Terms); i++ {
			if in.Terms[i].Kind != query.TermNeg {
				ns.next = append(ns.next, in.Terms[i].Classes...)
			}
		}
	}
	return m, nil
}

// SetEmit installs the match callback; bound holds one event per positive
// state, in pattern order.
func (m *Machine) SetEmit(f func(bound []*event.Event)) { m.emit = f }

// Matches returns the number of matches detected.
func (m *Machine) Matches() uint64 { return m.matches }

// Process feeds one event, in timestamp order.
func (m *Machine) Process(e *event.Event) {
	if e.Ts > m.now {
		m.now = e.Ts
	}
	// negation classes buffer events for the post-filter
	for _, ns := range m.negs {
		for k, c := range ns.classes {
			f, err := m.singleFilterOf(c)
			if err == nil && (f == nil || f(expr.EventEnv{Class: c, E: e})) {
				ns.events[k] = append(ns.events[k], e)
			}
		}
	}
	// state transitions: an event may enter any state whose filter it
	// passes, provided the previous state has an active instance (NFA
	// semantics: the automaton must have reached the prior state).
	for i := range m.pos {
		if m.filters[i] != nil && !m.filters[i](expr.EventEnv{Class: m.pos[i], E: e}) {
			continue
		}
		if i > 0 && m.stacks[i-1].len() == 0 {
			continue
		}
		rip := -1
		if i > 0 {
			rip = m.stacks[i-1].len() - 1
		}
		m.stacks[i].push(instance{ev: e, rip: rip})
		if i == len(m.pos)-1 {
			m.search(e, rip)
		}
	}
	m.confirmPending()
	m.seen++
	if m.seen%256 == 0 {
		m.prune()
		live := len(m.pending)
		for _, st := range m.stacks {
			live += len(st.inst)
		}
		for _, ns := range m.negs {
			for _, evs := range ns.events {
				live += len(evs)
			}
		}
		if live > m.peakRec {
			m.peakRec = live
		}
	}
}

// PeakMemBytes approximates the peak bytes held by live stack instances
// (the counterpart of the tree engine's live-buffer accounting).
func (m *Machine) PeakMemBytes() int64 { return int64(m.peakRec) * 32 }

// singleFilterOf compiles (per call; negation classes only, small) the
// single-class filter of class c.
func (m *Machine) singleFilterOf(c int) (expr.Predicate, error) {
	var cmps []*query.Cmp
	for _, pi := range m.q.Info.Preds {
		if pi.Single() && !pi.HasAgg && pi.Classes[0] == c {
			cmps = append(cmps, pi.Cmp)
		}
	}
	if len(cmps) == 0 {
		return nil, nil
	}
	return expr.CompilePreds(cmps)
}

// search runs the backward DAG search from a final-state instance.
func (m *Machine) search(final *event.Event, rip int) {
	n := len(m.pos)
	bound := make([]*event.Event, n)
	bound[n-1] = final
	if !m.checkPreds(n-1, bound) {
		return
	}
	minStart := final.Ts - m.window
	var dfs func(state int, rip int)
	dfs = func(state int, rip int) {
		if state < 0 {
			m.complete(bound)
			return
		}
		st := m.stacks[state]
		lo := st.base
		for abs := rip; abs >= lo; abs-- {
			inst := st.at(abs)
			if inst.ev.Ts >= bound[state+1].Ts {
				continue // strict temporal order
			}
			if inst.ev.Ts < minStart {
				break // outside the window; earlier instances worse
			}
			bound[state] = inst.ev
			if !m.checkPreds(state, bound) {
				bound[state] = nil
				continue
			}
			dfs(state-1, inst.rip)
			bound[state] = nil
		}
	}
	if n == 1 {
		m.complete(bound)
		return
	}
	dfs(n-2, rip)
}

// checkPreds evaluates the predicates anchored at state.
func (m *Machine) checkPreds(state int, bound []*event.Event) bool {
	if len(m.preds[state]) == 0 {
		return true
	}
	env := nfaEnv{m: m, bound: bound}
	for _, p := range m.preds[state] {
		if !p(env) {
			return false
		}
	}
	return true
}

// complete applies the negation post-filter and emits or defers the match.
func (m *Machine) complete(bound []*event.Event) {
	if m.trailing {
		cp := make([]*event.Event, len(bound))
		copy(cp, bound)
		m.pending = append(m.pending, pendingMatch{bound: cp, start: bound[0].Ts})
		return
	}
	if m.negatedMatch(bound) {
		return
	}
	m.emitMatch(bound)
}

// confirmPending emits pending trailing-negation matches whose window has
// expired.
func (m *Machine) confirmPending() {
	if !m.trailing {
		return
	}
	keep := m.pending[:0]
	for _, pm := range m.pending {
		if pm.start+m.window >= m.now {
			keep = append(keep, pm)
			continue
		}
		if !m.negatedMatch(pm.bound) {
			m.emitMatch(pm.bound)
		}
	}
	m.pending = keep
}

func (m *Machine) emitMatch(bound []*event.Event) {
	m.matches++
	if m.emit != nil {
		cp := make([]*event.Event, len(bound))
		copy(cp, bound)
		m.emit(cp)
	}
}

// negatedMatch checks every negation term against a complete match.
func (m *Machine) negatedMatch(bound []*event.Event) bool {
	if len(m.negs) == 0 {
		return false
	}
	start, end := bound[0].Ts, bound[len(bound)-1].Ts
	stateOfClass := map[int]int{}
	for i, c := range m.pos {
		stateOfClass[c] = i
	}
	for _, ns := range m.negs {
		lo := end - m.window - 1
		for _, c := range ns.prev {
			if s, ok := stateOfClass[c]; ok && bound[s].Ts > lo {
				lo = bound[s].Ts
			}
		}
		hi := start + m.window + 1
		for _, c := range ns.next {
			if s, ok := stateOfClass[c]; ok && bound[s].Ts < hi {
				hi = bound[s].Ts
				break
			}
		}
		for k, c := range ns.classes {
			for _, b := range ns.events[k] {
				if b.Ts <= lo || b.Ts >= hi {
					continue
				}
				if ns.pred == nil || ns.pred(negEnv{m: m, bound: bound, negClass: c, b: b}) {
					return true
				}
			}
		}
	}
	return false
}

// Flush confirms all pending trailing-negation matches.
func (m *Machine) Flush() {
	saved := m.now
	m.now = 1<<62 - 1
	m.confirmPending()
	m.now = saved
}

// prune discards stack and negation entries outside any possible window.
func (m *Machine) prune() {
	cut := m.now - m.window
	for _, st := range m.stacks {
		st.pruneBefore(cut)
	}
	for _, ns := range m.negs {
		for k := range ns.events {
			evs := ns.events[k]
			drop := 0
			for drop < len(evs) && evs[drop].Ts < cut-m.window {
				drop++
			}
			ns.events[k] = evs[drop:]
		}
	}
}

// nfaEnv exposes bound states as an expr.Env.
type nfaEnv struct {
	m     *Machine
	bound []*event.Event
}

// Event implements expr.Env.
func (e nfaEnv) Event(class int) *event.Event {
	for i, c := range e.m.pos {
		if c == class {
			return e.bound[i]
		}
	}
	return nil
}

// Group implements expr.Env.
func (e nfaEnv) Group(class int) []*event.Event {
	if ev := e.Event(class); ev != nil {
		return []*event.Event{ev}
	}
	return nil
}

// negEnv additionally binds one negation-class event.
type negEnv struct {
	m        *Machine
	bound    []*event.Event
	negClass int
	b        *event.Event
}

// Event implements expr.Env.
func (e negEnv) Event(class int) *event.Event {
	if class == e.negClass {
		return e.b
	}
	return nfaEnv{m: e.m, bound: e.bound}.Event(class)
}

// Group implements expr.Env.
func (e negEnv) Group(class int) []*event.Event {
	if ev := e.Event(class); ev != nil {
		return []*event.Event{ev}
	}
	return nil
}
