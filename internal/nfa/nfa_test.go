package nfa

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/ref"
)

func genStream(seed int64, n int, names []string) []*event.Event {
	rng := rand.New(rand.NewSource(seed))
	var out []*event.Event
	ts := int64(0)
	for i := 0; i < n; i++ {
		ts += int64(rng.Intn(3))
		out = append(out, event.NewStock(uint64(i+1), ts, int64(i),
			names[rng.Intn(len(names))], float64(1+rng.Intn(100)), float64(1+rng.Intn(10))))
	}
	return out
}

// run executes the machine and returns canonical keys in the same format
// ref.Find produces (per-class seq lists joined by '|').
func run(t *testing.T, q *query.Query, events []*event.Event) []string {
	t.Helper()
	m, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	in := q.Info
	var keys []string
	m.SetEmit(func(bound []*event.Event) {
		byClass := map[int]*event.Event{}
		for i, c := range m.pos {
			byClass[c] = bound[i]
		}
		var sb strings.Builder
		for c := 0; c < in.NumClasses(); c++ {
			if c > 0 {
				sb.WriteByte('|')
			}
			if e := byClass[c]; e != nil {
				fmt.Fprintf(&sb, "%d", e.Seq)
			}
		}
		keys = append(keys, sb.String())
	})
	for _, e := range events {
		m.Process(e)
	}
	m.Flush()
	sort.Strings(keys)
	return keys
}

func differential(t *testing.T, src string, seed int64, n int, names []string) {
	t.Helper()
	q := query.MustParse(src)
	events := genStream(seed, n, names)
	want, err := ref.Find(q, events)
	if err != nil {
		t.Fatal(err)
	}
	got := run(t, q, events)
	if len(got) != len(want) {
		t.Fatalf("%q: NFA %d matches, oracle %d\nnfa: %v\noracle: %v", src, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%q: match %d differs: %q vs %q", src, i, got[i], want[i])
		}
	}
}

func TestNFASequence(t *testing.T) {
	differential(t, `PATTERN A;B;C
		WHERE A.name='A' AND B.name='B' AND C.name='C' WITHIN 20`, 1, 70, []string{"A", "B", "C"})
}

func TestNFASequenceNoFilters(t *testing.T) {
	differential(t, `PATTERN A;B;C WITHIN 8`, 2, 35, []string{"X"})
}

func TestNFAPredicates(t *testing.T) {
	differential(t, `PATTERN A;B;C
		WHERE A.name='A' AND B.name='B' AND C.name='C'
		AND A.price > B.price AND C.price > 1.1 * B.price WITHIN 25`, 3, 70, []string{"A", "B", "C"})
}

func TestNFAEqualityPredicate(t *testing.T) {
	differential(t, `PATTERN A;B;C
		WHERE A.name='A' AND B.name='B' AND C.name='C'
		AND A.volume = C.volume WITHIN 15`, 4, 70, []string{"A", "B", "C"})
}

func TestNFANegationMiddle(t *testing.T) {
	differential(t, `PATTERN A;!B;C
		WHERE A.name='A' AND B.name='B' AND C.name='C' WITHIN 20`, 5, 60, []string{"A", "B", "C"})
}

func TestNFANegationPredicate(t *testing.T) {
	differential(t, `PATTERN A;!B;C
		WHERE A.name='A' AND B.name='B' AND C.name='C'
		AND B.price < C.price WITHIN 20`, 6, 60, []string{"A", "B", "C"})
}

func TestNFATrailingNegation(t *testing.T) {
	differential(t, `PATTERN A;B;!C
		WHERE A.name='A' AND B.name='B' AND C.name='C' WITHIN 12`, 8, 60, []string{"A", "B", "C"})
}

func TestNFALeadingNegation(t *testing.T) {
	differential(t, `PATTERN !A;B;C
		WHERE A.name='A' AND B.name='B' AND C.name='C' WITHIN 12`, 9, 60, []string{"A", "B", "C"})
}

func TestNFAFourClasses(t *testing.T) {
	differential(t, `PATTERN A;B;C;D
		WHERE A.name='A' AND B.name='B' AND C.name='C' AND D.name='D'
		AND C.price > B.price AND C.price > D.price WITHIN 30`, 10, 80, []string{"A", "B", "C", "D"})
}

func TestNFAManySeeds(t *testing.T) {
	for seed := int64(50); seed < 56; seed++ {
		differential(t, `PATTERN A;B;C
			WHERE A.name='A' AND B.name='B' AND C.name='C'
			AND A.price > B.price WITHIN 18`, seed, 60, []string{"A", "B", "C"})
	}
}

func TestNFARejectsUnsupported(t *testing.T) {
	for _, src := range []string{
		"PATTERN A & B WITHIN 10",
		"PATTERN (A|B);C WITHIN 10",
		"PATTERN A;B*;C WITHIN 10",
		"PATTERN A;B^3;C WITHIN 10",
	} {
		q := query.MustParse(src)
		if _, err := New(q); err == nil {
			t.Errorf("New(%q): expected unsupported error", src)
		}
	}
}

func TestNFAPruneKeepsCorrectness(t *testing.T) {
	// long stream so pruning kicks in (every 256 events)
	q := query.MustParse(`PATTERN A;B
		WHERE A.name='A' AND B.name='B' WITHIN 10`)
	events := genStream(11, 2000, []string{"A", "B"})
	want, err := ref.Find(q, events)
	if err != nil {
		t.Fatal(err)
	}
	got := run(t, q, events)
	if len(got) != len(want) {
		t.Fatalf("prune broke matches: %d vs %d", len(got), len(want))
	}
}

func TestNFAMatchesCounter(t *testing.T) {
	q := query.MustParse(`PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 50`)
	m, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	m.Process(event.NewStock(1, 1, 1, "A", 1, 1))
	m.Process(event.NewStock(2, 2, 2, "B", 1, 1))
	m.Flush()
	if m.Matches() != 1 {
		t.Errorf("matches = %d", m.Matches())
	}
}
