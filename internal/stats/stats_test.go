package stats

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/event"
	"repro/internal/query"
)

func collector(t *testing.T, src string) (*Collector, *query.Query) {
	t.Helper()
	q := query.MustParse(src)
	return NewCollector(q.Info, q.Within/2, 8, 1), q
}

func TestRateEstimation(t *testing.T) {
	c, _ := collector(t, "PATTERN A;B WITHIN 100")
	// one A event per 2 ticks for 400 ticks
	for ts := int64(0); ts < 400; ts += 2 {
		c.Observe(0, event.NewStock(uint64(ts), ts, 0, "A", 1, 1), true)
	}
	got := c.Rate(0, 399)
	if math.Abs(got-0.5) > 0.1 {
		t.Errorf("rate = %v, want ~0.5", got)
	}
	// class 1 saw nothing
	if r := c.Rate(1, 399); r != 0 {
		t.Errorf("empty class rate = %v", r)
	}
}

func TestRateTracksChange(t *testing.T) {
	c, _ := collector(t, "PATTERN A;B WITHIN 100")
	// dense phase then sparse phase; rate estimate must drop
	for ts := int64(0); ts < 400; ts++ {
		c.Observe(0, event.NewStock(uint64(ts), ts, 0, "A", 1, 1), true)
	}
	dense := c.Rate(0, 399)
	for ts := int64(400); ts < 800; ts += 10 {
		c.Observe(0, event.NewStock(uint64(ts), ts, 0, "A", 1, 1), true)
	}
	sparse := c.Rate(0, 799)
	if sparse >= dense/2 {
		t.Errorf("rate did not track change: dense=%v sparse=%v", dense, sparse)
	}
}

func TestSingleSelectivity(t *testing.T) {
	c, _ := collector(t, "PATTERN A;B WHERE A.price > 50 WITHIN 100")
	for ts := int64(0); ts < 100; ts++ {
		c.Observe(0, event.NewStock(uint64(ts), ts, 0, "A", float64(ts), 1), ts >= 75)
	}
	if got := c.SingleSel(0); math.Abs(got-0.25) > 0.01 {
		t.Errorf("single sel = %v, want 0.25", got)
	}
	if got := c.SingleSel(1); got != 1 {
		t.Errorf("unseen class sel = %v, want 1", got)
	}
}

func TestPredSelEstimation(t *testing.T) {
	c, q := collector(t, "PATTERN A;B WHERE A.price > B.price WITHIN 100")
	_ = q
	// A prices uniform over [0,100); B pinned at 75: true sel = 0.25
	for ts := int64(0); ts < 1000; ts++ {
		c.Observe(0, event.NewStock(uint64(ts), ts, 0, "A", float64(ts%100), 1), true)
		c.Observe(1, event.NewStock(uint64(ts), ts, 0, "B", 75, 1), true)
	}
	got := c.PredSel(0)
	if math.Abs(got-0.25) > 0.1 {
		t.Errorf("pred sel = %v, want ~0.25", got)
	}
}

func TestPredSelUnknownWhenEmpty(t *testing.T) {
	c, _ := collector(t, "PATTERN A;B WHERE A.price > B.price WITHIN 100")
	if got := c.PredSel(0); got != -1 {
		t.Errorf("empty reservoir sel = %v, want -1", got)
	}
}

func TestPredSelTracksDrift(t *testing.T) {
	c, _ := collector(t, "PATTERN A;B WHERE A.price > B.price WITHIN 100")
	// phase 1: predicate almost always true
	for ts := int64(0); ts < 2000; ts++ {
		c.Observe(0, event.NewStock(uint64(ts), ts, 0, "A", 90, 1), true)
		c.Observe(1, event.NewStock(uint64(ts), ts, 0, "B", 10, 1), true)
	}
	high := c.PredSel(0)
	// phase 2: predicate almost always false; epoch-based reservoirs must
	// flush the stale samples
	for ts := int64(2000); ts < 4000; ts++ {
		c.Observe(0, event.NewStock(uint64(ts), ts, 0, "A", 10, 1), true)
		c.Observe(1, event.NewStock(uint64(ts), ts, 0, "B", 90, 1), true)
	}
	low := c.PredSel(0)
	if high < 0.9 || low > 0.1 {
		t.Errorf("selectivity drift not tracked: high=%v low=%v", high, low)
	}
}

func TestSnapshot(t *testing.T) {
	c, q := collector(t, "PATTERN A;B WHERE A.price > B.price WITHIN 100")
	for ts := int64(0); ts < 500; ts++ {
		c.Observe(0, event.NewStock(uint64(ts), ts, 0, "A", 50, 1), ts%2 == 0)
		c.Observe(1, event.NewStock(uint64(ts), ts, 0, "B", 25, 1), true)
	}
	st := c.Snapshot(q.Within, 499)
	if st.Rate[0] <= 0 || st.Rate[1] <= 0 {
		t.Errorf("snapshot rates: %v", st.Rate)
	}
	if math.Abs(st.SingleSel[0]-0.5) > 0.01 {
		t.Errorf("snapshot single sel = %v", st.SingleSel[0])
	}
	if st.PredSel[0] < 0.9 { // A=50 > B=25 always
		t.Errorf("snapshot pred sel = %v", st.PredSel[0])
	}
}

func TestDrifted(t *testing.T) {
	q := query.MustParse("PATTERN A;B WHERE A.price > B.price WITHIN 100")
	base := cost.UniformStats(q.Info, q.Within, 1)
	same := cost.UniformStats(q.Info, q.Within, 1)
	if Drifted(base, same, 0.5) {
		t.Error("identical stats drifted")
	}
	faster := cost.UniformStats(q.Info, q.Within, 2)
	if !Drifted(base, faster, 0.5) {
		t.Error("2x rate change not detected at t=0.5")
	}
	slight := cost.UniformStats(q.Info, q.Within, 1.2)
	if Drifted(base, slight, 0.5) {
		t.Error("1.2x change flagged at t=0.5")
	}
	// selectivity drift
	selChanged := cost.UniformStats(q.Info, q.Within, 1)
	base.PredSel[0], selChanged.PredSel[0] = 0.5, 0.05
	if !Drifted(base, selChanged, 0.5) {
		t.Error("10x selectivity change not detected")
	}
	// unknown selectivities are ignored
	unk := cost.UniformStats(q.Info, q.Within, 1)
	unk.PredSel[0] = -1
	if Drifted(base, unk, 0.5) {
		t.Error("unknown selectivity treated as drift")
	}
	// zero -> nonzero rate counts as drift
	zero := cost.UniformStats(q.Info, q.Within, 0)
	if !Drifted(zero, faster, 0.5) {
		t.Error("zero->nonzero rate not detected")
	}
}

func TestCollectorDefaultsClamped(t *testing.T) {
	q := query.MustParse("PATTERN A;B WITHIN 100")
	c := NewCollector(q.Info, 0, 0, 1) // degenerate params clamp
	c.Observe(0, event.NewStock(1, 1, 0, "A", 1, 1), true)
	if c.Rate(0, 1) <= 0 {
		t.Error("clamped collector unusable")
	}
}
