// Package stats maintains the running statistics plan adaptation needs
// (§5.3): windowed averages of per-class event rates, the selectivity of
// pushed-down single-class predicates, and sampled selectivities of
// multi-class predicates, gathered by sampling observers attached to the
// plan's leaf buffers.
package stats
