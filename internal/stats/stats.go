package stats

import (
	"math/rand"

	"repro/internal/cost"
	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/query"
)

const reservoirSize = 64

// Collector accumulates statistics for one query's classes and predicates.
// It is not safe for concurrent use; the engine drives it from its single
// processing goroutine.
type Collector struct {
	in          *query.Info
	bucketWidth int64
	nbuckets    int
	classes     []*classStats
	preds       []predStats
	rng         *rand.Rand
	samplePairs int
}

type classStats struct {
	buckets []bucket
	seen    uint64
	passed  uint64
	// resv is a reservoir of passed events; it restarts every epoch
	// (2x the stats window) so selectivity estimates track the current
	// stream rather than its whole history.
	resv       []*event.Event
	resvSeen   uint64
	epochStart int64
	epochInit  bool
}

type bucket struct {
	start    int64
	arrivals uint64
	valid    bool
}

type predStats struct {
	pred    expr.Predicate
	classes []int
	ok      bool
}

// NewCollector builds a collector with the given rate-averaging bucket
// width (ticks) and bucket count. A typical choice is bucketWidth =
// window/2 and 8 buckets.
func NewCollector(in *query.Info, bucketWidth int64, nbuckets int, seed int64) *Collector {
	if bucketWidth <= 0 {
		bucketWidth = 1
	}
	if nbuckets < 2 {
		nbuckets = 2
	}
	c := &Collector{
		in: in, bucketWidth: bucketWidth, nbuckets: nbuckets,
		rng: rand.New(rand.NewSource(seed)), samplePairs: 256,
	}
	for range in.Classes {
		c.classes = append(c.classes, &classStats{buckets: make([]bucket, nbuckets)})
	}
	for _, pi := range in.Preds {
		ps := predStats{classes: pi.Classes}
		if !pi.Single() && !pi.HasAgg {
			if p, err := expr.CompilePred(pi.Cmp); err == nil {
				ps.pred, ps.ok = p, true
			}
		}
		c.preds = append(c.preds, ps)
	}
	return c
}

// Observe records one arrival for class cls; passed reports whether the
// event survived the pushed-down single-class filter. Wire it as the leaf
// observer.
func (c *Collector) Observe(cls int, e *event.Event, passed bool) {
	cs := c.classes[cls]
	cs.seen++
	bi := (e.Ts / c.bucketWidth) % int64(c.nbuckets)
	b := &cs.buckets[bi]
	if bstart := e.Ts - e.Ts%c.bucketWidth; !b.valid || b.start != bstart {
		b.start, b.arrivals, b.valid = bstart, 0, true
	}
	b.arrivals++
	if passed {
		cs.passed++
		epoch := 2 * c.bucketWidth * int64(c.nbuckets)
		if !cs.epochInit || e.Ts-cs.epochStart > epoch {
			cs.resv = cs.resv[:0]
			cs.resvSeen = 0
			cs.epochStart = e.Ts
			cs.epochInit = true
		}
		// reservoir sampling over this epoch's passed events
		cs.resvSeen++
		if len(cs.resv) < reservoirSize {
			cs.resv = append(cs.resv, e)
		} else if j := c.rng.Int63n(int64(cs.resvSeen)); j < reservoirSize {
			cs.resv[j] = e
		}
	}
}

// ObserveRejects records n filtered-out arrivals at stream time ts for
// class cls without individual events: the bulk form of Observe(·, false)
// used to credit router-level rejects, so a routed adaptive engine's rates
// and selectivities describe the unconditioned stream (what a deliver-to-
// all engine would have observed) instead of only the delivered slice.
// Rejected events never enter the reservoir, so predicate-selectivity
// sampling is unaffected.
func (c *Collector) ObserveRejects(cls int, ts int64, n uint64) {
	if n == 0 {
		return
	}
	cs := c.classes[cls]
	cs.seen += n
	bi := (ts / c.bucketWidth) % int64(c.nbuckets)
	b := &cs.buckets[bi]
	if bstart := ts - ts%c.bucketWidth; !b.valid || b.start != bstart {
		b.start, b.arrivals, b.valid = bstart, 0, true
	}
	b.arrivals += n
}

// Rate returns the windowed-average arrival rate (events/tick) of class
// cls, counting only complete-ish buckets.
func (c *Collector) Rate(cls int, now int64) float64 {
	cs := c.classes[cls]
	var arrivals uint64
	var span int64
	for _, b := range cs.buckets {
		if !b.valid {
			continue
		}
		if now-b.start > int64(c.nbuckets)*c.bucketWidth {
			continue // stale bucket not yet overwritten
		}
		arrivals += b.arrivals
		if now >= b.start+c.bucketWidth {
			span += c.bucketWidth
		} else {
			span += now - b.start + 1
		}
	}
	if span <= 0 {
		return 0
	}
	return float64(arrivals) / float64(span)
}

// SingleSel returns the observed selectivity of the class's pushed-down
// filter (1 when nothing has been filtered or seen).
func (c *Collector) SingleSel(cls int) float64 {
	cs := c.classes[cls]
	if cs.seen == 0 {
		return 1
	}
	return float64(cs.passed) / float64(cs.seen)
}

// PredSel estimates the value selectivity of multi-class predicate i by
// evaluating it on sampled combinations from the class reservoirs. It
// returns -1 (unknown) when a reservoir is empty or the predicate is not
// samplable (aggregates).
func (c *Collector) PredSel(i int) float64 {
	ps := c.preds[i]
	if !ps.ok {
		return -1
	}
	for _, cls := range ps.classes {
		if len(c.classes[cls].resv) == 0 {
			return -1
		}
	}
	hits := 0
	env := sampleEnv{events: make(map[int]*event.Event, len(ps.classes))}
	for s := 0; s < c.samplePairs; s++ {
		for _, cls := range ps.classes {
			r := c.classes[cls].resv
			env.events[cls] = r[c.rng.Intn(len(r))]
		}
		if ps.pred(env) {
			hits++
		}
	}
	return float64(hits) / float64(c.samplePairs)
}

// Snapshot assembles a cost.Stats from the current estimates.
func (c *Collector) Snapshot(window, now int64) *cost.Stats {
	st := cost.UniformStats(c.in, window, 0)
	for i := range c.in.Classes {
		st.Rate[i] = c.Rate(i, now)
		st.SingleSel[i] = c.SingleSel(i)
	}
	for i := range c.in.Preds {
		st.PredSel[i] = c.PredSel(i)
	}
	return st
}

// sampleEnv binds one sampled event per class.
type sampleEnv struct {
	events map[int]*event.Event
}

// Event implements expr.Env.
func (s sampleEnv) Event(class int) *event.Event { return s.events[class] }

// Group implements expr.Env.
func (s sampleEnv) Group(class int) []*event.Event {
	if e := s.events[class]; e != nil {
		return []*event.Event{e}
	}
	return nil
}

// Drifted reports whether any statistic of cur differs from base by more
// than threshold t (relative), considering only statistics both sides know.
// This is the trigger condition for re-running the plan search (§5.3).
func Drifted(base, cur *cost.Stats, t float64) bool {
	rel := func(a, b float64) bool {
		if a <= 0 && b <= 0 {
			return false
		}
		hi, lo := a, b
		if hi < lo {
			hi, lo = lo, hi
		}
		if lo <= 0 {
			return true
		}
		return (hi-lo)/lo > t
	}
	for i := range base.Rate {
		if rel(base.Rate[i], cur.Rate[i]) {
			return true
		}
	}
	for i := range base.SingleSel {
		if rel(base.SingleSel[i], cur.SingleSel[i]) {
			return true
		}
	}
	for i := range base.PredSel {
		if base.PredSel[i] > 0 && cur.PredSel[i] > 0 && rel(base.PredSel[i], cur.PredSel[i]) {
			return true
		}
	}
	return false
}
