// Pooling support for the zero-allocation hot path: a sync.Pool-backed
// allocator for Event structs and for the batch slices the concurrent
// runtime ships between goroutines.
//
// Recycle points are strictly limited to spots where ownership is provable:
//
//   - the engine's reordering stage owns private event copies, so copies
//     dropped for exceeding the disorder bound (or rejected by every leaf
//     filter) return to the event pool;
//   - the runtime's ingest side fills batch slices that workers drain and
//     return once every event has been handed to the shard engines (the
//     events themselves live on in leaf buffers; only the slice recycles).
//
// Events that enter a leaf buffer are referenced by records, matches and
// closure groups with user-visible lifetimes and are deliberately never
// recycled.
package event

import (
	"sync"

	"repro/internal/slicepool"
)

var eventPool = sync.Pool{New: func() any { return new(Event) }}

// AcquireEvent returns a zeroed Event from the shared pool. The caller owns
// it until it is handed to an engine; events that never reach a buffer may
// be returned with ReleaseEvent.
func AcquireEvent() *Event { return eventPool.Get().(*Event) }

// ReleaseEvent recycles an event the caller exclusively owns. The event is
// zeroed; the caller must not use it afterwards.
func ReleaseEvent(e *Event) {
	if e == nil {
		return
	}
	*e = Event{}
	eventPool.Put(e)
}

// batchPool recycles the []*Event batch slices the concurrent runtime
// sends from the ingest side to shard workers. See internal/slicepool for
// the zero-allocation boxing scheme.
var batchPool slicepool.Pool[*Event]

// GetBatch returns an empty batch slice with whatever capacity a previous
// batch left behind.
func GetBatch() []*Event { return batchPool.Get() }

// PutBatch recycles a batch slice once its events have been handed off.
// The slice's event pointers are cleared; the events themselves are owned
// by the engines now and are not touched.
func PutBatch(b []*Event) { batchPool.Put(b) }
