package event

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary codec for events, used by the write-ahead log. The encoding is
// schema-relative: an event is stored as a schema id (assigned per WAL
// segment by the caller), the arrival Seq, the timestamp, and the value
// vector. Integers use uvarint/zigzag-varint so the common small deltas
// stay compact; floats are fixed 8-byte little-endian bits.
//
// Wire layout of one event:
//
//	uvarint schemaID
//	uvarint seq
//	varint  ts        (zigzag)
//	per attribute (count taken from the schema):
//	  byte kind
//	  KindFloat:  8 bytes little-endian IEEE-754 bits
//	  KindString: uvarint length + raw bytes
//	  KindNull:   nothing
//
// Schemas themselves are serialized by EncodeSchema/DecodeSchema as
// name + attribute list; decode reconstructs a fresh *Schema, so replayed
// events of a stream share one schema pointer per decode session.

// AppendEncoded appends the binary encoding of e to dst and returns the
// extended slice. schemaID is the caller-assigned id for e.Schema.
func AppendEncoded(dst []byte, e *Event, schemaID uint64) []byte {
	dst = binary.AppendUvarint(dst, schemaID)
	dst = binary.AppendUvarint(dst, e.Seq)
	dst = binary.AppendVarint(dst, e.Ts)
	for _, v := range e.Vals {
		dst = append(dst, byte(v.Kind))
		switch v.Kind {
		case KindFloat:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		}
	}
	return dst
}

// Decode reads one encoded event from b. schemas maps schema ids (as
// assigned at encode time) to schemas. It returns the decoded event, the
// number of bytes consumed, and an error on malformed input. The returned
// event is freshly allocated and safe to retain.
func Decode(b []byte, schemas map[uint64]*Schema) (*Event, int, error) {
	off := 0
	sid, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("event: decode: bad schema id varint")
	}
	off += n
	s, ok := schemas[sid]
	if !ok {
		return nil, 0, fmt.Errorf("event: decode: unknown schema id %d", sid)
	}
	seq, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("event: decode: bad seq varint")
	}
	off += n
	ts, n := binary.Varint(b[off:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("event: decode: bad ts varint")
	}
	off += n
	vals := make([]Value, s.NumAttrs())
	for i := range vals {
		if off >= len(b) {
			return nil, 0, fmt.Errorf("event: decode: truncated value %d/%d", i, len(vals))
		}
		kind := Kind(b[off])
		off++
		switch kind {
		case KindNull:
			// zero Value
		case KindFloat:
			if off+8 > len(b) {
				return nil, 0, fmt.Errorf("event: decode: truncated float value")
			}
			vals[i] = Value{Kind: KindFloat, F: math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))}
			off += 8
		case KindString:
			ln, n := binary.Uvarint(b[off:])
			if n <= 0 {
				return nil, 0, fmt.Errorf("event: decode: bad string length varint")
			}
			off += n
			if ln > uint64(len(b)-off) {
				return nil, 0, fmt.Errorf("event: decode: string length %d exceeds remaining %d bytes", ln, len(b)-off)
			}
			vals[i] = Value{Kind: KindString, S: string(b[off : off+int(ln)])}
			off += int(ln)
		default:
			return nil, 0, fmt.Errorf("event: decode: unknown value kind %d", kind)
		}
	}
	return &Event{Seq: seq, Ts: ts, Schema: s, Vals: vals}, off, nil
}

// AppendSchema appends the binary encoding of schema s (with id) to dst:
// uvarint id, name, then the attribute list, each as uvarint length + raw
// bytes.
func AppendSchema(dst []byte, s *Schema, id uint64) []byte {
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, uint64(len(s.Name())))
	dst = append(dst, s.Name()...)
	dst = binary.AppendUvarint(dst, uint64(s.NumAttrs()))
	for _, a := range s.Attrs() {
		dst = binary.AppendUvarint(dst, uint64(len(a)))
		dst = append(dst, a...)
	}
	return dst
}

// DecodeSchema reads one encoded schema from b, returning the id, a freshly
// constructed schema, and the number of bytes consumed.
func DecodeSchema(b []byte) (uint64, *Schema, int, error) {
	off := 0
	id, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return 0, nil, 0, fmt.Errorf("event: decode schema: bad id varint")
	}
	off += n
	name, n, err := decodeString(b[off:])
	if err != nil {
		return 0, nil, 0, fmt.Errorf("event: decode schema: name: %w", err)
	}
	off += n
	cnt, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return 0, nil, 0, fmt.Errorf("event: decode schema: bad attr count varint")
	}
	off += n
	if cnt > uint64(len(b)-off) {
		// each attribute needs at least one length byte; reject early so a
		// corrupted count cannot drive a huge allocation.
		return 0, nil, 0, fmt.Errorf("event: decode schema: attr count %d exceeds remaining %d bytes", cnt, len(b)-off)
	}
	attrs := make([]string, cnt)
	for i := range attrs {
		a, n, err := decodeString(b[off:])
		if err != nil {
			return 0, nil, 0, fmt.Errorf("event: decode schema: attr %d: %w", i, err)
		}
		off += n
		attrs[i] = a
	}
	s, err := NewSchema(name, attrs...)
	if err != nil {
		return 0, nil, 0, err
	}
	return id, s, off, nil
}

func decodeString(b []byte) (string, int, error) {
	ln, n := binary.Uvarint(b)
	if n <= 0 {
		return "", 0, fmt.Errorf("bad length varint")
	}
	if ln > uint64(len(b)-n) {
		return "", 0, fmt.Errorf("length %d exceeds remaining %d bytes", ln, len(b)-n)
	}
	return string(b[n : n+int(ln)]), n + int(ln), nil
}
