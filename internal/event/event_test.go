package event

import (
	"testing"
	"testing/quick"
)

func TestValueConstructors(t *testing.T) {
	if v := Float(3.5); v.Kind != KindFloat || v.F != 3.5 {
		t.Errorf("Float(3.5) = %+v", v)
	}
	if v := Int(7); v.Kind != KindFloat || v.F != 7 {
		t.Errorf("Int(7) = %+v", v)
	}
	if v := Str("x"); v.Kind != KindString || v.S != "x" {
		t.Errorf("Str(x) = %+v", v)
	}
	if !Null().IsNull() {
		t.Error("Null() is not null")
	}
	if (Value{}).Kind != KindNull {
		t.Error("zero Value is not null")
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Float(1), Float(1), true},
		{Float(1), Float(2), false},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Float(1), Str("1"), false},
		{Null(), Null(), false}, // null never equals null
		{Null(), Float(0), false},
		{Float(0), Null(), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{Float(1), Float(2), -1, true},
		{Float(2), Float(1), 1, true},
		{Float(2), Float(2), 0, true},
		{Str("a"), Str("b"), -1, true},
		{Str("b"), Str("a"), 1, true},
		{Str("a"), Str("a"), 0, true},
		{Float(1), Str("a"), 0, false},
		{Null(), Float(1), 0, false},
		{Null(), Null(), 0, false},
	}
	for _, c := range cases {
		cmp, ok := c.a.Compare(c.b)
		if cmp != c.cmp || ok != c.ok {
			t.Errorf("%v.Compare(%v) = (%d,%v), want (%d,%v)", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		x, okx := Float(a).Compare(Float(b))
		y, oky := Float(b).Compare(Float(a))
		return okx && oky && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueString(t *testing.T) {
	if s := Float(2.5).String(); s != "2.5" {
		t.Errorf("Float string = %q", s)
	}
	if s := Str("hi").String(); s != `"hi"` {
		t.Errorf("Str string = %q", s)
	}
	if s := Null().String(); s != "NULL" {
		t.Errorf("Null string = %q", s)
	}
}

func TestSchema(t *testing.T) {
	s, err := NewSchema("S", "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "S" || s.NumAttrs() != 3 {
		t.Fatalf("schema basics wrong: %v %v", s.Name(), s.NumAttrs())
	}
	if s.Index("b") != 1 {
		t.Errorf("Index(b) = %d", s.Index("b"))
	}
	if s.Index("zz") != -1 {
		t.Errorf("Index(zz) = %d", s.Index("zz"))
	}
	if got := s.Attrs(); len(got) != 3 || got[0] != "a" {
		t.Errorf("Attrs = %v", got)
	}
}

func TestSchemaDuplicate(t *testing.T) {
	if _, err := NewSchema("S", "a", "a"); err == nil {
		t.Error("duplicate attribute accepted")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema did not panic on duplicate")
		}
	}()
	MustSchema("S", "x", "x")
}

func TestEventNewArity(t *testing.T) {
	s := MustSchema("S", "a", "b")
	if _, err := New(s, 1, Float(1)); err == nil {
		t.Error("arity mismatch accepted")
	}
	e, err := New(s, 5, Float(1), Str("z"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Ts != 5 {
		t.Errorf("Ts = %d", e.Ts)
	}
	if !e.Get("a").Equal(Float(1)) || !e.Get("b").Equal(Str("z")) {
		t.Errorf("Get values wrong: %v %v", e.Get("a"), e.Get("b"))
	}
	if !e.Get("missing").IsNull() {
		t.Error("missing attribute not null")
	}
	if !e.At(1).Equal(Str("z")) {
		t.Errorf("At(1) = %v", e.At(1))
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(MustSchema("S", "a"), 0)
}

func TestStockHelpers(t *testing.T) {
	e := NewStock(42, 100, 7, "IBM", 12.5, 300)
	if e.Seq != 42 || e.Ts != 100 {
		t.Errorf("seq/ts wrong: %d %d", e.Seq, e.Ts)
	}
	if !e.Get("name").Equal(Str("IBM")) {
		t.Errorf("name = %v", e.Get("name"))
	}
	if !e.Get("price").Equal(Float(12.5)) {
		t.Errorf("price = %v", e.Get("price"))
	}
	if !e.Get("id").Equal(Int(7)) || !e.Get("volume").Equal(Float(300)) {
		t.Error("id/volume wrong")
	}
}

func TestWeblogHelpers(t *testing.T) {
	e := NewWeblog(1, 9, "1.2.3.4", "/pub/x.pdf", "publication")
	if !e.Get("ip").Equal(Str("1.2.3.4")) || !e.Get("url").Equal(Str("/pub/x.pdf")) || !e.Get("desc").Equal(Str("publication")) {
		t.Errorf("weblog fields wrong: %v", e)
	}
}

func TestEventString(t *testing.T) {
	e := NewStock(1, 3, 1, "IBM", 10, 5)
	got := e.String()
	want := `Stocks@3{id=1, name="IBM", price=10, volume=5}`
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindNull: "null", KindFloat: "float", KindString: "string", Kind(9): "kind(9)"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
