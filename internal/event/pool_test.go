package event

import "testing"

func TestAcquireReleaseEvent(t *testing.T) {
	e := AcquireEvent()
	if e.Schema != nil || e.Seq != 0 || len(e.Vals) != 0 {
		t.Fatalf("acquired event not zeroed: %+v", e)
	}
	*e = *NewStock(7, 42, 1, "IBM", 10, 20)
	ReleaseEvent(e)
	// The same (or another) pooled event must come back zeroed.
	e2 := AcquireEvent()
	if e2.Schema != nil || e2.Seq != 0 || e2.Ts != 0 || e2.Vals != nil {
		t.Fatalf("released event leaked state: %+v", e2)
	}
	ReleaseEvent(e2)
	ReleaseEvent(nil) // must not panic
}

func TestBatchPoolRoundTrip(t *testing.T) {
	b := GetBatch()
	if len(b) != 0 {
		t.Fatalf("batch not empty: %d", len(b))
	}
	for i := 0; i < 100; i++ {
		b = append(b, NewStock(uint64(i+1), int64(i), 1, "IBM", 1, 1))
	}
	PutBatch(b)
	b2 := GetBatch()
	if len(b2) != 0 {
		t.Fatalf("recycled batch not reset: len %d", len(b2))
	}
	// Whether or not the same backing array comes back (sync.Pool may have
	// dropped it), the pointers must have been cleared on Put so events
	// are not pinned.
	if cap(b2) >= 100 {
		s := b2[:100]
		for i, e := range s {
			if e != nil {
				t.Fatalf("recycled batch still pins event at %d", i)
			}
		}
	}
	PutBatch(b2)
	PutBatch(nil) // must not panic
}
