package event

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types an attribute value can take.
type Kind uint8

const (
	// KindNull is the zero Value; comparisons against it are always false.
	KindNull Kind = iota
	// KindFloat is a 64-bit floating point number. Integer attributes are
	// stored as floats as well; the paper's schemas only compare
	// numerically.
	KindFloat
	// KindString is an immutable string.
	KindString
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed attribute value. The zero Value is null.
type Value struct {
	Kind Kind
	F    float64
	S    string
}

// Float returns a numeric Value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Int returns a numeric Value holding an integer.
func Int(i int64) Value { return Value{Kind: KindFloat, F: float64(i)} }

// String returns a string Value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Null returns the null Value.
func Null() Value { return Value{} }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Equal reports whether two values are equal. Null never equals anything,
// including another null (SQL-like semantics, which is what a CEP predicate
// needs: a missing attribute cannot satisfy an equality).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind || v.Kind == KindNull {
		return false
	}
	if v.Kind == KindFloat {
		return v.F == o.F
	}
	return v.S == o.S
}

// Compare returns -1, 0, +1 for v < o, v == o, v > o and ok=false when the
// values are not comparable (different kinds or null).
func (v Value) Compare(o Value) (cmp int, ok bool) {
	if v.Kind != o.Kind || v.Kind == KindNull {
		return 0, false
	}
	switch v.Kind {
	case KindFloat:
		switch {
		case v.F < o.F:
			return -1, true
		case v.F > o.F:
			return 1, true
		default:
			return 0, true
		}
	case KindString:
		return strings.Compare(v.S, o.S), true
	}
	return 0, false
}

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.Kind {
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.S)
	default:
		return "NULL"
	}
}

// Schema maps attribute names to positions in an event's value vector.
// Schemas are immutable after construction and shared by all events of a
// stream, so per-event storage is a flat []Value.
type Schema struct {
	name  string
	attrs []string
	index map[string]int
}

// NewSchema builds a schema for stream name with the given attribute names,
// in order. Attribute names must be unique.
func NewSchema(name string, attrs ...string) (*Schema, error) {
	s := &Schema{name: name, attrs: append([]string(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if _, dup := s.index[a]; dup {
			return nil, fmt.Errorf("event: schema %q: duplicate attribute %q", name, a)
		}
		s.index[a] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for package-level schemas.
func MustSchema(name string, attrs ...string) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the stream name the schema belongs to.
func (s *Schema) Name() string { return s.name }

// Attrs returns the attribute names in declaration order. Callers must not
// mutate the returned slice.
func (s *Schema) Attrs() []string { return s.attrs }

// NumAttrs returns the number of attributes.
func (s *Schema) NumAttrs() int { return len(s.attrs) }

// Index returns the position of attribute name, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Event is a primitive event: one occurrence on an input stream. Events are
// immutable once published to the engine; operators only hold pointers.
type Event struct {
	// Seq is a monotonically increasing arrival sequence number assigned by
	// the source. It provides an exact total order consistent with (and
	// refining) timestamp order, used for duplicate-free plan switching.
	Seq uint64
	// Ts is the occurrence timestamp in ticks. For primitive events the
	// start- and end-timestamps coincide (§3).
	Ts int64
	// Schema describes Vals. All events of a stream share one *Schema.
	Schema *Schema
	// Vals holds attribute values, positionally per Schema.
	Vals []Value
}

// New creates an event with the given schema, timestamp and values.
// len(vals) must equal the schema's attribute count.
func New(s *Schema, ts int64, vals ...Value) (*Event, error) {
	if len(vals) != s.NumAttrs() {
		return nil, fmt.Errorf("event: stream %q: got %d values, schema has %d attributes",
			s.Name(), len(vals), s.NumAttrs())
	}
	return &Event{Ts: ts, Schema: s, Vals: vals}, nil
}

// MustNew is New that panics on arity mismatch; for tests and generators.
func MustNew(s *Schema, ts int64, vals ...Value) *Event {
	e, err := New(s, ts, vals...)
	if err != nil {
		panic(err)
	}
	return e
}

// Get returns the value of the named attribute, or null if the attribute is
// not in the schema.
func (e *Event) Get(attr string) Value {
	i := e.Schema.Index(attr)
	if i < 0 {
		return Value{}
	}
	return e.Vals[i]
}

// At returns the value at attribute position i (no bounds checks beyond the
// slice's own).
func (e *Event) At(i int) Value { return e.Vals[i] }

// String implements fmt.Stringer.
func (e *Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%d{", e.Schema.Name(), e.Ts)
	for i, a := range e.Schema.Attrs() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", a, e.Vals[i])
	}
	b.WriteByte('}')
	return b.String()
}

// Stock is the stock-trade schema used by the paper's motivating queries:
// (id, name, price, volume, ts) with ts stored as the event timestamp.
var Stock = MustSchema("Stocks", "id", "name", "price", "volume")

// Weblog is the web-access schema of §6.5: (Time, IP, AccessURL,
// Description) with Time stored as the event timestamp.
var Weblog = MustSchema("Weblog", "ip", "url", "desc")

// NewStock builds a stock-trade event.
func NewStock(seq uint64, ts int64, id int64, name string, price, volume float64) *Event {
	e := MustNew(Stock, ts, Int(id), Str(name), Float(price), Float(volume))
	e.Seq = seq
	return e
}

// NewWeblog builds a web-access event.
func NewWeblog(seq uint64, ts int64, ip, url, desc string) *Event {
	e := MustNew(Weblog, ts, Str(ip), Str(url), Str(desc))
	e.Seq = seq
	return e
}
