// Package event defines the primitive and composite event data model used
// throughout ZStream: typed attribute values, stream schemas, and events
// carrying interval timestamps (§3 of the paper).
//
// Primitive events have start-ts == end-ts (a single timestamp); composite
// events assembled by operators span the interval between the earliest and
// latest constituent primitive event.
package event
