package buffer

import (
	"testing"

	"repro/internal/event"
)

func poolEv(seq uint64, ts int64) *event.Event {
	e := event.NewStock(seq, ts, 1, "IBM", 10, 10)
	return e
}

// TestPoolEvictionRecycles checks the recycle points: eviction and
// consumed-prefix drops park records in the pool, and subsequent Leaf
// calls reuse them without allocating new slot vectors.
func TestPoolEvictionRecycles(t *testing.T) {
	p := NewPool(2)
	b := New()
	b.SetPool(p)
	for i := 0; i < 10; i++ {
		b.Append(p.Leaf(poolEv(uint64(i+1), int64(i)), 0, 2))
	}
	if p.Idle() != 0 {
		t.Fatalf("idle = %d before eviction, want 0", p.Idle())
	}
	if n := b.EvictBefore(5); n != 5 {
		t.Fatalf("evicted %d, want 5", n)
	}
	if p.Idle() != 5 {
		t.Fatalf("idle = %d after evicting 5, want 5", p.Idle())
	}
	r := p.Leaf(poolEv(11, 20), 1, 2)
	if p.Idle() != 4 {
		t.Fatalf("idle = %d after reuse, want 4", p.Idle())
	}
	// the recycled record must be fully reset
	if r.Slots[0].IsSet() || !r.Slots[1].IsSet() || r.Start != 20 || r.End != 20 || r.MaxSeq != 11 {
		t.Fatalf("recycled record not reset: %v", r)
	}

	b.Consume()
	b.DropConsumedPrefix()
	if p.Idle() != 4+5 {
		t.Fatalf("idle = %d after dropping consumed prefix, want 9", p.Idle())
	}
}

// TestPoolClearNoDoubleRecycle evicts part of a buffer and then clears it:
// every record must be recycled exactly once (a double put would hand the
// same record out twice and corrupt two buffers).
func TestPoolClearNoDoubleRecycle(t *testing.T) {
	p := NewPool(1)
	b := New()
	b.SetPool(p)
	recs := map[*Record]bool{}
	for i := 0; i < 100; i++ {
		r := p.Leaf(poolEv(uint64(i+1), int64(i)), 0, 1)
		recs[r] = true
		b.Append(r)
	}
	b.EvictBefore(30) // part of the prefix, some below the compact threshold
	b.Clear()
	if p.Idle() != 100 {
		t.Fatalf("idle = %d after evict+clear of 100 records, want exactly 100", p.Idle())
	}
	seen := map[*Record]bool{}
	for i := 0; i < 100; i++ {
		r := p.get()
		if seen[r] {
			t.Fatalf("record %p handed out twice", r)
		}
		seen[r] = true
	}
}

// TestPoolCloneIsIndependent verifies a cloned record shares no Record
// storage with its source: recycling the source must not disturb the
// clone.
func TestPoolCloneIsIndependent(t *testing.T) {
	p := NewPool(2)
	src := p.Leaf(poolEv(1, 5), 0, 2)
	cl := p.Clone(src)
	if cl == src {
		t.Fatal("clone returned the same record")
	}
	if cl.Start != 5 || cl.End != 5 || cl.MaxSeq != 1 || !cl.Slots[0].IsSet() {
		t.Fatalf("clone content wrong: %v", cl)
	}
	p.put(src) // zeroes src's slots
	if !cl.Slots[0].IsSet() || cl.Slots[0].E == nil {
		t.Fatal("recycling the source corrupted the clone")
	}
}

// TestNilPoolFallsBack: all pool entry points must work with a nil pool
// (plain allocation), which is what operator unit tests rely on.
func TestNilPoolFallsBack(t *testing.T) {
	var p *Pool
	l := p.Leaf(poolEv(1, 1), 0, 2)
	r := p.Leaf(poolEv(2, 2), 1, 2)
	c := p.Combine(l, r)
	if c.Start != 1 || c.End != 2 || c.MaxSeq != 2 {
		t.Fatalf("nil-pool Combine wrong: %v", c)
	}
	cl := p.Clone(c)
	if cl.Start != 1 || cl.End != 2 || !cl.Slots[0].IsSet() || !cl.Slots[1].IsSet() {
		t.Fatalf("nil-pool Clone wrong: %v", cl)
	}
	g := p.Get(2)
	if len(g.Slots) != 2 {
		t.Fatalf("nil-pool Get wrong arity: %v", g)
	}
	p.Recycle(g) // no-op, must not panic
	if p.Idle() != 0 {
		t.Fatal("nil pool reports idle records")
	}
}
