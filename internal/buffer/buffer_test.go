package buffer

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func stockAt(seq uint64, ts int64, name string) *event.Event {
	return event.NewStock(seq, ts, int64(seq), name, 1, 1)
}

func leafRec(ts int64, class, n int) *Record {
	return Leaf(stockAt(uint64(ts), ts, "X"), class, n)
}

func TestSlot(t *testing.T) {
	e1 := stockAt(1, 10, "A")
	e2 := stockAt(2, 20, "A")
	single := Slot{E: e1}
	group := Slot{Group: []*event.Event{e1, e2}}
	empty := Slot{}

	if !single.IsSet() || !group.IsSet() || empty.IsSet() {
		t.Error("IsSet wrong")
	}
	if single.First() != e1 || single.Last() != e1 || single.Count() != 1 {
		t.Error("single slot accessors wrong")
	}
	if group.First() != e1 || group.Last() != e2 || group.Count() != 2 {
		t.Error("group slot accessors wrong")
	}
	if empty.First() != nil || empty.Last() != nil || empty.Count() != 0 {
		t.Error("empty slot accessors wrong")
	}
}

func TestLeafRecord(t *testing.T) {
	e := stockAt(5, 42, "IBM")
	r := Leaf(e, 1, 3)
	if r.Start != 42 || r.End != 42 || r.MaxSeq != 5 {
		t.Errorf("leaf record times wrong: %+v", r)
	}
	if r.Slots[1].E != e || r.Slots[0].IsSet() || r.Slots[2].IsSet() {
		t.Error("leaf slots wrong")
	}
}

func TestCombine(t *testing.T) {
	a := Leaf(stockAt(1, 10, "A"), 0, 3)
	b := Leaf(stockAt(7, 30, "B"), 2, 3)
	c := Combine(a, b)
	if c.Start != 10 || c.End != 30 || c.MaxSeq != 7 {
		t.Errorf("combined times wrong: %+v", c)
	}
	if c.Slots[0].E == nil || c.Slots[2].E == nil || c.Slots[1].IsSet() {
		t.Error("combined slots wrong")
	}
	// inputs untouched
	if a.Slots[2].IsSet() || b.Slots[0].IsSet() {
		t.Error("Combine mutated inputs")
	}
}

func TestCombineCommutativeInterval(t *testing.T) {
	f := func(t1, t2 int16) bool {
		a := Leaf(stockAt(1, int64(t1), "A"), 0, 2)
		b := Leaf(stockAt(2, int64(t2), "B"), 1, 2)
		x, y := Combine(a, b), Combine(b, a)
		return x.Start == y.Start && x.End == y.End && x.MaxSeq == y.MaxSeq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecordEvents(t *testing.T) {
	e1, e2, e3 := stockAt(1, 1, "A"), stockAt(2, 2, "B"), stockAt(3, 3, "B")
	r := &Record{Slots: []Slot{{E: e1}, {Group: []*event.Event{e2, e3}}}, Start: 1, End: 3}
	evs := r.Events()
	if len(evs) != 3 || evs[0] != e1 || evs[1] != e2 || evs[2] != e3 {
		t.Errorf("Events() = %v", evs)
	}
}

func TestAppendOrderEnforced(t *testing.T) {
	b := New()
	b.Append(leafRec(10, 0, 1))
	b.Append(leafRec(10, 0, 1)) // equal End OK
	b.Append(leafRec(20, 0, 1))
	defer func() {
		if recover() == nil {
			t.Error("out-of-order append did not panic")
		}
	}()
	b.Append(leafRec(5, 0, 1))
}

func TestCursor(t *testing.T) {
	b := New()
	for ts := int64(1); ts <= 5; ts++ {
		b.Append(leafRec(ts, 0, 1))
	}
	if b.Cursor() != 0 || b.Unconsumed() != 5 {
		t.Fatalf("initial cursor state wrong: %d %d", b.Cursor(), b.Unconsumed())
	}
	b.Consume()
	if b.Unconsumed() != 0 {
		t.Error("Consume did not advance")
	}
	b.Append(leafRec(6, 0, 1))
	if b.Unconsumed() != 1 || b.At(b.Cursor()).End != 6 {
		t.Error("new record after Consume not visible")
	}
	b.ResetCursor()
	if b.Unconsumed() != 6 {
		t.Error("ResetCursor did not rewind")
	}
}

func TestEvictBefore(t *testing.T) {
	b := New()
	for ts := int64(1); ts <= 10; ts++ {
		b.Append(leafRec(ts, 0, 1))
	}
	b.Consume()
	n := b.EvictBefore(6) // records with Start < 6 go away
	if n != 5 || b.Len() != 5 {
		t.Fatalf("evicted %d, len %d", n, b.Len())
	}
	if b.At(0).Start != 6 {
		t.Errorf("head record start = %d", b.At(0).Start)
	}
	// cursor stays clamped and still marks all-consumed
	if b.Unconsumed() != 0 {
		t.Errorf("unconsumed after evict = %d", b.Unconsumed())
	}
}

func TestEvictCursorClamp(t *testing.T) {
	b := New()
	for ts := int64(1); ts <= 4; ts++ {
		b.Append(leafRec(ts, 0, 1))
	}
	// consume nothing; evict everything
	b.EvictBefore(100)
	if b.Len() != 0 || b.Cursor() != 0 {
		t.Errorf("state after full evict: len=%d cursor=%d", b.Len(), b.Cursor())
	}
}

func TestDropConsumedPrefix(t *testing.T) {
	b := New()
	for ts := int64(1); ts <= 4; ts++ {
		b.Append(leafRec(ts, 0, 1))
	}
	b.Consume()
	b.Append(leafRec(5, 0, 1))
	b.DropConsumedPrefix()
	if b.Len() != 1 || b.At(0).End != 5 || b.Cursor() != 0 {
		t.Errorf("after drop: len=%d cursor=%d", b.Len(), b.Cursor())
	}
}

func TestClear(t *testing.T) {
	b := New()
	b.Append(leafRec(1, 0, 1))
	b.Consume()
	b.Clear()
	if b.Len() != 0 || b.Cursor() != 0 {
		t.Error("Clear left state behind")
	}
	b.Append(leafRec(1, 0, 1)) // usable after clear
	if b.Len() != 1 {
		t.Error("append after clear failed")
	}
}

func TestCompaction(t *testing.T) {
	b := New()
	for ts := int64(1); ts <= 1000; ts++ {
		b.Append(leafRec(ts, 0, 1))
		if ts%10 == 0 {
			b.EvictBefore(ts - 3)
		}
	}
	if b.Len() > 20 {
		t.Errorf("len after eviction = %d", b.Len())
	}
	if len(b.recs) > 256 {
		t.Errorf("backing array not compacted: %d", len(b.recs))
	}
	// order preserved
	for i := 1; i < b.Len(); i++ {
		if b.At(i-1).End > b.At(i).End {
			t.Fatal("order broken after compaction")
		}
	}
}

func TestLowerBoundEnd(t *testing.T) {
	b := New()
	for _, ts := range []int64{2, 4, 4, 8} {
		b.Append(leafRec(ts, 0, 1))
	}
	cases := []struct {
		t    int64
		want int
	}{{1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 3}, {8, 3}, {9, 4}}
	for _, c := range cases {
		if got := b.LowerBoundEnd(c.t); got != c.want {
			t.Errorf("LowerBoundEnd(%d) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestLowerBoundEndProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := New()
	var ends []int64
	ts := int64(0)
	for i := 0; i < 500; i++ {
		ts += int64(rng.Intn(3))
		b.Append(leafRec(ts, 0, 1))
		ends = append(ends, ts)
	}
	for probe := int64(-1); probe <= ts+1; probe++ {
		want := sort.Search(len(ends), func(i int) bool { return ends[i] >= probe })
		if got := b.LowerBoundEnd(probe); got != want {
			t.Fatalf("LowerBoundEnd(%d) = %d, want %d", probe, got, want)
		}
	}
}

func TestHashIndex(t *testing.T) {
	b := New()
	key := func(r *Record) event.Value { return r.Slots[0].E.Get("name") }
	b.Append(Leaf(stockAt(1, 1, "IBM"), 0, 1))
	ix := b.BuildIndex(key)
	b.Append(Leaf(stockAt(2, 2, "Sun"), 0, 1))
	b.Append(Leaf(stockAt(3, 3, "IBM"), 0, 1))

	if got := len(ix.Probe(event.Str("IBM"))); got != 2 {
		t.Errorf("Probe(IBM) = %d records", got)
	}
	if got := len(ix.Probe(event.Str("Sun"))); got != 1 {
		t.Errorf("Probe(Sun) = %d records", got)
	}
	if got := len(ix.Probe(event.Str("Oracle"))); got != 0 {
		t.Errorf("Probe(Oracle) = %d records", got)
	}
	if ix.Keys() != 2 {
		t.Errorf("Keys = %d", ix.Keys())
	}

	// eviction removes from index
	b.EvictBefore(2) // removes ts=1 IBM
	if got := len(ix.Probe(event.Str("IBM"))); got != 1 {
		t.Errorf("Probe(IBM) after evict = %d", got)
	}
	b.Clear()
	if ix.Keys() != 0 {
		t.Errorf("Keys after clear = %d", ix.Keys())
	}
}

func TestHashIndexPrePopulated(t *testing.T) {
	b := New()
	b.Append(Leaf(stockAt(1, 1, "A"), 0, 1))
	b.Append(Leaf(stockAt(2, 2, "A"), 0, 1))
	ix := b.BuildIndex(func(r *Record) event.Value { return r.Slots[0].E.Get("name") })
	if got := len(ix.Probe(event.Str("A"))); got != 2 {
		t.Errorf("pre-populated probe = %d", got)
	}
}

func TestLiveHighWater(t *testing.T) {
	b := New()
	for ts := int64(1); ts <= 8; ts++ {
		b.Append(leafRec(ts, 0, 1))
	}
	b.EvictBefore(8)
	if b.LiveHighWater() != 8 {
		t.Errorf("high water = %d", b.LiveHighWater())
	}
	if b.Len() != 1 {
		t.Errorf("len = %d", b.Len())
	}
}

func TestRecordString(t *testing.T) {
	r := Combine(Leaf(stockAt(1, 10, "A"), 0, 2), Leaf(stockAt(2, 20, "B"), 1, 2))
	if s := r.String(); s == "" {
		t.Error("empty String()")
	}
	g := &Record{Slots: []Slot{{Group: []*event.Event{stockAt(1, 1, "A")}}, {}}, Start: 1, End: 1}
	if s := g.String(); s == "" {
		t.Error("empty String() for group")
	}
}

// Property: after any interleaving of appends (in end order), consumes and
// evictions, the live records remain sorted by End and Start >= the last
// eviction threshold is respected for survivors' scan-visibility.
func TestBufferInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		b := New()
		ts := int64(0)
		eat := int64(-1)
		for op := 0; op < 400; op++ {
			switch rng.Intn(4) {
			case 0, 1:
				ts += int64(rng.Intn(4))
				b.Append(leafRec(ts, 0, 1))
			case 2:
				b.Consume()
			case 3:
				if ts > 0 {
					eat = ts - int64(rng.Intn(10))
					b.EvictBefore(eat)
				}
			}
			for i := 1; i < b.Len(); i++ {
				if b.At(i-1).End > b.At(i).End {
					t.Fatal("end order violated")
				}
			}
			if b.Cursor() < 0 || b.Cursor() > b.Len() {
				t.Fatalf("cursor out of range: %d/%d", b.Cursor(), b.Len())
			}
		}
	}
}
