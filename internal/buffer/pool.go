package buffer

import "repro/internal/event"

// Pool recycles Records of a fixed slot arity. Engines are single-writer,
// so the pool is a plain free list with no locking: one pool is shared by
// every buffer of a plan (all records of a plan have the same number of
// slots), and records return to it when a buffer evicts, drops a consumed
// prefix, or is cleared.
//
// Ownership contract: a record in a pooled buffer is owned by exactly one
// buffer. Operators that forward child records into their own output
// (disjunction, negation filters, NSEQ pass-through) must Clone them, and
// anything escaping the engine (matches, record taps) must copy what it
// keeps before the originating round ends — the engine recycles drained
// root records immediately. Slot contents (event pointers, closure-group
// arrays) are never pooled, only the Record struct and its slot vector, so
// data copied out of a record stays valid after recycling.
//
// A nil *Pool is valid and falls back to plain allocation, so operator unit
// tests (and any caller outside an engine) work unchanged without pooling.
type Pool struct {
	nclasses int
	free     []*Record
}

// maxPoolIdle caps the free list so a pathological burst cannot pin an
// unbounded working set forever. It is sized above any realistic
// per-round record burst (match-heavy rounds recycle their entire output
// at drain time and reuse it next round; a cap below the round size would
// silently re-allocate every round).
const maxPoolIdle = 1 << 20

// NewPool creates a pool for records with nclasses slots.
func NewPool(nclasses int) *Pool { return &Pool{nclasses: nclasses} }

// Idle returns the number of records currently parked in the free list.
func (p *Pool) Idle() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}

// get returns a record with zeroed slots and metadata.
func (p *Pool) get() *Record {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		r.Start, r.End, r.MaxSeq, r.MinSeq = 0, 0, 0, 0
		return r
	}
	return &Record{Slots: make([]Slot, p.nclasses)}
}

// put recycles a record. Slots are zeroed here so pooled records never pin
// events (or closure-group arrays) beyond their buffer lifetime.
func (p *Pool) put(r *Record) {
	if p == nil || r == nil || len(r.Slots) != p.nclasses || len(p.free) >= maxPoolIdle {
		return
	}
	clear(r.Slots)
	p.free = append(p.free, r)
}

// Get returns a blank record (zeroed slots and metadata) for callers that
// assemble composites slot by slot (KSEQ). With a nil pool it allocates.
func (p *Pool) Get(nclasses int) *Record {
	if p == nil {
		return &Record{Slots: make([]Slot, nclasses)}
	}
	return p.get()
}

// Recycle returns a record that never entered a buffer (e.g. a candidate
// that failed its group predicate) to the pool. No-op on a nil pool.
func (p *Pool) Recycle(r *Record) { p.put(r) }

// Leaf builds a single-event record like the package-level Leaf, reusing a
// pooled record when one is available.
func (p *Pool) Leaf(e *event.Event, class, nclasses int) *Record {
	if p == nil {
		return Leaf(e, class, nclasses)
	}
	r := p.get()
	r.Start, r.End, r.MaxSeq, r.MinSeq = e.Ts, e.Ts, e.Seq, e.Seq
	r.Slots[class] = Slot{E: e}
	return r
}

// Combine merges two records with disjoint slot sets like the package-level
// Combine, reusing a pooled record when one is available.
func (p *Pool) Combine(l, r *Record) *Record {
	if p == nil {
		return Combine(l, r)
	}
	out := p.get()
	copy(out.Slots, l.Slots)
	for i := range r.Slots {
		if r.Slots[i].IsSet() {
			out.Slots[i] = r.Slots[i]
		}
	}
	out.Start = min(l.Start, r.Start)
	out.End = max(l.End, r.End)
	out.MaxSeq = max(l.MaxSeq, r.MaxSeq)
	out.MinSeq = min(l.MinSeq, r.MinSeq)
	return out
}

// Clone copies a record so the copy can live in a second buffer without
// violating the single-owner rule pooling relies on.
func (p *Pool) Clone(r *Record) *Record {
	var out *Record
	if p == nil {
		out = &Record{Slots: make([]Slot, len(r.Slots))}
	} else {
		out = p.get()
	}
	copy(out.Slots, r.Slots)
	out.Start, out.End, out.MaxSeq, out.MinSeq = r.Start, r.End, r.MaxSeq, r.MinSeq
	return out
}

// Import clones a record produced by a plan with fewer classes into this
// pool's wider slot arity: slot i of the source lands in slot i of the
// copy, the remaining slots stay empty, and the interval and sequence
// metadata carry over. A query consuming a shared subplan's partial
// matches uses Import to adopt each record under its own plan's (wider)
// slot layout and its own pool's single-owner discipline — the source
// record remains owned by the producer.
func (p *Pool) Import(r *Record, nclasses int) *Record {
	var out *Record
	if p == nil {
		out = &Record{Slots: make([]Slot, nclasses)}
	} else {
		out = p.get()
	}
	copy(out.Slots, r.Slots)
	out.Start, out.End, out.MaxSeq, out.MinSeq = r.Start, r.End, r.MaxSeq, r.MinSeq
	return out
}
