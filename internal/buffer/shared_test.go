package buffer

import (
	"testing"

	"repro/internal/event"
)

func sharedRec(ts int64, seqs ...uint64) *Record {
	r := &Record{Slots: make([]Slot, 2), Start: ts, End: ts}
	r.MinSeq, r.MaxSeq = seqs[0], seqs[0]
	for _, s := range seqs {
		if s < r.MinSeq {
			r.MinSeq = s
		}
		if s > r.MaxSeq {
			r.MaxSeq = s
		}
	}
	return r
}

func drain(r *ShareReader) []*Record {
	var out []*Record
	r.Each(func(rec *Record) { out = append(out, rec) })
	return out
}

func TestSharedOutReadersSeeOnlyNewRecords(t *testing.T) {
	b := New()
	s := NewSharedOut(b)
	b.Append(sharedRec(1, 1))
	b.Append(sharedRec(2, 2))

	r1 := s.Attach(0)
	if got := drain(r1); len(got) != 0 {
		t.Fatalf("reader attached at end saw %d pre-existing records", len(got))
	}
	b.Append(sharedRec(3, 3))
	b.Append(sharedRec(4, 4))
	if got := drain(r1); len(got) != 2 {
		t.Fatalf("reader saw %d new records, want 2", len(got))
	}
	if got := drain(r1); len(got) != 0 {
		t.Fatalf("re-drain saw %d records, want 0", len(got))
	}
}

func TestSharedOutMinSeqVisibility(t *testing.T) {
	b := New()
	s := NewSharedOut(b)
	r := s.Attach(10)
	// A record combining an old event (seq 7) with a new one (seq 12) is
	// invisible: the reader's query never observed seq 7.
	b.Append(sharedRec(5, 7, 12))
	b.Append(sharedRec(6, 11, 12))
	got := drain(r)
	if len(got) != 1 || got[0].MinSeq != 11 {
		t.Fatalf("minSeq filter: got %d records (want 1 with MinSeq 11)", len(got))
	}
}

func TestSharedOutEvictionClampedToSlowestReader(t *testing.T) {
	b := New()
	s := NewSharedOut(b)
	fast := s.Attach(0)
	slow := s.Attach(0)
	for ts := int64(1); ts <= 4; ts++ {
		b.Append(sharedRec(ts, uint64(ts)))
	}
	drain(fast)
	// slow has drained nothing: eviction must not remove anything even
	// though every record starts before the EAT.
	if n := s.EvictBefore(100); n != 0 {
		t.Fatalf("evicted %d records past an undrained reader", n)
	}
	if got := drain(slow); len(got) != 4 {
		t.Fatalf("slow reader saw %d records, want 4", len(got))
	}
	if n := s.EvictBefore(3); n != 2 {
		t.Fatalf("evicted %d records, want 2 (Start < 3)", n)
	}
	// Cursors stay correct across eviction (base offset advances).
	b.Append(sharedRec(5, 5))
	if got := drain(fast); len(got) != 1 || got[0].Start != 5 {
		t.Fatalf("fast reader after eviction: %v", got)
	}
	s.Detach(slow)
	if n := s.EvictBefore(100); n != 3 {
		t.Fatalf("evicted %d after detach, want 3", n)
	}
}

func TestEvictBeforeLimit(t *testing.T) {
	b := New()
	for ts := int64(1); ts <= 5; ts++ {
		r := &Record{Slots: make([]Slot, 1), Start: ts, End: ts}
		r.Slots[0] = Slot{E: &event.Event{Ts: ts}}
		b.Append(r)
	}
	if n := b.EvictBeforeLimit(100, 2); n != 2 {
		t.Fatalf("EvictBeforeLimit evicted %d, want 2", n)
	}
	if b.Len() != 3 || b.At(0).Start != 3 {
		t.Fatalf("buffer after limited eviction: len=%d first=%d", b.Len(), b.At(0).Start)
	}
	if n := b.EvictBeforeLimit(4, 10); n != 1 {
		t.Fatalf("EvictBeforeLimit evicted %d, want 1 (only Start < 4)", n)
	}
}

// TestSharedOutDetachMidStreamUnclampsEviction models a consumer
// quarantined mid-stream: a reader that drained part of the buffer and
// then died must, once detached, stop clamping eviction — the remaining
// readers' cursors stay correct across the freed range. This is the
// buffer-level half of the runtime's quarantine sweep (which calls Detach
// for the dead consumer's reader).
func TestSharedOutDetachMidStreamUnclampsEviction(t *testing.T) {
	b := New()
	s := NewSharedOut(b)
	dead := s.Attach(0)
	live := s.Attach(0)
	// The doomed reader drains the first two records, then "dies": its
	// cursor freezes at 2 while the stream keeps appending.
	b.Append(sharedRec(1, 1))
	b.Append(sharedRec(2, 2))
	drain(dead)
	for ts := int64(3); ts <= 6; ts++ {
		b.Append(sharedRec(ts, uint64(ts)))
	}
	drain(live)
	// Eviction is clamped at the dead reader's frozen cursor.
	if got := s.EvictBefore(100); got > 2 {
		t.Fatalf("evicted %d records past the dead reader's cursor", got)
	}
	s.Detach(dead)
	if got := s.EvictBefore(100); got == 0 {
		t.Fatal("detaching the dead reader did not unclamp eviction")
	}
	if b.Len() != 0 {
		t.Fatalf("buffer holds %d records after full eviction", b.Len())
	}
	// The surviving reader keeps working across the freed range.
	b.Append(sharedRec(7, 7))
	if got := drain(live); len(got) != 1 || got[0].Start != 7 {
		t.Fatalf("live reader after eviction: %+v", got)
	}
}
