// Package buffer implements the node buffers of §4.2: each tree-plan node
// stores its (intermediate) results in a buffer of records sorted by end
// time. A record is a vector of event slots (one per event class of the
// plan), a start time and an end time.
//
// Buffers support the three operations the operator algorithms need:
// EAT-based prefix eviction, consumption cursors (the incremental
// equivalent of "clear the right child buffer", Algorithm 1 line 7), and
// optional hash indexes over an equality attribute for the §5.2.2 hashing
// optimization.
//
// Records are pooled (Pool) under a single-owner discipline: every record
// lives in exactly one buffer and recycles when evicted. SharedOut extends
// that discipline to one-producer/many-reader buffers for cross-query
// subplan sharing: refcounted ShareReaders drain a shared buffer without
// keeping references into it, and eviction is clamped to the slowest
// reader.
package buffer
