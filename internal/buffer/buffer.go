package buffer

import (
	"fmt"
	"strings"

	"repro/internal/event"
)

// Slot holds the contribution of one event class to a composite record:
// either a single event (E), a Kleene closure group (Group), or nothing
// (a class not yet assembled, or a NULL negation slot).
type Slot struct {
	E     *event.Event
	Group []*event.Event
}

// IsSet reports whether the slot carries any event(s).
func (s Slot) IsSet() bool { return s.E != nil || len(s.Group) > 0 }

// First returns the temporally first event of the slot, or nil.
func (s Slot) First() *event.Event {
	if s.E != nil {
		return s.E
	}
	if len(s.Group) > 0 {
		return s.Group[0]
	}
	return nil
}

// Last returns the temporally last event of the slot, or nil.
func (s Slot) Last() *event.Event {
	if s.E != nil {
		return s.E
	}
	if n := len(s.Group); n > 0 {
		return s.Group[n-1]
	}
	return nil
}

// Count returns the number of events in the slot.
func (s Slot) Count() int {
	if s.E != nil {
		return 1
	}
	return len(s.Group)
}

// Record is one buffer entry (§4.2): a vector of event slots, the start
// time of the earliest constituent and the end time of the latest. MaxSeq
// is the largest primitive-event sequence number among the constituents;
// for sequential patterns it identifies the triggering final-class event
// and provides the exact watermark used for duplicate-free plan switching.
// MinSeq is the smallest constituent sequence number: a consumer that
// started observing the stream at sequence s (a query registered
// mid-stream reading a shared subplan) must skip records with MinSeq <= s,
// because they embed events the consumer never saw.
type Record struct {
	Slots  []Slot
	Start  int64
	End    int64
	MaxSeq uint64
	MinSeq uint64
}

// Leaf builds a single-event record for a plan with nclasses classes,
// placing the event in slot class.
func Leaf(e *event.Event, class, nclasses int) *Record {
	r := &Record{Slots: make([]Slot, nclasses), Start: e.Ts, End: e.Ts, MaxSeq: e.Seq, MinSeq: e.Seq}
	r.Slots[class] = Slot{E: e}
	return r
}

// Combine merges two records with disjoint slot sets into a new record.
// The result's interval spans both inputs.
func Combine(l, r *Record) *Record {
	n := len(l.Slots)
	out := &Record{Slots: make([]Slot, n)}
	copy(out.Slots, l.Slots)
	for i, s := range r.Slots {
		if s.IsSet() {
			out.Slots[i] = s
		}
	}
	out.Start = l.Start
	if r.Start < out.Start {
		out.Start = r.Start
	}
	out.End = l.End
	if r.End > out.End {
		out.End = r.End
	}
	out.MaxSeq = l.MaxSeq
	if r.MaxSeq > out.MaxSeq {
		out.MaxSeq = r.MaxSeq
	}
	out.MinSeq = l.MinSeq
	if r.MinSeq < out.MinSeq {
		out.MinSeq = r.MinSeq
	}
	return out
}

// Events returns all constituent events in slot order (closure groups
// expanded), for RETURN-clause processing and debugging.
func (r *Record) Events() []*event.Event {
	var out []*event.Event
	for _, s := range r.Slots {
		if s.E != nil {
			out = append(out, s.E)
		} else {
			out = append(out, s.Group...)
		}
	}
	return out
}

// String implements fmt.Stringer.
func (r *Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%d..%d|", r.Start, r.End)
	for i, s := range r.Slots {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch {
		case s.E != nil:
			fmt.Fprintf(&b, "%d:%s@%d", i, s.E.Schema.Name(), s.E.Ts)
		case len(s.Group) > 0:
			fmt.Fprintf(&b, "%d:group(%d)", i, len(s.Group))
		default:
			fmt.Fprintf(&b, "%d:_", i)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// Buf is an end-time-ordered sequence of records with a consumption cursor.
// Physically it is a slice with a head offset; evicted prefixes are
// compacted away once they dominate the backing array.
type Buf struct {
	recs   []*Record
	head   int // index of first live record in recs
	cursor int // absolute index (head-relative) of first unconsumed record
	// index, if non-nil, maps equality-attribute values to live records.
	index *HashIndex
	// protected buffers never evict unconsumed records: their consumer
	// stalls consumption until matches are confirmable (trailing negation
	// / closure), so unconsumed records are complete pending matches that
	// EAT reasoning does not apply to.
	protected bool
	// liveHW tracks the high-water mark of live record count for the
	// deterministic peak-memory metric.
	liveHW int
	// evicted accumulates the records removed by EAT eviction since
	// creation (observability counter; consumed-prefix drops are routine
	// consumption and are not counted).
	evicted uint64
	// pool, if non-nil, receives records removed from the buffer
	// (eviction, consumed-prefix drops, Clear) for reuse. See Pool for the
	// ownership contract.
	pool *Pool
}

// SetPool attaches a record pool; removed records are recycled into it.
func (b *Buf) SetPool(p *Pool) { b.pool = p }

// Pool returns the attached record pool (nil when pooling is off).
func (b *Buf) Pool() *Pool { return b.pool }

// New returns an empty buffer.
func New() *Buf { return &Buf{} }

// Len returns the number of live (non-evicted) records.
func (b *Buf) Len() int { return len(b.recs) - b.head }

// At returns the i-th live record (0 = oldest live).
func (b *Buf) At(i int) *Record { return b.recs[b.head+i] }

// LiveHighWater returns the maximum number of simultaneously live records
// observed since creation (peak-memory accounting).
func (b *Buf) LiveHighWater() int { return b.liveHW }

// Append adds a record; records must arrive in non-decreasing End order,
// which every operator guarantees by construction (§4.2). Violations are
// programming errors and panic.
func (b *Buf) Append(r *Record) {
	if n := b.Len(); n > 0 && b.At(n-1).End > r.End {
		panic(fmt.Sprintf("buffer: end-time order violated: appending End=%d after End=%d", r.End, b.At(n-1).End))
	}
	b.recs = append(b.recs, r)
	if b.index != nil {
		b.index.add(r)
	}
	if live := b.Len(); live > b.liveHW {
		b.liveHW = live
	}
}

// AppendUnordered inserts a record keeping end-time order, for the rare
// operators (trailing Kleene closure) whose confirmation order does not
// match end-time order. Insertion never lands before the cursor: a record
// older than already-consumed output is placed at the cursor instead, so
// consumption state stays consistent.
func (b *Buf) AppendUnordered(r *Record) {
	n := b.Len()
	if n == 0 || b.At(n-1).End <= r.End {
		b.Append(r)
		return
	}
	pos := b.LowerBoundEnd(r.End + 1) // first record with End > r.End
	if pos < b.cursor {
		pos = b.cursor
	}
	b.recs = append(b.recs, nil)
	copy(b.recs[b.head+pos+1:], b.recs[b.head+pos:])
	b.recs[b.head+pos] = r
	if b.index != nil {
		b.index.add(r)
	}
	if live := b.Len(); live > b.liveHW {
		b.liveHW = live
	}
}

// Cursor returns the index (into live records) of the first unconsumed
// record.
func (b *Buf) Cursor() int { return b.cursor }

// Unconsumed returns the number of live records at or after the cursor.
func (b *Buf) Unconsumed() int { return b.Len() - b.cursor }

// Consume advances the cursor to the end of the buffer: all current records
// have been consumed (the incremental analogue of "clear RBuf").
func (b *Buf) Consume() { b.cursor = b.Len() }

// Advance moves the cursor forward by k records (partial consumption, used
// when only a prefix of the unconsumed region is confirmed).
func (b *Buf) Advance(k int) {
	b.cursor += k
	if b.cursor > b.Len() {
		b.cursor = b.Len()
	}
}

// ResetCursor rewinds the cursor so every live record is unconsumed again
// (plan switching, §5.3).
func (b *Buf) ResetCursor() { b.cursor = 0 }

// Clear drops all records and resets the cursor (used when discarding the
// intermediate state of a replaced plan). With a pool attached, every
// record (including the already-evicted prefix still parked in the backing
// array) is recycled.
func (b *Buf) Clear() {
	if b.pool != nil {
		for i := range b.recs {
			b.pool.put(b.recs[i])
		}
	}
	clear(b.recs)
	b.recs = b.recs[:0]
	b.head = 0
	b.cursor = 0
	if b.index != nil {
		b.index.clear()
	}
}

// Protect marks the buffer so EvictBefore never removes unconsumed
// records (see the protected field).
func (b *Buf) Protect() { b.protected = true }

// EvictBefore removes leading records whose Start is earlier than eat (the
// earliest allowed timestamp, §4.3). Because records are only ever removed
// from the front, this is not exactly the per-record removal in Algorithms
// 1-4 (which may skip a stale record in the middle); stale survivors are
// additionally filtered during scans. Returns the number evicted.
func (b *Buf) EvictBefore(eat int64) int {
	return b.EvictBeforeLimit(eat, b.Len())
}

// EvictBeforeLimit is EvictBefore with an additional cap on how many
// leading records may go: at most limit records are evicted even when more
// start before eat. Multi-reader wrappers (SharedOut) use the cap to keep
// records alive until every reader has drained them.
func (b *Buf) EvictBeforeLimit(eat int64, limit int) int {
	if l := b.Len(); limit > l {
		limit = l
	}
	if b.protected && b.cursor < limit {
		limit = b.cursor
	}
	n := 0
	for n < limit && b.Len() > 0 && b.At(0).Start < eat {
		if b.index != nil {
			b.index.remove(b.At(0))
		}
		if b.pool != nil {
			b.pool.put(b.recs[b.head])
			b.recs[b.head] = nil
		}
		b.head++
		n++
	}
	b.cursor -= n
	if b.cursor < 0 {
		b.cursor = 0
	}
	b.evicted += uint64(n)
	b.maybeCompact()
	return n
}

// Evicted returns the total number of records removed by EAT eviction
// since creation.
func (b *Buf) Evicted() uint64 { return b.evicted }

// DropConsumedPrefix removes records before the cursor (static mode: a
// consumed right buffer really is cleared, keeping memory bounded exactly
// as Algorithm 1 line 7 does).
func (b *Buf) DropConsumedPrefix() {
	for b.cursor > 0 {
		if b.index != nil {
			b.index.remove(b.At(0))
		}
		if b.pool != nil {
			b.pool.put(b.recs[b.head])
			b.recs[b.head] = nil
		}
		b.head++
		b.cursor--
	}
	b.maybeCompact()
}

func (b *Buf) maybeCompact() {
	if b.head > 64 && b.head > len(b.recs)/2 {
		live := copy(b.recs, b.recs[b.head:])
		for i := live; i < len(b.recs); i++ {
			b.recs[i] = nil
		}
		b.recs = b.recs[:live]
		b.head = 0
	}
}

// LowerBoundEnd returns the index of the first live record with End >= t
// (binary search over the end-time-sorted records).
func (b *Buf) LowerBoundEnd(t int64) int {
	live := b.recs[b.head:]
	lo, hi := 0, len(live)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if live[mid].End < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// BuildIndex attaches a hash index keyed by key(record) to the buffer and
// populates it with the live records. Subsequent Appends maintain it.
func (b *Buf) BuildIndex(key func(*Record) event.Value) *HashIndex {
	b.index = &HashIndex{key: key, m: make(map[event.Value][]*Record)}
	for i := 0; i < b.Len(); i++ {
		b.index.add(b.At(i))
	}
	return b.index
}

// Index returns the attached hash index, or nil.
func (b *Buf) Index() *HashIndex { return b.index }

// HashIndex maps an equality attribute value to the live records carrying
// it (§5.2.2). Removal is lazy-safe: entries are removed on eviction.
type HashIndex struct {
	key func(*Record) event.Value
	m   map[event.Value][]*Record
}

// Probe returns the records whose key equals v. The returned slice is
// owned by the index; callers must not mutate it.
func (ix *HashIndex) Probe(v event.Value) []*Record { return ix.m[v] }

func (ix *HashIndex) add(r *Record) {
	k := ix.key(r)
	ix.m[k] = append(ix.m[k], r)
}

func (ix *HashIndex) remove(r *Record) {
	k := ix.key(r)
	rs := ix.m[k]
	for i, x := range rs {
		if x == r {
			rs = append(rs[:i], rs[i+1:]...)
			break
		}
	}
	if len(rs) == 0 {
		delete(ix.m, k)
	} else {
		ix.m[k] = rs
	}
}

func (ix *HashIndex) clear() {
	ix.m = make(map[event.Value][]*Record)
}

// Keys returns the number of distinct keys currently indexed.
func (ix *HashIndex) Keys() int { return len(ix.m) }
