package buffer

// SharedOut extends the single-owner discipline Pool documents to a buffer
// with many readers: a shared subplan's root buffer is owned by exactly one
// producer (whose pool its records return to), while any number of
// consuming queries read it through refcounted ShareReaders. Two rules keep
// pooling sound:
//
//   - Readers never keep references into the shared buffer. Each reader
//     drains new records with Each and must copy what it keeps (Pool.Import
//     into its own pool) before returning — exactly the contract matches
//     and record taps already follow.
//   - The producer only evicts records every attached reader has drained:
//     EvictBefore clamps eviction to the slowest reader's position, so a
//     record is recycled into the producer's pool only once no reader can
//     ever observe it again.
//
// Positions are absolute record indexes (monotone across evictions),
// tracked via a base offset the buffer's head-compaction never disturbs.
// SharedOut is not safe for concurrent use: producer and readers must live
// on one goroutine (the runtime's shard workers provide exactly that).
type SharedOut struct {
	buf     *Buf
	base    uint64 // absolute index of buf's first live record
	readers []*ShareReader
}

// ShareReader is one consumer's cursor into a SharedOut.
type ShareReader struct {
	s      *SharedOut
	next   uint64 // absolute index of the first undrained record
	minSeq uint64 // records with MinSeq <= minSeq are invisible
}

// NewSharedOut wraps a producer-owned buffer for multi-reader consumption.
func NewSharedOut(b *Buf) *SharedOut { return &SharedOut{buf: b} }

// Buf returns the underlying buffer (producer-side access).
func (s *SharedOut) Buf() *Buf { return s.buf }

// Readers returns the number of attached readers.
func (s *SharedOut) Readers() int { return len(s.readers) }

// Attach adds a reader starting at the current end of the buffer: it will
// observe only records appended after this call. minSeq additionally hides
// records embedding any event with sequence number <= minSeq — a query
// registered after stream sequence s passes s, so shared partial matches
// involving events from before its registration stay invisible, exactly as
// if the query had buffered its own prefix from its registration point.
func (s *SharedOut) Attach(minSeq uint64) *ShareReader {
	r := &ShareReader{s: s, next: s.base + uint64(s.buf.Len()), minSeq: minSeq}
	s.readers = append(s.readers, r)
	return r
}

// Detach removes a reader; its position no longer constrains eviction.
func (s *SharedOut) Detach(r *ShareReader) {
	for i, x := range s.readers {
		if x == r {
			s.readers = append(s.readers[:i], s.readers[i+1:]...)
			break
		}
	}
	r.s = nil
}

// Each visits every not-yet-drained record visible to the reader, in buffer
// (end-time) order, and advances the cursor past them. The records remain
// owned by the producer: fn must copy anything it keeps.
func (r *ShareReader) Each(fn func(*Record)) {
	s := r.s
	if s == nil {
		return
	}
	n := s.base + uint64(s.buf.Len())
	for i := r.next; i < n; i++ {
		rec := s.buf.At(int(i - s.base))
		if rec.MinSeq > r.minSeq {
			fn(rec)
		}
	}
	r.next = n
}

// EvictBefore removes leading records whose Start precedes eat, but never
// past the slowest attached reader: records some reader has not drained
// stay live regardless of eat. Evicted records recycle into the buffer's
// pool (single producer ownership). Returns the number evicted.
func (s *SharedOut) EvictBefore(eat int64) int {
	limit := s.buf.Len()
	for _, r := range s.readers {
		if undrained := int(r.next - s.base); undrained < limit {
			limit = undrained
		}
	}
	n := s.buf.EvictBeforeLimit(eat, limit)
	s.base += uint64(n)
	return n
}
