package ref

import (
	"testing"

	"repro/internal/event"
	"repro/internal/query"
)

func stock(seq uint64, ts int64, name string, price float64) *event.Event {
	return event.NewStock(seq, ts, int64(seq), name, price, float64(seq))
}

func find(t *testing.T, src string, events []*event.Event) []string {
	t.Helper()
	q := query.MustParse(src)
	keys, err := Find(q, events)
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

func TestFindSimpleSequence(t *testing.T) {
	events := []*event.Event{
		stock(1, 1, "A", 10), stock(2, 2, "B", 10), stock(3, 3, "A", 10), stock(4, 4, "B", 10),
	}
	keys := find(t, "PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 10", events)
	// (1,2), (1,4), (3,4)
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}
	if keys[0] != "1|2" || keys[1] != "1|4" || keys[2] != "3|4" {
		t.Errorf("keys = %v", keys)
	}
}

func TestFindWindow(t *testing.T) {
	events := []*event.Event{stock(1, 0, "A", 1), stock(2, 11, "B", 1)}
	keys := find(t, "PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 10", events)
	if len(keys) != 0 {
		t.Errorf("out-of-window matched: %v", keys)
	}
}

func TestFindStrictOrder(t *testing.T) {
	events := []*event.Event{stock(1, 5, "A", 1), stock(2, 5, "B", 1)}
	keys := find(t, "PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 10", events)
	if len(keys) != 0 {
		t.Errorf("simultaneous events matched a sequence: %v", keys)
	}
	// conjunction accepts them
	keys = find(t, "PATTERN A&B WHERE A.name='A' AND B.name='B' WITHIN 10", events)
	if len(keys) != 1 {
		t.Errorf("conjunction keys = %v", keys)
	}
}

func TestFindNegation(t *testing.T) {
	events := []*event.Event{
		stock(1, 1, "A", 1), stock(2, 2, "B", 1), stock(3, 3, "C", 1),
		stock(4, 4, "A", 1), stock(5, 5, "C", 1),
	}
	keys := find(t, "PATTERN A;!B;C WHERE A.name='A' AND B.name='B' AND C.name='C' WITHIN 10", events)
	// a1..c3 negated by b2; a1..c5 negated; a4..c5 clean
	if len(keys) != 1 || keys[0] != "4||5" {
		t.Errorf("keys = %v", keys)
	}
}

func TestFindNegationPredicate(t *testing.T) {
	events := []*event.Event{
		stock(1, 1, "A", 1), stock(2, 2, "B", 100), stock(3, 3, "C", 50),
	}
	// only B cheaper than C negates; B@100 does not
	keys := find(t, `PATTERN A;!B;C WHERE A.name='A' AND B.name='B' AND C.name='C'
		AND B.price < C.price WITHIN 10`, events)
	if len(keys) != 1 {
		t.Errorf("keys = %v", keys)
	}
}

func TestFindKleeneCount(t *testing.T) {
	events := []*event.Event{
		stock(1, 1, "A", 1), stock(2, 2, "B", 1), stock(3, 3, "B", 1),
		stock(4, 4, "B", 1), stock(5, 5, "C", 1),
	}
	keys := find(t, "PATTERN A;B^2;C WHERE A.name='A' AND B.name='B' AND C.name='C' WITHIN 10", events)
	// windows (2,3) and (3,4)
	if len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}
	if keys[0] != "1|2,3|5" || keys[1] != "1|3,4|5" {
		t.Errorf("keys = %v", keys)
	}
}

func TestFindKleeneStarEmpty(t *testing.T) {
	events := []*event.Event{stock(1, 1, "A", 1), stock(2, 2, "C", 1)}
	keys := find(t, "PATTERN A;B*;C WHERE A.name='A' AND B.name='B' AND C.name='C' WITHIN 10", events)
	if len(keys) != 1 || keys[0] != "1||2" {
		t.Errorf("star keys = %v", keys)
	}
	keys = find(t, "PATTERN A;B+;C WHERE A.name='A' AND B.name='B' AND C.name='C' WITHIN 10", events)
	if len(keys) != 0 {
		t.Errorf("plus keys = %v", keys)
	}
}

func TestFindAggregate(t *testing.T) {
	events := []*event.Event{
		stock(1, 1, "A", 1), stock(10, 2, "B", 1), stock(20, 3, "B", 1), stock(4, 4, "C", 1),
	}
	// sum(B.volume) = seq sums = 30
	keys := find(t, `PATTERN A;B+;C WHERE A.name='A' AND B.name='B' AND C.name='C'
		AND sum(B.volume) > 25 WITHIN 10`, events)
	if len(keys) != 1 {
		t.Errorf("agg keys = %v", keys)
	}
	keys = find(t, `PATTERN A;B+;C WHERE A.name='A' AND B.name='B' AND C.name='C'
		AND sum(B.volume) > 35 WITHIN 10`, events)
	if len(keys) != 0 {
		t.Errorf("agg keys = %v", keys)
	}
}

func TestFindDisjunction(t *testing.T) {
	events := []*event.Event{stock(1, 1, "A", 1), stock(2, 2, "B", 1), stock(3, 3, "C", 1)}
	keys := find(t, "PATTERN (A|B);C WHERE A.name='A' AND B.name='B' AND C.name='C' WITHIN 10", events)
	if len(keys) != 2 {
		t.Errorf("disj keys = %v", keys)
	}
}

func TestFindTrailingNegation(t *testing.T) {
	events := []*event.Event{
		stock(1, 1, "A", 1), stock(2, 3, "B", 1),
		stock(3, 20, "A", 1), // no B within window after it
	}
	keys := find(t, "PATTERN A;!B WHERE A.name='A' AND B.name='B' WITHIN 10", events)
	if len(keys) != 1 || keys[0] != "3|" {
		t.Errorf("trailing neg keys = %v", keys)
	}
}

func TestFindLeadingNegation(t *testing.T) {
	events := []*event.Event{
		stock(1, 1, "B", 1), stock(2, 3, "A", 1), // negated: B within 10 before
		stock(3, 30, "A", 1), // clean
	}
	keys := find(t, "PATTERN !B;A WHERE A.name='A' AND B.name='B' WITHIN 10", events)
	if len(keys) != 1 || keys[0] != "|3" {
		t.Errorf("leading neg keys = %v", keys)
	}
}

func TestFindErrors(t *testing.T) {
	if _, err := Find(&query.Query{}, nil); err == nil {
		t.Error("unanalyzed query accepted")
	}
}

func TestMatchKey(t *testing.T) {
	m := &Match{Bound: map[int][]*event.Event{
		0: {stock(7, 1, "A", 1)},
		2: {stock(8, 2, "C", 1), stock(9, 3, "C", 1)},
	}}
	if got := m.Key(3); got != "7||8,9" {
		t.Errorf("key = %q", got)
	}
}
