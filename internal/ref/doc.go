// Package ref is a brute-force reference matcher: it enumerates every
// combination of buffered events and checks the query semantics directly,
// with no buffers, plans or incremental state. It is exponential and only
// suitable for tests, where it serves as the oracle for differential
// testing of the tree engine, every plan shape, the adaptive engine and the
// NFA baseline.
package ref
