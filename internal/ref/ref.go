package ref

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/query"
)

// Match is one canonical match: the events bound per class.
type Match struct {
	Bound map[int][]*event.Event
}

// Key renders a canonical identity string: class:seq lists in class order.
func (m *Match) Key(nclasses int) string {
	var sb strings.Builder
	for c := 0; c < nclasses; c++ {
		if c > 0 {
			sb.WriteByte('|')
		}
		evs := m.Bound[c]
		for i, e := range evs {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", e.Seq)
		}
	}
	return sb.String()
}

// Find returns the canonical keys of every match of q in events (sorted).
// Negated classes are excluded from keys (they are not part of the output).
func Find(q *query.Query, events []*event.Event) ([]string, error) {
	in := q.Info
	if in == nil {
		return nil, fmt.Errorf("ref: query not analyzed")
	}
	m, err := newMatcher(q)
	if err != nil {
		return nil, err
	}
	// per-class candidate events after single-class filters
	perClass := make([][]*event.Event, in.NumClasses())
	for _, e := range events {
		for c := range in.Classes {
			if m.classFilter[c] == nil || m.classFilter[c](expr.EventEnv{Class: c, E: e}) {
				perClass[c] = append(perClass[c], e)
			}
		}
	}
	var keys []string
	m.enumerate(perClass, 0, &matchState{bound: map[int][]*event.Event{}}, func(ms *matchState) {
		m.matchesOf(perClass, ms, func(full *matchState) {
			mm := &Match{Bound: map[int][]*event.Event{}}
			for c, evs := range full.bound {
				if !in.Classes[c].Negated {
					mm.Bound[c] = evs
				}
			}
			keys = append(keys, mm.Key(in.NumClasses()))
		})
	})
	sort.Strings(keys)
	return keys, nil
}

type matcher struct {
	q           *query.Query
	in          *query.Info
	window      int64
	classFilter []expr.Predicate
	multiPreds  []compiledPred
	negPreds    map[int][]compiledPred // by term index
	aggPreds    []compiledPred
	perEvent    map[int][]compiledPred // Kleene per-event preds by term
	disjClasses map[int]bool
}

type compiledPred struct {
	p       expr.Predicate
	classes []int
}

func newMatcher(q *query.Query) (*matcher, error) {
	in := q.Info
	m := &matcher{q: q, in: in, window: q.Within,
		classFilter: make([]expr.Predicate, in.NumClasses()),
		negPreds:    map[int][]compiledPred{},
		perEvent:    map[int][]compiledPred{},
		disjClasses: map[int]bool{},
	}
	for _, t := range in.Terms {
		if t.Kind == query.TermDisj {
			for _, c := range t.Classes {
				m.disjClasses[c] = true
			}
		}
	}
	negTermOf := func(cls int) int {
		for ti, t := range in.Terms {
			if t.Kind == query.TermNeg {
				for _, c := range t.Classes {
					if c == cls {
						return ti
					}
				}
			}
		}
		return -1
	}
	kleeneTermOf := func(cls int) int {
		for ti, t := range in.Terms {
			if t.Kind == query.TermKleene && t.Classes[0] == cls {
				return ti
			}
		}
		return -1
	}
	for _, pi := range in.Preds {
		p, err := expr.CompilePred(pi.Cmp)
		if err != nil {
			return nil, err
		}
		cp := compiledPred{p: p, classes: pi.Classes}
		switch {
		case pi.Single() && !pi.HasAgg:
			c := pi.Classes[0]
			prev := m.classFilter[c]
			if prev == nil {
				m.classFilter[c] = p
			} else {
				pp := p
				m.classFilter[c] = func(env expr.Env) bool { return prev(env) && pp(env) }
			}
		case pi.HasAgg:
			m.aggPreds = append(m.aggPreds, cp)
		default:
			// negation predicate?
			negTerm := -1
			for _, c := range pi.Classes {
				if t := negTermOf(c); t >= 0 {
					negTerm = t
				}
			}
			if negTerm >= 0 {
				m.negPreds[negTerm] = append(m.negPreds[negTerm], cp)
				continue
			}
			// Kleene per-event predicate?
			kTerm := -1
			for _, c := range pi.Classes {
				if t := kleeneTermOf(c); t >= 0 {
					kTerm = t
				}
			}
			if kTerm >= 0 {
				m.perEvent[kTerm] = append(m.perEvent[kTerm], cp)
				continue
			}
			m.multiPreds = append(m.multiPreds, cp)
		}
	}
	return m, nil
}

// matchState carries a partial assignment during enumeration.
type matchState struct {
	bound map[int][]*event.Event
}

func (ms *matchState) clone() *matchState {
	n := &matchState{bound: make(map[int][]*event.Event, len(ms.bound))}
	for k, v := range ms.bound {
		n.bound[k] = v
	}
	return n
}

type refEnv struct {
	bound map[int][]*event.Event
}

// Event implements expr.Env.
func (r refEnv) Event(class int) *event.Event {
	if evs := r.bound[class]; len(evs) == 1 {
		return evs[0]
	}
	return nil
}

// Group implements expr.Env.
func (r refEnv) Group(class int) []*event.Event { return r.bound[class] }

// prevEnd returns the latest timestamp bound by terms before ti (skipping
// negation terms), or false when none.
func (m *matcher) prevEnd(ms *matchState, ti int) (int64, bool) {
	var out int64
	found := false
	for i := 0; i < ti; i++ {
		t := m.in.Terms[i]
		if t.Kind == query.TermNeg {
			continue
		}
		for _, c := range t.Classes {
			for _, e := range ms.bound[c] {
				if !found || e.Ts > out {
					out = e.Ts
				}
				found = true
			}
		}
	}
	return out, found
}

// enumerate walks terms recursively, binding events.
func (m *matcher) enumerate(perClass [][]*event.Event, ti int, ms *matchState, yield func(*matchState)) {
	if ti == len(m.in.Terms) {
		yield(ms)
		return
	}
	t := m.in.Terms[ti]
	pe, hasPrev := m.prevEnd(ms, ti)
	after := func(e *event.Event) bool { return !hasPrev || e.Ts > pe }

	switch t.Kind {
	case query.TermNeg:
		// handled in accept()
		m.enumerate(perClass, ti+1, ms, yield)

	case query.TermClass:
		c := t.Classes[0]
		for _, e := range perClass[c] {
			if !after(e) {
				continue
			}
			next := ms.clone()
			next.bound[c] = []*event.Event{e}
			m.enumerate(perClass, ti+1, next, yield)
		}

	case query.TermDisj:
		for _, c := range t.Classes {
			for _, e := range perClass[c] {
				if !after(e) {
					continue
				}
				next := ms.clone()
				next.bound[c] = []*event.Event{e}
				m.enumerate(perClass, ti+1, next, yield)
			}
		}

	case query.TermConj:
		// bind one event per class, all after the previous term
		var rec func(i int, cur *matchState)
		rec = func(i int, cur *matchState) {
			if i == len(t.Classes) {
				m.enumerate(perClass, ti+1, cur, yield)
				return
			}
			c := t.Classes[i]
			for _, e := range perClass[c] {
				if !after(e) {
					continue
				}
				next := cur.clone()
				next.bound[c] = []*event.Event{e}
				rec(i+1, next)
			}
		}
		rec(0, ms)

	case query.TermKleene:
		// defer grouping until the next term binds (group range depends on
		// it); enumerate the rest first, then fill groups in accept().
		m.enumerate(perClass, ti+1, ms, yield)
	}
}

// matchesOf yields every fully-expanded match (with Kleene groups bound).
func (m *matcher) matchesOf(perClass [][]*event.Event, ms *matchState, yield func(*matchState)) {
	m.expandKleene(perClass, ms, 0, func(full *matchState) {
		if m.checkFinal(perClass, full) {
			yield(full)
		}
	})
}

// expandKleene binds closure groups for every Kleene term.
func (m *matcher) expandKleene(perClass [][]*event.Event, ms *matchState, ti int, yield func(*matchState)) {
	if ti == len(m.in.Terms) {
		yield(ms)
		return
	}
	t := m.in.Terms[ti]
	if t.Kind != query.TermKleene {
		m.expandKleene(perClass, ms, ti+1, yield)
		return
	}
	c := t.Classes[0]
	lo, hi, ok := m.kleeneRange(ms, ti)
	if !ok {
		return
	}
	var eligible []*event.Event
	for _, e := range perClass[c] {
		if e.Ts <= lo || e.Ts >= hi {
			continue
		}
		if !m.perEventOK(ms, ti, c, e) {
			continue
		}
		eligible = append(eligible, e)
	}
	emit := func(group []*event.Event) {
		next := ms.clone()
		if len(group) > 0 {
			next.bound[c] = group
		}
		m.expandKleene(perClass, next, ti+1, yield)
	}
	switch t.Closure {
	case query.ClosureCount:
		for i := 0; i+t.Count <= len(eligible); i++ {
			emit(eligible[i : i+t.Count])
		}
	case query.ClosurePlus:
		if len(eligible) >= 1 {
			emit(eligible)
		}
	default:
		emit(eligible)
	}
}

// kleeneRange computes the exclusive (lo, hi) timestamp bounds for closure
// term ti given the bound anchors.
func (m *matcher) kleeneRange(ms *matchState, ti int) (lo, hi int64, ok bool) {
	pe, hasPrev := m.prevEnd(ms, ti)
	// next non-neg bound term start
	var ns int64
	hasNext := false
	for i := ti + 1; i < len(m.in.Terms); i++ {
		t := m.in.Terms[i]
		if t.Kind == query.TermNeg {
			continue
		}
		for _, c := range t.Classes {
			for _, e := range ms.bound[c] {
				if !hasNext || e.Ts < ns {
					ns = e.Ts
				}
				hasNext = true
			}
		}
		if hasNext {
			break
		}
	}
	switch {
	case hasPrev && hasNext:
		return pe, ns, true
	case !hasPrev && hasNext:
		return ns - m.window - 1, ns, true // leading closure: window-bounded
	case hasPrev && !hasNext:
		return pe, pe + 1 + m.window, true // trailing; span check tightens later
	default:
		return 0, 0, false
	}
}

// perEventOK evaluates the Kleene per-event predicates for one candidate
// middle event against the bound anchors.
func (m *matcher) perEventOK(ms *matchState, ti, cls int, e *event.Event) bool {
	preds := m.perEvent[ti]
	if len(preds) == 0 {
		return true
	}
	env := refEnv{bound: map[int][]*event.Event{cls: {e}}}
	for k, v := range ms.bound {
		if k != cls {
			env.bound[k] = v
		}
	}
	for _, cp := range preds {
		if !cp.p(env) {
			return false
		}
	}
	return true
}

// checkFinal applies window, value predicates, aggregates and negation.
func (m *matcher) checkFinal(perClass [][]*event.Event, ms *matchState) bool {
	in := m.in
	// every non-negated class of non-optional terms must be bound
	for _, t := range in.Terms {
		switch t.Kind {
		case query.TermNeg:
			continue
		case query.TermDisj:
			any := false
			for _, c := range t.Classes {
				if len(ms.bound[c]) > 0 {
					any = true
				}
			}
			if !any {
				return false
			}
		case query.TermKleene:
			if t.Closure == query.ClosurePlus && len(ms.bound[t.Classes[0]]) == 0 {
				return false
			}
			if t.Closure == query.ClosureCount && len(ms.bound[t.Classes[0]]) != t.Count {
				return false
			}
		default:
			for _, c := range t.Classes {
				if len(ms.bound[c]) == 0 {
					return false
				}
			}
		}
	}
	// window over bound, non-negated events
	var start, end int64
	first := true
	for c, evs := range ms.bound {
		if in.Classes[c].Negated {
			continue
		}
		for _, e := range evs {
			if first || e.Ts < start {
				start = e.Ts
			}
			if first || e.Ts > end {
				end = e.Ts
			}
			first = false
		}
	}
	if first || end-start > m.window {
		return false
	}
	env := refEnv{bound: ms.bound}
	// multi-class predicates (disjunction-tolerant: unbound alternatives
	// pass)
	for _, cp := range m.multiPreds {
		skip := false
		for _, c := range cp.classes {
			if m.disjClasses[c] && len(ms.bound[c]) == 0 {
				skip = true
			}
		}
		if skip {
			continue
		}
		if !cp.p(env) {
			return false
		}
	}
	for _, cp := range m.aggPreds {
		if !cp.p(env) {
			return false
		}
	}
	// negation terms
	for ti, t := range in.Terms {
		if t.Kind != query.TermNeg {
			continue
		}
		lo, hi := m.negRange(ms, ti, start, end)
		for _, nc := range t.Classes {
			for _, b := range perClass[nc] {
				if b.Ts <= lo || b.Ts >= hi {
					continue
				}
				if m.negOK(ms, ti, nc, b) {
					return false // a negating event interleaves
				}
			}
		}
	}
	return true
}

// negRange computes the exclusive (lo, hi) bounds of the forbidden range
// for negation term ti.
func (m *matcher) negRange(ms *matchState, ti int, start, end int64) (int64, int64) {
	lo := end - m.window - 1 // leading: b.ts >= end - window negates
	if pe, ok := m.prevEnd(ms, ti); ok {
		lo = pe
	}
	hi := start + m.window + 1 // trailing: b.ts <= start + window negates
	for i := ti + 1; i < len(m.in.Terms); i++ {
		t := m.in.Terms[i]
		if t.Kind == query.TermNeg {
			continue
		}
		found := false
		for _, c := range t.Classes {
			for _, e := range ms.bound[c] {
				if e.Ts < hi {
					hi = e.Ts
				}
				found = true
			}
		}
		if found {
			break
		}
	}
	return lo, hi
}

// negOK evaluates the negation predicates for candidate b.
func (m *matcher) negOK(ms *matchState, ti, negClass int, b *event.Event) bool {
	preds := m.negPreds[ti]
	if len(preds) == 0 {
		return true
	}
	env := refEnv{bound: map[int][]*event.Event{negClass: {b}}}
	for k, v := range ms.bound {
		if k != negClass {
			env.bound[k] = v
		}
	}
	for _, cp := range preds {
		if !cp.p(env) {
			return false
		}
	}
	return true
}
