// Package faultinject is a deterministic fault-injection harness for the
// runtime's chaos tests. An Injector holds a set of rules, each naming an
// injection point (a Site plus an optional shard and subscriber id) and an
// action to take on the Nth hit: panic with a recognizable value, sleep, or
// stall until released. The runtime's shard workers consult the injector —
// when one is configured — at every dispatch boundary, so tests can make a
// specific engine group panic at an exact batch, slow a producer down, or
// freeze a match consumer, all without build tags and with bit-identical
// repeatability (hit counting is the only state, and the worker dispatch
// order is deterministic for a fixed ingest sequence).
//
// Rules with Nth == 0 fire on every hit; Nth == n fires exactly once, on
// the nth matching hit. DeriveNth maps a test seed to a hit number so
// seeded chaos suites can vary the fault position without hand-picking
// constants. Injection is disabled in production simply by leaving the
// runtime's Injector nil: the hot path pays one nil check per dispatch.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Site names a class of injection points in the runtime's dispatch path.
type Site string

// The runtime's injection sites. IDs are the worker's subscriber ids:
// engine-group ids for engine sites, (negative) producer ids for producer
// sites, and query ids for the emit site.
const (
	// SiteEngineBatch fires before an engine group processes one delivered
	// shard batch (router or naive fan-out path).
	SiteEngineBatch Site = "engine.batch"
	// SiteEngineSync fires before an engine group's batch-boundary round
	// (Sync/SyncAt) or final flush.
	SiteEngineSync Site = "engine.sync"
	// SiteProducerBatch fires before a shared-subplan producer processes
	// one delivered shard batch or assembles.
	SiteProducerBatch Site = "producer.batch"
	// SiteEmit fires before a query's OnMatch callback runs on the merger.
	SiteEmit Site = "emit"
	// SiteWALAppend fires inside the WAL writer before an event-batch record
	// is appended; an injected panic models a crash with a torn tail. The id
	// is the number of batch records appended so far (1-based).
	SiteWALAppend Site = "wal.append"
	// SiteWALFsync fires before the WAL writer fsyncs a segment; the id is
	// the number of fsyncs issued so far (1-based).
	SiteWALFsync Site = "wal.fsync"
	// SiteCheckpointWrite fires before a checkpoint record is written; the
	// id is the number of checkpoints written so far (1-based).
	SiteCheckpointWrite Site = "checkpoint.write"
)

// Action is what a rule does when it fires.
type Action int

const (
	// ActPanic panics with an *Injected value (recovered and recorded as a
	// query fault by the runtime's containment layer).
	ActPanic Action = iota
	// ActSleep sleeps for Rule.Sleep, modeling a slow engine or consumer.
	ActSleep
	// ActStall blocks until Injector.Release is called, modeling a stalled
	// engine or consumer reader.
	ActStall
)

// AnyShard matches every shard in a rule.
const AnyShard = -1

// Rule is one armed injection: fire Action on the Nth hit of (Site, Shard,
// ID). Zero fields widen the match: ID == 0 matches any subscriber,
// Shard == AnyShard matches any shard, Nth == 0 fires on every hit.
type Rule struct {
	Site  Site
	Shard int
	ID    int64
	Nth   uint64
	Act   Action
	Sleep time.Duration

	// hits counts matching arrivals, accessed atomically on the armed copy
	// (a plain word so Rule literals stay copyable by Arm).
	hits uint64
}

// Injected is the panic value of ActPanic: the containment layer can
// recognize injected faults (and tests can assert on the captured site).
type Injected struct {
	Site  Site
	Shard int
	ID    int64
	Hit   uint64
}

// Error implements error so recovered injected panics format cleanly.
func (f *Injected) Error() string {
	return fmt.Sprintf("faultinject: %s shard=%d id=%d hit=%d", f.Site, f.Shard, f.ID, f.Hit)
}

// Injector is a set of armed rules consulted by the runtime's workers.
// Hit is called concurrently from every shard worker and the merger; Arm
// publishes rules copy-on-write, so rules may be armed while the runtime
// is already live (e.g. after registration has revealed a group id).
type Injector struct {
	rules atomic.Pointer[[]*Rule]

	armMu    sync.Mutex
	stall    chan struct{}
	released bool

	fired atomic.Uint64
}

// New returns an empty injector.
func New() *Injector {
	return &Injector{stall: make(chan struct{})}
}

// Arm adds a rule; safe while the injector is live (the rule set is
// republished copy-on-write). Returns the injector for chaining.
func (in *Injector) Arm(r Rule) *Injector {
	rc := r
	in.armMu.Lock()
	var rules []*Rule
	if p := in.rules.Load(); p != nil {
		rules = append(rules, *p...)
	}
	rules = append(rules, &rc)
	in.rules.Store(&rules)
	in.armMu.Unlock()
	return in
}

// Fired reports how many rules have fired (across all rules and hits).
func (in *Injector) Fired() uint64 { return in.fired.Load() }

// Release unblocks every past and future ActStall firing. Idempotent.
func (in *Injector) Release() {
	in.armMu.Lock()
	defer in.armMu.Unlock()
	if !in.released {
		in.released = true
		close(in.stall)
	}
}

// Hit reports one arrival at an injection point. It panics, sleeps or
// stalls when an armed rule matches and is due; otherwise it returns
// immediately. Safe for concurrent use.
func (in *Injector) Hit(site Site, shard int, id int64) {
	if in == nil {
		return
	}
	p := in.rules.Load()
	if p == nil {
		return
	}
	for _, r := range *p {
		if r.Site != site {
			continue
		}
		if r.Shard != AnyShard && r.Shard != shard {
			continue
		}
		if r.ID != 0 && r.ID != id {
			continue
		}
		n := atomic.AddUint64(&r.hits, 1)
		if r.Nth != 0 && n != r.Nth {
			continue
		}
		in.fired.Add(1)
		switch r.Act {
		case ActPanic:
			panic(&Injected{Site: site, Shard: shard, ID: id, Hit: n})
		case ActSleep:
			time.Sleep(r.Sleep)
		case ActStall:
			<-in.stall
		}
	}
}

// DeriveNth maps a chaos seed to a deterministic hit number in [1, max],
// so seeded suites vary fault positions without hand-picked constants.
func DeriveNth(seed int64, max uint64) uint64 {
	if max == 0 {
		return 1
	}
	// SplitMix64 finalizer: a good avalanche keeps consecutive seeds from
	// landing on consecutive hits.
	x := uint64(seed) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x%max + 1
}
