package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorHitIsNoop(t *testing.T) {
	var in *Injector
	in.Hit(SiteEngineBatch, 0, 1) // must not panic
}

func TestPanicRuleFiresOnNthMatchingHit(t *testing.T) {
	in := New().Arm(Rule{Site: SiteEngineBatch, Shard: AnyShard, ID: 7, Nth: 3, Act: ActPanic})

	hit := func(site Site, shard int, id int64) (panicked *Injected) {
		defer func() {
			if r := recover(); r != nil {
				panicked = r.(*Injected)
			}
		}()
		in.Hit(site, shard, id)
		return nil
	}

	// Non-matching site and id must not advance the hit counter.
	if p := hit(SiteEngineSync, 0, 7); p != nil {
		t.Fatalf("wrong site fired: %v", p)
	}
	if p := hit(SiteEngineBatch, 0, 8); p != nil {
		t.Fatalf("wrong id fired: %v", p)
	}
	if p := hit(SiteEngineBatch, 0, 7); p != nil {
		t.Fatal("fired on hit 1, want hit 3")
	}
	if p := hit(SiteEngineBatch, 1, 7); p != nil {
		t.Fatal("fired on hit 2, want hit 3")
	}
	p := hit(SiteEngineBatch, 2, 7)
	if p == nil {
		t.Fatal("did not fire on hit 3")
	}
	if p.Site != SiteEngineBatch || p.Shard != 2 || p.ID != 7 || p.Hit != 3 {
		t.Fatalf("injected payload = %+v", p)
	}
	if !strings.Contains(p.Error(), "engine.batch") {
		t.Fatalf("Error() = %q", p.Error())
	}
	// Nth != 0 fires exactly once.
	if p := hit(SiteEngineBatch, 0, 7); p != nil {
		t.Fatal("fired again after its once-only hit")
	}
	if got := in.Fired(); got != 1 {
		t.Fatalf("Fired() = %d, want 1", got)
	}
}

func TestShardFilterAndEveryHit(t *testing.T) {
	in := New().Arm(Rule{Site: SiteEmit, Shard: 2, ID: 0, Nth: 0, Act: ActSleep})
	in.Hit(SiteEmit, 0, 1)
	in.Hit(SiteEmit, 2, 1)
	in.Hit(SiteEmit, 2, 99) // ID 0 matches any subscriber
	in.Hit(SiteEmit, 3, 1)
	if got := in.Fired(); got != 2 {
		t.Fatalf("Fired() = %d, want 2 (shard-2 hits only, every hit)", got)
	}
}

func TestInjectedIsError(t *testing.T) {
	var err error = &Injected{Site: SiteProducerBatch, Shard: 1, ID: -3, Hit: 2}
	var inj *Injected
	if !errors.As(err, &inj) || inj.ID != -3 {
		t.Fatalf("errors.As failed on %v", err)
	}
}

func TestStallBlocksUntilRelease(t *testing.T) {
	in := New().Arm(Rule{Site: SiteEngineBatch, Shard: AnyShard, Nth: 0, Act: ActStall})
	var wg sync.WaitGroup
	entered := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(entered)
		in.Hit(SiteEngineBatch, 0, 1)
	}()
	<-entered
	select {
	case <-wait(&wg):
		t.Fatal("stalled hit returned before Release")
	case <-time.After(20 * time.Millisecond):
	}
	in.Release()
	in.Release() // idempotent
	select {
	case <-wait(&wg):
	case <-time.After(2 * time.Second):
		t.Fatal("stalled hit did not return after Release")
	}
	// Post-release stalls pass straight through.
	done := make(chan struct{})
	go func() { in.Hit(SiteEngineBatch, 1, 1); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("post-release stall blocked")
	}
}

func wait(wg *sync.WaitGroup) <-chan struct{} {
	ch := make(chan struct{})
	go func() { wg.Wait(); close(ch) }()
	return ch
}

func TestDeriveNth(t *testing.T) {
	if got := DeriveNth(42, 0); got != 1 {
		t.Fatalf("DeriveNth(_, 0) = %d, want 1", got)
	}
	seen := map[uint64]bool{}
	for seed := int64(0); seed < 200; seed++ {
		n := DeriveNth(seed, 16)
		if n < 1 || n > 16 {
			t.Fatalf("DeriveNth(%d, 16) = %d out of [1,16]", seed, n)
		}
		if n != DeriveNth(seed, 16) {
			t.Fatalf("DeriveNth(%d, 16) not deterministic", seed)
		}
		seen[n] = true
	}
	// The avalanche should cover most of the range over 200 seeds.
	if len(seen) < 12 {
		t.Fatalf("DeriveNth covered only %d/16 values over 200 seeds", len(seen))
	}
}
