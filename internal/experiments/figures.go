package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/event"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/workload"
)

// --- shared queries -------------------------------------------------------

// query4 is the paper's Query 4: IBM;Sun;Oracle with one predicate between
// IBM and Sun, WITHIN 200 units.
func query4() *query.Query {
	return query.MustParse(`
		PATTERN IBM; Sun; Oracle
		WHERE IBM.name = 'IBM' AND Sun.name = 'Sun' AND Oracle.name = 'Oracle'
		AND IBM.price > Sun.price
		WITHIN 200 units`)
}

// query5 is Query 5: the same sequence with no multi-class predicate.
func query5() *query.Query {
	return query.MustParse(`
		PATTERN IBM; Sun; Oracle
		WHERE IBM.name = 'IBM' AND Sun.name = 'Sun' AND Oracle.name = 'Oracle'
		WITHIN 200 units`)
}

// query6 is Query 6: four classes, two predicates, WITHIN 100 units.
func query6() *query.Query {
	return query.MustParse(`
		PATTERN IBM; Sun; Oracle; Google
		WHERE IBM.name = 'IBM' AND Sun.name = 'Sun'
		AND Oracle.name = 'Oracle' AND Google.name = 'Google'
		AND Oracle.price > Sun.price
		AND Oracle.price > Google.price
		WITHIN 100 units`)
}

// query7 is Query 7: IBM; !Sun; Oracle WITHIN 200 units.
func query7() *query.Query {
	return query.MustParse(`
		PATTERN IBM; !Sun; Oracle
		WHERE IBM.name = 'IBM' AND Sun.name = 'Sun' AND Oracle.name = 'Oracle'
		WITHIN 200 units`)
}

// query8 is Query 8: Publication;Project;Course with the same IP, WITHIN
// 10 hours.
func query8() *query.Query {
	return query.MustParse(`
		PATTERN P; J; C
		WHERE P.desc = 'publication' AND J.desc = 'project' AND C.desc = 'courses'
		AND P.ip = J.ip = C.ip
		WITHIN 10 hours`)
}

// namedShape pairs a plan name with its shape.
type namedShape struct {
	name  string
	shape *plan.Shape
}

// query6Shapes are the four tree plans of §6.2 over Query 6's four units.
func query6Shapes() []namedShape {
	return []namedShape{
		{"left-deep", mustShape("(((0 1) 2) 3)")},
		{"right-deep", mustShape("(0 (1 (2 3)))")},
		{"bushy", mustShape("((0 1) (2 3))")},
		{"inner", mustShape("(0 ((1 2) 3))")},
	}
}

func mustShape(s string) *plan.Shape {
	sh, err := plan.ParseShape(s)
	if err != nil {
		panic(err)
	}
	return sh
}

// statsFor builds cost-model statistics for a stock workload: per-class
// rates are the weight fractions (one event per tick; the class's leaf
// filter passes exactly its symbol) and the given multi-class predicate
// selectivities, keyed by predicate text.
func statsFor(q *query.Query, window int64, names []string, weights []float64, predSels map[string]float64) *cost.Stats {
	st := cost.UniformStats(q.Info, window, 0)
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, ci := range q.Info.Classes {
		for j, n := range names {
			if n == ci.Alias {
				st.Rate[i] = weights[j] / total
			}
		}
		st.SingleSel[i] = 1
	}
	for i, pi := range q.Info.Preds {
		if pi.Single() {
			continue
		}
		if s, ok := predSels[pi.Cmp.String()]; ok {
			st.PredSel[i] = s
		}
	}
	return st
}

// --- Figure 8 / 9: predicate selectivity sweep ----------------------------

var fig8Sels = []struct {
	label string
	sel   float64
}{
	{"1", 1}, {"1/2", 0.5}, {"1/4", 0.25}, {"1/8", 0.125},
	{"1/16", 1.0 / 16}, {"1/32", 1.0 / 32},
}

// Fig8 measures Query 4 throughput for the left-deep plan, the right-deep
// plan and the NFA while the IBM-Sun predicate selectivity drops from 1 to
// 1/32 (rates 1:1:1).
func Fig8(scale Scale) (*Result, error) {
	q := query4()
	res := &Result{ID: "fig8", Title: "Query 4 throughput vs predicate selectivity (left-deep / right-deep / NFA)", ShowThroughput: true}
	n := scale.n(30_000)
	for _, pt := range fig8Sels {
		events := workload.GenStocks(workload.StockSpec{
			N: n, Seed: 8, Names: []string{"IBM", "Sun", "Oracle"},
			Weights:    []float64{1, 1, 1},
			FixedPrice: map[string]float64{"Sun": workload.SelectivityPrice(pt.sel)},
		})
		s, err := treeAndNFASeries(q, "sel "+pt.label, events)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, *s)
	}
	res.Notes = append(res.Notes, "expect: left-deep >= right-deep ~ NFA; gap grows as selectivity drops (paper: ~5x at 1/32)")
	return res, nil
}

// treeAndNFASeries runs left-deep, right-deep and NFA over one workload.
func treeAndNFASeries(q *query.Query, label string, events []*event.Event) (*Series, error) {
	s := &Series{Label: label}
	for _, def := range []struct {
		name string
		str  core.Strategy
	}{{"left-deep", core.StrategyLeftDeep}, {"right-deep", core.StrategyRightDeep}} {
		run, err := runEngine(q, core.Config{Strategy: def.str, BatchSize: 256}, events)
		if err != nil {
			return nil, err
		}
		run.Plan = def.name
		s.Runs = append(s.Runs, run)
	}
	nrun, err := runNFA(q, events)
	if err != nil {
		return nil, err
	}
	s.Runs = append(s.Runs, nrun)
	return s, nil
}

// Fig9 reports 1/estimated-cost of the two tree plans over the Figure 8
// sweep.
func Fig9(Scale) (*Result, error) {
	q := query4()
	res := &Result{ID: "fig9", Title: "Query 4 1/estimated-cost vs selectivity (cost model)", ShowInvCost: true}
	names := []string{"IBM", "Sun", "Oracle"}
	weights := []float64{1, 1, 1}
	for _, pt := range fig8Sels {
		st := statsFor(q, q.Within, names, weights,
			map[string]float64{"IBM.price > Sun.price": pt.sel})
		s := Series{Label: "sel " + pt.label}
		for _, sh := range []namedShape{
			{"left-deep", plan.LeftDeep(3)}, {"right-deep", plan.RightDeep(3)},
		} {
			est, err := optimizer.EstimateShape(q, st, false, plan.NegAuto, sh.shape)
			if err != nil {
				return nil, err
			}
			s.Runs = append(s.Runs, Run{Plan: sh.name, InvCost: 1 / est.Cost})
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes, "expect: same ordering and widening gap as the measured Figure 8")
	return res, nil
}

// --- Figure 10 / 11: relative event rate sweep ----------------------------

var fig10Rates = []struct {
	label   string
	weights []float64
}{
	{"16:1:1", []float64{16, 1, 1}},
	{"4:1:1", []float64{4, 1, 1}},
	{"1:1:1", []float64{1, 1, 1}},
	{"1:4:4", []float64{1, 4, 4}},
	{"1:16:16", []float64{1, 16, 16}},
}

// Fig10 measures Query 5 throughput while the relative IBM rate sweeps
// from high to low.
func Fig10(scale Scale) (*Result, error) {
	q := query5()
	res := &Result{ID: "fig10", Title: "Query 5 throughput vs relative event rate IBM:Sun:Oracle", ShowThroughput: true}
	n := scale.n(30_000)
	for _, pt := range fig10Rates {
		events := workload.GenStocks(workload.StockSpec{
			N: n, Seed: 10, Names: []string{"IBM", "Sun", "Oracle"}, Weights: pt.weights,
		})
		s, err := treeAndNFASeries(q, pt.label, events)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, *s)
	}
	res.Notes = append(res.Notes,
		"expect: right-deep best at high IBM rate, left-deep best at low IBM rate, crossover at 1:1:1",
		"expect: larger gaps on the low-IBM side (k^(N-1) skew, §6.1.2)")
	return res, nil
}

// Fig11 reports 1/estimated-cost over the same rate sweep.
func Fig11(Scale) (*Result, error) {
	q := query5()
	res := &Result{ID: "fig11", Title: "Query 5 1/estimated-cost vs relative event rate (cost model)", ShowInvCost: true}
	names := []string{"IBM", "Sun", "Oracle"}
	for _, pt := range fig10Rates {
		st := statsFor(q, q.Within, names, pt.weights, nil)
		s := Series{Label: pt.label}
		for _, sh := range []namedShape{
			{"left-deep", plan.LeftDeep(3)}, {"right-deep", plan.RightDeep(3)},
		} {
			est, err := optimizer.EstimateShape(q, st, false, plan.NegAuto, sh.shape)
			if err != nil {
				return nil, err
			}
			s.Runs = append(s.Runs, Run{Plan: sh.name, InvCost: 1 / est.Cost})
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes, "expect: same crossover as the measured Figure 10")
	return res, nil
}

// --- Figure 12 / 13 / Table 3: Query 6 regimes -----------------------------

// fig12Regimes are the three parameter regimes of §6.2.
var fig12Regimes = []struct {
	label   string
	weights []float64
	sun     float64 // selectivity of Oracle.price > Sun.price
	google  float64 // selectivity of Oracle.price > Google.price
}{
	{"rate 1:100:100:100", []float64{1, 100, 100, 100}, 1, 1},
	{"sel1 = 1/50", []float64{1, 1, 1, 1}, 1.0 / 50, 1},
	{"sel2 = 1/50", []float64{1, 1, 1, 1}, 1, 1.0 / 50},
}

func query6Events(n int, regime int) []*event.Event {
	r := fig12Regimes[regime]
	return workload.GenStocks(workload.StockSpec{
		N: n, Seed: int64(12 + regime), Names: []string{"IBM", "Sun", "Oracle", "Google"},
		Weights: r.weights,
		FixedPrice: map[string]float64{
			"Sun":    workload.SelectivityPrice(r.sun),
			"Google": workload.SelectivityPrice(r.google),
		},
	})
}

// Fig12 measures Query 6 throughput for four tree plans and the NFA across
// the three regimes.
func Fig12(scale Scale) (*Result, error) {
	q := query6()
	res := &Result{ID: "fig12", Title: "Query 6 throughput across regimes (left/right/bushy/inner/NFA)", ShowThroughput: true}
	n := scale.n(40_000)
	for ri, regime := range fig12Regimes {
		events := query6Events(n, ri)
		s := Series{Label: regime.label}
		for _, sh := range query6Shapes() {
			run, err := runEngine(q, core.Config{Strategy: core.StrategyFixed, Shape: sh.shape, BatchSize: 256}, events)
			if err != nil {
				return nil, err
			}
			run.Plan = sh.name
			s.Runs = append(s.Runs, run)
		}
		nrun, err := runNFA(q, events)
		if err != nil {
			return nil, err
		}
		s.Runs = append(s.Runs, nrun)
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes,
		"expect regime 1: left-deep & bushy best; regime 2: inner best (~2x); regime 3: right-deep & NFA best")
	return res, nil
}

// Fig13 reports 1/estimated-cost for the four tree plans across regimes.
func Fig13(Scale) (*Result, error) {
	q := query6()
	res := &Result{ID: "fig13", Title: "Query 6 1/estimated-cost across regimes (cost model)", ShowInvCost: true}
	names := []string{"IBM", "Sun", "Oracle", "Google"}
	for _, regime := range fig12Regimes {
		st := statsFor(q, q.Within, names, regime.weights, map[string]float64{
			"Oracle.price > Sun.price":    regime.sun,
			"Oracle.price > Google.price": regime.google,
		})
		s := Series{Label: regime.label}
		for _, sh := range query6Shapes() {
			est, err := optimizer.EstimateShape(q, st, false, plan.NegAuto, sh.shape)
			if err != nil {
				return nil, err
			}
			s.Runs = append(s.Runs, Run{Plan: sh.name, InvCost: 1 / est.Cost})
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes, "expect: per-regime ordering matches the measured Figure 12")
	return res, nil
}

// Table3 reports peak memory for the same plans in the two regimes the
// paper tables.
func Table3(scale Scale) (*Result, error) {
	q := query6()
	res := &Result{ID: "tab3", Title: "Query 6 peak memory (MB) across plans", ShowMemory: true}
	n := scale.n(40_000)
	for ri, regime := range fig12Regimes[:2] {
		events := query6Events(n, ri)
		s := Series{Label: regime.label}
		for _, sh := range query6Shapes() {
			run, err := runEngine(q, core.Config{Strategy: core.StrategyFixed, Shape: sh.shape, BatchSize: 256}, events)
			if err != nil {
				return nil, err
			}
			run.Plan = sh.name
			s.Runs = append(s.Runs, run)
		}
		nrun, err := runNFA(q, events)
		if err != nil {
			return nil, err
		}
		s.Runs = append(s.Runs, nrun)
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes, "expect: peak memory roughly flat across plans (paper: 6.5-7.6 MB), unlike throughput")
	return res, nil
}

// --- Figure 14: plan adaptation --------------------------------------------

// Fig14 concatenates the three Query 6 regimes and compares fixed plans
// against the adaptive planner, reporting per-segment throughput.
func Fig14(scale Scale) (*Result, error) {
	q := query6()
	res := &Result{ID: "fig14", Title: "Query 6 per-segment throughput on a drifting stream (adaptive vs fixed)", ShowThroughput: true}
	n := scale.n(40_000)

	segList := make([][]*event.Event, 3)
	for ri := range fig12Regimes {
		segList[ri] = query6Events(n, ri)
	}
	all := workload.Concat(segList...)
	bounds := make([]int, 0, len(segList))
	total := 0
	for _, seg := range segList {
		total += len(seg)
		bounds = append(bounds, total)
	}

	shapes := query6Shapes()
	defs := []struct {
		name string
		cfg  core.Config
	}{
		{"left-deep", core.Config{Strategy: core.StrategyFixed, Shape: shapes[0].shape, BatchSize: 256}},
		{"right-deep", core.Config{Strategy: core.StrategyFixed, Shape: shapes[1].shape, BatchSize: 256}},
		{"inner", core.Config{Strategy: core.StrategyFixed, Shape: shapes[3].shape, BatchSize: 256}},
		{"adaptive", core.Config{Strategy: core.StrategyOptimal, Adaptive: true, AdaptEvery: 2,
			BatchSize: 256, DriftThreshold: 0.3, ImproveThreshold: 0.05}},
	}

	perSegment := make([][]float64, len(segList))
	for si := range perSegment {
		perSegment[si] = make([]float64, len(defs))
	}
	for di, def := range defs {
		eng, err := core.NewEngine(q, def.cfg, nil)
		if err != nil {
			return nil, err
		}
		seg, segStart := 0, 0
		start := time.Now()
		for i, ev := range all {
			eng.Process(ev)
			if i+1 == bounds[seg] {
				elapsed := time.Since(start).Seconds()
				perSegment[seg][di] = float64(i+1-segStart) / elapsed
				segStart = i + 1
				seg++
				start = time.Now()
			}
		}
		eng.Flush()
	}
	for si := range segList {
		s := Series{Label: fmt.Sprintf("segment %d (%s)", si+1, fig12Regimes[si].label)}
		for di, def := range defs {
			s.Runs = append(s.Runs, Run{Plan: def.name, Throughput: perSegment[si][di]})
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes, "expect: adaptive tracks the best fixed plan in every segment")
	return res, nil
}

// --- Figures 15 / 16: negation push-down -----------------------------------

var negRateSweep = []int{1, 10, 20, 30, 40, 50}

// negationExperiment measures Query 7 with NSEQ push-down vs NEG-on-top
// while one class's relative rate grows.
func negationExperiment(scale Scale, id, title string, weightsOf func(k int) []float64, axis string) (*Result, error) {
	q := query7()
	res := &Result{ID: id, Title: title, ShowThroughput: true}
	n := scale.n(60_000)
	for _, k := range negRateSweep {
		events := workload.GenStocks(workload.StockSpec{
			N: n, Seed: int64(15), Names: []string{"IBM", "Sun", "Oracle"},
			Weights: weightsOf(k),
		})
		s := Series{Label: fmt.Sprintf(axis, k)}
		for _, def := range []struct {
			name string
			mode plan.NegPlacement
		}{{"NSEQ", plan.NegPushdown}, {"NEG-on-top", plan.NegTop}} {
			run, err := runEngine(q, core.Config{
				Strategy: core.StrategyLeftDeep, Negation: def.mode, BatchSize: 256,
			}, events)
			if err != nil {
				return nil, err
			}
			run.Plan = def.name
			s.Runs = append(s.Runs, run)
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes, "expect: NSEQ >= NEG-on-top at every point (paper: up to ~an order of magnitude)")
	return res, nil
}

// Fig15 grows the Oracle (non-negated, following) class rate.
func Fig15(scale Scale) (*Result, error) {
	return negationExperiment(scale, "fig15",
		"Query 7 throughput, NSEQ vs NEG-on-top, varying Oracle rate",
		func(k int) []float64 { return []float64{1, 1, float64(k)} }, "1:1:%d")
}

// Fig16 grows the Sun (negated) class rate.
func Fig16(scale Scale) (*Result, error) {
	return negationExperiment(scale, "fig16",
		"Query 7 throughput, NSEQ vs NEG-on-top, varying Sun rate",
		func(k int) []float64 { return []float64{1, float64(k), 1} }, "1:%d:1")
}

// --- Table 4 / Figure 17 / Table 5: web log --------------------------------

// weblogSpec scales the one-month span with N so the event density inside
// the 10-hour window (~21 records) matches the full-size dataset at any
// scale.
func weblogSpec(n int) workload.WeblogSpec {
	span := int64(float64(30*24*3_600_000) * float64(n) / float64(workload.Table4.Total))
	return workload.WeblogSpec{N: n, Seed: 17, SpanTicks: span}
}

// Table4Exp generates the web log and reports the per-class access counts
// against the paper's Table 4.
func Table4Exp(scale Scale) (*Result, error) {
	n := scale.n(1_500_000)
	_, counts := workload.GenWeblog(weblogSpec(n))
	res := &Result{ID: "tab4", Title: "Web log class cardinalities (generated vs paper)", ShowMatches: true}
	res.Series = []Series{
		{Label: "generated", Runs: []Run{
			{Plan: "publication", Matches: uint64(counts.Publications)},
			{Plan: "project", Matches: uint64(counts.Projects)},
			{Plan: "courses", Matches: uint64(counts.Courses)},
		}},
		{Label: "paper (Table 4)", Runs: []Run{
			{Plan: "publication", Matches: uint64(scalePaper(workload.Table4.Publications, n))},
			{Plan: "project", Matches: uint64(scalePaper(workload.Table4.Projects, n))},
			{Plan: "courses", Matches: uint64(scalePaper(workload.Table4.Courses, n))},
		}},
	}
	res.Notes = append(res.Notes, fmt.Sprintf("total records: %d (paper: %d; proportions preserved at reduced scale)", n, workload.Table4.Total))
	return res, nil
}

func scalePaper(ref, n int) int {
	return int(float64(ref) * float64(n) / float64(workload.Table4.Total))
}

// Fig17 measures Query 8 throughput on the web log for left-deep,
// right-deep and NFA.
func Fig17(scale Scale) (*Result, error) {
	q := query8()
	res := &Result{ID: "fig17", Title: "Query 8 throughput on the web log (left-deep / right-deep / NFA)", ShowThroughput: true}
	n := scale.n(1_500_000)
	events, _ := workload.GenWeblog(weblogSpec(n))
	s, err := treeAndNFASeries(q, "weblog-access", events)
	if err != nil {
		return nil, err
	}
	res.Series = append(res.Series, *s)

	// hash-equality ablation row (ZStream's §5.2.2 optimization; the NFA
	// cannot hash, so the paper's main comparison runs without it)
	s2 := Series{Label: "weblog-access +hash"}
	for _, def := range []struct {
		name string
		str  core.Strategy
	}{{"left-deep", core.StrategyLeftDeep}, {"right-deep", core.StrategyRightDeep}} {
		run, err := runEngine(q, core.Config{Strategy: def.str, UseHash: true, BatchSize: 256}, events)
		if err != nil {
			return nil, err
		}
		run.Plan = def.name
		s2.Runs = append(s2.Runs, run)
	}
	s2.Runs = append(s2.Runs, Run{Plan: "NFA"})
	res.Series = append(res.Series, s2)
	res.Notes = append(res.Notes,
		"expect: left-deep much faster (publication accesses are rarest, Table 4); NFA slightly below right-deep")
	return res, nil
}

// Table5 reports peak memory for the Query 8 plans.
func Table5(scale Scale) (*Result, error) {
	q := query8()
	res := &Result{ID: "tab5", Title: "Query 8 peak memory (MB)", ShowMemory: true}
	n := scale.n(1_500_000)
	events, _ := workload.GenWeblog(weblogSpec(n))
	s, err := treeAndNFASeries(q, "weblog-access", events)
	if err != nil {
		return nil, err
	}
	res.Series = append(res.Series, *s)
	res.Notes = append(res.Notes, "expect: peak memory comparable across plans (paper: 10.1-10.7 MB)")
	return res, nil
}

// --- §5.2.3: optimizer timing ----------------------------------------------

// OptimizerTiming verifies the dynamic program plans a 20-class pattern in
// under 10 ms (§5.2.3).
func OptimizerTiming(Scale) (*Result, error) {
	res := &Result{ID: "opt", Title: "Algorithm 5 planning time vs pattern length", ShowThroughput: true}
	for _, n := range []int{4, 8, 12, 16, 20} {
		pat := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				pat += ";"
			}
			pat += fmt.Sprintf("C%d", i)
		}
		q := query.MustParse("PATTERN " + pat + " WITHIN 100")
		st := cost.UniformStats(q.Info, q.Within, 1)
		start := time.Now()
		const reps = 10
		for r := 0; r < reps; r++ {
			if _, err := optimizer.Optimize(q, st, false); err != nil {
				return nil, err
			}
		}
		perPlan := time.Since(start) / reps
		res.Series = append(res.Series, Series{
			Label: fmt.Sprintf("pattern length %d", n),
			Runs:  []Run{{Plan: "DP search", Throughput: float64(perPlan.Microseconds())}},
		})
	}
	res.Notes = append(res.Notes, "values are microseconds per plan search; paper: < 10 ms (10000us) at length 20")
	return res, nil
}
