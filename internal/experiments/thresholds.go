// The threshold-family experiment is not from the paper: it measures the
// PR 10 generation-2 router — range-atom dispatch via per-schema
// sorted-threshold tables — against the generation-1 behavior where every
// distinct comparison constant costs one interned-residual evaluation per
// event.
package experiments

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/runtime"
	"repro/internal/workload"
)

// ThresholdQueries builds n threshold-alert queries that differ only in
// their comparison constants: both classes are range atoms, every constant
// is pairwise distinct (no whole-query dedupe, no shared prefixes), and the
// thresholds sit near the price extremes so admissions are rare — the run
// measures router classification cost, not engine work. bench_test.go and
// the threshold-family experiment share them so the local benchmark and the
// committed baseline cannot drift.
func ThresholdQueries(n int) []*query.Query {
	qs := make([]*query.Query, n)
	for i := range qs {
		hi := 99.0 + float64(i)*0.0009 // A.price > ~99: ~1% admission
		lo := 0.9 - float64(i)*0.0005  // B.price <= ~0.5: ~0.5% admission
		qs[i] = query.MustParse(fmt.Sprintf(`
			PATTERN A; B
			WHERE A.price > %.4f AND B.price <= %.4f
			WITHIN 20 units`, hi, lo))
	}
	return qs
}

// thresholdSymbols keeps the stream's partition cardinality comparable to
// the fan-out workloads; the queries themselves are symbol-independent.
const thresholdSymbols = 16

// ThresholdEvents is the uniform stream for the threshold-family workload.
func ThresholdEvents(n int) []*event.Event {
	names := make([]string, thresholdSymbols)
	weights := make([]float64, thresholdSymbols)
	for i := range names {
		names[i] = fmt.Sprintf("S%02d", i)
		weights[i] = 1
	}
	return workload.GenStocks(workload.StockSpec{N: n, Seed: 53, Names: names, Weights: weights})
}

// ThresholdFamily sweeps the standing-query count from 256 to 1024 over
// pure range-atom families and reports gen-1 (every distinct constant is an
// interned residual, evaluated per event) vs gen-2 (one binary search per
// event per direction) throughput. Expected shape: gen-1 degrades linearly
// with the number of distinct thresholds while gen-2 stays near-flat; the
// >=2x gap at 1024 queries is the PR 10 acceptance criterion.
func ThresholdFamily(scale Scale) (*Result, error) {
	res := &Result{ID: "threshold-family", Title: "range-atom dispatch: interned residuals (gen-1) vs sorted-threshold tables (gen-2), 256-1024 queries", ShowThroughput: true}
	n := scale.n(20_000)
	events := ThresholdEvents(n)
	for _, nq := range []int{256, 512, 1024} {
		qs := ThresholdQueries(nq)
		s := Series{Label: fmt.Sprintf("%d queries", nq)}
		for _, def := range []struct {
			name    string
			noRange bool
		}{{"gen1-residual", true}, {"gen2-range", false}} {
			rcfg := runtime.Config{Shards: 4, PartitionBy: "name", BatchSize: 4096, NoRangeDispatch: def.noRange}
			run, err := runFanoutCfg(qs, rcfg, events)
			if err != nil {
				return nil, err
			}
			run.Plan = def.name
			s.Runs = append(s.Runs, run)
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes,
		"expect: gen2 >= 2x gen1 at 1024 queries; gen2 residual evals are zero (dispatch cost independent of distinct-threshold count)")
	return res, nil
}
