// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each experiment returns a Result whose text rendering
// mirrors the corresponding figure's series; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Absolute numbers differ from the paper (different decade, language and
// machine); what the experiments reproduce is the *shape*: which plan wins,
// by roughly what factor, and where the crossovers fall.
package experiments
