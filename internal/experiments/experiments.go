// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each experiment returns a Result whose text rendering
// mirrors the corresponding figure's series; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Absolute numbers differ from the paper (different decade, language and
// machine); what the experiments reproduce is the *shape*: which plan wins,
// by roughly what factor, and where the crossovers fall.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/nfa"
	"repro/internal/query"
)

// Run is one measured execution of a plan over a workload.
type Run struct {
	Plan       string
	Throughput float64 // input events per second
	Matches    uint64
	PeakMemMB  float64
	InvCost    float64 // 1 / estimated cost (cost-model figures)
}

// Series is one sweep point (one x-axis value) with its per-plan runs.
type Series struct {
	Label string
	Runs  []Run
}

// Result is one regenerated table or figure.
type Result struct {
	ID    string
	Title string
	// Columns selects which Run fields the table shows.
	ShowThroughput, ShowMemory, ShowInvCost, ShowMatches bool
	Series                                               []Series
	Notes                                                []string
}

// Table renders the result as an aligned text table.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Series) == 0 {
		return b.String()
	}
	// header
	fmt.Fprintf(&b, "%-24s", "")
	for _, run := range r.Series[0].Runs {
		fmt.Fprintf(&b, "%16s", run.Plan)
	}
	b.WriteByte('\n')
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%-24s", s.Label)
		for _, run := range s.Runs {
			switch {
			case r.ShowThroughput:
				fmt.Fprintf(&b, "%14.0f/s", run.Throughput)
			case r.ShowMemory:
				fmt.Fprintf(&b, "%14.2fMB", run.PeakMemMB)
			case r.ShowInvCost:
				fmt.Fprintf(&b, "%16.3g", run.InvCost)
			default:
				fmt.Fprintf(&b, "%16d", run.Matches)
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// runEngine measures one tree-plan execution.
func runEngine(q *query.Query, cfg core.Config, events []*event.Event) (Run, error) {
	eng, err := core.NewEngine(q, cfg, nil)
	if err != nil {
		return Run{}, err
	}
	start := time.Now()
	for _, ev := range events {
		cp := *ev // engines own Seq assignment
		eng.Process(&cp)
	}
	eng.Flush()
	elapsed := time.Since(start).Seconds()
	st := eng.Snapshot()
	return Run{
		Throughput: float64(len(events)) / elapsed,
		Matches:    st.Matches,
		PeakMemMB:  float64(st.PeakMemBytes) / (1 << 20),
	}, nil
}

// runNFA measures the NFA baseline. Matches are materialized through the
// emit callback so output-assembly costs are comparable with the tree
// engine, which always builds composite records.
func runNFA(q *query.Query, events []*event.Event) (Run, error) {
	m, err := nfa.New(q)
	if err != nil {
		return Run{}, err
	}
	m.SetEmit(func([]*event.Event) {})
	start := time.Now()
	for _, ev := range events {
		m.Process(ev)
	}
	m.Flush()
	elapsed := time.Since(start).Seconds()
	return Run{
		Plan:       "NFA",
		Throughput: float64(len(events)) / elapsed,
		Matches:    m.Matches(),
		PeakMemMB:  float64(m.PeakMemBytes()) / (1 << 20),
	}, nil
}

// Scale tunes workload sizes: 1.0 is the default zbench size; benchmarks
// use smaller factors to keep go test fast.
type Scale float64

func (s Scale) n(base int) int {
	n := int(float64(base) * float64(s))
	if n < 1000 {
		n = 1000
	}
	return n
}

// All runs every experiment at the given scale, in paper order.
func All(scale Scale) ([]*Result, error) {
	type fn func(Scale) (*Result, error)
	fns := []fn{Fig8, Fig9, Fig10, Fig11, Fig12, Fig13, Table3, Fig14,
		Fig15, Fig16, Table4Exp, Fig17, Table5, OptimizerTiming,
		AblationHash, AblationEAT, AblationBatchSize}
	var out []*Result
	for _, f := range fns {
		r, err := f(scale)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
