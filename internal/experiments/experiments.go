package experiments

import (
	"fmt"
	stdruntime "runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/nfa"
	"repro/internal/query"
)

// Run is one measured execution of a plan over a workload. AllocsPerEvent
// and BytesPerEvent are heap-allocation costs per input event measured via
// runtime.ReadMemStats around the run (the `-json` benchmark baseline and
// the CI regression gate compare them machine-independently).
type Run struct {
	Plan           string  `json:"plan"`
	Throughput     float64 `json:"events_per_sec"`
	Matches        uint64  `json:"matches"`
	PeakMemMB      float64 `json:"peak_mem_mb,omitempty"`
	InvCost        float64 `json:"inv_cost,omitempty"` // 1 / estimated cost (cost-model figures)
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// Series is one sweep point (one x-axis value) with its per-plan runs.
type Series struct {
	Label string `json:"label"`
	Runs  []Run  `json:"runs"`
}

// Result is one regenerated table or figure.
type Result struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// Columns selects which Run fields the table shows.
	ShowThroughput bool     `json:"-"`
	ShowMemory     bool     `json:"-"`
	ShowInvCost    bool     `json:"-"`
	ShowMatches    bool     `json:"-"`
	Series         []Series `json:"series"`
	Notes          []string `json:"notes,omitempty"`
}

// Table renders the result as an aligned text table.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Series) == 0 {
		return b.String()
	}
	// header
	fmt.Fprintf(&b, "%-24s", "")
	for _, run := range r.Series[0].Runs {
		fmt.Fprintf(&b, "%16s", run.Plan)
	}
	b.WriteByte('\n')
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%-24s", s.Label)
		for _, run := range s.Runs {
			switch {
			case r.ShowThroughput:
				fmt.Fprintf(&b, "%14.0f/s", run.Throughput)
			case r.ShowMemory:
				fmt.Fprintf(&b, "%14.2fMB", run.PeakMemMB)
			case r.ShowInvCost:
				fmt.Fprintf(&b, "%16.3g", run.InvCost)
			default:
				fmt.Fprintf(&b, "%16d", run.Matches)
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// measureAllocs runs fn and returns its wall-clock duration plus the heap
// mallocs and bytes it allocated (cumulative counters, so concurrent GC
// cannot make them go backwards). The timer brackets fn alone — the
// stop-the-world ReadMemStats calls scale with live heap size and must not
// pollute sub-second throughput measurements. The experiments are
// single-goroutine, so the delta is attributable.
func measureAllocs(fn func()) (elapsed float64, allocs, bytes uint64) {
	var before, after stdruntime.MemStats
	stdruntime.ReadMemStats(&before)
	start := time.Now()
	fn()
	elapsed = time.Since(start).Seconds()
	stdruntime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
}

// benchReps is how many times each measurement runs; the best throughput
// and lowest allocation count are reported (standard best-of-N practice:
// small-scale runs are sub-second, and scheduler noise only ever slows a
// run down or adds allocations, never the reverse).
const benchReps = 2

// measureBest runs one measurement pass benchReps times via makePass
// (which returns a closure executing the pass plus a post-pass stats
// reader) and folds the reps into one Run: best throughput, lowest
// allocation counts, last matches/peak-mem (identical across reps —
// the engines are deterministic).
func measureBest(n float64, makePass func() (pass func(), stats func() (matches uint64, peakMemMB float64), err error)) (Run, error) {
	var best Run
	for rep := 0; rep < benchReps; rep++ {
		pass, stats, err := makePass()
		if err != nil {
			return Run{}, err
		}
		elapsed, allocs, bytes := measureAllocs(pass)
		matches, peakMB := stats()
		r := Run{
			Throughput:     n / elapsed,
			Matches:        matches,
			PeakMemMB:      peakMB,
			AllocsPerEvent: float64(allocs) / n,
			BytesPerEvent:  float64(bytes) / n,
		}
		if rep == 0 || r.Throughput > best.Throughput {
			best.Throughput = r.Throughput
		}
		if rep == 0 || r.AllocsPerEvent < best.AllocsPerEvent {
			best.AllocsPerEvent, best.BytesPerEvent = r.AllocsPerEvent, r.BytesPerEvent
		}
		best.Matches, best.PeakMemMB = r.Matches, r.PeakMemMB
	}
	return best, nil
}

// runEngine measures one tree-plan execution. Workload events carry
// pre-stamped sequence numbers, so the engine shares them without per-event
// copies (the zero-allocation ingest path).
func runEngine(q *query.Query, cfg core.Config, events []*event.Event) (Run, error) {
	return measureBest(float64(len(events)), func() (func(), func() (uint64, float64), error) {
		eng, err := core.NewEngine(q, cfg, nil)
		if err != nil {
			return nil, nil, err
		}
		pass := func() {
			for _, ev := range events {
				eng.Process(ev)
			}
			eng.Flush()
		}
		stats := func() (uint64, float64) {
			st := eng.Snapshot()
			return st.Matches, float64(st.PeakMemBytes) / (1 << 20)
		}
		return pass, stats, nil
	})
}

// runNFA measures the NFA baseline. Matches are materialized through the
// emit callback so output-assembly costs are comparable with the tree
// engine, which always builds composite records.
func runNFA(q *query.Query, events []*event.Event) (Run, error) {
	r, err := measureBest(float64(len(events)), func() (func(), func() (uint64, float64), error) {
		m, err := nfa.New(q)
		if err != nil {
			return nil, nil, err
		}
		m.SetEmit(func([]*event.Event) {})
		pass := func() {
			for _, ev := range events {
				m.Process(ev)
			}
			m.Flush()
		}
		stats := func() (uint64, float64) {
			return m.Matches(), float64(m.PeakMemBytes()) / (1 << 20)
		}
		return pass, stats, nil
	})
	r.Plan = "NFA"
	return r, err
}

// Scale tunes workload sizes: 1.0 is the default zbench size; benchmarks
// use smaller factors to keep go test fast.
type Scale float64

func (s Scale) n(base int) int {
	n := int(float64(base) * float64(s))
	if n < 1000 {
		n = 1000
	}
	return n
}

// All runs every experiment at the given scale, in paper order.
func All(scale Scale) ([]*Result, error) {
	type fn func(Scale) (*Result, error)
	fns := []fn{Fig8, Fig9, Fig10, Fig11, Fig12, Fig13, Table3, Fig14,
		Fig15, Fig16, Table4Exp, Fig17, Table5, OptimizerTiming,
		AblationHash, AblationEAT, AblationBatchSize, Fanout, FanoutShared,
		ThresholdFamily}
	var out []*Result
	for _, f := range fns {
		r, err := f(scale)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
