// The durability experiment is not from the paper: it prices the PR 9
// durability plane — ingest throughput with the write-ahead log off versus
// on under each fsync policy, on the standing-query fan-out workload.
package experiments

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/runtime"
	"repro/internal/wal"
)

// runDurable measures one WAL configuration: ingest the whole stream
// through a durable sharded runtime and close it. Each rep logs into a
// fresh directory under dir so recovery never kicks in mid-benchmark.
func runDurable(qs []*query.Query, events []*event.Event, dir string, fsync wal.FsyncPolicy) (Run, error) {
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 256}
	rep := 0
	return measureBest(float64(len(events)), func() (func(), func() (uint64, float64), error) {
		sub, err := os.MkdirTemp(dir, "rep")
		if err != nil {
			return nil, nil, err
		}
		rep++
		rcfg := runtime.Config{
			Shards: 4, PartitionBy: "name", BatchSize: 4096,
			Durability: &runtime.DurConfig{Dir: sub, Fsync: fsync},
		}
		rt, _, err := runtime.NewDurable(rcfg)
		if err != nil {
			return nil, nil, err
		}
		for _, q := range qs {
			if _, err := rt.Register(q, ecfg, func(*core.Match) {}); err != nil {
				rt.Close()
				return nil, nil, err
			}
		}
		pass := func() {
			for _, ev := range events {
				if rt.Ingest(ev) != nil {
					panic("durability: ingest failed")
				}
			}
			if rt.Close() != nil {
				panic("durability: close failed")
			}
		}
		stats := func() (uint64, float64) {
			st := rt.Stats()
			return st.Engine.Matches, float64(st.Engine.PeakMemBytes) / (1 << 20)
		}
		return pass, stats, nil
	})
}

// Durability prices the write-ahead log on the 256-standing-query fan-out
// workload: WAL off (the memory-only baseline) against fsync=off (log to
// the OS page cache), fsync=interval (bounded sync lag) and fsync=batch
// (sync per ingest flush). Expected shape: fsync=off within a small factor
// of WAL-off (the log costs one encode+write per batch), fsync=batch
// bounded by the disk's sync latency per flush.
func Durability(scale Scale) (*Result, error) {
	res := &Result{ID: "durability", Title: "durability plane: WAL off vs fsync policies (256 standing queries)", ShowThroughput: true}
	n := scale.n(20_000)
	events := FanoutEvents(n)
	qs := FanoutQueries(256)
	dir, err := os.MkdirTemp("", "zbench-wal")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	s := Series{Label: "256 queries"}
	off, err := runFanout(qs, false, events)
	if err != nil {
		return nil, err
	}
	off.Plan = "wal-off"
	s.Runs = append(s.Runs, off)
	for _, def := range []struct {
		name  string
		fsync wal.FsyncPolicy
	}{{"fsync-off", wal.FsyncOff}, {"fsync-interval", wal.FsyncInterval}, {"fsync-batch", wal.FsyncBatch}} {
		run, err := runDurable(qs, events, dir, def.fsync)
		if err != nil {
			return nil, err
		}
		run.Plan = def.name
		s.Runs = append(s.Runs, run)
	}
	res.Series = append(res.Series, s)
	res.Notes = append(res.Notes,
		fmt.Sprintf("expect: fsync-off within ~1.5x of wal-off; fsync-batch pays one fsync per %d-event flush", 4096))
	return res, nil
}
