// The fanout experiment is not from the paper: it measures the PR 3
// multi-query router — ingest throughput while serving hundreds of
// parameterized standing queries — comparing naive deliver-to-all fan-out
// against the predicate-indexed discrimination network (internal/router).
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/runtime"
	"repro/internal/workload"
)

// fanoutSymbols is the symbol universe; queries cycle through it, so every
// event is interesting to query-count/fanoutSymbols engines.
const fanoutSymbols = 64

// FanoutQueries builds the n parameterized per-symbol dip-alert queries
// of the fan-out workload; bench_test.go and the fanout experiment share
// them so the local benchmark and the committed baseline cannot drift.
func FanoutQueries(n int) []*query.Query {
	qs := make([]*query.Query, n)
	for i := range qs {
		sym := fmt.Sprintf("S%02d", i%fanoutSymbols)
		drop := 60 + 10*((i/fanoutSymbols)%4)
		qs[i] = query.MustParse(fmt.Sprintf(`
			PATTERN A; B
			WHERE A.name = '%s' AND B.name = '%s' AND B.price < A.price - %d
			WITHIN 50 units`, sym, sym, drop))
	}
	return qs
}

// FanoutEvents is the uniform stream over the fan-out symbol universe.
func FanoutEvents(n int) []*event.Event {
	names := make([]string, fanoutSymbols)
	weights := make([]float64, fanoutSymbols)
	for i := range names {
		names[i] = fmt.Sprintf("S%02d", i)
		weights[i] = 1
	}
	return workload.GenStocks(workload.StockSpec{N: n, Seed: 37, Names: names, Weights: weights})
}

// FanoutSharedQueries builds the n parameterized-prefix alert queries of
// the subplan-sharing workload: per symbol, every query monitors the same
// canonical `A;B` dip prefix and differs only in its alert threshold on a
// third class, so n/fanoutSharedSymbols queries share each prefix
// materialization. bench_test.go and the fanout-shared experiment share
// them so the local benchmark and the committed baseline cannot drift.
func FanoutSharedQueries(n int) []*query.Query {
	qs := make([]*query.Query, n)
	for i := range qs {
		sym := fmt.Sprintf("S%02d", i%fanoutSharedSymbols)
		th := 96 + float64(i/fanoutSharedSymbols)*0.03125
		qs[i] = query.MustParse(fmt.Sprintf(`
			PATTERN A; B; C
			WHERE A.name = '%s' AND A.price > 45
			  AND B.name = '%s' AND B.price < A.price - 85
			  AND C.name = '%s' AND C.price > %g
			WITHIN 100 units`, sym, sym, sym, th))
	}
	return qs
}

// fanoutSharedSymbols is deliberately smaller than fanoutSymbols: fewer
// symbols mean more events per prefix family, so the per-member prefix
// work unshared execution repeats — buffering every B candidate and
// evaluating the selective `B.price < A.price - 85` join against the whole
// A window — dominates, while the rare pairs and rarer C alerts keep the
// match side (identical in both modes) small.
const fanoutSharedSymbols = 8

// FanoutSharedEvents is the uniform stream over the shared-prefix symbol
// universe.
func FanoutSharedEvents(n int) []*event.Event {
	names := make([]string, fanoutSharedSymbols)
	weights := make([]float64, fanoutSharedSymbols)
	for i := range names {
		names[i] = fmt.Sprintf("S%02d", i)
		weights[i] = 1
	}
	return workload.GenStocks(workload.StockSpec{N: n, Seed: 41, Names: names, Weights: weights})
}

// runFanout measures one (query count, fan-out mode) cell: ingest the
// whole stream through a sharded runtime serving qs and close it.
func runFanout(qs []*query.Query, naive bool, events []*event.Event) (Run, error) {
	rcfg := runtime.Config{Shards: 4, PartitionBy: "name", BatchSize: 4096, NaiveFanout: naive}
	return runFanoutCfg(qs, rcfg, events)
}

// runFanoutCfg is runFanout with an explicit runtime configuration
// (fan-out mode, sharing mode).
func runFanoutCfg(qs []*query.Query, rcfg runtime.Config, events []*event.Event) (Run, error) {
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 256}
	return measureBest(float64(len(events)), func() (func(), func() (uint64, float64), error) {
		rt := runtime.New(rcfg)
		for _, q := range qs {
			if _, err := rt.Register(q, ecfg, func(*core.Match) {}); err != nil {
				rt.Close()
				return nil, nil, err
			}
		}
		pass := func() {
			for _, ev := range events {
				if rt.Ingest(ev) != nil {
					panic("fanout: ingest failed")
				}
			}
			rt.Close()
		}
		stats := func() (uint64, float64) {
			st := rt.Stats()
			return st.Engine.Matches, float64(st.Engine.PeakMemBytes) / (1 << 20)
		}
		return pass, stats, nil
	})
}

// Fanout sweeps the standing-query count from 256 to 1024 and reports
// naive vs router throughput. Expected shape: naive degrades ~1/Q while
// the router holds within a small factor (each event touches ~Q/64
// engines plus one dispatch lookup); the gap at 256 queries is the PR 3
// acceptance criterion (>= 5x).
func Fanout(scale Scale) (*Result, error) {
	res := &Result{ID: "fanout", Title: "multi-query fan-out: naive deliver-to-all vs predicate router (256-1024 queries)", ShowThroughput: true}
	n := scale.n(20_000)
	events := FanoutEvents(n)
	for _, nq := range []int{256, 512, 1024} {
		qs := FanoutQueries(nq)
		s := Series{Label: fmt.Sprintf("%d queries", nq)}
		for _, def := range []struct {
			name  string
			naive bool
		}{{"naive", true}, {"router", false}} {
			run, err := runFanout(qs, def.naive, events)
			if err != nil {
				return nil, err
			}
			run.Plan = def.name
			s.Runs = append(s.Runs, run)
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes,
		"expect: router >= 5x naive at 256 queries, gap widening ~linearly with query count")
	return res, nil
}

// FanoutShared measures cross-query shared-subplan execution (PR 5): n
// parameterized queries per run share canonical `A;B` prefixes in families
// of n/8, so unshared execution buffers and assembles every family's
// prefix joins n/8 times per shard while sharing materializes them once.
// Both modes run with the predicate router on; the only difference is
// runtime.Config.NoSharing.
func FanoutShared(scale Scale) (*Result, error) {
	res := &Result{ID: "fanout-shared", Title: "shared-subplan execution: unshared vs shared prefix materialization (256-1024 queries)", ShowThroughput: true}
	n := scale.n(20_000)
	events := FanoutSharedEvents(n)
	for _, nq := range []int{256, 512, 1024} {
		qs := FanoutSharedQueries(nq)
		s := Series{Label: fmt.Sprintf("%d queries", nq)}
		for _, def := range []struct {
			name    string
			noShare bool
		}{{"unshared", true}, {"shared", false}} {
			rcfg := runtime.Config{Shards: 4, PartitionBy: "name", BatchSize: 4096, NoSharing: def.noShare}
			run, err := runFanoutCfg(qs, rcfg, events)
			if err != nil {
				return nil, err
			}
			run.Plan = def.name
			s.Runs = append(s.Runs, run)
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes,
		"expect: shared >= 2x unshared at 256 queries, gap widening with family size; identical match counts")
	return res, nil
}
