package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/workload"
)

// AblationHash isolates §5.2.2 hash-based equality evaluation on a Query 1
// style equality join (T1.name = T3.name over many symbols).
func AblationHash(scale Scale) (*Result, error) {
	q := eqJoinQuery()
	res := &Result{ID: "abl-hash", Title: "Ablation: hash equality lookups on vs off", ShowThroughput: true}
	n := scale.n(40_000)
	// many symbols so the equality is selective and hashing pays off
	names := make([]string, 64)
	weights := make([]float64, 64)
	for i := range names {
		names[i] = fmt.Sprintf("S%02d", i)
		weights[i] = 1
	}
	events := workload.GenStocks(workload.StockSpec{N: n, Seed: 21, Names: names, Weights: weights})
	s := Series{Label: "64 symbols"}
	for _, def := range []struct {
		name string
		hash bool
	}{{"scan", false}, {"hash", true}} {
		run, err := runEngine(q, core.Config{Strategy: core.StrategyLeftDeep, UseHash: def.hash, BatchSize: 256}, events)
		if err != nil {
			return nil, err
		}
		run.Plan = def.name
		s.Runs = append(s.Runs, run)
	}
	res.Series = append(res.Series, s)
	res.Notes = append(res.Notes, "expect: hash clearly faster; match counts identical")
	return res, nil
}

func eqJoinQuery() *query.Query {
	return query.MustParse(`
		PATTERN T1; T2; T3
		WHERE T1.name = T3.name
		AND T1.price > T2.price
		WITHIN 200 units`)
}

// AblationEAT isolates the §4.3 earliest-allowed-timestamp push-down.
func AblationEAT(scale Scale) (*Result, error) {
	q := query4()
	res := &Result{ID: "abl-eat", Title: "Ablation: EAT push-down on vs off", ShowThroughput: true}
	n := scale.n(30_000)
	events := workload.GenStocks(workload.StockSpec{
		N: n, Seed: 22, Names: []string{"IBM", "Sun", "Oracle"},
		Weights:    []float64{1, 1, 1},
		FixedPrice: map[string]float64{"Sun": workload.SelectivityPrice(0.25)},
	})
	s := Series{Label: "sel 1/4"}
	for _, def := range []struct {
		name    string
		disable bool
	}{{"EAT on", false}, {"EAT off", true}} {
		run, err := runEngine(q, core.Config{Strategy: core.StrategyLeftDeep, DisableEAT: def.disable, BatchSize: 256}, events)
		if err != nil {
			return nil, err
		}
		run.Plan = def.name
		s.Runs = append(s.Runs, run)
	}
	res.Series = append(res.Series, s)
	res.Notes = append(res.Notes, "expect: EAT on faster and lower peak memory; match counts identical")
	return res, nil
}

// AblationBatchSize sweeps the batch-iterator batch size (§4.3).
func AblationBatchSize(scale Scale) (*Result, error) {
	q := query4()
	res := &Result{ID: "abl-batch", Title: "Ablation: batch size sweep", ShowThroughput: true}
	n := scale.n(30_000)
	events := workload.GenStocks(workload.StockSpec{
		N: n, Seed: 23, Names: []string{"IBM", "Sun", "Oracle"},
		Weights:    []float64{1, 1, 1},
		FixedPrice: map[string]float64{"Sun": workload.SelectivityPrice(0.25)},
	})
	for _, bs := range []int{1, 8, 64, 512} {
		s := Series{Label: fmt.Sprintf("batch %d", bs)}
		run, err := runEngine(q, core.Config{Strategy: core.StrategyLeftDeep, BatchSize: bs},
			events)
		if err != nil {
			return nil, err
		}
		run.Plan = "left-deep"
		s.Runs = append(s.Runs, run)
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes, "expect: throughput improves then flattens as batching amortizes assembly rounds")
	return res, nil
}
