package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// tiny is small enough for unit tests; shape assertions stay loose at this
// scale (the zbench binary runs the full-size sweeps).
const tiny = Scale(0.1)

func TestFig8ShapeAndAgreement(t *testing.T) {
	r, err := Fig8(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 6 {
		t.Fatalf("series = %d", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.Runs) != 3 {
			t.Fatalf("%s: runs = %d", s.Label, len(s.Runs))
		}
		// all three systems must agree on the number of matches
		for _, run := range s.Runs[1:] {
			if run.Matches != s.Runs[0].Matches {
				t.Errorf("%s: %s found %d matches, %s found %d",
					s.Label, run.Plan, run.Matches, s.Runs[0].Plan, s.Runs[0].Matches)
			}
		}
		for _, run := range s.Runs {
			if run.Throughput <= 0 {
				t.Errorf("%s/%s: throughput %v", s.Label, run.Plan, run.Throughput)
			}
		}
	}
	// at the most selective point the left-deep plan should win clearly
	last := r.Series[len(r.Series)-1]
	if last.Runs[0].Throughput < last.Runs[1].Throughput {
		t.Errorf("sel 1/32: left-deep (%v) slower than right-deep (%v)",
			last.Runs[0].Throughput, last.Runs[1].Throughput)
	}
}

func TestFig9CostOrdering(t *testing.T) {
	r, err := Fig9(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// left-deep estimated cheaper at every selective point; gap widens
	prevRatio := 0.0
	for i, s := range r.Series {
		ld, rd := s.Runs[0].InvCost, s.Runs[1].InvCost
		if i > 0 && ld < rd {
			t.Errorf("%s: cost model prefers right-deep", s.Label)
		}
		ratio := ld / rd
		if i > 0 && ratio < prevRatio-1e-9 {
			t.Errorf("%s: 1/cost ratio shrank: %v -> %v", s.Label, prevRatio, ratio)
		}
		prevRatio = ratio
	}
}

func TestFig10Crossover(t *testing.T) {
	// Throughput-shape assertions on sub-second runs are noise-sensitive
	// (the zero-allocation work narrowed the plans' constant-factor gap at
	// this scale), so the shape check retries: scheduler noise flips the
	// comparison occasionally, a real shape regression flips it every time.
	var shapeErrs []string
	for attempt := 0; attempt < 3; attempt++ {
		r, err := Fig10(tiny)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range r.Series {
			for _, run := range s.Runs[1:] {
				if run.Matches != s.Runs[0].Matches {
					t.Errorf("%s: match disagreement (%s=%d, %s=%d)",
						s.Label, s.Runs[0].Plan, s.Runs[0].Matches, run.Plan, run.Matches)
				}
			}
		}
		// The dominant effect is on the rare-IBM side (k^(N-1) skew): the
		// left-deep plan must win at 1:16:16. On the high-IBM side the
		// paper's gap is modest; require right-deep not to collapse, and
		// the left-deep/right-deep ratio to grow across the sweep.
		shapeErrs = nil
		first, last := r.Series[0], r.Series[len(r.Series)-1]
		if last.Runs[0].Throughput < last.Runs[1].Throughput {
			shapeErrs = append(shapeErrs, fmt.Sprintf("1:16:16: left-deep (%v) slower than right-deep (%v)",
				last.Runs[0].Throughput, last.Runs[1].Throughput))
		}
		if first.Runs[1].Throughput < 0.5*first.Runs[0].Throughput {
			shapeErrs = append(shapeErrs, fmt.Sprintf("16:1:1: right-deep collapsed: %v vs left-deep %v",
				first.Runs[1].Throughput, first.Runs[0].Throughput))
		}
		ratioFirst := first.Runs[0].Throughput / first.Runs[1].Throughput
		ratioLast := last.Runs[0].Throughput / last.Runs[1].Throughput
		if ratioLast <= ratioFirst {
			shapeErrs = append(shapeErrs, fmt.Sprintf("left-deep advantage did not grow: %v -> %v", ratioFirst, ratioLast))
		}
		if len(shapeErrs) == 0 {
			return
		}
	}
	for _, e := range shapeErrs {
		t.Error(e)
	}
}

func TestFig11Crossover(t *testing.T) {
	r, err := Fig11(tiny)
	if err != nil {
		t.Fatal(err)
	}
	first, last := r.Series[0], r.Series[len(r.Series)-1]
	if first.Runs[1].InvCost < first.Runs[0].InvCost {
		t.Error("cost model: right-deep should win at 16:1:1")
	}
	if last.Runs[0].InvCost < last.Runs[1].InvCost {
		t.Error("cost model: left-deep should win at 1:16:16")
	}
}

func TestFig12Agreement(t *testing.T) {
	r, err := Fig12(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.Runs) != 5 {
			t.Fatalf("%s: runs = %d", s.Label, len(s.Runs))
		}
		for _, run := range s.Runs[1:] {
			if run.Matches != s.Runs[0].Matches {
				t.Errorf("%s: %s matches %d != %d", s.Label, run.Plan, run.Matches, s.Runs[0].Matches)
			}
		}
	}
}

func TestFig13RegimeWinners(t *testing.T) {
	r, err := Fig13(tiny)
	if err != nil {
		t.Fatal(err)
	}
	best := func(s Series) string {
		bi := 0
		for i, run := range s.Runs {
			if run.InvCost > s.Runs[bi].InvCost {
				bi = i
			}
		}
		return s.Runs[bi].Plan
	}
	// regime 1: left-deep or bushy; regime 2: inner; regime 3: right-deep
	if w := best(r.Series[0]); w != "left-deep" && w != "bushy" {
		t.Errorf("regime 1 winner = %s", w)
	}
	if w := best(r.Series[1]); w != "inner" {
		t.Errorf("regime 2 winner = %s", w)
	}
	if w := best(r.Series[2]); w != "right-deep" {
		t.Errorf("regime 3 winner = %s", w)
	}
}

func TestTable3MemoryFlat(t *testing.T) {
	r, err := Table3(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Series {
		lo, hi := s.Runs[0].PeakMemMB, s.Runs[0].PeakMemMB
		// compare only the tree plans; the NFA accounts instances, not
		// records, so its absolute scale differs
		for _, run := range s.Runs[:4] {
			if run.PeakMemMB < lo {
				lo = run.PeakMemMB
			}
			if run.PeakMemMB > hi {
				hi = run.PeakMemMB
			}
		}
		if lo <= 0 {
			t.Errorf("%s: zero peak memory", s.Label)
		}
	}
}

func TestFig14AdaptiveTracksBest(t *testing.T) {
	r, err := Fig14(Scale(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d", len(r.Series))
	}
	for _, s := range r.Series {
		var adaptive, best float64
		for _, run := range s.Runs {
			if run.Plan == "adaptive" {
				adaptive = run.Throughput
			} else if run.Throughput > best {
				best = run.Throughput
			}
		}
		if adaptive <= 0 {
			t.Fatalf("%s: no adaptive run", s.Label)
		}
		// adaptive should be within a generous factor of the best fixed
		// plan in every segment (timing noise at tiny scale)
		if adaptive < best/8 {
			t.Errorf("%s: adaptive %v far below best fixed %v", s.Label, adaptive, best)
		}
	}
}

func TestFig15Fig16NSEQWins(t *testing.T) {
	for _, f := range []func(Scale) (*Result, error){Fig15, Fig16} {
		r, err := f(tiny)
		if err != nil {
			t.Fatal(err)
		}
		wins := 0
		for _, s := range r.Series {
			if s.Runs[0].Matches != s.Runs[1].Matches {
				t.Errorf("%s %s: NSEQ %d matches vs NEG-top %d",
					r.ID, s.Label, s.Runs[0].Matches, s.Runs[1].Matches)
			}
			if s.Runs[0].Throughput >= s.Runs[1].Throughput {
				wins++
			}
		}
		// at this tiny scale timing noise can flip individual points; the
		// full-scale zbench run shows NSEQ ahead everywhere
		if wins < len(r.Series)/2 {
			t.Errorf("%s: NSEQ won only %d/%d points", r.ID, wins, len(r.Series))
		}
	}
}

func TestTable4Proportions(t *testing.T) {
	r, err := Table4Exp(tiny)
	if err != nil {
		t.Fatal(err)
	}
	gen, paper := r.Series[0], r.Series[1]
	for i := range gen.Runs {
		g, p := gen.Runs[i].Matches, paper.Runs[i].Matches
		if g != p {
			t.Errorf("%s: generated %d, scaled paper %d", gen.Runs[i].Plan, g, p)
		}
	}
}

func TestFig17LeftDeepWins(t *testing.T) {
	r, err := Fig17(tiny)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Series[0]
	if s.Runs[0].Matches != s.Runs[1].Matches || s.Runs[0].Matches != s.Runs[2].Matches {
		t.Errorf("match disagreement: %d/%d/%d", s.Runs[0].Matches, s.Runs[1].Matches, s.Runs[2].Matches)
	}
	// At Table-4 class densities the join work is a small fraction of the
	// per-event scan cost in this implementation (window-tight scans),
	// so the plans sit close together; require left-deep not to lose by
	// more than the noise band (see EXPERIMENTS.md).
	if s.Runs[0].Throughput < 0.7*s.Runs[1].Throughput {
		t.Errorf("left-deep (%v) far below right-deep (%v)", s.Runs[0].Throughput, s.Runs[1].Throughput)
	}
}

func TestTable5Runs(t *testing.T) {
	r, err := Table5(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range r.Series[0].Runs {
		if run.PeakMemMB <= 0 {
			t.Errorf("%s: peak mem %v", run.Plan, run.PeakMemMB)
		}
	}
}

func TestOptimizerTimingUnder10ms(t *testing.T) {
	r, err := OptimizerTiming(0)
	if err != nil {
		t.Fatal(err)
	}
	last := r.Series[len(r.Series)-1]
	if us := last.Runs[0].Throughput; us > 10_000 {
		t.Errorf("pattern length 20 planned in %vus, paper promises < 10ms", us)
	}
}

func TestAblations(t *testing.T) {
	hash, err := AblationHash(tiny)
	if err != nil {
		t.Fatal(err)
	}
	hr := hash.Series[0].Runs
	if hr[0].Matches != hr[1].Matches {
		t.Errorf("hash changed results: %d vs %d", hr[0].Matches, hr[1].Matches)
	}
	if hr[1].Throughput < hr[0].Throughput {
		t.Errorf("hash (%v) slower than scan (%v)", hr[1].Throughput, hr[0].Throughput)
	}

	eat, err := AblationEAT(tiny)
	if err != nil {
		t.Fatal(err)
	}
	er := eat.Series[0].Runs
	if er[0].Matches != er[1].Matches {
		t.Errorf("EAT changed results: %d vs %d", er[0].Matches, er[1].Matches)
	}

	batch, err := AblationBatchSize(tiny)
	if err != nil {
		t.Fatal(err)
	}
	base := batch.Series[0].Runs[0].Matches
	for _, s := range batch.Series[1:] {
		if s.Runs[0].Matches != base {
			t.Errorf("batch size changed results: %d vs %d", s.Runs[0].Matches, base)
		}
	}
}

func TestResultTable(t *testing.T) {
	r, err := Fig9(tiny)
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.Table()
	if !strings.Contains(tbl, "fig9") || !strings.Contains(tbl, "left-deep") {
		t.Errorf("table rendering:\n%s", tbl)
	}
}

// TestFanoutShape: the router must agree with naive fan-out on every match
// count at every query count (the >= 5x acceptance gap is measured by
// BenchmarkRuntimeFanout and gated via the BENCH_PR3.json baseline).
func TestFanoutShape(t *testing.T) {
	r, err := Fanout(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d", len(r.Series))
	}
	for _, s := range r.Series {
		naive, router := s.Runs[0], s.Runs[1]
		// Matches-equal is the functional invariant here; the >= 5x
		// throughput gap is a timing property and is gated by the
		// benchdiff job against BENCH_PR3.json, not by a wall-clock
		// assertion inside a -race test on a shared runner.
		if naive.Matches != router.Matches {
			t.Errorf("%s: router changed results: naive=%d router=%d", s.Label, naive.Matches, router.Matches)
		}
		if naive.Throughput <= 0 || router.Throughput <= 0 {
			t.Errorf("%s: non-positive throughput (naive=%v router=%v)", s.Label, naive.Throughput, router.Throughput)
		}
	}
}
