package runtime

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/workload"
)

// riseQuery is partition-local over "name": every predicate equates the
// symbol across classes, so sharded evaluation must equal a single global
// engine for any shard count.
const riseQuery = `
	PATTERN T1; T2; T3
	WHERE T1.name = T2.name AND T2.name = T3.name
	  AND T1.price < T2.price AND T2.price < T3.price
	WITHIN 50 units
	RETURN T1, T2, T3`

func names(n int) ([]string, []float64) {
	names := make([]string, n)
	weights := make([]float64, n)
	for i := range names {
		names[i] = fmt.Sprintf("S%02d", i)
		weights[i] = 1
	}
	return names, weights
}

func stockStream(n, symbols int, seed int64) []*event.Event {
	nm, w := names(symbols)
	return workload.GenStocks(workload.StockSpec{N: n, Seed: seed, Names: nm, Weights: w})
}

// canon renders a match into a canonical comparison key.
func canon(m *core.Match) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%d..%d]", m.Start, m.End)
	for _, f := range m.Fields {
		fmt.Fprintf(&b, " %s=", f.Name)
		for _, e := range f.Events {
			fmt.Fprintf(&b, "@%d#%s", e.Ts, e.Get("name").S)
		}
		if len(f.Events) == 0 {
			b.WriteString(f.Value.String())
		}
	}
	return b.String()
}

// singleEngine runs q over events with one global engine and returns the
// canonical match multiset.
func singleEngine(t testing.TB, q *query.Query, cfg core.Config, events []*event.Event) map[string]int {
	t.Helper()
	got := map[string]int{}
	eng, err := core.NewEngine(q, cfg, func(m *core.Match) { got[canon(m)]++ })
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		cp := *ev
		eng.Process(&cp)
	}
	eng.Flush()
	return got
}

// runtimeRun runs q through a Runtime and returns the canonical match
// multiset plus the delivered end-times in delivery order.
func runtimeRun(t testing.TB, q *query.Query, cfg Config, ecfg core.Config, events []*event.Event) (map[string]int, []int64) {
	t.Helper()
	rt := New(cfg)
	got := map[string]int{}
	var ends []int64
	if _, err := rt.Register(q, ecfg, func(m *core.Match) {
		got[canon(m)]++
		ends = append(ends, m.End)
	}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		cp := *ev
		if err := rt.Ingest(&cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	return got, ends
}

func diffMultisets(t *testing.T, want, got map[string]int) {
	t.Helper()
	for k, n := range want {
		if got[k] != n {
			t.Errorf("match %q: single=%d sharded=%d", k, n, got[k])
		}
	}
	for k, n := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("extra sharded match %q (x%d)", k, n)
		}
	}
}

// TestShardedEqualsSingleEngine: for a partition-local query the merged
// sharded output must equal the single-engine output, for several shard
// counts, and must be delivered in non-decreasing end-time order.
func TestShardedEqualsSingleEngine(t *testing.T) {
	q := query.MustParse(riseQuery)
	events := stockStream(6000, 8, 42)
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, UseHash: true, BatchSize: 64}
	want := singleEngine(t, q, ecfg, events)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; test is vacuous")
	}
	for _, shards := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			got, ends := runtimeRun(t, q, Config{Shards: shards, BatchSize: 100}, ecfg, events)
			diffMultisets(t, want, got)
			for i := 1; i < len(ends); i++ {
				if ends[i] < ends[i-1] {
					t.Fatalf("delivery out of end-time order at %d: %d after %d", i, ends[i], ends[i-1])
				}
			}
		})
	}
}

// TestPartitionSkew: one hot symbol receiving ~90% of the stream must not
// change results or deadlock the backpressure path. A selective two-class
// pattern keeps the hot partition's match count (and the test) small while
// its event volume stays maximally skewed.
func TestPartitionSkew(t *testing.T) {
	nm, w := names(8)
	w[3] = 9 * 7 // S03 gets ~90%
	events := workload.GenStocks(workload.StockSpec{N: 8000, Seed: 7, Names: nm, Weights: w})
	q := query.MustParse(`
		PATTERN A; B
		WHERE A.name = B.name AND B.price > A.price + 90
		WITHIN 50 units
		RETURN A, B`)
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, UseHash: true, BatchSize: 64}
	want := singleEngine(t, q, ecfg, events)
	got, _ := runtimeRun(t, q, Config{Shards: 4, BatchSize: 64, QueueLen: 2}, ecfg, events)
	diffMultisets(t, want, got)
}

// TestMultiQueryOrdering: several queries on one runtime; the merged
// delivery across all queries must be globally end-time ordered and each
// query must see exactly its own single-engine results.
func TestMultiQueryOrdering(t *testing.T) {
	queries := []*query.Query{
		query.MustParse(riseQuery),
		query.MustParse(`
			PATTERN A; B
			WHERE A.name = B.name AND B.price > A.price
			WITHIN 20 units
			RETURN A, B`),
	}
	events := stockStream(4000, 6, 11)
	ecfg := core.Config{UseHash: true, BatchSize: 64}

	rt := New(Config{Shards: 3, BatchSize: 128})
	type rec struct {
		got  map[string]int
		prev int64
	}
	var mu sync.Mutex // callbacks are single-goroutine, but be explicit about the global order check
	var globalEnds []int64
	recs := make([]*rec, len(queries))
	for i, q := range queries {
		r := &rec{got: map[string]int{}}
		recs[i] = r
		if _, err := rt.Register(q, ecfg, func(m *core.Match) {
			mu.Lock()
			r.got[canon(m)]++
			globalEnds = append(globalEnds, m.End)
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ev := range events {
		cp := *ev
		if err := rt.Ingest(&cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(globalEnds); i++ {
		if globalEnds[i] < globalEnds[i-1] {
			t.Fatalf("global delivery out of order at %d: %d after %d", i, globalEnds[i], globalEnds[i-1])
		}
	}
	for i, q := range queries {
		want := singleEngine(t, q, ecfg, events)
		diffMultisets(t, want, recs[i].got)
	}
}

// TestConcurrentRegisterUnregisterIngest exercises the runtime under -race:
// one goroutine ingests, one churns query registrations, one polls Stats.
func TestConcurrentRegisterUnregisterIngest(t *testing.T) {
	rt := New(Config{Shards: 4, BatchSize: 32, QueueLen: 2})
	events := stockStream(20000, 8, 3)
	q := query.MustParse(riseQuery)
	ecfg := core.Config{UseHash: true, BatchSize: 32}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // registration churn
		defer wg.Done()
		var ids []QueryID
		for i := 0; i < 40; i++ {
			id, err := rt.Register(q, ecfg, func(*core.Match) {})
			if err != nil {
				t.Error(err)
				return
			}
			ids = append(ids, id)
			if len(ids) > 3 {
				if err := rt.Unregister(ids[0]); err != nil {
					t.Error(err)
					return
				}
				ids = ids[1:]
			}
		}
	}()
	go func() { // stats poller
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = rt.Stats()
			}
		}
	}()
	for _, ev := range events {
		cp := *ev
		if err := rt.Ingest(&cp); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.EventsIngested != uint64(len(events)) {
		t.Errorf("EventsIngested = %d, want %d", st.EventsIngested, len(events))
	}
}

// TestLifecycleErrors covers Close idempotence and the error surface.
func TestLifecycleErrors(t *testing.T) {
	rt := New(Config{Shards: 2})
	q := query.MustParse(riseQuery)
	id, err := rt.Register(q, core.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Unregister(id + 99); !errors.Is(err, ErrUnknownQuery) {
		t.Errorf("Unregister(bogus) = %v", err)
	}
	if err := rt.Ingest(event.NewStock(1, 100, 1, "IBM", 10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Ingest(event.NewStock(2, 50, 2, "IBM", 10, 1)); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("out-of-order ingest = %v", err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
	if err := rt.Ingest(event.NewStock(3, 200, 3, "IBM", 10, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Ingest after Close = %v", err)
	}
	if _, err := rt.Register(q, core.Config{}, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Register after Close = %v", err)
	}
	if err := rt.Unregister(id); !errors.Is(err, ErrClosed) {
		t.Errorf("Unregister after Close = %v", err)
	}
}

// TestRegisterErrorPropagates: engine construction failures surface from
// Register before any worker sees the query.
func TestRegisterErrorPropagates(t *testing.T) {
	rt := New(Config{Shards: 2})
	defer rt.Close()
	q := query.MustParse(riseQuery)
	bad := core.Config{Strategy: core.StrategyFixed} // Shape missing
	if _, err := rt.Register(q, bad, nil); err == nil {
		t.Fatal("Register with bad config succeeded")
	}
	st := rt.Stats()
	if st.LiveQueries != 0 {
		t.Errorf("LiveQueries = %d after failed register", st.LiveQueries)
	}
}

// TestUnregisterStopsMatches: after Unregister the query receives no
// further matches even as the stream continues.
func TestUnregisterStopsMatches(t *testing.T) {
	rt := New(Config{Shards: 2, BatchSize: 16})
	q := query.MustParse(riseQuery)
	var n int
	id, err := rt.Register(q, core.Config{UseHash: true, BatchSize: 16}, func(*core.Match) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	events := stockStream(4000, 4, 5)
	half := len(events) / 2
	for _, ev := range events[:half] {
		cp := *ev
		if err := rt.Ingest(&cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Unregister(id); err != nil {
		t.Fatal(err)
	}
	// Matches already reported by workers may still drain; remember the
	// count only after Close, then verify a full-stream run finds more.
	for _, ev := range events[half:] {
		cp := *ev
		if err := rt.Ingest(&cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	full := singleEngine(t, q, core.Config{UseHash: true, BatchSize: 16}, events)
	total := 0
	for _, c := range full {
		total += c
	}
	if n >= total {
		t.Errorf("unregistered query saw %d matches, full run has %d", n, total)
	}
	if n == 0 {
		t.Error("no matches before unregister; test is vacuous")
	}
}
