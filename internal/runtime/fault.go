package runtime

import (
	"errors"
	"fmt"
	"runtime/debug"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// ErrQuarantined is matched (errors.Is) by the QueryFaultError that
// Explain returns for a query removed from execution by a contained fault.
var ErrQuarantined = errors.New("runtime: query quarantined after a contained fault")

// MergerShard is the QueryFault.Shard value of faults recovered on the
// merger goroutine (a panicking OnMatch callback), which runs on no shard.
const MergerShard = -1

// QueryFault records one contained fault: which query it took down, where
// the panic was recovered, and what the panic said. Faults are permanent
// for the life of the runtime — Unregister removes the quarantined
// registry entry, but the fault record stays inspectable via Faults.
type QueryFault struct {
	// ID is the quarantined query; GroupID the engine group it was
	// executing on when the fault hit (every query aliased onto a faulted
	// group is quarantined with it, each with its own record).
	ID      QueryID
	GroupID int64
	// Shard is the worker that recovered the panic, or MergerShard for
	// OnMatch callback faults.
	Shard int
	// Site names the dispatch boundary the panic crossed: one of the
	// faultinject site names, or "register.alias" for a query aliased onto
	// a group that was quarantined before its registration arrived.
	Site string
	// Panic is the formatted panic value and Stack the goroutine stack
	// captured at recovery ("" for quarantines inherited without a local
	// panic, e.g. the other members of a faulted group's shard).
	Panic string
	Stack string
	// StreamTs is the shard's stream clock when the panic was recovered
	// (the match end-time for merger-side faults): the stream position the
	// query's output is complete up to, minus any in-flight batch.
	StreamTs int64
}

// QueryFaultError is returned by Explain for a quarantined query. It
// matches ErrQuarantined under errors.Is and exposes the full fault record
// via errors.As.
type QueryFaultError struct {
	Fault QueryFault
}

func (e *QueryFaultError) Error() string {
	return fmt.Sprintf("runtime: query %d quarantined: %s (site %s, shard %d, stream ts %d)",
		e.Fault.ID, e.Fault.Panic, e.Fault.Site, e.Fault.Shard, e.Fault.StreamTs)
}

// Is reports target == ErrQuarantined so errors.Is works unwrapped.
func (e *QueryFaultError) Is(target error) bool { return target == ErrQuarantined }

// pendingQuar is one registry cleanup the next mu-holding API call owes:
// gid != 0 names a faulted engine group (every member goes), gid == 0 a
// merger-side OnMatch fault (only the listed queries go, their group — if
// shared — keeps serving its other aliases).
type pendingQuar struct {
	gid int64
	ids []QueryID
}

// faultSink collects contained faults from shard workers and the merger.
// It deliberately has nothing to do with the runtime registry lock:
// workers must never take mu (they would deadlock against a backpressured
// send phase holding it), so they record here and the next registry API
// call reaps the pending quarantines into the registry. dirty makes that
// reap check one atomic load on the ingest hot path.
type faultSink struct {
	dirty atomic.Bool
	total atomic.Uint64

	mu      sync.Mutex
	faults  map[QueryID]*QueryFault
	pending []pendingQuar
}

func newFaultSink() *faultSink { return &faultSink{faults: map[QueryID]*QueryFault{}} }

// report records one contained fault for a set of member queries (first
// write wins per query — a group that faults on several shards keeps the
// first stack) and queues the registry cleanup.
func (s *faultSink) report(gid int64, ids []QueryID, f QueryFault) {
	s.mu.Lock()
	for _, id := range ids {
		if _, ok := s.faults[id]; !ok {
			ff := f
			ff.ID = id
			s.faults[id] = &ff
			s.total.Add(1)
		}
	}
	s.pending = append(s.pending, pendingQuar{gid: gid, ids: ids})
	s.mu.Unlock()
	s.dirty.Store(true)
}

// takePending drains the cleanup queue. dirty is cleared first, so a
// report racing the drain at worst re-flags an already-taken entry and the
// next reap finds an empty queue.
func (s *faultSink) takePending() []pendingQuar {
	s.dirty.Store(false)
	s.mu.Lock()
	p := s.pending
	s.pending = nil
	s.mu.Unlock()
	return p
}

// get returns a copy of a query's fault record, or nil.
func (s *faultSink) get(id QueryID) *QueryFault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f := s.faults[id]; f != nil {
		ff := *f
		return &ff
	}
	return nil
}

// setGroup resolves the group of a merger-side fault recorded before the
// registry could be consulted.
func (s *faultSink) setGroup(id QueryID, gid int64) {
	s.mu.Lock()
	if f := s.faults[id]; f != nil && f.GroupID == 0 {
		f.GroupID = gid
	}
	s.mu.Unlock()
}

// snapshot returns every fault record, sorted by query id.
func (s *faultSink) snapshot() []QueryFault {
	s.mu.Lock()
	out := make([]QueryFault, 0, len(s.faults))
	for _, f := range s.faults {
		out = append(out, *f)
	}
	s.mu.Unlock()
	slices.SortFunc(out, func(a, b QueryFault) int { return int(a.ID - b.ID) })
	return out
}

// Faults returns every contained query fault recorded so far, sorted by
// query id. Unlike most runtime APIs it also works after Close, so a
// drained runtime remains inspectable post-mortem.
func (rt *Runtime) Faults() []QueryFault {
	rt.mu.Lock()
	if !rt.closed && rt.faults.dirty.Load() {
		rt.reapFaultsLocked(true)
	}
	rt.mu.Unlock()
	return rt.faults.snapshot()
}

// reapFaultsLocked applies pending quarantines to the registry: each
// faulted group's entry is removed (engine counters folded into the
// retired accumulator, prefix-family bookkeeping unwound), each member's
// registry entry is marked quarantined, and — when broadcast is true —
// every worker is told to drop the group's shard-local state. Callers hold
// mu; the broadcast send phases drop it (see sendLocked), so registry
// reads must not be cached across this call.
func (rt *Runtime) reapFaultsLocked(broadcast bool) {
	for _, pq := range rt.faults.takePending() {
		ts := rt.lastTs
		if pq.gid == 0 {
			// Merger-side (OnMatch) fault: the engine group is healthy —
			// only the panicking query leaves, exactly like Unregister.
			for _, id := range pq.ids {
				reg := rt.live[id]
				if reg == nil || reg.quarantined {
					continue
				}
				reg.quarantined = true
				if gs := rt.groups[reg.key]; gs != nil {
					rt.faults.setGroup(id, gs.gid)
					gs.members--
					if gs.members == 0 {
						rt.dropGroupLocked(reg.key, gs)
					}
				}
				if broadcast {
					qid := id
					rt.sendLocked(func(int) shardMsg { return shardMsg{ts: ts, unreg: qid} })
				}
			}
			continue
		}
		// Worker-side group fault: the whole group and every member
		// aliased onto it are gone.
		for _, id := range pq.ids {
			if reg := rt.live[id]; reg != nil {
				reg.quarantined = true
			}
		}
		for k, gs := range rt.groups {
			if gs.gid == pq.gid {
				rt.dropGroupLocked(k, gs)
				break
			}
		}
		if broadcast {
			gid := pq.gid
			rt.sendLocked(func(int) shardMsg { return shardMsg{ts: ts, quar: gid} })
		}
	}
}

// emitMatch runs one query's OnMatch callback under panic containment: a
// panicking callback quarantines its query (and only it — a shared engine
// group keeps serving its other aliases). Runs on the merger goroutine;
// reports whether the callback returned normally.
func (rt *Runtime) emitMatch(pm *pendingMatch) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
			rt.faults.report(0, []QueryID{pm.id}, QueryFault{
				Shard:    MergerShard,
				Site:     string(faultinject.SiteEmit),
				Panic:    fmt.Sprint(r),
				Stack:    string(debug.Stack()),
				StreamTs: pm.end,
			})
		}
	}()
	rt.cfg.Injector.Hit(faultinject.SiteEmit, MergerShard, int64(pm.id))
	pm.emit(pm.m)
	return true
}
