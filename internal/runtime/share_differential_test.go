package runtime

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
)

// Differential tests for cross-query execution sharing (whole-query dedupe
// + shared-subplan prefixes): with the SAME runtime configuration, sharing
// must produce byte-identical match transcripts (content and delivery
// order) to unshared execution (Config.NoSharing), across prefix-family
// query mixes, shard counts, router and naive fan-out, and live
// registration churn.

// prefixQuerySrcs builds n overlapping queries over `symbols` stock
// symbols, cycling through templates chosen to exercise every sharing
// path: parameterized families with identical canonical `A;B` prefixes and
// varying suffixes (shared-subplan consumers), exact textual duplicates
// (whole-query dedupe), longer shared prefixes, and shapes that are
// deliberately ineligible (trailing negation, trailing closure anchored on
// the would-be prefix) so gating is also covered.
func prefixQuerySrcs(n, symbols int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		sym := fmt.Sprintf("S%02d", i%symbols)
		d := float64(55 + 10*((i/symbols)%4))
		var src string
		switch i % 7 {
		case 0: // shared A;B prefix, suffix threshold varies with d
			src = fmt.Sprintf(`PATTERN A; B; C
				WHERE A.name = '%s' AND A.price > 40 AND B.name = '%s' AND B.price < A.price
				  AND C.name = '%s' AND C.price > %g
				WITHIN 30 units RETURN A, B, C`, sym, sym, sym, d)
		case 1: // same prefix family as case 0, different suffix shape
			src = fmt.Sprintf(`PATTERN A; B; C
				WHERE A.name = '%s' AND A.price > 40 AND B.name = '%s' AND B.price < A.price
				  AND C.name = '%s' AND C.price < %g AND C.price > B.price
				WITHIN 30 units RETURN A, C`, sym, sym, sym, d+20)
		case 2: // exact duplicate of a case-0 query (d fixed): dedupe
			src = fmt.Sprintf(`PATTERN A; B; C
				WHERE A.name = '%s' AND A.price > 40 AND B.name = '%s' AND B.price < A.price
				  AND C.name = '%s' AND C.price > %g
				WITHIN 30 units RETURN A, B, C`, sym, sym, sym, 55.0)
		case 3: // longer shared prefix: A;B;C shared, D varies
			src = fmt.Sprintf(`PATTERN A; B; C; D
				WHERE A.name = '%s' AND B.name = '%s' AND B.price > A.price
				  AND C.name = '%s' AND C.price > B.price
				  AND D.name = '%s' AND D.price < %g
				WITHIN 40 units RETURN A, D`, sym, sym, sym, sym, d)
		case 4: // trailing Kleene above a shared A;B prefix (KSEQ anchor C)
			src = fmt.Sprintf(`PATTERN A; B; C; D+
				WHERE A.name = '%s' AND A.price < %g AND B.name = '%s' AND B.price > A.price
				  AND C.name = '%s' AND D.name = '%s' AND D.price > C.price
				WITHIN 25 units RETURN A, C, D`, sym, 100-d+40, sym, sym, sym)
		case 5: // trailing negation: prefix ineligible (anchor fuses B)
			src = fmt.Sprintf(`PATTERN A; B; !C
				WHERE A.name = '%s' AND A.price > %g AND B.name = '%s' AND B.price > A.price
				  AND C.name = '%s' AND C.price > B.price
				WITHIN 20 units RETURN A, B`, sym, d, sym, sym)
		default: // suffix predicate reaching back into the shared prefix
			src = fmt.Sprintf(`PATTERN A; B; C
				WHERE A.name = '%s' AND A.price > 40 AND B.name = '%s' AND B.price < A.price
				  AND C.name = '%s' AND C.price > A.price + %g
				WITHIN 30 units RETURN B, C`, sym, sym, sym, d-50)
		}
		out = append(out, src)
	}
	return out
}

// TestSharingDifferentialPrefixFamilies: shared-subplan execution must be
// byte-identical to unshared execution over prefix-heavy query mixes, for
// several shard counts and seeds, with the router enabled.
func TestSharingDifferentialPrefixFamilies(t *testing.T) {
	srcs := prefixQuerySrcs(105, 12)
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 64}
	for _, seed := range []int64{5, 29} {
		events := stockStream(5000, 12, seed)
		for _, shards := range []int{1, 3} {
			t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
				base := Config{Shards: shards, BatchSize: 128}
				unsharedCfg, sharedCfg := base, base
				unsharedCfg.NoSharing = true
				unshared := fanoutRun(t, srcs, unsharedCfg, ecfg, events)
				shared := fanoutRun(t, srcs, sharedCfg, ecfg, events)
				if len(unshared) == 0 {
					t.Fatal("workload produced no matches; test is vacuous")
				}
				diffTranscripts(t, unshared, shared)
			})
		}
	}
}

// TestSharingDifferentialRouterTemplates replays PR 3's seven router
// templates (equality dispatch, residuals, unconstrained classes,
// negation, trailing closure) under sharing vs no sharing — these exercise
// whole-query dedupe (the family contains exact duplicates) plus all the
// gating paths, on both the router and the naive fan-out.
func TestSharingDifferentialRouterTemplates(t *testing.T) {
	srcs := fanoutQuerySrcs(120, 16)
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 64}
	events := stockStream(5000, 16, 7)
	for _, naive := range []bool{false, true} {
		t.Run(fmt.Sprintf("naive=%v", naive), func(t *testing.T) {
			base := Config{Shards: 2, BatchSize: 128, NaiveFanout: naive}
			unsharedCfg, sharedCfg := base, base
			unsharedCfg.NoSharing = true
			unshared := fanoutRun(t, srcs, unsharedCfg, ecfg, events)
			shared := fanoutRun(t, srcs, sharedCfg, ecfg, events)
			if len(unshared) == 0 {
				t.Fatal("workload produced no matches; test is vacuous")
			}
			diffTranscripts(t, unshared, shared)
		})
	}
}

// TestSharingDifferentialOptimalPlans repeats the prefix-family comparison
// with the cost-based plan search and hash joins enabled: shared consumers
// compose their suffix joins over the shared source with a fixed shape,
// which must not change the match transcript.
func TestSharingDifferentialOptimalPlans(t *testing.T) {
	srcs := prefixQuerySrcs(70, 8)
	ecfg := core.Config{Strategy: core.StrategyOptimal, UseHash: true, BatchSize: 32}
	events := stockStream(4000, 8, 17)
	base := Config{Shards: 2, BatchSize: 64}
	unsharedCfg, sharedCfg := base, base
	unsharedCfg.NoSharing = true
	unshared := fanoutRun(t, srcs, unsharedCfg, ecfg, events)
	shared := fanoutRun(t, srcs, sharedCfg, ecfg, events)
	if len(unshared) == 0 {
		t.Fatal("workload produced no matches; test is vacuous")
	}
	diffTranscripts(t, unshared, shared)
}

// TestSharingDifferentialChurn registers and unregisters queries at exact
// stream positions: late registrants attach to already-running producers
// (their readers must hide partial matches embedding pre-registration
// events), the family's first registrant (the solo) unregisters while
// consumers live, and consumers unregister down to zero so producers are
// dropped and later re-created. Transcripts must stay byte-identical to
// unshared execution performing the same op sequence.
func TestSharingDifferentialChurn(t *testing.T) {
	srcs := prefixQuerySrcs(84, 12)
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 64}
	events := stockStream(6000, 12, 43)
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			base := Config{Shards: shards, BatchSize: 100}
			unsharedCfg, sharedCfg := base, base
			unsharedCfg.NoSharing = true
			unshared := churnRun(t, srcs, unsharedCfg, ecfg, events)
			shared := churnRun(t, srcs, sharedCfg, ecfg, events)
			if len(unshared) == 0 {
				t.Fatal("workload produced no matches; test is vacuous")
			}
			diffTranscripts(t, unshared, shared)
		})
	}
}

// TestSharingDifferentialAdaptive: adaptive engines are gated out of
// prefix sharing (their private plans may diverge) but still deduplicate
// when textually identical — configurations and admission being equal,
// identical engines adapt identically. Transcripts must agree with
// unshared execution either way.
func TestSharingDifferentialAdaptive(t *testing.T) {
	srcs := prefixQuerySrcs(56, 8)
	ecfg := core.Config{Strategy: core.StrategyOptimal, UseHash: true,
		Adaptive: true, AdaptEvery: 4, BatchSize: 32}
	events := stockStream(4000, 8, 23)
	base := Config{Shards: 2, BatchSize: 64}
	unsharedCfg, sharedCfg := base, base
	unsharedCfg.NoSharing = true
	unshared := fanoutRun(t, srcs, unsharedCfg, ecfg, events)
	shared := fanoutRun(t, srcs, sharedCfg, ecfg, events)
	if len(unshared) == 0 {
		t.Fatal("workload produced no matches; test is vacuous")
	}
	diffTranscripts(t, unshared, shared)

	// Prefix sharing must actually be disabled for adaptive engines, while
	// textual duplicates (same source registered twice) still dedupe.
	rt := New(Config{Shards: 1})
	for _, src := range append(srcs[:14], srcs[0], srcs[1]) {
		if _, err := rt.Register(query.MustParse(src), ecfg, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := rt.Stats()
	if st.SharedSubplans != 0 || st.SharedPrefixConsumers != 0 {
		t.Errorf("adaptive engines joined prefix sharing: %+v", st)
	}
	if st.LiveQueries != 16 || st.EngineGroups != 14 {
		t.Errorf("adaptive duplicates did not dedupe: groups=%d live=%d", st.EngineGroups, st.LiveQueries)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSharingEngages guards against the whole differential suite passing
// vacuously: on the prefix-family workload, sharing must actually create
// shared producers, attach consumers, and alias duplicate queries.
func TestSharingEngages(t *testing.T) {
	srcs := prefixQuerySrcs(84, 12)
	rt := New(Config{Shards: 2})
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 64}
	for _, src := range srcs {
		if _, err := rt.Register(query.MustParse(src), ecfg, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := rt.Stats()
	if st.SharedSubplans == 0 {
		t.Error("no shared subplan producers created")
	}
	if st.SharedPrefixConsumers == 0 {
		t.Error("no shared-prefix consumers attached")
	}
	if st.EngineGroups >= st.LiveQueries {
		t.Errorf("no whole-query dedupe: groups=%d live=%d", st.EngineGroups, st.LiveQueries)
	}
	// Ingest something so shared execution actually runs, then confirm
	// matches flow and Close drains cleanly.
	var matches int
	id, err := rt.Register(query.MustParse(srcs[0]), ecfg, func(*core.Match) { matches++ })
	if err != nil {
		t.Fatal(err)
	}
	_ = id
	for _, ev := range stockStream(3000, 12, 11) {
		cp := *ev
		if err := rt.Ingest(&cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if matches == 0 {
		t.Error("no matches delivered to a deduped late registrant")
	}
}

// TestWarmDuplicateRegistration pins the group-registry collision bug: a
// textually identical query registered after events have flowed (so the
// cold-group aliasing rule declines) must get its own group without
// clobbering the live group's registry entry; both queries must then
// unregister cleanly and produce the same matches a private engine would.
func TestWarmDuplicateRegistration(t *testing.T) {
	src := `PATTERN A; B WHERE A.name = 'S00' AND B.name = 'S00' AND B.price > A.price WITHIN 20 units RETURN A, B`
	rt := New(Config{Shards: 2, BatchSize: 8})
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 16}
	var n1, n2 int
	id1, err := rt.Register(query.MustParse(src), ecfg, func(*core.Match) { n1++ })
	if err != nil {
		t.Fatal(err)
	}
	events := stockStream(600, 4, 3)
	for _, ev := range events[:300] {
		cp := *ev
		if err := rt.Ingest(&cp); err != nil {
			t.Fatal(err)
		}
	}
	// Warm now: the duplicate must become a separate group.
	id2, err := rt.Register(query.MustParse(src), ecfg, func(*core.Match) { n2++ })
	if err != nil {
		t.Fatal(err)
	}
	if st := rt.Stats(); st.EngineGroups != 2 {
		t.Errorf("warm duplicate aliased onto live group: %d groups", st.EngineGroups)
	}
	for _, ev := range events[300:] {
		cp := *ev
		if err := rt.Ingest(&cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Unregister(id1); err != nil {
		t.Fatal(err)
	}
	if err := rt.Unregister(id2); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if n1 == 0 {
		t.Fatal("workload produced no matches; test is vacuous")
	}
}
