// Package runtime is the concurrent multi-query execution layer above
// internal/core: one Runtime hosts many registered queries at once, shards
// the input stream by a partition key across N worker goroutines (each
// owning a per-shard core.Engine instance for every distinct live query —
// see Cross-query sharing below), ingests events through batched bounded
// channels with backpressure, and merges the per-worker match streams back
// into a single end-time-ordered output (heap-merge driven by per-shard
// watermarks).
//
// # Partitioned semantics
//
// Every event is routed to exactly one shard by hashing its partition-key
// attribute, and each shard evaluates every query over its substream
// independently. A query is therefore evaluated with partition-local
// semantics: matches combine only events that landed in the same shard.
// For queries whose predicates equate the partition key across all event
// classes (e.g. "T1.name = T2.name AND T2.name = T3.name" when partitioned
// by "name", or the paper's §6.5 web-log query equating IPs when
// partitioned by "ip"), every potential match is key-local, so the merged
// output is exactly the output of a single global engine, for any shard
// count. Queries that join across partition keys see only the shard-local
// subset of those combinations; register those on a Runtime with Shards=1
// (or a plain Engine) instead.
//
// # Ordering
//
// Ingest requires globally non-decreasing timestamps (the same contract as
// core.Engine without a reordering stage). Matches are delivered by a
// single merger goroutine in non-decreasing end-time order across all
// queries and shards; per-query callbacks never run concurrently.
//
// # Cross-query sharing
//
// Unless Config.NoSharing is set, registration shares execution between
// queries where provably safe (match transcripts stay byte-identical):
// textually identical queries collapse onto one engine group whose matches
// fan out to every alias, and queries sharing a canonical class prefix
// (query.SharablePrefix) consume one per-shard materialization of the
// prefix joins (core.Subplan) through refcounted shared readers instead of
// each buffering and assembling it. See docs/ARCHITECTURE.md.
package runtime
