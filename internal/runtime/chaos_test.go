package runtime

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/faultinject"
	"repro/internal/query"
)

// Chaos differential suite: inject a deterministic panic into one victim
// query and compare every OTHER query's match transcript against a
// fault-free run of the identical configuration. Containment is only real
// if the blast radius is exactly the quarantined set — survivors must be
// byte-identical, in content and delivery order, across router/naive
// fan-out, sharing on/off, and shard counts.

// chaosRun is fanoutRun plus an injector: it registers srcs with
// transcript-recording sinks, lets arm pick rules once group/producer ids
// are known, ingests, closes, and returns the transcript together with
// the set of transcript indices that were quarantined.
func chaosRun(t testing.TB, srcs []string, cfg Config, ecfg core.Config,
	events []*event.Event, arm func(rt *Runtime, ids []QueryID)) (transcript []string, quarantined map[int]bool) {
	t.Helper()
	inj := faultinject.New()
	cfg.Injector = inj
	rt := New(cfg)
	rt.hashSeed = sharedSeed
	ids := make([]QueryID, len(srcs))
	for i, src := range srcs {
		i := i
		q := query.MustParse(src)
		id, err := rt.Register(q, ecfg, func(m *core.Match) {
			transcript = append(transcript, fmt.Sprintf("q%03d %s", i, canon(m)))
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	arm(rt, ids)
	for _, ev := range events {
		cp := *ev
		if err := rt.Ingest(&cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	idx := make(map[QueryID]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	quarantined = map[int]bool{}
	for _, f := range rt.Faults() {
		i, ok := idx[f.ID]
		if !ok {
			t.Fatalf("fault for unknown query id %d: %+v", f.ID, f)
		}
		quarantined[i] = true
	}
	return transcript, quarantined
}

// stripQuarantined drops every transcript line belonging to a quarantined
// query index, leaving the survivors' lines in their original order.
func stripQuarantined(transcript []string, quarantined map[int]bool) []string {
	out := make([]string, 0, len(transcript))
	for _, line := range transcript {
		var i int
		if _, err := fmt.Sscanf(line, "q%03d ", &i); err != nil {
			panic("malformed transcript line: " + line)
		}
		if !quarantined[i] {
			out = append(out, line)
		}
	}
	return out
}

// hasLines reports whether any transcript line belongs to index i.
func hasLines(transcript []string, i int) bool {
	prefix := fmt.Sprintf("q%03d ", i)
	for _, line := range transcript {
		if strings.HasPrefix(line, prefix) {
			return true
		}
	}
	return false
}

// TestChaosDifferentialEngineFault panics one victim engine group at a
// seed-derived batch, across shard counts and both fan-out paths: every
// survivor's transcript must equal the fault-free run's byte for byte.
func TestChaosDifferentialEngineFault(t *testing.T) {
	srcs := fanoutQuerySrcs(48, 8)
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 32}
	events := stockStream(3000, 8, 11)
	const victim = 5
	for _, seed := range []int64{1, 2} {
		for _, shards := range []int{1, 2, 3} {
			for _, naive := range []bool{false, true} {
				t.Run(fmt.Sprintf("seed=%d/shards=%d/naive=%v", seed, shards, naive), func(t *testing.T) {
					cfg := Config{Shards: shards, BatchSize: 64, NaiveFanout: naive}
					baseline := fanoutRun(t, srcs, cfg, ecfg, events)
					chaos, quarantined := chaosRun(t, srcs, cfg, ecfg, events,
						func(rt *Runtime, ids []QueryID) {
							rt.cfg.Injector.Arm(faultinject.Rule{
								Site:  faultinject.SiteEngineBatch,
								Shard: faultinject.AnyShard,
								ID:    gidOf(t, rt, ids[victim]),
								Nth:   faultinject.DeriveNth(seed, 6),
								Act:   faultinject.ActPanic,
							})
						})
					if !quarantined[victim] {
						t.Fatalf("victim %d not quarantined (quarantined = %v); injection never fired", victim, quarantined)
					}
					if len(quarantined) != 1 {
						t.Fatalf("blast radius beyond the victim: %v", quarantined)
					}
					if len(baseline) == 0 {
						t.Fatal("fault-free run produced no matches; test is vacuous")
					}
					diffTranscripts(t, stripQuarantined(baseline, quarantined),
						stripQuarantined(chaos, quarantined))
				})
			}
		}
	}
}

// TestChaosDifferentialNoSharing repeats the engine-fault differential
// with sharing disabled, so quarantine paths that skip producer teardown
// are also held to the survivors-identical bar.
func TestChaosDifferentialNoSharing(t *testing.T) {
	srcs := prefixQuerySrcs(35, 6)
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 32}
	events := stockStream(2500, 6, 17)
	const victim = 8
	for _, noShare := range []bool{false, true} {
		t.Run(fmt.Sprintf("noSharing=%v", noShare), func(t *testing.T) {
			cfg := Config{Shards: 2, BatchSize: 64, NoSharing: noShare}
			baseline := fanoutRun(t, srcs, cfg, ecfg, events)
			chaos, quarantined := chaosRun(t, srcs, cfg, ecfg, events,
				func(rt *Runtime, ids []QueryID) {
					rt.cfg.Injector.Arm(faultinject.Rule{
						Site:  faultinject.SiteEngineBatch,
						Shard: faultinject.AnyShard,
						ID:    gidOf(t, rt, ids[victim]),
						Nth:   2,
						Act:   faultinject.ActPanic,
					})
				})
			if !quarantined[victim] {
				t.Fatalf("victim %d not quarantined: %v", victim, quarantined)
			}
			if len(baseline) == 0 {
				t.Fatal("fault-free run produced no matches; test is vacuous")
			}
			diffTranscripts(t, stripQuarantined(baseline, quarantined),
				stripQuarantined(chaos, quarantined))
		})
	}
}

// TestChaosDifferentialProducerFault kills a shared-subplan producer
// mid-stream: every consumer group reading it is quarantined with it,
// while the family's solo (first registrant, private prefix) and every
// unrelated query must stay byte-identical to the fault-free run.
func TestChaosDifferentialProducerFault(t *testing.T) {
	srcs := prefixQuerySrcs(35, 6)
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 32}
	events := stockStream(2500, 6, 23)
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := Config{Shards: shards, BatchSize: 64}
			baseline := fanoutRun(t, srcs, cfg, ecfg, events)
			var nConsumers int
			chaos, quarantined := chaosRun(t, srcs, cfg, ecfg, events,
				func(rt *Runtime, ids []QueryID) {
					// Target the first prefix family's shared producer.
					var prodID int64
					for _, id := range ids {
						gs := rt.groups[rt.live[id].key]
						if gs != nil && gs.consumer {
							prodID = rt.prefixes[gs.prefixKey].prodID
							break
						}
					}
					if prodID == 0 {
						t.Fatal("no shared producer materialized; test is vacuous")
					}
					for _, id := range ids {
						gs := rt.groups[rt.live[id].key]
						if gs != nil && gs.consumer && rt.prefixes[gs.prefixKey].prodID == prodID {
							nConsumers += gs.members
						}
					}
					rt.cfg.Injector.Arm(faultinject.Rule{
						Site:  faultinject.SiteProducerBatch,
						Shard: faultinject.AnyShard,
						ID:    prodID,
						Nth:   3,
						Act:   faultinject.ActPanic,
					})
				})
			if len(quarantined) != nConsumers {
				t.Fatalf("quarantined %d queries, want the producer's %d consumers: %v",
					len(quarantined), nConsumers, quarantined)
			}
			if len(baseline) == 0 {
				t.Fatal("fault-free run produced no matches; test is vacuous")
			}
			diffTranscripts(t, stripQuarantined(baseline, quarantined),
				stripQuarantined(chaos, quarantined))
		})
	}
}

// TestChaosDifferentialEmitFault panics one alias's OnMatch callback via
// the emit injection site: only that alias is quarantined — its dedupe
// twin (same engine group) and every other query must match the fault-free
// run exactly.
func TestChaosDifferentialEmitFault(t *testing.T) {
	srcs := prefixQuerySrcs(35, 6)
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 32}
	events := stockStream(2500, 6, 31)
	// prefixQuerySrcs makes case-2 indices exact duplicates of a case-0
	// query with the same symbol and d=55: with 6 symbols, index 30
	// (i%7 == 2, symbol S00) duplicates index 0 (i%7 == 0, S00, d=55).
	const victim, twin = 30, 0
	cfg := Config{Shards: 2, BatchSize: 64}
	baseline := fanoutRun(t, srcs, cfg, ecfg, events)
	chaos, quarantined := chaosRun(t, srcs, cfg, ecfg, events,
		func(rt *Runtime, ids []QueryID) {
			if gidOf(t, rt, ids[victim]) != gidOf(t, rt, ids[twin]) {
				t.Fatalf("indices %d and %d did not dedupe; pick different ones", victim, twin)
			}
			rt.cfg.Injector.Arm(faultinject.Rule{
				Site:  faultinject.SiteEmit,
				Shard: MergerShard,
				ID:    int64(ids[victim]),
				Nth:   2,
				Act:   faultinject.ActPanic,
			})
		})
	if len(quarantined) != 1 || !quarantined[victim] {
		t.Fatalf("quarantined = %v, want exactly the panicking alias %d", quarantined, victim)
	}
	if !hasLines(baseline, twin) {
		t.Fatal("dedupe twin produced no matches; test is vacuous")
	}
	diffTranscripts(t, stripQuarantined(baseline, quarantined),
		stripQuarantined(chaos, quarantined))
}
