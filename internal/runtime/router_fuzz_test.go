package runtime

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// fuzzQuerySrcs derives a deterministic query mix from rng: equality atoms,
// range atoms in every operator/orientation, BETWEEN shapes, duplicate
// thresholds, arithmetic residuals, shared class prefixes, and
// unconstrained classes — the full admission matrix the router has to get
// right.
func fuzzQuerySrcs(rng *rand.Rand, n, symbols int) []string {
	ops := []string{"<", "<=", ">", ">="}
	// A small threshold pool forces duplicates across queries (the
	// equal-threshold walks) and includes negatives and zero.
	thPool := []float64{-5, 0, 20, 50, 50, 80, 99}
	th := func() float64 { return thPool[rng.Intn(len(thPool))] }
	op := func() string { return ops[rng.Intn(len(ops))] }
	sym := func() string { return fmt.Sprintf("S%02d", rng.Intn(symbols)) }
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		var src string
		switch rng.Intn(6) {
		case 0: // pure threshold family (range dispatch both classes)
			src = fmt.Sprintf(`PATTERN A; B WHERE A.price %s %g AND B.price %s %g
				WITHIN 12 units RETURN A, B`, op(), th(), op(), th())
		case 1: // eq + range on the same class (eq wins dispatch)
			src = fmt.Sprintf(`PATTERN A; B WHERE A.name = '%s' AND A.price %s %g AND B.name = '%s'
				WITHIN 20 units RETURN A, B`, sym(), op(), th(), sym())
		case 2: // BETWEEN shape + literal-on-left orientation
			lo := th()
			src = fmt.Sprintf(`PATTERN A; B WHERE A.price > %g AND A.price <= %g AND %g < B.price
				WITHIN 10 units RETURN A, B`, lo, lo+30, th())
		case 3: // range + arithmetic residual (mixed dispatch/residual class)
			src = fmt.Sprintf(`PATTERN A; B WHERE A.price %s %g AND B.price * B.volume > %g
				WITHIN 15 units RETURN A, B`, op(), th(), 10*th()+5)
		case 4: // unconstrained class degradation riding alongside ranges
			src = fmt.Sprintf(`PATTERN A; B WHERE A.price %s %g
				WITHIN 6 units RETURN A, B`, op(), th())
		default: // shared prefix: same leading class predicates, distinct tail
			src = fmt.Sprintf(`PATTERN A; B WHERE A.name = 'S00' AND A.price > 50 AND B.price %s %g
				WITHIN 25 units RETURN A, B`, op(), th())
		}
		out = append(out, src)
	}
	return out
}

// FuzzRouterDifferential fuzzes the whole fan-out plane: for a generated
// query mix and event stream, the gen-2 router (range dispatch), the gen-1
// router (ranges forced residual), and naive deliver-to-all must produce
// byte-identical match transcripts. Any divergence — a dropped admission at
// a threshold boundary, a duplicate around churn, an ordering change — is a
// crash-grade finding.
func FuzzRouterDifferential(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(1), uint16(600))
	f.Add(int64(7), uint8(24), uint8(2), uint16(900))
	f.Add(int64(42), uint8(18), uint8(3), uint16(700))
	f.Add(int64(99), uint8(6), uint8(2), uint16(400))
	f.Fuzz(func(t *testing.T, seed int64, nq, shards uint8, nev uint16) {
		nQueries := 1 + int(nq)%32
		nShards := 1 + int(shards)%3
		nEvents := 100 + int(nev)%1200
		rng := rand.New(rand.NewSource(seed))
		srcs := fuzzQuerySrcs(rng, nQueries, 8)
		events := stockStream(nEvents, 8, seed^0x5eed)
		ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 32}
		base := Config{Shards: nShards, BatchSize: 64}

		naiveCfg := base
		naiveCfg.NaiveFanout = true
		gen1Cfg := base
		gen1Cfg.NoRangeDispatch = true
		gen2Cfg := base

		naive := fanoutRun(t, srcs, naiveCfg, ecfg, events)
		gen1 := fanoutRun(t, srcs, gen1Cfg, ecfg, events)
		gen2 := fanoutRun(t, srcs, gen2Cfg, ecfg, events)
		diffTranscripts(t, naive, gen1)
		diffTranscripts(t, naive, gen2)
	})
}
