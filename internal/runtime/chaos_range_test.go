package runtime

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/faultinject"
	"repro/internal/query"
)

// rangeChurnSrcs builds n threshold-family queries with pairwise-distinct
// constants (so nothing dedupes onto a shared group): each contributes
// exactly two sorted-threshold entries per compiled schema table, making
// the live range-index size exactly countable.
func rangeChurnSrcs(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf(`PATTERN A; B
			WHERE A.price > %d AND B.price <= %d
			WITHIN 10 units RETURN A, B`, i, i+20))
	}
	return out
}

// chaosChurnRun is churnRun plus a deterministic engine panic: queries
// register/unregister at exact stream positions while the injector panics
// one victim group mid-stream. Returns the transcript, the quarantined
// indices, and the final live range-table entry count (summed over shards)
// captured before Close.
func chaosChurnRun(t testing.TB, srcs []string, cfg Config, ecfg core.Config,
	events []*event.Event, arm func(rt *Runtime, ids []QueryID)) (transcript []string, quarantined map[int]bool, rangeEntries uint64) {
	t.Helper()
	if arm != nil {
		cfg.Injector = faultinject.New()
	}
	rt := New(cfg)
	rt.hashSeed = sharedSeed
	ids := make([]QueryID, len(srcs))
	register := func(i int) {
		q := query.MustParse(srcs[i])
		id, err := rt.Register(q, ecfg, func(m *core.Match) {
			transcript = append(transcript, fmt.Sprintf("q%03d %s", i, canon(m)))
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	late := len(srcs) / 3
	for i := 0; i < len(srcs)-late; i++ {
		register(i)
	}
	if arm != nil {
		arm(rt, ids)
	}
	third := len(events) / 3
	ingest := func(evs []*event.Event) {
		for _, ev := range evs {
			cp := *ev
			if err := rt.Ingest(&cp); err != nil {
				t.Fatal(err)
			}
		}
	}
	ingest(events[:third])
	for i := len(srcs) - late; i < len(srcs); i++ {
		register(i)
	}
	ingest(events[third : 2*third])
	for i := 0; i < len(srcs)-late; i += 4 {
		if err := rt.Unregister(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	ingest(events[2*third:])
	rangeEntries = rt.Metrics().Router.RangeTableEntries
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	idx := make(map[QueryID]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	quarantined = map[int]bool{}
	for _, f := range rt.Faults() {
		i, ok := idx[f.ID]
		if !ok {
			t.Fatalf("fault for unknown query id %d: %+v", f.ID, f)
		}
		quarantined[i] = true
	}
	return transcript, quarantined, rangeEntries
}

// TestChaosRangeChurnUnderQuarantine races range-atom query churn against a
// faultinject-driven engine panic: threshold tables must stay consistent —
// no stale subscribers delivering after unregister or quarantine, survivors
// byte-identical to the fault-free run, and the live range-index entry
// count exactly the surviving subscription count (two entries per query per
// shard, since every query range-dispatches both classes).
func TestChaosRangeChurnUnderQuarantine(t *testing.T) {
	srcs := rangeChurnSrcs(36)
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 32}
	events := stockStream(3000, 8, 29)
	const victim = 1 // early registrant, not in the unregister set (0,4,8,…)
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := Config{Shards: shards, BatchSize: 64}
			baseline, _, baseEntries := chaosChurnRun(t, srcs, cfg, ecfg, events, nil)
			chaos, quarantined, chaosEntries := chaosChurnRun(t, srcs, cfg, ecfg, events,
				func(rt *Runtime, ids []QueryID) {
					rt.cfg.Injector.Arm(faultinject.Rule{
						Site:  faultinject.SiteEngineBatch,
						Shard: faultinject.AnyShard,
						ID:    gidOf(t, rt, ids[victim]),
						Nth:   4,
						Act:   faultinject.ActPanic,
					})
				})
			if !quarantined[victim] || len(quarantined) != 1 {
				t.Fatalf("quarantined = %v, want exactly victim %d", quarantined, victim)
			}
			if len(baseline) == 0 {
				t.Fatal("fault-free run produced no matches; test is vacuous")
			}
			diffTranscripts(t, stripQuarantined(baseline, quarantined),
				stripQuarantined(chaos, quarantined))

			// Exact index-size accounting: every live query holds two
			// threshold entries in each shard's compiled stock table. The
			// chaos run has one fewer (the quarantined victim was removed
			// from every shard's index).
			early := len(srcs) - len(srcs)/3
			unregistered := (early + 3) / 4
			live := len(srcs) - unregistered
			want := uint64(2 * live * shards)
			if baseEntries != want {
				t.Errorf("fault-free range entries = %d, want %d", baseEntries, want)
			}
			if chaosEntries != want-uint64(2*shards) {
				t.Errorf("chaos range entries = %d, want %d (victim removed)", chaosEntries, want-uint64(2*shards))
			}
		})
	}
}

// TestRangeMetricsSurface pins the new router metrics end to end: range
// probes accumulate, the table-entry gauge reflects live registrations, and
// residual evals stay zero for a pure threshold-family workload.
func TestRangeMetricsSurface(t *testing.T) {
	rt := New(Config{Shards: 2, BatchSize: 16})
	for i, src := range rangeChurnSrcs(8) {
		if _, err := rt.Register(query.MustParse(src), core.Config{BatchSize: 16}, nil); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}
	for i := 0; i < 200; i++ {
		if err := rt.Ingest(event.NewStock(0, int64(i), int64(i), fmt.Sprintf("S%02d", i%8), float64(i%40), 1)); err != nil {
			t.Fatal(err)
		}
	}
	m := rt.Metrics()
	if m.Router.RangeProbes == 0 {
		t.Error("range probes = 0, want > 0")
	}
	if m.Router.ResidualEvals != 0 {
		t.Errorf("residual evals = %d, want 0 (pure threshold workload)", m.Router.ResidualEvals)
	}
	if m.Router.RangeTableEntries == 0 {
		t.Error("range table entries = 0, want > 0")
	}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"zstream_router_range_probes_total", "zstream_router_range_table_entries"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("prometheus output missing %s", want)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}
