package runtime

import (
	"fmt"
	"hash/maphash"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
)

// sharedSeed pins the partition hash so a naive and a routed run shard the
// stream identically — several query templates here are deliberately not
// partition-local, and their (well-defined) partition-local output depends
// on the event → shard assignment.
var sharedSeed = maphash.MakeSeed()

// Differential tests for the predicate-indexed router: with the SAME
// runtime configuration, router-based delivery must produce byte-identical
// match sequences (content and delivery order) to the naive
// deliver-to-all path, across overlapping parameterized query mixes,
// shard counts, and live registration churn.

// fanoutQuerySrcs builds n overlapping parameterized queries over `symbols`
// stock symbols, cycling through templates that exercise every router
// path: pure equality dispatch, equality + shared residual, residual-only
// scans, an unconstrained (always-admitted) class, and negation.
func fanoutQuerySrcs(n, symbols int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		sym := fmt.Sprintf("S%02d", i%symbols)
		d := float64(60 + 10*((i/symbols)%4))
		var src string
		switch i % 7 {
		case 0: // equality dispatch only
			src = fmt.Sprintf(`PATTERN A; B
				WHERE A.name = '%s' AND B.name = '%s' AND B.price < A.price - %g
				WITHIN 40 units RETURN A, B`, sym, sym, d)
		case 1: // equality + residual shared across all symbol variants
			src = fmt.Sprintf(`PATTERN A; B
				WHERE A.name = '%s' AND A.price > 50 AND B.name = '%s' AND B.price < 50
				WITHIN 40 units RETURN A, B`, sym, sym)
		case 2: // residual-only (no equality atoms at all)
			src = fmt.Sprintf(`PATTERN A; B
				WHERE A.price > %g AND B.price < %g
				WITHIN 8 units RETURN A, B`, d+30, 100-d)
		case 3: // unconstrained class: degrades to full delivery
			src = fmt.Sprintf(`PATTERN A; B
				WHERE A.name = '%s' AND A.price > %g
				WITHIN 4 units RETURN A, B`, sym, d)
		case 4: // negation between dispatched classes
			src = fmt.Sprintf(`PATTERN A; !B; C
				WHERE A.name = '%s' AND B.name = '%s' AND C.name = '%s'
				  AND B.price > %g AND C.price > A.price
				WITHIN 30 units RETURN A, C`, sym, sym, sym, d)
		case 5: // trailing negation: confirmation is time-driven (NSeqRight)
			src = fmt.Sprintf(`PATTERN A; !B
				WHERE A.name = '%s' AND A.price > %g AND B.name = '%s' AND B.price > A.price
				WITHIN 20 units RETURN A`, sym, d, sym)
		default: // trailing Kleene closure: also confirmed by window expiry
			src = fmt.Sprintf(`PATTERN A; B+
				WHERE A.name = '%s' AND A.price < %g AND B.name = '%s' AND B.price > A.price
				WITHIN 15 units RETURN A, B`, sym, 100-d, sym)
		}
		out = append(out, src)
	}
	return out
}

// fanoutRun drives queries over events on one runtime configuration and
// returns the global delivery transcript: one line per delivered match, in
// delivery order, tagged with the query index.
func fanoutRun(t testing.TB, srcs []string, cfg Config, ecfg core.Config, events []*event.Event) []string {
	t.Helper()
	rt := New(cfg)
	rt.hashSeed = sharedSeed
	var transcript []string
	for i, src := range srcs {
		i := i
		q := query.MustParse(src)
		if _, err := rt.Register(q, ecfg, func(m *core.Match) {
			transcript = append(transcript, fmt.Sprintf("q%03d %s", i, canon(m)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ev := range events {
		cp := *ev
		if err := rt.Ingest(&cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	// Close waits for the merger to drain, so the transcript is complete.
	return transcript
}

func diffTranscripts(t *testing.T, naive, routed []string) {
	t.Helper()
	if len(naive) != len(routed) {
		t.Errorf("match counts differ: naive=%d routed=%d", len(naive), len(routed))
	}
	n := len(naive)
	if len(routed) < n {
		n = len(routed)
	}
	for i := 0; i < n; i++ {
		if naive[i] != routed[i] {
			t.Fatalf("delivery %d differs:\n  naive:  %s\n  routed: %s", i, naive[i], routed[i])
		}
	}
}

// TestRouterDifferentialManyQueries: 120 overlapping parameterized queries
// on randomized workloads; routed delivery must be byte-identical to the
// naive path, in content and order, for several shard counts.
func TestRouterDifferentialManyQueries(t *testing.T) {
	srcs := fanoutQuerySrcs(120, 16)
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 64}
	for _, seed := range []int64{3, 19} {
		events := stockStream(5000, 16, seed)
		for _, shards := range []int{1, 3} {
			t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
				base := Config{Shards: shards, BatchSize: 128}
				naiveCfg, routedCfg := base, base
				naiveCfg.NaiveFanout = true
				naive := fanoutRun(t, srcs, naiveCfg, ecfg, events)
				routed := fanoutRun(t, srcs, routedCfg, ecfg, events)
				if len(naive) == 0 {
					t.Fatal("workload produced no matches; test is vacuous")
				}
				diffTranscripts(t, naive, routed)
			})
		}
	}
}

// TestRouterDifferentialHashAndAdaptive repeats the comparison with hash
// joins and plan adaptation enabled: adaptation may pick different plans
// per engine, but plan switching is duplicate-free, so transcripts must
// still agree.
func TestRouterDifferentialHashAndAdaptive(t *testing.T) {
	srcs := fanoutQuerySrcs(60, 8)
	ecfg := core.Config{Strategy: core.StrategyOptimal, UseHash: true,
		Adaptive: true, AdaptEvery: 4, BatchSize: 32}
	events := stockStream(4000, 8, 23)
	base := Config{Shards: 2, BatchSize: 64}
	naiveCfg, routedCfg := base, base
	naiveCfg.NaiveFanout = true
	naive := fanoutRun(t, srcs, naiveCfg, ecfg, events)
	routed := fanoutRun(t, srcs, routedCfg, ecfg, events)
	if len(naive) == 0 {
		t.Fatal("workload produced no matches; test is vacuous")
	}
	diffTranscripts(t, naive, routed)
}

// churnRun is fanoutRun with live registration churn at exact stream
// positions: a third of the queries register only after a third of the
// stream, and a quarter of the early queries unregister at two thirds.
// Both configurations perform the identical op sequence at the identical
// ingest positions, so their transcripts must agree byte for byte — the
// router index must neither drop nor duplicate deliveries around
// incremental add/remove.
func churnRun(t testing.TB, srcs []string, cfg Config, ecfg core.Config, events []*event.Event) []string {
	t.Helper()
	rt := New(cfg)
	rt.hashSeed = sharedSeed
	var transcript []string
	register := func(i int) QueryID {
		q := query.MustParse(srcs[i])
		id, err := rt.Register(q, ecfg, func(m *core.Match) {
			transcript = append(transcript, fmt.Sprintf("q%03d %s", i, canon(m)))
		})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	late := len(srcs) / 3
	var earlyIDs []QueryID
	for i := 0; i < len(srcs)-late; i++ {
		earlyIDs = append(earlyIDs, register(i))
	}
	third := len(events) / 3
	ingest := func(evs []*event.Event) {
		for _, ev := range evs {
			cp := *ev
			if err := rt.Ingest(&cp); err != nil {
				t.Fatal(err)
			}
		}
	}
	ingest(events[:third])
	for i := len(srcs) - late; i < len(srcs); i++ {
		register(i)
	}
	ingest(events[third : 2*third])
	for i := 0; i < len(earlyIDs); i += 4 {
		if err := rt.Unregister(earlyIDs[i]); err != nil {
			t.Fatal(err)
		}
	}
	ingest(events[2*third:])
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	return transcript
}

// TestRouterRegisterUnregisterMidStream extends the plan-switch
// duplicate-free guarantees to the router layer: index updates at exact
// stream positions must not drop or duplicate deliveries.
func TestRouterRegisterUnregisterMidStream(t *testing.T) {
	srcs := fanoutQuerySrcs(90, 12)
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 64}
	events := stockStream(6000, 12, 41)
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			base := Config{Shards: shards, BatchSize: 100}
			naiveCfg, routedCfg := base, base
			naiveCfg.NaiveFanout = true
			naive := churnRun(t, srcs, naiveCfg, ecfg, events)
			routed := churnRun(t, srcs, routedCfg, ecfg, events)
			if len(naive) == 0 {
				t.Fatal("workload produced no matches; test is vacuous")
			}
			diffTranscripts(t, naive, routed)
		})
	}
}

// TestRouterDeliveryReduction sanity-checks the point of the exercise: on
// a parameterized per-symbol workload the router must deliver far fewer
// (engine, event) pairs than naive fan-out while producing identical
// results (covered above). With 16 symbols and per-symbol queries, the
// expected reduction is ~16x; assert a conservative 4x.
func TestRouterDeliveryReduction(t *testing.T) {
	srcs := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		sym := fmt.Sprintf("S%02d", i%16)
		srcs = append(srcs, fmt.Sprintf(`PATTERN A; B
			WHERE A.name = '%s' AND B.name = '%s' AND B.price < A.price - 90
			WITHIN 40 units`, sym, sym))
	}
	events := stockStream(3000, 16, 9)
	rt := New(Config{Shards: 2, BatchSize: 128})
	for _, src := range srcs {
		if _, err := rt.Register(query.MustParse(src), core.Config{BatchSize: 64}, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, ev := range events {
		cp := *ev
		if err := rt.Ingest(&cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	naiveDeliveries := st.EventsIngested * 64
	if st.EngineDeliveries == 0 {
		t.Fatal("no deliveries counted")
	}
	if st.EngineDeliveries*4 > naiveDeliveries {
		t.Errorf("router delivered %d of %d naive pairs (%.1fx reduction), want >= 4x",
			st.EngineDeliveries, naiveDeliveries, float64(naiveDeliveries)/float64(st.EngineDeliveries))
	}
}

// TestRouterStarvedReordererDoesNotStallWatermark: a routed engine with a
// reordering stage (MaxDisorder) that stops receiving admitted events must
// not pin the merge watermark — its reorder clock has to follow the shard
// stream time so pending events release and MatchHorizon advances. With
// the bug this guards against, the co-registered query's matches would
// only be delivered at Close.
func TestRouterStarvedReordererDoesNotStallWatermark(t *testing.T) {
	rt := New(Config{Shards: 1, BatchSize: 16})
	rare := query.MustParse(`PATTERN A; B
		WHERE A.name = 'RARE' AND B.name = 'RARE' AND B.price > A.price
		WITHIN 10 units RETURN A, B`)
	if _, err := rt.Register(rare, core.Config{BatchSize: 16, MaxDisorder: 50}, nil); err != nil {
		t.Fatal(err)
	}
	busy := query.MustParse(`PATTERN A; B
		WHERE A.name = 'IBM' AND B.name = 'IBM' AND B.price > A.price
		WITHIN 50 units RETURN A, B`)
	var delivered atomic.Uint64
	if _, err := rt.Register(busy, core.Config{BatchSize: 16}, func(*core.Match) {
		delivered.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	// One RARE event parks in the rare engine's reorder heap; only IBM
	// events (which the router never delivers to the rare engine) follow.
	if err := rt.Ingest(event.NewStock(0, 1, 0, "RARE", 10, 1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := rt.Ingest(event.NewStock(0, int64(2+i), int64(i), "IBM", float64(i%100), 1)); err != nil {
			t.Fatal(err)
		}
	}
	// The merger must deliver the IBM matches without waiting for Close.
	deadline := time.Now().Add(10 * time.Second)
	for delivered.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if delivered.Load() == 0 {
		t.Error("no matches delivered while the starved reorder engine is live; watermark stalled")
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if delivered.Load() == 0 {
		t.Fatal("workload produced no matches at all; test is vacuous")
	}
}
