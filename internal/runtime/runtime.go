package runtime

import (
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"math"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/faultinject"
	"repro/internal/query"
	"repro/internal/router"
	"repro/internal/wal"
)

// QueryID identifies a registered query within one Runtime.
type QueryID int64

// Errors returned by Runtime methods.
var (
	// ErrClosed is returned by Ingest/Register/Unregister after Close.
	ErrClosed = errors.New("runtime: closed")
	// ErrOutOfOrder is returned by Ingest for an event whose timestamp
	// precedes an already ingested one.
	ErrOutOfOrder = errors.New("runtime: event timestamps must be non-decreasing")
	// ErrUnknownQuery is returned by Unregister for an id that is not live.
	ErrUnknownQuery = errors.New("runtime: unknown query id")
)

// UnknownQueryError carries the id Unregister or Explain did not find. It
// matches ErrUnknownQuery under errors.Is.
type UnknownQueryError struct {
	ID QueryID
}

func (e *UnknownQueryError) Error() string {
	return fmt.Sprintf("runtime: unknown query id %d", e.ID)
}

// Is reports target == ErrUnknownQuery so errors.Is works unwrapped.
func (e *UnknownQueryError) Is(target error) bool { return target == ErrUnknownQuery }

// OutOfOrderError carries the regressing timestamp Ingest rejected and the
// stream time it regressed behind. It matches ErrOutOfOrder under
// errors.Is.
type OutOfOrderError struct {
	// Ts is the rejected event's timestamp; Last the largest timestamp
	// already ingested.
	Ts, Last int64
}

func (e *OutOfOrderError) Error() string {
	return fmt.Sprintf("runtime: event timestamps must be non-decreasing: got ts %d after %d", e.Ts, e.Last)
}

// Is reports target == ErrOutOfOrder so errors.Is works unwrapped.
func (e *OutOfOrderError) Is(target error) bool { return target == ErrOutOfOrder }

// Config tunes a Runtime.
type Config struct {
	// Shards is the number of worker goroutines (and stream partitions).
	// Default GOMAXPROCS(0).
	Shards int
	// PartitionBy names the event attribute whose value routes an event to
	// a shard. Default "name" (the paper's stock symbol). Events lacking
	// the attribute hash the null value and all land in one shard.
	PartitionBy string
	// BatchSize is the number of events the ingest side accumulates
	// (across all shards) before flushing one batch per shard to the
	// workers. Default 256.
	BatchSize int
	// QueueLen is the per-worker input queue depth in batches; when a
	// worker falls behind, Ingest blocks once its queue is full
	// (backpressure). Default 8.
	QueueLen int
	// NaiveFanout disables the predicate-indexed router: every event is
	// delivered to every registered engine, the pre-PR3 behavior. Kept for
	// differential testing (and as an escape hatch); the router is
	// semantics-preserving, so production runs should leave this false.
	NaiveFanout bool
	// NoRangeDispatch reverts the router to generation-1 behavior: range
	// atoms (`attr > const` etc.) are interned as residual predicates and
	// evaluated once per distinct constant per event instead of compiling
	// into sorted-threshold tables. Semantics-preserving; exists for
	// differential testing and benchmarking the gen-2 win.
	NoRangeDispatch bool
	// NoSharing disables cross-query execution sharing: whole-query dedupe
	// (textually identical queries aliased onto one engine with match
	// fan-out) and shared-subplan prefixes (identical canonical class
	// prefixes materialized once per shard). Sharing is semantics-
	// preserving — match transcripts are byte-identical either way — so
	// this knob exists for differential testing and as an escape hatch.
	NoSharing bool
	// Overload selects the ingest-side behavior when a worker queue is
	// full. Default OverloadBlock (backpressure, never sheds).
	Overload OverloadPolicy
	// OverloadTimeout bounds the wait under OverloadBlockWithTimeout.
	// Default 50ms.
	OverloadTimeout time.Duration
	// Injector, when non-nil, threads the deterministic fault-injection
	// harness through every worker dispatch boundary and the merger's
	// emit path (chaos tests only; production leaves it nil and pays one
	// nil check per dispatch).
	Injector *faultinject.Injector
	// Durability, when non-nil, enables the write-ahead event log and
	// batch-boundary checkpoints (see DurConfig). Durable runtimes are
	// constructed with NewDurable, which also performs crash recovery;
	// New ignores this field.
	Durability *DurConfig
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = stdruntime.GOMAXPROCS(0)
	}
	if c.PartitionBy == "" {
		c.PartitionBy = "name"
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 8
	}
	if c.OverloadTimeout <= 0 {
		c.OverloadTimeout = 50 * time.Millisecond
	}
	return c
}

// Stats aggregates runtime counters. Engine sums the per-shard engine
// snapshots of every query ever registered (PeakMemBytes sums per-engine
// peaks, an upper bound on the true simultaneous peak).
type Stats struct {
	Shards      int
	LiveQueries int
	// EngineGroups counts distinct physical engine groups: with whole-
	// query dedupe, textually identical queries share one group, so
	// LiveQueries - EngineGroups is the number of aliased (free-riding)
	// queries.
	EngineGroups int
	// SharedSubplans counts live shared-prefix producers (one logical
	// producer per prefix family; each is instantiated on every shard).
	// SharedPrefixConsumers is the number of engine groups reading them
	// instead of buffering and joining their prefix privately.
	SharedSubplans        int
	SharedPrefixConsumers int
	// QuarantinedQueries counts registered queries removed from execution
	// by a contained fault (not included in LiveQueries); Faults counts
	// fault records ever made, including quarantined queries since
	// unregistered. See Runtime.Faults for the records themselves.
	QuarantinedQueries int
	Faults             uint64
	// EventsShed counts events dropped at the ingest queue boundary by
	// the overload policy or an expired ingest/drain deadline, never
	// reaching their shard; ShedByShard breaks the count down per shard.
	EventsShed       uint64
	ShedByShard      []uint64
	EventsIngested   uint64
	MatchesDelivered uint64
	// EngineDeliveries counts (engine, event) deliveries across all
	// shards. The naive path delivers every event to every live engine;
	// the router only to engines with at least one admitting class, so
	// EngineDeliveries / EventsIngested is the effective fan-out.
	EngineDeliveries uint64
	Engine           core.EngineStats
	// WALEnabled reports whether the write-ahead log is configured AND
	// still active (a WALDegrade error clears it); WALErrors counts WAL
	// failures observed, WALSuppressed the replayed matches withheld at or
	// below the recovered emit watermark, and WALTruncatedBytes the torn
	// tail recovery cut from the log. WAL aggregates the writer's own
	// counters (appends, fsyncs, segments, pruning).
	WALEnabled        bool
	WALErrors         uint64
	WALSuppressed     uint64
	WALTruncatedBytes int64
	WAL               wal.WriterStats
}

// registered tracks one live query: which engine group it belongs to, and
// whether a contained fault has quarantined it (the group is gone then,
// but the entry stays so Unregister of the dead id still works and a
// re-registration of the same query text gets a fresh group).
type registered struct {
	id          QueryID
	key         groupKey
	quarantined bool
	// src, coreCfg, regSeq and window feed checkpoint records when the
	// durability plane is on: the normalized query text, the engine config
	// it was registered with, the ingest seq at registration, and the
	// WITHIN window in ticks. Zero-valued when durability is off.
	src     string
	coreCfg core.Config
	regSeq  uint64
	window  int64
}

// groupKey identifies an engine group: the whole-query canonical
// fingerprint plus the exact engine configuration. Queries that are not
// canonicalizable (or registered with NoSharing) get a unique synthetic
// key, so every group — deduped or not — lives in the same registry.
type groupKey struct {
	fp  string
	cfg core.Config
}

// groupState is one engine group: the per-shard physical engines shared by
// every query aliased onto the group, plus the group's role in a prefix-
// sharing family.
type groupState struct {
	gid     int64
	members int
	regSeq  uint64         // ingest sequence stamp at group creation
	engines []*core.Engine // one per shard
	// prefixKey is the canonical prefix fingerprint when the group's query
	// has a shareable prefix ("" otherwise); consumer marks whether the
	// group reads the family's shared producer (vs running the prefix
	// privately as the family's first registrant).
	prefixKey string
	consumer  bool
}

// prefixState tracks one prefix-sharing family: how many live groups run
// the prefix privately (the family's first registrant), how many consume
// the shared producer, and the per-shard producers themselves (created
// when the first consumer registers).
type prefixState struct {
	prods     []*core.Subplan // one per shard; nil until a consumer exists
	prodID    int64
	prodInfo  *query.Info
	solos     int
	consumers int
}

// Runtime hosts many queries concurrently over one partitioned stream.
type Runtime struct {
	cfg      Config
	hashSeed maphash.Seed
	workers  []*worker
	mergeCh  chan mergeMsg
	merger   chan struct{} // closed when the merger goroutine exits

	ingested    atomic.Uint64
	delivered   atomic.Uint64
	engineDeliv atomic.Uint64
	shed        []atomic.Uint64 // per-shard overload-shed event counts

	// faults collects contained panics from workers and the merger; the
	// next mu-holding API call reaps them into the registry (workers
	// never take mu themselves).
	faults *faultSink

	// mu serializes Ingest, Register, Unregister and Close with each
	// other; the per-shard pending batches and registry below are guarded
	// by it. Workers and the merger never take it, and it is NOT held
	// while sending to worker queues — backpressure blocks only sendMu,
	// so Stats stays responsive while a slow shard catches up.
	mu         sync.Mutex
	closed     bool
	nextID     QueryID
	nextProdID int64 // negative, so producer ids never collide with group ids
	live       map[QueryID]*registered
	groups     map[groupKey]*groupState
	prefixes   map[string]*prefixState
	retired    core.EngineStats // folded counters of unregistered queries
	pending    [][]*event.Event
	// pendingSpare is the second outer batch array of the double buffer:
	// sendLocked swaps it in so a flush allocates neither the outer array
	// nor (thanks to event.GetBatch) the per-shard slices.
	pendingSpare [][]*event.Event
	nPend        int
	lastTs       int64
	lastSeq      uint64 // global arrival sequence stamp (see Ingest)

	// sendMu serializes the worker-queue send phases. It is only ever
	// acquired while holding mu (and released after mu is dropped), which
	// keeps send phases in mu-decision order and makes it impossible for
	// a Register/Ingest send to race Close's channel close.
	sendMu sync.Mutex

	// Durability plane (all zero/nil when Config.Durability is off; see
	// durable.go). wal is the write-ahead log writer; walPend mirrors the
	// current flush's events in ingest order, appended as one batch record
	// before the workers see them. walActive clears when a WAL error
	// degrades the runtime to memory-only (WALDegrade policy). walSeed and
	// walHash switch shard() to the deterministic replayable hash.
	wal          *wal.Writer
	walPend      []*event.Event
	walActive    atomic.Bool
	walSeed      uint64
	walHash      bool
	walErrs      atomic.Uint64
	walFaultsMu  sync.Mutex
	walFaults    []WALFault
	walTruncated int64
	sinceCkpt    int

	// Merger-side exactly-once state: wmEnd/wmCount mirror the durable
	// emit watermark (read by checkpoint assembly); suppressed counts
	// replayed matches withheld at or below the recovered watermark. The
	// sup* fields are the recovery-time suppression cursor, written before
	// the merger can observe any match and then touched only on the merger
	// goroutine. crashing tells workers to skip the final flush (crash
	// simulation test hook).
	wmEnd      atomic.Int64
	wmCount    atomic.Uint64
	suppressed atomic.Uint64
	supEnd     int64
	supCount   uint64
	supSeen    uint64
	supActive  bool
	crashing   atomic.Bool
}

// New creates a Runtime and starts its worker and merger goroutines.
func New(cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	rt := &Runtime{
		cfg:      cfg,
		hashSeed: maphash.MakeSeed(),
		mergeCh:  make(chan mergeMsg, cfg.Shards*cfg.QueueLen+cfg.Shards),
		merger:   make(chan struct{}),
		live:     map[QueryID]*registered{},
		groups:   map[groupKey]*groupState{},
		prefixes: map[string]*prefixState{},
		pending:  make([][]*event.Event, cfg.Shards),
		lastTs:   math.MinInt64 / 2,
		shed:     make([]atomic.Uint64, cfg.Shards),
		faults:   newFaultSink(),
	}
	rt.pendingSpare = make([][]*event.Event, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		w := &worker{id: i, in: make(chan shardMsg, cfg.QueueLen), delivered: &rt.engineDeliv,
			byGID: map[int64]*engineGroup{}, byProdID: map[int64]*prodEntry{},
			faults: rt.faults, inj: cfg.Injector, crashing: &rt.crashing}
		if !cfg.NaiveFanout {
			w.router = router.New()
			if cfg.NoRangeDispatch {
				w.router.DisableRangeDispatch()
			}
		}
		rt.workers = append(rt.workers, w)
		go w.run(rt.mergeCh)
	}
	go rt.runMerger()
	return rt
}

// Register adds a query to every shard and returns its id. The per-shard
// engines are constructed synchronously, so a bad query or config fails
// here, before any goroutine sees it; emit (may be nil) then receives the
// query's matches from the merger goroutine in global end-time order. The
// query starts observing events ingested after Register returns.
//
// Unless Config.NoSharing is set, registration shares execution with
// already-live queries where provably safe:
//
//   - A query whose canonical fingerprint and engine configuration match a
//     live group is aliased onto that group's engines (whole-query
//     dedupe); its matches are fanned out from the shared engine, byte-
//     identical to what a private engine would have emitted.
//   - A query with a shareable canonical class prefix (core.SharedPrefixLen)
//     joins its prefix family: the family's first registrant runs the
//     prefix privately, and from the second registrant on, one shared
//     subplan per shard materializes the prefix once for all consumers.
func (rt *Runtime) Register(q *query.Query, cfg core.Config, emit func(*core.Match)) (QueryID, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return 0, ErrClosed
	}
	if rt.faults.dirty.Load() {
		// Apply pending quarantines first, so dedupe can never alias the
		// new query onto a faulted group still lingering in the registry.
		rt.reapFaultsLocked(true)
	}
	rt.nextID++
	id, err := rt.registerLocked(rt.nextID, q, cfg, emit)
	if err == nil && rt.wal != nil && rt.walActive.Load() {
		// A checkpoint at every registration boundary keeps the durable
		// query set current; recovery re-registers at the recorded seq.
		if werr := rt.noteWALError(rt.writeCheckpointLocked()); werr != nil {
			// Fail-stop: the registration itself committed, but the runtime
			// has lost durability — surface it.
			return id, werr
		}
	}
	return id, err
}

// registerLocked is the Register body, taking the id to assign so recovery
// can re-register checkpointed queries under their original ids. Callers
// hold mu.
func (rt *Runtime) registerLocked(id QueryID, q *query.Query, cfg core.Config, emit func(*core.Match)) (QueryID, error) {
	ts := rt.lastTs   // captured under mu: the op closures run unlocked
	seq := rt.lastSeq // registration visibility barrier for shared readers

	key := groupKey{fp: fmt.Sprintf("!unique:%d", id), cfg: cfg}
	if !rt.cfg.NoSharing {
		if fp, ok := query.FingerprintQuery(q); ok {
			key.fp = fp
		}
	}

	// Whole-query dedupe: alias onto a live identical group — but only a
	// cold one. Aliasing is exact only when the host engines hold no
	// state: a warm engine's buffered window embeds pre-registration
	// events, so its future matches (and, under negation or closure, its
	// suppressions) can differ from what a fresh private engine would
	// produce. regSeq == lastSeq means no event was ingested since the
	// group registered, i.e. its engines are still empty — the common
	// register-the-fleet-then-ingest case always qualifies, and identical
	// queries registered back-to-back mid-stream still collapse.
	if gs := rt.groups[key]; gs != nil {
		if gs.regSeq == rt.lastSeq {
			gs.members++
			rt.live[id] = rt.newRegisteredLocked(id, key, q, cfg, seq)
			rt.sendLocked(func(int) shardMsg {
				return shardMsg{ts: ts, reg: &regOp{id: id, gid: gs.gid, emit: emit, seq: seq}}
			})
			return id, nil
		}
		// A live identical group exists but is warm: the new query gets
		// its own group under a synthetic key, so it never clobbers the
		// live group's registry entry.
		key.fp = fmt.Sprintf("!unique:%d", id)
	}

	// New group. Decide the prefix-sharing role first (without mutating
	// registry state), then construct engines — and producers if this
	// registration creates them — so errors leave the registry untouched.
	prefixKey := ""
	consumer := false
	var ps *prefixState
	var newProds []*core.Subplan
	var prodInfo *query.Info
	var prodID int64
	k := 0
	if !rt.cfg.NoSharing {
		if k = core.SharedPrefixLen(q, cfg); k > 0 {
			if pfp, ok := query.PrefixFingerprint(q, k); ok {
				prefixKey = pfp
				ps = rt.prefixes[pfp]
				consumer = ps != nil && (ps.prods != nil || ps.solos > 0 || ps.consumers > 0)
			}
		}
	}
	if consumer && ps.prods == nil {
		pq, err := query.PrefixQuery(q, k)
		if err != nil {
			return 0, fmt.Errorf("runtime: register: %w", err)
		}
		newProds = make([]*core.Subplan, rt.cfg.Shards)
		for i := range newProds {
			sp, err := core.NewSubplan(pq, cfg.UseHash)
			if err != nil {
				return 0, fmt.Errorf("runtime: register: %w", err)
			}
			newProds[i] = sp
		}
		prodInfo = pq.Info
	}

	engines := make([]*core.Engine, rt.cfg.Shards)
	sinks := make([]*matchSink, rt.cfg.Shards)
	for i := range engines {
		s := &matchSink{}
		var eng *core.Engine
		var err error
		if consumer {
			eng, err = core.NewEngineSharedPrefix(q, cfg, k, s.add)
		} else {
			eng, err = core.NewEngine(q, cfg, s.add)
		}
		if err != nil {
			return 0, fmt.Errorf("runtime: register: %w", err)
		}
		engines[i], sinks[i] = eng, s
	}

	// Commit registry state.
	if prefixKey != "" {
		if ps == nil {
			ps = &prefixState{}
			rt.prefixes[prefixKey] = ps
		}
		if consumer {
			if newProds != nil {
				rt.nextProdID--
				ps.prods, ps.prodID, ps.prodInfo = newProds, rt.nextProdID, prodInfo
			}
			ps.consumers++
			prodID = ps.prodID
			prodInfo = ps.prodInfo
		} else {
			ps.solos++
		}
	}
	gs := &groupState{gid: int64(id), members: 1, regSeq: seq, engines: engines, prefixKey: prefixKey, consumer: consumer}
	rt.groups[key] = gs
	rt.live[id] = rt.newRegisteredLocked(id, key, q, cfg, seq)

	prods := newProds
	routerInfo := q.Info
	if consumer {
		// A consumer's prefix admission is fully delegated to the shared
		// producer (which subscribes with exactly the prefix predicates),
		// and its shadow leaves would discard prefix deliveries anyway: a
		// suffix-only subscription keeps prefix-only events from touching
		// the consumer's engine at all. ClassInfo.Idx values are retained,
		// so admission masks still align with the full plan's class bits.
		routerInfo = &query.Info{Classes: q.Info.Classes[k:], Preds: q.Info.Preds}
	}
	// Flush buffered events first so the registration point is exact with
	// respect to Ingest order; the op rides the same send phase.
	rt.sendLocked(func(i int) shardMsg {
		op := &regOp{id: id, gid: gs.gid, info: routerInfo, eng: engines[i], sink: sinks[i],
			emit: emit, seq: seq, prodID: prodID}
		if prods != nil {
			op.prod, op.prodInfo = prods[i], prodInfo
		}
		return shardMsg{ts: ts, reg: op}
	})
	return id, nil
}

// Unregister removes a live query. When it is the last query of its engine
// group, the group's engines are dropped without a final flush: partial
// matches pending inside the window are discarded, while matches already
// emitted are still delivered. Events ingested before Unregister returns
// are still evaluated by the query. Unregistering a quarantined id
// succeeds and removes its registry entry (the fault record stays
// inspectable via Faults).
func (rt *Runtime) Unregister(id QueryID) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return ErrClosed
	}
	if rt.faults.dirty.Load() {
		rt.reapFaultsLocked(true)
	}
	reg, ok := rt.live[id]
	if !ok {
		return &UnknownQueryError{ID: id}
	}
	if reg.quarantined {
		// The group (and all worker-side state) is already gone; only the
		// registry entry remains.
		delete(rt.live, id)
		return nil
	}
	ts := rt.lastTs // captured under mu: the op closure runs unlocked
	rt.sendLocked(func(int) shardMsg { return shardMsg{ts: ts, unreg: id} })
	delete(rt.live, id)
	gs := rt.groups[reg.key]
	gs.members--
	if gs.members == 0 {
		rt.dropGroupLocked(reg.key, gs)
	}
	if rt.wal != nil && rt.walActive.Load() {
		// Record the shrunken query set so recovery does not resurrect the
		// unregistered query.
		if werr := rt.noteWALError(rt.writeCheckpointLocked()); werr != nil {
			return werr
		}
	}
	return nil
}

// dropGroupLocked removes one engine group's registry entry: its engine
// counters are folded into the retired accumulator (so Stats stays
// cumulative without keeping dead engines — and their buffered windows —
// alive; workers may process a final in-flight batch after this snapshot,
// those last few events go uncounted) and its prefix-family bookkeeping is
// unwound. The family bookkeeping mirrors the workers': when the last
// consumer leaves, the per-shard producers are dropped (worker-side, by
// reader refcount); a later family member starts a fresh producer. Callers
// hold mu.
func (rt *Runtime) dropGroupLocked(key groupKey, gs *groupState) {
	for _, e := range gs.engines {
		s := e.Snapshot()
		rt.retired.Matches += s.Matches
		rt.retired.Rounds += s.Rounds
		rt.retired.PlanSwitches += s.PlanSwitches
		rt.retired.PeakMemBytes += s.PeakMemBytes
		rt.retired.Events += s.Events
	}
	delete(rt.groups, key)
	if gs.prefixKey == "" {
		return
	}
	ps := rt.prefixes[gs.prefixKey]
	if ps == nil {
		return
	}
	if gs.consumer {
		ps.consumers--
		if ps.consumers == 0 {
			ps.prods, ps.prodID, ps.prodInfo = nil, 0, nil
		}
	} else {
		ps.solos--
	}
	if ps.solos == 0 && ps.consumers == 0 {
		delete(rt.prefixes, gs.prefixKey)
	}
}

// Ingest feeds one event. Timestamps must be non-decreasing; the event's
// Seq is overwritten with a globally monotone arrival stamp here, and every
// shard engine then shares the event without copying (engines adopt
// pre-stamped sequence numbers and treat the event as immutable), so the
// caller must not reuse or mutate the event afterwards. Ingest blocks when
// a worker queue is full (backpressure) and is safe to call concurrently
// with Register/Unregister/Stats, though multi-producer ingest needs
// external ordering to keep timestamps monotone.
func (rt *Runtime) Ingest(ev *event.Event) error {
	return rt.ingest(nil, ev)
}

// ingest is the shared Ingest/IngestContext body; a nil ctx never expires.
func (rt *Runtime) ingest(ctx context.Context, ev *event.Event) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return ErrClosed
	}
	if rt.faults.dirty.Load() {
		rt.reapFaultsLocked(true)
	}
	if ev.Ts < rt.lastTs {
		return &OutOfOrderError{Ts: ev.Ts, Last: rt.lastTs}
	}
	rt.lastTs = ev.Ts
	rt.lastSeq++
	ev.Seq = rt.lastSeq
	if rt.wal != nil && rt.walActive.Load() {
		// Mirror the event in ingest order; the flush appends the mirror as
		// one write-ahead batch record before any worker sees the events.
		rt.walPend = append(rt.walPend, ev)
	}
	s := rt.shard(ev)
	if rt.pending[s] == nil {
		rt.pending[s] = event.GetBatch()
	}
	rt.pending[s] = append(rt.pending[s], ev)
	rt.nPend++
	rt.ingested.Add(1)
	if rt.nPend >= rt.cfg.BatchSize {
		return rt.sendLockedCtx(ctx, nil)
	}
	return nil
}

// shard routes an event by hashing its partition-key attribute. Durable
// runtimes use a deterministic hash under a persisted seed so recovery
// replays events to exactly the shards that saw them originally; the
// default random per-process maphash seed would scatter them.
func (rt *Runtime) shard(ev *event.Event) int {
	if rt.cfg.Shards == 1 {
		return 0
	}
	if rt.walHash {
		return durableShard(ev.Get(rt.cfg.PartitionBy), rt.walSeed, rt.cfg.Shards)
	}
	var h maphash.Hash
	h.SetSeed(rt.hashSeed)
	v := ev.Get(rt.cfg.PartitionBy)
	switch v.Kind {
	case event.KindString:
		h.WriteString(v.S)
	case event.KindFloat:
		var b [8]byte
		u := math.Float64bits(v.F)
		for i := range b {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	return int(h.Sum64() % uint64(rt.cfg.Shards))
}

// sendLocked flushes every shard's pending batch — an empty batch is a
// heartbeat carrying the current stream time, which keeps idle shards'
// watermarks advancing so the ordered merge never stalls on a cold
// shard — followed by one op message per worker when op is non-nil.
//
// It must be called with mu held and returns with mu held, but drops it
// for the blocking channel sends: only sendMu (acquired under mu, so
// send phases run in decision order) is held while backpressure bites.
func (rt *Runtime) sendLocked(op func(shard int) shardMsg) {
	_ = rt.sendLockedCtx(nil, op)
}

// sendLockedCtx is sendLocked with overload/deadline handling on the event
// flush: each shard's batch goes through sendBatch (which applies the
// overload policy and ctx), while op messages always block — registry
// operations are never shed. Returns the first context-expiry error; shard
// batches after an expiry are shed and counted, so one flush never
// half-blocks.
func (rt *Runtime) sendLockedCtx(ctx context.Context, op func(shard int) shardMsg) error {
	batches := rt.pending
	ts := rt.lastTs
	flush := rt.nPend > 0 || ts != math.MinInt64/2
	if !flush && op == nil {
		return nil
	}
	// Double-buffer the outer array: the spare is all-nil. It can be nil
	// itself when a second flush overlaps an in-flight send (mu is dropped
	// below); allocate then.
	if rt.pendingSpare != nil {
		rt.pending = rt.pendingSpare
		rt.pendingSpare = nil
	} else {
		rt.pending = make([][]*event.Event, rt.cfg.Shards)
	}
	rt.nPend = 0
	var wp []*event.Event
	if rt.wal != nil && len(rt.walPend) > 0 {
		wp, rt.walPend = rt.walPend, nil
	}

	rt.sendMu.Lock()
	rt.mu.Unlock()
	var err error
	var walErr error
	if wp != nil {
		// Write-ahead: the batch record must be durable (to the OS at
		// least) before any worker can act on the events. Under fail-stop
		// a failed append sheds the whole flush — the events were never
		// durable, so they must not be processed either.
		walErr = rt.wal.AppendBatch(wp)
	}
	failStop := walErr != nil && rt.cfg.Durability.OnWALError == WALFailStop
	for i, w := range rt.workers {
		if flush {
			if err != nil || failStop {
				rt.shedBatch(i, batches[i])
			} else if e := rt.sendBatch(ctx, w, i, shardMsg{events: batches[i], ts: ts}); e != nil {
				err = e
			}
		}
		if op != nil {
			w.in <- op(i)
		}
	}
	rt.sendMu.Unlock()
	rt.mu.Lock()
	// The batch slices now belong to the workers (returned to the shared
	// pool there); the outer array is reusable once its entries are nil.
	clear(batches)
	if rt.pendingSpare == nil {
		rt.pendingSpare = batches
	}
	if wp != nil {
		nWAL := len(wp)
		clear(wp)
		if rt.walPend == nil {
			rt.walPend = wp[:0]
		}
		if walErr != nil {
			if werr := rt.noteWALError(walErr); werr != nil && err == nil {
				err = werr
			}
		} else if rt.walActive.Load() {
			rt.sinceCkpt += nWAL
			if rt.sinceCkpt >= rt.cfg.Durability.CheckpointEvery {
				if werr := rt.noteWALError(rt.writeCheckpointLocked()); werr != nil && err == nil {
					err = werr
				}
			}
		}
	}
	return err
}

// Close flushes buffered events, final-flushes every engine (emitting all
// remaining matches, including trailing negations and closures), waits for
// the merger to drain, and stops all goroutines. It is idempotent; Ingest,
// Register and Unregister fail with ErrClosed afterwards.
func (rt *Runtime) Close() error {
	_, err := rt.closeCtx(nil)
	return err
}

// closeCtx is the shared Close/CloseContext body; a nil ctx never expires,
// so the drain is unbounded (plain Close).
func (rt *Runtime) closeCtx(ctx context.Context) (DrainReport, error) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		select {
		case <-rt.merger:
			return DrainReport{Complete: true}, nil
		case <-done:
			return DrainReport{}, ctx.Err()
		}
	}
	if rt.faults.dirty.Load() {
		// The worker channels are still open here, so the quarantine
		// broadcast goes through: shards drop faulted engines before the
		// final flush, keeping a quarantined query's partial matches out
		// of the drained output.
		rt.reapFaultsLocked(true)
	}
	rt.closed = true
	batches := rt.pending
	ts := rt.lastTs
	flush := rt.nPend > 0 || ts != math.MinInt64/2
	rt.pending = make([][]*event.Event, rt.cfg.Shards)
	rt.nPend = 0
	var wp []*event.Event
	if rt.wal != nil && len(rt.walPend) > 0 {
		wp, rt.walPend = rt.walPend, nil
	}
	shedBefore := rt.shedTotal()
	// Channels are closed inside the sendMu phase, after any in-flight
	// Register/Ingest send completes; closed (set under mu above) stops
	// later callers before they reach a send.
	rt.sendMu.Lock()
	rt.mu.Unlock()
	var walErr error
	if wp != nil {
		// The final flush obeys the same write-ahead discipline as every
		// other one: log first, and under fail-stop shed what never became
		// durable.
		walErr = rt.wal.AppendBatch(wp)
	}
	walShed := walErr != nil && rt.cfg.Durability.OnWALError == WALFailStop
	for i, w := range rt.workers {
		if flush {
			if walShed {
				rt.shedBatch(i, batches[i])
			} else {
				// Past the deadline sendBatch sheds rather than blocks; the
				// channels are closed regardless, so workers always terminate.
				_ = rt.sendBatch(ctx, w, i, shardMsg{events: batches[i], ts: ts})
			}
		}
		close(w.in)
	}
	rt.sendMu.Unlock()
	if walErr != nil {
		_ = rt.noteWALError(walErr)
	}
	rep := DrainReport{}
	var err error
	select {
	case <-rt.merger:
		rep.Complete = true
	case <-done:
		err = ctx.Err()
	}
	if rt.wal != nil && rep.Complete {
		// Merger drained: the emit watermark covers every delivered match.
		// A final checkpoint at the closed position makes a clean restart
		// replay-and-suppress everything (no duplicate output).
		rt.mu.Lock()
		if rt.walActive.Load() {
			_ = rt.noteWALError(rt.writeCheckpointLocked())
		}
		rt.mu.Unlock()
		if cerr := rt.noteWALError(rt.wal.Close()); cerr != nil && err == nil {
			err = cerr
		}
	}
	rep.EventsShed = rt.shedTotal() - shedBefore
	return rep, err
}

// Stats returns aggregated counters; safe to call at any time, including
// while workers are processing (engine snapshots are atomic, and worker
// backpressure never holds mu). Engine counters cover live engine groups
// (each physical engine once, no matter how many queries alias it) plus
// the totals unregistered groups had accumulated when they were removed.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	if !rt.closed && rt.faults.dirty.Load() {
		rt.reapFaultsLocked(true)
	}
	engines := make([]*core.Engine, 0, len(rt.groups)*rt.cfg.Shards)
	nConsumers := 0
	for _, gs := range rt.groups {
		engines = append(engines, gs.engines...)
		if gs.consumer {
			nConsumers++
		}
	}
	nProds := 0
	for _, ps := range rt.prefixes {
		if ps.prods != nil {
			nProds++
		}
	}
	nQuar := 0
	for _, reg := range rt.live {
		if reg.quarantined {
			nQuar++
		}
	}
	nLive, nGroups := len(rt.live)-nQuar, len(rt.groups)
	agg := rt.retired
	rt.mu.Unlock()
	st := Stats{
		Shards:                rt.cfg.Shards,
		LiveQueries:           nLive,
		EngineGroups:          nGroups,
		SharedSubplans:        nProds,
		SharedPrefixConsumers: nConsumers,
		QuarantinedQueries:    nQuar,
		Faults:                rt.faults.total.Load(),
		ShedByShard:           make([]uint64, rt.cfg.Shards),
		EventsIngested:        rt.ingested.Load(),
		MatchesDelivered:      rt.delivered.Load(),
		EngineDeliveries:      rt.engineDeliv.Load(),
		Engine:                agg,
	}
	for i := range rt.shed {
		n := rt.shed[i].Load()
		st.ShedByShard[i] = n
		st.EventsShed += n
	}
	for _, e := range engines {
		s := e.Snapshot()
		st.Engine.Matches += s.Matches
		st.Engine.Rounds += s.Rounds
		st.Engine.PlanSwitches += s.PlanSwitches
		st.Engine.PeakMemBytes += s.PeakMemBytes
		st.Engine.Events += s.Events
	}
	if rt.wal != nil {
		st.WALEnabled = rt.walActive.Load()
		st.WAL = rt.wal.Stats()
	}
	st.WALErrors = rt.walErrs.Load()
	st.WALSuppressed = rt.suppressed.Load()
	st.WALTruncatedBytes = rt.walTruncated
	return st
}
