// Package runtime is the concurrent multi-query execution layer above
// internal/core: one Runtime hosts many registered queries at once, shards
// the input stream by a partition key across N worker goroutines (each
// owning a per-shard core.Engine instance for every live query), ingests
// events through batched bounded channels with backpressure, and merges the
// per-worker match streams back into a single end-time-ordered output
// (heap-merge driven by per-shard watermarks).
//
// # Partitioned semantics
//
// Every event is routed to exactly one shard by hashing its partition-key
// attribute, and each shard evaluates every query over its substream
// independently. A query is therefore evaluated with partition-local
// semantics: matches combine only events that landed in the same shard.
// For queries whose predicates equate the partition key across all event
// classes (e.g. "T1.name = T2.name AND T2.name = T3.name" when partitioned
// by "name", or the paper's §6.5 web-log query equating IPs when
// partitioned by "ip"), every potential match is key-local, so the merged
// output is exactly the output of a single global engine, for any shard
// count. Queries that join across partition keys see only the shard-local
// subset of those combinations; register those on a Runtime with Shards=1
// (or a plain Engine) instead.
//
// # Ordering
//
// Ingest requires globally non-decreasing timestamps (the same contract as
// core.Engine without a reordering stage). Matches are delivered by a
// single merger goroutine in non-decreasing end-time order across all
// queries and shards; per-query callbacks never run concurrently.
package runtime

import (
	"errors"
	"fmt"
	"hash/maphash"
	"math"
	stdruntime "runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/router"
)

// QueryID identifies a registered query within one Runtime.
type QueryID int64

// Errors returned by Runtime methods.
var (
	// ErrClosed is returned by Ingest/Register/Unregister after Close.
	ErrClosed = errors.New("runtime: closed")
	// ErrOutOfOrder is returned by Ingest for an event whose timestamp
	// precedes an already ingested one.
	ErrOutOfOrder = errors.New("runtime: event timestamps must be non-decreasing")
	// ErrUnknownQuery is returned by Unregister for an id that is not live.
	ErrUnknownQuery = errors.New("runtime: unknown query id")
)

// Config tunes a Runtime.
type Config struct {
	// Shards is the number of worker goroutines (and stream partitions).
	// Default GOMAXPROCS(0).
	Shards int
	// PartitionBy names the event attribute whose value routes an event to
	// a shard. Default "name" (the paper's stock symbol). Events lacking
	// the attribute hash the null value and all land in one shard.
	PartitionBy string
	// BatchSize is the number of events the ingest side accumulates
	// (across all shards) before flushing one batch per shard to the
	// workers. Default 256.
	BatchSize int
	// QueueLen is the per-worker input queue depth in batches; when a
	// worker falls behind, Ingest blocks once its queue is full
	// (backpressure). Default 8.
	QueueLen int
	// NaiveFanout disables the predicate-indexed router: every event is
	// delivered to every registered engine, the pre-PR3 behavior. Kept for
	// differential testing (and as an escape hatch); the router is
	// semantics-preserving, so production runs should leave this false.
	NaiveFanout bool
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = stdruntime.GOMAXPROCS(0)
	}
	if c.PartitionBy == "" {
		c.PartitionBy = "name"
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 8
	}
	return c
}

// Stats aggregates runtime counters. Engine sums the per-shard engine
// snapshots of every query ever registered (PeakMemBytes sums per-engine
// peaks, an upper bound on the true simultaneous peak).
type Stats struct {
	Shards           int
	LiveQueries      int
	EventsIngested   uint64
	MatchesDelivered uint64
	// EngineDeliveries counts (engine, event) deliveries across all
	// shards. The naive path delivers every event to every live engine;
	// the router only to engines with at least one admitting class, so
	// EngineDeliveries / EventsIngested is the effective fan-out.
	EngineDeliveries uint64
	Engine           core.EngineStats
}

// registered tracks one live query.
type registered struct {
	id      QueryID
	engines []*core.Engine // one per shard
}

// Runtime hosts many queries concurrently over one partitioned stream.
type Runtime struct {
	cfg      Config
	hashSeed maphash.Seed
	workers  []*worker
	mergeCh  chan mergeMsg
	merger   chan struct{} // closed when the merger goroutine exits

	ingested    atomic.Uint64
	delivered   atomic.Uint64
	engineDeliv atomic.Uint64

	// mu serializes Ingest, Register, Unregister and Close with each
	// other; the per-shard pending batches and registry below are guarded
	// by it. Workers and the merger never take it, and it is NOT held
	// while sending to worker queues — backpressure blocks only sendMu,
	// so Stats stays responsive while a slow shard catches up.
	mu      sync.Mutex
	closed  bool
	nextID  QueryID
	live    map[QueryID]*registered
	retired core.EngineStats // folded counters of unregistered queries
	pending [][]*event.Event
	// pendingSpare is the second outer batch array of the double buffer:
	// sendLocked swaps it in so a flush allocates neither the outer array
	// nor (thanks to event.GetBatch) the per-shard slices.
	pendingSpare [][]*event.Event
	nPend        int
	lastTs       int64
	lastSeq      uint64 // global arrival sequence stamp (see Ingest)

	// sendMu serializes the worker-queue send phases. It is only ever
	// acquired while holding mu (and released after mu is dropped), which
	// keeps send phases in mu-decision order and makes it impossible for
	// a Register/Ingest send to race Close's channel close.
	sendMu sync.Mutex
}

// New creates a Runtime and starts its worker and merger goroutines.
func New(cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	rt := &Runtime{
		cfg:      cfg,
		hashSeed: maphash.MakeSeed(),
		mergeCh:  make(chan mergeMsg, cfg.Shards*cfg.QueueLen+cfg.Shards),
		merger:   make(chan struct{}),
		live:     map[QueryID]*registered{},
		pending:  make([][]*event.Event, cfg.Shards),
		lastTs:   math.MinInt64 / 2,
	}
	rt.pendingSpare = make([][]*event.Event, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		w := &worker{id: i, in: make(chan shardMsg, cfg.QueueLen), delivered: &rt.engineDeliv}
		if !cfg.NaiveFanout {
			w.router = router.New()
		}
		rt.workers = append(rt.workers, w)
		go w.run(rt.mergeCh)
	}
	go rt.runMerger()
	return rt
}

// Register adds a query to every shard and returns its id. The per-shard
// engines are constructed synchronously, so a bad query or config fails
// here, before any goroutine sees it; emit (may be nil) then receives the
// query's matches from the merger goroutine in global end-time order. The
// query starts observing events ingested after Register returns.
func (rt *Runtime) Register(q *query.Query, cfg core.Config, emit func(*core.Match)) (QueryID, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return 0, ErrClosed
	}
	engines := make([]*core.Engine, rt.cfg.Shards)
	sinks := make([]*matchSink, rt.cfg.Shards)
	for i := range engines {
		s := &matchSink{}
		eng, err := core.NewEngine(q, cfg, s.add)
		if err != nil {
			return 0, fmt.Errorf("runtime: register: %w", err)
		}
		engines[i], sinks[i] = eng, s
	}
	rt.nextID++
	id := rt.nextID
	ts := rt.lastTs // captured under mu: the op closure runs unlocked
	// Flush buffered events first so the registration point is exact with
	// respect to Ingest order; the op rides the same send phase.
	rt.sendLocked(func(i int) shardMsg {
		return shardMsg{ts: ts, reg: &regOp{id: id, info: q.Info, eng: engines[i], sink: sinks[i], emit: emit}}
	})
	rt.live[id] = &registered{id: id, engines: engines}
	return id, nil
}

// Unregister removes a live query. Its engines are dropped without a final
// flush: partial matches pending inside the window are discarded, while
// matches already emitted are still delivered. Events ingested before
// Unregister returns are still evaluated by the query.
func (rt *Runtime) Unregister(id QueryID) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return ErrClosed
	}
	reg, ok := rt.live[id]
	if !ok {
		return ErrUnknownQuery
	}
	ts := rt.lastTs // captured under mu: the op closure runs unlocked
	rt.sendLocked(func(int) shardMsg { return shardMsg{ts: ts, unreg: id} })
	// Fold the dropped engines' counters into the retired accumulator so
	// Stats stays cumulative without keeping dead engines (and their
	// buffered windows) alive. Workers may process a final in-flight
	// batch after this snapshot; those last few events go uncounted.
	for _, e := range reg.engines {
		s := e.Snapshot()
		rt.retired.Matches += s.Matches
		rt.retired.Rounds += s.Rounds
		rt.retired.PlanSwitches += s.PlanSwitches
		rt.retired.PeakMemBytes += s.PeakMemBytes
		rt.retired.Events += s.Events
	}
	delete(rt.live, id)
	return nil
}

// Ingest feeds one event. Timestamps must be non-decreasing; the event's
// Seq is overwritten with a globally monotone arrival stamp here, and every
// shard engine then shares the event without copying (engines adopt
// pre-stamped sequence numbers and treat the event as immutable), so the
// caller must not reuse or mutate the event afterwards. Ingest blocks when
// a worker queue is full (backpressure) and is safe to call concurrently
// with Register/Unregister/Stats, though multi-producer ingest needs
// external ordering to keep timestamps monotone.
func (rt *Runtime) Ingest(ev *event.Event) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return ErrClosed
	}
	if ev.Ts < rt.lastTs {
		return fmt.Errorf("%w: got ts %d after %d", ErrOutOfOrder, ev.Ts, rt.lastTs)
	}
	rt.lastTs = ev.Ts
	rt.lastSeq++
	ev.Seq = rt.lastSeq
	s := rt.shard(ev)
	if rt.pending[s] == nil {
		rt.pending[s] = event.GetBatch()
	}
	rt.pending[s] = append(rt.pending[s], ev)
	rt.nPend++
	rt.ingested.Add(1)
	if rt.nPend >= rt.cfg.BatchSize {
		rt.sendLocked(nil)
	}
	return nil
}

// shard routes an event by hashing its partition-key attribute.
func (rt *Runtime) shard(ev *event.Event) int {
	if rt.cfg.Shards == 1 {
		return 0
	}
	var h maphash.Hash
	h.SetSeed(rt.hashSeed)
	v := ev.Get(rt.cfg.PartitionBy)
	switch v.Kind {
	case event.KindString:
		h.WriteString(v.S)
	case event.KindFloat:
		var b [8]byte
		u := math.Float64bits(v.F)
		for i := range b {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	return int(h.Sum64() % uint64(rt.cfg.Shards))
}

// sendLocked flushes every shard's pending batch — an empty batch is a
// heartbeat carrying the current stream time, which keeps idle shards'
// watermarks advancing so the ordered merge never stalls on a cold
// shard — followed by one op message per worker when op is non-nil.
//
// It must be called with mu held and returns with mu held, but drops it
// for the blocking channel sends: only sendMu (acquired under mu, so
// send phases run in decision order) is held while backpressure bites.
func (rt *Runtime) sendLocked(op func(shard int) shardMsg) {
	batches := rt.pending
	ts := rt.lastTs
	flush := rt.nPend > 0 || ts != math.MinInt64/2
	if !flush && op == nil {
		return
	}
	// Double-buffer the outer array: the spare is all-nil. It can be nil
	// itself when a second flush overlaps an in-flight send (mu is dropped
	// below); allocate then.
	if rt.pendingSpare != nil {
		rt.pending = rt.pendingSpare
		rt.pendingSpare = nil
	} else {
		rt.pending = make([][]*event.Event, rt.cfg.Shards)
	}
	rt.nPend = 0

	rt.sendMu.Lock()
	rt.mu.Unlock()
	for i, w := range rt.workers {
		if flush {
			w.in <- shardMsg{events: batches[i], ts: ts}
		}
		if op != nil {
			w.in <- op(i)
		}
	}
	rt.sendMu.Unlock()
	rt.mu.Lock()
	// The batch slices now belong to the workers (returned to the shared
	// pool there); the outer array is reusable once its entries are nil.
	clear(batches)
	if rt.pendingSpare == nil {
		rt.pendingSpare = batches
	}
}

// Close flushes buffered events, final-flushes every engine (emitting all
// remaining matches, including trailing negations and closures), waits for
// the merger to drain, and stops all goroutines. It is idempotent; Ingest,
// Register and Unregister fail with ErrClosed afterwards.
func (rt *Runtime) Close() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		<-rt.merger
		return nil
	}
	rt.closed = true
	batches := rt.pending
	ts := rt.lastTs
	flush := rt.nPend > 0 || ts != math.MinInt64/2
	rt.pending = make([][]*event.Event, rt.cfg.Shards)
	rt.nPend = 0
	// Channels are closed inside the sendMu phase, after any in-flight
	// Register/Ingest send completes; closed (set under mu above) stops
	// later callers before they reach a send.
	rt.sendMu.Lock()
	rt.mu.Unlock()
	for i, w := range rt.workers {
		if flush {
			w.in <- shardMsg{events: batches[i], ts: ts}
		}
		close(w.in)
	}
	rt.sendMu.Unlock()
	<-rt.merger
	return nil
}

// Stats returns aggregated counters; safe to call at any time, including
// while workers are processing (engine snapshots are atomic, and worker
// backpressure never holds mu). Engine counters cover live queries plus
// the totals unregistered queries had accumulated when they were removed.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	engines := make([]*core.Engine, 0, len(rt.live)*rt.cfg.Shards)
	for _, reg := range rt.live {
		engines = append(engines, reg.engines...)
	}
	nLive := len(rt.live)
	agg := rt.retired
	rt.mu.Unlock()
	st := Stats{
		Shards:           rt.cfg.Shards,
		LiveQueries:      nLive,
		EventsIngested:   rt.ingested.Load(),
		MatchesDelivered: rt.delivered.Load(),
		EngineDeliveries: rt.engineDeliv.Load(),
		Engine:           agg,
	}
	for _, e := range engines {
		s := e.Snapshot()
		st.Engine.Matches += s.Matches
		st.Engine.Rounds += s.Rounds
		st.Engine.PlanSwitches += s.PlanSwitches
		st.Engine.PeakMemBytes += s.PeakMemBytes
		st.Engine.Events += s.Events
	}
	return st
}
