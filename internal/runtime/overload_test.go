package runtime

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/faultinject"
	"repro/internal/query"
)

// stallWorker arms a one-shot stall on the first engine batch and returns
// once the worker is provably parked inside it (its queue is then empty).
// The tests build exact queue states on top: fill the queue, then drive
// the overload policy under test with deterministic outcomes.
func stallWorker(t *testing.T, rt *Runtime, inj *faultinject.Injector, sym string) {
	t.Helper()
	inj.Arm(faultinject.Rule{Site: faultinject.SiteEngineBatch, Shard: faultinject.AnyShard,
		Nth: 1, Act: faultinject.ActStall})
	if err := rt.Ingest(event.NewStock(1, 1, 1, sym, 10, 1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400 && inj.Fired() == 0; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if inj.Fired() == 0 {
		t.Fatal("worker never reached the stall point")
	}
}

func TestOverloadDropNewest(t *testing.T) {
	inj := faultinject.New()
	rt := New(Config{Shards: 1, BatchSize: 1, QueueLen: 2,
		Overload: OverloadDropNewest, Injector: inj})
	defer func() { inj.Release(); rt.Close() }()

	var matches atomic.Int64
	if _, err := rt.Register(query.MustParse(riseSrc("IBM")), core.Config{},
		func(*core.Match) { matches.Add(1) }); err != nil {
		t.Fatal(err)
	}
	stallWorker(t, rt, inj, "IBM")

	// Queue is empty, worker parked: two batches fill it, the next three
	// are shed — newest-first, so the queued (older) batches survive.
	ts := feedSym(t, rt, "IBM", 2, 10)
	ts = feedSym(t, rt, "IBM", 3, ts)
	st := rt.Stats()
	if st.EventsShed != 3 || st.ShedByShard[0] != 3 {
		t.Fatalf("stats = EventsShed %d ShedByShard %v, want 3 on shard 0",
			st.EventsShed, st.ShedByShard)
	}

	inj.Release()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	// A snapshot op would block on the stalled queue, so the Prometheus
	// surface is checked post-Close (shed counters come from Stats).
	var b strings.Builder
	if err := rt.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `zstream_ingest_shed_events_total{shard="0"} 3`) {
		t.Errorf("metrics missing shed counter:\n%s", b.String())
	}
	// The two queued batches (ts 10, 11) were processed after release.
	if matches.Load() == 0 {
		t.Error("surviving batches produced no matches")
	}
}

func TestOverloadDropOldestPreservesOps(t *testing.T) {
	inj := faultinject.New()
	rt := New(Config{Shards: 1, BatchSize: 1, QueueLen: 2,
		Overload: OverloadDropOldest, Injector: inj})
	defer func() { inj.Release(); rt.Close() }()

	idIBM, err := rt.Register(query.MustParse(riseSrc("IBM")), core.Config{},
		func(*core.Match) {})
	if err != nil {
		t.Fatal(err)
	}
	stallWorker(t, rt, inj, "IBM")

	// Queue: [register(SUN)] — an op sitting where DropOldest pops.
	var sun atomic.Int64
	idSUN, err := rt.Register(query.MustParse(riseSrc("SUN")), core.Config{},
		func(*core.Match) { sun.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	// Fill: [register(SUN), batch(ts=10)]. The next batch forces a pop:
	// the op at the head must be requeued, not shed; the event batch
	// behind it is the one that goes.
	ts := feedSym(t, rt, "IBM", 1, 10)
	ts = feedSym(t, rt, "IBM", 1, ts)
	if st := rt.Stats(); st.EventsShed != 1 {
		t.Fatalf("EventsShed = %d, want 1 (the queued batch, never the op)", st.EventsShed)
	}

	// Unpark the worker and drain the queue (the Explain snap roundtrips
	// behind everything queued, including the requeued registration)
	// before feeding the second query: DropOldest would otherwise shed
	// the very events this assertion needs.
	inj.Release()
	syncShards(t, rt, idIBM)
	for i := 0; i < 3; i++ {
		ts = feedSym(t, rt, "SUN", 2, 100+ts)
		syncShards(t, rt, idIBM)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if sun.Load() == 0 {
		t.Error("registration op was lost under DropOldest: SUN query never matched")
	}
	if _, err := rt.Explain(idSUN); !errors.Is(err, ErrClosed) {
		t.Errorf("Explain post-Close = %v", err)
	}
}

func TestOverloadBlockWithTimeout(t *testing.T) {
	inj := faultinject.New()
	rt := New(Config{Shards: 1, BatchSize: 1, QueueLen: 1,
		Overload: OverloadBlockWithTimeout, OverloadTimeout: 10 * time.Millisecond,
		Injector: inj})
	defer func() { inj.Release(); rt.Close() }()

	if _, err := rt.Register(query.MustParse(riseSrc("IBM")), core.Config{},
		func(*core.Match) {}); err != nil {
		t.Fatal(err)
	}
	stallWorker(t, rt, inj, "IBM")
	ts := feedSym(t, rt, "IBM", 1, 10) // fills the queue
	start := time.Now()
	feedSym(t, rt, "IBM", 2, ts) // each waits ~10ms, then sheds, no error
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timed-out sends took %v; timeout not honored", elapsed)
	}
	if st := rt.Stats(); st.EventsShed != 2 {
		t.Fatalf("EventsShed = %d, want 2", st.EventsShed)
	}
	inj.Release()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestIngestContextHonorsDeadline(t *testing.T) {
	inj := faultinject.New()
	rt := New(Config{Shards: 1, BatchSize: 1, QueueLen: 1, Injector: inj})
	defer func() { inj.Release(); rt.Close() }()

	if _, err := rt.Register(query.MustParse(riseSrc("IBM")), core.Config{},
		func(*core.Match) {}); err != nil {
		t.Fatal(err)
	}
	stallWorker(t, rt, inj, "IBM")
	feedSym(t, rt, "IBM", 1, 10) // fills the queue

	// Default Block policy would wait forever; the context bounds it.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := rt.IngestContext(ctx, event.NewStock(20, 20, 20, "IBM", 10, 1))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("IngestContext past deadline = %v", err)
	}
	if st := rt.Stats(); st.EventsShed != 1 {
		t.Fatalf("EventsShed = %d, want 1 (the undeliverable batch)", st.EventsShed)
	}

	// An already-expired context fails fast without touching the stream.
	expired, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := rt.IngestContext(expired, event.NewStock(30, 30, 30, "IBM", 10, 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("IngestContext with canceled ctx = %v", err)
	}
}

func TestCloseContextBoundedDrainAndReawait(t *testing.T) {
	inj := faultinject.New()
	rt := New(Config{Shards: 1, BatchSize: 4, QueueLen: 1, Injector: inj})

	var matches atomic.Int64
	if _, err := rt.Register(query.MustParse(riseSrc("IBM")), core.Config{},
		func(*core.Match) { matches.Add(1) }); err != nil {
		t.Fatal(err)
	}
	inj.Arm(faultinject.Rule{Site: faultinject.SiteEngineBatch, Shard: faultinject.AnyShard,
		Nth: 1, Act: faultinject.ActStall})
	feedSym(t, rt, "IBM", 4, 1) // one full batch: the worker parks on it
	for i := 0; i < 400 && inj.Fired() == 0; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if inj.Fired() == 0 {
		t.Fatal("worker never reached the stall point")
	}
	feedSym(t, rt, "IBM", 4, 10) // second batch fills the queue
	feedSym(t, rt, "IBM", 3, 20) // three events stay buffered, unflushed

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rep, err := rt.CloseContext(ctx)
	if rep.Complete || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bounded drain = %+v, %v; want incomplete + deadline error", rep, err)
	}
	if rep.EventsShed != 3 {
		t.Errorf("drain shed %d events, want the 3 undeliverable buffered ones", rep.EventsShed)
	}
	if err := rt.Ingest(event.NewStock(99, 99, 99, "IBM", 10, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ingest after timed-out drain = %v, want ErrClosed", err)
	}

	// Unblock the worker and re-await: the drain must now complete, and
	// the queued batches must have been evaluated, not dropped.
	inj.Release()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	rep2, err := rt.CloseContext(ctx2)
	if err != nil || !rep2.Complete {
		t.Fatalf("re-awaited drain = %+v, %v", rep2, err)
	}
	if matches.Load() == 0 {
		t.Error("queued batches were not evaluated during the drain")
	}
}

// TestCloseRacesIngestRegisterUnregister hammers Close from one goroutine
// while others ingest, register, unregister and inspect. Run under -race
// this is the lock-ordering proof for the sendMu/mu split; semantically,
// every call must return either success or a typed sentinel — never hang,
// panic, or corrupt.
func TestCloseRacesIngestRegisterUnregister(t *testing.T) {
	for round := 0; round < 5; round++ {
		rt := New(Config{Shards: 2, BatchSize: 8, QueueLen: 2})
		var ts atomic.Int64
		var wg sync.WaitGroup
		stop := make(chan struct{})

		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				sym := fmt.Sprintf("S%02d", g)
				for {
					select {
					case <-stop:
						return
					default:
					}
					err := rt.Ingest(event.NewStock(1, ts.Add(1), 1, sym, 10, 1))
					if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrOutOfOrder) {
						t.Errorf("Ingest = %v", err)
						return
					}
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ids []QueryID
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id, err := rt.Register(query.MustParse(riseSrc(fmt.Sprintf("S%02d", i%3))),
					core.Config{}, func(*core.Match) {})
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("Register = %v", err)
					}
					return
				}
				ids = append(ids, id)
				if len(ids) > 4 {
					old := ids[0]
					ids = ids[1:]
					if err := rt.Unregister(old); err != nil &&
						!errors.Is(err, ErrClosed) && !errors.Is(err, ErrUnknownQuery) {
						t.Errorf("Unregister = %v", err)
						return
					}
				}
				rt.Stats()
				rt.Faults()
			}
		}()

		time.Sleep(10 * time.Millisecond)
		if err := rt.Close(); err != nil {
			t.Fatalf("Close = %v", err)
		}
		close(stop)
		wg.Wait()
	}
}
