package runtime

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/faultinject"
	"repro/internal/query"
)

// riseSrc builds a two-step price-rise query pinned to one symbol, so
// fault tests can aim events (and faults) at exactly one engine group.
func riseSrc(sym string) string {
	return fmt.Sprintf(`PATTERN A; B
		WHERE A.name = '%s' AND B.name = '%s' AND B.price > A.price
		WITHIN 100 units RETURN A, B`, sym, sym)
}

// gidOf resolves a registered query's engine-group id. Test-only: reads
// the registry without mu, valid while no other goroutine calls the API.
func gidOf(t *testing.T, rt *Runtime, id QueryID) int64 {
	t.Helper()
	reg := rt.live[id]
	if reg == nil {
		t.Fatalf("query %d not in registry", id)
	}
	gs := rt.groups[reg.key]
	if gs == nil {
		t.Fatalf("query %d has no group", id)
	}
	return gs.gid
}

// feedSym ingests n rising ticks for one symbol starting at ts, returning
// the next free timestamp. Prices rise so every consecutive pair matches.
func feedSym(t *testing.T, rt *Runtime, sym string, n int, ts int64) int64 {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := rt.Ingest(event.NewStock(uint64(ts), ts, ts, sym, float64(10+i), 1)); err != nil {
			t.Fatal(err)
		}
		ts++
	}
	return ts
}

// syncShards round-trips an op through every worker (via Explain's snap),
// guaranteeing all previously flushed batches — and any panic they
// triggered, including the quarantine sweep — are fully processed.
func syncShards(t *testing.T, rt *Runtime, id QueryID) {
	t.Helper()
	if _, err := rt.Explain(id); err != nil {
		t.Fatalf("syncShards Explain(%d): %v", id, err)
	}
}

// waitFaults polls until n fault records exist — for tests where every
// registered query is a victim, so there is no healthy id to sync on.
func waitFaults(t *testing.T, rt *Runtime, n int) []QueryFault {
	t.Helper()
	var got []QueryFault
	for i := 0; i < 400; i++ {
		if got = rt.Faults(); len(got) >= n {
			return got
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("faults = %+v after 2s, want %d", got, n)
	return nil
}

func TestQuarantineIsolatesEngineFault(t *testing.T) {
	inj := faultinject.New()
	rt := New(Config{Shards: 2, BatchSize: 4, Injector: inj})
	defer rt.Close()

	var ibm, sun atomic.Int64
	idIBM, err := rt.Register(query.MustParse(riseSrc("IBM")), core.Config{}, func(*core.Match) { ibm.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	idSUN, err := rt.Register(query.MustParse(riseSrc("SUN")), core.Config{}, func(*core.Match) { sun.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm(faultinject.Rule{Site: faultinject.SiteEngineBatch, Shard: faultinject.AnyShard,
		ID: gidOf(t, rt, idIBM), Nth: 1, Act: faultinject.ActPanic})

	ts := feedSym(t, rt, "IBM", 4, 1) // flushes one batch: the panic fires
	ts = feedSym(t, rt, "SUN", 4, ts)
	syncShards(t, rt, idSUN)

	faults := rt.Faults()
	if len(faults) != 1 {
		t.Fatalf("faults = %+v, want exactly one", faults)
	}
	f := faults[0]
	if f.ID != idIBM || f.Site != "engine.batch" || f.GroupID == 0 {
		t.Errorf("fault record = %+v", f)
	}
	if !strings.Contains(f.Panic, "faultinject") || f.Stack == "" {
		t.Errorf("fault missing panic/stack: %+v", f)
	}

	st := rt.Stats()
	if st.QuarantinedQueries != 1 || st.Faults != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.LiveQueries != 1 {
		t.Errorf("LiveQueries = %d, want 1 (SUN only)", st.LiveQueries)
	}

	// Explain on the quarantined id: a QueryFaultError carrying the record.
	_, err = rt.Explain(idIBM)
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Explain(quarantined) = %v, want ErrQuarantined", err)
	}
	var qfe *QueryFaultError
	if !errors.As(err, &qfe) || qfe.Fault.ID != idIBM {
		t.Fatalf("errors.As(QueryFaultError) failed: %v", err)
	}

	// The healthy query keeps running after the fault.
	sunBefore := sun.Load()
	feedSym(t, rt, "SUN", 8, ts)
	syncShards(t, rt, idSUN)
	if _, err := rt.CloseContext(nil); err != nil {
		t.Fatalf("close: %v", err)
	}
	if sun.Load() <= sunBefore {
		t.Errorf("healthy query stopped matching after sibling fault: %d -> %d", sunBefore, sun.Load())
	}
	// Faults stays inspectable post-Close.
	if got := rt.Faults(); len(got) != 1 || got[0].ID != idIBM {
		t.Errorf("Faults() after Close = %+v", got)
	}
}

func TestUnregisterAndReregisterQuarantined(t *testing.T) {
	inj := faultinject.New()
	rt := New(Config{Shards: 1, BatchSize: 2, Injector: inj})
	defer rt.Close()

	var n int
	id, err := rt.Register(query.MustParse(riseSrc("IBM")), core.Config{}, func(*core.Match) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm(faultinject.Rule{Site: faultinject.SiteEngineBatch, Shard: faultinject.AnyShard,
		ID: gidOf(t, rt, id), Nth: 1, Act: faultinject.ActPanic})
	ts := feedSym(t, rt, "IBM", 2, 1)
	waitFaults(t, rt, 1)

	// Unregistering the quarantined id removes the registry entry...
	if err := rt.Unregister(id); err != nil {
		t.Fatalf("Unregister(quarantined) = %v", err)
	}
	if err := rt.Unregister(id); !errors.Is(err, ErrUnknownQuery) {
		t.Fatalf("second Unregister = %v, want ErrUnknownQuery", err)
	}
	// ...but the fault record stays.
	if got := rt.Faults(); len(got) != 1 {
		t.Fatalf("fault record lost on Unregister: %+v", got)
	}

	// Re-registering the same query text starts a fresh, working group.
	id2, err := rt.Register(query.MustParse(riseSrc("IBM")), core.Config{}, func(*core.Match) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("re-registration reused quarantined id %d", id)
	}
	feedSym(t, rt, "IBM", 6, ts)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("re-registered query produced no matches")
	}
	if st := rt.Stats(); st.Faults != 1 {
		t.Errorf("Faults counter = %d, want 1 (survives unregister)", st.Faults)
	}
}

func TestDedupeGroupFaultTakesAllAliases(t *testing.T) {
	inj := faultinject.New()
	rt := New(Config{Shards: 1, BatchSize: 2, Injector: inj})
	defer rt.Close()

	src := riseSrc("IBM")
	idA, err := rt.Register(query.MustParse(src), core.Config{}, func(*core.Match) {})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := rt.Register(query.MustParse(src), core.Config{}, func(*core.Match) {})
	if err != nil {
		t.Fatal(err)
	}
	gid := gidOf(t, rt, idA)
	if gid != gidOf(t, rt, idB) {
		t.Fatal("textually identical queries did not dedupe onto one group")
	}
	inj.Arm(faultinject.Rule{Site: faultinject.SiteEngineBatch, Shard: faultinject.AnyShard,
		ID: gid, Nth: 1, Act: faultinject.ActPanic})
	feedSym(t, rt, "IBM", 2, 1)

	faults := waitFaults(t, rt, 2)
	for _, f := range faults {
		if f.GroupID != gid || f.Site != "engine.batch" {
			t.Errorf("fault record = %+v", f)
		}
	}
	if st := rt.Stats(); st.QuarantinedQueries != 2 || st.LiveQueries != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestAliasOntoQuarantinedGroup arms a sync-round panic before any
// registration: the first query's group quarantines on the gather that
// follows its own registration op. A second, textually identical query
// then races the fault report: either the registry reaped first (the new
// query gets a fresh healthy group) or it aliased onto the dying group and
// the worker rejects the alias with a register.alias fault. Both outcomes
// are correct; silently running nowhere is the bug this guards against.
func TestAliasOntoQuarantinedGroup(t *testing.T) {
	inj := faultinject.New().Arm(faultinject.Rule{Site: faultinject.SiteEngineSync,
		Shard: faultinject.AnyShard, Nth: 1, Act: faultinject.ActPanic})
	rt := New(Config{Shards: 1, BatchSize: 2, Injector: inj})
	defer rt.Close()

	src := riseSrc("IBM")
	idA, err := rt.Register(query.MustParse(src), core.Config{}, func(*core.Match) {})
	if err != nil {
		t.Fatal(err)
	}
	waitFaults(t, rt, 1)
	idB, err := rt.Register(query.MustParse(src), core.Config{}, func(*core.Match) {})
	if err != nil {
		t.Fatal(err)
	}
	feedSym(t, rt, "IBM", 4, 1)
	syncAll := func() {
		// Roundtrip via Stats + Faults (Explain may legitimately fail).
		rt.Stats()
		rt.Faults()
	}
	syncAll()

	foundA := false
	for _, f := range rt.Faults() {
		switch f.ID {
		case idA:
			foundA = true
			if f.Site != "engine.sync" {
				t.Errorf("first query's fault = %+v", f)
			}
		case idB:
			if f.Site != "register.alias" || f.GroupID == 0 {
				t.Errorf("aliased query's fault = %+v", f)
			}
		}
	}
	if !foundA {
		t.Errorf("first query has no fault record: %+v", rt.Faults())
	}
	// Whichever way the race went, idB must be accounted for: either live
	// (fresh group) or quarantined (inherited fault) — never lost.
	st := rt.Stats()
	if st.LiveQueries+st.QuarantinedQueries != 2 {
		t.Errorf("stats lose a query: %+v", st)
	}
}

func TestEmitFaultQuarantinesOnlyThatAlias(t *testing.T) {
	rt := New(Config{Shards: 1, BatchSize: 2})
	defer rt.Close()

	src := riseSrc("IBM")
	var healthy atomic.Int64
	idBad, err := rt.Register(query.MustParse(src), core.Config{}, func(*core.Match) {
		panic("consumer exploded")
	})
	if err != nil {
		t.Fatal(err)
	}
	idOK, err := rt.Register(query.MustParse(src), core.Config{}, func(*core.Match) { healthy.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	ts := feedSym(t, rt, "IBM", 6, 1)
	syncShards(t, rt, idOK)

	// Wait for the merger to release the first matches (release lags the
	// watermark; more input advances it).
	for i := 0; i < 50 && len(rt.Faults()) == 0; i++ {
		ts = feedSym(t, rt, "IBM", 2, ts)
		syncShards(t, rt, idOK)
	}
	faults := rt.Faults()
	if len(faults) != 1 {
		t.Fatalf("faults = %+v, want the panicking alias only", faults)
	}
	f := faults[0]
	if f.ID != idBad || f.Shard != MergerShard || f.Site != "emit" ||
		!strings.Contains(f.Panic, "consumer exploded") {
		t.Errorf("fault record = %+v", f)
	}
	// The innocent alias — same engine group — keeps matching.
	before := healthy.Load()
	feedSym(t, rt, "IBM", 6, ts)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if healthy.Load() <= before {
		t.Errorf("innocent dedupe alias stopped matching: %d -> %d", before, healthy.Load())
	}
	if st := rt.Stats(); st.QuarantinedQueries != 1 || st.EngineGroups != 1 {
		t.Errorf("stats = %+v (group must survive an emit fault)", st)
	}
}

// TestQuarantinedConsumerDetachesFromProducer is the shared-prefix
// teardown guarantee: when a consumer group is quarantined mid-stream, its
// ShareReader must be detached from the family's producer, or the dead
// consumer's cursor would clamp eviction and pin the producer's buffer
// for the rest of the run.
func TestQuarantinedConsumerDetachesFromProducer(t *testing.T) {
	inj := faultinject.New()
	rt := New(Config{Shards: 1, BatchSize: 4, Injector: inj})
	defer rt.Close()

	prefix := `PATTERN A; B; C
		WHERE A.name = 'IBM' AND B.name = 'IBM' AND B.price > A.price
		  AND C.name = 'IBM' AND C.price %s
		WITHIN 100 units RETURN A, B, C`
	var ids []QueryID
	for _, suffix := range []string{"> 11", "> 12", "> 13"} {
		id, err := rt.Register(query.MustParse(fmt.Sprintf(prefix, suffix)), core.Config{}, func(*core.Match) {})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// The first registrant runs the prefix privately; the second and
	// third are consumers of the shared producer. Kill one consumer,
	// observe the producer through the other.
	var consumers []QueryID
	for _, id := range ids {
		if gs := rt.groups[rt.live[id].key]; gs != nil && gs.consumer {
			consumers = append(consumers, id)
		}
	}
	if len(consumers) < 2 {
		t.Fatalf("consumers = %v, want >= 2; sharing not engaged", consumers)
	}
	victim, survivor := consumers[0], consumers[1]

	doc, err := rt.Explain(survivor)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Sharing == nil || doc.Sharing.ProducerID == 0 {
		t.Fatal("survivor not attached to a shared producer; test is vacuous")
	}
	readersBefore := doc.Sharing.ProducerReaders
	if readersBefore < 2 {
		t.Fatalf("ProducerReaders = %d before fault, want >= 2", readersBefore)
	}

	inj.Arm(faultinject.Rule{Site: faultinject.SiteEngineBatch, Shard: faultinject.AnyShard,
		ID: gidOf(t, rt, victim), Nth: 1, Act: faultinject.ActPanic})
	feedSym(t, rt, "IBM", 4, 1)
	syncShards(t, rt, survivor)
	if got := waitFaults(t, rt, 1); got[0].ID != victim {
		t.Fatalf("faults = %+v, want %d quarantined", got, victim)
	}

	doc, err = rt.Explain(survivor)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Sharing.ProducerReaders; got != readersBefore-1 {
		t.Errorf("ProducerReaders after quarantine = %d, want %d (dead consumer must detach)",
			got, readersBefore-1)
	}
}

func TestFaultMetricsExposed(t *testing.T) {
	inj := faultinject.New()
	rt := New(Config{Shards: 1, BatchSize: 2, Injector: inj})
	defer rt.Close()
	id, err := rt.Register(query.MustParse(riseSrc("IBM")), core.Config{}, func(*core.Match) {})
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm(faultinject.Rule{Site: faultinject.SiteEngineBatch, Shard: faultinject.AnyShard,
		ID: gidOf(t, rt, id), Nth: 1, Act: faultinject.ActPanic})
	feedSym(t, rt, "IBM", 2, 1)
	waitFaults(t, rt, 1)
	var b strings.Builder
	if err := rt.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"zstream_quarantined_queries 1",
		"zstream_query_faults_total 1",
		"zstream_ingest_shed_events_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestTypedErrors(t *testing.T) {
	rt := New(Config{Shards: 1, BatchSize: 1})
	if err := rt.Ingest(event.NewStock(1, 100, 1, "IBM", 10, 1)); err != nil {
		t.Fatal(err)
	}
	err := rt.Ingest(event.NewStock(2, 50, 2, "IBM", 10, 1))
	if !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("regressing ingest = %v, want ErrOutOfOrder", err)
	}
	var ooo *OutOfOrderError
	if !errors.As(err, &ooo) || ooo.Ts != 50 || ooo.Last != 100 {
		t.Fatalf("OutOfOrderError = %+v", ooo)
	}

	err = rt.Unregister(QueryID(404))
	if !errors.Is(err, ErrUnknownQuery) {
		t.Fatalf("Unregister(404) = %v, want ErrUnknownQuery", err)
	}
	var uq *UnknownQueryError
	if !errors.As(err, &uq) || uq.ID != 404 {
		t.Fatalf("UnknownQueryError = %+v", uq)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPostCloseConcurrentCallers drives every public entry point from many
// goroutines against a closed runtime: all must return ErrClosed (or
// succeed, for the post-mortem inspectors) without racing or panicking.
func TestPostCloseConcurrentCallers(t *testing.T) {
	rt := New(Config{Shards: 2, BatchSize: 4})
	id, err := rt.Register(query.MustParse(riseSrc("IBM")), core.Config{}, func(*core.Match) {})
	if err != nil {
		t.Fatal(err)
	}
	feedSym(t, rt, "IBM", 8, 1)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch g % 4 {
				case 0:
					if err := rt.Ingest(event.NewStock(1, 1000, 1, "IBM", 10, 1)); !errors.Is(err, ErrClosed) {
						t.Errorf("Ingest post-Close = %v", err)
					}
				case 1:
					if _, err := rt.Register(query.MustParse(riseSrc("SUN")), core.Config{}, nil); !errors.Is(err, ErrClosed) {
						t.Errorf("Register post-Close = %v", err)
					}
					if err := rt.Unregister(id); !errors.Is(err, ErrClosed) {
						t.Errorf("Unregister post-Close = %v", err)
					}
				case 2:
					if _, err := rt.Explain(id); !errors.Is(err, ErrClosed) {
						t.Errorf("Explain post-Close = %v", err)
					}
					rt.Faults() // must keep working post-Close
				case 3:
					rt.Stats()
					if err := rt.Close(); err != nil {
						t.Errorf("repeat Close = %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
