package runtime

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/faultinject"
	"repro/internal/query"
	"repro/internal/wal"
)

// durableQuerySrcs is the query mix for the crash-recovery suite: the
// router-exercising templates plus an exact duplicate of the first query,
// so whole-query dedupe aliasing is recovered too. StrategyLeftDeep keeps
// plans fixed — adaptive replans may legally reorder equal-end-time ties,
// which would make byte-comparison against a reference run too strict.
func durableQuerySrcs() []string {
	srcs := fanoutQuerySrcs(10, 4)
	return append(srcs, srcs[0])
}

// runDurable registers srcs, feeds events[from:], and returns the runtime
// plus the first ingest/register error (the armed crash). transcript
// collects deliveries as "q<idx> <canon>" lines, where idx is the
// zero-based registration index (recovered ids map back to it).
func runDurable(t *testing.T, dir string, srcs []string, cfg Config, ecfg core.Config, inj *faultinject.Injector, events []*event.Event, from uint64, transcript *[]string) (*Runtime, error) {
	t.Helper()
	cfg.Injector = inj
	cfg.Durability = &DurConfig{Dir: dir, Fsync: wal.FsyncBatch, CheckpointEvery: 300,
		RecoverEmit: func(id QueryID, src string) func(*core.Match) {
			return func(m *core.Match) {
				*transcript = append(*transcript, fmt.Sprintf("q%03d %s", int(id)-1, canon(m)))
			}
		}}
	rt, info, err := NewDurable(cfg)
	if err != nil {
		t.Fatalf("NewDurable: %v", err)
	}
	if info.Queries == 0 {
		for i, src := range srcs {
			i := i
			q := query.MustParse(src)
			if _, rerr := rt.Register(q, ecfg, func(m *core.Match) {
				*transcript = append(*transcript, fmt.Sprintf("q%03d %s", i, canon(m)))
			}); rerr != nil {
				return rt, rerr
			}
		}
	}
	if from == 0 {
		from = info.LastSeq
	}
	for _, ev := range events[from:] {
		cp := *ev
		if ierr := rt.Ingest(&cp); ierr != nil {
			return rt, ierr
		}
	}
	return rt, nil
}

// TestDurableCrashRecoveryDifferential is the crash-recovery differential
// suite: for every WAL crash site × shard count × sharing mode × dispatch
// path, a run crashed mid-stream and recovered with NewDurable (resuming
// the source from the durable position) must produce, pre-crash plus
// post-recovery, exactly the crash-free run's transcript — same matches,
// same order, byte-identical. Exactly-once at the OnMatch boundary.
func TestDurableCrashRecoveryDifferential(t *testing.T) {
	srcs := durableQuerySrcs()
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 64}
	events := stockStream(1500, 8, 7)
	nq := uint64(len(srcs))
	sites := []struct {
		site faultinject.Site
		nth  uint64
	}{
		// Mid-stream ordinals: append counts batch records; fsync counts
		// syncs (one per record under FsyncBatch, incl. registration
		// checkpoints); checkpoint counts the recovery checkpoint, one per
		// registration, then the periodic cadence.
		{faultinject.SiteWALAppend, 4},
		{faultinject.SiteWALFsync, nq + 8},
		{faultinject.SiteCheckpointWrite, nq + 3},
	}
	for _, shards := range []int{1, 2, 3} {
		for _, noShare := range []bool{false, true} {
			for _, naive := range []bool{false, true} {
				base := Config{Shards: shards, BatchSize: 128, NoSharing: noShare, NaiveFanout: naive}
				// Crash-free reference on a fresh log.
				var ref []string
				rt, err := runDurable(t, t.TempDir(), srcs, base, ecfg, nil, events, 0, &ref)
				if err != nil {
					t.Fatalf("reference run failed: %v", err)
				}
				if err := rt.Close(); err != nil {
					t.Fatalf("reference close: %v", err)
				}
				if len(ref) == 0 {
					t.Fatal("reference run produced no matches; suite is vacuous")
				}
				for _, sc := range sites {
					name := fmt.Sprintf("shards=%d/nosharing=%v/naive=%v/%s", shards, noShare, naive, sc.site)
					t.Run(name, func(t *testing.T) {
						dir := t.TempDir()
						inj := faultinject.New().Arm(faultinject.Rule{
							Site: sc.site, Shard: faultinject.AnyShard, Nth: sc.nth, Act: faultinject.ActPanic,
						})
						var got []string
						rt, err := runDurable(t, dir, srcs, base, ecfg, inj, events, 0, &got)
						if err == nil {
							t.Fatal("armed crash site never fired")
						}
						var we *wal.Error
						if !errors.As(err, &we) || !we.Simulated {
							t.Fatalf("expected a simulated WAL crash, got %v", err)
						}
						rt.crash()

						rt2, err := runDurable(t, dir, srcs, base, ecfg, nil, events, 0, &got)
						if err != nil {
							t.Fatalf("post-recovery run failed: %v", err)
						}
						if err := rt2.Close(); err != nil {
							t.Fatalf("post-recovery close: %v", err)
						}
						st := rt2.Stats()
						if !st.WALEnabled {
							t.Error("recovered runtime lost durability")
						}
						diffTranscripts(t, ref, got)
					})
				}
			}
		}
	}
}

// TestDurableCleanRestart: closing a durable runtime cleanly and reopening
// the same log must re-register the checkpointed queries, replay without
// emitting anything (everything is at or below the durable emit
// watermark), and resume at the durable position.
func TestDurableCleanRestart(t *testing.T) {
	srcs := durableQuerySrcs()
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 64}
	events := stockStream(900, 8, 11)
	dir := t.TempDir()
	base := Config{Shards: 2, BatchSize: 128}

	var first []string
	rt, err := runDurable(t, dir, srcs, base, ecfg, nil, events, 0, &first)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("no matches; test is vacuous")
	}

	var second []string
	cfg := base
	cfg.Durability = &DurConfig{Dir: dir,
		RecoverEmit: func(id QueryID, src string) func(*core.Match) {
			return func(m *core.Match) { second = append(second, canon(m)) }
		}}
	rt2, info, err := NewDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Queries != len(srcs) {
		t.Errorf("recovered %d queries, want %d", info.Queries, len(srcs))
	}
	if info.LastSeq != uint64(len(events)) {
		t.Errorf("recovered last_seq=%d, want %d", info.LastSeq, len(events))
	}
	if err := rt2.Close(); err != nil {
		t.Fatal(err)
	}
	if len(second) != 0 {
		t.Errorf("clean restart re-emitted %d matches; want 0 (all suppressed)", len(second))
	}
	st := rt2.Stats()
	if st.WALSuppressed == 0 {
		t.Error("expected replayed matches to be counted as suppressed")
	}
}

// TestDurableMidStreamRegistration: a query registered mid-stream is
// checkpointed at its exact ingest boundary; recovery re-registers it at
// that boundary, so its post-crash output matches the crash-free run.
func TestDurableMidStreamRegistration(t *testing.T) {
	srcs := durableQuerySrcs()
	late := `PATTERN A; B WHERE A.name = 'S01' AND B.name = 'S01' AND B.price > A.price WITHIN 25 units RETURN A, B`
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 64}
	events := stockStream(1400, 8, 13)
	base := Config{Shards: 2, BatchSize: 128}

	run := func(dir string, inj *faultinject.Injector, transcript *[]string) (*Runtime, error) {
		cfg := base
		cfg.Injector = inj
		cfg.Durability = &DurConfig{Dir: dir, CheckpointEvery: 300,
			RecoverEmit: func(id QueryID, src string) func(*core.Match) {
				return func(m *core.Match) {
					*transcript = append(*transcript, fmt.Sprintf("q%03d %s", int(id)-1, canon(m)))
				}
			}}
		rt, info, err := NewDurable(cfg)
		if err != nil {
			t.Fatalf("NewDurable: %v", err)
		}
		reg := func(i int, src string) error {
			q := query.MustParse(src)
			_, rerr := rt.Register(q, ecfg, func(m *core.Match) {
				*transcript = append(*transcript, fmt.Sprintf("q%03d %s", i, canon(m)))
			})
			return rerr
		}
		if info.Queries == 0 {
			for i, src := range srcs {
				if err := reg(i, src); err != nil {
					return rt, err
				}
			}
		}
		for n, ev := range events[info.LastSeq:] {
			seq := info.LastSeq + uint64(n) + 1
			if seq == 700 {
				// Mid-stream registration (only reached by the first run:
				// recovery resumes past it and re-registers from the
				// checkpoint instead).
				if err := reg(len(srcs), late); err != nil {
					return rt, err
				}
			}
			cp := *ev
			if ierr := rt.Ingest(&cp); ierr != nil {
				return rt, ierr
			}
		}
		return rt, nil
	}

	var ref []string
	rt, err := run(t.TempDir(), nil, &ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	inj := faultinject.New().Arm(faultinject.Rule{
		Site: faultinject.SiteWALAppend, Shard: faultinject.AnyShard, Nth: 8, Act: faultinject.ActPanic,
	})
	var got []string
	rt, err = run(dir, inj, &got)
	if err == nil {
		t.Fatal("armed crash never fired")
	}
	rt.crash()
	rt2, err := run(dir, nil, &got)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt2.Close(); err != nil {
		t.Fatal(err)
	}
	diffTranscripts(t, ref, got)
}

// TestDurableDegradePolicy: under WALDegrade a WAL failure is recorded,
// the log turns off, and the stream continues uninterrupted — the full
// transcript still matches a crash-free run.
func TestDurableDegradePolicy(t *testing.T) {
	srcs := durableQuerySrcs()
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 64}
	events := stockStream(800, 8, 17)
	base := Config{Shards: 2, BatchSize: 128}

	var ref []string
	rt, err := runDurable(t, t.TempDir(), srcs, base, ecfg, nil, events, 0, &ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New().Arm(faultinject.Rule{
		Site: faultinject.SiteWALAppend, Shard: faultinject.AnyShard, Nth: 3, Act: faultinject.ActPanic,
	})
	cfg := base
	cfg.Injector = inj
	cfg.Durability = &DurConfig{Dir: t.TempDir(), OnWALError: WALDegrade}
	rt2, _, err := NewDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for i, src := range srcs {
		i := i
		if _, err := rt2.Register(query.MustParse(src), ecfg, func(m *core.Match) {
			got = append(got, fmt.Sprintf("q%03d %s", i, canon(m)))
		}); err != nil {
			t.Fatalf("register under degrade: %v", err)
		}
	}
	for _, ev := range events {
		cp := *ev
		if err := rt2.Ingest(&cp); err != nil {
			t.Fatalf("degrade mode must not surface WAL errors to Ingest: %v", err)
		}
	}
	if err := rt2.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt2.Stats()
	if st.WALEnabled {
		t.Error("WAL still enabled after a degrade-policy failure")
	}
	if st.WALErrors == 0 {
		t.Error("degrade-policy failure not counted")
	}
	faults := rt2.WALErrors()
	if len(faults) == 0 || !faults[0].Simulated || faults[0].Op != "append" {
		t.Errorf("unexpected WAL fault records: %+v", faults)
	}
	diffTranscripts(t, ref, got)
}

// TestDurableRetentionPrune: with tiny segments and frequent checkpoints,
// retention must remove segments behind the recovery horizon while the
// log still recovers the full recent window.
func TestDurableRetentionPrune(t *testing.T) {
	srcs := []string{`PATTERN A; B WHERE A.name = 'S00' AND B.name = 'S00' AND B.price > A.price WITHIN 10 units RETURN A, B`}
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 64}
	events := stockStream(4000, 4, 19)
	dir := t.TempDir()
	cfg := Config{Shards: 2, BatchSize: 64}
	cfg.Durability = &DurConfig{Dir: dir, Fsync: wal.FsyncOff, CheckpointEvery: 200, SegmentBytes: 4 << 10}
	rt, _, err := NewDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	if _, err := rt.Register(query.MustParse(srcs[0]), ecfg, func(*core.Match) { n++ }); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		cp := *ev
		if err := rt.Ingest(&cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.WAL.PrunedSegments == 0 {
		t.Fatalf("no segments pruned (segments=%d); retention is inert", st.WAL.Segments)
	}
	// The pruned log must still scan cleanly and hold the durable tail.
	res, err := wal.Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.LastSeq != uint64(len(events)) {
		t.Errorf("pruned log lost the tail: last_seq=%d want %d", res.LastSeq, len(events))
	}
	if res.Checkpoint == nil {
		t.Error("pruned log lost its checkpoint")
	}
}

// TestDurableFailStopSticky: under the default fail-stop policy the first
// WAL error sheds the failing flush and every later Ingest keeps failing
// with the sticky writer error.
func TestDurableFailStopSticky(t *testing.T) {
	inj := faultinject.New().Arm(faultinject.Rule{
		Site: faultinject.SiteWALAppend, Shard: faultinject.AnyShard, Nth: 1, Act: faultinject.ActPanic,
	})
	cfg := Config{Shards: 1, BatchSize: 4, Injector: inj}
	cfg.Durability = &DurConfig{Dir: t.TempDir()}
	rt, _, err := NewDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.crash()
	events := stockStream(64, 4, 23)
	var failed int
	for _, ev := range events {
		cp := *ev
		if err := rt.Ingest(&cp); err != nil {
			failed++
			var we *wal.Error
			if !errors.As(err, &we) {
				t.Fatalf("expected *wal.Error, got %v", err)
			}
		}
	}
	if failed < 2 {
		t.Fatalf("sticky fail-stop error surfaced only %d times", failed)
	}
	st := rt.Stats()
	if st.WALEnabled {
		// Fail-stop leaves the WAL nominally on; the sticky error is the
		// signal. Only degrade turns WALEnabled off.
		t.Log("WAL reported enabled under fail-stop (expected)")
	}
	if st.WALErrors == 0 {
		t.Error("WAL errors not counted")
	}
}
