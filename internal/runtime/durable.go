package runtime

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/wal"
)

// WALErrorPolicy selects how the runtime reacts to a write-ahead-log
// failure (disk full, I/O error, injected crash).
type WALErrorPolicy int

const (
	// WALFailStop (the default) surfaces the error to the failing call and
	// sheds the affected flush: events that were never durable are never
	// processed, so the log stays a superset of what the engines saw. The
	// writer error is sticky — every later Ingest fails too.
	WALFailStop WALErrorPolicy = iota
	// WALDegrade records the fault and continues memory-only: the WAL is
	// disabled, ingestion proceeds, and durability is lost from the first
	// error onward (Stats.WALEnabled turns false).
	WALDegrade
)

// String implements fmt.Stringer.
func (p WALErrorPolicy) String() string {
	switch p {
	case WALFailStop:
		return "fail-stop"
	case WALDegrade:
		return "degrade"
	default:
		return fmt.Sprintf("walpolicy(%d)", int(p))
	}
}

// defaultPartitionSeed seeds the deterministic partition hash when
// DurConfig.Seed is zero; any fixed value works, it only has to be the
// same across the original run and its replay.
const defaultPartitionSeed uint64 = 0x5a53545245414d00 // "ZSTREAM\0"

// DurConfig configures the durability plane (Config.Durability).
type DurConfig struct {
	// Dir is the write-ahead-log directory. Required.
	Dir string
	// Fsync selects when segments are fsynced (default wal.FsyncBatch).
	Fsync wal.FsyncPolicy
	// SyncEvery bounds the unsynced window under wal.FsyncInterval
	// (default 50ms).
	SyncEvery time.Duration
	// SegmentBytes rotates segments past this size (default 64 MiB).
	SegmentBytes int64
	// CheckpointEvery writes a checkpoint after roughly this many logged
	// events (at flush boundaries; default 4096). Registrations and
	// unregistrations always checkpoint immediately.
	CheckpointEvery int
	// OnWALError picks the failure policy (default WALFailStop).
	OnWALError WALErrorPolicy
	// Seed overrides the deterministic partition-hash seed; zero uses a
	// fixed default. A recovered log's persisted seed always wins.
	Seed uint64
	// RecoverEmit, consulted during recovery, returns the OnMatch callback
	// to attach to a checkpointed query, given its original id and
	// normalized text. nil (or a nil return) recovers the query without a
	// callback; its matches still count in Stats.
	RecoverEmit func(id QueryID, src string) func(*core.Match)
}

func (d DurConfig) withDefaults() DurConfig {
	if d.SyncEvery <= 0 {
		d.SyncEvery = 50 * time.Millisecond
	}
	if d.SegmentBytes <= 0 {
		d.SegmentBytes = 64 << 20
	}
	if d.CheckpointEvery <= 0 {
		d.CheckpointEvery = 4096
	}
	return d
}

// WALFault is one recorded write-ahead-log failure, inspectable via
// Runtime.WALErrors (the durability analogue of Runtime.Faults).
type WALFault struct {
	// Op is the failing log operation ("append", "fsync", "checkpoint",
	// "emitwm", "rotate", "open"), Err its rendered error.
	Op  string
	Err string
	// Simulated marks faults injected by the chaos harness.
	Simulated bool
}

// maxWALFaults bounds the fault record list: under fail-stop every later
// Ingest re-observes the sticky writer error, and an ignoring caller must
// not grow the list without bound.
const maxWALFaults = 64

// RecoverInfo summarizes what NewDurable found and rebuilt from the log.
type RecoverInfo struct {
	// Segments is the number of segment files scanned; TruncatedBytes is
	// the torn tail cut from the final one (0 for a clean log).
	Segments       int
	TruncatedBytes int64
	// Events counts all durable events in the log; ReplayedEvents and
	// ReplayedBatches count the suffix inside the recovery horizon that
	// was re-fed through the engines.
	Events          uint64
	ReplayedEvents  uint64
	ReplayedBatches uint64
	// LastSeq and LastTs are the durable stream position: the caller
	// resumes feeding its source from sequence LastSeq+1.
	LastSeq uint64
	LastTs  int64
	// Queries is the number of checkpointed queries re-registered.
	Queries int
}

// String renders the one-line summary the CLI logs on -recover.
func (ri *RecoverInfo) String() string {
	return fmt.Sprintf("recovered: segments=%d events=%d replayed=%d batches=%d truncated=%dB queries=%d last_seq=%d last_ts=%d",
		ri.Segments, ri.Events, ri.ReplayedEvents, ri.ReplayedBatches, ri.TruncatedBytes, ri.Queries, ri.LastSeq, ri.LastTs)
}

// NewDurable creates a Runtime with the durability plane enabled,
// recovering any existing log in cfg.Durability.Dir first: segments are
// scanned and CRC-validated (a torn tail is truncated), checkpointed
// queries are re-registered under their original ids, and the durable
// event suffix inside the recovery horizon is replayed through the normal
// ingest path with matches at or below the durable emit watermark
// suppressed. The pre-crash and post-recovery outputs concatenate to
// exactly the crash-free run's output (exactly-once at the OnMatch
// boundary; a crash between the watermark write and its callbacks can
// lose — never duplicate — that one release round).
//
// Events accepted but not yet durable at the crash are lost; the caller
// resumes its source from RecoverInfo.LastSeq+1.
func NewDurable(cfg Config) (*Runtime, *RecoverInfo, error) {
	if cfg.Durability == nil || cfg.Durability.Dir == "" {
		return nil, nil, errors.New("runtime: NewDurable requires Config.Durability.Dir")
	}
	d := cfg.Durability.withDefaults()
	cfg.Durability = &d

	res, err := wal.Scan(d.Dir)
	if err != nil {
		return nil, nil, err
	}
	seed := d.Seed
	if seed == 0 {
		seed = defaultPartitionSeed
	}
	if res.Meta != nil {
		// The log's persisted partitioning wins: replay must reproduce the
		// original run's shard assignment bit-exactly.
		seed = res.Meta.Seed
		if res.Meta.Shards > 0 {
			cfg.Shards = res.Meta.Shards
		}
		if res.Meta.PartitionBy != "" {
			cfg.PartitionBy = res.Meta.PartitionBy
		}
	}

	rt := New(cfg)
	// Safe to set after New: no event can be ingested and no worker sends
	// happen until this function hands the runtime out; the channel sends
	// below establish the necessary happens-before edges.
	rt.walHash = true
	rt.walSeed = seed
	if res.HaveWM {
		rt.supEnd, rt.supCount, rt.supActive = res.WM.End, res.WM.Count, true
		rt.wmEnd.Store(res.WM.End)
		rt.wmCount.Store(res.WM.Count)
	} else {
		rt.wmEnd.Store(math.MinInt64)
	}

	w, err := wal.NewWriter(
		wal.Options{Dir: d.Dir, Fsync: d.Fsync, SyncEvery: d.SyncEvery, SegmentBytes: d.SegmentBytes, Injector: cfg.Injector},
		wal.Meta{Seed: seed, Shards: rt.cfg.Shards, PartitionBy: rt.cfg.PartitionBy},
		res.LastSeg+1,
	)
	if err != nil {
		_ = rt.Close()
		return nil, nil, err
	}
	rt.wal = w
	rt.walActive.Store(true)
	rt.walTruncated = res.TruncatedBytes

	info := &RecoverInfo{
		Segments:       res.Segments,
		TruncatedBytes: res.TruncatedBytes,
		Events:         res.Events,
		LastSeq:        res.LastSeq,
		LastTs:         res.LastTs,
	}
	if err := rt.recover(res, &d, info); err != nil {
		// Durability is unrecoverable: stop the goroutines without letting
		// Close attempt further log writes.
		rt.walActive.Store(false)
		_ = rt.Close()
		return nil, nil, err
	}
	return rt, info, nil
}

// recover re-registers the checkpointed queries and replays the durable
// event suffix, interleaving registrations at their recorded stream
// positions so batch boundaries, engine groups and shared readers form
// exactly as in the original run.
func (rt *Runtime) recover(res *wal.ScanResult, d *DurConfig, info *RecoverInfo) error {
	var regs []wal.QueryCheckpoint
	var maxWindow int64
	if res.Checkpoint != nil {
		regs = append(regs, res.Checkpoint.Queries...)
		sort.Slice(regs, func(i, j int) bool {
			if regs[i].RegSeq != regs[j].RegSeq {
				return regs[i].RegSeq < regs[j].RegSeq
			}
			return regs[i].ID < regs[j].ID
		})
		maxWindow = res.Checkpoint.MaxWindow
	}
	info.Queries = len(regs)

	// The recovery horizon: every match that may still be emitted (end
	// above the durable watermark) is built entirely from events within
	// the last max-window of the stream — the WITHIN bound (MeiM09 §2).
	// Without a watermark nothing was ever emitted, so replay everything.
	horizon := int64(math.MinInt64)
	if res.HaveWM {
		horizon = res.WM.End - maxWindow
	}

	// Replay observes progressive stream positions: registrations at seq S
	// re-register when the next batch starts past S, exactly the original
	// boundary (Register always flushed pending events first, so every
	// RegSeq is a batch boundary).
	err := wal.Replay(d.Dir, horizon, func(evs []*event.Event) error {
		for len(regs) > 0 && regs[0].RegSeq < evs[0].Seq {
			if err := rt.recoverRegister(regs[0], d); err != nil {
				return err
			}
			regs = regs[1:]
		}
		info.ReplayedBatches++
		info.ReplayedEvents += uint64(len(evs))
		return rt.replayBatch(evs)
	})
	if err != nil {
		return err
	}
	for _, qc := range regs {
		if err := rt.recoverRegister(qc, d); err != nil {
			return err
		}
	}

	rt.mu.Lock()
	defer rt.mu.Unlock()
	// Adopt the durable position even if the horizon skipped everything.
	if res.Events > 0 {
		rt.lastSeq = res.LastSeq
		rt.lastTs = res.LastTs
	}
	// A fresh checkpoint at the recovered position re-anchors retention.
	return rt.noteWALError(rt.writeCheckpointLocked())
}

// recoverRegister re-registers one checkpointed query under its original
// id.
func (rt *Runtime) recoverRegister(qc wal.QueryCheckpoint, d *DurConfig) error {
	q, err := query.Parse(qc.Src)
	if err != nil {
		return fmt.Errorf("runtime: recover query %d: %w", qc.ID, err)
	}
	var emit func(*core.Match)
	if d.RecoverEmit != nil {
		emit = d.RecoverEmit(QueryID(qc.ID), qc.Src)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if QueryID(qc.ID) > rt.nextID {
		rt.nextID = QueryID(qc.ID)
	}
	if _, err := rt.registerLocked(QueryID(qc.ID), q, decodeCoreConfig(qc.Core), emit); err != nil {
		return fmt.Errorf("runtime: recover query %d: %w", qc.ID, err)
	}
	return nil
}

// replayBatch re-feeds one durable batch record through the normal flush
// path — same shard partitioning, same batch boundary — without logging
// it again (walPend stays empty during replay).
func (rt *Runtime) replayBatch(evs []*event.Event) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, ev := range evs {
		s := rt.shard(ev)
		if rt.pending[s] == nil {
			rt.pending[s] = event.GetBatch()
		}
		rt.pending[s] = append(rt.pending[s], ev)
		rt.nPend++
		if ev.Seq > rt.lastSeq {
			rt.lastSeq = ev.Seq
		}
		if ev.Ts > rt.lastTs {
			rt.lastTs = ev.Ts
		}
	}
	rt.ingested.Add(uint64(len(evs)))
	return rt.sendLockedCtx(nil, nil)
}

// newRegisteredLocked builds a registry entry, capturing the durable
// checkpoint fields when the WAL is on. Callers hold mu.
func (rt *Runtime) newRegisteredLocked(id QueryID, key groupKey, q *query.Query, cfg core.Config, seq uint64) *registered {
	r := &registered{id: id, key: key}
	if rt.wal != nil {
		r.src = q.String()
		r.coreCfg = cfg
		r.regSeq = seq
		r.window = q.Within
	}
	return r
}

// writeCheckpointLocked appends a checkpoint covering the current live
// query set and stream position, then prunes segments that fell behind
// the recovery horizon. Callers hold mu (the WAL writer has its own lock
// for the merger's concurrent watermark writes).
func (rt *Runtime) writeCheckpointLocked() error {
	if rt.wal == nil {
		return nil
	}
	rt.sinceCkpt = 0
	cp := wal.Checkpoint{
		LastSeq:   rt.lastSeq,
		LastTs:    rt.lastTs,
		EmitEnd:   rt.wmEnd.Load(),
		EmitCount: rt.wmCount.Load(),
	}
	regs := make([]*registered, 0, len(rt.live))
	for _, r := range rt.live {
		if !r.quarantined {
			regs = append(regs, r)
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].regSeq != regs[j].regSeq {
			return regs[i].regSeq < regs[j].regSeq
		}
		return regs[i].id < regs[j].id
	})
	for _, r := range regs {
		cp.Queries = append(cp.Queries, wal.QueryCheckpoint{
			ID:     int64(r.id),
			Src:    r.src,
			RegSeq: r.regSeq,
			Core:   encodeCoreConfig(r.coreCfg),
		})
		if r.window > cp.MaxWindow {
			cp.MaxWindow = r.window
		}
	}
	if err := rt.wal.WriteCheckpoint(cp); err != nil {
		return err
	}
	_, perr := rt.wal.Prune()
	return perr
}

// noteWALError folds one WAL failure into the runtime's fault surface and
// applies the error policy: fail-stop passes the error through, degrade
// swallows it and turns the WAL off. Safe without mu (Register/Ingest call
// it under mu; the merger calls it from its own goroutine).
func (rt *Runtime) noteWALError(err error) error {
	if err == nil {
		return nil
	}
	rt.walErrs.Add(1)
	f := WALFault{Op: "wal", Err: err.Error()}
	var we *wal.Error
	if errors.As(err, &we) {
		f.Op = we.Op
		f.Simulated = we.Simulated
	}
	rt.walFaultsMu.Lock()
	if len(rt.walFaults) < maxWALFaults {
		rt.walFaults = append(rt.walFaults, f)
	}
	rt.walFaultsMu.Unlock()
	if rt.cfg.Durability != nil && rt.cfg.Durability.OnWALError == WALDegrade {
		rt.walActive.Store(false)
		return nil
	}
	return err
}

// WALErrors returns the recorded write-ahead-log fault records (capped at
// a small fixed number; under fail-stop the first entry is the root
// cause, later ones re-observations of the sticky writer error).
func (rt *Runtime) WALErrors() []WALFault {
	rt.walFaultsMu.Lock()
	defer rt.walFaultsMu.Unlock()
	out := make([]WALFault, len(rt.walFaults))
	copy(out, rt.walFaults)
	return out
}

// crash simulates a process crash for the crash-recovery differential
// suite: worker channels close with the crashing flag set, so no engine
// final-flushes (a crash cannot confirm trailing negations), the merger
// exits holding back its heap, buffered-but-unflushed events are
// discarded (they were never durable), and the log is closed without a
// final sync — exactly the state a kill -9 leaves on disk as far as the
// OS page cache is concerned.
func (rt *Runtime) crash() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	rt.crashing.Store(true)
	batches := rt.pending
	rt.pending = make([][]*event.Event, rt.cfg.Shards)
	rt.nPend = 0
	rt.walPend = nil
	rt.sendMu.Lock()
	rt.mu.Unlock()
	for _, w := range rt.workers {
		close(w.in)
	}
	rt.sendMu.Unlock()
	<-rt.merger
	for _, b := range batches {
		if b != nil {
			event.PutBatch(b)
		}
	}
	if rt.wal != nil {
		rt.wal.CloseNoSync()
	}
}

// durableShard is the deterministic partition hash for durable runtimes:
// FNV-1a over the partition value, folded with the persisted seed and a
// 64-bit avalanche mix so low-cardinality keys still spread across
// shards. Replay reproduces the original assignment bit-exactly.
func durableShard(v event.Value, seed uint64, shards int) int {
	const prime = 1099511628211
	h := uint64(14695981039346656037) ^ seed
	switch v.Kind {
	case event.KindString:
		for i := 0; i < len(v.S); i++ {
			h ^= uint64(v.S[i])
			h *= prime
		}
	case event.KindFloat:
		u := math.Float64bits(v.F)
		for i := 0; i < 8; i++ {
			h ^= (u >> (8 * i)) & 0xff
			h *= prime
		}
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(shards))
}

// encodeCoreConfig projects an engine config onto its serializable subset
// (pointer-valued fields — an explicit plan shape, seeded statistics —
// are dropped; see wal.CoreConfig).
func encodeCoreConfig(c core.Config) wal.CoreConfig {
	return wal.CoreConfig{
		Strategy:         int(c.Strategy),
		BatchSize:        c.BatchSize,
		Negation:         int(c.Negation),
		UseHash:          c.UseHash,
		Adaptive:         c.Adaptive,
		AdaptEvery:       c.AdaptEvery,
		DriftThreshold:   c.DriftThreshold,
		ImproveThreshold: c.ImproveThreshold,
		MaxDisorder:      c.MaxDisorder,
		StatsSeed:        c.StatsSeed,
		DisableEAT:       c.DisableEAT,
	}
}

// decodeCoreConfig is the inverse of encodeCoreConfig.
func decodeCoreConfig(c wal.CoreConfig) core.Config {
	return core.Config{
		Strategy:         core.Strategy(c.Strategy),
		BatchSize:        c.BatchSize,
		Negation:         plan.NegPlacement(c.Negation),
		UseHash:          c.UseHash,
		Adaptive:         c.Adaptive,
		AdaptEvery:       c.AdaptEvery,
		DriftThreshold:   c.DriftThreshold,
		ImproveThreshold: c.ImproveThreshold,
		MaxDisorder:      c.MaxDisorder,
		StatsSeed:        c.StatsSeed,
		DisableEAT:       c.DisableEAT,
	}
}
