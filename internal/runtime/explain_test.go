package runtime

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
)

var updateGolden = flag.Bool("update", false, "rewrite EXPLAIN golden files")

// goldenNames labels the seven router differential templates
// (fanoutQuerySrcs cases 0..6) for the golden files.
var goldenNames = []string{
	"eq-dispatch",
	"eq-residual",
	"residual-only",
	"unconstrained",
	"negation",
	"trailing-negation",
	"trailing-kleene",
}

// TestExplainGolden pins the zstream-explain/v1 serialization for the seven
// router differential templates. With one shard, a fixed strategy and no
// ingested events, every field of the document is a pure function of the
// query text and configuration, so the bytes must be stable across runs —
// schema changes must bump explain.Version and regenerate with -update.
func TestExplainGolden(t *testing.T) {
	srcs := fanoutQuerySrcs(len(goldenNames), 1)
	for i, src := range srcs {
		t.Run(goldenNames[i], func(t *testing.T) {
			rt := New(Config{Shards: 1, BatchSize: 16})
			defer rt.Close()
			id, err := rt.Register(query.MustParse(src),
				core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 64}, nil)
			if err != nil {
				t.Fatal(err)
			}
			doc, err := rt.Explain(id)
			if err != nil {
				t.Fatal(err)
			}
			got, err := doc.JSON()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			// Byte-stability within one process: a second snapshot of an
			// untouched query must serialize identically.
			doc2, err := rt.Explain(id)
			if err != nil {
				t.Fatal(err)
			}
			again, err := doc2.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, append(again, '\n')) {
				t.Fatal("consecutive EXPLAIN snapshots of an idle query differ")
			}

			path := filepath.Join("testdata", "explain", goldenNames[i]+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to regenerate): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("EXPLAIN drifted from golden %s (regenerate with -update if intended)\n got: %s\nwant: %s",
					path, got, want)
			}
		})
	}
}

// TestExplainLiveCounters ingests a stream and checks that the EXPLAIN
// counters move: leaf arrivals, router admissions, both selectivity views,
// and the metrics totals must reflect the processed events.
func TestExplainLiveCounters(t *testing.T) {
	rt := New(Config{Shards: 2, BatchSize: 32})
	defer rt.Close()
	q := query.MustParse(`PATTERN A; B
		WHERE A.name = 'S00' AND A.price > 50 AND B.name = 'S00' AND B.price < 50
		WITHIN 40 units RETURN A, B`)
	id, err := rt.Register(q, core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	events := stockStream(2000, 4, 11)
	for _, ev := range events {
		cp := *ev
		if err := rt.Ingest(&cp); err != nil {
			t.Fatal(err)
		}
	}
	doc, err := rt.Explain(id)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Version != "zstream-explain/v1" {
		t.Fatalf("version = %q", doc.Version)
	}
	if doc.Router == nil || doc.Router.Mode != "indexed" {
		t.Fatalf("router section = %+v", doc.Router)
	}
	if doc.Router.Events != 2000 {
		t.Errorf("router events = %d, want 2000 (all shards)", doc.Router.Events)
	}
	for _, rc := range doc.Router.Classes {
		if rc.Admitted == 0 {
			t.Errorf("class %s: no admissions counted", rc.Class)
		}
		if rc.AdmissionRate <= 0 || rc.AdmissionRate >= 1 {
			t.Errorf("class %s: admission rate %v not in (0,1) — eq dispatch on 1 of 4 symbols plus a residual", rc.Class, rc.AdmissionRate)
		}
		if rc.LeafSeen == 0 {
			t.Errorf("class %s: leaf saw nothing", rc.Class)
		}
		if rc.LeafSeen < rc.LeafPassed {
			t.Errorf("class %s: passed %d > seen %d", rc.Class, rc.LeafPassed, rc.LeafSeen)
		}
		// The conditioned pass rate must not be below the unconditioned
		// admission rate: the router only withholds events the leaf filter
		// would have rejected.
		if rc.PassRate < rc.AdmissionRate {
			t.Errorf("class %s: pass rate %v < admission rate %v", rc.Class, rc.PassRate, rc.AdmissionRate)
		}
	}
	if len(doc.Plans) == 0 {
		t.Fatal("no plan variants")
	}
	var shards []int
	for _, v := range doc.Plans {
		shards = append(shards, v.Shards...)
		if v.Tree == nil {
			t.Fatal("variant without tree")
		}
		if v.Tree.In == 0 && v.Tree.Out == 0 && len(v.Tree.Children) == 0 {
			t.Error("root operator counted nothing")
		}
	}
	if len(shards) != 2 {
		t.Errorf("plan variants cover shards %v, want both", shards)
	}

	m := rt.Metrics()
	if len(m.Queries) != 1 || m.Queries[0].ID != id {
		t.Fatalf("metrics queries = %+v", m.Queries)
	}
	if m.Queries[0].Operators.In == 0 {
		t.Error("metrics operator totals empty")
	}
	if m.Router.Events != 2000 {
		t.Errorf("metrics router events = %d", m.Router.Events)
	}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"zstream_events_ingested_total 2000",
		fmt.Sprintf(`zstream_query_records_in_total{query="%d",group="%d"}`, id, m.Queries[0].GroupID),
		"# TYPE zstream_router_events_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

// TestExplainAdaptiveReplanObservable flips the stream's rate profile so an
// adaptive engine re-plans, and checks that the switch is observable across
// consecutive EXPLAIN snapshots: the switch counter increments, the plan
// fingerprint changes, and last_switch records the transition.
func TestExplainAdaptiveReplanObservable(t *testing.T) {
	rt := New(Config{Shards: 1, BatchSize: 16, PartitionBy: "none"})
	defer rt.Close()
	q := query.MustParse(`PATTERN A;B;C
		WHERE A.name='A' AND B.name='B' AND C.name='C' WITHIN 100`)
	id, err := rt.Register(q, core.Config{
		Strategy: core.StrategyOptimal, Adaptive: true, AdaptEvery: 4, BatchSize: 16,
		DriftThreshold: 0.3, ImproveThreshold: 0.05,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	ts := int64(0)
	feed := func(name string) {
		ts++
		if err := rt.Ingest(event.NewStock(0, ts, 0, name, float64(rng.Intn(100)), 1)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := rt.Explain(id) // seeded from uniform statistics
	if err != nil {
		t.Fatal(err)
	}
	// A heavily skewed stream (A rare) makes the collected statistics drift
	// far from the uniform seed, so the engine re-plans.
	for i := 0; i < 3000; i++ {
		switch {
		case i%100 == 0:
			feed("A")
		case i%2 == 0:
			feed("B")
		default:
			feed("C")
		}
	}
	after, err := rt.Explain(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Plans) != 1 || len(after.Plans) != 1 {
		t.Fatalf("expected 1 variant on 1 shard, got %d then %d", len(before.Plans), len(after.Plans))
	}
	b, a := before.Plans[0], after.Plans[0]
	if a.Switches <= b.Switches {
		t.Fatalf("plan switches did not increase: %d -> %d", b.Switches, a.Switches)
	}
	if a.Fingerprint == b.Fingerprint {
		t.Errorf("fingerprint unchanged across re-plan: %s", a.Fingerprint)
	}
	if a.LastSwitch == nil {
		t.Fatal("last_switch not recorded")
	}
	if a.LastSwitch.To != a.Fingerprint {
		t.Errorf("last_switch.to = %s, current fingerprint = %s", a.LastSwitch.To, a.Fingerprint)
	}
	if a.LastSwitch.From == a.LastSwitch.To {
		t.Error("last_switch records no structural change")
	}
}

// TestExplainSharedPrefix registers a prefix family and checks the sharing
// section: the consumer's document must name the producer, carry its
// operator tree, and skip the per-node cost breakdown (the prefix cost
// belongs to the producer).
func TestExplainSharedPrefix(t *testing.T) {
	rt := New(Config{Shards: 2, BatchSize: 32})
	defer rt.Close()
	srcs := prefixQuerySrcs(2, 1) // cases 0 and 1: same A;B prefix family
	ecfg := core.Config{Strategy: core.StrategyLeftDeep, BatchSize: 64}
	soloID, err := rt.Register(query.MustParse(srcs[0]), ecfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	consumerID, err := rt.Register(query.MustParse(srcs[1]), ecfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	events := stockStream(1500, 2, 13)
	for _, ev := range events {
		cp := *ev
		if err := rt.Ingest(&cp); err != nil {
			t.Fatal(err)
		}
	}
	solo, err := rt.Explain(soloID)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Sharing == nil || solo.Sharing.ProducerID != 0 {
		t.Fatalf("solo sharing = %+v, want no producer", solo.Sharing)
	}
	cons, err := rt.Explain(consumerID)
	if err != nil {
		t.Fatal(err)
	}
	sh := cons.Sharing
	if sh == nil || sh.PrefixLen != 2 || sh.ProducerID >= 0 {
		t.Fatalf("consumer sharing = %+v, want prefix_len=2 and a producer", sh)
	}
	if sh.ProducerReaders < 1 {
		t.Errorf("producer readers = %d", sh.ProducerReaders)
	}
	if sh.ProducerTree == nil {
		t.Fatal("consumer document lacks the producer tree")
	}
	if sh.ProducerTree.Out == 0 {
		t.Error("producer emitted nothing on this stream")
	}
	if cons.Cost == nil || cons.Cost.Tree != nil {
		t.Errorf("consumer cost tree should be absent (prefix cost belongs to the producer); cost = %+v", cons.Cost)
	}

	m := rt.Metrics()
	if len(m.Producers) != 1 {
		t.Fatalf("metrics producers = %+v", m.Producers)
	}
	if m.Producers[0].Events == 0 || m.Producers[0].Readers == 0 {
		t.Errorf("producer metrics empty: %+v", m.Producers[0])
	}
}

// TestExplainErrors covers the failure surface: unknown ids and closed
// runtimes must error, not hang or panic.
func TestExplainErrors(t *testing.T) {
	rt := New(Config{Shards: 1})
	if _, err := rt.Explain(42); !errors.Is(err, ErrUnknownQuery) {
		t.Errorf("unknown id: err = %v", err)
	}
	var uq *UnknownQueryError
	if _, err := rt.Explain(42); !errors.As(err, &uq) || uq.ID != 42 {
		t.Errorf("unknown id: err = %v, want UnknownQueryError{42}", err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Explain(1); err != ErrClosed {
		t.Errorf("closed: err = %v", err)
	}
	m := rt.Metrics() // must not hang on dead workers
	if len(m.Queries) != 0 {
		t.Errorf("closed runtime reported queries: %+v", m.Queries)
	}
}
