package runtime

import (
	"context"
	"time"

	"repro/internal/event"
)

// OverloadPolicy selects what Ingest does when a shard worker's input
// queue is full. Only event batches are ever shed: registry operations
// (register/unregister/snapshot/quarantine) always ride the queue intact,
// so control-plane semantics survive any overload policy.
type OverloadPolicy int

const (
	// OverloadBlock blocks the ingest caller until the worker drains a
	// slot — classic backpressure, the default and the only policy that
	// never sheds.
	OverloadBlock OverloadPolicy = iota
	// OverloadBlockWithTimeout blocks up to Config.OverloadTimeout, then
	// sheds the stuck shard's batch and moves on.
	OverloadBlockWithTimeout
	// OverloadDropNewest sheds the incoming batch immediately when the
	// queue is full: queued (older) work is preferred.
	OverloadDropNewest
	// OverloadDropOldest sheds the oldest queued event batch to make room
	// for the incoming one: fresh data is preferred. Registry operations
	// found at the head are requeued (their relative order preserved), so
	// under this policy an op may take effect a few batches later than its
	// ingest-order point.
	OverloadDropOldest
)

// String names the policy for logs and docs.
func (p OverloadPolicy) String() string {
	switch p {
	case OverloadBlock:
		return "block"
	case OverloadBlockWithTimeout:
		return "block-with-timeout"
	case OverloadDropNewest:
		return "drop-newest"
	case OverloadDropOldest:
		return "drop-oldest"
	}
	return "unknown"
}

// shedBatch counts and releases one shard's dropped event batch. The
// events were stamped and owned by the runtime (Ingest forbids caller
// reuse), so they go straight back to the event pool.
func (rt *Runtime) shedBatch(shard int, evs []*event.Event) {
	if len(evs) == 0 {
		return
	}
	rt.shed[shard].Add(uint64(len(evs)))
	for _, ev := range evs {
		event.ReleaseEvent(ev)
	}
	event.PutBatch(evs)
}

// shedTotal sums the per-shard shed counters.
func (rt *Runtime) shedTotal() uint64 {
	var n uint64
	for i := range rt.shed {
		n += rt.shed[i].Load()
	}
	return n
}

// sendBatch delivers one shard's event flush under the overload policy.
// Only event batches pass through here — op messages always block — and a
// policy shed is not an error: it is counted per shard and the batch
// released. The returned error is non-nil only for context expiry.
//
// An empty flush (heartbeat) that meets a full queue is skipped rather
// than shed or waited on: a full queue already holds newer stream-time
// messages for the shard, so the skip can never stall the watermark merge.
func (rt *Runtime) sendBatch(ctx context.Context, w *worker, shard int, msg shardMsg) error {
	if rt.cfg.Overload == OverloadBlock && ctx == nil {
		w.in <- msg // fast path: unconditional backpressure
		return nil
	}
	select {
	case w.in <- msg:
		return nil
	default:
	}
	if len(msg.events) == 0 {
		return nil // heartbeat: skip, see above
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	switch rt.cfg.Overload {
	case OverloadDropNewest:
		rt.shedBatch(shard, msg.events)
		return nil
	case OverloadDropOldest:
		rt.dropOldest(w, shard, msg)
		return nil
	case OverloadBlockWithTimeout:
		t := time.NewTimer(rt.cfg.OverloadTimeout)
		defer t.Stop()
		select {
		case w.in <- msg:
			return nil
		case <-t.C:
			rt.shedBatch(shard, msg.events)
			return nil
		case <-done:
			rt.shedBatch(shard, msg.events)
			return ctx.Err()
		}
	default: // OverloadBlock with a context
		select {
		case w.in <- msg:
			return nil
		case <-done:
			rt.shedBatch(shard, msg.events)
			return ctx.Err()
		}
	}
}

// dropOldest makes room for msg by shedding the oldest queued event batch.
// Registry ops popped along the way are requeued at the tail in their
// original relative order (the slot each pop frees guarantees the requeue
// cannot block: sendMu makes this the only producer). If one full cycle
// finds only ops, the incoming batch is shed instead.
func (rt *Runtime) dropOldest(w *worker, shard int, msg shardMsg) {
	for range rt.cfg.QueueLen + 1 {
		select {
		case w.in <- msg:
			return
		default:
		}
		var old shardMsg
		select {
		case old = <-w.in:
		default:
			continue // the worker drained the queue; retry the send
		}
		if old.reg != nil || old.unreg != 0 || old.snap != nil || old.quar != 0 {
			w.in <- old
			continue
		}
		rt.shedBatch(shard, old.events)
	}
	rt.shedBatch(shard, msg.events)
}

// IngestContext is Ingest with a deadline: when every queue stays full
// until ctx expires (under OverloadBlock, the only policy that waits
// indefinitely), the undelivered shard batches of the current flush are
// shed, counted, and ctx's error returned. Events buffered but not yet
// flushed are kept for the next flush.
func (rt *Runtime) IngestContext(ctx context.Context, ev *event.Event) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return rt.ingest(ctx, ev)
}

// DrainReport is CloseContext's account of a bounded drain.
type DrainReport struct {
	// Complete is true when every engine final-flushed and the merger
	// delivered every remaining match before the deadline.
	Complete bool
	// EventsShed counts buffered events this drain dropped because a
	// worker queue stayed full past the deadline.
	EventsShed uint64
}

// CloseContext is Close with a deadline: buffered batches that cannot be
// delivered before ctx expires are shed (and reported), the worker
// channels are always closed, and the merger is waited on only up to the
// deadline. A second call — after either Close variant — waits for the
// merger again under the new deadline, so a timed-out drain can be
// re-awaited. The runtime rejects further use with ErrClosed either way.
func (rt *Runtime) CloseContext(ctx context.Context) (DrainReport, error) {
	return rt.closeCtx(ctx)
}
