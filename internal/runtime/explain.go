package runtime

import (
	"fmt"
	"io"
	"slices"

	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/query"
	"repro/internal/router"
)

// snapOp requests a worker-side observability snapshot. It rides the shard
// op queue like registrations, so a snapshot reflects exactly the events of
// every Ingest that returned before the request was sent — per-operator
// counters are plain fields owned by the worker goroutine, and the queue is
// the only safe place to read them.
type snapOp struct {
	// gid, when non-zero, selects one engine group for a full EXPLAIN
	// capture; zero captures only the per-group totals (metrics scrape).
	gid int64
	// prodID, when non-zero, additionally captures that producer's
	// operator tree (shared-prefix consumer EXPLAIN).
	prodID int64
	// reply must be buffered with capacity >= the shard count so workers
	// never block on it.
	reply chan<- shardSnap
}

// groupTotals is one engine group's whole-tree counter roll-up.
type groupTotals struct {
	gid    int64
	totals explain.Totals
}

// prodTotals is one shared-subplan producer's counter roll-up.
type prodTotals struct {
	id      int64
	totals  explain.Totals
	readers int
	events  uint64
}

// shardSnap is one worker's reply to a snapOp.
type shardSnap struct {
	shard       int
	routerStats router.Stats
	// rangeEntries is the shard router's live sorted-threshold entry count.
	rangeEntries int
	groups       []groupTotals
	prods        []prodTotals

	// EXPLAIN capture (snapOp.gid != 0):
	found       bool
	info        core.ExplainInfo
	sub         *router.SubInfo
	prodTree    *explain.Node
	prodReaders int
}

// snapshot serves one snapOp on the worker goroutine.
func (w *worker) snapshot(op *snapOp) {
	s := shardSnap{shard: w.id}
	if w.router != nil {
		s.routerStats = w.router.Stats()
		s.rangeEntries = w.router.RangeTableSize()
	}
	for _, g := range w.groups {
		s.groups = append(s.groups, groupTotals{gid: g.gid, totals: g.eng.OperatorTotals()})
	}
	for _, pe := range w.prods {
		s.prods = append(s.prods, prodTotals{
			id:      pe.id,
			totals:  explain.TreeTotals(pe.prod.Plan().Root),
			readers: pe.prod.Readers(),
			events:  pe.prod.Events(),
		})
	}
	if op.gid != 0 {
		if g, ok := w.byGID[op.gid]; ok {
			s.found = true
			s.info = g.eng.BuildExplain()
			if w.router != nil {
				if si, ok := w.router.Describe(op.gid); ok {
					s.sub = &si
				}
			}
		}
		if op.prodID != 0 {
			if pe, ok := w.byProdID[op.prodID]; ok {
				s.prodTree = explain.Tree(pe.prod.Plan().Root)
				s.prodReaders = pe.prod.Readers()
			}
		}
	}
	op.reply <- s
}

// snap broadcasts a snapOp to every shard (flushing pending ingest batches
// first, so the snapshot covers them) and collects the replies indexed by
// shard. Must be called with mu held; returns with mu released.
func (rt *Runtime) snap(gid, prodID int64) []shardSnap {
	ts := rt.lastTs // captured under mu: the op closure runs unlocked
	reply := make(chan shardSnap, rt.cfg.Shards)
	rt.sendLocked(func(int) shardMsg {
		return shardMsg{ts: ts, snap: &snapOp{gid: gid, prodID: prodID, reply: reply}}
	})
	rt.mu.Unlock()
	snaps := make([]shardSnap, rt.cfg.Shards)
	for range snaps {
		s := <-reply
		snaps[s.shard] = s
	}
	return snaps
}

// Explain assembles the zstream-explain/v1 document for a live query. The
// snapshot request rides the worker op queues, so the counters it reports
// cover exactly the events whose Ingest returned before the call; per-shard
// sections are merged by plan fingerprint (shards that adapted onto
// different plans appear as separate plan variants).
func (rt *Runtime) Explain(id QueryID) (*explain.Doc, error) {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil, ErrClosed
	}
	if rt.faults.dirty.Load() {
		rt.reapFaultsLocked(true)
	}
	reg, ok := rt.live[id]
	if !ok {
		rt.mu.Unlock()
		return nil, &UnknownQueryError{ID: id}
	}
	if reg.quarantined {
		rt.mu.Unlock()
		if f := rt.faults.get(id); f != nil {
			return nil, &QueryFaultError{Fault: *f}
		}
		return nil, ErrQuarantined
	}
	gs := rt.groups[reg.key]
	q := gs.engines[0].Query()
	gid, members, consumer := gs.gid, gs.members, gs.consumer
	var prodID int64
	prefixLen := 0
	if consumer {
		prodID = rt.prefixes[gs.prefixKey].prodID
		prefixLen = core.SharedPrefixLen(q, reg.key.cfg)
	}
	snaps := rt.snap(gid, prodID) // releases mu
	return rt.assembleDoc(id, q, gid, members, consumer, prodID, prefixLen, snaps), nil
}

// assembleDoc merges per-shard snapshots into one document.
func (rt *Runtime) assembleDoc(id QueryID, q *query.Query, gid int64, members int,
	consumer bool, prodID int64, prefixLen int, snaps []shardSnap) *explain.Doc {
	doc := &explain.Doc{Version: explain.Version, QueryID: int64(id), Query: explain.QuerySection(q)}

	var variants []explain.PlanVariant
	byFP := map[string]int{}
	var first *core.ExplainInfo
	leafSeen := make([]uint64, len(q.Info.Classes))
	leafPassed := make([]uint64, len(q.Info.Classes))
	for shard := range snaps {
		s := &snaps[shard]
		if !s.found {
			continue
		}
		if first == nil {
			first = &s.info
		}
		if i, ok := byFP[s.info.Fingerprint]; ok {
			v := &variants[i]
			v.Shards = append(v.Shards, shard)
			v.Switches += s.info.Switches
			explain.Merge(v.Tree, s.info.Tree)
		} else {
			byFP[s.info.Fingerprint] = len(variants)
			variants = append(variants, explain.PlanVariant{
				Fingerprint: s.info.Fingerprint,
				Shards:      []int{shard},
				Switches:    s.info.Switches,
				LastSwitch:  s.info.LastSwitch,
				Tree:        s.info.Tree,
			})
		}
		for ci, c := range s.info.Leaves {
			if ci < len(leafSeen) {
				leafSeen[ci] += c.In
				leafPassed[ci] += c.Out
			}
		}
	}
	if first != nil {
		doc.Strategy = first.Strategy
		doc.Cost = first.Cost
	}
	doc.Plans = variants

	sh := &explain.Sharing{GroupID: gid, Members: members}
	if consumer {
		sh.PrefixLen = prefixLen
		sh.ProducerID = prodID
		var pt *explain.Node
		for shard := range snaps {
			s := &snaps[shard]
			if s.prodTree == nil {
				continue
			}
			sh.ProducerReaders = s.prodReaders
			if pt == nil {
				pt = s.prodTree
			} else {
				explain.Merge(pt, s.prodTree)
			}
		}
		sh.ProducerTree = pt
	}
	doc.Sharing = sh

	doc.Router = rt.routerSection(q, snaps, leafSeen, leafPassed)
	if len(variants) > 0 {
		doc.Text = explain.Render(variants[0].Tree)
	}
	return doc
}

// routerSection merges the per-shard subscription views. For shared-prefix
// consumers the subscription covers only the suffix classes (prefix
// admission is delegated to the producer), so prefix classes report zero
// admissions here.
func (rt *Runtime) routerSection(q *query.Query, snaps []shardSnap, leafSeen, leafPassed []uint64) *explain.Router {
	if rt.cfg.NaiveFanout {
		return &explain.Router{Mode: "naive"}
	}
	var firstSub *router.SubInfo
	var events uint64
	admitted := make([]uint64, len(q.Info.Classes))
	for shard := range snaps {
		s := &snaps[shard]
		if s.sub == nil {
			continue
		}
		if firstSub == nil {
			firstSub = s.sub
		}
		events += s.sub.Events
		for _, ca := range s.sub.Classes {
			if ca.Class < len(admitted) {
				admitted[ca.Class] += ca.Admitted
			}
		}
	}
	r := &explain.Router{Mode: "indexed", Events: events}
	if firstSub == nil {
		return r
	}
	if firstSub.Fallback {
		r.Mode = "fallback"
		return r
	}
	for _, ca := range firstSub.Classes {
		if ca.Class >= len(q.Info.Classes) {
			continue
		}
		r.Classes = append(r.Classes, explain.RouterClass{
			Class:         q.Info.Classes[ca.Class].Alias,
			EqAtoms:       ca.EqAtoms,
			RangeAtoms:    ca.RangeAtoms,
			Residuals:     ca.Residual,
			Always:        ca.Always,
			Admitted:      admitted[ca.Class],
			AdmissionRate: explain.Ratio(admitted[ca.Class], events),
			LeafSeen:      leafSeen[ca.Class],
			LeafPassed:    leafPassed[ca.Class],
			PassRate:      explain.Ratio(leafPassed[ca.Class], leafSeen[ca.Class]),
		})
	}
	return r
}

// QueryMetrics is one live query's counter snapshot. Queries aliased onto a
// shared engine group (whole-query dedupe) report the group's physical
// counters, so summing rows over-counts shared work — group rows can be
// deduplicated by GroupID.
type QueryMetrics struct {
	// ID is the query handle; GroupID the engine group executing it.
	ID QueryID
	// GroupID is the engine group; Members how many queries alias it.
	GroupID int64
	Members int
	// Engine sums the group's per-shard engine counters.
	Engine core.EngineStats
	// Operators sums the group's per-shard operator-tree counters.
	Operators explain.Totals
}

// ProducerMetrics is one live shared-subplan producer's counter snapshot.
type ProducerMetrics struct {
	// ID is the producer's (negative) identifier.
	ID int64
	// Readers is the consumer-group count (max across shards, which all
	// agree in steady state).
	Readers int
	// Events counts events the producer processed, summed across shards.
	Events uint64
	// Operators sums the producer's per-shard operator-tree counters.
	Operators explain.Totals
}

// RouterMetrics sums the per-shard router counters.
type RouterMetrics struct {
	// Events counts routed events (each event once per shard it reached).
	Events uint64
	// Deliveries counts (subscriber, event) pairs yielded.
	Deliveries uint64
	// ResidualEvals counts deduplicated residual predicate evaluations.
	ResidualEvals uint64
	// RangeProbes counts sorted-threshold table stabs (one binary search
	// per populated direction per event per range-dispatched attribute).
	RangeProbes uint64
	// RangeTableEntries is the live sorted-threshold entry count summed
	// across shards and cached schema tables (a gauge, not a counter).
	RangeTableEntries uint64
}

// Metrics is a consistent runtime-wide observability snapshot: the
// aggregate Stats plus per-query, per-producer and router detail. The
// per-operator counters are captured through the worker op queues, so they
// cover exactly the events whose Ingest returned before the call.
type Metrics struct {
	// Stats is the runtime aggregate (same as Runtime.Stats).
	Stats Stats
	// Router sums router counters across shards (zero under NaiveFanout).
	Router RouterMetrics
	// Queries holds one row per live query, sorted by ID.
	Queries []QueryMetrics
	// Producers holds one row per live shared-subplan producer, sorted by
	// ID.
	Producers []ProducerMetrics
}

// Metrics captures an observability snapshot. After Close it returns the
// final aggregate Stats with no per-query detail (the workers are gone).
func (rt *Runtime) Metrics() Metrics {
	m := Metrics{Stats: rt.Stats()}
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return m
	}
	type liveQ struct {
		id      QueryID
		gid     int64
		members int
		engines []*core.Engine
	}
	var qs []liveQ
	for id, reg := range rt.live {
		if reg.quarantined {
			continue // the group is gone; the fault plane covers it
		}
		gs := rt.groups[reg.key]
		qs = append(qs, liveQ{id: id, gid: gs.gid, members: gs.members, engines: gs.engines})
	}
	snaps := rt.snap(0, 0) // releases mu

	byGID := map[int64]explain.Totals{}
	prods := map[int64]*ProducerMetrics{}
	for shard := range snaps {
		s := &snaps[shard]
		m.Router.Events += s.routerStats.Events
		m.Router.Deliveries += s.routerStats.Deliveries
		m.Router.ResidualEvals += s.routerStats.ResidualEvals
		m.Router.RangeProbes += s.routerStats.RangeProbes
		m.Router.RangeTableEntries += uint64(s.rangeEntries)
		for _, gt := range s.groups {
			t := byGID[gt.gid]
			t.In += gt.totals.In
			t.Out += gt.totals.Out
			t.Buffered += gt.totals.Buffered
			t.Evicted += gt.totals.Evicted
			byGID[gt.gid] = t
		}
		for _, pt := range s.prods {
			pm := prods[pt.id]
			if pm == nil {
				pm = &ProducerMetrics{ID: pt.id}
				prods[pt.id] = pm
			}
			pm.Events += pt.events
			pm.Operators.In += pt.totals.In
			pm.Operators.Out += pt.totals.Out
			pm.Operators.Buffered += pt.totals.Buffered
			pm.Operators.Evicted += pt.totals.Evicted
			if pt.readers > pm.Readers {
				pm.Readers = pt.readers
			}
		}
	}
	for _, lq := range qs {
		qm := QueryMetrics{ID: lq.id, GroupID: lq.gid, Members: lq.members, Operators: byGID[lq.gid]}
		for _, e := range lq.engines {
			s := e.Snapshot()
			qm.Engine.Events += s.Events
			qm.Engine.Matches += s.Matches
			qm.Engine.Rounds += s.Rounds
			qm.Engine.PlanSwitches += s.PlanSwitches
			qm.Engine.PeakMemBytes += s.PeakMemBytes
		}
		m.Queries = append(m.Queries, qm)
	}
	slices.SortFunc(m.Queries, func(a, b QueryMetrics) int { return int(a.ID - b.ID) })
	for _, pm := range prods {
		m.Producers = append(m.Producers, *pm)
	}
	slices.SortFunc(m.Producers, func(a, b ProducerMetrics) int { return int(a.ID - b.ID) })
	return m
}

// LiveQueries returns the live query handles, sorted.
func (rt *Runtime) LiveQueries() []QueryID {
	rt.mu.Lock()
	ids := make([]QueryID, 0, len(rt.live))
	for id := range rt.live {
		ids = append(ids, id)
	}
	rt.mu.Unlock()
	slices.Sort(ids)
	return ids
}

// WriteMetrics renders a Metrics snapshot in Prometheus text exposition
// format (version 0.0.4) to w.
func (rt *Runtime) WriteMetrics(w io.Writer) error {
	return rt.Metrics().WritePrometheus(w)
}

// promWriter accumulates the first write error so metric emission reads
// linearly.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) family(name, help, typ string) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
}

func (p *promWriter) val(name, labels string, v uint64) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, "%s%s %d\n", name, labels, v)
	}
}

// WritePrometheus renders the snapshot in Prometheus text exposition format
// (hand-rolled; counters end in _total, gauges do not).
func (m Metrics) WritePrometheus(w io.Writer) error {
	p := &promWriter{w: w}

	p.family("zstream_shards", "Worker shard count.", "gauge")
	p.val("zstream_shards", "", uint64(m.Stats.Shards))
	p.family("zstream_live_queries", "Registered queries.", "gauge")
	p.val("zstream_live_queries", "", uint64(m.Stats.LiveQueries))
	p.family("zstream_engine_groups", "Distinct physical engine groups.", "gauge")
	p.val("zstream_engine_groups", "", uint64(m.Stats.EngineGroups))
	p.family("zstream_shared_subplans", "Live shared-prefix producers.", "gauge")
	p.val("zstream_shared_subplans", "", uint64(m.Stats.SharedSubplans))
	p.family("zstream_shared_prefix_consumers", "Engine groups reading a shared producer.", "gauge")
	p.val("zstream_shared_prefix_consumers", "", uint64(m.Stats.SharedPrefixConsumers))
	p.family("zstream_events_ingested_total", "Events accepted by Ingest.", "counter")
	p.val("zstream_events_ingested_total", "", m.Stats.EventsIngested)
	p.family("zstream_matches_delivered_total", "Matches delivered by the merger.", "counter")
	p.val("zstream_matches_delivered_total", "", m.Stats.MatchesDelivered)
	p.family("zstream_engine_deliveries_total", "(engine, event) deliveries across shards.", "counter")
	p.val("zstream_engine_deliveries_total", "", m.Stats.EngineDeliveries)

	p.family("zstream_quarantined_queries", "Registered queries quarantined by a contained fault.", "gauge")
	p.val("zstream_quarantined_queries", "", uint64(m.Stats.QuarantinedQueries))
	p.family("zstream_query_faults_total", "Contained query faults recorded (engine dispatch or OnMatch panics).", "counter")
	p.val("zstream_query_faults_total", "", m.Stats.Faults)
	p.family("zstream_ingest_shed_events_total", "Events shed at the ingest queue boundary by the overload policy, per shard.", "counter")
	for i, n := range m.Stats.ShedByShard {
		p.val("zstream_ingest_shed_events_total", fmt.Sprintf(`{shard="%d"}`, i), n)
	}

	if m.Stats.WALEnabled || m.Stats.WALErrors > 0 {
		p.family("zstream_wal_errors_total", "WAL append/fsync/checkpoint failures recorded.", "counter")
		p.val("zstream_wal_errors_total", "", m.Stats.WALErrors)
		p.family("zstream_wal_appended_events_total", "Events made durable in the write-ahead log.", "counter")
		p.val("zstream_wal_appended_events_total", "", m.Stats.WAL.AppendedEvents)
		p.family("zstream_wal_fsyncs_total", "fsync calls issued by the WAL writer.", "counter")
		p.val("zstream_wal_fsyncs_total", "", m.Stats.WAL.Fsyncs)
		p.family("zstream_wal_segments_total", "Segment files opened by the WAL writer.", "counter")
		p.val("zstream_wal_segments_total", "", m.Stats.WAL.Segments)
		p.family("zstream_wal_truncated_bytes_total", "Torn-tail bytes truncated during recovery scans.", "counter")
		p.val("zstream_wal_truncated_bytes_total", "", uint64(m.Stats.WALTruncatedBytes))
	}

	p.family("zstream_router_events_total", "Events classified by the per-shard routers.", "counter")
	p.val("zstream_router_events_total", "", m.Router.Events)
	p.family("zstream_router_deliveries_total", "(subscriber, event) pairs yielded by the routers.", "counter")
	p.val("zstream_router_deliveries_total", "", m.Router.Deliveries)
	p.family("zstream_router_residual_evals_total", "Deduplicated residual predicate evaluations.", "counter")
	p.val("zstream_router_residual_evals_total", "", m.Router.ResidualEvals)
	p.family("zstream_router_range_probes_total", "Sorted-threshold table stabs (binary searches) by the routers.", "counter")
	p.val("zstream_router_range_probes_total", "", m.Router.RangeProbes)
	p.family("zstream_router_range_table_entries", "Live sorted-threshold entries across shard routers and cached schema tables.", "gauge")
	p.val("zstream_router_range_table_entries", "", m.Router.RangeTableEntries)

	ql := func(q QueryMetrics) string {
		return fmt.Sprintf(`{query="%d",group="%d"}`, q.ID, q.GroupID)
	}
	p.family("zstream_query_events_total", "Events processed by the query's engine group.", "counter")
	for _, q := range m.Queries {
		p.val("zstream_query_events_total", ql(q), q.Engine.Events)
	}
	p.family("zstream_query_matches_total", "Matches emitted by the query's engine group.", "counter")
	for _, q := range m.Queries {
		p.val("zstream_query_matches_total", ql(q), q.Engine.Matches)
	}
	p.family("zstream_query_rounds_total", "Assembly rounds run by the query's engine group.", "counter")
	for _, q := range m.Queries {
		p.val("zstream_query_rounds_total", ql(q), q.Engine.Rounds)
	}
	p.family("zstream_query_plan_switches_total", "Adaptive plan switches by the query's engine group.", "counter")
	for _, q := range m.Queries {
		p.val("zstream_query_plan_switches_total", ql(q), q.Engine.PlanSwitches)
	}
	p.family("zstream_query_peak_mem_bytes", "Summed per-shard peak buffer bytes.", "gauge")
	for _, q := range m.Queries {
		p.val("zstream_query_peak_mem_bytes", ql(q), uint64(q.Engine.PeakMemBytes))
	}
	p.family("zstream_query_records_in_total", "Candidates examined across the query's operator trees.", "counter")
	for _, q := range m.Queries {
		p.val("zstream_query_records_in_total", ql(q), q.Operators.In)
	}
	p.family("zstream_query_records_out_total", "Records emitted across the query's operator trees.", "counter")
	for _, q := range m.Queries {
		p.val("zstream_query_records_out_total", ql(q), q.Operators.Out)
	}
	p.family("zstream_query_buffered_records", "Live records buffered by the query's operator trees.", "gauge")
	for _, q := range m.Queries {
		p.val("zstream_query_buffered_records", ql(q), uint64(q.Operators.Buffered))
	}
	p.family("zstream_query_evicted_records_total", "Records reclaimed by EAT eviction.", "counter")
	for _, q := range m.Queries {
		p.val("zstream_query_evicted_records_total", ql(q), q.Operators.Evicted)
	}

	pl := func(pm ProducerMetrics) string { return fmt.Sprintf(`{producer="%d"}`, pm.ID) }
	p.family("zstream_producer_readers", "Consumer groups attached to the producer.", "gauge")
	for _, pm := range m.Producers {
		p.val("zstream_producer_readers", pl(pm), uint64(pm.Readers))
	}
	p.family("zstream_producer_events_total", "Events processed by the producer.", "counter")
	for _, pm := range m.Producers {
		p.val("zstream_producer_events_total", pl(pm), pm.Events)
	}
	p.family("zstream_producer_records_out_total", "Records the producer appended to shared buffers.", "counter")
	for _, pm := range m.Producers {
		p.val("zstream_producer_records_out_total", pl(pm), pm.Operators.Out)
	}
	p.family("zstream_producer_buffered_records", "Live records in the producer's shared buffers.", "gauge")
	for _, pm := range m.Producers {
		p.val("zstream_producer_buffered_records", pl(pm), uint64(pm.Operators.Buffered))
	}
	return p.err
}
