package runtime

import (
	"fmt"
	"math"
	"runtime/debug"
	"slices"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/faultinject"
	"repro/internal/query"
	"repro/internal/router"
	"repro/internal/slicepool"
	"repro/internal/wal"
)

// shardMsg is one unit of work on a worker's input queue: a batch of
// events for this shard (possibly empty — a heartbeat), the stream time at
// flush, and at most one registry operation. Queue order defines the
// shard-local event order, so registrations take effect at an exact point
// in the stream.
type shardMsg struct {
	events []*event.Event
	ts     int64 // stream time when the batch was flushed (max ingested ts)
	reg    *regOp
	unreg  QueryID
	snap   *snapOp
	// quar names an engine group quarantined elsewhere (another shard's
	// contained panic, or a merger-side reap) that this shard must drop
	// without recording a fault of its own.
	quar int64
}

// regOp hands a registration to a worker. Exactly one of two shapes:
//   - a new engine group: eng/sink/info are set, and — for shared-prefix
//     consumers — prodID names the producer to attach to, with prod/
//     prodInfo carrying the producer itself when this registration creates
//     it;
//   - an alias onto an existing group (whole-query dedupe): eng is nil and
//     gid names the group, which is guaranteed live by queue order.
//
// seq is the runtime's ingest sequence stamp at registration: the exact
// visibility barrier for shared partial matches (Subplan.Attach).
type regOp struct {
	id   QueryID
	gid  int64
	info *query.Info
	eng  *core.Engine
	sink *matchSink
	emit func(*core.Match)
	seq  uint64

	prodID   int64
	prod     *core.Subplan
	prodInfo *query.Info
}

// matchSink collects one engine's emitted matches between batch
// boundaries. It is written synchronously by the engine's emit callback
// inside the worker goroutine, so it needs no locking. take/recycle
// alternate between two slices so steady-state collection reuses the same
// backing arrays instead of allocating per batch.
type matchSink struct{ buf, spare []*core.Match }

func (s *matchSink) add(m *core.Match) { s.buf = append(s.buf, m) }

func (s *matchSink) take() []*core.Match {
	out := s.buf
	s.buf = s.spare
	s.spare = nil
	return out
}

// recycle returns a slice obtained from take once its matches have been
// copied out.
func (s *matchSink) recycle(b []*core.Match) {
	clear(b)
	s.spare = b[:0]
}

// pendingMatch is one match waiting in the merger for its watermark.
type pendingMatch struct {
	end   int64
	shard int
	seq   uint64 // per-shard emission order, for a deterministic tie-break
	m     *core.Match
	emit  func(*core.Match)
	id    QueryID // owning query, for merger-side fault containment
}

// matchBatchPool recycles the pendingMatch batches workers ship to the
// merger (worker allocates, merger returns), keeping steady-state batch
// reporting allocation-free (see internal/slicepool).
var matchBatchPool slicepool.Pool[pendingMatch]

func getMatchBatch() []pendingMatch  { return matchBatchPool.Get() }
func putMatchBatch(b []pendingMatch) { matchBatchPool.Put(b) }

// mergeMsg is one worker's batch report to the merger: the matches its
// engines emitted this batch (sorted by end-time) and the shard's new
// watermark — a lower bound on the End of any match the shard may still
// produce. final marks the worker's last message, sent after Close
// flushed every engine.
type mergeMsg struct {
	shard     int
	matches   []pendingMatch
	watermark int64
	final     bool
}

// engineGroup is one physical engine on this shard together with the
// queries aliased onto it. Without whole-query dedupe every group has
// exactly one slot; with it, textually identical queries share the group
// and each gets the group's matches fanned out at gather time.
type engineGroup struct {
	gid    int64
	eng    *core.Engine
	sink   *matchSink
	slots  int
	reader *buffer.ShareReader // shared-prefix consumer's producer cursor
	prodID int64               // producer the reader belongs to (0 = none)

	// adaptive caches eng.IsAdaptive(); batchDeliv counts this group's
	// deliveries within the current routed batch, so the gap to the batch
	// size (= router-rejected events) can be credited to the engine's
	// statistics collector after the batch.
	adaptive   bool
	batchDeliv uint64

	// gather-round scratch: taken holds the engine's matches for the
	// current round, emitted marks that the first slot already delivered
	// the originals (later slots clone).
	round   uint64
	taken   []*core.Match
	emitted bool

	// quarantined marks a group dropped by a contained panic: every
	// dispatch path skips it until the batch-boundary sweep removes its
	// state structurally.
	quarantined bool
}

// querySlot is one registered query, in registration order. Slot order
// defines the deterministic per-batch match interleaving, exactly as the
// per-query engine list did before dedupe existed.
type querySlot struct {
	id   QueryID
	emit func(*core.Match)
	g    *engineGroup
}

// prodEntry is one live shared-subplan producer on this shard, with the
// consumer groups whose horizons bound its eviction.
type prodEntry struct {
	id      int64
	prod    *core.Subplan
	members []*engineGroup

	// quarantined marks a producer dropped by a contained panic; its
	// consumer groups are quarantined with it (their shared prefix state
	// is unrecoverable).
	quarantined bool
}

// worker owns one stream partition: a private physical engine per engine
// group, fed in shard-local order, synced at every batch boundary, plus
// the shard's shared-subplan producers. With a router attached (the
// default), each event batch is classified once; producers are fed and
// assembled before any consuming engine touches the batch, so consumers
// always observe a producer at or ahead of their own stream position.
// router == nil is the naive deliver-to-all path (Config.NaiveFanout).
type worker struct {
	id        int
	in        chan shardMsg
	router    *router.Router
	delivered *atomic.Uint64 // runtime-wide (engine, event) delivery counter
	faults    *faultSink
	inj       *faultinject.Injector // nil in production
	// crashing, when set, tells the worker its input channel was closed by
	// a simulated crash, not a graceful Close: skip the final flush (a
	// crash cannot confirm trailing negations) and exit without advancing
	// the watermark. Test hook for the crash-recovery differential suite.
	crashing *atomic.Bool

	slots    []*querySlot
	groups   []*engineGroup // creation order (deterministic naive fan-out)
	byGID    map[int64]*engineGroup
	prods    []*prodEntry
	byProdID map[int64]*prodEntry
	round    uint64

	// shardTime is the largest timestamp of an event THIS shard received —
	// the clock a naive (deliver-to-all) engine on this shard would have.
	// Routed engines are advanced to it, not to the global stream time, so
	// time-driven confirmations (trailing negation/closure) fire in exactly
	// the same batch as they would without the router, keeping delivery
	// order byte-identical between the two paths.
	shardTime int64
	// quarDirty flags that a group or producer was quarantined since the
	// last structural sweep.
	quarDirty bool
}

// syncProds runs one producer assembly round ahead of the consumers:
// horizon is each producer's consumers' minimum MatchHorizon BEFORE the
// batch, batchMinTs the batch's first (smallest) timestamp; together they
// lower-bound every EAT a consumer round may use while processing the
// batch (see core.Subplan.Assemble).
func (w *worker) syncProds(batchMinTs int64) {
	for _, pe := range w.prods {
		if pe.quarantined {
			continue
		}
		w.assembleProd(pe, batchMinTs, false)
	}
}

// flushProds final-assembles every producer so consumer flushes observe
// all remaining partial matches.
func (w *worker) flushProds() {
	for _, pe := range w.prods {
		if pe.quarantined {
			continue
		}
		w.assembleProd(pe, 0, true)
	}
}

// recoverGroup is the deferred recovery arm of every engine-group
// dispatch: a panic inside the group's engine (or an injected fault)
// quarantines the group instead of killing the worker — and with it every
// other query on the shard.
func (w *worker) recoverGroup(g *engineGroup, site faultinject.Site) {
	if r := recover(); r != nil {
		w.quarantineGroup(g, string(site), r, debug.Stack())
	}
}

// recoverProd is the producer-side recovery arm: a faulted shared-prefix
// producer quarantines every consumer group attached to it (their shared
// prefix state is unrecoverable).
func (w *worker) recoverProd(pe *prodEntry, site faultinject.Site) {
	if r := recover(); r != nil {
		w.quarantineProd(pe, string(site), r, debug.Stack())
	}
}

// quarantineGroup marks a group failed after a contained panic: the flag
// stops all further dispatch, one fault per member query is recorded, and
// the batch-boundary sweep removes the group's state structurally. The
// worker records into the fault sink only — it must never take the
// runtime's registry lock (deadlock against a backpressured send phase);
// the next registry API call reaps the sink.
func (w *worker) quarantineGroup(g *engineGroup, site string, rec any, stack []byte) {
	if g.quarantined {
		return
	}
	g.quarantined = true
	w.quarDirty = true
	var ids []QueryID
	for _, s := range w.slots {
		if s.g == g {
			ids = append(ids, s.id)
		}
	}
	w.faults.report(g.gid, ids, QueryFault{
		GroupID:  g.gid,
		Shard:    w.id,
		Site:     site,
		Panic:    fmt.Sprint(rec),
		Stack:    string(stack),
		StreamTs: w.shardTime,
	})
}

func (w *worker) quarantineProd(pe *prodEntry, site string, rec any, stack []byte) {
	if pe.quarantined {
		return
	}
	pe.quarantined = true
	w.quarDirty = true
	for _, g := range pe.members {
		w.quarantineGroup(g, site, rec, stack)
	}
}

// feedRouted delivers one routed sub-batch to a group's engine under panic
// containment. MaskAll deliveries fall back to full filter evaluation
// inside ProcessAdmitted.
func (w *worker) feedRouted(g *engineGroup, evs []router.Delivery) {
	defer w.recoverGroup(g, faultinject.SiteEngineBatch)
	w.inj.Hit(faultinject.SiteEngineBatch, w.id, g.gid)
	for _, d := range evs {
		g.eng.ProcessAdmitted(d.Ev, d.Mask)
	}
}

// feedNaive delivers one whole shard batch to a group's engine (naive
// deliver-to-all path) under panic containment. The ingest side
// pre-stamped a globally monotone Seq, so every engine adopts it and
// shares the event unmutated — no per-engine copy on the hot path.
func (w *worker) feedNaive(g *engineGroup, evs []*event.Event) {
	defer w.recoverGroup(g, faultinject.SiteEngineBatch)
	w.inj.Hit(faultinject.SiteEngineBatch, w.id, g.gid)
	for _, ev := range evs {
		g.eng.Process(ev)
	}
}

func (w *worker) feedProdRouted(pe *prodEntry, evs []router.Delivery) {
	defer w.recoverProd(pe, faultinject.SiteProducerBatch)
	w.inj.Hit(faultinject.SiteProducerBatch, w.id, pe.id)
	for _, d := range evs {
		pe.prod.ProcessAdmitted(d.Ev, d.Mask)
	}
}

func (w *worker) feedProdNaive(pe *prodEntry, evs []*event.Event) {
	defer w.recoverProd(pe, faultinject.SiteProducerBatch)
	w.inj.Hit(faultinject.SiteProducerBatch, w.id, pe.id)
	for _, ev := range evs {
		pe.prod.Process(ev)
	}
}

// assembleProd runs one producer assembly (or final flush) round under
// panic containment. Quarantined members no longer bound the horizon:
// their positions must not pin producer memory.
func (w *worker) assembleProd(pe *prodEntry, batchMinTs int64, flush bool) {
	defer w.recoverProd(pe, faultinject.SiteProducerBatch)
	horizon := int64(math.MaxInt64)
	for _, g := range pe.members {
		if g.quarantined {
			continue
		}
		if h := g.eng.MatchHorizon(); h < horizon {
			horizon = h
		}
	}
	if flush {
		pe.prod.Flush(horizon)
	} else {
		pe.prod.Assemble(horizon, batchMinTs)
	}
}

// syncGroup runs one batch-boundary round (or final flush) under panic
// containment.
func (w *worker) syncGroup(g *engineGroup, flush bool) {
	defer w.recoverGroup(g, faultinject.SiteEngineSync)
	w.inj.Hit(faultinject.SiteEngineSync, w.id, g.gid)
	switch {
	case flush:
		g.eng.Flush()
	case w.router != nil:
		// Routed engines see only admitted events; SyncAt advances their
		// clock to the shard time and still runs a round when pending
		// confirmations lag behind it.
		g.eng.SyncAt(w.shardTime)
	default:
		g.eng.Sync()
	}
}

// noteRejects credits router-level rejects to an adaptive engine's
// statistics collector under panic containment.
func (w *worker) noteRejects(g *engineGroup, n uint64) {
	defer w.recoverGroup(g, faultinject.SiteEngineBatch)
	g.eng.NoteRouterRejects(n, w.shardTime)
}

// sweepQuarantined structurally removes every group and producer flagged
// since the last sweep. It runs at the batch boundary (after gather), so
// no flagged state is removed mid-iteration. A quarantined consumer's
// reader is detached from its producer here, so the shared buffer stops
// clamping eviction on a dead reader's position — a failed consumer never
// pins producer memory.
func (w *worker) sweepQuarantined() {
	if !w.quarDirty {
		return
	}
	w.quarDirty = false
	for i := 0; i < len(w.slots); {
		if w.slots[i].g.quarantined {
			w.slots = append(w.slots[:i], w.slots[i+1:]...)
		} else {
			i++
		}
	}
	var qg []*engineGroup
	for _, g := range w.groups {
		if g.quarantined {
			qg = append(qg, g)
		}
	}
	for _, g := range qg {
		w.dropGroup(g)
	}
	var qp []*prodEntry
	for _, pe := range w.prods {
		if pe.quarantined {
			qp = append(qp, pe)
		}
	}
	for _, pe := range qp {
		w.dropProd(pe)
	}
}

// register applies one regOp at its exact queue position.
func (w *worker) register(op *regOp) {
	if op.prod != nil {
		pe := &prodEntry{id: op.prodID, prod: op.prod}
		w.prods = append(w.prods, pe)
		w.byProdID[op.prodID] = pe
		if w.router != nil {
			w.router.Add(op.prodID, op.prodInfo, pe)
		}
	}
	var g *engineGroup
	if op.eng != nil {
		g = &engineGroup{gid: op.gid, eng: op.eng, sink: op.sink, adaptive: op.eng.IsAdaptive()}
		w.groups = append(w.groups, g)
		w.byGID[op.gid] = g
		if op.prodID != 0 {
			pe := w.byProdID[op.prodID]
			g.reader = pe.prod.Attach(op.seq)
			g.prodID = op.prodID
			op.eng.ConnectSharedPrefix(g.reader)
			pe.members = append(pe.members, g)
		}
		if w.router != nil {
			w.router.Add(op.gid, op.info, g)
		}
	} else {
		g = w.byGID[op.gid]
		if g == nil || g.quarantined {
			// The host group was quarantined after the registry aliased
			// this query onto it: the new query inherits the fault rather
			// than silently running nowhere.
			w.faults.report(op.gid, []QueryID{op.id}, QueryFault{
				GroupID:  op.gid,
				Shard:    w.id,
				Site:     "register.alias",
				Panic:    "engine group quarantined before alias registration",
				StreamTs: w.shardTime,
			})
			return
		}
	}
	g.slots++
	w.slots = append(w.slots, &querySlot{id: op.id, emit: op.emit, g: g})
}

// unregister removes a query slot; the group (and any producer it alone
// kept alive) goes with it when the last slot leaves.
func (w *worker) unregister(id QueryID) {
	var g *engineGroup
	for i, s := range w.slots {
		if s.id == id {
			g = s.g
			w.slots = append(w.slots[:i], w.slots[i+1:]...)
			break
		}
	}
	if g == nil {
		return
	}
	g.slots--
	if g.slots > 0 {
		return
	}
	w.dropGroup(g)
}

// dropGroup removes a group's shard-local state: list/index entries, its
// router subscription and — for shared-prefix consumers — its producer
// reader, dropping the producer when the last reader detaches. Shared by
// unregister and the quarantine sweep.
func (w *worker) dropGroup(g *engineGroup) {
	for i, x := range w.groups {
		if x == g {
			w.groups = append(w.groups[:i], w.groups[i+1:]...)
			break
		}
	}
	delete(w.byGID, g.gid)
	if w.router != nil {
		w.router.Remove(g.gid)
	}
	if g.reader == nil {
		return
	}
	pe := w.byProdID[g.prodID]
	if pe == nil {
		return
	}
	for i, x := range pe.members {
		if x == g {
			pe.members = append(pe.members[:i], pe.members[i+1:]...)
			break
		}
	}
	// A quarantined producer's internals are suspect: skip Detach and let
	// the sweep drop the producer wholesale.
	if pe.quarantined {
		g.reader = nil
		return
	}
	pe.prod.Detach(g.reader)
	g.reader = nil
	if pe.prod.Readers() == 0 {
		w.dropProd(pe)
	}
}

// dropProd removes a producer's shard-local state; idempotent (the
// quarantine sweep may reach a producer the last consumer drop already
// removed).
func (w *worker) dropProd(pe *prodEntry) {
	if _, ok := w.byProdID[pe.id]; !ok {
		return
	}
	for i, x := range w.prods {
		if x == pe {
			w.prods = append(w.prods[:i], w.prods[i+1:]...)
			break
		}
	}
	delete(w.byProdID, pe.id)
	if w.router != nil {
		w.router.Remove(pe.id)
	}
}

func (w *worker) run(out chan<- mergeMsg) {
	streamTime := int64(math.MinInt64 / 2)
	w.shardTime = math.MinInt64 / 2
	var emitSeq uint64

	gather := func(flush bool) []pendingMatch {
		w.round++
		batch := getMatchBatch()
		for _, s := range w.slots {
			g := s.g
			if g.quarantined {
				continue
			}
			if g.round != w.round {
				g.round = w.round
				w.syncGroup(g, flush)
				if g.quarantined {
					// The round panicked: the sink's matches are suspect
					// and die with the group at the sweep.
					continue
				}
				g.taken = g.sink.take()
				g.emitted = false
			}
			if len(g.taken) == 0 {
				continue
			}
			// The first slot of a group delivers the engine's matches as
			// is; further slots (dedupe aliases) get private shallow
			// clones, preserving the exact per-slot emission a private
			// twin engine would have produced.
			clone := g.emitted
			g.emitted = true
			for _, m := range g.taken {
				mm := m
				if clone {
					mm = cloneMatch(m)
				}
				emitSeq++
				batch = append(batch, pendingMatch{end: mm.End, shard: w.id, seq: emitSeq, m: mm, emit: s.emit, id: s.id})
			}
		}
		for _, g := range w.groups {
			if g.round == w.round && g.taken != nil {
				g.sink.recycle(g.taken)
				g.taken = nil
			}
		}
		// Each engine emits in end-time order; interleave the per-slot
		// runs into one sorted batch. seq (assigned in slot order above)
		// breaks end-time ties, so the order is deterministic.
		slices.SortFunc(batch, func(a, b pendingMatch) int {
			if a.end != b.end {
				if a.end < b.end {
					return -1
				}
				return 1
			}
			if a.seq < b.seq {
				return -1
			}
			return 1
		})
		return batch
	}

	for msg := range w.in {
		if msg.ts > streamTime {
			streamTime = msg.ts
		}
		if n := len(msg.events); n > 0 {
			// ingest order: the batch's last event carries its max ts
			if ts := msg.events[n-1].Ts; ts > w.shardTime {
				w.shardTime = ts
			}
		}
		switch {
		case msg.reg != nil:
			w.register(msg.reg)
		case msg.unreg != 0:
			w.unregister(msg.unreg)
		case msg.snap != nil:
			w.snapshot(msg.snap)
		case msg.quar != 0:
			// Quarantine broadcast from the registry reap: the group
			// faulted on another shard (or in its OnMatch callback); drop
			// it here too, without recording a duplicate fault.
			if g, ok := w.byGID[msg.quar]; ok && !g.quarantined {
				g.quarantined = true
				w.quarDirty = true
			}
		}
		if w.router != nil {
			// One classification pass decides, per event, which engines
			// (and producers) receive it and with which admitted-class
			// bits; groups whose classes all reject an event are never
			// touched. Producers drain their deliveries and assemble
			// first, so consumer rounds see an up-to-date shared prefix.
			var nDeliv uint64
			batches := w.router.Route(msg.events)
			if len(w.prods) > 0 && len(msg.events) > 0 {
				for _, sb := range batches {
					pe, ok := sb.Payload.(*prodEntry)
					if !ok || pe.quarantined {
						continue
					}
					w.feedProdRouted(pe, sb.Events)
				}
				w.syncProds(msg.events[0].Ts)
			}
			for _, sb := range batches {
				g, ok := sb.Payload.(*engineGroup)
				if !ok || g.quarantined {
					continue
				}
				w.feedRouted(g, sb.Events)
				g.batchDeliv = uint64(len(sb.Events))
				nDeliv += uint64(len(sb.Events))
			}
			if nDeliv > 0 {
				w.delivered.Add(nDeliv)
			}
			// Credit router-level rejects to adaptive engines: an event the
			// router withheld from a group was rejected by every one of its
			// class filters, so the statistics collector can fold it in as a
			// bulk reject — rates and selectivities then describe the
			// unconditioned stream, exactly what a deliver-to-all engine
			// would have measured (fallback subscriptions receive every
			// event, so their gap is zero by construction).
			if n := uint64(len(msg.events)); n > 0 {
				for _, g := range w.groups {
					if g.adaptive && !g.quarantined && n > g.batchDeliv {
						w.noteRejects(g, n-g.batchDeliv)
					}
					g.batchDeliv = 0
				}
			}
		} else {
			if len(w.prods) > 0 && len(msg.events) > 0 {
				for _, pe := range w.prods {
					if pe.quarantined {
						continue
					}
					w.feedProdNaive(pe, msg.events)
				}
				w.syncProds(msg.events[0].Ts)
			}
			if len(msg.events) > 0 {
				var nDeliv uint64
				for _, g := range w.groups {
					if g.quarantined {
						continue
					}
					w.feedNaive(g, msg.events)
					nDeliv += uint64(len(msg.events))
				}
				if nDeliv > 0 {
					w.delivered.Add(nDeliv)
				}
			}
		}
		// Batch release: the events now live in engine buffers; the slice
		// that carried them returns to the shared pool.
		event.PutBatch(msg.events)
		batch := gather(false)
		// Sweep before the watermark probe: it runs MatchHorizon on every
		// remaining group, and a just-quarantined engine's buffers are not
		// safe to read.
		w.sweepQuarantined()

		// The shard watermark: no match this shard later produces can end
		// before it. Future matches either complete on an already buffered
		// unconsumed final-class instance (engine MatchHorizon) or on a
		// future event, whose timestamp is at least the flushed stream
		// time (ingest order is globally non-decreasing).
		wm := streamTime
		for _, g := range w.groups {
			if h := g.eng.MatchHorizon(); h < wm {
				wm = h
			}
		}
		out <- mergeMsg{shard: w.id, matches: batch, watermark: wm, final: false}
	}

	// Simulated crash: no final flush — a real crash cannot confirm the
	// trailing negations and closures a flush would emit, and recovery
	// must be free to veto them. The non-advancing watermark keeps the
	// merger from releasing anything more on this shard's account.
	if w.crashing != nil && w.crashing.Load() {
		out <- mergeMsg{shard: w.id, matches: getMatchBatch(), watermark: math.MinInt64, final: true}
		return
	}

	// Close: final flush confirms trailing negations and closures; after
	// it no shard match is outstanding, so the watermark jumps to +inf.
	// Producers flush first so consumer flushes observe every partial
	// match.
	w.flushProds()
	batch := gather(true)
	out <- mergeMsg{shard: w.id, matches: batch, watermark: math.MaxInt64, final: true}
}

// cloneMatch gives a dedupe alias a private Match header and Fields slice.
// The constituent events (and closure-group slices) inside Fields are
// shared with the original — they are immutable stream data every engine
// already shares.
func cloneMatch(m *core.Match) *core.Match {
	c := *m
	c.Fields = append([]core.Field(nil), m.Fields...)
	return &c
}

// matchHeap is a hand-rolled min-heap of pending matches ordered by
// (end, shard, seq) — a total, deterministic order consistent with
// end-time order. It avoids container/heap's per-push interface boxing,
// which showed up as GC pressure on match-heavy workloads.
type matchHeap []pendingMatch

func (h matchHeap) less(i, j int) bool {
	if h[i].end != h[j].end {
		return h[i].end < h[j].end
	}
	if h[i].shard != h[j].shard {
		return h[i].shard < h[j].shard
	}
	return h[i].seq < h[j].seq
}

func (h *matchHeap) push(pm pendingMatch) {
	*h = append(*h, pm)
	a := *h
	for i := len(a) - 1; i > 0; {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

func (h *matchHeap) pop() pendingMatch {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = pendingMatch{} // release the match pointer to the GC
	a = a[:n]
	*h = a
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && a.less(l, min) {
			min = l
		}
		if r < n && a.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		a[i], a[min] = a[min], a[i]
		i = min
	}
	return top
}

// runMerger is the single consumer of every worker's match stream: it
// holds back matches until every shard's watermark passes their end-time,
// then releases them heap-ordered, giving one globally end-time-ordered
// output across all queries and shards. Per-query callbacks run here, so
// they are never invoked concurrently; a panicking callback quarantines
// its query (emitMatch) and its remaining queued matches are skipped.
func (rt *Runtime) runMerger() {
	defer close(rt.merger)
	n := rt.cfg.Shards
	wms := make([]int64, n)
	for i := range wms {
		wms[i] = math.MinInt64
	}
	var h matchHeap
	var skip map[QueryID]bool // queries whose OnMatch panicked
	var round []pendingMatch  // reused release scratch (zero steady-state allocs)
	finals := 0
	release := func() {
		min := wms[0]
		for _, wm := range wms[1:] {
			if wm < min {
				min = wm
			}
		}
		// Strictly below the watermark: a shard at watermark W may still
		// produce a match ending exactly at W.
		round = round[:0]
		for len(h) > 0 && h[0].end < min {
			pm := h.pop()
			if skip != nil && skip[pm.id] {
				continue
			}
			if rt.supActive {
				// Crash recovery: suppress replayed matches at or below the
				// recovered durable emit watermark — they were delivered
				// before the crash. Matches release in non-decreasing end
				// order, so once one passes the watermark the cursor is done.
				if pm.end < rt.supEnd || (pm.end == rt.supEnd && rt.supSeen < rt.supCount) {
					if pm.end == rt.supEnd {
						rt.supSeen++
					}
					rt.suppressed.Add(1)
					continue
				}
				rt.supActive = false
			}
			round = append(round, pm)
		}
		if len(round) == 0 {
			return
		}
		if rt.wal != nil {
			// Exactly-once boundary: advance and persist the emit watermark
			// BEFORE any callback runs, so a crash mid-round suppresses the
			// whole round on replay (matches may be lost to the crash, never
			// duplicated). Ends are non-decreasing across rounds, so the
			// (end, count) pair totals every match delivered so far.
			end, cnt := rt.wmEnd.Load(), rt.wmCount.Load()
			for i := range round {
				if round[i].end > end {
					end, cnt = round[i].end, 1
				} else {
					cnt++
				}
			}
			if rt.walActive.Load() {
				if rt.noteWALError(rt.wal.WriteEmitWM(wal.EmitWM{End: end, Count: cnt})) != nil {
					// Fail-stop and the watermark did not become durable:
					// delivering now would double-deliver after recovery
					// (replay would not suppress these matches). Drop the
					// round — every constituent event is already durably
					// logged ahead of the engines, so replay rebuilds and
					// delivers these matches itself.
					clear(round)
					return
				}
			}
			rt.wmEnd.Store(end)
			rt.wmCount.Store(cnt)
		}
		for i := range round {
			pm := &round[i]
			rt.delivered.Add(1)
			if pm.emit != nil && !rt.emitMatch(pm) {
				if skip == nil {
					skip = map[QueryID]bool{}
				}
				skip[pm.id] = true
			}
		}
		clear(round)
	}
	for msg := range rt.mergeCh {
		for _, pm := range msg.matches {
			h.push(pm)
		}
		putMatchBatch(msg.matches)
		if msg.watermark > wms[msg.shard] {
			wms[msg.shard] = msg.watermark
		}
		release()
		if msg.final {
			finals++
			if finals == n {
				return
			}
		}
	}
}
