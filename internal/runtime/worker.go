package runtime

import (
	"math"
	"slices"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/router"
	"repro/internal/slicepool"
)

// shardMsg is one unit of work on a worker's input queue: a batch of
// events for this shard (possibly empty — a heartbeat), the stream time at
// flush, and at most one registry operation. Queue order defines the
// shard-local event order, so registrations take effect at an exact point
// in the stream.
type shardMsg struct {
	events []*event.Event
	ts     int64 // stream time when the batch was flushed (max ingested ts)
	reg    *regOp
	unreg  QueryID
}

// regOp hands a pre-built per-shard engine to a worker. info carries the
// analyzed query for the worker's router index.
type regOp struct {
	id   QueryID
	info *query.Info
	eng  *core.Engine
	sink *matchSink
	emit func(*core.Match)
}

// matchSink collects one engine's emitted matches between batch
// boundaries. It is written synchronously by the engine's emit callback
// inside the worker goroutine, so it needs no locking. take/recycle
// alternate between two slices so steady-state collection reuses the same
// backing arrays instead of allocating per batch.
type matchSink struct{ buf, spare []*core.Match }

func (s *matchSink) add(m *core.Match) { s.buf = append(s.buf, m) }

func (s *matchSink) take() []*core.Match {
	out := s.buf
	s.buf = s.spare
	s.spare = nil
	return out
}

// recycle returns a slice obtained from take once its matches have been
// copied out.
func (s *matchSink) recycle(b []*core.Match) {
	clear(b)
	s.spare = b[:0]
}

// pendingMatch is one match waiting in the merger for its watermark.
type pendingMatch struct {
	end   int64
	shard int
	seq   uint64 // per-shard emission order, for a deterministic tie-break
	m     *core.Match
	emit  func(*core.Match)
}

// matchBatchPool recycles the pendingMatch batches workers ship to the
// merger (worker allocates, merger returns), keeping steady-state batch
// reporting allocation-free (see internal/slicepool).
var matchBatchPool slicepool.Pool[pendingMatch]

func getMatchBatch() []pendingMatch  { return matchBatchPool.Get() }
func putMatchBatch(b []pendingMatch) { matchBatchPool.Put(b) }

// mergeMsg is one worker's batch report to the merger: the matches its
// engines emitted this batch (sorted by end-time) and the shard's new
// watermark — a lower bound on the End of any match the shard may still
// produce. final marks the worker's last message, sent after Close
// flushed every engine.
type mergeMsg struct {
	shard     int
	matches   []pendingMatch
	watermark int64
	final     bool
}

// shardQuery is one live query on one worker.
type shardQuery struct {
	id   QueryID
	eng  *core.Engine
	sink *matchSink
	emit func(*core.Match)
}

// worker owns one stream partition: a private core.Engine per live query,
// fed in shard-local order, synced at every batch boundary. With a router
// attached (the default), each event batch is classified once and only the
// engines with at least one admitting class are touched; router == nil is
// the naive deliver-to-all path (Config.NaiveFanout).
type worker struct {
	id        int
	in        chan shardMsg
	router    *router.Router
	delivered *atomic.Uint64 // runtime-wide (engine, event) delivery counter
}

func (w *worker) run(out chan<- mergeMsg) {
	var queries []*shardQuery // registration order
	streamTime := int64(math.MinInt64 / 2)
	// shardTime is the largest timestamp of an event THIS shard received —
	// the clock a naive (deliver-to-all) engine on this shard would have.
	// Routed engines are advanced to it, not to the global streamTime, so
	// time-driven confirmations (trailing negation/closure) fire in exactly
	// the same batch as they would without the router, keeping delivery
	// order byte-identical between the two paths.
	shardTime := int64(math.MinInt64 / 2)
	var emitSeq uint64

	gather := func(flush bool) []pendingMatch {
		batch := getMatchBatch()
		for _, q := range queries {
			switch {
			case flush:
				q.eng.Flush()
			case w.router != nil:
				// Routed engines see only admitted events; SyncAt advances
				// their clock to the shard time and still runs a round when
				// pending confirmations lag behind it (see core.Engine).
				q.eng.SyncAt(shardTime)
			default:
				q.eng.Sync()
			}
			taken := q.sink.take()
			for _, m := range taken {
				emitSeq++
				batch = append(batch, pendingMatch{end: m.End, shard: w.id, seq: emitSeq, m: m, emit: q.emit})
			}
			q.sink.recycle(taken)
		}
		// Each engine emits in end-time order; interleave the per-engine
		// runs into one sorted batch. seq (assigned in registration order
		// above) breaks end-time ties, so the order is deterministic.
		slices.SortFunc(batch, func(a, b pendingMatch) int {
			if a.end != b.end {
				if a.end < b.end {
					return -1
				}
				return 1
			}
			if a.seq < b.seq {
				return -1
			}
			return 1
		})
		return batch
	}

	for msg := range w.in {
		if msg.ts > streamTime {
			streamTime = msg.ts
		}
		if n := len(msg.events); n > 0 {
			// ingest order: the batch's last event carries its max ts
			if ts := msg.events[n-1].Ts; ts > shardTime {
				shardTime = ts
			}
		}
		switch {
		case msg.reg != nil:
			q := &shardQuery{id: msg.reg.id, eng: msg.reg.eng, sink: msg.reg.sink, emit: msg.reg.emit}
			queries = append(queries, q)
			if w.router != nil {
				w.router.Add(int64(q.id), msg.reg.info, q)
			}
		case msg.unreg != 0:
			for i, q := range queries {
				if q.id == msg.unreg {
					queries = append(queries[:i], queries[i+1:]...)
					break
				}
			}
			if w.router != nil {
				w.router.Remove(int64(msg.unreg))
			}
		}
		if w.router != nil {
			// One classification pass decides, per event, which engines
			// receive it and with which admitted-class bits; engines whose
			// classes all reject an event are never touched.
			var nDeliv uint64
			for _, sb := range w.router.Route(msg.events) {
				q := sb.Payload.(*shardQuery)
				for _, d := range sb.Events {
					// MaskAll deliveries fall back to full filter
					// evaluation inside ProcessAdmitted.
					q.eng.ProcessAdmitted(d.Ev, d.Mask)
				}
				nDeliv += uint64(len(sb.Events))
			}
			if nDeliv > 0 {
				w.delivered.Add(nDeliv)
			}
		} else {
			for _, ev := range msg.events {
				for _, q := range queries {
					// The ingest side pre-stamped a globally monotone Seq, so
					// every engine adopts it and shares the event unmutated —
					// no per-engine copy on the hot path.
					q.eng.Process(ev)
				}
			}
			if n := uint64(len(msg.events)) * uint64(len(queries)); n > 0 {
				w.delivered.Add(n)
			}
		}
		// Batch release: the events now live in engine buffers; the slice
		// that carried them returns to the shared pool.
		event.PutBatch(msg.events)
		batch := gather(false)

		// The shard watermark: no match this shard later produces can end
		// before it. Future matches either complete on an already buffered
		// unconsumed final-class instance (engine MatchHorizon) or on a
		// future event, whose timestamp is at least the flushed stream
		// time (ingest order is globally non-decreasing).
		wm := streamTime
		for _, q := range queries {
			if h := q.eng.MatchHorizon(); h < wm {
				wm = h
			}
		}
		out <- mergeMsg{shard: w.id, matches: batch, watermark: wm}
	}

	// Close: final flush confirms trailing negations and closures; after
	// it no shard match is outstanding, so the watermark jumps to +inf.
	batch := gather(true)
	out <- mergeMsg{shard: w.id, matches: batch, watermark: math.MaxInt64, final: true}
}

// matchHeap is a hand-rolled min-heap of pending matches ordered by
// (end, shard, seq) — a total, deterministic order consistent with
// end-time order. It avoids container/heap's per-push interface boxing,
// which showed up as GC pressure on match-heavy workloads.
type matchHeap []pendingMatch

func (h matchHeap) less(i, j int) bool {
	if h[i].end != h[j].end {
		return h[i].end < h[j].end
	}
	if h[i].shard != h[j].shard {
		return h[i].shard < h[j].shard
	}
	return h[i].seq < h[j].seq
}

func (h *matchHeap) push(pm pendingMatch) {
	*h = append(*h, pm)
	a := *h
	for i := len(a) - 1; i > 0; {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

func (h *matchHeap) pop() pendingMatch {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = pendingMatch{} // release the match pointer to the GC
	a = a[:n]
	*h = a
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && a.less(l, min) {
			min = l
		}
		if r < n && a.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		a[i], a[min] = a[min], a[i]
		i = min
	}
	return top
}

// runMerger is the single consumer of every worker's match stream: it
// holds back matches until every shard's watermark passes their end-time,
// then releases them heap-ordered, giving one globally end-time-ordered
// output across all queries and shards. Per-query callbacks run here, so
// they are never invoked concurrently.
func (rt *Runtime) runMerger() {
	defer close(rt.merger)
	n := rt.cfg.Shards
	wms := make([]int64, n)
	for i := range wms {
		wms[i] = math.MinInt64
	}
	var h matchHeap
	finals := 0
	release := func() {
		min := wms[0]
		for _, wm := range wms[1:] {
			if wm < min {
				min = wm
			}
		}
		// Strictly below the watermark: a shard at watermark W may still
		// produce a match ending exactly at W.
		for len(h) > 0 && h[0].end < min {
			pm := h.pop()
			rt.delivered.Add(1)
			if pm.emit != nil {
				pm.emit(pm.m)
			}
		}
	}
	for msg := range rt.mergeCh {
		for _, pm := range msg.matches {
			h.push(pm)
		}
		putMatchBatch(msg.matches)
		if msg.watermark > wms[msg.shard] {
			wms[msg.shard] = msg.watermark
		}
		release()
		if msg.final {
			finals++
			if finals == n {
				return
			}
		}
	}
}
