package core

import (
	"repro/internal/cost"
	"repro/internal/explain"
	"repro/internal/operator"
	"repro/internal/plan"
	"repro/internal/query"
)

// ExplainInfo is the engine-local slice of a zstream-explain/v1 document:
// everything one engine knows about itself. The concurrent runtime merges
// one ExplainInfo per shard into the full document; a standalone engine
// wraps a single one.
type ExplainInfo struct {
	// Strategy is the configured planning strategy.
	Strategy explain.Strategy
	// Cost is the cost-model view of the current plan (nil only when the
	// query cannot be costed).
	Cost *explain.Cost
	// Fingerprint identifies the current plan's physical structure.
	Fingerprint string
	// PlannedCost is the optimizer's cost estimate for the current plan
	// (0 for fixed strategies, which never run the search).
	PlannedCost float64
	// Switches counts adaptive re-plans since creation.
	Switches uint64
	// LastSwitch records the latest re-plan (nil before the first).
	LastSwitch *explain.Switch
	// Tree is the operator tree with live counters.
	Tree *explain.Node
	// Leaves holds the per-class leaf counters (In = events the leaf saw
	// post-router, Out = events that passed its pushed-down filter),
	// indexed by class: the conditioned selectivity view.
	Leaves []operator.Counters
}

// BuildExplain assembles the engine's ExplainInfo. Like every plan-reading
// method it must run on the engine's processing goroutine (the runtime
// routes EXPLAIN snapshots through the shard worker's op queue).
func (e *Engine) BuildExplain() ExplainInfo {
	info := ExplainInfo{
		Strategy: explain.Strategy{
			Strategy:  strategyName(e.cfg.Strategy),
			Adaptive:  e.cfg.Adaptive,
			UseHash:   e.cfg.UseHash,
			Negation:  negationName(e.plan.Opts.Negation),
			BatchSize: e.cfg.BatchSize,
		},
		Fingerprint: e.plan.Fingerprint(),
		PlannedCost: e.planCost,
		Switches:    e.switches.Load(),
		LastSwitch:  e.lastSwitch,
		Tree:        explain.Tree(e.plan.Root),
	}
	for _, l := range e.plan.Leaves {
		info.Leaves = append(info.Leaves, l.Counters())
	}
	st, source := e.planStats, "collected"
	if st == nil {
		st, source = e.cfg.Stats, "configured"
	}
	if st == nil {
		st, source = cost.UniformStats(e.q.Info, e.q.Within, 1), "uniform-default"
	}
	// Shared-prefix consumer plans have no shape (the prefix subtree lives
	// in the producer), so the per-node breakdown is skipped: the prefix
	// cost belongs to the producer's document section.
	var tree *cost.NodeEstimate
	if e.plan.Shape != nil {
		tree = cost.NewEstimator(e.q.Info, st, e.cfg.UseHash).
			ShapeBreakdown(e.plan.Units, e.plan.Shape)
	}
	info.Cost = explain.CostSection(e.q.Info, st, source, tree)
	return info
}

// Query returns the compiled query the engine runs.
func (e *Engine) Query() *query.Query { return e.q }

// OperatorTotals sums the current plan's live operator counters. Like
// BuildExplain it must run on the engine's processing goroutine.
func (e *Engine) OperatorTotals() explain.Totals { return explain.TreeTotals(e.plan.Root) }

// IsAdaptive reports whether plan adaptation (§5.3) is enabled.
func (e *Engine) IsAdaptive() bool { return e.cfg.Adaptive }

// NoteRouterRejects credits n router-rejected events at stream time ts to
// every class's sampling statistics. A routed engine only sees admitted
// events; an event the router delivered to this engine for any class is
// observed by every leaf (ProcessAdmitted reports non-admitted classes as
// rejects), but an event admitted for no class is never delivered at all —
// those are exactly the n events credited here, and since no class
// admitted them, every class's filter rejected them. With this feed the
// collector's rates and selectivities match what a deliver-to-all engine
// would have measured, keeping adaptive re-planning honest (the deferred
// unconditioned-rates item from the router PR).
func (e *Engine) NoteRouterRejects(n uint64, ts int64) {
	if e.collector == nil || n == 0 {
		return
	}
	for cls := range e.plan.Leaves {
		e.collector.ObserveRejects(cls, ts, n)
	}
}

// Plan exposes the producer's physical plan (EXPLAIN).
func (s *Subplan) Plan() *plan.Plan { return s.plan }

// strategyName renders a Strategy for EXPLAIN output.
func strategyName(s Strategy) string {
	switch s {
	case StrategyLeftDeep:
		return "left-deep"
	case StrategyRightDeep:
		return "right-deep"
	case StrategyFixed:
		return "fixed"
	default:
		return "optimal"
	}
}

// negationName renders a NegPlacement for EXPLAIN output.
func negationName(n plan.NegPlacement) string {
	switch n {
	case plan.NegPushdown:
		return "pushdown"
	case plan.NegTop:
		return "top"
	default:
		return "auto"
	}
}
