package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/cost"
	"repro/internal/event"
	"repro/internal/explain"
	"repro/internal/expr"
	"repro/internal/operator"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// Strategy selects how the initial plan shape is chosen.
type Strategy int

const (
	// StrategyOptimal runs the Algorithm 5 search with the configured (or
	// uniform default) statistics.
	StrategyOptimal Strategy = iota
	// StrategyLeftDeep always builds the left-deep tree.
	StrategyLeftDeep
	// StrategyRightDeep always builds the right-deep tree.
	StrategyRightDeep
	// StrategyFixed uses Config.Shape verbatim.
	StrategyFixed
)

// Config tunes the engine.
type Config struct {
	// BatchSize is the number of primitive events accumulated per idle
	// round before assembly is attempted (§4.3). Default 64.
	BatchSize int
	// Strategy picks the initial plan shape.
	Strategy Strategy
	// Shape is the explicit shape for StrategyFixed.
	Shape *plan.Shape
	// Negation picks NSEQ push-down vs NEG-on-top (§4.4.2); with
	// StrategyOptimal and NegAuto the optimizer costs both.
	Negation plan.NegPlacement
	// UseHash enables hash-based equality predicates (§5.2.2).
	UseHash bool
	// Stats seeds the optimizer; nil uses uniform defaults.
	Stats *cost.Stats

	// Adaptive enables plan adaptation (§5.3).
	Adaptive bool
	// AdaptEvery re-checks statistics every N batches (default 16).
	AdaptEvery int
	// DriftThreshold is t: relative statistic change that triggers a
	// re-plan (default 0.5).
	DriftThreshold float64
	// ImproveThreshold is c: minimum predicted relative cost improvement
	// required to install the new plan (default 0.2).
	ImproveThreshold float64

	// MaxDisorder, when positive, inserts a reordering stage (§4.1) that
	// tolerates events arriving up to MaxDisorder ticks late.
	MaxDisorder int64

	// StatsSeed seeds the sampling collector (default 1).
	StatsSeed int64

	// DisableEAT turns off earliest-allowed-timestamp push-down (§4.3),
	// for ablation benchmarks only: buffers are pruned by a lagging
	// horizon instead and stale records are filtered by window checks.
	DisableEAT bool
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.AdaptEvery <= 0 {
		c.AdaptEvery = 16
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.5
	}
	if c.ImproveThreshold <= 0 {
		c.ImproveThreshold = 0.2
	}
	if c.StatsSeed == 0 {
		c.StatsSeed = 1
	}
	return c
}

// Field is one RETURN-clause output.
type Field struct {
	Name string
	// Events holds the matched event(s) for whole-class items.
	Events []*event.Event
	// Value holds the computed value for expression items.
	Value event.Value
}

// Match is one detected composite event.
type Match struct {
	Start, End int64
	Fields     []Field
}

// Engine runs one query over a stream of primitive events.
type Engine struct {
	q    *query.Query
	cfg  Config
	plan *plan.Plan
	emit func(*Match)

	retNames []string
	retClass []int // class index for whole-class items, else -1
	retEval  []expr.Evaluator

	collector *stats.Collector
	planStats *cost.Stats // statistics snapshot the current plan was chosen with
	planCost  float64

	reorder *operator.Reorderer

	// pool recycles buffer records across the whole plan (and across plan
	// switches): records return to it at eviction, consumed-prefix drops
	// and buffer clears, making steady-state ingest allocation-free.
	pool *buffer.Pool

	now        int64
	batchCount int
	batchFill  int
	lastSeq    uint64 // largest arrival sequence number observed/assigned
	finalSet   map[int]bool

	renv expr.RecordEnv // reused RETURN-clause environment

	// Counters are atomics so Snapshot may be read from another goroutine
	// (the concurrent runtime aggregates Stats while workers run). The
	// engine itself remains single-writer: Process/Flush/Sync must not be
	// called concurrently.
	events   atomic.Uint64
	matches  atomic.Uint64
	rounds   atomic.Uint64
	switches atomic.Uint64
	peakMem  atomic.Int64

	// src, when non-nil, is the shared-source node standing in for a
	// prefix subtree materialized by a shared Subplan (NewEngineSharedPrefix).
	src *operator.Source

	// lastSwitch records the most recent adaptive re-plan as a
	// before/after fingerprint pair (single-writer, like plan).
	lastSwitch *explain.Switch

	recTap func(*buffer.Record)
}

// SetRecordTap installs a callback receiving every emitted root record
// (tests and experiment harnesses; cheaper than building Matches).
func (e *Engine) SetRecordTap(f func(*buffer.Record)) { e.recTap = f }

// NewEngine compiles q into an executable engine; emit receives matches in
// end-time order.
func NewEngine(q *query.Query, cfg Config, emit func(*Match)) (*Engine, error) {
	if q.Info == nil {
		return nil, fmt.Errorf("core: query not analyzed")
	}
	cfg = cfg.withDefaults()
	e := &Engine{q: q, cfg: cfg, emit: emit, now: math.MinInt64 / 2}

	shape, negMode, err := e.chooseShape(cfg.Stats)
	if err != nil {
		return nil, err
	}
	p, err := plan.Build(q, shape, plan.Options{
		Negation: negMode, UseHash: cfg.UseHash, Adaptive: cfg.Adaptive,
	}, nil)
	if err != nil {
		return nil, err
	}
	e.plan = p
	e.pool = buffer.NewPool(q.Info.NumClasses())
	for _, b := range p.Buffers {
		b.SetPool(e.pool)
	}

	if err := e.compileReturn(); err != nil {
		return nil, err
	}
	e.finalSet = map[int]bool{}
	for _, c := range q.Info.FinalClasses {
		e.finalSet[c] = true
	}
	if cfg.MaxDisorder > 0 {
		e.reorder = operator.NewReorderer(cfg.MaxDisorder)
	}
	if cfg.Adaptive {
		e.collector = stats.NewCollector(q.Info, q.Within/2, 8, cfg.StatsSeed)
		for cls, leaf := range p.Leaves {
			cls := cls
			leaf.SetObserver(func(ev *event.Event, passed bool) {
				e.collector.Observe(cls, ev, passed)
			})
		}
		e.planStats = cfg.Stats
		if e.planStats == nil {
			e.planStats = cost.UniformStats(q.Info, q.Within, 1)
		}
		if r, err := optimizer.Optimize(q, e.planStats, cfg.UseHash); err == nil {
			e.planCost = r.Estimate.Cost
		}
	}
	return e, nil
}

// chooseShape picks the initial shape per the strategy.
func (e *Engine) chooseShape(st *cost.Stats) (*plan.Shape, plan.NegPlacement, error) {
	negMode := e.cfg.Negation
	units, _, err := plan.Units(e.q.Info, negMode)
	if err != nil {
		return nil, negMode, err
	}
	switch e.cfg.Strategy {
	case StrategyLeftDeep:
		return plan.LeftDeep(len(units)), negMode, nil
	case StrategyRightDeep:
		return plan.RightDeep(len(units)), negMode, nil
	case StrategyFixed:
		if e.cfg.Shape == nil {
			return nil, negMode, fmt.Errorf("core: StrategyFixed requires Config.Shape")
		}
		return e.cfg.Shape, negMode, nil
	default:
		if st == nil {
			st = cost.UniformStats(e.q.Info, e.q.Within, 1)
		}
		r, err := optimizer.Optimize(e.q, st, e.cfg.UseHash)
		if err != nil {
			return nil, negMode, err
		}
		if negMode == plan.NegAuto {
			negMode = r.Negation
		}
		return r.Shape, negMode, nil
	}
}

// compileReturn prepares the RETURN-clause evaluators.
func (e *Engine) compileReturn() error {
	for _, item := range e.q.Return {
		name := item.As
		if name == "" {
			name = item.String()
		}
		if ar, ok := item.Expr.(*query.AttrRef); ok && ar.Attr == "" {
			e.retNames = append(e.retNames, name)
			e.retClass = append(e.retClass, ar.Class)
			e.retEval = append(e.retEval, nil)
			continue
		}
		ev, err := expr.Compile(item.Expr)
		if err != nil {
			return err
		}
		e.retNames = append(e.retNames, name)
		e.retClass = append(e.retClass, -1)
		e.retEval = append(e.retEval, ev)
	}
	return nil
}

// Process feeds one primitive event. Events must arrive in non-decreasing
// timestamp order unless MaxDisorder is configured.
//
// Sequence numbers: when ev.Seq is already set and monotone (a source such
// as the concurrent runtime or the workload generators pre-stamped it),
// the engine adopts it without touching the event, so one immutable event
// may be shared by many engines with no per-engine copy. Events arriving
// with Seq == 0 (or out of sequence order) are stamped in place, mutating
// the event — such events must be engine-private, as before.
func (e *Engine) Process(ev *event.Event) {
	if e.reorder != nil {
		// The reordering stage re-sequences events, which may require
		// restamping Seq after release; work on a pooled private copy so
		// shared events stay immutable. Copies rejected by every leaf
		// filter are in no buffer and recycle immediately; copies of
		// dropped-late events are never made (Late short-circuits).
		if e.reorder.Late(ev.Ts) {
			return
		}
		cp := event.AcquireEvent()
		*cp = *ev
		for _, r := range e.reorder.Push(cp) {
			if !e.ingest(r) {
				event.ReleaseEvent(r)
			}
		}
		return
	}
	e.ingest(ev)
}

// ProcessAdmitted feeds one primitive event whose leaf admission was
// already decided upstream: classes is a bitmask over class indexes (bit i
// set ⇔ the event passes class i's pushed-down filter). Admitted leaves
// skip filter re-evaluation; the others only report a reject to their
// sampling observer. The mask must be exact with respect to the leaf
// filters — a multi-query router computes it from the same single-class
// predicate set plan.Build pushes down (see internal/router).
//
// Two cases fall back to Process (full filter evaluation): the router's
// MaskAll sentinel, which means "delivered without per-class proof"
// (fallback subscriptions), and engines with a reordering stage, where
// admission bits don't survive the reorder heap.
func (e *Engine) ProcessAdmitted(ev *event.Event, classes uint64) {
	if classes == ^uint64(0) || e.reorder != nil {
		e.Process(ev)
		return
	}
	e.beginIngest(ev)
	for i, leaf := range e.plan.Leaves {
		if classes&(1<<uint(i)) != 0 {
			leaf.InsertAdmitted(ev)
		} else {
			leaf.Observe(ev, false)
		}
	}
	e.endIngest()
}

// beginIngest stamps/adopts the arrival sequence number and advances the
// event counter and clock; the caller inserts into leaves between it and
// endIngest. Shared by the direct and the pre-admitted ingest paths so
// their bookkeeping cannot diverge.
func (e *Engine) beginIngest(ev *event.Event) {
	if ev.Seq == 0 || ev.Seq <= e.lastSeq {
		e.lastSeq++
		ev.Seq = e.lastSeq
	} else {
		e.lastSeq = ev.Seq
	}
	e.events.Add(1)
	if ev.Ts > e.now {
		e.now = ev.Ts
	}
}

// endIngest closes the batch when full.
func (e *Engine) endIngest() {
	e.batchFill++
	if e.batchFill >= e.cfg.BatchSize {
		e.endBatch(e.now)
	}
}

// ingest stamps/adopts the arrival sequence number, routes the event to the
// leaves and closes the batch when full. It reports whether any leaf
// accepted the event (false means the event is referenced by no buffer).
func (e *Engine) ingest(ev *event.Event) bool {
	e.beginIngest(ev)
	accepted := e.insert(ev)
	e.endIngest()
	return accepted
}

// insert routes the event to every leaf of its classes. All classes read
// the same input stream; leaf filters decide membership (§4.1). It reports
// whether at least one leaf accepted the event.
func (e *Engine) insert(ev *event.Event) bool {
	accepted := false
	for _, leaf := range e.plan.Leaves {
		if leaf.Insert(ev) {
			accepted = true
		}
	}
	return accepted
}

// endBatch closes the current idle round and runs an assembly round if the
// final event class has new instances (§4.3 steps 2-4).
func (e *Engine) endBatch(now int64) {
	e.batchFill = 0
	e.batchCount++
	if eat, ok := e.triggerEAT(); ok {
		e.assemble(eat, now)
	} else {
		e.maintainSource()
	}
	if e.cfg.Adaptive && e.batchCount%e.cfg.AdaptEvery == 0 {
		e.maybeAdapt()
	}
}

// maintainSource keeps a shared-prefix source flowing between assembly
// rounds: with no unconsumed final-class events there is nothing to
// assemble, but the source must still drain the shared producer — a
// stalled reader would clamp the producer's eviction and pin its buffer
// (and every pulled record it feeds) indefinitely. Draining outside a
// round is invisible (the records would be pulled by the next round
// anyway), and records starting before now - window are evicted: with no
// unconsumed final instance, any future match ends at or after now, so
// they could never satisfy the window again.
func (e *Engine) maintainSource() {
	if e.src == nil {
		return
	}
	e.src.Assemble(0, e.now)
	e.src.Out().EvictBefore(e.now - e.q.Within)
}

// triggerEAT reports whether an assembly round should run and computes the
// earliest allowed timestamp: the earliest end-timestamp of unconsumed
// final-class events minus the window (§4.3).
func (e *Engine) triggerEAT() (int64, bool) {
	minEnd, found := e.minFinalEnd()
	if !found {
		return 0, false
	}
	return minEnd - e.q.Within, true
}

// minFinalEnd returns the earliest end-timestamp among unconsumed
// final-class events, if any are buffered.
func (e *Engine) minFinalEnd() (int64, bool) {
	minEnd := int64(math.MaxInt64)
	found := false
	for _, c := range e.q.Info.FinalClasses {
		b := e.plan.Leaves[c].Out()
		if b.Unconsumed() == 0 {
			continue
		}
		if end := b.At(b.Cursor()).End; end < minEnd {
			minEnd = end
		}
		found = true
	}
	return minEnd, found
}

// MatchHorizon returns a lower bound on the End of any match a future
// Process, Sync or Flush call may emit: every assembly round ends its new
// composites on a previously unconsumed final-class instance, so no future
// match can end before the earliest such instance. When no unconsumed
// final-class events are buffered (and no late events are pending in the
// reordering stage) it returns math.MaxInt64: producing a match then
// requires future input, whose timestamps are at least the stream time.
// The concurrent runtime combines this with per-shard stream time to form
// merge watermarks.
func (e *Engine) MatchHorizon() int64 {
	h := int64(math.MaxInt64)
	if end, ok := e.minFinalEnd(); ok {
		h = end
	}
	if e.reorder != nil && e.reorder.Pending() > 0 {
		if lb := e.now - e.cfg.MaxDisorder; lb < h {
			h = lb
		}
	}
	return h
}

// Sync closes the current idle round early, running an assembly round if
// the final event classes have unconsumed instances. The concurrent
// runtime calls it at shard-batch boundaries so matches are emitted (and
// the merge watermark advances) without waiting for BatchSize events. It
// is a no-op when no events arrived since the last round.
func (e *Engine) Sync() {
	if e.batchFill == 0 {
		return
	}
	e.endBatch(e.now)
}

// SyncAt is Sync for engines behind a router: the engine no longer sees
// every stream event, so its clock is advanced to the stream time ts
// first, and — even when no events were delivered since the last round —
// an assembly round still runs whenever the match horizon lags the stream
// (unconfirmed records, e.g. a pending trailing negation, whose
// confirmation depends only on time passing). Without that round a starved
// engine would hold the merge watermark back indefinitely.
func (e *Engine) SyncAt(ts int64) {
	if e.reorder != nil {
		// Drive the reorder clock to the stream time first: a routed
		// engine's reorderer only sees admitted events, so without this a
		// starved engine would hold pending events (and the MatchHorizon
		// reorder bound, hence the merge watermark) frozen forever. The
		// releases are exactly those a deliver-to-all engine would have
		// performed by now, which also keeps the bound e.now - MaxDisorder
		// below every still-pending timestamp after e.now advances below.
		for _, r := range e.reorder.AdvanceTime(ts) {
			if !e.ingest(r) {
				event.ReleaseEvent(r)
			}
		}
	}
	if ts > e.now {
		e.now = ts
	}
	if e.batchFill > 0 {
		e.endBatch(e.now)
		return
	}
	if e.MatchHorizon() < ts {
		e.endBatch(e.now)
		return
	}
	// Starved routed engine, nothing to confirm: still drain the shared
	// source so the producer's eviction never stalls on this reader.
	e.maintainSource()
}

// assemble runs one assembly round and drains matches from the root.
func (e *Engine) assemble(eat, now int64) {
	e.rounds.Add(1)
	if e.cfg.DisableEAT {
		// ablation: no EAT push-down; evict only far behind the stream
		// (4 windows, from stream time — the now parameter is +inf during
		// Flush) to keep memory finite.
		eat = e.now - 4*e.q.Within
	}
	for _, b := range e.plan.Buffers {
		b.EvictBefore(eat)
	}
	e.plan.Root.Assemble(eat, now)
	e.drain()
	if m := e.liveMemory(); m > e.peakMem.Load() {
		e.peakMem.Store(m)
	}
}

// drain emits new root records as matches.
func (e *Engine) drain() {
	out := e.plan.Root.Out()
	for i := out.Cursor(); i < out.Len(); i++ {
		rec := out.At(i)
		if !e.plan.EmitOK(rec) {
			continue
		}
		e.matches.Add(1)
		if e.recTap != nil {
			e.recTap(rec)
		}
		if e.emit != nil {
			e.emit(e.toMatch(rec))
		}
	}
	out.Consume()
	out.DropConsumedPrefix()
}

func (e *Engine) toMatch(rec *buffer.Record) *Match {
	m := &Match{Start: rec.Start, End: rec.End}
	e.renv.R = rec
	for i, name := range e.retNames {
		f := Field{Name: name}
		if cls := e.retClass[i]; cls >= 0 {
			s := rec.Slots[cls]
			if s.E != nil {
				f.Events = []*event.Event{s.E}
			} else {
				f.Events = s.Group
			}
		} else {
			f.Value = e.retEval[i](&e.renv)
		}
		m.Fields = append(m.Fields, f)
	}
	e.renv.R = nil
	return m
}

// Flush forces a final assembly round with an infinite horizon so trailing
// negations and closures confirm, then drains remaining matches.
func (e *Engine) Flush() {
	if e.reorder != nil {
		for _, r := range e.reorder.Flush() {
			if !e.ingest(r) {
				event.ReleaseEvent(r)
			}
		}
	}
	eat, ok := e.triggerEAT()
	if !ok {
		eat = e.now - e.q.Within
	}
	e.assemble(eat, math.MaxInt64/2)
	e.batchFill = 0
}

// maybeAdapt re-runs the plan search when statistics drifted beyond t and
// installs the new plan when it predicts an improvement beyond c (§5.3).
func (e *Engine) maybeAdapt() {
	cur := e.collector.Snapshot(e.q.Within, e.now)
	if e.planStats != nil && !stats.Drifted(e.planStats, cur, e.cfg.DriftThreshold) {
		return
	}
	r, err := optimizer.Optimize(e.q, cur, e.cfg.UseHash)
	if err != nil {
		return
	}
	// estimate the current plan's cost under the NEW statistics
	curEst, err := optimizer.EstimateShape(e.q, cur, e.cfg.UseHash, e.plan.Opts.Negation, e.plan.Shape)
	if err != nil {
		return
	}
	e.planStats = cur
	if sameShape(r.Shape, e.plan.Shape) && r.Negation == e.plan.Opts.Negation {
		e.planCost = r.Estimate.Cost
		return
	}
	if r.Estimate.Cost >= curEst.Cost*(1-e.cfg.ImproveThreshold) {
		return
	}
	e.switchPlan(r)
}

// switchPlan installs a new plan: intermediate state is discarded, leaf
// buffers are kept, and non-final leaf cursors rewind so the next assembly
// round rebuilds intermediate results "as if it were the first round"
// (§5.3). Final-class cursors are kept, which makes switching duplicate-
// free: every output needs a not-yet-consumed final-class event.
func (e *Engine) switchPlan(r *optimizer.Result) {
	newPlan, err := plan.Build(e.q, r.Shape, plan.Options{
		Negation: r.Negation, UseHash: e.cfg.UseHash, Adaptive: true,
	}, e.plan.Leaves)
	if err != nil {
		return
	}
	e.lastSwitch = &explain.Switch{From: e.plan.Fingerprint(), To: newPlan.Fingerprint()}
	// Recycle the old plan's intermediate state (its records are uniquely
	// owned, leaves are shared with the new plan and skipped), then hand
	// the pool to the new plan's buffers.
	leafBufs := make(map[*buffer.Buf]bool, len(e.plan.Leaves))
	for _, leaf := range e.plan.Leaves {
		leafBufs[leaf.Out()] = true
	}
	for _, b := range e.plan.Buffers {
		if !leafBufs[b] {
			b.Clear()
		}
	}
	for _, b := range newPlan.Buffers {
		b.SetPool(e.pool)
	}
	for cls, leaf := range e.plan.Leaves {
		if !e.finalSet[cls] {
			leaf.Out().ResetCursor()
		}
	}
	e.plan = newPlan
	e.planCost = r.Estimate.Cost
	e.switches.Add(1)
}

// liveMemory approximates the bytes held by live buffer records (the
// deterministic peak-memory metric of §6.2).
func (e *Engine) liveMemory() int64 {
	var recs, slots int64
	for _, b := range e.plan.Buffers {
		n := int64(b.Len())
		recs += n
		slots += n * int64(e.q.Info.NumClasses())
	}
	// Record header ~48B, slot ~32B (event pointer + group header).
	return recs*48 + slots*32
}

// EngineStats reports engine counters.
type EngineStats struct {
	Matches      uint64
	Rounds       uint64
	PlanSwitches uint64
	PeakMemBytes int64
	Events       uint64
}

// Snapshot returns the engine counters. It is safe to call from another
// goroutine while the engine is processing events.
func (e *Engine) Snapshot() EngineStats {
	return EngineStats{
		Matches: e.matches.Load(), Rounds: e.rounds.Load(), PlanSwitches: e.switches.Load(),
		PeakMemBytes: e.peakMem.Load(), Events: e.events.Load(),
	}
}

// Plan exposes the current physical plan (EXPLAIN, tests).
func (e *Engine) Plan() *plan.Plan { return e.plan }

// Now returns the largest timestamp observed.
func (e *Engine) Now() int64 { return e.now }

func sameShape(a, b *plan.Shape) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if (a.Unit >= 0) != (b.Unit >= 0) || a.Unit != b.Unit {
		return false
	}
	if a.Unit >= 0 {
		return true
	}
	return sameShape(a.L, b.L) && sameShape(a.R, b.R)
}
