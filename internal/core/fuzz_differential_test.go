package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/query"
)

// TestFuzzDifferential generates random queries over random streams and
// checks the tree engine (several configurations) against the brute-force
// oracle. It complements the hand-written differential suite with shapes
// no one thought to write down.
func TestFuzzDifferential(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprint(trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			src := randomQuery(rng)
			q, err := query.Parse(src)
			if err != nil {
				t.Fatalf("generated query %q does not parse: %v", src, err)
			}
			events := genStream(int64(trial*7+3), 45, []string{"A", "B", "C", "D"})
			want := refKeys(t, q, events)

			cfgs := []Config{
				{Strategy: StrategyLeftDeep, BatchSize: 1 + rng.Intn(16)},
				{Strategy: StrategyRightDeep, BatchSize: 1 + rng.Intn(64)},
				{Strategy: StrategyOptimal, UseHash: rng.Intn(2) == 0, BatchSize: 8},
				{Strategy: StrategyOptimal, Adaptive: true, AdaptEvery: 2, BatchSize: 4},
			}
			hasNeg := strings.Contains(src, "!")
			if hasNeg {
				cfgs = append(cfgs, Config{Strategy: StrategyLeftDeep, Negation: plan.NegTop, BatchSize: 8})
			}
			for ci, cfg := range cfgs {
				got := runEngine(t, q, cfg, events)
				if !equalKeys(got, want) {
					t.Fatalf("query %q cfg %d: engine %d vs oracle %d matches\n%s",
						src, ci, len(got), len(want), diff(got, want))
				}
			}
		})
	}
}

// randomQuery builds a random valid query over classes named A..D with
// name filters, optional negation/Kleene/conj/disj elements and random
// multi-class predicates.
func randomQuery(rng *rand.Rand) string {
	names := []string{"A", "B", "C", "D"}
	nclasses := 2 + rng.Intn(3) // 2..4
	aliases := names[:nclasses]

	type element struct {
		text    string
		classes []string
	}
	var elems []element
	i := 0
	for i < nclasses {
		remaining := nclasses - i
		roll := rng.Intn(10)
		switch {
		case roll < 4 || remaining == 1: // plain class
			elems = append(elems, element{aliases[i], []string{aliases[i]}})
			i++
		case roll < 6 && i > 0 && i < nclasses-1: // negation in the middle
			elems = append(elems, element{"!" + aliases[i], nil})
			i++
		case roll < 7 && i < nclasses-1 && i > 0: // Kleene between classes
			k := []string{"*", "+", "^2"}[rng.Intn(3)]
			elems = append(elems, element{aliases[i] + k, nil})
			i++
		case roll < 8 && remaining >= 2: // conjunction pair
			elems = append(elems, element{"(" + aliases[i] + "&" + aliases[i+1] + ")",
				[]string{aliases[i], aliases[i+1]}})
			i += 2
		case remaining >= 2: // disjunction pair
			elems = append(elems, element{"(" + aliases[i] + "|" + aliases[i+1] + ")",
				[]string{aliases[i], aliases[i+1]}})
			i += 2
		default:
			elems = append(elems, element{aliases[i], []string{aliases[i]}})
			i++
		}
	}
	var pat []string
	var positive []string // classes usable in extra predicates
	for _, e := range elems {
		pat = append(pat, e.text)
		positive = append(positive, e.classes...)
	}

	var where []string
	for _, a := range aliases {
		where = append(where, fmt.Sprintf("%s.name = '%s'", a, a))
	}
	// random extra predicates between positive plain classes
	if len(positive) >= 2 && rng.Intn(2) == 0 {
		a, b := positive[rng.Intn(len(positive))], positive[rng.Intn(len(positive))]
		if a != b {
			op := []string{">", "<", ">="}[rng.Intn(3)]
			where = append(where, fmt.Sprintf("%s.price %s %s.price", a, op, b))
		}
	}
	window := 8 + rng.Intn(20)
	return fmt.Sprintf("PATTERN %s WHERE %s WITHIN %d",
		strings.Join(pat, ";"), strings.Join(where, " AND "), window)
}
