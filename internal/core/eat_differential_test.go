package core

import (
	"testing"

	"repro/internal/query"
)

func TestDifferentialDisableEAT(t *testing.T) {
	q := query.MustParse(`PATTERN A;B;C
		WHERE A.name='A' AND B.name='B' AND C.name='C'
		AND A.price > B.price
		WITHIN 25`)
	events := genStream(99, 300, []string{"A", "B", "C"})
	want := refKeys(t, q, events)
	on := runEngine(t, q, Config{Strategy: StrategyLeftDeep, BatchSize: 16}, events)
	off := runEngine(t, q, Config{Strategy: StrategyLeftDeep, BatchSize: 16, DisableEAT: true}, events)
	if !equalKeys(on, want) {
		t.Errorf("EAT on diverges from oracle:\n%s", diff(on, want))
	}
	if !equalKeys(off, want) {
		t.Errorf("EAT off diverges from oracle:\n%s", diff(off, want))
	}
}
