// Package core is the ZStream execution engine: the batch-iterator model of
// §4.3 (idle rounds accumulate primitive events; assembly rounds fire when
// the final event class has new instances, push the EAT down to every
// buffer, and assemble leaves-to-root) plus the on-the-fly plan adaptation
// of §5.3.
//
// Beyond the single-query Engine, the package provides the pieces of
// cross-query shared-subplan execution: Subplan materializes one canonical
// query prefix per shard on behalf of many engines, and
// NewEngineSharedPrefix compiles an engine that consumes a producer's
// partial-match stream through a shared-source node instead of buffering
// and joining the prefix privately (see internal/runtime for orchestration
// and docs/ARCHITECTURE.md for the data flow).
package core
