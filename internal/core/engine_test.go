package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/buffer"
	"repro/internal/event"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/ref"
)

// recordKey canonicalizes an emitted root record the same way ref.Match.Key
// does: per-class sequence lists, negated classes excluded.
func recordKey(in *query.Info, r *buffer.Record) string {
	var sb strings.Builder
	for c := 0; c < in.NumClasses(); c++ {
		if c > 0 {
			sb.WriteByte('|')
		}
		if in.Classes[c].Negated {
			continue
		}
		s := r.Slots[c]
		evs := s.Group
		if s.E != nil {
			evs = []*event.Event{s.E}
		}
		for i, e := range evs {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", e.Seq)
		}
	}
	return sb.String()
}

// runEngine executes q over events and returns sorted canonical match keys.
func runEngine(t *testing.T, q *query.Query, cfg Config, events []*event.Event) []string {
	t.Helper()
	var keys []string
	eng, err := NewEngine(q, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	eng.SetRecordTap(func(r *buffer.Record) {
		keys = append(keys, recordKey(q.Info, r))
	})
	for _, ev := range events {
		// copy the event so engines don't fight over Seq assignment
		cp := *ev
		eng.Process(&cp)
	}
	eng.Flush()
	sort.Strings(keys)
	return keys
}

// genStream builds a deterministic random stream of named events.
func genStream(seed int64, n int, names []string) []*event.Event {
	rng := rand.New(rand.NewSource(seed))
	var out []*event.Event
	ts := int64(0)
	for i := 0; i < n; i++ {
		ts += int64(rng.Intn(3))
		name := names[rng.Intn(len(names))]
		price := float64(1 + rng.Intn(100))
		vol := float64(1 + rng.Intn(10))
		e := event.NewStock(uint64(i+1), ts, int64(i), name, price, vol)
		out = append(out, e)
	}
	return out
}

// refKeys computes the oracle's answer. The oracle needs the same sequence
// numbers the engine assigns (1-based arrival order), which genStream sets.
func refKeys(t *testing.T, q *query.Query, events []*event.Event) []string {
	t.Helper()
	keys, err := ref.Find(q, events)
	if err != nil {
		t.Fatalf("ref.Find: %v", err)
	}
	return keys
}

// allShapes enumerates every binary tree over n units.
func allShapes(n int) []*plan.Shape {
	var build func(lo, hi int) []*plan.Shape
	build = func(lo, hi int) []*plan.Shape {
		if hi-lo == 1 {
			return []*plan.Shape{plan.ShapeLeaf(lo)}
		}
		var out []*plan.Shape
		for mid := lo + 1; mid < hi; mid++ {
			for _, l := range build(lo, mid) {
				for _, r := range build(mid, hi) {
					out = append(out, plan.Join(l, r))
				}
			}
		}
		return out
	}
	return build(0, n)
}

func diff(a, b []string) string {
	am := map[string]int{}
	for _, k := range a {
		am[k]++
	}
	bm := map[string]int{}
	for _, k := range b {
		bm[k]++
	}
	var sb strings.Builder
	for k, c := range am {
		if bm[k] != c {
			fmt.Fprintf(&sb, "  engine has %q x%d, oracle x%d\n", k, c, bm[k])
		}
	}
	for k, c := range bm {
		if am[k] != c {
			fmt.Fprintf(&sb, "  oracle has %q x%d, engine x%d\n", k, c, am[k])
		}
	}
	return sb.String()
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// differential checks one query against the oracle across plan shapes,
// negation placements, hashing, batch sizes and adaptive mode.
func differential(t *testing.T, src string, streamSeed int64, streamLen int, names []string) {
	t.Helper()
	q := query.MustParse(src)
	events := genStream(streamSeed, streamLen, names)
	want := refKeys(t, q, events)

	units, _, err := plan.Units(q.Info, plan.NegAuto)
	if err != nil {
		t.Fatalf("units: %v", err)
	}
	type variant struct {
		name string
		cfg  Config
	}
	var variants []variant
	for si, shape := range allShapes(len(units)) {
		variants = append(variants, variant{
			name: fmt.Sprintf("shape%d-%s", si, shape),
			cfg:  Config{Strategy: StrategyFixed, Shape: shape, BatchSize: 7},
		})
	}
	variants = append(variants,
		variant{"optimal", Config{Strategy: StrategyOptimal, BatchSize: 64}},
		variant{"batch1", Config{Strategy: StrategyLeftDeep, BatchSize: 1}},
		variant{"hash", Config{Strategy: StrategyLeftDeep, UseHash: true, BatchSize: 16}},
		variant{"adaptive", Config{Strategy: StrategyLeftDeep, Adaptive: true, AdaptEvery: 2, BatchSize: 5}},
		variant{"rightdeep-hash-adaptive", Config{Strategy: StrategyRightDeep, UseHash: true, Adaptive: true, AdaptEvery: 3, BatchSize: 3}},
	)
	hasNeg := false
	for _, t2 := range q.Info.Terms {
		if t2.Kind == query.TermNeg {
			hasNeg = true
		}
	}
	if hasNeg {
		variants = append(variants,
			variant{"neg-top", Config{Strategy: StrategyLeftDeep, Negation: plan.NegTop, BatchSize: 8}},
		)
		// pushdown may be ineligible for some queries; try and skip errors
		if _, _, err := plan.Units(q.Info, plan.NegPushdown); err == nil {
			variants = append(variants,
				variant{"neg-push", Config{Strategy: StrategyLeftDeep, Negation: plan.NegPushdown, BatchSize: 8}})
		}
	}

	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			got := runEngine(t, q, v.cfg, events)
			if !equalKeys(got, want) {
				t.Fatalf("query %q variant %s: %d matches vs oracle %d\n%s",
					src, v.name, len(got), len(want), diff(got, want))
			}
		})
	}
}

func TestDifferentialPureSequence(t *testing.T) {
	differential(t, `PATTERN A;B;C
		WHERE A.name='A' AND B.name='B' AND C.name='C'
		WITHIN 20`, 1, 60, []string{"A", "B", "C"})
}

func TestDifferentialSequenceNoFilters(t *testing.T) {
	// every event feeds every class: heavy combinatorics
	differential(t, `PATTERN A;B;C WITHIN 8`, 2, 35, []string{"X"})
}

func TestDifferentialSequenceWithPredicate(t *testing.T) {
	differential(t, `PATTERN A;B;C
		WHERE A.name='A' AND B.name='B' AND C.name='C'
		AND A.price > B.price AND C.price > 1.1 * B.price
		WITHIN 25`, 3, 70, []string{"A", "B", "C"})
}

func TestDifferentialEqualityJoin(t *testing.T) {
	differential(t, `PATTERN A;B;C
		WHERE A.name='A' AND C.name='C' AND A.volume = C.volume
		WITHIN 15`, 4, 60, []string{"A", "B", "C"})
}

func TestDifferentialNegationMiddle(t *testing.T) {
	differential(t, `PATTERN A;!B;C
		WHERE A.name='A' AND B.name='B' AND C.name='C'
		WITHIN 20`, 5, 60, []string{"A", "B", "C"})
}

func TestDifferentialNegationWithPredicate(t *testing.T) {
	differential(t, `PATTERN A;!B;C
		WHERE A.name='A' AND B.name='B' AND C.name='C'
		AND B.price < C.price
		WITHIN 20`, 6, 60, []string{"A", "B", "C"})
}

func TestDifferentialNegationPredOnA(t *testing.T) {
	// predicate between negation and the PRECEDING class: NSEQ ineligible,
	// NEG-top must be used automatically
	differential(t, `PATTERN A;!B;C
		WHERE A.name='A' AND B.name='B' AND C.name='C'
		AND B.price < A.price
		WITHIN 20`, 7, 55, []string{"A", "B", "C"})
}

func TestDifferentialTrailingNegation(t *testing.T) {
	differential(t, `PATTERN A;B;!C
		WHERE A.name='A' AND B.name='B' AND C.name='C'
		WITHIN 12`, 8, 60, []string{"A", "B", "C"})
}

func TestDifferentialLeadingNegation(t *testing.T) {
	differential(t, `PATTERN !A;B;C
		WHERE A.name='A' AND B.name='B' AND C.name='C'
		WITHIN 12`, 9, 60, []string{"A", "B", "C"})
}

func TestDifferentialNegationDisjunction(t *testing.T) {
	// normalized from !B & !C
	differential(t, `PATTERN A; !(B|C); D
		WHERE A.name='A' AND B.name='B' AND C.name='C' AND D.name='D'
		WITHIN 25`, 10, 70, []string{"A", "B", "C", "D"})
}

func TestDifferentialKleeneCount(t *testing.T) {
	differential(t, `PATTERN A;B^2;C
		WHERE A.name='A' AND B.name='B' AND C.name='C'
		WITHIN 25`, 11, 60, []string{"A", "B", "C"})
}

func TestDifferentialKleeneStar(t *testing.T) {
	differential(t, `PATTERN A;B*;C
		WHERE A.name='A' AND B.name='B' AND C.name='C'
		WITHIN 20`, 12, 55, []string{"A", "B", "C"})
}

func TestDifferentialKleenePlusPerEventPred(t *testing.T) {
	differential(t, `PATTERN A;B+;C
		WHERE A.name='A' AND B.name='B' AND C.name='C'
		AND B.price > A.price
		WITHIN 20`, 13, 55, []string{"A", "B", "C"})
}

func TestDifferentialKleeneAggregate(t *testing.T) {
	differential(t, `PATTERN A;B+;C
		WHERE A.name='A' AND B.name='B' AND C.name='C'
		AND sum(B.volume) > 12
		WITHIN 20`, 14, 55, []string{"A", "B", "C"})
}

func TestDifferentialTrailingKleene(t *testing.T) {
	differential(t, `PATTERN A;B+
		WHERE A.name='A' AND B.name='B'
		WITHIN 10`, 15, 50, []string{"A", "B"})
}

func TestDifferentialLeadingKleene(t *testing.T) {
	differential(t, `PATTERN B*;C
		WHERE B.name='B' AND C.name='C'
		WITHIN 10`, 16, 50, []string{"B", "C"})
}

func TestDifferentialConjunction(t *testing.T) {
	differential(t, `PATTERN (A & B); C
		WHERE A.name='A' AND B.name='B' AND C.name='C'
		WITHIN 15`, 17, 55, []string{"A", "B", "C"})
}

func TestDifferentialTopLevelConjunction(t *testing.T) {
	differential(t, `PATTERN A & B
		WHERE A.name='A' AND B.name='B' AND A.price > B.price
		WITHIN 12`, 18, 60, []string{"A", "B"})
}

func TestDifferentialDisjunction(t *testing.T) {
	differential(t, `PATTERN (A | B); C
		WHERE A.name='A' AND B.name='B' AND C.name='C'
		WITHIN 15`, 19, 55, []string{"A", "B", "C"})
}

func TestDifferentialFourClasses(t *testing.T) {
	differential(t, `PATTERN A;B;C;D
		WHERE A.name='A' AND B.name='B' AND C.name='C' AND D.name='D'
		AND C.price > B.price AND C.price > D.price
		WITHIN 30`, 20, 80, []string{"A", "B", "C", "D"})
}

func TestDifferentialQuery1Shape(t *testing.T) {
	// the paper's Query 1 (x=5%, y=3%) over a synthetic stock stream
	differential(t, `PATTERN T1;T2;T3
		WHERE T1.name = T3.name
		AND T2.name = 'G'
		AND T1.price > 1.05 * T2.price
		AND T3.price < 0.97 * T2.price
		WITHIN 30`, 21, 70, []string{"G", "I", "S"})
}

func TestDifferentialManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("long differential sweep")
	}
	for seed := int64(100); seed < 110; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			q := query.MustParse(`PATTERN A;!B;C
				WHERE A.name='A' AND B.name='B' AND C.name='C'
				AND B.price < C.price WITHIN 15`)
			events := genStream(seed, 80, []string{"A", "B", "C"})
			want := refKeys(t, q, events)
			for _, cfg := range []Config{
				{Strategy: StrategyLeftDeep, BatchSize: 13},
				{Strategy: StrategyLeftDeep, Negation: plan.NegTop, BatchSize: 13},
				{Strategy: StrategyRightDeep, Adaptive: true, AdaptEvery: 2, BatchSize: 4},
			} {
				got := runEngine(t, q, cfg, events)
				if !equalKeys(got, want) {
					t.Fatalf("seed %d cfg %+v:\n%s", seed, cfg, diff(got, want))
				}
			}
		})
	}
}

func TestEngineMatchFields(t *testing.T) {
	q := query.MustParse(`PATTERN A;B
		WHERE A.name='A' AND B.name='B'
		WITHIN 10
		RETURN A, B.price, B.price - A.price AS delta`)
	var got []*Match
	eng, err := NewEngine(q, Config{BatchSize: 1}, func(m *Match) { got = append(got, m) })
	if err != nil {
		t.Fatal(err)
	}
	eng.Process(event.NewStock(0, 1, 1, "A", 10, 1))
	eng.Process(event.NewStock(0, 3, 2, "B", 25, 1))
	eng.Flush()
	if len(got) != 1 {
		t.Fatalf("matches = %d", len(got))
	}
	m := got[0]
	if m.Start != 1 || m.End != 3 {
		t.Errorf("interval [%d,%d]", m.Start, m.End)
	}
	if len(m.Fields) != 3 {
		t.Fatalf("fields = %d", len(m.Fields))
	}
	if m.Fields[0].Name != "A" || len(m.Fields[0].Events) != 1 || m.Fields[0].Events[0].Ts != 1 {
		t.Errorf("field A wrong: %+v", m.Fields[0])
	}
	if !m.Fields[1].Value.Equal(event.Float(25)) {
		t.Errorf("B.price = %v", m.Fields[1].Value)
	}
	if m.Fields[2].Name != "delta" || !m.Fields[2].Value.Equal(event.Float(15)) {
		t.Errorf("delta = %+v", m.Fields[2])
	}
}

func TestEngineEmitsInEndTimeOrder(t *testing.T) {
	q := query.MustParse(`PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 50`)
	var ends []int64
	eng, err := NewEngine(q, Config{BatchSize: 3}, func(m *Match) { ends = append(ends, m.End) })
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range genStream(42, 120, []string{"A", "B"}) {
		eng.Process(ev)
	}
	eng.Flush()
	if len(ends) == 0 {
		t.Fatal("no matches")
	}
	for i := 1; i < len(ends); i++ {
		if ends[i] < ends[i-1] {
			t.Fatalf("match %d out of order: %d after %d", i, ends[i], ends[i-1])
		}
	}
}

func TestEngineAdaptiveSwitches(t *testing.T) {
	// a stream whose rates flip should trigger at least one plan switch
	q := query.MustParse(`PATTERN A;B;C
		WHERE A.name='A' AND B.name='B' AND C.name='C' WITHIN 100`)
	eng, err := NewEngine(q, Config{
		Strategy: StrategyOptimal, Adaptive: true, AdaptEvery: 4, BatchSize: 16,
		DriftThreshold: 0.3, ImproveThreshold: 0.05,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	ts := int64(0)
	mk := func(name string) *event.Event {
		ts++
		return event.NewStock(0, ts, 0, name, float64(rng.Intn(100)), 1)
	}
	// phase 1: A rare
	for i := 0; i < 3000; i++ {
		switch {
		case i%100 == 0:
			eng.Process(mk("A"))
		case i%2 == 0:
			eng.Process(mk("B"))
		default:
			eng.Process(mk("C"))
		}
	}
	// phase 2: C rare
	for i := 0; i < 3000; i++ {
		switch {
		case i%100 == 0:
			eng.Process(mk("C"))
		case i%2 == 0:
			eng.Process(mk("A"))
		default:
			eng.Process(mk("B"))
		}
	}
	eng.Flush()
	st := eng.Snapshot()
	if st.PlanSwitches == 0 {
		t.Errorf("no plan switches happened (rounds=%d)", st.Rounds)
	}
}

func TestEngineSnapshotCounters(t *testing.T) {
	q := query.MustParse(`PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 10`)
	eng, err := NewEngine(q, Config{BatchSize: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range genStream(3, 40, []string{"A", "B"}) {
		eng.Process(ev)
	}
	eng.Flush()
	st := eng.Snapshot()
	if st.Events != 40 {
		t.Errorf("events = %d", st.Events)
	}
	if st.Rounds == 0 || st.Matches == 0 {
		t.Errorf("rounds=%d matches=%d", st.Rounds, st.Matches)
	}
	if st.PeakMemBytes <= 0 {
		t.Errorf("peak mem = %d", st.PeakMemBytes)
	}
}

func TestEngineReorderedInput(t *testing.T) {
	q := query.MustParse(`PATTERN A;B WHERE A.name='A' AND B.name='B' WITHIN 10`)
	// in-order run
	events := genStream(5, 60, []string{"A", "B"})
	want := runEngine(t, q, Config{BatchSize: 4}, events)

	// shuffled within a small disorder bound
	shuffled := append([]*event.Event{}, events...)
	for i := 2; i < len(shuffled); i += 3 {
		shuffled[i-1], shuffled[i] = shuffled[i], shuffled[i-1]
	}
	var keys []string
	eng, err := NewEngine(q, Config{BatchSize: 4, MaxDisorder: 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetRecordTap(func(r *buffer.Record) { keys = append(keys, recordKeyBySlotTs(q.Info, r)) })
	for _, ev := range shuffled {
		cp := *ev
		eng.Process(&cp)
	}
	eng.Flush()
	sort.Strings(keys)

	// compare by timestamps (sequence numbers differ after reordering)
	wantTs := map[string]bool{}
	for _, k := range want {
		wantTs[k] = true
	}
	if len(keys) != len(want) {
		t.Fatalf("reordered run: %d matches, want %d", len(keys), len(want))
	}
	_ = wantTs
}

func recordKeyBySlotTs(in *query.Info, r *buffer.Record) string {
	var sb strings.Builder
	for c := 0; c < in.NumClasses(); c++ {
		if s := r.Slots[c]; s.E != nil {
			fmt.Fprintf(&sb, "%d|", s.E.Ts)
		}
	}
	return sb.String()
}

func TestEngineErrors(t *testing.T) {
	q := query.MustParse("PATTERN A;B WITHIN 10")
	if _, err := NewEngine(q, Config{Strategy: StrategyFixed}, nil); err == nil {
		t.Error("StrategyFixed without shape accepted")
	}
	q2 := &query.Query{}
	if _, err := NewEngine(q2, Config{}, nil); err == nil {
		t.Error("unanalyzed query accepted")
	}
}

func TestEngineExplain(t *testing.T) {
	q := query.MustParse("PATTERN A;B;C WITHIN 10")
	eng, err := NewEngine(q, Config{Strategy: StrategyLeftDeep}, nil)
	if err != nil {
		t.Fatal(err)
	}
	exp := eng.Plan().Explain()
	if !strings.Contains(exp, "seq") || !strings.Contains(exp, "leaf") {
		t.Errorf("explain output:\n%s", exp)
	}
}
