package core

import (
	"fmt"
	"math"

	"repro/internal/buffer"
	"repro/internal/operator"
	"repro/internal/plan"
	"repro/internal/query"
)

// SharedPrefixLen reports the length (in classes) of q's shareable prefix
// under cfg, or 0 when the engine must not consume a shared subplan.
// Beyond the query-shape conditions of query.SharablePrefix, the engine
// configuration gates sharing:
//
//   - Adaptive engines re-plan per engine as their sampled statistics
//     drift; a shared materialization would pin one subtree shape under
//     all of them, so adaptive engines keep private plans (the README
//     documents this limit).
//   - MaxDisorder engines re-sequence events in a private reorder stage;
//     admission order inside the prefix would no longer match the shared
//     producer's.
//   - StrategyFixed pins an explicit user shape that prefix substitution
//     would override.
//   - DisableEAT is an ablation mode with deliberately different pruning.
//
// The resolved negation placement's unit decomposition must also leave the
// prefix as a clean run of single-class units (a trailing negation or
// Kleene anchor may fuse a neighboring class into a multi-class unit), and
// every prefix predicate must canonicalize (query.PrefixFingerprint), or
// producers with lossy identities could be conflated.
func SharedPrefixLen(q *query.Query, cfg Config) int {
	if q.Info == nil {
		return 0
	}
	cfg = cfg.withDefaults()
	if cfg.Adaptive || cfg.MaxDisorder > 0 || cfg.DisableEAT || cfg.Strategy == StrategyFixed {
		return 0
	}
	// Queries past the router's 64-class admission-mask width must keep
	// the full-Info fallback subscription; a suffix-only consumer
	// subscription would silently zero the high class bits.
	if q.Info.NumClasses() > 64 {
		return 0
	}
	k := query.SharablePrefix(q.Info)
	if k == 0 {
		return 0
	}
	probe := &Engine{q: q, cfg: cfg}
	_, negMode, err := probe.chooseShape(cfg.Stats)
	if err != nil {
		return 0
	}
	units, _, err := plan.Units(q.Info, negMode)
	if err != nil || k >= len(units) {
		return 0
	}
	for i := 0; i < k; i++ {
		if units[i].Kind != plan.UnitSimple || units[i].Classes[0] != i {
			return 0
		}
	}
	if _, ok := query.PrefixFingerprint(q, k); !ok {
		return 0
	}
	return k
}

// NewEngineSharedPrefix compiles q into an engine whose first prefixLen
// classes are consumed from a shared subplan instead of being buffered and
// joined locally: the plan substitutes a shared-source node for the prefix
// subtree (plan.BuildSharedPrefix) and shadow leaves for the prefix
// classes. The engine is inert below the source until the caller wires it
// to a producer with ConnectSharedPrefix; everything else — ingest
// bookkeeping, assembly triggering on final classes, match emission —
// behaves exactly like NewEngine. prefixLen must equal SharedPrefixLen(q,
// cfg).
func NewEngineSharedPrefix(q *query.Query, cfg Config, prefixLen int, emit func(*Match)) (*Engine, error) {
	if q.Info == nil {
		return nil, fmt.Errorf("core: query not analyzed")
	}
	cfg = cfg.withDefaults()
	if want := SharedPrefixLen(q, cfg); want != prefixLen {
		return nil, fmt.Errorf("core: shared prefix length %d requested, %d eligible", prefixLen, want)
	}
	e := &Engine{q: q, cfg: cfg, emit: emit, now: math.MinInt64 / 2}
	_, negMode, err := e.chooseShape(cfg.Stats)
	if err != nil {
		return nil, err
	}
	src := operator.NewSource()
	p, err := plan.BuildSharedPrefix(q, plan.Options{
		Negation: negMode, UseHash: cfg.UseHash,
	}, prefixLen, src)
	if err != nil {
		return nil, err
	}
	e.plan = p
	e.src = src
	e.pool = buffer.NewPool(q.Info.NumClasses())
	for _, b := range p.Buffers {
		b.SetPool(e.pool)
	}
	if err := e.compileReturn(); err != nil {
		return nil, err
	}
	e.finalSet = map[int]bool{}
	for _, c := range q.Info.FinalClasses {
		e.finalSet[c] = true
	}
	return e, nil
}

// SharedSource returns the engine's shared-source node, or nil for engines
// built with NewEngine.
func (e *Engine) SharedSource() *operator.Source { return e.src }

// ConnectSharedPrefix wires the engine's shared-source node to a producer
// reader: each assembly round pulls the reader's new partial matches and
// imports them into the engine's pool under its (wider) slot layout. The
// caller must attach the reader at the engine's exact registration
// position (see Subplan.Attach).
func (e *Engine) ConnectSharedPrefix(r *buffer.ShareReader) {
	nclasses := e.q.Info.NumClasses()
	e.src.SetFill(func(out *buffer.Buf) {
		r.Each(func(rec *buffer.Record) {
			out.Append(out.Pool().Import(rec, nclasses))
		})
	})
}
