package core

import (
	"math"

	"repro/internal/buffer"
	"repro/internal/event"
	"repro/internal/plan"
	"repro/internal/query"
)

// Subplan materializes one shared query prefix on behalf of many engines:
// it buffers the prefix classes' events and assembles their joins exactly
// once per shard, publishing the partial-match stream through a
// multi-reader buffer (buffer.SharedOut). Engines built with
// NewEngineSharedPrefix consume it through their shared-source node instead
// of redoing the buffering and assembly per query.
//
// A Subplan is the batch half of an engine with no match side: it has
// leaves, an operator tree and a pool, but no RETURN clause, no emission
// and no adaptation. Its driver (a runtime shard worker) feeds it events —
// through the router (ProcessAdmitted) or directly (Process) — and calls
// Assemble once per shard batch BEFORE the consuming engines process the
// batch, so every consumer round observes a producer that is at or ahead
// of its own stream position. Running ahead is safe: sequence joins
// require the left (prefix) side to end strictly before the right side
// starts, so prefix records formed from events a consumer has not yet
// processed can never combine with anything the consumer has buffered.
//
// Like Engine, a Subplan is single-writer: all methods must be called from
// one goroutine.
type Subplan struct {
	q      *query.Query
	plan   *plan.Plan
	pool   *buffer.Pool
	shared *buffer.SharedOut
	now    int64
	dirty  bool // inserts since the last assembly round

	events uint64
}

// NewSubplan compiles a prefix query (query.PrefixQuery) into a producer.
// The plan is the left-deep sequence over the prefix classes with every
// prefix predicate placed; useHash enables §5.2.2 equality probing in the
// prefix joins (output order is identical either way).
func NewSubplan(prefixQ *query.Query, useHash bool) (*Subplan, error) {
	p, err := plan.Build(prefixQ, nil, plan.Options{UseHash: useHash}, nil)
	if err != nil {
		return nil, err
	}
	s := &Subplan{
		q:    prefixQ,
		plan: p,
		pool: buffer.NewPool(prefixQ.Info.NumClasses()),
		now:  math.MinInt64 / 2,
	}
	for _, b := range p.Buffers {
		b.SetPool(s.pool)
	}
	s.shared = buffer.NewSharedOut(p.Root.Out())
	return s, nil
}

// Info returns the prefix query's analysis — the admission predicate set a
// router subscription for the producer is compiled from (it matches the
// consuming queries' prefix-class predicates exactly).
func (s *Subplan) Info() *query.Info { return s.q.Info }

// Window returns the prefix query's WITHIN constraint.
func (s *Subplan) Window() int64 { return s.q.Within }

// Events returns the number of events fed to the producer.
func (s *Subplan) Events() uint64 { return s.events }

// Process feeds one event through the leaf filters (the deliver-to-all
// path). Events must carry pre-stamped, monotone sequence numbers — the
// concurrent runtime's ingest stamp — because reader visibility
// (ShareReader minSeq) is defined in terms of them.
func (s *Subplan) Process(ev *event.Event) {
	s.events++
	if ev.Ts > s.now {
		s.now = ev.Ts
	}
	for _, leaf := range s.plan.Leaves {
		if leaf.Insert(ev) {
			s.dirty = true
		}
	}
}

// ProcessAdmitted feeds one event whose per-class admission the router
// already proved (mask bit i ⇔ class i admits). The all-ones mask falls
// back to full filter evaluation, mirroring Engine.ProcessAdmitted.
func (s *Subplan) ProcessAdmitted(ev *event.Event, mask uint64) {
	if mask == ^uint64(0) {
		s.Process(ev)
		return
	}
	s.events++
	if ev.Ts > s.now {
		s.now = ev.Ts
	}
	for i, leaf := range s.plan.Leaves {
		if mask&(1<<uint(i)) != 0 {
			leaf.InsertAdmitted(ev)
			s.dirty = true
		}
	}
}

// Assemble runs one producer round ahead of the consumers' rounds for a
// shard batch. horizon is the minimum MatchHorizon over all consuming
// engines before the batch; batchMinTs is the smallest event timestamp in
// the batch (use math.MaxInt64 when flushing with no pending events). The
// effective earliest-allowed timestamp min(horizon, batchMinTs) - window
// lower-bounds every EAT any consumer round can use while processing this
// batch, so the producer never skips (and permanently consumes) a prefix
// event a consumer still needs; running with a smaller EAT than a consumer
// merely materializes stale partial matches the consumers' own window
// checks already reject.
func (s *Subplan) Assemble(horizon, batchMinTs int64) {
	eat := horizon
	if batchMinTs < eat {
		eat = batchMinTs
	}
	// Guard the subtraction: horizons are +/-inf sentinels at the extremes.
	if eat > math.MinInt64/4 {
		eat -= s.q.Within
	}
	root := s.plan.Root.Out()
	for _, b := range s.plan.Buffers {
		if b != root {
			b.EvictBefore(eat)
		}
	}
	s.shared.EvictBefore(eat)
	if !s.dirty {
		return
	}
	s.dirty = false
	s.plan.Root.Assemble(eat, s.now)
}

// Flush runs a final producer round for consumer flushes: every remaining
// prefix event is assembled under the consumers' minimum horizon and the
// producer's own clock — a lower bound on any consumer's flush EAT, since
// consumer clocks are at or ahead of the producer's.
func (s *Subplan) Flush(horizon int64) { s.Assemble(horizon, s.now) }

// Attach adds a consumer starting at the producer's current output
// position; partial matches embedding any event with sequence number <=
// minSeq stay invisible to it (registration-exact semantics — see
// buffer.SharedOut).
func (s *Subplan) Attach(minSeq uint64) *buffer.ShareReader {
	return s.shared.Attach(minSeq)
}

// Detach removes a consumer; Readers reports how many remain.
func (s *Subplan) Detach(r *buffer.ShareReader) { s.shared.Detach(r) }

// Readers returns the number of attached consumers.
func (s *Subplan) Readers() int { return s.shared.Readers() }
