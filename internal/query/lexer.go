package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Error is a query compilation error carrying the byte offset where it was
// detected.
type Error struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("query: at offset %d: %s", e.Pos, e.Msg) }

func errAt(pos int, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lexer turns a query string into tokens. It is clause-agnostic; the parser
// decides whether '*' means Kleene closure or multiplication from context.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// lex tokenizes the whole input.
func (l *lexer) lex() ([]Token, error) {
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) next() (Token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		return l.ident(), nil
	case c >= '0' && c <= '9':
		return l.number()
	case c == '\'' || c == '"':
		return l.str()
	}
	l.pos++
	switch c {
	case ';':
		return Token{Kind: TokSemi, Pos: start}, nil
	case '&':
		return Token{Kind: TokAmp, Pos: start}, nil
	case '|':
		return Token{Kind: TokPipe, Pos: start}, nil
	case '(':
		return Token{Kind: TokLParen, Pos: start}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: start}, nil
	case ',':
		return Token{Kind: TokComma, Pos: start}, nil
	case '.':
		return Token{Kind: TokDot, Pos: start}, nil
	case '^':
		return Token{Kind: TokCaret, Pos: start}, nil
	case '*':
		return Token{Kind: TokStar, Pos: start}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: start}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: start}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: start}, nil
	case '=':
		return Token{Kind: TokEq, Pos: start}, nil
	case '!':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return Token{Kind: TokNeq, Pos: start}, nil
		}
		return Token{Kind: TokBang, Pos: start}, nil
	case '<':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return Token{Kind: TokLte, Pos: start}, nil
		}
		return Token{Kind: TokLt, Pos: start}, nil
	case '>':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return Token{Kind: TokGte, Pos: start}, nil
		}
		return Token{Kind: TokGt, Pos: start}, nil
	}
	return Token{}, errAt(start, "unexpected character %q", rune(c))
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// line comments: -- to end of line
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) ident() Token {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	if k, ok := keywords[strings.ToUpper(text)]; ok {
		return Token{Kind: k, Text: text, Pos: start}
	}
	return Token{Kind: TokIdent, Text: text, Pos: start}
}

func (l *lexer) number() (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' &&
		l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		l.pos++
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
			l.pos++
		}
	}
	text := l.src[start:l.pos]
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return Token{}, errAt(start, "bad number %q", text)
	}
	return Token{Kind: TokNumber, Num: f, Text: text, Pos: start}, nil
}

func (l *lexer) str() (Token, error) {
	start := l.pos
	quote := l.src[l.pos]
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, errAt(start, "unterminated string literal")
}
