package query

import (
	"fmt"
	"testing"
)

// whereOf parses a query and returns its WHERE predicates.
func whereOf(t *testing.T, src string) []*Cmp {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q.Where
}

// fpOf fingerprints a predicate, requiring canonicalization to succeed.
func fpOf(t *testing.T, c *Cmp) string {
	t.Helper()
	fp, ok := FingerprintCmp(c)
	if !ok {
		t.Fatalf("FingerprintCmp(%s) not canonicalizable", c)
	}
	return fp
}

func TestFingerprintAliasIndependent(t *testing.T) {
	a := whereOf(t, `PATTERN A; B WHERE A.price > 90.5 WITHIN 10`)[0]
	b := whereOf(t, `PATTERN X; Y WHERE Y.price > 90.5 WITHIN 10`)[0]
	if fpOf(t, a) != fpOf(t, b) {
		t.Errorf("alias-renamed predicates fingerprint differently: %q vs %q",
			fpOf(t, a), fpOf(t, b))
	}
}

func TestFingerprintOrientationNormalized(t *testing.T) {
	cases := [][2]string{
		{`PATTERN A WHERE A.price > 90 WITHIN 10`, `PATTERN A WHERE 90 < A.price WITHIN 10`},
		{`PATTERN A WHERE A.price >= 90 WITHIN 10`, `PATTERN A WHERE 90 <= A.price WITHIN 10`},
		{`PATTERN A WHERE A.name = 'IBM' WITHIN 10`, `PATTERN A WHERE 'IBM' = A.name WITHIN 10`},
		{`PATTERN A WHERE A.name != 'IBM' WITHIN 10`, `PATTERN A WHERE 'IBM' != A.name WITHIN 10`},
	}
	for _, c := range cases {
		l := fpOf(t, whereOf(t, c[0])[0])
		r := fpOf(t, whereOf(t, c[1])[0])
		if l != r {
			t.Errorf("flipped predicate fingerprints differ: %q vs %q", l, r)
		}
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	fps := map[string]string{}
	for _, src := range []string{
		`PATTERN A WHERE A.price > 90 WITHIN 10`,
		`PATTERN A WHERE A.price > 91 WITHIN 10`,
		`PATTERN A WHERE A.price >= 90 WITHIN 10`,
		`PATTERN A WHERE A.price < 90 WITHIN 10`,
		`PATTERN A WHERE A.volume > 90 WITHIN 10`,
		`PATTERN A WHERE A.name = 'IBM' WITHIN 10`,
		`PATTERN A WHERE A.name = 'Sun' WITHIN 10`,
		`PATTERN A WHERE A.price > 2 * A.volume WITHIN 10`,
	} {
		fp := fpOf(t, whereOf(t, src)[0])
		if prev, dup := fps[fp]; dup {
			t.Errorf("distinct predicates collide on %q: %s and %s", fp, prev, src)
		}
		fps[fp] = src
	}
}

func TestFingerprintArithAndAgg(t *testing.T) {
	a := whereOf(t, `PATTERN A; B+ WHERE A.price > 1.05 * avg(B.price) WITHIN 10`)[0]
	b := whereOf(t, `PATTERN X; Y+ WHERE X.price > 1.05 * avg(Y.price) WITHIN 10`)[0]
	if fpOf(t, a) != fpOf(t, b) {
		t.Errorf("agg/arith fingerprints differ across aliases")
	}
	c := whereOf(t, `PATTERN A; B+ WHERE A.price > 1.05 * sum(B.price) WITHIN 10`)[0]
	if fpOf(t, a) == fpOf(t, c) {
		t.Errorf("avg and sum aggregates collide")
	}
}

func TestEqualityAtom(t *testing.T) {
	if attr, lit, ok := EqualityAtom(whereOf(t, `PATTERN A WHERE A.name = 'IBM' WITHIN 10`)[0]); !ok || attr != "name" {
		t.Errorf("attr=lit: attr=%q ok=%v", attr, ok)
	} else if s, isStr := lit.(*StrLit); !isStr || s.V != "IBM" {
		t.Errorf("literal = %v", lit)
	}
	if attr, lit, ok := EqualityAtom(whereOf(t, `PATTERN A WHERE 42 = A.id WITHIN 10`)[0]); !ok || attr != "id" {
		t.Errorf("lit=attr: attr=%q ok=%v", attr, ok)
	} else if n, isNum := lit.(*NumLit); !isNum || n.V != 42 {
		t.Errorf("literal = %v", lit)
	}
	for _, src := range []string{
		`PATTERN A; B WHERE A.name = B.name WITHIN 10`,     // attr-to-attr
		`PATTERN A WHERE A.price != 90 WITHIN 10`,          // not equality
		`PATTERN A WHERE A.price > 90 WITHIN 10`,           // not equality
		`PATTERN A WHERE A.price = 2 * A.volume WITHIN 10`, // arithmetic
	} {
		if _, _, ok := EqualityAtom(whereOf(t, src)[0]); ok {
			t.Errorf("EqualityAtom accepted %s", src)
		}
	}
}

// bogusExpr stands in for a future Expr node kind canonicalization does
// not know about.
type bogusExpr struct{}

func (bogusExpr) exprNode()      {}
func (bogusExpr) String() string { return "bogus" }

func TestFingerprintUnknownNodeNotCanonical(t *testing.T) {
	if _, ok := Fingerprint(bogusExpr{}); ok {
		t.Error("unknown node fingerprinted ok; deduplication would conflate distinct predicates")
	}
	if _, ok := FingerprintCmp(&Cmp{Op: CmpGt, L: bogusExpr{}, R: &NumLit{V: 1}}); ok {
		t.Error("comparison over unknown node fingerprinted ok")
	}
	if _, ok := FingerprintCmp(&Cmp{Op: CmpGt, L: &Arith{Op: OpMul, L: bogusExpr{}, R: &NumLit{V: 2}}, R: &NumLit{V: 1}}); ok {
		t.Error("nested unknown node fingerprinted ok")
	}
}

// ---------------------------------------------------------------------------
// Subtree / whole-query fingerprints (shared-subplan layer)
// ---------------------------------------------------------------------------

// analyzed parses and analyzes a query.
func analyzed(t testing.TB, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

// queryFP fingerprints a whole query, requiring canonicalization.
func queryFP(t *testing.T, src string) string {
	t.Helper()
	fp, ok := FingerprintQuery(analyzed(t, src))
	if !ok {
		t.Fatalf("FingerprintQuery(%q) not canonicalizable", src)
	}
	return fp
}

func TestFingerprintQueryAliasIndependent(t *testing.T) {
	a := queryFP(t, `PATTERN A; B WHERE A.price > 90 AND B.price < A.price WITHIN 10 RETURN A.price AS p`)
	b := queryFP(t, `PATTERN X; Y WHERE 90 < X.price AND X.price > Y.price WITHIN 10 RETURN X.price AS p`)
	if a != b {
		t.Errorf("alias-renamed queries fingerprint differently:\n  %q\n  %q", a, b)
	}
}

func TestFingerprintQueryDistinguishesOutputNames(t *testing.T) {
	// Whole-class RETURN items default their field name to the alias,
	// which is observable in Match.Fields — so alias renames without AS
	// must NOT dedupe, while renames under AS must.
	a := queryFP(t, `PATTERN A; B WHERE A.price > 90 WITHIN 10 RETURN A, B`)
	b := queryFP(t, `PATTERN X; Y WHERE X.price > 90 WITHIN 10 RETURN X, Y`)
	if a == b {
		t.Error("queries with different observable field names collide")
	}
}

func TestFingerprintQueryDistinguishesStructure(t *testing.T) {
	srcs := []string{
		`PATTERN A; B WHERE A.price > 90 WITHIN 10`,
		`PATTERN A; B WHERE A.price > 90 WITHIN 11`,
		`PATTERN A; B WHERE A.price > 91 WITHIN 10`,
		`PATTERN A; B WHERE B.price > 90 WITHIN 10`,
		`PATTERN A; B; C WHERE A.price > 90 WITHIN 10`,
		`PATTERN A; !B; C WHERE A.price > 90 WITHIN 10`,
		`PATTERN A; B+ WHERE A.price > 90 WITHIN 10`,
		`PATTERN A; B* WHERE A.price > 90 WITHIN 10`,
		`PATTERN A & B WHERE A.price > 90 WITHIN 10`,
		`PATTERN A | B WHERE A.price > 90 WITHIN 10`,
	}
	fps := map[string]string{}
	for _, src := range srcs {
		fp := queryFP(t, src)
		if prev, dup := fps[fp]; dup {
			t.Errorf("distinct queries collide on %q:\n  %s\n  %s", fp, prev, src)
		}
		fps[fp] = src
	}
}

func TestSharablePrefixShapes(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		// final class C excluded; A;B shareable
		{`PATTERN A; B; C WHERE A.price > 1 WITHIN 10`, 2},
		// whole query is A;B: final class B trims to 1 -> ineligible
		{`PATTERN A; B WHERE A.price > 1 WITHIN 10`, 0},
		// four classes: A;B;C shareable
		{`PATTERN A; B; C; D WITHIN 10`, 3},
		// trailing negation may anchor B -> prefix stops before B
		{`PATTERN A; B; !C WITHIN 10`, 0},
		// negation mid-pattern: prefix stops before it
		{`PATTERN A; B; !C; D WITHIN 10`, 0},
		{`PATTERN A; B; C; !D; E WITHIN 10`, 2},
		// Kleene absorbs its start anchor C -> prefix is A;B
		{`PATTERN A; B; C; D+ WITHIN 10`, 2},
		// Kleene directly after two classes absorbs B
		{`PATTERN A; B; C+ WITHIN 10`, 0},
		// star closure keeps B final (zero occurrences) -> trim to 1
		{`PATTERN A; B; C* WITHIN 10`, 0},
		// conjunction/disjunction after the prefix do not absorb
		{`PATTERN A; B; C & D WITHIN 10`, 2},
		{`PATTERN A; B; C | D WITHIN 10`, 2},
		// leading non-class terms: no prefix
		{`PATTERN A & B; C WITHIN 10`, 0},
		{`PATTERN A+; B; C WITHIN 10`, 0},
	}
	for _, c := range cases {
		q := analyzed(t, c.src)
		if got := SharablePrefix(q.Info); got != c.want {
			t.Errorf("SharablePrefix(%s) = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestPrefixFingerprintProperties(t *testing.T) {
	type gen struct{ src string }
	// The workload generators' parameterized query space: per-symbol
	// families over a handful of templates, varying symbol, threshold and
	// suffix. Queries agreeing on (template prefix, symbol, window) — and
	// nothing else — must share a prefix fingerprint; everything else must
	// not collide.
	var same, diff []string
	same = append(same,
		`PATTERN A; B; C WHERE A.name = 'S01' AND A.price > 40 AND B.name = 'S01' AND B.price < A.price AND C.price > 90 WITHIN 30`,
		`PATTERN X; Y; Z WHERE X.name = 'S01' AND 40 < X.price AND Y.name = 'S01' AND Y.price < X.price AND Z.price < 80 WITHIN 30`,
		`PATTERN A; B; C; D+ WHERE A.name = 'S01' AND A.price > 40 AND B.name = 'S01' AND B.price < A.price AND D.volume > 1 WITHIN 30`,
	)
	diff = append(diff,
		`PATTERN A; B; C WHERE A.name = 'S02' AND A.price > 40 AND B.name = 'S02' AND B.price < A.price WITHIN 30`, // other symbol
		`PATTERN A; B; C WHERE A.name = 'S01' AND A.price > 41 AND B.name = 'S01' AND B.price < A.price WITHIN 30`, // other threshold
		`PATTERN A; B; C WHERE A.name = 'S01' AND A.price > 40 AND B.name = 'S01' AND B.price > A.price WITHIN 30`, // flipped join
		`PATTERN A; B; C WHERE A.name = 'S01' AND A.price > 40 AND B.name = 'S01' AND B.price < A.price WITHIN 31`, // other window
		`PATTERN A; B; C WHERE B.name = 'S01' AND B.price > 40 AND A.name = 'S01' AND A.price < B.price WITHIN 30`, // classes swapped
	)
	base := ""
	for i, src := range same {
		q := analyzed(t, src)
		k := SharablePrefix(q.Info)
		if k != 2 {
			t.Fatalf("SharablePrefix(%s) = %d, want 2", src, k)
		}
		fp, ok := PrefixFingerprint(q, k)
		if !ok {
			t.Fatalf("PrefixFingerprint(%s) not canonicalizable", src)
		}
		if i == 0 {
			base = fp
		} else if fp != base {
			t.Errorf("same-prefix query fingerprints differ:\n  %q\n  %q\n  (%s)", base, fp, src)
		}
	}
	for _, src := range diff {
		q := analyzed(t, src)
		k := SharablePrefix(q.Info)
		if k != 2 {
			t.Fatalf("SharablePrefix(%s) = %d, want 2", src, k)
		}
		fp, ok := PrefixFingerprint(q, k)
		if !ok {
			t.Fatalf("PrefixFingerprint(%s) not canonicalizable", src)
		}
		if fp == base {
			t.Errorf("different prefix collides with base: %s", src)
		}
	}
}

// TestPrefixFingerprintNoCollisionsAcrossSpace sweeps a parameterized
// query space shaped like the fan-out workload generators' (templates x
// symbols x thresholds) and checks that prefix fingerprints partition it
// exactly: equal iff (template's prefix shape, symbol, threshold bucket,
// window) agree.
func TestPrefixFingerprintNoCollisionsAcrossSpace(t *testing.T) {
	type key struct {
		tmpl int
		sym  int
		d    int
	}
	fps := map[string]key{}
	for tmpl := 0; tmpl < 2; tmpl++ {
		for sym := 0; sym < 6; sym++ {
			for d := 0; d < 4; d++ {
				var src string
				name := fmt.Sprintf("S%02d", sym)
				th := 40 + 10*d
				switch tmpl {
				case 0:
					src = fmt.Sprintf(`PATTERN A; B; C WHERE A.name = '%s' AND A.price > %d AND B.name = '%s' AND B.price < A.price WITHIN 30`, name, th, name)
				default:
					src = fmt.Sprintf(`PATTERN A; B; C WHERE A.name = '%s' AND A.volume > %d AND B.name = '%s' AND B.price < A.price WITHIN 30`, name, th, name)
				}
				q := analyzed(t, src)
				k := SharablePrefix(q.Info)
				if k != 2 {
					t.Fatalf("SharablePrefix(%s) = %d", src, k)
				}
				fp, ok := PrefixFingerprint(q, k)
				if !ok {
					t.Fatalf("not canonicalizable: %s", src)
				}
				want := key{tmpl, sym, d}
				if prev, dup := fps[fp]; dup && prev != want {
					t.Errorf("prefix collision between %v and %v on %q", prev, want, fp)
				}
				fps[fp] = want
			}
		}
	}
	if len(fps) != 2*6*4 {
		t.Errorf("expected %d distinct prefixes, got %d", 2*6*4, len(fps))
	}
}

func TestPrefixQueryEvaluatesPrefixOnly(t *testing.T) {
	q := analyzed(t, `PATTERN A; B; C
		WHERE A.name = 'S01' AND A.price > 40 AND B.name = 'S01' AND B.price < A.price
		  AND C.price > A.price AND C.name = 'S01'
		WITHIN 30`)
	pq, err := PrefixQuery(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := pq.Info.NumClasses(); got != 2 {
		t.Fatalf("prefix query has %d classes, want 2", got)
	}
	if got := len(pq.Where); got != 4 {
		t.Fatalf("prefix query has %d predicates, want 4 (C predicates excluded)", got)
	}
	if pq.Within != q.Within {
		t.Errorf("window not carried over")
	}
	// Deep clone: re-analysis of the prefix must not have mutated the
	// original query's AST class indexes.
	for _, pi := range q.Info.Preds {
		for _, cls := range pi.Classes {
			if cls < 0 || cls >= q.Info.NumClasses() {
				t.Fatalf("original query class index corrupted: %d", cls)
			}
		}
	}
	fpA, _ := FingerprintQuery(q)
	if fpB, _ := FingerprintQuery(q); fpA != fpB {
		t.Error("fingerprint not stable after PrefixQuery")
	}
}
