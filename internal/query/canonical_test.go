package query

import "testing"

// whereOf parses a query and returns its WHERE predicates.
func whereOf(t *testing.T, src string) []*Cmp {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q.Where
}

// fpOf fingerprints a predicate, requiring canonicalization to succeed.
func fpOf(t *testing.T, c *Cmp) string {
	t.Helper()
	fp, ok := FingerprintCmp(c)
	if !ok {
		t.Fatalf("FingerprintCmp(%s) not canonicalizable", c)
	}
	return fp
}

func TestFingerprintAliasIndependent(t *testing.T) {
	a := whereOf(t, `PATTERN A; B WHERE A.price > 90.5 WITHIN 10`)[0]
	b := whereOf(t, `PATTERN X; Y WHERE Y.price > 90.5 WITHIN 10`)[0]
	if fpOf(t, a) != fpOf(t, b) {
		t.Errorf("alias-renamed predicates fingerprint differently: %q vs %q",
			fpOf(t, a), fpOf(t, b))
	}
}

func TestFingerprintOrientationNormalized(t *testing.T) {
	cases := [][2]string{
		{`PATTERN A WHERE A.price > 90 WITHIN 10`, `PATTERN A WHERE 90 < A.price WITHIN 10`},
		{`PATTERN A WHERE A.price >= 90 WITHIN 10`, `PATTERN A WHERE 90 <= A.price WITHIN 10`},
		{`PATTERN A WHERE A.name = 'IBM' WITHIN 10`, `PATTERN A WHERE 'IBM' = A.name WITHIN 10`},
		{`PATTERN A WHERE A.name != 'IBM' WITHIN 10`, `PATTERN A WHERE 'IBM' != A.name WITHIN 10`},
	}
	for _, c := range cases {
		l := fpOf(t, whereOf(t, c[0])[0])
		r := fpOf(t, whereOf(t, c[1])[0])
		if l != r {
			t.Errorf("flipped predicate fingerprints differ: %q vs %q", l, r)
		}
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	fps := map[string]string{}
	for _, src := range []string{
		`PATTERN A WHERE A.price > 90 WITHIN 10`,
		`PATTERN A WHERE A.price > 91 WITHIN 10`,
		`PATTERN A WHERE A.price >= 90 WITHIN 10`,
		`PATTERN A WHERE A.price < 90 WITHIN 10`,
		`PATTERN A WHERE A.volume > 90 WITHIN 10`,
		`PATTERN A WHERE A.name = 'IBM' WITHIN 10`,
		`PATTERN A WHERE A.name = 'Sun' WITHIN 10`,
		`PATTERN A WHERE A.price > 2 * A.volume WITHIN 10`,
	} {
		fp := fpOf(t, whereOf(t, src)[0])
		if prev, dup := fps[fp]; dup {
			t.Errorf("distinct predicates collide on %q: %s and %s", fp, prev, src)
		}
		fps[fp] = src
	}
}

func TestFingerprintArithAndAgg(t *testing.T) {
	a := whereOf(t, `PATTERN A; B+ WHERE A.price > 1.05 * avg(B.price) WITHIN 10`)[0]
	b := whereOf(t, `PATTERN X; Y+ WHERE X.price > 1.05 * avg(Y.price) WITHIN 10`)[0]
	if fpOf(t, a) != fpOf(t, b) {
		t.Errorf("agg/arith fingerprints differ across aliases")
	}
	c := whereOf(t, `PATTERN A; B+ WHERE A.price > 1.05 * sum(B.price) WITHIN 10`)[0]
	if fpOf(t, a) == fpOf(t, c) {
		t.Errorf("avg and sum aggregates collide")
	}
}

func TestEqualityAtom(t *testing.T) {
	if attr, lit, ok := EqualityAtom(whereOf(t, `PATTERN A WHERE A.name = 'IBM' WITHIN 10`)[0]); !ok || attr != "name" {
		t.Errorf("attr=lit: attr=%q ok=%v", attr, ok)
	} else if s, isStr := lit.(*StrLit); !isStr || s.V != "IBM" {
		t.Errorf("literal = %v", lit)
	}
	if attr, lit, ok := EqualityAtom(whereOf(t, `PATTERN A WHERE 42 = A.id WITHIN 10`)[0]); !ok || attr != "id" {
		t.Errorf("lit=attr: attr=%q ok=%v", attr, ok)
	} else if n, isNum := lit.(*NumLit); !isNum || n.V != 42 {
		t.Errorf("literal = %v", lit)
	}
	for _, src := range []string{
		`PATTERN A; B WHERE A.name = B.name WITHIN 10`,     // attr-to-attr
		`PATTERN A WHERE A.price != 90 WITHIN 10`,          // not equality
		`PATTERN A WHERE A.price > 90 WITHIN 10`,           // not equality
		`PATTERN A WHERE A.price = 2 * A.volume WITHIN 10`, // arithmetic
	} {
		if _, _, ok := EqualityAtom(whereOf(t, src)[0]); ok {
			t.Errorf("EqualityAtom accepted %s", src)
		}
	}
}

// bogusExpr stands in for a future Expr node kind canonicalization does
// not know about.
type bogusExpr struct{}

func (bogusExpr) exprNode()      {}
func (bogusExpr) String() string { return "bogus" }

func TestFingerprintUnknownNodeNotCanonical(t *testing.T) {
	if _, ok := Fingerprint(bogusExpr{}); ok {
		t.Error("unknown node fingerprinted ok; deduplication would conflate distinct predicates")
	}
	if _, ok := FingerprintCmp(&Cmp{Op: CmpGt, L: bogusExpr{}, R: &NumLit{V: 1}}); ok {
		t.Error("comparison over unknown node fingerprinted ok")
	}
	if _, ok := FingerprintCmp(&Cmp{Op: CmpGt, L: &Arith{Op: OpMul, L: bogusExpr{}, R: &NumLit{V: 2}}, R: &NumLit{V: 1}}); ok {
		t.Error("nested unknown node fingerprinted ok")
	}
}
