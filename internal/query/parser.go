package query

import (
	"math"
	"strings"
)

// Parse parses and analyzes a query string, returning a validated Query.
func Parse(src string) (*Query, error) {
	q, err := ParseOnly(src)
	if err != nil {
		return nil, err
	}
	if err := Analyze(q); err != nil {
		return nil, err
	}
	return q, nil
}

// ParseOnly parses without semantic analysis (used by optimizer tests that
// construct partially-formed patterns).
func ParseOnly(src string) (*Query, error) {
	toks, err := newLexer(src).lex()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseQuery()
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) peek() Token { return p.toks[min(p.i+1, len(p.toks)-1)] }

func (p *parser) advance() Token {
	t := p.toks[p.i]
	if t.Kind != TokEOF {
		p.i++
	}
	return t
}

func (p *parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k TokKind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, errAt(p.cur().Pos, "expected %s, found %s", k, p.cur())
	}
	return p.advance(), nil
}

// time units, in ticks (1 tick == 1 millisecond nominally; the paper's
// dimensionless "units" are raw ticks).
var timeUnits = map[string]int64{
	"unit": 1, "units": 1,
	"ms": 1, "msec": 1, "msecs": 1,
	"s": 1000, "sec": 1000, "secs": 1000, "second": 1000, "seconds": 1000,
	"min": 60_000, "mins": 60_000, "minute": 60_000, "minutes": 60_000,
	"h": 3_600_000, "hour": 3_600_000, "hours": 3_600_000,
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if _, err := p.expect(TokPattern); err != nil {
		return nil, err
	}
	pat, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	q.Pattern = pat

	if p.accept(TokWhere) {
		// The paper writes multiple WHERE clauses in some queries
		// (e.g. Query 3); treat subsequent WHERE like AND.
		for {
			cmps, err := p.parseCmpChain()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, cmps...)
			if p.accept(TokAnd) || p.accept(TokWhere) {
				continue
			}
			break
		}
	}

	if _, err := p.expect(TokWithin); err != nil {
		return nil, err
	}
	numTok, err := p.expect(TokNumber)
	if err != nil {
		return nil, err
	}
	mult := int64(1)
	if p.cur().Kind == TokIdent {
		u, ok := timeUnits[strings.ToLower(p.cur().Text)]
		if !ok {
			return nil, errAt(p.cur().Pos, "unknown time unit %q", p.cur().Text)
		}
		mult = u
		p.advance()
	}
	w := numTok.Num * float64(mult)
	if w <= 0 || w > math.MaxInt64/4 || w != math.Trunc(w) {
		return nil, errAt(numTok.Pos, "invalid window %g", numTok.Num)
	}
	q.Within = int64(w)

	if p.accept(TokReturn) {
		for {
			item, err := p.parseReturnItem()
			if err != nil {
				return nil, err
			}
			q.Return = append(q.Return, item)
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if p.cur().Kind != TokEOF {
		return nil, errAt(p.cur().Pos, "unexpected trailing input: %s", p.cur())
	}
	return q, nil
}

// ---------------------------------------------------------------------------
// pattern grammar: seq > disj > conj > unary > postfix > primary
// ---------------------------------------------------------------------------

func (p *parser) parsePattern() (PatternExpr, error) {
	first, err := p.parseDisj()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokSemi {
		return first, nil
	}
	items := []PatternExpr{first}
	for p.accept(TokSemi) {
		next, err := p.parseDisj()
		if err != nil {
			return nil, err
		}
		if s, ok := next.(*Seq); ok {
			items = append(items, s.Items...)
		} else {
			items = append(items, next)
		}
	}
	return &Seq{Items: items}, nil
}

func (p *parser) parseDisj() (PatternExpr, error) {
	first, err := p.parseConj()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokPipe {
		return first, nil
	}
	items := []PatternExpr{first}
	for p.accept(TokPipe) {
		next, err := p.parseConj()
		if err != nil {
			return nil, err
		}
		if d, ok := next.(*Disj); ok {
			items = append(items, d.Items...)
		} else {
			items = append(items, next)
		}
	}
	return &Disj{Items: items}, nil
}

func (p *parser) parseConj() (PatternExpr, error) {
	first, err := p.parsePatternUnary()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokAmp {
		return first, nil
	}
	items := []PatternExpr{first}
	for p.accept(TokAmp) {
		next, err := p.parsePatternUnary()
		if err != nil {
			return nil, err
		}
		if c, ok := next.(*Conj); ok {
			items = append(items, c.Items...)
		} else {
			items = append(items, next)
		}
	}
	return &Conj{Items: items}, nil
}

func (p *parser) parsePatternUnary() (PatternExpr, error) {
	if p.accept(TokBang) || p.accept(TokNot) {
		x, err := p.parsePatternUnary()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	return p.parsePatternPostfix()
}

func (p *parser) parsePatternPostfix() (PatternExpr, error) {
	x, err := p.parsePatternPrimary()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case TokStar:
		p.advance()
		return &Kleene{X: x, Kind: ClosureStar}, nil
	case TokPlus:
		p.advance()
		return &Kleene{X: x, Kind: ClosurePlus}, nil
	case TokCaret:
		p.advance()
		n, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		if n.Num < 1 || n.Num != math.Trunc(n.Num) {
			return nil, errAt(n.Pos, "closure count must be a positive integer, got %g", n.Num)
		}
		return &Kleene{X: x, Kind: ClosureCount, Count: int(n.Num)}, nil
	}
	return x, nil
}

func (p *parser) parsePatternPrimary() (PatternExpr, error) {
	switch p.cur().Kind {
	case TokIdent:
		t := p.advance()
		return &Class{Alias: t.Text}, nil
	case TokLParen:
		p.advance()
		inner, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return nil, errAt(p.cur().Pos, "expected event class or '(', found %s", p.cur())
	}
}

// ---------------------------------------------------------------------------
// value expressions
// ---------------------------------------------------------------------------

// parseCmpChain parses expr (op expr)+ and expands chained comparisons
// (T1.name = T2.name = T3.name) into adjacent pairs.
func (p *parser) parseCmpChain() ([]*Cmp, error) {
	first, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	op, ok := cmpOpOf(p.cur().Kind)
	if !ok {
		return nil, errAt(p.cur().Pos, "expected comparison operator, found %s", p.cur())
	}
	var out []*Cmp
	left := first
	for {
		p.advance()
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		out = append(out, &Cmp{Op: op, L: left, R: right})
		next, ok := cmpOpOf(p.cur().Kind)
		if !ok {
			return out, nil
		}
		op, left = next, right
	}
}

func cmpOpOf(k TokKind) (CmpOp, bool) {
	switch k {
	case TokEq:
		return CmpEq, true
	case TokNeq:
		return CmpNeq, true
	case TokLt:
		return CmpLt, true
	case TokLte:
		return CmpLte, true
	case TokGt:
		return CmpGt, true
	case TokGte:
		return CmpGte, true
	}
	return 0, false
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op ArithOp
		switch p.cur().Kind {
		case TokPlus:
			op = OpAdd
		case TokMinus:
			op = OpSub
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Arith{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseExprUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op ArithOp
		switch p.cur().Kind {
		case TokStar:
			op = OpMul
		case TokSlash:
			op = OpDiv
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseExprUnary()
		if err != nil {
			return nil, err
		}
		l = &Arith{Op: op, L: l, R: r}
	}
}

func (p *parser) parseExprUnary() (Expr, error) {
	if p.accept(TokMinus) {
		x, err := p.parseExprUnary()
		if err != nil {
			return nil, err
		}
		if n, ok := x.(*NumLit); ok {
			return &NumLit{V: -n.V}, nil
		}
		return &Arith{Op: OpSub, L: &NumLit{V: 0}, R: x}, nil
	}
	return p.parseExprPrimary()
}

func (p *parser) parseExprPrimary() (Expr, error) {
	switch p.cur().Kind {
	case TokNumber:
		t := p.advance()
		return &NumLit{V: t.Num}, nil
	case TokString:
		t := p.advance()
		return &StrLit{V: t.Text}, nil
	case TokLParen:
		p.advance()
		inner, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	case TokIdent:
		t := p.advance()
		// aggregate: sum(T2.volume), count(T2)
		if fn, isAgg := aggByName[strings.ToLower(t.Text)]; isAgg && p.cur().Kind == TokLParen {
			p.advance()
			ref, err := p.parseAttrRef()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			if fn != AggCount && ref.Attr == "" {
				return nil, errAt(t.Pos, "%s requires alias.attr argument", fn)
			}
			return &Agg{Fn: fn, Arg: ref}, nil
		}
		if p.accept(TokDot) {
			at, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			return &AttrRef{Alias: t.Text, Attr: at.Text, Class: -1}, nil
		}
		// bare alias (class reference; only legal in RETURN / count())
		return &AttrRef{Alias: t.Text, Class: -1}, nil
	default:
		return nil, errAt(p.cur().Pos, "expected expression, found %s", p.cur())
	}
}

func (p *parser) parseAttrRef() (*AttrRef, error) {
	t, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	ref := &AttrRef{Alias: t.Text, Class: -1}
	if p.accept(TokDot) {
		at, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		ref.Attr = at.Text
	}
	return ref, nil
}

func (p *parser) parseReturnItem() (ReturnItem, error) {
	e, err := p.parseAdd()
	if err != nil {
		return ReturnItem{}, err
	}
	item := ReturnItem{Expr: e}
	if p.accept(TokAs) {
		t, err := p.expect(TokIdent)
		if err != nil {
			return ReturnItem{}, err
		}
		item.As = t.Text
	}
	return item, nil
}
