package query

import "fmt"

// TokKind identifies a lexical token class.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString

	// keywords
	TokPattern
	TokWhere
	TokAnd
	TokOr
	TokNot // NOT keyword (alternative to '!')
	TokWithin
	TokReturn
	TokAs

	// punctuation / operators
	TokSemi   // ;
	TokBang   // !
	TokAmp    // &
	TokPipe   // |
	TokLParen // (
	TokRParen // )
	TokComma  // ,
	TokDot    // .
	TokCaret  // ^
	TokStar   // *
	TokPlus   // +
	TokMinus  // -
	TokSlash  // /
	TokEq     // =
	TokNeq    // !=
	TokLt     // <
	TokLte    // <=
	TokGt     // >
	TokGte    // >=
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokNumber: "number", TokString: "string",
	TokPattern: "PATTERN", TokWhere: "WHERE", TokAnd: "AND", TokOr: "OR", TokNot: "NOT",
	TokWithin: "WITHIN", TokReturn: "RETURN", TokAs: "AS",
	TokSemi: ";", TokBang: "!", TokAmp: "&", TokPipe: "|", TokLParen: "(", TokRParen: ")",
	TokComma: ",", TokDot: ".", TokCaret: "^", TokStar: "*", TokPlus: "+", TokMinus: "-",
	TokSlash: "/", TokEq: "=", TokNeq: "!=", TokLt: "<", TokLte: "<=", TokGt: ">", TokGte: ">=",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokKind
	Text string  // raw text for idents/strings
	Num  float64 // value for numbers
	Pos  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokString:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	case TokNumber:
		return fmt.Sprintf("number(%g)", t.Num)
	default:
		return t.Kind.String()
	}
}

// keywords maps upper-cased identifiers to keyword tokens.
var keywords = map[string]TokKind{
	"PATTERN": TokPattern,
	"WHERE":   TokWhere,
	"AND":     TokAnd,
	"OR":      TokOr,
	"NOT":     TokNot,
	"WITHIN":  TokWithin,
	"RETURN":  TokReturn,
	"AS":      TokAs,
}
