package query

import "fmt"

// TokKind identifies a lexical token class.
type TokKind int

const (
	// TokEOF marks the end of input.
	TokEOF TokKind = iota
	// TokIdent is an identifier (class alias, attribute, function).
	TokIdent
	// TokNumber is a numeric literal.
	TokNumber
	// TokString is a quoted string literal.
	TokString

	// TokPattern is the PATTERN keyword.
	TokPattern
	// TokWhere is the WHERE keyword.
	TokWhere
	// TokAnd is the AND keyword.
	TokAnd
	// TokOr is the OR keyword.
	TokOr
	// TokNot is the NOT keyword.
	TokNot // NOT keyword (alternative to '!')
	// TokWithin is the WITHIN keyword.
	TokWithin
	// TokReturn is the RETURN keyword.
	TokReturn
	// TokAs is the AS keyword.
	TokAs

	// TokSemi is ';' (sequence).
	TokSemi // ;
	// TokBang is '!' (negation).
	TokBang // !
	// TokAmp is '&' (conjunction).
	TokAmp // &
	// TokPipe is '|' (disjunction).
	TokPipe // |
	// TokLParen is '('.
	TokLParen // (
	// TokRParen is ')'.
	TokRParen // )
	// TokComma is ','.
	TokComma // ,
	// TokDot is '.' (attribute access).
	TokDot // .
	// TokCaret is '^' (counted closure).
	TokCaret // ^
	// TokStar is '*' (Kleene star).
	TokStar // *
	// TokPlus is '+' (Kleene plus, or addition in expressions).
	TokPlus // +
	// TokMinus is '-'.
	TokMinus // -
	// TokSlash is '/'.
	TokSlash // /
	// TokEq is '='.
	TokEq // =
	// TokNeq is '!='.
	TokNeq // !=
	// TokLt is '<'.
	TokLt // <
	// TokLte is '<='.
	TokLte // <=
	// TokGt is '>'.
	TokGt // >
	// TokGte is '>='.
	TokGte // >=
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokNumber: "number", TokString: "string",
	TokPattern: "PATTERN", TokWhere: "WHERE", TokAnd: "AND", TokOr: "OR", TokNot: "NOT",
	TokWithin: "WITHIN", TokReturn: "RETURN", TokAs: "AS",
	TokSemi: ";", TokBang: "!", TokAmp: "&", TokPipe: "|", TokLParen: "(", TokRParen: ")",
	TokComma: ",", TokDot: ".", TokCaret: "^", TokStar: "*", TokPlus: "+", TokMinus: "-",
	TokSlash: "/", TokEq: "=", TokNeq: "!=", TokLt: "<", TokLte: "<=", TokGt: ">", TokGte: ">=",
}

// String implements fmt.Stringer.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokKind
	Text string  // raw text for idents/strings
	Num  float64 // value for numbers
	Pos  int
}

// String implements fmt.Stringer.
func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokString:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	case TokNumber:
		return fmt.Sprintf("number(%g)", t.Num)
	default:
		return t.Kind.String()
	}
}

// keywords maps upper-cased identifiers to keyword tokens.
var keywords = map[string]TokKind{
	"PATTERN": TokPattern,
	"WHERE":   TokWhere,
	"AND":     TokAnd,
	"OR":      TokOr,
	"NOT":     TokNot,
	"WITHIN":  TokWithin,
	"RETURN":  TokReturn,
	"AS":      TokAs,
}
