package query

import (
	"fmt"
	"strings"
)

// ---------------------------------------------------------------------------
// Pattern expressions
// ---------------------------------------------------------------------------

// PatternExpr is a node of the PATTERN clause AST.
type PatternExpr interface {
	fmt.Stringer
	patternNode()
}

// Class is a reference to an event class (an alias over the input stream).
type Class struct {
	Alias string
}

// Seq is a left-to-right temporal sequence: Items[0] ; Items[1] ; ...
type Seq struct {
	Items []PatternExpr
}

// Conj is a conjunction: all items occur within the window, in any order.
type Conj struct {
	Items []PatternExpr
}

// Disj is a disjunction: at least one item occurs within the window.
type Disj struct {
	Items []PatternExpr
}

// Not is a negation: the operand does not occur (must be combined with
// sequence/conjunction context; never stands alone, §4.4.2).
type Not struct {
	X PatternExpr
}

// ClosureKind distinguishes the three Kleene-closure forms of §3.1.
type ClosureKind int

const (
	// ClosureNone marks a plain (non-closure) class.
	ClosureNone ClosureKind = iota
	// ClosureStar is A*: zero or more occurrences.
	ClosureStar
	// ClosurePlus is A+: one or more occurrences.
	ClosurePlus
	// ClosureCount is A^n: exactly n occurrences.
	ClosureCount
)

// String implements fmt.Stringer.
func (k ClosureKind) String() string {
	switch k {
	case ClosureNone:
		return ""
	case ClosureStar:
		return "*"
	case ClosurePlus:
		return "+"
	case ClosureCount:
		return "^n"
	}
	return "?"
}

// Kleene is a Kleene closure over a class: X*, X+ or X^Count.
type Kleene struct {
	X     PatternExpr
	Kind  ClosureKind
	Count int // valid when Kind == ClosureCount
}

func (*Class) patternNode()  {}
func (*Seq) patternNode()    {}
func (*Conj) patternNode()   {}
func (*Disj) patternNode()   {}
func (*Not) patternNode()    {}
func (*Kleene) patternNode() {}

// String implements fmt.Stringer.
func (c *Class) String() string { return c.Alias }

func joinPattern(items []PatternExpr, sep string, parentPrec, prec int) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = patternString(it, prec)
	}
	s := strings.Join(parts, sep)
	if parentPrec > prec {
		return "(" + s + ")"
	}
	return s
}

// precedence: ';' = 1, '|' = 2, '&' = 3, unary = 4
func patternString(p PatternExpr, parentPrec int) string {
	switch x := p.(type) {
	case *Class:
		return x.Alias
	case *Seq:
		return joinPattern(x.Items, " ; ", parentPrec, 1)
	case *Disj:
		return joinPattern(x.Items, " | ", parentPrec, 2)
	case *Conj:
		return joinPattern(x.Items, " & ", parentPrec, 3)
	case *Not:
		return "!" + patternString(x.X, 4)
	case *Kleene:
		base := patternString(x.X, 4)
		switch x.Kind {
		case ClosureStar:
			return base + "*"
		case ClosurePlus:
			return base + "+"
		case ClosureCount:
			return fmt.Sprintf("%s^%d", base, x.Count)
		}
		return base
	default:
		return fmt.Sprintf("<%T>", p)
	}
}

// String implements fmt.Stringer.
func (s *Seq) String() string { return patternString(s, 0) }

// String implements fmt.Stringer.
func (c *Conj) String() string { return patternString(c, 0) }

// String implements fmt.Stringer.
func (d *Disj) String() string { return patternString(d, 0) }

// String implements fmt.Stringer.
func (n *Not) String() string { return patternString(n, 0) }

// String implements fmt.Stringer.
func (k *Kleene) String() string { return patternString(k, 0) }

// ---------------------------------------------------------------------------
// Value expressions (WHERE / RETURN)
// ---------------------------------------------------------------------------

// Expr is a node of a value expression.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// AttrRef is alias.attr; the analyzer fills Class with the class index.
// The pseudo-attribute "ts" refers to the event timestamp.
type AttrRef struct {
	Alias string
	Attr  string
	Class int // resolved class index; -1 before analysis
}

// NumLit is a numeric literal.
type NumLit struct {
	V float64
}

// StrLit is a string literal.
type StrLit struct {
	V string
}

// ArithOp is an arithmetic operator.
type ArithOp int

const (
	// OpAdd is addition.
	OpAdd ArithOp = iota
	// OpSub is subtraction.
	OpSub
	// OpMul is multiplication.
	OpMul
	// OpDiv is division.
	OpDiv
)

// String implements fmt.Stringer.
func (o ArithOp) String() string {
	return [...]string{"+", "-", "*", "/"}[o]
}

// Arith is L op R.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// AggFn enumerates the closure aggregate functions of §3.1/§3.2.
type AggFn int

const (
	// AggSum sums the attribute over the closure group.
	AggSum AggFn = iota
	// AggAvg averages the attribute over the closure group.
	AggAvg
	// AggCount counts the closure group events.
	AggCount
	// AggMin takes the minimum over the closure group.
	AggMin
	// AggMax takes the maximum over the closure group.
	AggMax
)

var aggNames = [...]string{"sum", "avg", "count", "min", "max"}

// String implements fmt.Stringer.
func (f AggFn) String() string { return aggNames[f] }

// aggByName maps a lower-cased function name to its AggFn.
var aggByName = map[string]AggFn{
	"sum": AggSum, "avg": AggAvg, "count": AggCount, "min": AggMin, "max": AggMax,
}

// Agg is an aggregate over the events grouped by a Kleene closure class,
// e.g. sum(T2.volume).
type Agg struct {
	Fn  AggFn
	Arg *AttrRef
}

func (*AttrRef) exprNode() {}
func (*NumLit) exprNode()  {}
func (*StrLit) exprNode()  {}
func (*Arith) exprNode()   {}
func (*Agg) exprNode()     {}

// String implements fmt.Stringer.
func (a *AttrRef) String() string { return a.Alias + "." + a.Attr }

// String implements fmt.Stringer.
func (n *NumLit) String() string {
	return strings.TrimSuffix(strings.TrimRight(fmt.Sprintf("%f", n.V), "0"), ".")
}

// String implements fmt.Stringer.
func (s *StrLit) String() string { return "'" + s.V + "'" }

// String implements fmt.Stringer.
func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// String implements fmt.Stringer.
func (a *Agg) String() string { return fmt.Sprintf("%s(%s)", a.Fn, a.Arg) }

// CmpOp is a comparison operator.
type CmpOp int

const (
	// CmpEq is '='.
	CmpEq CmpOp = iota
	// CmpNeq is '!='.
	CmpNeq
	// CmpLt is '<'.
	CmpLt
	// CmpLte is '<='.
	CmpLte
	// CmpGt is '>'.
	CmpGt
	// CmpGte is '>='.
	CmpGte
)

// String implements fmt.Stringer.
func (o CmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[o]
}

// Negate returns the complementary operator (=/!=, </>=, etc.).
func (o CmpOp) Negate() CmpOp {
	switch o {
	case CmpEq:
		return CmpNeq
	case CmpNeq:
		return CmpEq
	case CmpLt:
		return CmpGte
	case CmpLte:
		return CmpGt
	case CmpGt:
		return CmpLte
	default:
		return CmpLt
	}
}

// Cmp is one comparison predicate L op R.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// String implements fmt.Stringer.
func (c *Cmp) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

// ---------------------------------------------------------------------------
// Query
// ---------------------------------------------------------------------------

// ReturnItem is one entry of the RETURN clause: either a whole class
// (Expr == *AttrRef with Attr == "") or a value expression, optionally
// renamed with AS.
type ReturnItem struct {
	Expr Expr
	As   string
}

// String implements fmt.Stringer.
func (r ReturnItem) String() string {
	s := r.Expr.String()
	if ar, ok := r.Expr.(*AttrRef); ok && ar.Attr == "" {
		s = ar.Alias
	}
	if r.As != "" {
		s += " AS " + r.As
	}
	return s
}

// Query is a parsed (and, after Analyze, validated) CEP query.
type Query struct {
	Pattern PatternExpr
	Where   []*Cmp
	Within  int64 // window length in ticks
	Return  []ReturnItem

	// Info is populated by Analyze.
	Info *Info
}

// String implements fmt.Stringer.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("PATTERN ")
	b.WriteString(q.Pattern.String())
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(c.String())
		}
	}
	fmt.Fprintf(&b, " WITHIN %d units", q.Within)
	if len(q.Return) > 0 {
		b.WriteString(" RETURN ")
		for i, r := range q.Return {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(r.String())
		}
	}
	return b.String()
}

// walkExprs visits every value expression of the query in place.
func walkExpr(e Expr, f func(Expr)) {
	f(e)
	switch x := e.(type) {
	case *Arith:
		walkExpr(x.L, f)
		walkExpr(x.R, f)
	case *Agg:
		walkExpr(x.Arg, f)
	}
}
