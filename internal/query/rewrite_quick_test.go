package query

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// genPattern builds a random pattern tree over distinct class aliases.
type genPattern struct {
	P PatternExpr
}

func (genPattern) Generate(rand *rand.Rand, size int) reflect.Value {
	next := 0
	var gen func(depth int, allowNeg bool) PatternExpr
	gen = func(depth int, allowNeg bool) PatternExpr {
		if depth <= 0 || rand.Intn(3) == 0 {
			next++
			return &Class{Alias: alias(next)}
		}
		switch rand.Intn(5) {
		case 0:
			return &Seq{Items: []PatternExpr{gen(depth-1, allowNeg), gen(depth-1, allowNeg)}}
		case 1:
			return &Conj{Items: []PatternExpr{gen(depth-1, allowNeg), gen(depth-1, allowNeg)}}
		case 2:
			return &Disj{Items: []PatternExpr{gen(depth-1, false), gen(depth-1, false)}}
		case 3:
			if allowNeg {
				return &Not{X: gen(depth-1, false)}
			}
			return gen(depth-1, allowNeg)
		default:
			next++
			base := &Class{Alias: alias(next)}
			kinds := []ClosureKind{ClosureStar, ClosurePlus, ClosureCount}
			k := kinds[rand.Intn(3)]
			cnt := 0
			if k == ClosureCount {
				cnt = 1 + rand.Intn(4)
			}
			return &Kleene{X: base, Kind: k, Count: cnt}
		}
	}
	return reflect.ValueOf(genPattern{P: gen(3+rand.Intn(2), true)})
}

func alias(i int) string {
	return string(rune('A'+(i-1)%26)) + string(rune('0'+(i-1)/26))
}

// classesOf collects the multiset of class aliases in a pattern.
func classesOf(p PatternExpr) []string {
	var out []string
	var walk func(PatternExpr)
	walk = func(x PatternExpr) {
		switch n := x.(type) {
		case *Class:
			out = append(out, n.Alias)
		case *Seq:
			for _, it := range n.Items {
				walk(it)
			}
		case *Conj:
			for _, it := range n.Items {
				walk(it)
			}
		case *Disj:
			for _, it := range n.Items {
				walk(it)
			}
		case *Not:
			walk(n.X)
		case *Kleene:
			walk(n.X)
		}
	}
	walk(p)
	sort.Strings(out)
	return out
}

// countOps counts operator nodes (Seq/Conj/Disj items beyond the first,
// negations, closures) — the §5.2.1 acceptance metric.
func countOps(p PatternExpr) int {
	switch n := p.(type) {
	case *Class:
		return 0
	case *Seq:
		c := len(n.Items) - 1
		for _, it := range n.Items {
			c += countOps(it)
		}
		return c
	case *Conj:
		c := len(n.Items) - 1
		for _, it := range n.Items {
			c += countOps(it)
		}
		return c
	case *Disj:
		c := len(n.Items) - 1
		for _, it := range n.Items {
			c += countOps(it)
		}
		return c
	case *Not:
		return 1 + countOps(n.X)
	case *Kleene:
		return 1 + countOps(n.X)
	}
	return 0
}

// Property: Normalize preserves the class multiset (rewrites reorder and
// regroup but never add or drop event classes).
func TestNormalizePreservesClasses(t *testing.T) {
	f := func(g genPattern) bool {
		before := classesOf(g.P)
		after := classesOf(Normalize(g.P))
		return reflect.DeepEqual(before, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Normalize never increases the operator count (§5.2.1 accepts a
// rewrite only when it shrinks the expression or cheapens an operator).
func TestNormalizeNeverGrows(t *testing.T) {
	f := func(g genPattern) bool {
		return countOps(Normalize(g.P)) <= countOps(g.P)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Normalize is idempotent.
func TestNormalizeIdempotentQuick(t *testing.T) {
	f := func(g genPattern) bool {
		n1 := Normalize(g.P)
		return Normalize(n1).String() == n1.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: normalized output contains no double negation and no
// conjunction whose items are all negations (De Morgan applied).
func TestNormalizeStructuralInvariants(t *testing.T) {
	var check func(p PatternExpr) bool
	check = func(p PatternExpr) bool {
		switch n := p.(type) {
		case *Not:
			if _, dbl := n.X.(*Not); dbl {
				return false
			}
			return check(n.X)
		case *Conj:
			allNeg := true
			for _, it := range n.Items {
				if !check(it) {
					return false
				}
				if _, isNeg := it.(*Not); !isNeg {
					allNeg = false
				}
			}
			return !allNeg
		case *Seq:
			for _, it := range n.Items {
				if _, nested := it.(*Seq); nested {
					return false
				}
				if !check(it) {
					return false
				}
			}
			return true
		case *Disj:
			for _, it := range n.Items {
				if _, nested := it.(*Disj); nested {
					return false
				}
				if !check(it) {
					return false
				}
			}
			return true
		case *Kleene:
			return check(n.X)
		}
		return true
	}
	f := func(g genPattern) bool { return check(Normalize(g.P)) }
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
