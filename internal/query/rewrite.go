package query

// Normalize applies the always-beneficial algebraic rewrites of §5.2.1 to a
// pattern expression and returns the simplified pattern. A rewrite is
// applied only when it reduces the operator count or replaces an operator
// with a cheaper one (C_DIS < C_SEQ < C_CON), which holds for every rule
// below:
//
//   - double negation elimination:        !!X        -> X
//   - De Morgan over conjunction:         !B & !C    -> !(B|C)
//     (one DISJ instead of one CONJ plus an extra negation; the paper's
//     Expression1 -> Expression2 example)
//   - flattening of nested same-kind ops: (A;B);C    -> A;B;C
//   - single-item unwrapping:             Seq{X}     -> X
func Normalize(p PatternExpr) PatternExpr {
	switch x := p.(type) {
	case *Class:
		return x
	case *Not:
		inner := Normalize(x.X)
		if n, ok := inner.(*Not); ok {
			return n.X // !!X -> X
		}
		return &Not{X: inner}
	case *Kleene:
		return &Kleene{X: Normalize(x.X), Kind: x.Kind, Count: x.Count}
	case *Seq:
		items := normalizeItems(x.Items, func(e PatternExpr) ([]PatternExpr, bool) {
			s, ok := e.(*Seq)
			if !ok {
				return nil, false
			}
			return s.Items, true
		})
		if len(items) == 1 {
			return items[0]
		}
		return &Seq{Items: items}
	case *Disj:
		items := normalizeItems(x.Items, func(e PatternExpr) ([]PatternExpr, bool) {
			d, ok := e.(*Disj)
			if !ok {
				return nil, false
			}
			return d.Items, true
		})
		if len(items) == 1 {
			return items[0]
		}
		return &Disj{Items: items}
	case *Conj:
		items := normalizeItems(x.Items, func(e PatternExpr) ([]PatternExpr, bool) {
			c, ok := e.(*Conj)
			if !ok {
				return nil, false
			}
			return c.Items, true
		})
		if len(items) == 1 {
			return items[0]
		}
		// De Morgan: if every item is a negation, !B & !C & ... -> !(B|C|...)
		allNeg := true
		for _, it := range items {
			if _, ok := it.(*Not); !ok {
				allNeg = false
				break
			}
		}
		if allNeg {
			union := make([]PatternExpr, len(items))
			for i, it := range items {
				union[i] = it.(*Not).X
			}
			return Normalize(&Not{X: &Disj{Items: union}})
		}
		return &Conj{Items: items}
	default:
		return p
	}
}

// normalizeItems normalizes each item and splices children of same-kind
// nodes into the parent (associativity flattening).
func normalizeItems(items []PatternExpr, split func(PatternExpr) ([]PatternExpr, bool)) []PatternExpr {
	out := make([]PatternExpr, 0, len(items))
	for _, it := range items {
		n := Normalize(it)
		if kids, ok := split(n); ok {
			out = append(out, kids...)
		} else {
			out = append(out, n)
		}
	}
	return out
}
