package query

import (
	"fmt"
	"sort"
)

// TermKind classifies one element of the normalized top-level sequence.
type TermKind int

const (
	// TermClass is a plain event class.
	TermClass TermKind = iota
	// TermNeg is a negation over one or more classes (!B or !(B|C)).
	TermNeg
	// TermKleene is a Kleene closure over one class.
	TermKleene
	// TermConj is a conjunction of two or more classes (concurrent events).
	TermConj
	// TermDisj is a disjunction of two or more classes.
	TermDisj
)

// String implements fmt.Stringer.
func (k TermKind) String() string {
	return [...]string{"class", "neg", "kleene", "conj", "disj"}[k]
}

// Term is one element of the pattern in normal form: a top-level sequence
// whose items are classes, negation sets, Kleene closures, conjunctions or
// disjunctions of classes. This is the shape every query in the paper has.
type Term struct {
	Kind    TermKind
	Classes []int // class indexes; one for TermClass/TermKleene
	// Closure fields, valid when Kind == TermKleene.
	Closure ClosureKind
	Count   int
}

// ClassInfo describes one event class (alias) of the query.
type ClassInfo struct {
	Idx     int
	Alias   string
	Negated bool
	Closure ClosureKind
	Count   int
	Term    int // index of the term the class belongs to
}

// PredInfo classifies one WHERE predicate for the planner.
type PredInfo struct {
	Cmp     *Cmp
	Classes []int // sorted distinct referenced class indexes
	HasAgg  bool
	// EqJoin is non-nil when the predicate has the hashable form
	// A.f = B.g with A and B distinct, non-negated, non-closure classes.
	EqJoin *EqJoin
}

// EqJoin describes an equality predicate usable as a hash lookup (§5.2.2).
type EqJoin struct {
	ClassL, ClassR int
	AttrL, AttrR   string
}

// String implements fmt.Stringer.
func (p *PredInfo) String() string { return p.Cmp.String() }

// Single reports whether the predicate touches exactly one class.
func (p *PredInfo) Single() bool { return len(p.Classes) == 1 }

// Info is the result of semantic analysis.
type Info struct {
	Classes []*ClassInfo
	ByAlias map[string]int
	// Terms is the pattern in sequence normal form. For a top-level
	// conjunction or disjunction (pattern "A&B" / "A|B"), Terms has one
	// element of the corresponding kind.
	Terms []Term
	Preds []*PredInfo
	// FinalClasses are the classes whose arrival can complete a match;
	// assembly rounds trigger on them (§4.3).
	FinalClasses []int
}

// NumClasses returns the number of event classes (slot count).
func (in *Info) NumClasses() int { return len(in.Classes) }

// Class returns the class info for idx.
func (in *Info) Class(idx int) *ClassInfo { return in.Classes[idx] }

// Analyze validates q and fills q.Info. The pattern is normalized first.
func Analyze(q *Query) error {
	q.Pattern = Normalize(q.Pattern)
	in := &Info{ByAlias: make(map[string]int)}

	addClass := func(alias string, term int) (*ClassInfo, error) {
		if _, dup := in.ByAlias[alias]; dup {
			return nil, errAt(0, "event class %q appears more than once in PATTERN", alias)
		}
		ci := &ClassInfo{Idx: len(in.Classes), Alias: alias, Term: term}
		in.ByAlias[alias] = ci.Idx
		in.Classes = append(in.Classes, ci)
		return ci, nil
	}

	// classesOf extracts the classes of a disjunction-of-classes or a
	// single class (the only shapes allowed under negation).
	classSetOf := func(p PatternExpr) ([]string, bool) {
		switch x := p.(type) {
		case *Class:
			return []string{x.Alias}, true
		case *Disj:
			var out []string
			for _, it := range x.Items {
				c, ok := it.(*Class)
				if !ok {
					return nil, false
				}
				out = append(out, c.Alias)
			}
			return out, true
		}
		return nil, false
	}

	// normalize top level into a sequence of items
	var items []PatternExpr
	switch top := q.Pattern.(type) {
	case *Seq:
		items = top.Items
	default:
		items = []PatternExpr{q.Pattern}
	}

	negCount := 0
	for _, item := range items {
		t := Term{}
		ti := len(in.Terms)
		switch x := item.(type) {
		case *Class:
			t.Kind = TermClass
			ci, err := addClass(x.Alias, ti)
			if err != nil {
				return err
			}
			t.Classes = []int{ci.Idx}
		case *Kleene:
			cl, ok := x.X.(*Class)
			if !ok {
				return errAt(0, "Kleene closure must apply to a single event class, got %s", x.X)
			}
			t.Kind = TermKleene
			t.Closure = x.Kind
			t.Count = x.Count
			ci, err := addClass(cl.Alias, ti)
			if err != nil {
				return err
			}
			ci.Closure = x.Kind
			ci.Count = x.Count
			t.Classes = []int{ci.Idx}
		case *Not:
			aliases, ok := classSetOf(x.X)
			if !ok {
				return errAt(0, "negation must apply to an event class or a disjunction of classes, got %s", x.X)
			}
			t.Kind = TermNeg
			negCount++
			for _, a := range aliases {
				ci, err := addClass(a, ti)
				if err != nil {
					return err
				}
				ci.Negated = true
				t.Classes = append(t.Classes, ci.Idx)
			}
		case *Conj:
			t.Kind = TermConj
			for _, it := range x.Items {
				cl, ok := it.(*Class)
				if !ok {
					if _, isNot := it.(*Not); isNot {
						return errAt(0, "mixed negated and non-negated conjunction is not supported")
					}
					return errAt(0, "conjunction items must be event classes, got %s", it)
				}
				ci, err := addClass(cl.Alias, ti)
				if err != nil {
					return err
				}
				t.Classes = append(t.Classes, ci.Idx)
			}
		case *Disj:
			t.Kind = TermDisj
			for _, it := range x.Items {
				cl, ok := it.(*Class)
				if !ok {
					if _, isNot := it.(*Not); isNot {
						return errAt(0, "disjunction over negation (A|!B) has no meaningful semantics (§4.4.2)")
					}
					return errAt(0, "disjunction items must be event classes, got %s", it)
				}
				ci, err := addClass(cl.Alias, ti)
				if err != nil {
					return err
				}
				t.Classes = append(t.Classes, ci.Idx)
			}
		default:
			return errAt(0, "unsupported pattern element %s", item)
		}
		in.Terms = append(in.Terms, t)
	}

	if negCount == len(in.Terms) {
		return errAt(0, "negation cannot appear by itself (§4.4.2)")
	}
	for i, t := range in.Terms {
		if t.Kind == TermNeg && i > 0 && in.Terms[i-1].Kind == TermNeg {
			return errAt(0, "adjacent negation terms are not supported; merge them with a disjunction")
		}
	}
	if q.Within <= 0 {
		return errAt(0, "WITHIN window must be positive")
	}

	// resolve attribute references & classify predicates
	for _, c := range q.Where {
		pi := &PredInfo{Cmp: c}
		classSet := map[int]bool{}
		var resolveErr error
		for _, side := range []Expr{c.L, c.R} {
			walkExpr(side, func(e Expr) {
				if resolveErr != nil {
					return
				}
				switch x := e.(type) {
				case *AttrRef:
					idx, ok := in.ByAlias[x.Alias]
					if !ok {
						resolveErr = errAt(0, "unknown event class %q in predicate %s", x.Alias, c)
						return
					}
					if x.Attr == "" {
						resolveErr = errAt(0, "bare class reference %q not allowed in WHERE", x.Alias)
						return
					}
					x.Class = idx
					classSet[idx] = true
				case *Agg:
					pi.HasAgg = true
				}
			})
		}
		if resolveErr != nil {
			return resolveErr
		}
		for idx := range classSet {
			pi.Classes = append(pi.Classes, idx)
		}
		sort.Ints(pi.Classes)
		if len(pi.Classes) == 0 {
			return errAt(0, "predicate %s references no event class", c)
		}
		if pi.HasAgg {
			// aggregates must be over closure classes
			for _, side := range []Expr{c.L, c.R} {
				walkExpr(side, func(e Expr) {
					if resolveErr != nil {
						return
					}
					if ag, ok := e.(*Agg); ok {
						ci := in.Classes[ag.Arg.Class]
						if ci.Closure == ClosureNone {
							resolveErr = errAt(0, "aggregate %s over non-closure class %q", ag, ci.Alias)
						}
					}
				})
			}
			if resolveErr != nil {
				return resolveErr
			}
		}
		pi.EqJoin = eqJoinOf(in, c)
		in.Preds = append(in.Preds, pi)
	}

	// resolve RETURN clause
	for i := range q.Return {
		item := &q.Return[i]
		var resolveErr error
		walkExpr(item.Expr, func(e Expr) {
			if resolveErr != nil {
				return
			}
			if x, ok := e.(*AttrRef); ok {
				idx, ok := in.ByAlias[x.Alias]
				if !ok {
					resolveErr = errAt(0, "unknown event class %q in RETURN", x.Alias)
					return
				}
				x.Class = idx
				if in.Classes[idx].Negated {
					resolveErr = errAt(0, "negated class %q cannot be returned", x.Alias)
				}
			}
			if ag, ok := e.(*Agg); ok {
				idx, known := in.ByAlias[ag.Arg.Alias]
				if known && in.Classes[idx].Closure == ClosureNone {
					resolveErr = errAt(0, "aggregate %s over non-closure class %q", ag, ag.Arg.Alias)
				}
			}
		})
		if resolveErr != nil {
			return resolveErr
		}
	}
	if len(q.Return) == 0 {
		// default: return every non-negated class
		for _, ci := range in.Classes {
			if !ci.Negated {
				q.Return = append(q.Return, ReturnItem{Expr: &AttrRef{Alias: ci.Alias, Class: ci.Idx}})
			}
		}
	}

	in.FinalClasses = finalClasses(in)
	q.Info = in
	return nil
}

// eqJoinOf recognizes the hashable equality form A.f = B.g over two
// distinct plain (non-negated, non-closure) classes.
func eqJoinOf(in *Info, c *Cmp) *EqJoin {
	if c.Op != CmpEq {
		return nil
	}
	l, lok := c.L.(*AttrRef)
	r, rok := c.R.(*AttrRef)
	if !lok || !rok || l.Class == r.Class {
		return nil
	}
	for _, idx := range []int{l.Class, r.Class} {
		ci := in.Classes[idx]
		if ci.Negated || ci.Closure != ClosureNone {
			return nil
		}
	}
	return &EqJoin{ClassL: l.Class, ClassR: r.Class, AttrL: l.Attr, AttrR: r.Attr}
}

// finalClasses computes which classes can supply the last event of a match:
// walking terms from the right, a Kleene-star term is optional (zero
// occurrences), so the scan continues past it; negations never terminate a
// match but a trailing negation keeps the previous class final.
func finalClasses(in *Info) []int {
	var out []int
	for i := len(in.Terms) - 1; i >= 0; i-- {
		t := in.Terms[i]
		switch t.Kind {
		case TermNeg:
			continue // trailing negation: previous term triggers
		case TermKleene:
			out = append(out, t.Classes...)
			if t.Closure == ClosureStar {
				continue // zero occurrences allowed: previous can be final
			}
			sort.Ints(out)
			return out
		default:
			out = append(out, t.Classes...)
			sort.Ints(out)
			return out
		}
	}
	sort.Ints(out)
	return out
}

// MustParse parses src and panics on error; for tests and examples.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("MustParse(%q): %v", src, err))
	}
	return q
}
