// Package query implements the ZStream CEP query language of §3:
//
//	PATTERN  composite event expression  (';' sequence, '&' conjunction,
//	         '|' disjunction, '!' negation, '*'/'+'/'^n' Kleene closure)
//	WHERE    value constraints (conjunction of comparison predicates)
//	WITHIN   time constraint (window)
//	RETURN   output expression
//
// The package provides the lexer, the AST, a recursive-descent parser, and
// semantic analysis that numbers event classes and classifies predicates
// for the planner.
//
// canonical.go renders predicates, whole queries and query prefixes into
// alias-independent canonical fingerprints, the identities behind the
// multi-query router's predicate interning (internal/router) and the
// runtime's cross-query execution sharing: whole-query dedupe
// (FingerprintQuery) and shared-subplan prefixes (SharablePrefix,
// PrefixFingerprint, PrefixQuery).
package query
