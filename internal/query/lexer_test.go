package query

import "testing"

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := newLexer(src).lex()
	if err != nil {
		t.Fatalf("lex(%q): %v", src, err)
	}
	return toks
}

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks := lexAll(t, "PATTERN A;B WITHIN 10 secs")
	want := []TokKind{TokPattern, TokIdent, TokSemi, TokIdent, TokWithin, TokNumber, TokIdent, TokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks := lexAll(t, "; ! & | ( ) , . ^ * + - / = != < <= > >=")
	want := []TokKind{TokSemi, TokBang, TokAmp, TokPipe, TokLParen, TokRParen, TokComma,
		TokDot, TokCaret, TokStar, TokPlus, TokMinus, TokSlash, TokEq, TokNeq,
		TokLt, TokLte, TokGt, TokGte, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks := lexAll(t, "42 3.14 0.5")
	if toks[0].Num != 42 || toks[1].Num != 3.14 || toks[2].Num != 0.5 {
		t.Errorf("numbers: %v %v %v", toks[0].Num, toks[1].Num, toks[2].Num)
	}
}

func TestLexStrings(t *testing.T) {
	toks := lexAll(t, `'Google' "IBM" 'a\'b'`)
	if toks[0].Text != "Google" || toks[1].Text != "IBM" || toks[2].Text != "a'b" {
		t.Errorf("strings: %q %q %q", toks[0].Text, toks[1].Text, toks[2].Text)
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks := lexAll(t, "pattern Where and WITHIN return as not or")
	want := []TokKind{TokPattern, TokWhere, TokAnd, TokWithin, TokReturn, TokAs, TokNot, TokOr, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestLexComment(t *testing.T) {
	toks := lexAll(t, "A -- this is a comment\n;B")
	want := []TokKind{TokIdent, TokSemi, TokIdent, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "'unterminated", "#"} {
		if _, err := newLexer(src).lex(); err == nil {
			t.Errorf("lex(%q): expected error", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexAll(t, "AB  <=")
	if toks[0].Pos != 0 || toks[1].Pos != 4 {
		t.Errorf("positions: %d %d", toks[0].Pos, toks[1].Pos)
	}
}

func TestTokenString(t *testing.T) {
	if s := (Token{Kind: TokIdent, Text: "A"}).String(); s != `identifier("A")` {
		t.Errorf("ident string = %q", s)
	}
	if s := (Token{Kind: TokNumber, Num: 2}).String(); s != "number(2)" {
		t.Errorf("number string = %q", s)
	}
	if s := (Token{Kind: TokSemi}).String(); s != ";" {
		t.Errorf("semi string = %q", s)
	}
	if s := TokKind(999).String(); s != "token(999)" {
		t.Errorf("unknown kind string = %q", s)
	}
}
