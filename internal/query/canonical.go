package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Canonicalization renders predicate ASTs into alias-independent
// fingerprints so a multi-query router can recognize that thousands of
// parameterized queries ("alert when <symbol> dips 5%") share the same
// predicate structure and evaluate each distinct predicate once per event.
//
// Two single-class predicates with equal fingerprints are semantically
// identical when evaluated against one primitive event, regardless of which
// query (or class index) they came from: every attribute reference is
// normalized to `$.attr`, comparisons are orientation-normalized so the
// attribute-bearing side is on the left, and literals are serialized
// canonically.

// Fingerprint returns the canonical serialization of a value expression.
// Attribute references are rendered alias-free (`$.attr`), so expressions
// differing only in class alias or index fingerprint identically. ok is
// false when the expression contains a node kind canonicalization does
// not know — deduplicating on such a fingerprint would conflate distinct
// predicates, so callers must treat !ok as "not shareable".
func Fingerprint(e Expr) (fp string, ok bool) {
	var b strings.Builder
	ok = fingerprintExpr(&b, e)
	return b.String(), ok
}

func fingerprintExpr(b *strings.Builder, e Expr) bool {
	switch x := e.(type) {
	case *AttrRef:
		b.WriteString("$.")
		b.WriteString(x.Attr)
	case *NumLit:
		// strconv with 'g'/-1 is a round-trippable canonical float form
		// (String() trims zeros lossily: 1.50 and 1.5 must agree anyway,
		// but 10 and 1e1 must too).
		b.WriteString(strconv.FormatFloat(x.V, 'g', -1, 64))
	case *StrLit:
		b.WriteString(strconv.Quote(x.V))
	case *Arith:
		fmt.Fprintf(b, "(%s ", x.Op)
		ok := fingerprintExpr(b, x.L)
		b.WriteByte(' ')
		ok2 := fingerprintExpr(b, x.R)
		b.WriteByte(')')
		return ok && ok2
	case *Agg:
		fmt.Fprintf(b, "%s(", x.Fn)
		ok := fingerprintExpr(b, x.Arg)
		b.WriteByte(')')
		return ok
	default:
		return false
	}
	return true
}

// FingerprintCmp returns the canonical fingerprint of a comparison.
// Orientation is normalized — `90 < $.price` and `$.price > 90` agree — by
// swapping the operands (and mirroring the operator) whenever the right
// side is "heavier" than the left under a fixed total order on
// serializations. Swapping operands of <, <=, >, >= mirrors the operator
// (a < b == b > a); = and != are symmetric. ok follows Fingerprint's
// contract: false means the predicate must not be deduplicated.
func FingerprintCmp(c *Cmp) (fp string, ok bool) {
	l, lok := Fingerprint(c.L)
	r, rok := Fingerprint(c.R)
	op := c.Op
	if l > r {
		l, r = r, l
		op = mirror(op)
	}
	return l + " " + op.String() + " " + r, lok && rok
}

// mirror returns the operator with swapped operands: a < b == b > a.
func mirror(op CmpOp) CmpOp {
	switch op {
	case CmpLt:
		return CmpGt
	case CmpLte:
		return CmpGte
	case CmpGt:
		return CmpLt
	case CmpGte:
		return CmpLte
	default: // =, != are symmetric
		return op
	}
}

// EqualityAtom recognizes the hash-dispatchable form `alias.attr = literal`
// (either orientation) and returns the attribute name and the literal
// expression (*NumLit or *StrLit). Only plain attribute references qualify;
// arithmetic, aggregates and attr-to-attr equalities do not.
func EqualityAtom(c *Cmp) (attr string, lit Expr, ok bool) {
	if c.Op != CmpEq {
		return "", nil, false
	}
	if a, l, ok := attrLit(c.L, c.R); ok {
		return a, l, true
	}
	if a, l, ok := attrLit(c.R, c.L); ok {
		return a, l, true
	}
	return "", nil, false
}

func attrLit(a, l Expr) (string, Expr, bool) {
	ar, ok := a.(*AttrRef)
	if !ok || ar.Attr == "" {
		return "", nil, false
	}
	switch l.(type) {
	case *NumLit, *StrLit:
		return ar.Attr, l, true
	}
	return "", nil, false
}
