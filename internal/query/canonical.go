package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Canonicalization renders predicate ASTs into alias-independent
// fingerprints so a multi-query router can recognize that thousands of
// parameterized queries ("alert when <symbol> dips 5%") share the same
// predicate structure and evaluate each distinct predicate once per event.
//
// Two single-class predicates with equal fingerprints are semantically
// identical when evaluated against one primitive event, regardless of which
// query (or class index) they came from: every attribute reference is
// normalized to `$.attr`, comparisons are orientation-normalized so the
// attribute-bearing side is on the left, and literals are serialized
// canonically.

// Fingerprint returns the canonical serialization of a value expression.
// Attribute references are rendered alias-free (`$.attr`), so expressions
// differing only in class alias or index fingerprint identically. ok is
// false when the expression contains a node kind canonicalization does
// not know — deduplicating on such a fingerprint would conflate distinct
// predicates, so callers must treat !ok as "not shareable".
func Fingerprint(e Expr) (fp string, ok bool) {
	var b strings.Builder
	ok = fingerprintExpr(&b, e)
	return b.String(), ok
}

func fingerprintExpr(b *strings.Builder, e Expr) bool {
	switch x := e.(type) {
	case *AttrRef:
		b.WriteString("$.")
		b.WriteString(x.Attr)
	case *NumLit:
		// strconv with 'g'/-1 is a round-trippable canonical float form
		// (String() trims zeros lossily: 1.50 and 1.5 must agree anyway,
		// but 10 and 1e1 must too).
		b.WriteString(strconv.FormatFloat(x.V, 'g', -1, 64))
	case *StrLit:
		b.WriteString(strconv.Quote(x.V))
	case *Arith:
		fmt.Fprintf(b, "(%s ", x.Op)
		ok := fingerprintExpr(b, x.L)
		b.WriteByte(' ')
		ok2 := fingerprintExpr(b, x.R)
		b.WriteByte(')')
		return ok && ok2
	case *Agg:
		fmt.Fprintf(b, "%s(", x.Fn)
		ok := fingerprintExpr(b, x.Arg)
		b.WriteByte(')')
		return ok
	default:
		return false
	}
	return true
}

// FingerprintCmp returns the canonical fingerprint of a comparison.
// Orientation is normalized — `90 < $.price` and `$.price > 90` agree — by
// swapping the operands (and mirroring the operator) whenever the right
// side is "heavier" than the left under a fixed total order on
// serializations. Swapping operands of <, <=, >, >= mirrors the operator
// (a < b == b > a); = and != are symmetric. ok follows Fingerprint's
// contract: false means the predicate must not be deduplicated.
func FingerprintCmp(c *Cmp) (fp string, ok bool) {
	l, lok := Fingerprint(c.L)
	r, rok := Fingerprint(c.R)
	op := c.Op
	if l > r {
		l, r = r, l
		op = mirror(op)
	}
	return l + " " + op.String() + " " + r, lok && rok
}

// mirror returns the operator with swapped operands: a < b == b > a.
func mirror(op CmpOp) CmpOp {
	switch op {
	case CmpLt:
		return CmpGt
	case CmpLte:
		return CmpGte
	case CmpGt:
		return CmpLt
	case CmpGte:
		return CmpLte
	default: // =, != are symmetric
		return op
	}
}

// RangeAtom recognizes the range-dispatchable form `alias.attr OP numlit`
// (either orientation) for OP in <, <=, >, >=, and returns the attribute
// name, the operator normalized to attribute-on-the-left (so `90 < A.price`
// yields (price, >, 90)) and the numeric threshold. Only plain attribute
// references against numeric literals qualify: arithmetic, aggregates,
// string literals, attr-to-attr comparisons and =/!= do not. The returned
// triple is alias- and orientation-independent — two predicates with equal
// triples admit exactly the same events — so a router may key sorted
// threshold tables on it (see FingerprintRangeAtom).
func RangeAtom(c *Cmp) (attr string, op CmpOp, threshold float64, ok bool) {
	switch c.Op {
	case CmpLt, CmpLte, CmpGt, CmpGte:
	default:
		return "", 0, 0, false
	}
	if ar, isRef := c.L.(*AttrRef); isRef && ar.Attr != "" {
		if lit, isNum := c.R.(*NumLit); isNum {
			return ar.Attr, c.Op, lit.V, true
		}
	}
	if ar, isRef := c.R.(*AttrRef); isRef && ar.Attr != "" {
		if lit, isNum := c.L.(*NumLit); isNum {
			return ar.Attr, mirror(c.Op), lit.V, true
		}
	}
	return "", 0, 0, false
}

// FingerprintRangeAtom renders a normalized range atom canonically. For any
// comparison RangeAtom accepts, the result equals FingerprintCmp's — the
// attribute-bearing side serializes as `$.attr`, which orders before every
// numeric serialization, so FingerprintCmp never swaps it to the right.
func FingerprintRangeAtom(attr string, op CmpOp, threshold float64) string {
	return "$." + attr + " " + op.String() + " " + strconv.FormatFloat(threshold, 'g', -1, 64)
}

// EqualityAtom recognizes the hash-dispatchable form `alias.attr = literal`
// (either orientation) and returns the attribute name and the literal
// expression (*NumLit or *StrLit). Only plain attribute references qualify;
// arithmetic, aggregates and attr-to-attr equalities do not.
func EqualityAtom(c *Cmp) (attr string, lit Expr, ok bool) {
	if c.Op != CmpEq {
		return "", nil, false
	}
	if a, l, ok := attrLit(c.L, c.R); ok {
		return a, l, true
	}
	if a, l, ok := attrLit(c.R, c.L); ok {
		return a, l, true
	}
	return "", nil, false
}

func attrLit(a, l Expr) (string, Expr, bool) {
	ar, ok := a.(*AttrRef)
	if !ok || ar.Attr == "" {
		return "", nil, false
	}
	switch l.(type) {
	case *NumLit, *StrLit:
		return ar.Attr, l, true
	}
	return "", nil, false
}

// ---------------------------------------------------------------------------
// Subtree and whole-query fingerprints (cross-query subplan sharing)
// ---------------------------------------------------------------------------
//
// The atom fingerprints above are alias-free because the router evaluates a
// single-class predicate against one primitive event, where the class is
// implicit. Subplan sharing needs the opposite: fingerprints over *analyzed*
// queries where each attribute reference is pinned to its positional class
// index, so that two parameterized queries agree exactly when their
// canonical subtrees perform the same buffering, joining and filtering work
// on the same class positions. Aliases never appear — `PATTERN A; B` and
// `PATTERN X; Y` with the same predicates fingerprint identically.

// fingerprintExprIdx renders a value expression with attribute references
// pinned to class indexes (`#2.price`). The expression must come from an
// analyzed query (AttrRef.Class resolved); ok follows Fingerprint's
// contract.
func fingerprintExprIdx(b *strings.Builder, e Expr) bool {
	switch x := e.(type) {
	case *AttrRef:
		fmt.Fprintf(b, "#%d.%s", x.Class, x.Attr)
	case *NumLit:
		b.WriteString(strconv.FormatFloat(x.V, 'g', -1, 64))
	case *StrLit:
		b.WriteString(strconv.Quote(x.V))
	case *Arith:
		fmt.Fprintf(b, "(%s ", x.Op)
		ok := fingerprintExprIdx(b, x.L)
		b.WriteByte(' ')
		ok2 := fingerprintExprIdx(b, x.R)
		b.WriteByte(')')
		return ok && ok2
	case *Agg:
		fmt.Fprintf(b, "%s(", x.Fn)
		ok := fingerprintExprIdx(b, x.Arg)
		b.WriteByte(')')
		return ok
	default:
		return false
	}
	return true
}

// FingerprintPred returns the class-indexed canonical fingerprint of a
// comparison from an analyzed query. Orientation is normalized exactly like
// FingerprintCmp (operands ordered by serialization, operator mirrored), so
// `#0.price > 90` and `90 < #0.price` agree. ok is false when the predicate
// contains a node kind canonicalization does not know; such predicates must
// not be used for sharing decisions.
func FingerprintPred(c *Cmp) (fp string, ok bool) {
	var lb, rb strings.Builder
	lok := fingerprintExprIdx(&lb, c.L)
	rok := fingerprintExprIdx(&rb, c.R)
	l, r := lb.String(), rb.String()
	op := c.Op
	if l > r {
		l, r = r, l
		op = mirror(op)
	}
	return l + " " + op.String() + " " + r, lok && rok
}

// FingerprintQuery returns a canonical fingerprint of a whole analyzed
// query: pattern structure (term kinds, arities, closure forms), the sorted
// class-indexed predicate set, the window, and the RETURN clause including
// its effective output names (which are observable in Match.Fields). Two
// queries with equal fingerprints produce byte-identical match streams over
// any input, so a multi-query runtime may alias them onto one engine and
// fan the matches out. ok is false when any part is not canonicalizable.
func FingerprintQuery(q *Query) (fp string, ok bool) {
	in := q.Info
	if in == nil {
		return "", false
	}
	ok = true
	var b strings.Builder
	b.WriteString("P:")
	for _, t := range in.Terms {
		fmt.Fprintf(&b, "%s/%d", t.Kind, len(t.Classes))
		if t.Kind == TermKleene {
			fmt.Fprintf(&b, "%s%d", t.Closure, t.Count)
		}
		b.WriteByte(';')
	}
	fmt.Fprintf(&b, "|W:%d|C:", q.Within)
	fps := make([]string, 0, len(in.Preds))
	for _, pi := range in.Preds {
		pfp, pok := FingerprintPred(pi.Cmp)
		if !pok {
			ok = false
		}
		fps = append(fps, pfp)
	}
	sort.Strings(fps)
	b.WriteString(strings.Join(fps, "&"))
	b.WriteString("|R:")
	for _, item := range q.Return {
		name := item.As
		if name == "" {
			name = item.String()
		}
		if ar, isRef := item.Expr.(*AttrRef); isRef && ar.Attr == "" {
			fmt.Fprintf(&b, "[#%d AS %q]", ar.Class, name)
			continue
		}
		var eb strings.Builder
		if !fingerprintExprIdx(&eb, item.Expr) {
			ok = false
		}
		fmt.Fprintf(&b, "[%s AS %q]", eb.String(), name)
	}
	return b.String(), ok
}

// SharablePrefix returns the length k of the longest leading run of plain
// event classes (classes 0..k-1) whose buffering and joining work can be
// materialized once and shared across queries, or 0 when no such prefix
// exists. The prefix must:
//
//   - consist of plain TermClass terms only (no negation, closure,
//     conjunction or disjunction — those fuse into multi-class planning
//     units whose boundaries may absorb an adjacent plain class);
//   - stop one class short of a following Kleene term (KSEQ fuses the
//     preceding class as its start anchor) or negation term (a trailing
//     negation fuses its preceding class as the NSEQ anchor);
//   - exclude final classes: assembly rounds trigger on final-class
//     instances buffered by the query's own engine, so a shared prefix may
//     only cover classes whose arrival never completes a match;
//   - cover at least two classes — sharing a lone leaf buffer saves no
//     assembly work.
func SharablePrefix(in *Info) int {
	j := 0
	for j < len(in.Terms) && in.Terms[j].Kind == TermClass {
		j++
	}
	k := j // TermClass terms bind exactly one class each, in order
	if j < len(in.Terms) {
		switch in.Terms[j].Kind {
		case TermKleene, TermNeg:
			k--
		}
	}
	final := map[int]bool{}
	for _, c := range in.FinalClasses {
		final[c] = true
	}
	for k > 0 && final[k-1] {
		k--
	}
	if k < 2 {
		return 0
	}
	return k
}

// PrefixFingerprint returns the canonical fingerprint of the length-k class
// prefix of an analyzed query: the per-class single-class predicate sets,
// the multi-class predicates fully contained in classes [0,k), and the
// window (which constrains the prefix joins). Queries with equal prefix
// fingerprints perform identical prefix work and may consume one shared
// materialization; ok is false when any prefix predicate is not
// canonicalizable.
func PrefixFingerprint(q *Query, k int) (fp string, ok bool) {
	in := q.Info
	if in == nil {
		return "", false
	}
	ok = true
	var fps []string
	for _, pi := range in.Preds {
		if pi.HasAgg || pi.Classes[len(pi.Classes)-1] >= k {
			continue // not fully inside the prefix
		}
		pfp, pok := FingerprintPred(pi.Cmp)
		if !pok {
			ok = false
		}
		fps = append(fps, pfp)
	}
	sort.Strings(fps)
	return fmt.Sprintf("k=%d|w=%d|%s", k, q.Within, strings.Join(fps, "&")), ok
}

// PrefixQuery builds a standalone analyzed query evaluating exactly the
// length-k class prefix of q: the first k classes in sequence, with every
// predicate fully contained in them (deep-cloned, so analysis of the new
// query never mutates q's AST), under q's window. A shared-subplan producer
// compiles it into the one materialization all subscribing queries consume.
func PrefixQuery(q *Query, k int) (*Query, error) {
	in := q.Info
	if in == nil {
		return nil, fmt.Errorf("query: PrefixQuery on unanalyzed query")
	}
	if k < 2 || k >= in.NumClasses() {
		return nil, fmt.Errorf("query: prefix length %d out of range for %d classes", k, in.NumClasses())
	}
	items := make([]PatternExpr, k)
	for i := 0; i < k; i++ {
		items[i] = &Class{Alias: in.Classes[i].Alias}
	}
	nq := &Query{Pattern: &Seq{Items: items}, Within: q.Within}
	for _, pi := range in.Preds {
		if pi.HasAgg || pi.Classes[len(pi.Classes)-1] >= k {
			continue
		}
		nq.Where = append(nq.Where, cloneCmp(pi.Cmp))
	}
	nq.Return = []ReturnItem{{Expr: &AttrRef{Alias: in.Classes[0].Alias}}}
	if err := Analyze(nq); err != nil {
		return nil, err
	}
	return nq, nil
}

// cloneCmp deep-copies a comparison so a synthetic query can be re-analyzed
// without mutating the originating query's AST.
func cloneCmp(c *Cmp) *Cmp {
	return &Cmp{Op: c.Op, L: cloneExpr(c.L), R: cloneExpr(c.R)}
}

func cloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case *AttrRef:
		cp := *x
		return &cp
	case *NumLit:
		cp := *x
		return &cp
	case *StrLit:
		cp := *x
		return &cp
	case *Arith:
		return &Arith{Op: x.Op, L: cloneExpr(x.L), R: cloneExpr(x.R)}
	case *Agg:
		arg, _ := cloneExpr(x.Arg).(*AttrRef)
		return &Agg{Fn: x.Fn, Arg: arg}
	}
	return e // unknown node kinds are never cloned into shared plans
}
