package query

import (
	"strings"
	"testing"
)

func TestParseQuery1(t *testing.T) {
	// Query 1 of the paper (x = 5%, y = 3%).
	q, err := Parse(`
		PATTERN T1;T2;T3
		WHERE T1.name = T3.name
		  AND T2.name = 'Google'
		  AND T1.price > 1.05 * T2.price
		  AND T3.price < 0.97 * T2.price
		WITHIN 10 secs
		RETURN T1, T2, T3`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Within != 10_000 {
		t.Errorf("Within = %d", q.Within)
	}
	if len(q.Where) != 4 {
		t.Fatalf("got %d predicates", len(q.Where))
	}
	if got := q.Pattern.String(); got != "T1 ; T2 ; T3" {
		t.Errorf("pattern = %q", got)
	}
	in := q.Info
	if in.NumClasses() != 3 {
		t.Fatalf("classes = %d", in.NumClasses())
	}
	if in.ByAlias["T1"] != 0 || in.ByAlias["T2"] != 1 || in.ByAlias["T3"] != 2 {
		t.Errorf("alias order wrong: %v", in.ByAlias)
	}
	// T1.name = T3.name is a hashable equality join
	var eq *EqJoin
	for _, p := range in.Preds {
		if p.EqJoin != nil {
			eq = p.EqJoin
		}
	}
	if eq == nil || eq.ClassL != 0 || eq.ClassR != 2 || eq.AttrL != "name" || eq.AttrR != "name" {
		t.Errorf("EqJoin = %+v", eq)
	}
	if len(in.FinalClasses) != 1 || in.FinalClasses[0] != 2 {
		t.Errorf("FinalClasses = %v", in.FinalClasses)
	}
}

func TestParseQuery2Negation(t *testing.T) {
	q, err := Parse(`
		PATTERN T1; !T2; T3
		WHERE T1.name = T2.name = T3.name
		  AND T1.price > 50
		  AND T2.price < 50
		  AND T3.price > 60
		WITHIN 10 secs
		RETURN T1, T3`)
	if err != nil {
		t.Fatal(err)
	}
	in := q.Info
	if !in.Classes[1].Negated || in.Classes[0].Negated || in.Classes[2].Negated {
		t.Errorf("negation flags wrong: %+v", in.Classes)
	}
	// chained equality expands into two predicates
	nEq := 0
	for _, p := range in.Preds {
		if p.Cmp.Op == CmpEq {
			nEq++
		}
	}
	if nEq != 2 {
		t.Errorf("chained equality expanded into %d preds", nEq)
	}
	if len(in.Terms) != 3 || in.Terms[1].Kind != TermNeg {
		t.Errorf("terms = %+v", in.Terms)
	}
}

func TestParseQuery3Kleene(t *testing.T) {
	q, err := Parse(`
		PATTERN T1; T2^5; T3
		WHERE T1.name = T3.name
		  AND T2.name = 'Google'
		  AND sum(T2.volume) > 1000
		  AND T3.price > 1.2 * T1.price
		WITHIN 10 secs
		RETURN T1, sum(T2.volume), T3`)
	if err != nil {
		t.Fatal(err)
	}
	in := q.Info
	c2 := in.Classes[1]
	if c2.Closure != ClosureCount || c2.Count != 5 {
		t.Errorf("closure info wrong: %+v", c2)
	}
	var aggPred *PredInfo
	for _, p := range in.Preds {
		if p.HasAgg {
			aggPred = p
		}
	}
	if aggPred == nil || !aggPred.Single() || aggPred.Classes[0] != 1 {
		t.Errorf("agg predicate wrong: %+v", aggPred)
	}
	if len(q.Return) != 3 {
		t.Errorf("return items = %d", len(q.Return))
	}
}

func TestParseKleeneStarPlus(t *testing.T) {
	q := MustParse("PATTERN A;B*;C WITHIN 10 units")
	if q.Info.Classes[1].Closure != ClosureStar {
		t.Error("star closure not detected")
	}
	// star closure allows zero B's, so both B and C... final is C only; but
	// a trailing star extends final classes:
	q2 := MustParse("PATTERN A;B* WITHIN 10 units")
	fc := q2.Info.FinalClasses
	if len(fc) != 2 {
		t.Errorf("trailing star final classes = %v", fc)
	}
	q3 := MustParse("PATTERN A;B+ WITHIN 10 units")
	if fc := q3.Info.FinalClasses; len(fc) != 1 || fc[0] != 1 {
		t.Errorf("trailing plus final classes = %v", fc)
	}
}

func TestParseConjDisj(t *testing.T) {
	q := MustParse("PATTERN A & B WITHIN 5 units")
	if len(q.Info.Terms) != 1 || q.Info.Terms[0].Kind != TermConj {
		t.Errorf("conj terms = %+v", q.Info.Terms)
	}
	if len(q.Info.FinalClasses) != 2 {
		t.Errorf("conj final classes = %v", q.Info.FinalClasses)
	}
	q = MustParse("PATTERN A | B WITHIN 5 units")
	if len(q.Info.Terms) != 1 || q.Info.Terms[0].Kind != TermDisj {
		t.Errorf("disj terms = %+v", q.Info.Terms)
	}
	q = MustParse("PATTERN (A|B) ; C WITHIN 5 units")
	if len(q.Info.Terms) != 2 || q.Info.Terms[0].Kind != TermDisj || q.Info.Terms[1].Kind != TermClass {
		t.Errorf("mixed terms = %+v", q.Info.Terms)
	}
}

func TestParsePrecedence(t *testing.T) {
	// '&' binds tighter than '|' binds tighter than ';'
	q, err := ParseOnly("PATTERN A ; B & C | D WITHIN 5 units")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Pattern.String(); got != "A ; B & C | D" {
		t.Errorf("pattern = %q", got)
	}
	seq, ok := Normalize(q.Pattern).(*Seq)
	if !ok || len(seq.Items) != 2 {
		t.Fatalf("top not 2-item seq: %v", q.Pattern)
	}
	if _, ok := seq.Items[1].(*Disj); !ok {
		t.Errorf("second item not Disj: %T", seq.Items[1])
	}
}

func TestParseNegationDeMorgan(t *testing.T) {
	// Expression1 "A;(!B&!C);D" normalizes to Expression2 "A;!(B|C);D"
	q, err := Parse("PATTERN A; (!B & !C); D WITHIN 10 units RETURN A, D")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Pattern.String(); got != "A ; !(B | C) ; D" {
		t.Errorf("normalized pattern = %q", got)
	}
	in := q.Info
	if len(in.Terms) != 3 || in.Terms[1].Kind != TermNeg || len(in.Terms[1].Classes) != 2 {
		t.Errorf("neg term = %+v", in.Terms)
	}
	if !in.Classes[1].Negated || !in.Classes[2].Negated {
		t.Error("negation flags not set on B and C")
	}
}

func TestParseDoubleNegation(t *testing.T) {
	q, err := Parse("PATTERN A; !!B WITHIN 10 units")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Pattern.String(); got != "A ; B" {
		t.Errorf("pattern = %q", got)
	}
}

func TestParseTimeUnits(t *testing.T) {
	cases := map[string]int64{
		"200 units": 200,
		"200":       200,
		"10 secs":   10_000,
		"500 msecs": 500,
		"2 mins":    120_000,
		"10 hours":  36_000_000,
	}
	for src, want := range cases {
		q, err := Parse("PATTERN A;B WITHIN " + src)
		if err != nil {
			t.Errorf("WITHIN %s: %v", src, err)
			continue
		}
		if q.Within != want {
			t.Errorf("WITHIN %s = %d, want %d", src, q.Within, want)
		}
	}
}

func TestParseReturnForms(t *testing.T) {
	q := MustParse("PATTERN A;B WITHIN 5 RETURN A, B.price, B.price * 2 AS dbl")
	if len(q.Return) != 3 {
		t.Fatalf("return = %d items", len(q.Return))
	}
	if q.Return[2].As != "dbl" {
		t.Errorf("AS name = %q", q.Return[2].As)
	}
	// default RETURN: all non-negated classes
	q = MustParse("PATTERN A;!B;C WITHIN 5")
	if len(q.Return) != 2 {
		t.Errorf("default return = %d items", len(q.Return))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"", "expected PATTERN"},
		{"PATTERN", "expected event class"},
		{"PATTERN A;B", "expected WITHIN"},
		{"PATTERN A;B WITHIN", "expected number"},
		{"PATTERN A;B WITHIN 0", "window"},
		{"PATTERN A;B WITHIN 10 lightyears", "unknown time unit"},
		{"PATTERN A;A WITHIN 10", "more than once"},
		{"PATTERN !A WITHIN 10", "by itself"},
		{"PATTERN !A;!B WITHIN 10", "by itself"},
		{"PATTERN A;!B;!C;D WITHIN 10", "adjacent negation"},
		{"PATTERN A|!B WITHIN 10", "disjunction over negation"},
		{"PATTERN A;(B;C)* WITHIN 10", "Kleene closure must apply to a single event class"},
		{"PATTERN A;B^0 WITHIN 10", "closure count"},
		{"PATTERN A;B^2.5 WITHIN 10", "closure count"},
		{"PATTERN A;!(B&C);D WITHIN 10", "negation must apply"},
		{"PATTERN A&(B;C) WITHIN 10", "conjunction items"},
		{"PATTERN A|(B;C) WITHIN 10", "disjunction items"},
		{"PATTERN A;B WHERE C.x > 1 WITHIN 10", "unknown event class"},
		{"PATTERN A;B WHERE A.x WITHIN 10", "expected comparison"},
		{"PATTERN A;B WHERE 1 > 0 WITHIN 10", "references no event class"},
		{"PATTERN A;B WITHIN 10 RETURN C", "unknown event class"},
		{"PATTERN A;!B;C WITHIN 10 RETURN B", "negated class"},
		{"PATTERN A;B WHERE sum(A.x) > 1 WITHIN 10", "non-closure"},
		{"PATTERN A;B WITHIN 10 RETURN sum(B.x)", "non-closure"},
		{"PATTERN A;B WITHIN 10 units extra", "trailing"},
		{"PATTERN A;B WITHIN 10 lightyrs", "unknown time unit"},
		{"PATTERN A;B WHERE avg(A) > 1 WITHIN 10", "requires alias.attr"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q, got nil", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q): error %q does not contain %q", c.src, err, c.frag)
		}
	}
}

func TestParseArithmetic(t *testing.T) {
	q := MustParse("PATTERN A;B WHERE A.x > (1 + 0.05) * B.y - 2 / 2 WITHIN 5")
	p := q.Info.Preds[0]
	if p.Single() {
		t.Error("multi-class predicate classified as single")
	}
	if len(p.Classes) != 2 {
		t.Errorf("classes = %v", p.Classes)
	}
}

func TestParseNegativeNumber(t *testing.T) {
	q := MustParse("PATTERN A;B WHERE A.x > -5 WITHIN 5")
	cmp := q.Info.Preds[0].Cmp
	n, ok := cmp.R.(*NumLit)
	if !ok || n.V != -5 {
		t.Errorf("negative literal = %v", cmp.R)
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	srcs := []string{
		"PATTERN A ; B ; C WITHIN 100 units",
		"PATTERN A ; !B ; C WHERE A.price > 10 WITHIN 100 units RETURN A, C",
		"PATTERN A ; B^5 ; C WHERE sum(B.volume) > 7 WITHIN 100 units RETURN A, sum(B.volume), C",
		"PATTERN A & B WITHIN 50 units",
		"PATTERN A | B ; C WITHIN 50 units",
	}
	for _, src := range srcs {
		q1 := MustParse(src)
		q2, err := Parse(q1.String())
		if err != nil {
			t.Errorf("re-parse of %q (-> %q) failed: %v", src, q1.String(), err)
			continue
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip unstable:\n  1: %s\n  2: %s", q1, q2)
		}
	}
}

func TestEqJoinNotDetected(t *testing.T) {
	// inequality, same class, closure class, negated class: no EqJoin
	cases := []string{
		"PATTERN A;B WHERE A.x != B.x WITHIN 5",
		"PATTERN A;B WHERE A.x = A.y WITHIN 5",
		"PATTERN A;B*;C WHERE B.x = C.x WITHIN 5",
		"PATTERN A;!B;C WHERE B.x = C.x WITHIN 5",
		"PATTERN A;B WHERE A.x = B.x + 1 WITHIN 5",
	}
	for _, src := range cases {
		q := MustParse(src)
		for _, p := range q.Info.Preds {
			if p.EqJoin != nil {
				t.Errorf("%q: unexpected EqJoin %+v", src, p.EqJoin)
			}
		}
	}
	// cross-attribute equality is hashable
	q := MustParse("PATTERN A;B WHERE A.x = B.y WITHIN 5")
	if q.Info.Preds[0].EqJoin == nil {
		t.Error("cross-attribute equality not detected")
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	srcs := []string{
		"PATTERN A;(!B&!C);D WITHIN 10",
		"PATTERN (A;B);(C;D) WITHIN 10",
		"PATTERN A|(B|C) WITHIN 10",
		"PATTERN A&(B&C) WITHIN 10",
		"PATTERN !!A;B WITHIN 10",
	}
	for _, src := range srcs {
		q, err := ParseOnly(src)
		if err != nil {
			t.Fatal(err)
		}
		n1 := Normalize(q.Pattern)
		n2 := Normalize(n1)
		if n1.String() != n2.String() {
			t.Errorf("%q: normalize not idempotent: %q vs %q", src, n1, n2)
		}
	}
}

func TestTermKindString(t *testing.T) {
	for k, want := range map[TermKind]string{TermClass: "class", TermNeg: "neg", TermKleene: "kleene", TermConj: "conj", TermDisj: "disj"} {
		if k.String() != want {
			t.Errorf("TermKind(%d) = %q", k, k.String())
		}
	}
}

func TestCmpOpNegate(t *testing.T) {
	cases := map[CmpOp]CmpOp{CmpEq: CmpNeq, CmpNeq: CmpEq, CmpLt: CmpGte, CmpLte: CmpGt, CmpGt: CmpLte, CmpGte: CmpLt}
	for op, want := range cases {
		if got := op.Negate(); got != want {
			t.Errorf("%s.Negate() = %s, want %s", op, got, want)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("not a query")
}

func TestMultipleWhereClauses(t *testing.T) {
	// Query 3 in the paper writes two WHERE clauses; treat like AND.
	q, err := Parse(`PATTERN T1;T2^5;T3
		WHERE T1.name = T3.name
		WHERE T2.name = 'Google'
		WITHIN 10 secs`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 2 {
		t.Errorf("preds = %d", len(q.Where))
	}
}
