package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/faultinject"
)

// errClosed reports use of a closed writer.
var errClosed = errors.New("writer closed")

// Options configures a Writer.
type Options struct {
	// Dir is the log directory; created if absent.
	Dir string
	// Fsync selects the sync policy (default FsyncBatch).
	Fsync FsyncPolicy
	// SyncEvery is the FsyncInterval period (default 50ms).
	SyncEvery time.Duration
	// SegmentBytes is the rotation threshold (default 64 MiB).
	SegmentBytes int64
	// Injector, when non-nil, is consulted at the wal.append / wal.fsync /
	// checkpoint.write crash sites; an injected panic is converted into a
	// simulated crash (torn tail + Error{Simulated: true}).
	Injector *faultinject.Injector
}

// WriterStats counts a writer's durable work, mirrored into the runtime's
// Stats and Prometheus metrics.
type WriterStats struct {
	// AppendedEvents counts events appended in batch records.
	AppendedEvents uint64
	// AppendedBatches counts batch records appended.
	AppendedBatches uint64
	// Fsyncs counts explicit segment syncs.
	Fsyncs uint64
	// Checkpoints counts checkpoint records written.
	Checkpoints uint64
	// Segments counts segment files created by this writer.
	Segments uint64
	// PrunedSegments counts segment files removed by retention pruning.
	PrunedSegments uint64
	// Bytes counts payload+frame bytes written across all segments.
	Bytes int64
}

// segInfo is a closed segment awaiting pruning.
type segInfo struct {
	ord   uint64
	path  string
	maxTs int64
}

// Writer is the append side of the log: one active segment, buffered
// frame writes flushed to the OS per record (so a process crash loses at
// most the in-flight record), fsync per Options.Fsync. Safe for use from
// the ingest path and the merger concurrently.
type Writer struct {
	mu   sync.Mutex
	opts Options
	meta Meta

	f        *os.File
	buf      *bufio.Writer
	seg      uint64
	segBytes int64
	maxTs    int64

	closed      []segInfo
	lastCkpt    Checkpoint
	lastCkptSeg uint64

	schemaIDs map[*event.Schema]uint64
	schemas   []*event.Schema
	scratch   []byte
	lastSync  time.Time

	stats WriterStats
	err   error

	appendHits int64
	fsyncHits  int64
	ckptHits   int64
}

// NewWriter opens a writer in opts.Dir, creating the directory if needed,
// starting at segment ordinal startSeg (1 for a fresh log; one past the
// last scanned segment after recovery). meta's Seed/Shards/PartitionBy are
// stamped into every segment header.
func NewWriter(opts Options, meta Meta, startSeg uint64) (*Writer, error) {
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 50 * time.Millisecond
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if startSeg == 0 {
		startSeg = 1
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, &Error{Op: "open", Path: opts.Dir, Err: err}
	}
	meta.Version = FormatVersion
	w := &Writer{
		opts:      opts,
		meta:      meta,
		seg:       startSeg,
		schemaIDs: make(map[*event.Schema]uint64),
		lastSync:  time.Now(),
	}
	if err := w.openSegmentLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

// path returns the active segment's file path.
func (w *Writer) path() string { return filepath.Join(w.opts.Dir, SegmentName(w.seg)) }

// Stats returns a snapshot of the writer's counters.
func (w *Writer) Stats() WriterStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Err returns the writer's sticky error, if it has failed.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// hit consults the injector at a crash site, converting an injected panic
// into a returned *faultinject.Injected so callers can simulate a crash.
func (w *Writer) hit(site faultinject.Site, id int64) (injected *faultinject.Injected) {
	defer func() {
		if r := recover(); r != nil {
			inj, ok := r.(*faultinject.Injected)
			if !ok {
				panic(r)
			}
			injected = inj
		}
	}()
	w.opts.Injector.Hit(site, faultinject.AnyShard, id)
	return nil
}

// openSegmentLocked creates the active segment file and writes its
// self-contained header: magic, meta record, and the full schema
// dictionary so far.
func (w *Writer) openSegmentLocked() error {
	f, err := os.OpenFile(w.path(), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return &Error{Op: "open", Path: w.path(), Err: err}
	}
	w.f = f
	if w.buf == nil {
		w.buf = bufio.NewWriterSize(f, 64<<10)
	} else {
		w.buf.Reset(f)
	}
	w.segBytes = 0
	w.maxTs = minTs
	w.stats.Segments++
	if _, err := w.buf.Write(Magic[:]); err != nil {
		return w.fail("open", err)
	}
	w.segBytes += int64(len(Magic))
	w.meta.Segment = w.seg
	body, err := json.Marshal(w.meta)
	if err != nil {
		return w.fail("open", err)
	}
	if err := w.writeFrameLocked(TMeta, body); err != nil {
		return w.fail("open", err)
	}
	for i, s := range w.schemas {
		w.scratch = event.AppendSchema(w.scratch[:0], s, uint64(i+1))
		if err := w.writeFrameLocked(TSchema, w.scratch); err != nil {
			return w.fail("open", err)
		}
	}
	return nil
}

// minTs is the "no events yet" segment max-timestamp sentinel.
const minTs = int64(-1) << 62

// fail records the writer's first error and returns it; all later
// operations return the same error.
func (w *Writer) fail(op string, cause error) error {
	e := &Error{Op: op, Path: w.path(), Err: cause}
	if inj, ok := cause.(*faultinject.Injected); ok && inj != nil {
		e.Simulated = true
	}
	if w.err == nil {
		w.err = e
	}
	return w.err
}

// writeFrameLocked appends one [len][crc][type+body] frame and flushes it
// to the OS.
func (w *Writer) writeFrameLocked(typ byte, body []byte) error {
	n := len(body) + 1
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	tb := [1]byte{typ}
	crc := crc32.Update(0, castagnoli, tb[:])
	crc = crc32.Update(crc, castagnoli, body)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	if _, err := w.buf.Write(hdr[:]); err != nil {
		return err
	}
	if err := w.buf.WriteByte(typ); err != nil {
		return err
	}
	if _, err := w.buf.Write(body); err != nil {
		return err
	}
	if err := w.buf.Flush(); err != nil {
		return err
	}
	w.segBytes += int64(frameHeaderSize + n)
	w.stats.Bytes += int64(frameHeaderSize + n)
	return nil
}

// tearTailLocked simulates a crash mid-write: it writes the frame header
// and roughly half the payload, flushes, and leaves the segment with a
// torn tail for recovery to truncate.
func (w *Writer) tearTailLocked(typ byte, body []byte) {
	n := len(body) + 1
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	tb := [1]byte{typ}
	crc := crc32.Update(0, castagnoli, tb[:])
	crc = crc32.Update(crc, castagnoli, body)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	_, _ = w.buf.Write(hdr[:])
	_ = w.buf.WriteByte(typ)
	_, _ = w.buf.Write(body[:len(body)/2])
	_ = w.buf.Flush()
}

// AppendBatch appends one ingest flush as a single batch record, emitting
// schema-dictionary records for any schemas not yet seen. Called on the
// ingest path BEFORE the batch is handed to shard workers (write-ahead
// ordering).
func (w *Writer) AppendBatch(events []*event.Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.f == nil {
		return w.fail("append", errClosed)
	}
	for _, e := range events {
		if _, ok := w.schemaIDs[e.Schema]; !ok {
			id := uint64(len(w.schemas) + 1)
			w.schemaIDs[e.Schema] = id
			w.schemas = append(w.schemas, e.Schema)
			w.scratch = event.AppendSchema(w.scratch[:0], e.Schema, id)
			if err := w.writeFrameLocked(TSchema, w.scratch); err != nil {
				return w.fail("append", err)
			}
		}
	}
	w.scratch = w.scratch[:0]
	for _, e := range events {
		w.scratch = event.AppendEncoded(w.scratch, e, w.schemaIDs[e.Schema])
		if e.Ts > w.maxTs {
			w.maxTs = e.Ts
		}
	}
	w.appendHits++
	if inj := w.hit(faultinject.SiteWALAppend, w.appendHits); inj != nil {
		w.tearTailLocked(TBatch, w.scratch)
		return w.fail("append", inj)
	}
	if err := w.writeFrameLocked(TBatch, w.scratch); err != nil {
		return w.fail("append", err)
	}
	w.stats.AppendedBatches++
	w.stats.AppendedEvents += uint64(len(events))
	if err := w.maybeSyncLocked(); err != nil {
		return err
	}
	return w.maybeRotateLocked()
}

// WriteCheckpoint appends a checkpoint record. Checkpoints are synced
// immediately under the batch and interval policies (they are rare and
// gate pruning), and unlock retention pruning of older segments.
func (w *Writer) WriteCheckpoint(cp Checkpoint) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.f == nil {
		return w.fail("checkpoint", errClosed)
	}
	body, err := json.Marshal(cp)
	if err != nil {
		return w.fail("checkpoint", err)
	}
	w.ckptHits++
	if inj := w.hit(faultinject.SiteCheckpointWrite, w.ckptHits); inj != nil {
		w.tearTailLocked(TCheckpoint, body)
		return w.fail("checkpoint", inj)
	}
	if err := w.writeFrameLocked(TCheckpoint, body); err != nil {
		return w.fail("checkpoint", err)
	}
	w.stats.Checkpoints++
	w.lastCkpt = cp
	w.lastCkptSeg = w.seg
	if w.opts.Fsync != FsyncOff {
		if err := w.syncLocked("checkpoint"); err != nil {
			return err
		}
	}
	return w.maybeRotateLocked()
}

// WriteEmitWM appends the merger's durable emit watermark and syncs it
// per the fsync policy. Under FsyncBatch the watermark is durable before
// this returns, which is what makes suppression-based replay exactly-once
// across an OS crash; for a plain process crash the flushed record is
// already safe in the page cache under every policy.
func (w *Writer) WriteEmitWM(wm EmitWM) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.f == nil {
		return w.fail("emitwm", errClosed)
	}
	w.scratch = binary.AppendVarint(w.scratch[:0], wm.End)
	w.scratch = binary.AppendUvarint(w.scratch, wm.Count)
	if err := w.writeFrameLocked(TEmitWM, w.scratch); err != nil {
		return w.fail("emitwm", err)
	}
	if err := w.maybeSyncLocked(); err != nil {
		return err
	}
	return w.maybeRotateLocked()
}

// maybeSyncLocked applies the fsync policy after an append.
func (w *Writer) maybeSyncLocked() error {
	switch w.opts.Fsync {
	case FsyncBatch:
		return w.syncLocked("fsync")
	case FsyncInterval:
		if time.Since(w.lastSync) >= w.opts.SyncEvery {
			return w.syncLocked("fsync")
		}
	}
	return nil
}

// syncLocked fsyncs the active segment, consulting the wal.fsync crash
// site first.
func (w *Writer) syncLocked(op string) error {
	w.fsyncHits++
	if inj := w.hit(faultinject.SiteWALFsync, w.fsyncHits); inj != nil {
		return w.fail(op, inj)
	}
	if err := w.f.Sync(); err != nil {
		return w.fail(op, err)
	}
	w.stats.Fsyncs++
	w.lastSync = time.Now()
	return nil
}

// maybeRotateLocked closes the active segment and opens the next one when
// the rotation threshold is crossed. The closed segment is synced so
// retention never removes the only durable copy of an unsynced tail's
// predecessor.
func (w *Writer) maybeRotateLocked() error {
	if w.segBytes < w.opts.SegmentBytes {
		return nil
	}
	if err := w.syncLocked("rotate"); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return w.fail("rotate", err)
	}
	w.closed = append(w.closed, segInfo{ord: w.seg, path: w.path(), maxTs: w.maxTs})
	w.f = nil
	w.seg++
	return w.openSegmentLocked()
}

// Prune removes closed segments wholly behind the recovery horizon of the
// last durable checkpoint, and strictly older than the segment holding
// that checkpoint. The horizon is min(LastTs, EmitEnd) − MaxWindow: the
// emit-watermark clamp keeps every event a pending (not yet durably
// emitted) match could still reference, since a match ending just above
// EmitEnd spans back to EmitEnd − window. The active segment is never
// pruned. Returns the number of segment files removed.
func (w *Writer) Prune() (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.lastCkptSeg == 0 {
		return 0, nil
	}
	base := w.lastCkpt.LastTs
	if w.lastCkpt.EmitEnd < base {
		base = w.lastCkpt.EmitEnd
	}
	if base <= minTs {
		// No emit watermark yet (EmitEnd is the MinInt64 sentinel): every
		// match is still pending, so every event is still in the horizon.
		return 0, nil
	}
	horizon := base - w.lastCkpt.MaxWindow
	removed := 0
	keep := w.closed[:0]
	for _, si := range w.closed {
		if si.ord < w.lastCkptSeg && si.maxTs < horizon {
			if err := os.Remove(si.path); err != nil {
				w.closed = append(keep, w.closed[removed:]...)
				return removed, &Error{Op: "prune", Path: si.path, Err: err}
			}
			removed++
			w.stats.PrunedSegments++
			continue
		}
		keep = append(keep, si)
	}
	w.closed = keep
	return removed, nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.f == nil {
		return w.fail("fsync", errClosed)
	}
	return w.syncLocked("fsync")
}

// Close flushes, syncs and closes the active segment.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	var first error
	if w.err == nil {
		if err := w.buf.Flush(); err != nil && first == nil {
			first = err
		}
		if err := w.f.Sync(); err != nil && first == nil {
			first = err
		}
	}
	if err := w.f.Close(); err != nil && first == nil {
		first = err
	}
	w.f = nil
	if first != nil {
		return w.fail("close", first)
	}
	return nil
}

// CloseNoSync closes the active segment without syncing: the crash
// simulator's exit path. Flushed records survive (they are in the OS page
// cache, exactly as after kill -9); nothing new is made durable.
func (w *Writer) CloseNoSync() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return
	}
	_ = w.buf.Flush()
	_ = w.f.Close()
	w.f = nil
}
