package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/event"
)

// ScanResult is what recovery learns from a full log scan: the durable
// control state (meta, latest checkpoint, emit watermark), the durable
// stream position, and what had to be repaired.
type ScanResult struct {
	// Meta is the log's meta record (from the newest segment); nil when
	// the directory holds no segments.
	Meta *Meta
	// Checkpoint is the latest complete checkpoint, nil if none survived.
	Checkpoint *Checkpoint
	// WM is the lexicographic maximum emit watermark across all records;
	// HaveWM reports whether any watermark record was found.
	WM     EmitWM
	HaveWM bool
	// Segments is the number of segment files scanned.
	Segments int
	// LastSeg is the highest segment ordinal present (0 when none).
	LastSeg uint64
	// Batches and Events count the durable batch records and the events
	// inside them.
	Batches uint64
	Events  uint64
	// LastSeq and LastTs are the maximum event sequence number and
	// timestamp across all batch records — the durable stream position.
	LastSeq uint64
	LastTs  int64
	// TruncatedBytes is how many torn-tail bytes were cut from the final
	// segment (0 for a clean log).
	TruncatedBytes int64
}

// errTorn marks a frame that is incomplete or fails its CRC; tolerated
// (and truncated) only at the tail of the final segment.
var errTorn = errors.New("torn frame")

// listSegments returns the segment file paths in dir in ordinal order,
// with their ordinals.
func listSegments(dir string) ([]string, []uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, &Error{Op: "scan", Path: dir, Err: err}
	}
	var paths []string
	var ords []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		var ord uint64
		if _, err := fmt.Sscanf(name, "wal-%08d.seg", &ord); err != nil || ord == 0 {
			continue
		}
		paths = append(paths, filepath.Join(dir, name))
		ords = append(ords, ord)
	}
	sort.Sort(&segSort{paths, ords})
	return paths, ords, nil
}

// segSort sorts paths and ords together by ordinal.
type segSort struct {
	paths []string
	ords  []uint64
}

func (s *segSort) Len() int           { return len(s.ords) }
func (s *segSort) Less(i, j int) bool { return s.ords[i] < s.ords[j] }
func (s *segSort) Swap(i, j int) {
	s.paths[i], s.paths[j] = s.paths[j], s.paths[i]
	s.ords[i], s.ords[j] = s.ords[j], s.ords[i]
}

// readFrame reads one frame from r into buf (grown as needed), returning
// the payload (type byte + body). It returns errTorn for a partial or
// corrupt frame and io.EOF at a clean end.
func readFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTorn
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > maxFramePayload {
		return nil, errTorn
	}
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, errTorn
	}
	if crc32.Checksum(buf, castagnoli) != want {
		return nil, errTorn
	}
	return buf, nil
}

// schemaDict is the per-scan schema table: ids are segment-local, but
// identical schemas (same name and attribute list) are deduped so all
// replayed events of a stream share one *Schema across segments.
type schemaDict struct {
	byID  map[uint64]*event.Schema
	bySig map[string]*event.Schema
}

func newSchemaDict() *schemaDict {
	return &schemaDict{byID: make(map[uint64]*event.Schema), bySig: make(map[string]*event.Schema)}
}

// reset clears the id table at a segment boundary (dictionaries are
// re-emitted per segment) while keeping the signature-dedupe table.
func (d *schemaDict) reset() { clear(d.byID) }

// add registers one decoded schema record.
func (d *schemaDict) add(payload []byte) error {
	id, s, n, err := event.DecodeSchema(payload)
	if err != nil {
		return err
	}
	if n != len(payload) {
		return fmt.Errorf("wal: schema record has %d trailing bytes", len(payload)-n)
	}
	sig := s.Name() + "\x00" + strings.Join(s.Attrs(), "\x00")
	if prev, ok := d.bySig[sig]; ok {
		s = prev
	} else {
		d.bySig[sig] = s
	}
	d.byID[id] = s
	return nil
}

// decodeBatch decodes all events of a batch payload body.
func decodeBatch(body []byte, d *schemaDict) ([]*event.Event, error) {
	var events []*event.Event
	off := 0
	for off < len(body) {
		e, n, err := event.Decode(body[off:], d.byID)
		if err != nil {
			return nil, err
		}
		off += n
		events = append(events, e)
	}
	return events, nil
}

// Scan reads every segment in dir, CRC-validating all frames, collecting
// the durable control state, and truncating a torn tail in the final
// segment. A torn frame anywhere else is corruption and fails the scan.
// An empty or absent directory yields a zero ScanResult (fresh log).
func Scan(dir string) (*ScanResult, error) {
	paths, ords, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	res := &ScanResult{LastTs: minTs}
	var buf []byte
	dict := newSchemaDict()
	for i, path := range paths {
		last := i == len(paths)-1
		if err := scanSegment(path, last, res, dict, &buf); err != nil {
			return nil, err
		}
		res.Segments++
		res.LastSeg = ords[i]
	}
	if res.LastTs == minTs {
		res.LastTs = 0
	}
	return res, nil
}

// scanSegment scans one segment file, updating res. When last is true a
// torn tail is truncated off the file; otherwise it is an error.
func scanSegment(path string, last bool, res *ScanResult, dict *schemaDict, buf *[]byte) error {
	f, err := os.Open(path)
	if err != nil {
		return &Error{Op: "scan", Path: path, Err: err}
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return &Error{Op: "scan", Path: path, Err: err}
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return &Error{Op: "scan", Path: path, Err: err}
	}
	r := bufio.NewReaderSize(f, 64<<10)
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != Magic {
		return &Error{Op: "scan", Path: path, Err: fmt.Errorf("bad segment magic")}
	}
	dict.reset()
	offset := int64(len(Magic))
	for {
		payload, err := readFrame(r, *buf)
		if err == io.EOF {
			return nil
		}
		if err == errTorn {
			if !last {
				return &Error{Op: "scan", Path: path, Err: fmt.Errorf("torn frame at offset %d in non-final segment", offset)}
			}
			if terr := os.Truncate(path, offset); terr != nil {
				return &Error{Op: "scan", Path: path, Err: terr}
			}
			res.TruncatedBytes += size - offset
			return nil
		}
		if err != nil {
			return &Error{Op: "scan", Path: path, Err: err}
		}
		*buf = payload[:cap(payload)]
		if ferr := applyFrame(payload, res, dict); ferr != nil {
			return &Error{Op: "scan", Path: path, Err: ferr}
		}
		offset += int64(frameHeaderSize + len(payload))
	}
}

// applyFrame folds one validated frame into the scan result.
func applyFrame(payload []byte, res *ScanResult, dict *schemaDict) error {
	typ, body := payload[0], payload[1:]
	switch typ {
	case TMeta:
		var m Meta
		if err := json.Unmarshal(body, &m); err != nil {
			return fmt.Errorf("meta record: %w", err)
		}
		if m.Version != FormatVersion {
			return fmt.Errorf("meta record: unsupported format version %d", m.Version)
		}
		res.Meta = &m
	case TSchema:
		if err := dict.add(body); err != nil {
			return err
		}
	case TBatch:
		events, err := decodeBatch(body, dict)
		if err != nil {
			return err
		}
		res.Batches++
		res.Events += uint64(len(events))
		for _, e := range events {
			if e.Seq > res.LastSeq {
				res.LastSeq = e.Seq
			}
			if e.Ts > res.LastTs {
				res.LastTs = e.Ts
			}
		}
	case TCheckpoint:
		var cp Checkpoint
		if err := json.Unmarshal(body, &cp); err != nil {
			return fmt.Errorf("checkpoint record: %w", err)
		}
		res.Checkpoint = &cp
	case TEmitWM:
		wm, err := decodeEmitWM(body)
		if err != nil {
			return err
		}
		// lexicographic max: replay-time rewrites never regress the
		// durable watermark.
		if !res.HaveWM || res.WM.Less(wm) {
			res.WM = wm
			res.HaveWM = true
		}
	default:
		return fmt.Errorf("unknown record type %d", typ)
	}
	return nil
}

// decodeEmitWM parses a TEmitWM body.
func decodeEmitWM(body []byte) (EmitWM, error) {
	end, n := binary.Varint(body)
	if n <= 0 {
		return EmitWM{}, fmt.Errorf("emitwm record: bad end varint")
	}
	cnt, m := binary.Uvarint(body[n:])
	if m <= 0 {
		return EmitWM{}, fmt.Errorf("emitwm record: bad count varint")
	}
	if n+m != len(body) {
		return EmitWM{}, fmt.Errorf("emitwm record: %d trailing bytes", len(body)-n-m)
	}
	return EmitWM{End: end, Count: cnt}, nil
}

// Replay streams every durable batch record whose newest event is at or
// past horizon (in timestamp ticks) through fn, one call per record, in
// log order — reproducing the original run's batch boundaries exactly.
// Call after Scan has truncated any torn tail; a torn frame here is an
// error. fn errors abort the replay.
func Replay(dir string, horizon int64, fn func([]*event.Event) error) error {
	paths, _, err := listSegments(dir)
	if err != nil {
		return err
	}
	var buf []byte
	dict := newSchemaDict()
	for _, path := range paths {
		if err := replaySegment(path, horizon, fn, dict, &buf); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment replays one segment's batch records.
func replaySegment(path string, horizon int64, fn func([]*event.Event) error, dict *schemaDict, buf *[]byte) error {
	f, err := os.Open(path)
	if err != nil {
		return &Error{Op: "scan", Path: path, Err: err}
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64<<10)
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != Magic {
		return &Error{Op: "scan", Path: path, Err: fmt.Errorf("bad segment magic")}
	}
	dict.reset()
	for {
		payload, err := readFrame(r, *buf)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return &Error{Op: "scan", Path: path, Err: err}
		}
		*buf = payload[:cap(payload)]
		typ, body := payload[0], payload[1:]
		switch typ {
		case TSchema:
			if err := dict.add(body); err != nil {
				return &Error{Op: "scan", Path: path, Err: err}
			}
		case TBatch:
			events, err := decodeBatch(body, dict)
			if err != nil {
				return &Error{Op: "scan", Path: path, Err: err}
			}
			max := minTs
			for _, e := range events {
				if e.Ts > max {
					max = e.Ts
				}
			}
			if max < horizon {
				continue
			}
			if err := fn(events); err != nil {
				return err
			}
		}
	}
}
