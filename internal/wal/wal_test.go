package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/event"
	"repro/internal/faultinject"
)

// mkEvents builds n stock events with seqs starting at seq0.
func mkEvents(seq0 uint64, n int) []*event.Event {
	evs := make([]*event.Event, n)
	for i := range evs {
		evs[i] = event.NewStock(seq0+uint64(i), int64(seq0)+int64(i), int64(i), "IBM", float64(10+i), 1)
	}
	return evs
}

func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Options{Dir: dir, Fsync: FsyncBatch}, Meta{Seed: 42, Shards: 2, PartitionBy: "name"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(mkEvents(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(mkEvents(11, 5)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEmitWM(EmitWM{End: 7, Count: 2}); err != nil {
		t.Fatal(err)
	}
	cp := Checkpoint{
		Queries: []QueryCheckpoint{{ID: 1, Src: "PATTERN A RETURN A", RegSeq: 0, Core: CoreConfig{Strategy: 1, BatchSize: 256}}},
		LastSeq: 15, LastTs: 15, EmitEnd: 7, EmitCount: 2, MaxWindow: 100,
	}
	if err := w.WriteCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.AppendedEvents != 15 || st.AppendedBatches != 2 || st.Segments != 1 || st.Checkpoints != 1 {
		t.Fatalf("writer stats = %+v", st)
	}
	if st.Fsyncs == 0 {
		t.Fatalf("expected fsyncs under FsyncBatch, got %+v", st)
	}

	res, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Meta == nil || res.Meta.Seed != 42 || res.Meta.Shards != 2 || res.Meta.PartitionBy != "name" {
		t.Fatalf("meta = %+v", res.Meta)
	}
	if res.Events != 15 || res.Batches != 2 || res.LastSeq != 15 || res.LastTs != 15 {
		t.Fatalf("scan = %+v", res)
	}
	if !res.HaveWM || res.WM != (EmitWM{End: 7, Count: 2}) {
		t.Fatalf("wm = %+v have=%v", res.WM, res.HaveWM)
	}
	if res.Checkpoint == nil || len(res.Checkpoint.Queries) != 1 || res.Checkpoint.Queries[0].Src != "PATTERN A RETURN A" {
		t.Fatalf("checkpoint = %+v", res.Checkpoint)
	}
	if res.TruncatedBytes != 0 {
		t.Fatalf("unexpected truncation: %d bytes", res.TruncatedBytes)
	}

	var got []uint64
	var batches int
	err = Replay(dir, 0, func(evs []*event.Event) error {
		batches++
		for _, e := range evs {
			got = append(got, e.Seq)
			if e.Schema.Name() != "Stocks" || e.Get("name").S != "IBM" {
				t.Fatalf("bad replayed event %v", e)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if batches != 2 || len(got) != 15 || got[0] != 1 || got[14] != 15 {
		t.Fatalf("replayed %d batches, seqs %v", batches, got)
	}
	// horizon skips the first batch (max ts 10 < 11)
	batches = 0
	if err := Replay(dir, 11, func(evs []*event.Event) error { batches++; return nil }); err != nil {
		t.Fatal(err)
	}
	if batches != 1 {
		t.Fatalf("horizon replay got %d batches, want 1", batches)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Options{Dir: dir, Fsync: FsyncOff}, Meta{Seed: 1, Shards: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(mkEvents(1, 8)); err != nil {
		t.Fatal(err)
	}
	w.CloseNoSync()
	path := filepath.Join(dir, SegmentName(1))
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// append garbage: a partial frame header
	if err := os.WriteFile(path, append(clean, 0xde, 0xad, 0xbe), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.TruncatedBytes != 3 || res.Events != 8 {
		t.Fatalf("scan after tear = %+v", res)
	}
	fixed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != len(clean) {
		t.Fatalf("truncate left %d bytes, want %d", len(fixed), len(clean))
	}
	// corrupting a middle byte of the only (final) segment truncates from
	// the corrupt frame onward, keeping the prefix
	bad := append([]byte(nil), clean...)
	bad[len(bad)-10] ^= 0xff
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.TruncatedBytes == 0 {
		t.Fatalf("expected truncation, got %+v", res)
	}
}

func TestTornMiddleSegmentFails(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Options{Dir: dir, Fsync: FsyncOff, SegmentBytes: 256}, Meta{Seed: 1, Shards: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := w.AppendBatch(mkEvents(uint64(1+i*4), 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Stats().Segments < 2 {
		t.Fatalf("expected rotation, stats = %+v", w.Stats())
	}
	// corrupt the FIRST segment: must fail the scan, not truncate
	path := filepath.Join(dir, SegmentName(1))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Scan(dir); err == nil {
		t.Fatal("scan of corrupt non-final segment should fail")
	}
}

func TestRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Options{Dir: dir, Fsync: FsyncOff, SegmentBytes: 512}, Meta{Seed: 9, Shards: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := w.AppendBatch(mkEvents(uint64(1+i*8), 8)); err != nil {
			t.Fatal(err)
		}
	}
	// a checkpoint whose horizon (min(LastTs, EmitEnd) − MaxWindow) passes
	// most segments; EmitEnd tracks LastTs here, as it does once the merger
	// is caught up
	if err := w.WriteCheckpoint(Checkpoint{LastSeq: 96, LastTs: 96, EmitEnd: 96, EmitCount: 1, MaxWindow: 10}); err != nil {
		t.Fatal(err)
	}
	removed, err := w.Prune()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatalf("expected pruned segments, stats = %+v", w.Stats())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// the pruned log must still scan cleanly and retain the checkpoint
	res, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoint == nil || res.Checkpoint.LastSeq != 96 {
		t.Fatalf("checkpoint lost after prune: %+v", res.Checkpoint)
	}
	// all events at or past the horizon must still be replayable
	horizon := int64(96 - 10)
	seen := 0
	if err := Replay(dir, horizon, func(evs []*event.Event) error { seen += len(evs); return nil }); err != nil {
		t.Fatal(err)
	}
	if seen == 0 {
		t.Fatal("no events at horizon after prune")
	}
}

func TestSimulatedCrashSites(t *testing.T) {
	for _, site := range []faultinject.Site{faultinject.SiteWALAppend, faultinject.SiteWALFsync, faultinject.SiteCheckpointWrite} {
		t.Run(string(site), func(t *testing.T) {
			dir := t.TempDir()
			nth := uint64(2)
			if site == faultinject.SiteCheckpointWrite {
				nth = 1
			}
			inj := faultinject.New().Arm(faultinject.Rule{Site: site, Shard: faultinject.AnyShard, Nth: nth, Act: faultinject.ActPanic})
			w, err := NewWriter(Options{Dir: dir, Fsync: FsyncBatch, Injector: inj}, Meta{Seed: 3, Shards: 1}, 0)
			if err != nil {
				t.Fatal(err)
			}
			var werr error
			for i := 0; i < 4 && werr == nil; i++ {
				werr = w.AppendBatch(mkEvents(uint64(1+i*4), 4))
				if werr == nil && i == 1 {
					werr = w.WriteCheckpoint(Checkpoint{LastSeq: uint64(8), LastTs: 8})
				}
			}
			if werr == nil {
				t.Fatal("expected a simulated crash error")
			}
			var we *Error
			if !errors.As(werr, &we) || !we.Simulated {
				t.Fatalf("want simulated *wal.Error, got %v", werr)
			}
			var inje *faultinject.Injected
			if !errors.As(werr, &inje) || inje.Site != site {
				t.Fatalf("cause = %v, want injected at %s", werr, site)
			}
			// sticky: later ops return the same error
			if err := w.AppendBatch(mkEvents(100, 1)); err == nil {
				t.Fatal("writer should stay failed")
			}
			w.CloseNoSync()
			// recovery: scan succeeds, truncating any torn tail
			res, err := Scan(dir)
			if err != nil {
				t.Fatalf("scan after %s crash: %v", site, err)
			}
			if res.Events == 0 {
				t.Fatalf("no durable events after %s crash", site)
			}
			if site == faultinject.SiteWALAppend && res.TruncatedBytes == 0 {
				t.Fatal("append crash should leave a torn tail")
			}
		})
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncBatch, FsyncInterval, FsyncOff} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			w, err := NewWriter(Options{Dir: dir, Fsync: pol}, Meta{Seed: 5, Shards: 1}, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if err := w.AppendBatch(mkEvents(uint64(1+i*2), 2)); err != nil {
					t.Fatal(err)
				}
			}
			st := w.Stats()
			switch pol {
			case FsyncBatch:
				if st.Fsyncs < 3 {
					t.Fatalf("batch policy: %d fsyncs, want >=3", st.Fsyncs)
				}
			case FsyncOff:
				if st.Fsyncs != 0 {
					t.Fatalf("off policy issued %d fsyncs", st.Fsyncs)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			res, err := Scan(dir)
			if err != nil {
				t.Fatal(err)
			}
			if res.Events != 6 {
				t.Fatalf("scan events = %d, want 6", res.Events)
			}
		})
	}
}

func TestScanFreshDir(t *testing.T) {
	res, err := Scan(filepath.Join(t.TempDir(), "nonexistent"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 0 || res.Meta != nil || res.Events != 0 {
		t.Fatalf("fresh scan = %+v", res)
	}
}

func TestCodecRoundtrip(t *testing.T) {
	e := event.MustNew(event.MustSchema("S", "a", "b", "c"), -17, event.Float(3.25), event.Str("héllo"), event.Null())
	e.Seq = 999
	var b []byte
	b = event.AppendEncoded(b, e, 7)
	got, n, err := event.Decode(b, map[uint64]*event.Schema{7: e.Schema})
	if err != nil || n != len(b) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if got.Seq != 999 || got.Ts != -17 || !got.Vals[0].Equal(e.Vals[0]) || !got.Vals[1].Equal(e.Vals[1]) || !got.Vals[2].IsNull() {
		t.Fatalf("roundtrip mismatch: %v", got)
	}
	var sb []byte
	sb = event.AppendSchema(sb, e.Schema, 7)
	id, s2, sn, err := event.DecodeSchema(sb)
	if err != nil || sn != len(sb) || id != 7 || s2.Name() != "S" || s2.NumAttrs() != 3 {
		t.Fatalf("schema roundtrip: id=%d s=%v n=%d err=%v", id, s2, sn, err)
	}
}

func TestWriterResumeSegmentNumbering(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Options{Dir: dir, Fsync: FsyncOff}, Meta{Seed: 4, Shards: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(mkEvents(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	// a recovered writer starts one past the scanned tail and must not
	// clobber the old segment
	w2, err := NewWriter(Options{Dir: dir, Fsync: FsyncOff}, Meta{Seed: 4, Shards: 1}, res.LastSeg+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.AppendBatch(mkEvents(4, 3)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	res2, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Segments != 2 || res2.Events != 6 || res2.LastSeq != 6 {
		t.Fatalf("resumed scan = %+v", res2)
	}
}
