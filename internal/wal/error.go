package wal

import "fmt"

// Error is the typed error for every WAL failure: appends, fsyncs,
// checkpoint writes, rotation, and recovery scans. The runtime's
// OnWALError policy dispatches on it, and tests can assert on Op and
// Simulated (set for faultinject-induced failures, which model crashes
// without real I/O errors).
type Error struct {
	// Op is the failing operation: "append", "fsync", "checkpoint",
	// "emitwm", "rotate", "open", "scan", "prune".
	Op string
	// Path is the segment file involved, when known.
	Path string
	// Err is the underlying cause.
	Err error
	// Simulated marks faults induced by the fault-injection harness.
	Simulated bool
}

// Error implements error.
func (e *Error) Error() string {
	if e.Path != "" {
		return fmt.Sprintf("wal: %s %s: %v", e.Op, e.Path, e.Err)
	}
	return fmt.Sprintf("wal: %s: %v", e.Op, e.Err)
}

// Unwrap returns the underlying cause for errors.Is/As chains.
func (e *Error) Unwrap() error { return e.Err }
