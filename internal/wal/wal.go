// Package wal is the runtime's durability plane: a segment-based,
// CRC-framed, append-only log of ingested event batches plus the small
// amount of durable control state recovery needs — registered queries,
// the ingest position, and the merger's emit watermark.
//
// The design leans on the property that makes ZStream recovery cheap
// (MeiM09 §2): every pattern is bounded by a WITHIN window, so operator
// state is a pure function of the last max-window of the stream. A
// checkpoint therefore never serializes operator buffers; it records only
// the registered query set and stream position, and recovery replays the
// log from checkpoint_position − max_window through the normal ingest
// path, suppressing matches at or below the durable emit watermark.
//
// # Segment format
//
// A log directory holds numbered segment files (wal-00000001.seg, …).
// Each segment starts with an 8-byte magic header and then a sequence of
// frames:
//
//	[4B little-endian payload length][4B CRC32-C of payload][payload]
//
// The payload's first byte is the record type; the rest is the body.
// Record types:
//
//	meta       JSON: format version, partition seed, shard count, partition
//	           attribute — everything replay needs to reproduce shard
//	           assignment and batch boundaries bit-exactly.
//	schema     binary schema dictionary entry (id → name + attributes).
//	batch      one ingest-side flush: the exact set of events the runtime
//	           sent to its shard workers as one batch round, encoded with
//	           event.AppendEncoded. Batch records double as batch-boundary
//	           markers: replay re-feeds each record as one flush, which is
//	           what makes equal-end-time tie order reproducible.
//	checkpoint JSON: registered query texts + options, last seq/ts, emit
//	           watermark at the time of writing. Any complete checkpoint
//	           makes all strictly older segments prunable once their events
//	           fall behind the recovery horizon.
//	emitwm     binary (end zigzag-varint, cumulative emit count at that end
//	           uvarint): the merger's durable emit watermark, written and
//	           synced before OnMatch callbacks run, so replayed matches at
//	           or below it are suppressed instead of re-delivered.
//
// Every segment is self-contained: meta and the schema dictionary are
// rewritten at the head of each new segment, so recovery can start
// scanning at any retained segment. A torn tail (partial frame or CRC
// mismatch) is tolerated only in the final segment, where it is truncated;
// anywhere else it is corruption and recovery fails loudly.
package wal

import (
	"fmt"
	"hash/crc32"
)

// Magic is the 8-byte segment file header.
var Magic = [8]byte{'Z', 'S', 'W', 'A', 'L', '0', '0', '1'}

// FormatVersion is bumped when the record encoding changes incompatibly.
const FormatVersion = 1

// Record types (first payload byte of a frame).
const (
	// TMeta is a JSON Meta record; first record of every segment.
	TMeta byte = 1
	// TSchema is one binary schema-dictionary entry.
	TSchema byte = 2
	// TBatch is one ingest flush of encoded events.
	TBatch byte = 3
	// TCheckpoint is a JSON Checkpoint record.
	TCheckpoint byte = 4
	// TEmitWM is the merger's durable emit watermark.
	TEmitWM byte = 5
)

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderSize is the per-frame overhead: 4-byte length + 4-byte CRC.
const frameHeaderSize = 8

// maxFramePayload bounds a single frame so a corrupted length field cannot
// drive an enormous allocation during recovery. 64 MiB is far above any
// real batch (256 events × a few hundred bytes).
const maxFramePayload = 64 << 20

// Meta is the JSON body of a TMeta record. It captures everything replay
// needs to reproduce the original run's shard assignment.
type Meta struct {
	// Version is FormatVersion at write time.
	Version int `json:"version"`
	// Seed is the deterministic partition-hash seed; durable runtimes use
	// a persisted seed instead of a random per-process maphash seed so
	// replay reproduces shard assignment exactly.
	Seed uint64 `json:"seed"`
	// Shards is the configured shard count.
	Shards int `json:"shards"`
	// PartitionBy is the partition attribute name.
	PartitionBy string `json:"partition_by"`
	// Segment is this segment's ordinal (1-based).
	Segment uint64 `json:"segment"`
}

// QueryCheckpoint is one registered query inside a Checkpoint.
type QueryCheckpoint struct {
	// ID is the runtime-assigned query id, preserved across recovery so
	// transcripts keyed by id concatenate cleanly.
	ID int64 `json:"id"`
	// Src is the normalized query text (query.Query.String()).
	Src string `json:"src"`
	// RegSeq is the ingest seq at registration time; recovery interleaves
	// re-registrations at the same stream positions.
	RegSeq uint64 `json:"reg_seq"`
	// Core is the serialized engine configuration subset.
	Core CoreConfig `json:"core"`
}

// CoreConfig is the serializable subset of the per-query engine
// configuration. Pointer-valued fields of the engine config (an explicit
// fixed plan shape, seeded optimizer statistics) are not serialized:
// recovered queries re-derive plans from the recorded strategy.
type CoreConfig struct {
	// Strategy is the plan strategy enum value (0 = optimal).
	Strategy int `json:"strategy,omitempty"`
	// BatchSize is the engine batch size.
	BatchSize int `json:"batch_size,omitempty"`
	// Negation is the negation-placement enum value.
	Negation int `json:"negation,omitempty"`
	// UseHash enables hash-based equality joins.
	UseHash bool `json:"use_hash,omitempty"`
	// Adaptive enables runtime replanning, tuned by AdaptEvery /
	// DriftThreshold / ImproveThreshold.
	Adaptive         bool    `json:"adaptive,omitempty"`
	AdaptEvery       int     `json:"adapt_every,omitempty"`
	DriftThreshold   float64 `json:"drift_threshold,omitempty"`
	ImproveThreshold float64 `json:"improve_threshold,omitempty"`
	// MaxDisorder is the out-of-order tolerance in ticks.
	MaxDisorder int64 `json:"max_disorder,omitempty"`
	// StatsSeed seeds the sampling collector.
	StatsSeed int64 `json:"stats_seed,omitempty"`
	// DisableEAT disables EAT push-down (ablation runs).
	DisableEAT bool `json:"disable_eat,omitempty"`
}

// Checkpoint is the JSON body of a TCheckpoint record: the full durable
// control state at one batch boundary.
type Checkpoint struct {
	// Queries is the registered query set in registration (regSeq) order.
	Queries []QueryCheckpoint `json:"queries"`
	// LastSeq is the last assigned ingest sequence number.
	LastSeq uint64 `json:"last_seq"`
	// LastTs is the last observed event timestamp.
	LastTs int64 `json:"last_ts"`
	// EmitEnd and EmitCount mirror the emit watermark at write time (the
	// TEmitWM records are still authoritative; this copy lets pruning
	// reason about a checkpoint in isolation).
	EmitEnd int64 `json:"emit_end"`
	// EmitCount is the cumulative number of matches emitted with
	// end == EmitEnd.
	EmitCount uint64 `json:"emit_count"`
	// MaxWindow is the largest WITHIN window across Queries, in ticks; the
	// recovery horizon is LastTs − MaxWindow.
	MaxWindow int64 `json:"max_window"`
}

// EmitWM is the merger's durable emit watermark: the merger has delivered
// Count matches with end time End, and every match with a smaller end.
// Ordering is lexicographic on (End, Count).
type EmitWM struct {
	// End is the match end-timestamp the watermark has reached.
	End int64
	// Count is how many matches with exactly that end have been emitted.
	Count uint64
}

// Less reports whether w orders strictly before o.
func (w EmitWM) Less(o EmitWM) bool {
	return w.End < o.End || (w.End == o.End && w.Count < o.Count)
}

// SegmentName formats the file name of segment n.
func SegmentName(n uint64) string { return fmt.Sprintf("wal-%08d.seg", n) }

// FsyncPolicy selects when the writer calls fsync on the active segment.
type FsyncPolicy int

const (
	// FsyncBatch syncs after every appended batch record (and every emit
	// watermark record): maximum durability, one fsync per flush.
	FsyncBatch FsyncPolicy = iota
	// FsyncInterval syncs when at least SyncEvery has elapsed since the
	// last sync, amortizing fsync cost at the price of a bounded window of
	// recent events that a crash may lose (never corrupt).
	FsyncInterval
	// FsyncOff never syncs explicitly; durability is whatever the OS page
	// cache provides. Every record is still flushed to the OS per append,
	// so a process crash (kill -9) loses nothing — only an OS crash or
	// power loss can lose the unsynced tail.
	FsyncOff
)

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncBatch:
		return "batch"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("fsync(%d)", int(p))
	}
}
