package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/event"
)

// validSegmentBytes builds a well-formed one-segment log in a throwaway
// directory and returns its raw bytes, for seeding the fuzzer.
func validSegmentBytes(tb testing.TB) []byte {
	dir := tb.TempDir()
	w, err := NewWriter(Options{Dir: dir, Fsync: FsyncOff}, Meta{Seed: 11, Shards: 2, PartitionBy: "name"}, 0)
	if err != nil {
		tb.Fatal(err)
	}
	if err := w.AppendBatch(mkEvents(1, 6)); err != nil {
		tb.Fatal(err)
	}
	if err := w.WriteEmitWM(EmitWM{End: 3, Count: 1}); err != nil {
		tb.Fatal(err)
	}
	if err := w.WriteCheckpoint(Checkpoint{LastSeq: 6, LastTs: 6, MaxWindow: 10}); err != nil {
		tb.Fatal(err)
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, SegmentName(1)))
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

// FuzzSegmentDecode feeds arbitrary bytes to the recovery scanner as a
// single segment file. The invariant under fuzzing: Scan either returns a
// clean error or repairs the file to a valid truncation point — never a
// panic, and never a silently-accepted bad record. When Scan succeeds,
// the repaired file must re-scan with zero further truncation and replay
// exactly the events the scan counted.
func FuzzSegmentDecode(f *testing.F) {
	valid := validSegmentBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:len(Magic)])
	f.Add([]byte{})
	f.Add([]byte("not a segment at all"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, SegmentName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Scan(dir)
		if err != nil {
			return // clean rejection
		}
		res2, err := Scan(dir)
		if err != nil {
			t.Fatalf("repaired segment failed re-scan: %v", err)
		}
		if res2.TruncatedBytes != 0 {
			t.Fatalf("re-scan truncated again (%d bytes): repair was not a valid truncation point", res2.TruncatedBytes)
		}
		if res2.Events != res.Events || res2.LastSeq != res.LastSeq {
			t.Fatalf("re-scan drifted: %+v vs %+v", res2, res)
		}
		var n uint64
		if err := Replay(dir, minTs, func(evs []*event.Event) error {
			n += uint64(len(evs))
			return nil
		}); err != nil {
			t.Fatalf("replay of repaired segment failed: %v", err)
		}
		if n != res.Events {
			t.Fatalf("replay yielded %d events, scan counted %d", n, res.Events)
		}
	})
}
