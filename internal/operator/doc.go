// Package operator implements the tree-plan node algorithms of §4.4:
// sequence (Algorithm 1), negation push-down NSEQ (Algorithm 2),
// conjunction (Algorithm 3), Kleene closure KSEQ (Algorithm 4), disjunction
// merge, and the negation-on-top filter, plus the reorder operator §4.1
// mentions for out-of-order inputs.
//
// Every node owns an end-time-ordered output buffer (§4.2) and produces its
// results in end-time order. Nodes are driven by assembly rounds (§4.3):
// Assemble(eat, now) recursively assembles children, then combines their
// new records into the node's buffer. Consumed child records are tracked
// with buffer cursors; in static mode consumed right-side prefixes are
// dropped immediately (Algorithm 1 line 7), while adaptive mode retains
// leaf buffers so a new plan can rebuild intermediate state (§5.3).
//
// Two node variants support cross-query subplan sharing: Source is a
// leaf-position node fed from a shared producer's output rather than a
// local subtree, and shadow leaves (NewShadowLeaf) evaluate a class's
// pushed-down filter without buffering, for classes whose events a shared
// producer holds once on behalf of many plans.
package operator
