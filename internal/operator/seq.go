package operator

import (
	"math"

	"repro/internal/buffer"
	"repro/internal/event"
	"repro/internal/expr"
)

// Seq evaluates the sequence operator (Algorithm 1): for each new record Rr
// of the right child, every left-child record Lr with Lr.End < Rr.Start is
// a candidate; candidates passing the window, guard and value-predicate
// checks are combined. Looping right in the outer loop keeps the output in
// end-time order (§4.4.1).
//
// When an equality predicate joins the two sides, Seq probes a hash index
// on the left buffer instead of scanning it (§5.2.2).
type Seq struct {
	descHolder
	left, right Node
	out         *buffer.Buf
	checks      combineChecks
	dropRight   bool

	hash *HashSpec // nil when hashing is off

	pairsTried uint64
	emitted    uint64
}

// HashSpec configures a hash-based equality lookup on a combining node:
// the left child buffer is indexed by LeftKey; for every right record the
// index is probed with RightKey (§5.2.2).
type HashSpec struct {
	LeftKey  func(*buffer.Record) event.Value
	RightKey func(*buffer.Record) event.Value
}

// NewSeq builds a sequence node. pred may be nil (no value constraints).
// dropRight controls whether the consumed right-buffer prefix is physically
// dropped (static mode / internal children) or merely cursor-advanced
// (adaptive mode leaves, §5.3).
func NewSeq(left, right Node, window int64, guards []PairGuard, pred expr.Predicate, dropRight bool) *Seq {
	return &Seq{
		left: left, right: right,
		out:       buffer.New(),
		checks:    combineChecks{window: window, guards: guards, pred: pred},
		dropRight: dropRight,
	}
}

// UseHash enables hash-based equality lookup with the given key extractors
// and builds the index on the left child's buffer.
func (s *Seq) UseHash(spec HashSpec) {
	s.hash = &spec
	s.left.Out().BuildIndex(spec.LeftKey)
}

// Out returns the output buffer.
func (s *Seq) Out() *buffer.Buf { return s.out }

// Children returns the two children.
func (s *Seq) Children() []Node { return []Node{s.left, s.right} }

// Label names the node.
func (s *Seq) Label() string {
	if s.hash != nil {
		return "seq[hash]"
	}
	return "seq"
}

// Stats returns the number of candidate pairs tried and records emitted
// since creation (used to validate the cost model).
func (s *Seq) Stats() (pairs, emitted uint64) { return s.pairsTried, s.emitted }

// Counters returns pairs tried and records emitted.
func (s *Seq) Counters() Counters { return Counters{In: s.pairsTried, Out: s.emitted} }

// Reset clears the output buffer; child state is reset by the plan.
func (s *Seq) Reset() { s.out.Clear() }

// Assemble runs Algorithm 1 for one round.
func (s *Seq) Assemble(eat, now int64) {
	s.left.Assemble(eat, now)
	s.right.Assemble(eat, now)

	rbuf := s.right.Out()
	lbuf := s.left.Out()
	// The right batch is end-sorted, so the left-buffer window lower bound
	// rr.End - window is non-decreasing across it: one monotonically
	// advancing cursor (reset each round) replaces a per-right-record
	// binary search. The left buffer is static during the loop — children
	// assembled above, evictions happen between rounds.
	lo, loBound := 0, int64(math.MinInt64)
	for i := rbuf.Cursor(); i < rbuf.Len(); i++ {
		rr := rbuf.At(i)
		if rr.Start < eat {
			continue
		}
		if s.hash != nil {
			key := s.hash.RightKey(rr)
			if !key.IsNull() {
				for _, lr := range lbuf.Index().Probe(key) {
					s.tryCombine(lr, rr)
				}
			}
			continue
		}
		// Scan left records with End < Rr.Start; the buffer is
		// end-sorted, so the eligible records are exactly a prefix.
		// Records ending before Rr.End - window cannot fit the window
		// (Start <= End), so the scan starts there — the in-loop
		// equivalent of Algorithm 1's EAT-based removal (step 4).
		if b := rr.End - s.checks.window; b > loBound {
			loBound = b
			for lo < lbuf.Len() && lbuf.At(lo).End < b {
				lo++
			}
		}
		n := lbuf.LowerBoundEnd(rr.Start)
		for j := lo; j < n; j++ {
			s.tryCombine(lbuf.At(j), rr)
		}
	}
	consume(rbuf, s.dropRight)
}

func (s *Seq) tryCombine(lr, rr *buffer.Record) {
	// Temporal condition, explicit because hash probes bypass the prefix
	// scan: left strictly precedes right.
	if lr.End >= rr.Start {
		return
	}
	s.pairsTried++
	if !s.checks.ok(lr, rr) {
		return
	}
	s.out.Append(s.out.Pool().Combine(lr, rr))
	s.emitted++
}

var _ Node = (*Seq)(nil)
