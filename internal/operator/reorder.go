package operator

import (
	"sort"

	"repro/internal/event"
)

// Reorderer is the reordering stage §4.1 places after leaf buffers when
// sources deliver events out of time order: it buffers events for a bounded
// delay and releases them sorted by (timestamp, sequence). Events arriving
// later than the bound (older than the last released timestamp) are
// dropped and counted.
type Reorderer struct {
	maxDelay int64
	pending  []*event.Event
	released int64 // no event at or before this timestamp is pending
	dropped  uint64
}

// NewReorderer creates a reorderer with the given maximum disorder bound in
// ticks: an event may arrive at most maxDelay ticks after a later-stamped
// event and still be re-sequenced.
func NewReorderer(maxDelay int64) *Reorderer {
	return &Reorderer{maxDelay: maxDelay, released: -1 << 62}
}

// Dropped returns the number of events discarded for arriving beyond the
// disorder bound.
func (r *Reorderer) Dropped() uint64 { return r.dropped }

// Pending returns the number of buffered events not yet released.
func (r *Reorderer) Pending() int { return len(r.pending) }

// Push adds an event and returns the events that are now safe to release
// (all events with ts <= newest - maxDelay), in timestamp order.
func (r *Reorderer) Push(e *event.Event) []*event.Event {
	if e.Ts <= r.released {
		r.dropped++
		return nil
	}
	r.pending = append(r.pending, e)
	newest := int64(-1 << 62)
	for _, p := range r.pending {
		if p.Ts > newest {
			newest = p.Ts
		}
	}
	cutoff := newest - r.maxDelay
	return r.releaseUpTo(cutoff)
}

// Flush releases every pending event regardless of the disorder bound.
func (r *Reorderer) Flush() []*event.Event {
	return r.releaseUpTo(1<<62 - 1)
}

func (r *Reorderer) releaseUpTo(cutoff int64) []*event.Event {
	if len(r.pending) == 0 {
		return nil
	}
	sort.SliceStable(r.pending, func(i, j int) bool {
		if r.pending[i].Ts != r.pending[j].Ts {
			return r.pending[i].Ts < r.pending[j].Ts
		}
		return r.pending[i].Seq < r.pending[j].Seq
	})
	n := sort.Search(len(r.pending), func(i int) bool { return r.pending[i].Ts > cutoff })
	if n == 0 {
		return nil
	}
	out := make([]*event.Event, n)
	copy(out, r.pending[:n])
	r.pending = append(r.pending[:0], r.pending[n:]...)
	r.released = out[n-1].Ts
	return out
}
