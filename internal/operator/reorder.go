package operator

import (
	"repro/internal/event"
)

// reorderItem is one pending event plus its arrival number: the heap
// orders by (Ts, Seq, arrival), so events whose Seq ties (notably the
// Seq==0 events of the public API, which are stamped only after release)
// still release in arrival order — the same stable order the previous
// sort.SliceStable implementation produced.
type reorderItem struct {
	ev      *event.Event
	arrival uint64
}

// Reorderer is the reordering stage §4.1 places after leaf buffers when
// sources deliver events out of time order: it buffers events for a bounded
// delay and releases them sorted by (timestamp, sequence). Events arriving
// later than the bound (older than the last released timestamp) are
// dropped and counted.
//
// The pending set is a binary min-heap and the newest timestamp is tracked
// as a running maximum, so Push costs O(log n) per event instead of the
// former O(n) rescan of every pending event plus an O(n log n) sort per
// release.
type Reorderer struct {
	maxDelay int64
	pending  []reorderItem // binary min-heap by (Ts, Seq, arrival)
	arrivals uint64
	newest   int64          // running max of every pushed timestamp
	released int64          // no event at or before this timestamp is pending
	out      []*event.Event // reused release buffer
	dropped  uint64
}

// NewReorderer creates a reorderer with the given maximum disorder bound in
// ticks: an event may arrive at most maxDelay ticks after a later-stamped
// event and still be re-sequenced.
func NewReorderer(maxDelay int64) *Reorderer {
	return &Reorderer{maxDelay: maxDelay, newest: -1 << 62, released: -1 << 62}
}

// Dropped returns the number of events discarded for arriving beyond the
// disorder bound.
func (r *Reorderer) Dropped() uint64 { return r.dropped }

// Pending returns the number of buffered events not yet released.
func (r *Reorderer) Pending() int { return len(r.pending) }

// Late reports whether an event with timestamp ts would be dropped for
// arriving beyond the disorder bound, counting the drop when so. Callers
// that copy events before Push use it to skip the copy for dropped events.
func (r *Reorderer) Late(ts int64) bool {
	if ts <= r.released {
		r.dropped++
		return true
	}
	return false
}

// Push adds an event and returns the events that are now safe to release
// (all events with ts <= newest - maxDelay), in (timestamp, sequence)
// order. The returned slice is reused by the next Push or Flush call;
// callers must consume (or copy) it before pushing again.
func (r *Reorderer) Push(e *event.Event) []*event.Event {
	if e.Ts <= r.released {
		r.dropped++
		return nil
	}
	r.arrivals++
	r.push(reorderItem{ev: e, arrival: r.arrivals})
	if e.Ts > r.newest {
		r.newest = e.Ts
	}
	return r.releaseUpTo(r.newest - r.maxDelay)
}

// Flush releases every pending event regardless of the disorder bound. The
// returned slice is reused like Push's.
func (r *Reorderer) Flush() []*event.Event {
	return r.releaseUpTo(1<<62 - 1)
}

// AdvanceTime informs the reorderer that stream time reached now without a
// corresponding Push: an engine behind a multi-query router sees only its
// admitted subsequence of the stream, but release timing (and the lateness
// cutoff) must track the full stream or pending events stall forever. The
// events returned are exactly those that pushing the intervening stream
// events would have released; the slice is reused like Push's.
func (r *Reorderer) AdvanceTime(now int64) []*event.Event {
	if now > r.newest {
		r.newest = now
	}
	return r.releaseUpTo(r.newest - r.maxDelay)
}

// releaseUpTo pops pending events with Ts <= cutoff into the reused output
// buffer. Stale pointers beyond the new batch are cleared so a previous,
// larger batch cannot pin events past their lifetime (only the returned
// batch itself stays referenced until the next call).
func (r *Reorderer) releaseUpTo(cutoff int64) []*event.Event {
	if len(r.pending) == 0 || r.pending[0].ev.Ts > cutoff {
		return nil
	}
	out := r.out[:0]
	for len(r.pending) > 0 && r.pending[0].ev.Ts <= cutoff {
		out = append(out, r.pop())
	}
	clear(out[len(out):cap(out)])
	r.out = out
	r.released = out[len(out)-1].Ts
	return out
}

// reorderLess orders the heap by (Ts, Seq, arrival).
func reorderLess(a, b reorderItem) bool {
	if a.ev.Ts != b.ev.Ts {
		return a.ev.Ts < b.ev.Ts
	}
	if a.ev.Seq != b.ev.Seq {
		return a.ev.Seq < b.ev.Seq
	}
	return a.arrival < b.arrival
}

func (r *Reorderer) push(it reorderItem) {
	h := append(r.pending, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !reorderLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	r.pending = h
}

func (r *Reorderer) pop() *event.Event {
	h := r.pending
	top := h[0].ev
	n := len(h) - 1
	h[0] = h[n]
	h[n] = reorderItem{} // release the pointer to the GC
	h = h[:n]
	for i := 0; ; {
		l, rt := 2*i+1, 2*i+2
		smallest := i
		if l < n && reorderLess(h[l], h[smallest]) {
			smallest = l
		}
		if rt < n && reorderLess(h[rt], h[smallest]) {
			smallest = rt
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	r.pending = h
	return top
}
