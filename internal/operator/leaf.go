package operator

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/event"
	"repro/internal/expr"
)

// Leaf stores the primitive events of one event class (§4.1). Single-class
// predicates are pushed down to the leaf: events failing the filter never
// enter the buffer. An optional hash index supports §5.2.2 equality
// lookups.
//
// Leaves are owned by the engine, not by a plan: in adaptive mode their
// contents survive plan switches (§5.3).
type Leaf struct {
	descHolder
	class    int
	nclasses int
	filter   expr.Predicate // nil accepts everything
	out      *buffer.Buf

	// seen / passed count arrivals presented to the leaf and arrivals
	// that survived the pushed-down filter: the conditioned (post-router)
	// view of the class, as opposed to the router's unconditioned
	// admission counts. Plain uint64s: the shard worker is the only
	// writer, and snapshots ride its op queue.
	seen   uint64
	passed uint64

	// shadow leaves stand in for classes whose buffering is delegated to a
	// shared subplan: they evaluate the filter and report to the observer
	// (so admission accounting matches an owning leaf exactly) but never
	// buffer — the shared producer holds the one copy of the class's
	// events.
	shadow bool

	// env is the reused filter environment: passing &env keeps the
	// interface conversion allocation-free on the per-event hot path.
	env expr.EventEnv

	// stats callbacks, set by the engine's sampling collectors.
	onArrive func(e *event.Event, passed bool)
}

// NewLeaf creates a leaf for class (of nclasses total) with an optional
// pushed-down single-class filter.
func NewLeaf(class, nclasses int, filter expr.Predicate) *Leaf {
	return &Leaf{class: class, nclasses: nclasses, filter: filter, out: buffer.New(),
		env: expr.EventEnv{Class: class}}
}

// NewShadowLeaf creates a non-buffering leaf for a class owned by a shared
// subplan (see the shadow field). Its buffer stays empty forever.
func NewShadowLeaf(class, nclasses int, filter expr.Predicate) *Leaf {
	l := NewLeaf(class, nclasses, filter)
	l.shadow = true
	return l
}

// Shadow reports whether the leaf delegates buffering to a shared subplan.
func (l *Leaf) Shadow() bool { return l.shadow }

// Class returns the event class index the leaf stores.
func (l *Leaf) Class() int { return l.class }

// SetObserver installs a callback invoked for every arriving event with
// whether it passed the pushed-down filter (rate/selectivity sampling).
func (l *Leaf) SetObserver(f func(e *event.Event, passed bool)) { l.onArrive = f }

// Insert applies the pushed-down filter and buffers the event. It reports
// whether the event was accepted.
func (l *Leaf) Insert(e *event.Event) bool {
	passed := true
	if l.filter != nil {
		l.env.E = e
		passed = l.filter(&l.env)
		l.env.E = nil
	}
	l.seen++
	if passed {
		l.passed++
	}
	if l.onArrive != nil {
		l.onArrive(e, passed)
	}
	if !passed {
		return false
	}
	if l.shadow {
		return true
	}
	l.out.Append(l.out.Pool().Leaf(e, l.class, l.nclasses))
	return true
}

// InsertAdmitted buffers the event without re-evaluating the pushed-down
// filter: the caller (a multi-query router) has already proved admission
// with the exact same predicate set. The observer still records a pass so
// adaptive statistics stay consistent with Insert.
func (l *Leaf) InsertAdmitted(e *event.Event) {
	l.seen++
	l.passed++
	if l.onArrive != nil {
		l.onArrive(e, true)
	}
	if l.shadow {
		return
	}
	l.out.Append(l.out.Pool().Leaf(e, l.class, l.nclasses))
}

// Observe reports a filtered-out arrival to the observer without touching
// the buffer (the router's reject decision, kept visible to sampling).
func (l *Leaf) Observe(e *event.Event, passed bool) {
	l.seen++
	if passed {
		l.passed++
	}
	if l.onArrive != nil {
		l.onArrive(e, passed)
	}
}

// Counters returns arrivals seen and arrivals passing the filter.
func (l *Leaf) Counters() Counters { return Counters{In: l.seen, Out: l.passed} }

// Out returns the leaf buffer.
func (l *Leaf) Out() *buffer.Buf { return l.out }

// Assemble is a no-op: leaves are filled by Insert.
func (l *Leaf) Assemble(eat, now int64) {}

// Reset is a no-op: leaf contents are owned by the engine and survive plan
// switches. Use Out().Clear() to discard them explicitly.
func (l *Leaf) Reset() {}

// Children returns nil.
func (l *Leaf) Children() []Node { return nil }

// Label names the leaf.
func (l *Leaf) Label() string { return fmt.Sprintf("leaf(%d)", l.class) }
