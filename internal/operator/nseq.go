package operator

import (
	"fmt"
	"math"

	"repro/internal/buffer"
	"repro/internal/expr"
)

// NSeq evaluates negation push-down (Algorithm 2 and its mirrored variant,
// §4.4.2). The negation side is a set of leaf buffers (a single negated
// class, or the classes of a normalized !(B|C)); the other side is a plan
// node.
//
// Left-negation form (!B ; C), Algorithm 2: for each new right record c,
// NSeq finds the latest negation event b with b.ts < c.Start that satisfies
// the value constraints — the event that "negates" c — and emits (b, c);
// when no such b exists it emits (NULL, c). The parent Seq then restricts
// its left side to records ending at or after b.ts (the Figure 4 extra time
// constraints), implemented as the NegGuard* guards below.
//
// Right-negation form (A ; !B): for each left record a, the negating event
// is the first b after a that satisfies the constraints. Because "no b
// within the window" is only knowable once the window expires, records are
// confirmed (emitted) when their window has passed, or as soon as a
// negating b arrives. Emission stays in end-time order because records are
// confirmed strictly in buffer order.
type NSeq struct {
	descHolder
	other   Node
	negBufs []*buffer.Buf
	negCls  []int
	negLeft bool // true: (!B ; other); false: (other ; !B)
	out     *buffer.Buf
	window  int64
	pred    expr.Predicate // constraints between negation class(es) and other side
	drop    bool

	env expr.PairEnv // reused predicate environment (no per-probe boxing)

	// negCursors are per-negation-buffer monotone lower-bound cursors,
	// reset each assemble round: the probe timestamps (rr.Start for the
	// left form — anchor records are primitive, so Start == End is
	// end-sorted; lr.End for the right form) are non-decreasing across a
	// round, so the cursors advance instead of binary-searching per record.
	// lastProbe guards the assumption: a backward probe (a hypothetical
	// composite anchor) falls back to binary search, never a wrong bound.
	negCursors []int
	lastProbe  int64

	scanned uint64
	emitted uint64
}

// NewNSeqLeft builds the (!neg ; right) form of Algorithm 2.
func NewNSeqLeft(negBufs []*buffer.Buf, negClasses []int, right Node, window int64, pred expr.Predicate, dropRight bool) *NSeq {
	return &NSeq{other: right, negBufs: negBufs, negCls: negClasses, negLeft: true,
		out: buffer.New(), window: window, pred: pred, drop: dropRight}
}

// NewNSeqRight builds the mirrored (left ; !neg) form. The left child's
// buffer is protected: records stalled awaiting window expiry are complete
// pending matches that EAT eviction must not reclaim.
func NewNSeqRight(left Node, negBufs []*buffer.Buf, negClasses []int, window int64, pred expr.Predicate, dropLeft bool) *NSeq {
	left.Out().Protect()
	return &NSeq{other: left, negBufs: negBufs, negCls: negClasses, negLeft: false,
		out: buffer.New(), window: window, pred: pred, drop: dropLeft}
}

// Out returns the output buffer.
func (n *NSeq) Out() *buffer.Buf { return n.out }

// Children returns the non-negation child (negation buffers are leaves
// owned by the engine and assembled implicitly).
func (n *NSeq) Children() []Node { return []Node{n.other} }

// Label names the node.
func (n *NSeq) Label() string {
	if n.negLeft {
		return fmt.Sprintf("nseq(!%v;_)", n.negCls)
	}
	return fmt.Sprintf("nseq(_;!%v)", n.negCls)
}

// Stats returns negation events scanned and records emitted.
func (n *NSeq) Stats() (scanned, emitted uint64) { return n.scanned, n.emitted }

// Counters returns negation events scanned and records emitted.
func (n *NSeq) Counters() Counters { return Counters{In: n.scanned, Out: n.emitted} }

// Reset clears the output buffer.
func (n *NSeq) Reset() { n.out.Clear() }

// predOK evaluates the negation predicate through the reused environment.
func (n *NSeq) predOK(l, r *buffer.Record) bool {
	n.env.L, n.env.R = l, r
	ok := n.pred(&n.env)
	n.env.L, n.env.R = nil, nil
	return ok
}

// Assemble runs one round.
func (n *NSeq) Assemble(eat, now int64) {
	n.other.Assemble(eat, now)
	if n.negCursors == nil {
		n.negCursors = make([]int, len(n.negBufs))
	} else {
		clear(n.negCursors)
	}
	n.lastProbe = math.MinInt64
	if n.negLeft {
		n.assembleLeft(eat)
	} else {
		n.assembleRight(eat, now)
	}
}

// negLowerBound advances the k-th negation cursor to the first record with
// End >= t. t is non-decreasing within a round (see negCursors), so the
// advance is amortized O(1) per probe; a backward probe would make the
// shared cursors invalid, so it binary-searches instead of trusting them.
func (n *NSeq) negLowerBound(k int, t int64) int {
	nb := n.negBufs[k]
	if t < n.lastProbe {
		return nb.LowerBoundEnd(t)
	}
	n.lastProbe = t
	c := n.negCursors[k]
	for c < nb.Len() && nb.At(c).End < t {
		c++
	}
	n.negCursors[k] = c
	return c
}

// assembleLeft is Algorithm 2: right records are consumed; each is paired
// with its negating event (the latest eligible one) or NULL. The child
// record is always copied into the output (never aliased): with pooling,
// a record must live in exactly one buffer.
func (n *NSeq) assembleLeft(eat int64) {
	rbuf := n.other.Out()
	pool := n.out.Pool()
	for i := rbuf.Cursor(); i < rbuf.Len(); i++ {
		rr := rbuf.At(i)
		if rr.Start < eat {
			continue
		}
		b := n.latestNegBefore(rr)
		var out *buffer.Record
		if b != nil {
			out = pool.Combine(rr, b)
			// The negating event is not part of the match output: keep
			// the record's interval (and sequence metadata) that of the
			// non-negated side so window checks, watermarks and shared-
			// reader visibility exclude it.
			out.Start, out.End, out.MaxSeq, out.MinSeq = rr.Start, rr.End, rr.MaxSeq, rr.MinSeq
		} else {
			out = pool.Clone(rr)
		}
		n.out.Append(out)
		n.emitted++
	}
	consume(rbuf, n.drop)
}

// latestNegBefore returns the latest negation record b with b.End <
// rr.Start satisfying the value constraints, searching every negation
// class buffer backward (steps 3-9 of Algorithm 2).
func (n *NSeq) latestNegBefore(rr *buffer.Record) *buffer.Record {
	var best *buffer.Record
	for k, nb := range n.negBufs {
		hi := n.negLowerBound(k, rr.Start) // records [0,hi) end before rr.Start
		for j := hi - 1; j >= 0; j-- {
			b := nb.At(j)
			n.scanned++
			if n.pred != nil && !n.predOK(b, rr) {
				continue
			}
			if best == nil || b.End > best.End {
				best = b
			}
			break // latest eligible in this buffer found
		}
	}
	return best
}

// assembleRight is the mirrored form: left records are confirmed in order,
// each when its negating event (the first eligible one after it) arrives or
// when its window expires with no such event. Only a prefix of the
// unconsumed region may be confirmable, so consumption is partial.
func (n *NSeq) assembleRight(eat, now int64) {
	lbuf := n.other.Out()
	pool := n.out.Pool()
	processed := 0
	for i := lbuf.Cursor(); i < lbuf.Len(); i++ {
		lr := lbuf.At(i)
		b := n.firstNegAfter(lr)
		if b == nil && lr.Start+n.window >= now {
			// Window still open and no negating event yet: neither this
			// record nor any later one (they end later) can be confirmed.
			break
		}
		var out *buffer.Record
		if b != nil {
			out = pool.Combine(lr, b)
			out.Start, out.End, out.MaxSeq, out.MinSeq = lr.Start, lr.End, lr.MaxSeq, lr.MinSeq
		} else {
			out = pool.Clone(lr)
		}
		n.out.Append(out)
		n.emitted++
		processed++
	}
	lbuf.Advance(processed)
	if n.drop {
		lbuf.DropConsumedPrefix()
	}
}

// firstNegAfter returns the earliest negation record b with b.Start >
// lr.End, b within the window of lr, satisfying the constraints.
func (n *NSeq) firstNegAfter(lr *buffer.Record) *buffer.Record {
	var best *buffer.Record
	for k, nb := range n.negBufs {
		lo := n.negLowerBound(k, lr.End+1)
		for j := lo; j < nb.Len(); j++ {
			b := nb.At(j)
			n.scanned++
			if b.Start <= lr.End {
				continue
			}
			if b.End-lr.Start > n.window {
				break // outside the window; later records only worse
			}
			if n.pred != nil && !n.predOK(lr, b) {
				continue
			}
			if best == nil || b.End < best.End {
				best = b
			}
			break // first eligible in this buffer found
		}
	}
	return best
}

var _ Node = (*NSeq)(nil)
