package operator

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/expr"
)

// NegSpec describes one negation term for the negation-on-top filter: the
// negation class buffers, the compiled predicates between negation events
// and the rest of the match, and the classes temporally before and after
// the negation term (which delimit the forbidden time range).
type NegSpec struct {
	NegBufs []*buffer.Buf
	Pred    expr.Predicate // nil when unconstrained
	Prev    []int          // class indexes before the negation term
	Next    []int          // class indexes after the negation term
}

// Trailing reports whether the negation closes the pattern.
func (s *NegSpec) Trailing() bool { return len(s.Next) == 0 }

// NegFilter implements negation as a final filtration step on top of the
// plan (NEG(SEQ(A,C), !B), §4.4.2): each composite produced by the child is
// discarded when a negation event interleaves it. This is the baseline the
// paper compares NSEQ push-down against (Figures 15/16).
type NegFilter struct {
	descHolder
	child  Node
	out    *buffer.Buf
	specs  []NegSpec
	window int64

	env expr.PairEnv // reused predicate environment (no per-probe boxing)

	scanned uint64
	emitted uint64
}

// NewNegFilter builds a negation filter over child. The child's buffer is
// protected: records stalled awaiting trailing-negation confirmation are
// complete pending matches that EAT eviction must not reclaim.
func NewNegFilter(child Node, specs []NegSpec, window int64) *NegFilter {
	child.Out().Protect()
	return &NegFilter{child: child, out: buffer.New(), specs: specs, window: window}
}

// Out returns the output buffer.
func (n *NegFilter) Out() *buffer.Buf { return n.out }

// Children returns the child.
func (n *NegFilter) Children() []Node { return []Node{n.child} }

// Label names the node.
func (n *NegFilter) Label() string { return fmt.Sprintf("neg-top(%d)", len(n.specs)) }

// Stats returns negation events scanned and records emitted.
func (n *NegFilter) Stats() (scanned, emitted uint64) { return n.scanned, n.emitted }

// Counters returns negation events scanned and records emitted.
func (n *NegFilter) Counters() Counters { return Counters{In: n.scanned, Out: n.emitted} }

// Reset clears the output buffer.
func (n *NegFilter) Reset() { n.out.Clear() }

// Assemble filters the child's new records. Records whose trailing
// negation window is still open are left unconsumed for a later round.
func (n *NegFilter) Assemble(eat, now int64) {
	n.child.Assemble(eat, now)

	trailing := false
	for i := range n.specs {
		if n.specs[i].Trailing() {
			trailing = true
		}
	}
	cbuf := n.child.Out()
	processed := 0
	for i := cbuf.Cursor(); i < cbuf.Len(); i++ {
		rec := cbuf.At(i)
		if trailing && rec.Start+n.window >= now {
			break // cannot confirm yet; later records end later
		}
		if !n.Negated(rec) {
			// Clone: the child drops its consumed prefix below, and with
			// pooling a record must not live in two buffers.
			n.out.Append(n.out.Pool().Clone(rec))
			n.emitted++
		}
		processed++
	}
	cbuf.Advance(processed)
	cbuf.DropConsumedPrefix() // child is always internal
}

// Negated reports whether any negation event interleaves rec.
func (n *NegFilter) Negated(rec *buffer.Record) bool {
	for i := range n.specs {
		if n.negatedBy(rec, &n.specs[i]) {
			return true
		}
	}
	return false
}

// negatedBy checks one negation term: a negation event b negates rec when
// lo < b.ts < hi, where lo is the end of the preceding part (or the window
// lower bound for a leading negation) and hi the start of the following
// part (or the window upper bound for a trailing negation), and b satisfies
// the term's value constraints against rec.
func (n *NegFilter) negatedBy(rec *buffer.Record, spec *NegSpec) bool {
	lo := rec.End - n.window - 1 // leading: b.ts >= rec.End - window
	for _, c := range spec.Prev {
		if last := rec.Slots[c].Last(); last != nil && last.Ts > lo {
			lo = last.Ts
		}
	}
	hi := rec.Start + n.window + 1 // trailing: b.ts <= rec.Start + window
	if !spec.Trailing() {
		for _, c := range spec.Next {
			if first := rec.Slots[c].First(); first != nil && first.Ts < hi {
				hi = first.Ts
			}
		}
	}
	if hi <= lo+1 {
		return false
	}
	for _, nb := range spec.NegBufs {
		from := nb.LowerBoundEnd(lo + 1)
		for j := from; j < nb.Len(); j++ {
			b := nb.At(j)
			if b.Start >= hi {
				break
			}
			if b.Start <= lo {
				continue
			}
			n.scanned++
			if spec.Pred == nil {
				return true
			}
			n.env.L, n.env.R = b, rec
			hit := spec.Pred(&n.env)
			n.env.L, n.env.R = nil, nil
			if hit {
				return true
			}
		}
	}
	return false
}

var _ Node = (*NegFilter)(nil)
