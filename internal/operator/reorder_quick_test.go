package operator

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

// Property: whatever the (bounded) input disorder, the reorderer's output
// is sorted by (ts, seq) and, when disorder stays within the bound, no
// event is dropped.
func TestReordererProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bound := int64(1 + rng.Intn(20))
		r := NewReorderer(bound)

		// generate an in-order stream, then displace each event by less
		// than the bound
		n := 50 + rng.Intn(100)
		type item struct {
			ts  int64
			seq uint64
		}
		items := make([]item, n)
		ts := int64(0)
		for i := range items {
			ts += int64(rng.Intn(3))
			items[i] = item{ts: ts, seq: uint64(i + 1)}
		}
		perturbed := append([]item{}, items...)
		for i := 1; i < len(perturbed); i++ {
			j := i - 1
			if perturbed[j].ts > perturbed[i].ts-bound && rng.Intn(2) == 0 {
				perturbed[j], perturbed[i] = perturbed[i], perturbed[j]
			}
		}

		var out []*event.Event
		for _, it := range perturbed {
			e := event.NewStock(it.seq, it.ts, 0, "X", 1, 1)
			out = append(out, r.Push(e)...)
		}
		out = append(out, r.Flush()...)

		if len(out)+int(r.Dropped()) != n {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i-1].Ts > out[i].Ts {
				return false
			}
			if out[i-1].Ts == out[i].Ts && out[i-1].Seq > out[i].Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: sequence outputs always satisfy left.End < right.Start, window
// containment and end-time order, for arbitrary in-order inputs.
func TestSeqOutputInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		window := int64(5 + rng.Intn(30))
		a := NewLeaf(0, 2, nil)
		b := NewLeaf(1, 2, nil)
		s := NewSeq(a, b, window, nil, nil, true)

		ts := int64(0)
		var lastEnd int64 = -1 << 60
		for round := 0; round < 20; round++ {
			for i := 0; i < 1+rng.Intn(8); i++ {
				ts += int64(rng.Intn(3))
				e := mkStock(ts, "X", 1)
				if rng.Intn(2) == 0 {
					a.Insert(e)
				} else {
					b.Insert(e)
				}
			}
			s.Assemble(ts-2*window, ts)
			out := s.Out()
			for i := out.Cursor(); i < out.Len(); i++ {
				r := out.At(i)
				la, rb := r.Slots[0].E, r.Slots[1].E
				if la == nil || rb == nil {
					return false
				}
				if la.Ts >= rb.Ts {
					return false // strict sequence order
				}
				if r.End-r.Start > window {
					return false // window containment
				}
				if r.End < lastEnd {
					return false // end-time order
				}
				lastEnd = r.End
			}
			out.Consume()
			out.DropConsumedPrefix()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
