package operator

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/query"
)

// KSeq evaluates Kleene closure (Algorithm 4, §4.4.5) as a trinary
// operator: a start child fixes the beginning of the closure, an end child
// fixes its end, and middle-buffer events strictly between them are
// grouped. With an unspecified count ('*' or '+') the maximal group is
// formed, producing one result per (start, end) pair; with count k a
// sliding window of k consecutive eligible events produces one result per
// window position (Figure 6).
//
// The start and end children may be nil when the closure opens or closes
// the pattern (§4.4.5). A trailing closure (nil end) is confirmed when its
// window expires, like a trailing negation.
type KSeq struct {
	descHolder
	start Node // may be nil
	end   Node // may be nil
	mid   *buffer.Buf
	cls   int // middle (closure) class index

	out      *buffer.Buf
	window   int64
	kind     query.ClosureKind
	count    int
	nclasses int

	// perEvent filters individual middle events against the bound start /
	// end records (multi-class, non-aggregate predicates on the closure
	// class); group is evaluated on the assembled composite (aggregate
	// predicates and predicates among the start/end classes).
	perEvent expr.Predicate
	group    expr.Predicate

	dropEnd bool

	// reused scratch: the eligible-event slice of emitGroups and the
	// predicate environments (no per-candidate boxing or slice growth).
	eligible []*event.Event
	tenv     triEnv
	renv     expr.RecordEnv

	scanned uint64
	emitted uint64
}

// NewKSeq builds a Kleene-closure node. start and end may be nil;
// perEvent and group may be nil.
func NewKSeq(start Node, mid *buffer.Buf, midClass int, end Node, nclasses int,
	window int64, kind query.ClosureKind, count int,
	perEvent, group expr.Predicate, dropEnd bool) *KSeq {
	if end == nil && start != nil {
		// trailing closure: start records stall until their window
		// expires; EAT eviction must not reclaim them.
		start.Out().Protect()
	}
	return &KSeq{start: start, end: end, mid: mid, cls: midClass,
		out: buffer.New(), window: window, kind: kind, count: count,
		nclasses: nclasses, perEvent: perEvent, group: group, dropEnd: dropEnd}
}

// Out returns the output buffer.
func (k *KSeq) Out() *buffer.Buf { return k.out }

// Children returns the non-nil start and end children.
func (k *KSeq) Children() []Node {
	var out []Node
	if k.start != nil {
		out = append(out, k.start)
	}
	if k.end != nil {
		out = append(out, k.end)
	}
	return out
}

// Label names the node.
func (k *KSeq) Label() string {
	if k.kind == query.ClosureCount {
		return fmt.Sprintf("kseq(^%d)", k.count)
	}
	return "kseq(" + k.kind.String() + ")"
}

// Stats returns middle events scanned and records emitted.
func (k *KSeq) Stats() (scanned, emitted uint64) { return k.scanned, k.emitted }

// Counters returns middle events scanned and records emitted.
func (k *KSeq) Counters() Counters { return Counters{In: k.scanned, Out: k.emitted} }

// Reset clears the output buffer.
func (k *KSeq) Reset() { k.out.Clear() }

// triEnv binds the start record, the end record and one candidate middle
// event for per-event predicate evaluation.
type triEnv struct {
	s, e *buffer.Record // either may be nil
	m    *event.Event
	cls  int
}

// Event implements expr.Env.
func (t triEnv) Event(class int) *event.Event {
	if class == t.cls {
		return t.m
	}
	if t.s != nil {
		if ev := t.s.Slots[class].E; ev != nil {
			return ev
		}
	}
	if t.e != nil {
		if ev := t.e.Slots[class].E; ev != nil {
			return ev
		}
	}
	return nil
}

// Group implements expr.Env.
func (t triEnv) Group(class int) []*event.Event {
	if ev := t.Event(class); ev != nil {
		return []*event.Event{ev}
	}
	return nil
}

// Assemble runs Algorithm 4 for one round.
func (k *KSeq) Assemble(eat, now int64) {
	if k.start != nil {
		k.start.Assemble(eat, now)
	}
	if k.end != nil {
		k.end.Assemble(eat, now)
	}
	switch {
	case k.end != nil:
		k.assembleWithEnd(eat)
	default:
		k.assembleTrailing(eat, now)
	}
}

// assembleWithEnd handles closures with an end class: the end buffer is the
// outer loop (consumed); each new end record is matched against start
// records (or the virtual pattern start when the closure is leading).
func (k *KSeq) assembleWithEnd(eat int64) {
	ebuf := k.end.Out()
	for i := ebuf.Cursor(); i < ebuf.Len(); i++ {
		er := ebuf.At(i)
		if er.Start < eat {
			continue
		}
		if k.start == nil {
			k.emitGroups(nil, er)
			continue
		}
		sbuf := k.start.Out()
		n := sbuf.LowerBoundEnd(er.Start)
		// start records ending before er.End - window cannot fit
		for j := sbuf.LowerBoundEnd(er.End - k.window); j < n; j++ {
			sr := sbuf.At(j)
			if sr.Start < eat || sr.End >= er.Start {
				continue
			}
			k.emitGroups(sr, er)
		}
	}
	consume(ebuf, k.dropEnd)
}

// assembleTrailing handles a closure that ends the pattern: start records
// are confirmed once their window has expired, grouping the middle events
// observed inside it.
func (k *KSeq) assembleTrailing(eat, now int64) {
	sbuf := k.start.Out()
	processed := 0
	for i := sbuf.Cursor(); i < sbuf.Len(); i++ {
		sr := sbuf.At(i)
		if sr.Start+k.window >= now {
			break // window still open; later records are too
		}
		k.emitGroups(sr, nil)
		processed++
	}
	sbuf.Advance(processed)
	if k.dropEnd {
		sbuf.DropConsumedPrefix()
	}
}

// emitGroups collects the eligible middle events for a (start, end) pair
// and emits the grouped composite(s). Either record may be nil (leading /
// trailing closure).
func (k *KSeq) emitGroups(sr, er *buffer.Record) {
	// eligible middle events lie strictly between the start's end and the
	// end's start, within the window, and satisfy the per-event predicates.
	var lo, hi int64 // eligible m: lo < m.Ts < hi
	switch {
	case sr != nil && er != nil:
		lo, hi = sr.End, er.Start
	case sr == nil: // leading closure
		lo, hi = er.End-k.window-1, er.Start
	default: // trailing closure
		lo, hi = sr.End, sr.Start+k.window+1
	}
	eligible := k.eligible[:0]
	from := k.mid.LowerBoundEnd(lo + 1)
	for j := from; j < k.mid.Len(); j++ {
		mr := k.mid.At(j)
		if mr.Start >= hi {
			break
		}
		if mr.Start <= lo {
			continue
		}
		k.scanned++
		if k.perEvent != nil {
			k.tenv = triEnv{s: sr, e: er, m: mr.Slots[k.cls].E, cls: k.cls}
			ok := k.perEvent(&k.tenv)
			k.tenv = triEnv{}
			if !ok {
				continue
			}
		}
		eligible = append(eligible, mr.Slots[k.cls].E)
	}

	switch k.kind {
	case query.ClosureCount:
		for i := 0; i+k.count <= len(eligible); i++ {
			k.emitOne(sr, er, eligible[i:i+k.count])
		}
	case query.ClosurePlus:
		if len(eligible) >= 1 {
			k.emitOne(sr, er, eligible)
		}
	default: // star: zero or more
		k.emitOne(sr, er, eligible)
	}
	// Keep the grown backing array as scratch, but drop the event
	// pointers: a stale tail would pin a burst's events past their
	// buffer lifetime (emitOne copied what it kept).
	clear(eligible)
	k.eligible = eligible[:0]
}

// emitOne assembles one composite from the pair and the group, applies the
// window and group predicates, and appends it to the output.
func (k *KSeq) emitOne(sr, er *buffer.Record, group []*event.Event) {
	pool := k.out.Pool()
	rec := pool.Get(k.nclasses)
	var start, end int64
	var maxSeq, minSeq uint64
	first := true
	apply := func(r *buffer.Record) {
		for c, s := range r.Slots {
			if s.IsSet() {
				rec.Slots[c] = s
			}
		}
		if first || r.Start < start {
			start = r.Start
		}
		if first || r.End > end {
			end = r.End
		}
		if r.MaxSeq > maxSeq {
			maxSeq = r.MaxSeq
		}
		if first || r.MinSeq < minSeq {
			minSeq = r.MinSeq
		}
		first = false
	}
	if sr != nil {
		apply(sr)
	}
	if er != nil {
		apply(er)
	}
	if len(group) > 0 {
		g := make([]*event.Event, len(group))
		copy(g, group)
		rec.Slots[k.cls] = buffer.Slot{Group: g}
		if first || g[0].Ts < start {
			start = g[0].Ts
		}
		if first || g[len(g)-1].Ts > end {
			end = g[len(g)-1].Ts
		}
		for _, ev := range g {
			if ev.Seq > maxSeq {
				maxSeq = ev.Seq
			}
			if first || ev.Seq < minSeq {
				minSeq = ev.Seq
				first = false
			}
		}
		first = false
	}
	if first {
		pool.Recycle(rec)
		return // star closure with no start, no end and empty group
	}
	rec.Start, rec.End, rec.MaxSeq, rec.MinSeq = start, end, maxSeq, minSeq
	if rec.End-rec.Start > k.window {
		pool.Recycle(rec)
		return
	}
	if k.group != nil {
		k.renv.R = rec
		ok := k.group(&k.renv)
		k.renv.R = nil
		if !ok {
			pool.Recycle(rec)
			return
		}
	}
	if k.end == nil {
		// trailing closures confirm out of end order (see AppendUnordered)
		k.out.AppendUnordered(rec)
	} else {
		k.out.Append(rec)
	}
	k.emitted++
}

var _ Node = (*KSeq)(nil)
