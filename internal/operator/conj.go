package operator

import (
	"repro/internal/buffer"
	"repro/internal/expr"
)

// Conj evaluates the conjunction operator (Algorithm 3, §4.4.3) as a
// sort-merge join: both child buffers keep a cursor at the oldest
// not-yet-matched record; each step advances the cursor pointing at the
// earlier record Pr and combines Pr with every earlier record of the other
// buffer. Processing the globally earliest record at each step produces
// output in end-time order.
//
// Unlike Seq, neither child buffer is dropped after consumption: records
// before the cursors still combine with future events from the other side.
// Stale records are reclaimed by EAT eviction only.
type Conj struct {
	descHolder
	left, right Node
	out         *buffer.Buf
	checks      combineChecks

	pairsTried uint64
	emitted    uint64
}

// NewConj builds a conjunction node. pred may be nil.
func NewConj(left, right Node, window int64, pred expr.Predicate) *Conj {
	return &Conj{left: left, right: right, out: buffer.New(),
		checks: combineChecks{window: window, pred: pred}}
}

// Out returns the output buffer.
func (c *Conj) Out() *buffer.Buf { return c.out }

// Children returns the two children.
func (c *Conj) Children() []Node { return []Node{c.left, c.right} }

// Label names the node.
func (c *Conj) Label() string { return "conj" }

// Stats returns candidate pairs tried and records emitted.
func (c *Conj) Stats() (pairs, emitted uint64) { return c.pairsTried, c.emitted }

// Counters returns pairs tried and records emitted.
func (c *Conj) Counters() Counters { return Counters{In: c.pairsTried, Out: c.emitted} }

// Reset clears the output buffer.
func (c *Conj) Reset() { c.out.Clear() }

// Assemble runs Algorithm 3 for one round.
func (c *Conj) Assemble(eat, now int64) {
	c.left.Assemble(eat, now)
	c.right.Assemble(eat, now)

	lbuf, rbuf := c.left.Out(), c.right.Out()
	li, ri := lbuf.Cursor(), rbuf.Cursor()
	for li < lbuf.Len() || ri < rbuf.Len() {
		var pr *buffer.Record
		var other *buffer.Buf
		var otherEnd int
		// pick the cursor pointing at the earlier record (ties: left)
		if ri >= rbuf.Len() || (li < lbuf.Len() && lbuf.At(li).End <= rbuf.At(ri).End) {
			pr = lbuf.At(li)
			other, otherEnd = rbuf, ri
			li++
		} else {
			pr = rbuf.At(ri)
			other, otherEnd = lbuf, li
			ri++
		}
		if pr.Start < eat {
			continue
		}
		// records ending before Pr.End - window cannot fit the window
		j0 := other.LowerBoundEnd(pr.End - c.checks.window)
		for j := j0; j < otherEnd; j++ {
			br := other.At(j)
			if br.Start < eat {
				continue
			}
			c.pairsTried++
			if !c.checks.ok(br, pr) {
				continue
			}
			c.out.Append(c.out.Pool().Combine(br, pr))
			c.emitted++
		}
	}
	lbuf.Advance(li - lbuf.Cursor())
	rbuf.Advance(ri - rbuf.Cursor())
}

var _ Node = (*Conj)(nil)
