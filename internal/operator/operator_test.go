package operator

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/query"
)

// mkStock builds a stock event with seq == ts for brevity.
func mkStock(ts int64, name string, price float64) *event.Event {
	return event.NewStock(uint64(ts), ts, ts, name, price, 1)
}

// feed inserts events into a leaf.
func feed(l *Leaf, evs ...*event.Event) {
	for _, e := range evs {
		l.Insert(e)
	}
}

// drain returns all unconsumed output records and consumes them.
func drain(n Node) []*buffer.Record {
	b := n.Out()
	var out []*buffer.Record
	for i := b.Cursor(); i < b.Len(); i++ {
		out = append(out, b.At(i))
	}
	b.Consume()
	return out
}

// classPred compiles a predicate string over a parsed pattern for tests.
func predOf(t *testing.T, src string) expr.Predicate {
	t.Helper()
	q, err := query.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := expr.CompilePred(q.Info.Preds[0].Cmp)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLeafFilterPushdown(t *testing.T) {
	p := predOf(t, "PATTERN A;B WHERE A.name = 'Google' WITHIN 10")
	l := NewLeaf(0, 2, p)
	if l.Insert(mkStock(1, "IBM", 5)) {
		t.Error("IBM passed Google filter")
	}
	if !l.Insert(mkStock(2, "Google", 5)) {
		t.Error("Google rejected")
	}
	if l.Out().Len() != 1 {
		t.Errorf("buffer len = %d", l.Out().Len())
	}
	if l.Class() != 0 || l.Label() != "leaf(0)" || l.Children() != nil {
		t.Error("leaf accessors wrong")
	}
}

func TestLeafObserver(t *testing.T) {
	p := predOf(t, "PATTERN A;B WHERE A.price > 10 WITHIN 10")
	l := NewLeaf(0, 2, p)
	var total, passed int
	l.SetObserver(func(e *event.Event, ok bool) {
		total++
		if ok {
			passed++
		}
	})
	feed(l, mkStock(1, "X", 5), mkStock(2, "X", 15), mkStock(3, "X", 20))
	if total != 3 || passed != 2 {
		t.Errorf("observer: total=%d passed=%d", total, passed)
	}
}

func TestSeqBasic(t *testing.T) {
	a := NewLeaf(0, 2, nil)
	b := NewLeaf(1, 2, nil)
	s := NewSeq(a, b, 100, nil, nil, true)

	feed(a, mkStock(1, "A", 1), mkStock(5, "A", 2))
	feed(b, mkStock(3, "B", 1), mkStock(7, "B", 2))
	s.Assemble(-1000, 7)

	recs := drain(s)
	// pairs: (1,3), (1,7), (5,7) — (5,3) fails temporal order
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %v", len(recs), recs)
	}
	wantPairs := [][2]int64{{1, 3}, {1, 7}, {5, 7}}
	for i, r := range recs {
		if r.Start != wantPairs[i][0] || r.End != wantPairs[i][1] {
			t.Errorf("rec %d = [%d,%d], want %v", i, r.Start, r.End, wantPairs[i])
		}
	}
	pairs, emitted := s.Stats()
	if pairs != 3 || emitted != 3 {
		t.Errorf("stats = %d/%d", pairs, emitted)
	}
}

func TestSeqStrictOrder(t *testing.T) {
	// simultaneous events do not form a sequence: A.end < B.start strictly
	a := NewLeaf(0, 2, nil)
	b := NewLeaf(1, 2, nil)
	s := NewSeq(a, b, 100, nil, nil, true)
	feed(a, mkStock(5, "A", 1))
	feed(b, mkStock(5, "B", 1))
	s.Assemble(-1000, 5)
	if got := len(drain(s)); got != 0 {
		t.Errorf("simultaneous pair combined: %d", got)
	}
}

func TestSeqWindow(t *testing.T) {
	a := NewLeaf(0, 2, nil)
	b := NewLeaf(1, 2, nil)
	s := NewSeq(a, b, 10, nil, nil, true)
	feed(a, mkStock(0, "A", 1))
	feed(b, mkStock(10, "B", 1), mkStock(11, "B", 1))
	s.Assemble(-1000, 11)
	recs := drain(s)
	if len(recs) != 1 || recs[0].End != 10 {
		t.Errorf("window filter wrong: %v", recs)
	}
}

func TestSeqPredicate(t *testing.T) {
	p := predOf(t, "PATTERN A;B WHERE A.price > B.price WITHIN 100")
	a := NewLeaf(0, 2, nil)
	b := NewLeaf(1, 2, nil)
	s := NewSeq(a, b, 100, nil, p, true)
	feed(a, mkStock(1, "A", 10), mkStock(2, "A", 30))
	feed(b, mkStock(5, "B", 20))
	s.Assemble(-1000, 5)
	recs := drain(s)
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Slots[0].E.Get("price").F != 30 {
		t.Error("wrong A selected")
	}
}

func TestSeqIncrementalRounds(t *testing.T) {
	// consumed right records must not recombine in later rounds; left
	// records must persist (materialization).
	a := NewLeaf(0, 2, nil)
	b := NewLeaf(1, 2, nil)
	s := NewSeq(a, b, 1000, nil, nil, true)

	feed(a, mkStock(1, "A", 1))
	feed(b, mkStock(2, "B", 1))
	s.Assemble(-1000, 2)
	if got := len(drain(s)); got != 1 {
		t.Fatalf("round 1: %d records", got)
	}
	// round 2: new A (too late for old B) and new B
	feed(a, mkStock(3, "A", 1))
	feed(b, mkStock(4, "B", 1))
	s.Assemble(-1000, 4)
	recs := drain(s)
	// new pairs: (1,4), (3,4) — NOT (1,2) again
	if len(recs) != 2 {
		t.Fatalf("round 2: %d records: %v", len(recs), recs)
	}
	for _, r := range recs {
		if r.End != 4 {
			t.Errorf("stale right record recombined: %v", r)
		}
	}
}

func TestSeqDropRightStatic(t *testing.T) {
	a := NewLeaf(0, 2, nil)
	b := NewLeaf(1, 2, nil)
	s := NewSeq(a, b, 1000, nil, nil, true)
	feed(a, mkStock(1, "A", 1))
	feed(b, mkStock(2, "B", 1))
	s.Assemble(-1000, 2)
	if b.Out().Len() != 0 {
		t.Error("static mode did not drop right buffer")
	}
	// adaptive mode keeps it
	a2 := NewLeaf(0, 2, nil)
	b2 := NewLeaf(1, 2, nil)
	s2 := NewSeq(a2, b2, 1000, nil, nil, false)
	feed(a2, mkStock(1, "A", 1))
	feed(b2, mkStock(2, "B", 1))
	s2.Assemble(-1000, 2)
	if b2.Out().Len() != 1 || b2.Out().Unconsumed() != 0 {
		t.Error("adaptive mode should retain consumed right records")
	}
}

func TestSeqHashEquality(t *testing.T) {
	a := NewLeaf(0, 2, nil)
	b := NewLeaf(1, 2, nil)
	s := NewSeq(a, b, 100, nil, nil, true)
	keyName := func(cls int) func(*buffer.Record) event.Value {
		return func(r *buffer.Record) event.Value { return r.Slots[cls].E.Get("name") }
	}
	s.UseHash(HashSpec{LeftKey: keyName(0), RightKey: keyName(1)})

	feed(a, mkStock(1, "IBM", 1), mkStock(2, "Sun", 1), mkStock(3, "IBM", 1))
	feed(b, mkStock(5, "IBM", 1), mkStock(6, "Oracle", 1))
	s.Assemble(-1000, 6)
	recs := drain(s)
	// IBM@1-IBM@5, IBM@3-IBM@5; Oracle right matches nothing
	if len(recs) != 2 {
		t.Fatalf("hash join: %d records: %v", len(recs), recs)
	}
	for _, r := range recs {
		if r.Slots[0].E.Get("name").S != "IBM" || r.Slots[1].E.Get("name").S != "IBM" {
			t.Errorf("wrong names: %v", r)
		}
	}
	if s.Label() != "seq[hash]" {
		t.Errorf("label = %q", s.Label())
	}
}

func TestSeqHashRespectsTemporalOrder(t *testing.T) {
	a := NewLeaf(0, 2, nil)
	b := NewLeaf(1, 2, nil)
	s := NewSeq(a, b, 100, nil, nil, true)
	key := func(cls int) func(*buffer.Record) event.Value {
		return func(r *buffer.Record) event.Value { return r.Slots[cls].E.Get("name") }
	}
	s.UseHash(HashSpec{LeftKey: key(0), RightKey: key(1)})
	feed(a, mkStock(9, "IBM", 1)) // after the B event
	feed(b, mkStock(5, "IBM", 1))
	s.Assemble(-1000, 9)
	if got := len(drain(s)); got != 0 {
		t.Errorf("hash probe ignored temporal order: %d", got)
	}
}

func TestConjBothOrders(t *testing.T) {
	a := NewLeaf(0, 2, nil)
	b := NewLeaf(1, 2, nil)
	c := NewConj(a, b, 100, nil)
	feed(a, mkStock(5, "A", 1))
	feed(b, mkStock(3, "B", 1), mkStock(8, "B", 1))
	c.Assemble(-1000, 8)
	recs := drain(c)
	// pairs (3,5) and (5,8): conjunction matches in both orders
	if len(recs) != 2 {
		t.Fatalf("conj: %d records: %v", len(recs), recs)
	}
	if recs[0].Start != 3 || recs[0].End != 5 || recs[1].Start != 5 || recs[1].End != 8 {
		t.Errorf("conj intervals: %v", recs)
	}
}

func TestConjWindowAndPred(t *testing.T) {
	p := predOf(t, "PATTERN A & B WHERE A.price = B.price WITHIN 10")
	a := NewLeaf(0, 2, nil)
	b := NewLeaf(1, 2, nil)
	c := NewConj(a, b, 10, p)
	feed(a, mkStock(0, "A", 1), mkStock(20, "A", 2))
	feed(b, mkStock(5, "B", 1), mkStock(25, "B", 1))
	c.Assemble(-1000, 25)
	recs := drain(c)
	// (0,5) passes: same price, within window. (20,25): price 2 vs 1 fails.
	// (0,25),(5,20): window fails / price fails.
	if len(recs) != 1 || recs[0].Start != 0 || recs[0].End != 5 {
		t.Fatalf("conj filtered: %v", recs)
	}
}

func TestConjIncremental(t *testing.T) {
	a := NewLeaf(0, 2, nil)
	b := NewLeaf(1, 2, nil)
	c := NewConj(a, b, 100, nil)
	feed(a, mkStock(1, "A", 1))
	c.Assemble(-1000, 1)
	if got := len(drain(c)); got != 0 {
		t.Fatalf("nothing should match yet: %d", got)
	}
	feed(b, mkStock(2, "B", 1))
	c.Assemble(-1000, 2)
	if got := len(drain(c)); got != 1 {
		t.Fatalf("pair missing after second round: %d", got)
	}
	// repeat rounds must not duplicate
	c.Assemble(-1000, 2)
	if got := len(drain(c)); got != 0 {
		t.Errorf("duplicate pairs: %d", got)
	}
}

func TestConjSimultaneousEvents(t *testing.T) {
	a := NewLeaf(0, 2, nil)
	b := NewLeaf(1, 2, nil)
	c := NewConj(a, b, 100, nil)
	feed(a, mkStock(5, "A", 1))
	feed(b, mkStock(5, "B", 1))
	c.Assemble(-1000, 5)
	recs := drain(c)
	// conjunction does not order its operands: simultaneous events match
	if len(recs) != 1 {
		t.Fatalf("simultaneous conj pair: %d records", len(recs))
	}
}

func TestDisjMerge(t *testing.T) {
	a := NewLeaf(0, 2, nil)
	b := NewLeaf(1, 2, nil)
	d := NewDisj([]Node{a, b}, true)
	feed(a, mkStock(1, "A", 1), mkStock(5, "A", 1))
	feed(b, mkStock(3, "B", 1))
	d.Assemble(-1000, 5)
	recs := drain(d)
	if len(recs) != 3 {
		t.Fatalf("disj: %d records", len(recs))
	}
	wantTs := []int64{1, 3, 5}
	for i, r := range recs {
		if r.End != wantTs[i] {
			t.Errorf("disj order: rec %d end=%d want %d", i, r.End, wantTs[i])
		}
	}
	if d.Stats() != 3 {
		t.Errorf("emitted = %d", d.Stats())
	}
}

func TestDisjIncremental(t *testing.T) {
	a := NewLeaf(0, 2, nil)
	b := NewLeaf(1, 2, nil)
	d := NewDisj([]Node{a, b}, true)
	feed(a, mkStock(1, "A", 1))
	d.Assemble(-1000, 1)
	if got := len(drain(d)); got != 1 {
		t.Fatalf("round 1: %d", got)
	}
	feed(b, mkStock(2, "B", 1))
	d.Assemble(-1000, 2)
	if got := len(drain(d)); got != 1 {
		t.Fatalf("round 2: %d", got)
	}
}

// TestNSeqFigure5 reproduces the exact scenario of Figure 5: pattern
// "A; !B; C", events a1, b2, b3, a4, c5 (subscript = timestamp). b3
// negates c5, so only a4 survives the A.end >= B.ts guard.
func TestNSeqFigure5(t *testing.T) {
	// classes: A=0, B=1 (negated), C=2
	aLeaf := NewLeaf(0, 3, nil)
	bLeaf := NewLeaf(1, 3, nil)
	cLeaf := NewLeaf(2, 3, nil)

	ns := NewNSeqLeft([]*buffer.Buf{bLeaf.Out()}, []int{1}, cLeaf, 100, nil, true)
	guard := func(l, r *buffer.Record) bool {
		// a.End >= b.ts (Figure 4's extra time constraint)
		if b := r.Slots[1].E; b != nil && l.End < b.Ts {
			return false
		}
		return true
	}
	root := NewSeq(aLeaf, ns, 100, []PairGuard{guard}, nil, true)

	feed(aLeaf, mkStock(1, "A", 1), mkStock(4, "A", 1))
	feed(bLeaf, mkStock(2, "B", 1), mkStock(3, "B", 1))
	feed(cLeaf, mkStock(5, "C", 1))
	root.Assemble(-1000, 5)

	recs := drain(root)
	if len(recs) != 1 {
		t.Fatalf("got %d results, want 1 (a4,c5): %v", len(recs), recs)
	}
	r := recs[0]
	if r.Slots[0].E.Ts != 4 || r.Slots[2].E.Ts != 5 {
		t.Errorf("wrong combination: %v", r)
	}
	// the NSEQ buffer recorded (b3, c5) as in Figure 5
	if r.Slots[1].E == nil || r.Slots[1].E.Ts != 3 {
		t.Errorf("negating event not b3: %v", r.Slots[1].E)
	}
	// record interval excludes the negation event
	if r.Start != 4 || r.End != 5 {
		t.Errorf("interval [%d,%d], want [4,5]", r.Start, r.End)
	}
}

func TestNSeqNoNegationEvent(t *testing.T) {
	aLeaf := NewLeaf(0, 3, nil)
	bLeaf := NewLeaf(1, 3, nil)
	cLeaf := NewLeaf(2, 3, nil)
	ns := NewNSeqLeft([]*buffer.Buf{bLeaf.Out()}, []int{1}, cLeaf, 100, nil, true)
	guard := func(l, r *buffer.Record) bool {
		if b := r.Slots[1].E; b != nil && l.End < b.Ts {
			return false
		}
		return true
	}
	root := NewSeq(aLeaf, ns, 100, []PairGuard{guard}, nil, true)

	feed(aLeaf, mkStock(1, "A", 1))
	feed(cLeaf, mkStock(5, "C", 1))
	root.Assemble(-1000, 5)
	recs := drain(root)
	// no B at all: (NULL, c5) pairs with a1
	if len(recs) != 1 {
		t.Fatalf("got %d results: %v", len(recs), recs)
	}
	if recs[0].Slots[1].IsSet() {
		t.Error("negation slot should be NULL")
	}
}

func TestNSeqWithPredicate(t *testing.T) {
	// negation only counts when B.price < C.price
	p := predOf(t, "PATTERN A;!B;C WHERE B.price < C.price WITHIN 100")
	aLeaf := NewLeaf(0, 3, nil)
	bLeaf := NewLeaf(1, 3, nil)
	cLeaf := NewLeaf(2, 3, nil)
	ns := NewNSeqLeft([]*buffer.Buf{bLeaf.Out()}, []int{1}, cLeaf, 100, p, true)
	guard := func(l, r *buffer.Record) bool {
		if b := r.Slots[1].E; b != nil && l.End < b.Ts {
			return false
		}
		return true
	}
	root := NewSeq(aLeaf, ns, 100, []PairGuard{guard}, nil, true)

	feed(aLeaf, mkStock(1, "A", 1))
	feed(bLeaf, mkStock(2, "B", 50), mkStock(3, "B", 5))
	feed(cLeaf, mkStock(5, "C", 10))
	root.Assemble(-1000, 5)
	recs := drain(root)
	// b@2 (price 50) does not negate (50 >= 10); b@3 (price 5 < 10) does.
	// a1.End=1 < 3 so a1 is negated: no results.
	if len(recs) != 0 {
		t.Fatalf("got %d results, want 0: %v", len(recs), recs)
	}

	// now an A after b@3
	feed(aLeaf, mkStock(4, "A", 1))
	feed(cLeaf, mkStock(6, "C", 10))
	root.Assemble(-1000, 6)
	recs = drain(root)
	if len(recs) != 1 || recs[0].Slots[0].E.Ts != 4 {
		t.Fatalf("a4 expected: %v", recs)
	}
}

func TestNSeqTrailing(t *testing.T) {
	// pattern A;!B within 10: A confirmed once window expires without B
	aLeaf := NewLeaf(0, 2, nil)
	bLeaf := NewLeaf(1, 2, nil)
	ns := NewNSeqRight(aLeaf, []*buffer.Buf{bLeaf.Out()}, []int{1}, 10, nil, false)

	feed(aLeaf, mkStock(1, "A", 1))
	ns.Assemble(-1000, 5)
	if got := len(drain(ns)); got != 0 {
		t.Fatalf("confirmed before expiry: %d", got)
	}
	ns.Assemble(-1000, 12) // now > 1+10
	recs := drain(ns)
	if len(recs) != 1 || recs[0].Slots[1].IsSet() {
		t.Fatalf("clean A not confirmed: %v", recs)
	}

	// an A followed by a B within the window is emitted with the negating
	// event bound (the consumer drops it at emission).
	feed(aLeaf, mkStock(20, "A", 1))
	feed(bLeaf, mkStock(25, "B", 1))
	ns.Assemble(-1000, 25)
	recs = drain(ns)
	if len(recs) != 1 || !recs[0].Slots[1].IsSet() || recs[0].Slots[1].E.Ts != 25 {
		t.Fatalf("negated A wrong: %v", recs)
	}
}

// TestKSeqFigure6 reproduces Figure 6: pattern A;B^2;C and A;B*;C with
// events a1, b2, b3, a4, b5, c6.
func TestKSeqFigure6(t *testing.T) {
	newPlan := func(kind query.ClosureKind, count int) (*Leaf, *Leaf, *Leaf, *KSeq) {
		aLeaf := NewLeaf(0, 3, nil)
		bLeaf := NewLeaf(1, 3, nil)
		cLeaf := NewLeaf(2, 3, nil)
		k := NewKSeq(aLeaf, bLeaf.Out(), 1, cLeaf, 3, 100, kind, count, nil, nil, true)
		feed(aLeaf, mkStock(1, "A", 1), mkStock(4, "A", 1))
		feed(bLeaf, mkStock(2, "B", 1), mkStock(3, "B", 1), mkStock(5, "B", 1))
		feed(cLeaf, mkStock(6, "C", 1))
		return aLeaf, bLeaf, cLeaf, k
	}

	// unspecified count (star): maximal groups
	_, _, _, k := newPlan(query.ClosureStar, 0)
	k.Assemble(-1000, 6)
	recs := drain(k)
	// a1: group b2,b3,b5; a4: group b5 — matching Figure 6 upper-left
	if len(recs) != 2 {
		t.Fatalf("star: %d records: %v", len(recs), recs)
	}
	if recs[0].Slots[1].Count() != 3 || recs[0].Slots[0].E.Ts != 1 {
		t.Errorf("star rec 0: %v", recs[0])
	}
	if recs[1].Slots[1].Count() != 1 || recs[1].Slots[0].E.Ts != 4 {
		t.Errorf("star rec 1: %v", recs[1])
	}

	// count = 2: sliding windows b2-b3 and b3-b5 for a1; none for a4
	_, _, _, k2 := newPlan(query.ClosureCount, 2)
	k2.Assemble(-1000, 6)
	recs = drain(k2)
	if len(recs) != 2 {
		t.Fatalf("count=2: %d records: %v", len(recs), recs)
	}
	g0 := recs[0].Slots[1].Group
	g1 := recs[1].Slots[1].Group
	if g0[0].Ts != 2 || g0[1].Ts != 3 {
		t.Errorf("first group: %v %v", g0[0].Ts, g0[1].Ts)
	}
	if g1[0].Ts != 3 || g1[1].Ts != 5 {
		t.Errorf("second group: %v %v", g1[0].Ts, g1[1].Ts)
	}
}

func TestKSeqPlusRequiresOne(t *testing.T) {
	aLeaf := NewLeaf(0, 3, nil)
	bLeaf := NewLeaf(1, 3, nil)
	cLeaf := NewLeaf(2, 3, nil)
	k := NewKSeq(aLeaf, bLeaf.Out(), 1, cLeaf, 3, 100, query.ClosurePlus, 0, nil, nil, true)
	feed(aLeaf, mkStock(1, "A", 1))
	feed(cLeaf, mkStock(2, "C", 1))
	k.Assemble(-1000, 2)
	if got := len(drain(k)); got != 0 {
		t.Errorf("plus with empty group emitted: %d", got)
	}
	// star would emit
	k2 := NewKSeq(aLeaf, bLeaf.Out(), 1, cLeaf, 3, 100, query.ClosureStar, 0, nil, nil, true)
	feed(cLeaf, mkStock(3, "C", 1))
	k2.Assemble(-1000, 3)
	if got := len(drain(k2)); got != 1 {
		t.Errorf("star with empty group not emitted: %d", got)
	}
}

func TestKSeqGroupPredicate(t *testing.T) {
	// sum(B.volume) > 250 filters groups
	q := query.MustParse("PATTERN A;B+;C WHERE sum(B.volume) > 250 WITHIN 100")
	gp, err := expr.CompilePred(q.Info.Preds[0].Cmp)
	if err != nil {
		t.Fatal(err)
	}
	aLeaf := NewLeaf(0, 3, nil)
	bLeaf := NewLeaf(1, 3, nil)
	cLeaf := NewLeaf(2, 3, nil)
	k := NewKSeq(aLeaf, bLeaf.Out(), 1, cLeaf, 3, 100, query.ClosurePlus, 0, nil, gp, true)
	feed(aLeaf, mkStock(1, "A", 1))
	vol := func(ts int64, v float64) *event.Event {
		return event.NewStock(uint64(ts), ts, ts, "B", 1, v)
	}
	bLeaf.Insert(vol(2, 100))
	bLeaf.Insert(vol(3, 100))
	feed(cLeaf, mkStock(4, "C", 1))
	k.Assemble(-1000, 4)
	if got := len(drain(k)); got != 0 {
		t.Errorf("sum=200 passed >250 filter: %d", got)
	}
	bLeaf.Insert(vol(5, 100))
	feed(cLeaf, mkStock(6, "C", 1))
	k.Assemble(-1000, 6)
	recs := drain(k)
	if len(recs) != 1 || recs[0].Slots[1].Count() != 3 {
		t.Fatalf("sum=300 group missing: %v", recs)
	}
}

func TestKSeqPerEventPredicate(t *testing.T) {
	// only B events with price > A.price join the group
	q := query.MustParse("PATTERN A;B*;C WHERE B.price > A.price WITHIN 100")
	pe, err := expr.CompilePred(q.Info.Preds[0].Cmp)
	if err != nil {
		t.Fatal(err)
	}
	aLeaf := NewLeaf(0, 3, nil)
	bLeaf := NewLeaf(1, 3, nil)
	cLeaf := NewLeaf(2, 3, nil)
	k := NewKSeq(aLeaf, bLeaf.Out(), 1, cLeaf, 3, 100, query.ClosureStar, 0, pe, nil, true)
	feed(aLeaf, mkStock(1, "A", 10))
	feed(bLeaf, mkStock(2, "B", 5), mkStock(3, "B", 15), mkStock(4, "B", 20))
	feed(cLeaf, mkStock(5, "C", 1))
	k.Assemble(-1000, 5)
	recs := drain(k)
	if len(recs) != 1 || recs[0].Slots[1].Count() != 2 {
		t.Fatalf("per-event filter: %v", recs)
	}
}

func TestKSeqLeadingClosure(t *testing.T) {
	// pattern B*;C — closure opens the pattern
	bLeaf := NewLeaf(0, 2, nil)
	cLeaf := NewLeaf(1, 2, nil)
	k := NewKSeq(nil, bLeaf.Out(), 0, cLeaf, 2, 10, query.ClosureStar, 0, nil, nil, true)
	feed(bLeaf, mkStock(1, "B", 1), mkStock(3, "B", 1))
	feed(cLeaf, mkStock(5, "C", 1))
	k.Assemble(-1000, 5)
	recs := drain(k)
	if len(recs) != 1 || recs[0].Slots[0].Count() != 2 {
		t.Fatalf("leading closure: %v", recs)
	}
	if recs[0].Start != 1 || recs[0].End != 5 {
		t.Errorf("interval [%d,%d]", recs[0].Start, recs[0].End)
	}
}

func TestKSeqTrailingClosure(t *testing.T) {
	// pattern A;B+ — closure ends the pattern, confirmed at window expiry
	aLeaf := NewLeaf(0, 2, nil)
	bLeaf := NewLeaf(1, 2, nil)
	k := NewKSeq(aLeaf, bLeaf.Out(), 1, nil, 2, 10, query.ClosurePlus, 0, nil, nil, false)
	feed(aLeaf, mkStock(1, "A", 1))
	feed(bLeaf, mkStock(3, "B", 1), mkStock(5, "B", 1))
	k.Assemble(-1000, 5)
	if got := len(drain(k)); got != 0 {
		t.Fatalf("trailing closure confirmed early: %d", got)
	}
	k.Assemble(-1000, 12) // window of a1 expired
	recs := drain(k)
	if len(recs) != 1 || recs[0].Slots[1].Count() != 2 {
		t.Fatalf("trailing closure: %v", recs)
	}
	// B beyond the window of a1 must not be grouped
	if recs[0].End != 5 {
		t.Errorf("end = %d", recs[0].End)
	}
}

func TestNegFilterMiddle(t *testing.T) {
	// NEG on top for A;!B;C: SEQ(A,C) then filter
	aLeaf := NewLeaf(0, 3, nil)
	bLeaf := NewLeaf(1, 3, nil)
	cLeaf := NewLeaf(2, 3, nil)
	seq := NewSeq(aLeaf, cLeaf, 100, nil, nil, true)
	neg := NewNegFilter(seq, []NegSpec{{
		NegBufs: []*buffer.Buf{bLeaf.Out()},
		Prev:    []int{0},
		Next:    []int{2},
	}}, 100)

	feed(aLeaf, mkStock(1, "A", 1), mkStock(4, "A", 1))
	feed(bLeaf, mkStock(2, "B", 1), mkStock(3, "B", 1))
	feed(cLeaf, mkStock(5, "C", 1))
	neg.Assemble(-1000, 5)
	recs := drain(neg)
	// same as Figure 5: only (a4, c5)
	if len(recs) != 1 || recs[0].Slots[0].E.Ts != 4 {
		t.Fatalf("neg filter: %v", recs)
	}
	scanned, emitted := neg.Stats()
	if emitted != 1 || scanned == 0 {
		t.Errorf("stats: %d/%d", scanned, emitted)
	}
}

func TestNegFilterPredicate(t *testing.T) {
	p := predOf(t, "PATTERN A;!B;C WHERE B.price > C.price WITHIN 100")
	aLeaf := NewLeaf(0, 3, nil)
	bLeaf := NewLeaf(1, 3, nil)
	cLeaf := NewLeaf(2, 3, nil)
	seq := NewSeq(aLeaf, cLeaf, 100, nil, nil, true)
	neg := NewNegFilter(seq, []NegSpec{{
		NegBufs: []*buffer.Buf{bLeaf.Out()},
		Pred:    p,
		Prev:    []int{0},
		Next:    []int{2},
	}}, 100)

	feed(aLeaf, mkStock(1, "A", 1))
	feed(bLeaf, mkStock(2, "B", 5)) // price 5 <= C's 10: does not negate
	feed(cLeaf, mkStock(3, "C", 10))
	neg.Assemble(-1000, 3)
	if got := len(drain(neg)); got != 1 {
		t.Fatalf("non-negating B dropped the match: %d", got)
	}
	feed(bLeaf, mkStock(4, "B", 50)) // price 50 > 10: negates
	feed(cLeaf, mkStock(5, "C", 10))
	neg.Assemble(-1000, 5)
	recs := drain(neg)
	// (a1,c5) is negated by b4
	if len(recs) != 0 {
		t.Fatalf("negating B ignored: %v", recs)
	}
}

func TestNegFilterTrailing(t *testing.T) {
	// pattern A;!B: filter confirms at window expiry
	aLeaf := NewLeaf(0, 2, nil)
	bLeaf := NewLeaf(1, 2, nil)
	// child is a pass-through of A records: use a disj with one child
	child := NewDisj([]Node{aLeaf}, false)
	neg := NewNegFilter(child, []NegSpec{{
		NegBufs: []*buffer.Buf{bLeaf.Out()},
		Prev:    []int{0},
	}}, 10)

	feed(aLeaf, mkStock(1, "A", 1))
	neg.Assemble(-1000, 5)
	if got := len(drain(neg)); got != 0 {
		t.Fatal("confirmed before expiry")
	}
	feed(bLeaf, mkStock(8, "B", 1))
	neg.Assemble(-1000, 20)
	if got := len(drain(neg)); got != 0 {
		t.Fatal("negated record emitted")
	}
	feed(aLeaf, mkStock(30, "A", 1))
	neg.Assemble(-1000, 50)
	recs := drain(neg)
	if len(recs) != 1 || recs[0].Slots[0].E.Ts != 30 {
		t.Fatalf("clean record missing: %v", recs)
	}
}

func TestNegFilterLeading(t *testing.T) {
	// pattern !B;A: drop A when a B occurred within the window before it
	aLeaf := NewLeaf(1, 2, nil)
	bLeaf := NewLeaf(0, 2, nil)
	child := NewDisj([]Node{aLeaf}, false)
	neg := NewNegFilter(child, []NegSpec{{
		NegBufs: []*buffer.Buf{bLeaf.Out()},
		Next:    []int{1},
	}}, 10)

	feed(bLeaf, mkStock(1, "B", 1))
	feed(aLeaf, mkStock(5, "A", 1)) // B@1 within window [A-10, A): negated
	neg.Assemble(-1000, 5)
	if got := len(drain(neg)); got != 0 {
		t.Fatal("leading negation missed")
	}
	feed(aLeaf, mkStock(20, "A", 1)) // B@1 outside window: clean
	neg.Assemble(-1000, 20)
	if got := len(drain(neg)); got != 1 {
		t.Fatal("clean record dropped")
	}
}

func TestReorderer(t *testing.T) {
	r := NewReorderer(5)
	var released []*event.Event
	push := func(ts int64) {
		released = append(released, r.Push(mkStock(ts, "X", 1))...)
	}
	push(10)
	push(8) // within bound
	push(16)
	// cutoff = 16-5 = 11: releases 8, 10
	if len(released) != 2 || released[0].Ts != 8 || released[1].Ts != 10 {
		t.Fatalf("released: %v", released)
	}
	// event older than last released is dropped
	if out := r.Push(mkStock(7, "X", 1)); out != nil {
		t.Errorf("stale event released: %v", out)
	}
	if r.Dropped() != 1 {
		t.Errorf("dropped = %d", r.Dropped())
	}
	rest := r.Flush()
	if len(rest) != 1 || rest[0].Ts != 16 {
		t.Fatalf("flush: %v", rest)
	}
	if out := r.Flush(); out != nil {
		t.Errorf("second flush: %v", out)
	}
}

func TestOutputEndTimeOrderInvariant(t *testing.T) {
	// interleaved feeding across many rounds keeps all outputs end-ordered
	a := NewLeaf(0, 3, nil)
	b := NewLeaf(1, 3, nil)
	c := NewLeaf(2, 3, nil)
	s1 := NewSeq(a, b, 50, nil, nil, true)
	s2 := NewSeq(s1, c, 50, nil, nil, true)

	ts := int64(0)
	var lastEnd int64 = -1
	for round := 0; round < 30; round++ {
		for i := 0; i < 5; i++ {
			ts++
			switch ts % 3 {
			case 0:
				feed(a, mkStock(ts, "A", 1))
			case 1:
				feed(b, mkStock(ts, "B", 1))
			default:
				feed(c, mkStock(ts, "C", 1))
			}
		}
		s2.Assemble(ts-60, ts)
		for _, r := range drain(s2) {
			if r.End < lastEnd {
				t.Fatalf("end order violated: %d after %d", r.End, lastEnd)
			}
			lastEnd = r.End
		}
	}
}

func TestNodeLabels(t *testing.T) {
	a := NewLeaf(0, 2, nil)
	b := NewLeaf(1, 2, nil)
	if l := NewSeq(a, b, 1, nil, nil, true).Label(); l != "seq" {
		t.Errorf("seq label = %q", l)
	}
	if l := NewConj(a, b, 1, nil).Label(); l != "conj" {
		t.Errorf("conj label = %q", l)
	}
	if l := NewDisj([]Node{a, b}, true).Label(); l != "disj" {
		t.Errorf("disj label = %q", l)
	}
	if l := NewNSeqLeft(nil, []int{1}, b, 1, nil, true).Label(); l == "" {
		t.Error("empty nseq label")
	}
	if l := NewNSeqRight(a, nil, []int{1}, 1, nil, true).Label(); l == "" {
		t.Error("empty nseq label")
	}
	if l := NewKSeq(a, buffer.New(), 1, b, 2, 1, query.ClosureCount, 3, nil, nil, true).Label(); l != "kseq(^3)" {
		t.Errorf("kseq label = %q", l)
	}
	if l := NewNegFilter(a, nil, 1).Label(); l == "" {
		t.Error("empty neg label")
	}
}

func TestResetClearsOutput(t *testing.T) {
	a := NewLeaf(0, 2, nil)
	b := NewLeaf(1, 2, nil)
	s := NewSeq(a, b, 100, nil, nil, false)
	feed(a, mkStock(1, "A", 1))
	feed(b, mkStock(2, "B", 1))
	s.Assemble(-1000, 2)
	if s.Out().Len() != 1 {
		t.Fatal("no output")
	}
	s.Reset()
	if s.Out().Len() != 0 {
		t.Error("reset did not clear")
	}
	// leaves unaffected
	if a.Out().Len() != 1 {
		t.Error("reset touched leaf")
	}
}
