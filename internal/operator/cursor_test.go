package operator

import (
	"math/rand"
	"testing"

	"repro/internal/buffer"
)

// These tests pin the monotone lower-bound cursors that replaced the
// per-record LowerBoundEnd binary searches in Seq.Assemble and the NSeq
// scans: the pairs-tried / scanned counters must equal exactly what the
// binary-search formulation produced, on randomized multi-round inputs.

// seqExpectedPairs replays the binary-search semantics for one assemble
// round: every unconsumed right record is paired with the left records
// whose End lies in [rr.End-window, rr.Start).
func seqExpectedPairs(lbuf, rbuf *buffer.Buf, window int64, eat int64) uint64 {
	var pairs uint64
	for i := rbuf.Cursor(); i < rbuf.Len(); i++ {
		rr := rbuf.At(i)
		if rr.Start < eat {
			continue
		}
		n := lbuf.LowerBoundEnd(rr.Start)
		j := lbuf.LowerBoundEnd(rr.End - window)
		if n > j {
			pairs += uint64(n - j)
		}
	}
	return pairs
}

func TestSeqCursorMatchesBinarySearchPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const window = 25
	a := NewLeaf(0, 2, nil)
	b := NewLeaf(1, 2, nil)
	s := NewSeq(a, b, window, nil, nil, true)

	var ts int64
	var wantPairs, wantEmitted uint64
	for round := 0; round < 40; round++ {
		// random interleaved burst for this round
		for k := 0; k < 10+rng.Intn(20); k++ {
			ts += int64(rng.Intn(3))
			ev := mkStock(ts, "X", float64(rng.Intn(100)))
			if rng.Intn(2) == 0 {
				a.Insert(ev)
			} else {
				b.Insert(ev)
			}
		}
		eat := ts - 2*window
		a.Out().EvictBefore(eat)
		b.Out().EvictBefore(eat)
		// expected pairs for this round under the binary-search formula
		// (computed before Assemble consumes the right batch); without a
		// value predicate every tried pair inside the window is emitted
		p := seqExpectedPairs(a.Out(), b.Out(), window, eat)
		wantPairs += p
		for i := b.Out().Cursor(); i < b.Out().Len(); i++ {
			rr := b.Out().At(i)
			if rr.Start < eat {
				continue
			}
			for j := 0; j < a.Out().Len(); j++ {
				lr := a.Out().At(j)
				if lr.End < rr.Start && lr.End >= rr.End-window && rr.End-lr.Start <= window {
					wantEmitted++
				}
			}
		}
		s.Assemble(eat, ts)
		s.Out().Consume()
		s.Out().DropConsumedPrefix()
	}
	pairs, emitted := s.Stats()
	if pairs != wantPairs {
		t.Errorf("pairs tried with cursor = %d, binary-search formula = %d", pairs, wantPairs)
	}
	if emitted != wantEmitted {
		t.Errorf("emitted = %d, brute force = %d", emitted, wantEmitted)
	}
	if wantPairs == 0 || wantEmitted == 0 {
		t.Fatal("workload tried no pairs; test is vacuous")
	}
}

// nseqExpectedScans replays the binary-search semantics of latestNegBefore
// for one round: per right record, one backward probe from LowerBoundEnd
// (counting every record examined until the first pred-eligible one).
func nseqExpectedScans(negBuf, rbuf *buffer.Buf, eat int64, eligible func(b, r *buffer.Record) bool) uint64 {
	var scanned uint64
	for i := rbuf.Cursor(); i < rbuf.Len(); i++ {
		rr := rbuf.At(i)
		if rr.Start < eat {
			continue
		}
		hi := negBuf.LowerBoundEnd(rr.Start)
		for j := hi - 1; j >= 0; j-- {
			scanned++
			if eligible(negBuf.At(j), rr) {
				break
			}
		}
	}
	return scanned
}

func TestNSeqCursorMatchesBinarySearchScans(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pred := predOf(t, "PATTERN B;C WHERE B.price > 50 WITHIN 100")
	mkNodes := func() (*Leaf, *Leaf, *NSeq) {
		neg := NewLeaf(0, 2, nil)
		anchor := NewLeaf(1, 2, nil)
		ns := NewNSeqLeft([]*buffer.Buf{neg.Out()}, []int{0}, anchor, 100, pred, true)
		return neg, anchor, ns
	}
	neg, anchor, ns := mkNodes()
	eligible := func(b, r *buffer.Record) bool {
		return b.Slots[0].E.Get("price").F > 50
	}

	var ts int64
	var wantScans, wantEmitted uint64
	for round := 0; round < 40; round++ {
		for k := 0; k < 8+rng.Intn(12); k++ {
			ts += int64(rng.Intn(3))
			ev := mkStock(ts, "X", float64(rng.Intn(100)))
			if rng.Intn(3) == 0 {
				neg.Insert(ev)
			} else {
				anchor.Insert(ev)
			}
		}
		eat := ts - 200
		neg.Out().EvictBefore(eat)
		anchor.Out().EvictBefore(eat)
		wantScans += nseqExpectedScans(neg.Out(), anchor.Out(), eat, eligible)
		for i := anchor.Out().Cursor(); i < anchor.Out().Len(); i++ {
			if anchor.Out().At(i).Start >= eat {
				wantEmitted++
			}
		}
		ns.Assemble(eat, ts)
		ns.Out().Consume()
		ns.Out().DropConsumedPrefix()
	}
	scanned, emitted := ns.Stats()
	if scanned != wantScans {
		t.Errorf("neg records scanned with cursor = %d, binary-search formula = %d", scanned, wantScans)
	}
	if emitted != wantEmitted {
		t.Errorf("emitted = %d, want %d (every anchor record emits)", emitted, wantEmitted)
	}
	if wantScans == 0 {
		t.Fatal("workload scanned nothing; test is vacuous")
	}
}
