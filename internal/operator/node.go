package operator

import (
	"repro/internal/buffer"
	"repro/internal/expr"
)

// Node is one node of a physical tree plan.
type Node interface {
	// Out returns the node's output buffer.
	Out() *buffer.Buf
	// Assemble runs one assembly round: children first, then this node.
	// eat is the earliest allowed timestamp (§4.3); records starting
	// before it cannot contribute to any future match. now is the largest
	// event timestamp observed so far, used to confirm trailing negation
	// and trailing closure matches at window expiry.
	Assemble(eat, now int64)
	// Reset discards the node's intermediate state (output buffer and
	// internal cursors) so a new plan can rebuild it. It does not touch
	// leaf buffers.
	Reset()
	// Children returns the child nodes, left to right.
	Children() []Node
	// Label returns a short operator name for EXPLAIN output.
	Label() string
	// Describe returns the description plan construction attached to the
	// node (classes bound, predicates placed here, operator detail).
	Describe() Desc
	// Counters returns a snapshot of the node's live work counters. The
	// counters are plain shard-local integers maintained by the single
	// goroutine that drives Assemble; snapshots must be taken from that
	// same goroutine (the runtime routes snapshot requests through the
	// worker's op queue for exactly this reason).
	Counters() Counters
}

// Desc is the static description plan construction attaches to a node for
// EXPLAIN output.
type Desc struct {
	// Classes are the event-class indexes the node's output binds.
	Classes []int
	// Preds are the source texts of the value predicates evaluated at
	// this node (pushed-down filters for leaves, join predicates for
	// combining operators).
	Preds []string
	// Detail is operator-specific extra information, e.g. the equality
	// condition a hash join probes with.
	Detail string
}

// Counters is a snapshot of one node's work counters. In counts the
// candidates the node examined (pairs tried for joins, events scanned for
// negation and closure, arrivals for leaves); Out counts the records the
// node appended to its output buffer (passed arrivals for leaves).
type Counters struct {
	In  uint64
	Out uint64
}

// descHolder is the embeddable Desc carrier every concrete operator embeds.
type descHolder struct{ d Desc }

// SetDesc attaches the plan-construction description.
func (h *descHolder) SetDesc(d Desc) { h.d = d }

// Describe returns the attached description.
func (h *descHolder) Describe() Desc { return h.d }

// SetDesc attaches d to n. All concrete operators support descriptions;
// the helper exists because Node itself is deliberately read-only.
func SetDesc(n Node, d Desc) {
	if s, ok := n.(interface{ SetDesc(Desc) }); ok {
		s.SetDesc(d)
	}
}

// PairGuard is a record-level predicate evaluated on a candidate (left,
// right) combination before value predicates. Guards implement the extra
// time constraints negation push-down introduces (Figure 4/5), which need
// record interval endpoints rather than event attributes.
type PairGuard func(l, r *buffer.Record) bool

// combineChecks bundles the checks every combining operator applies.
type combineChecks struct {
	window int64
	guards []PairGuard
	pred   expr.Predicate // nil means no value constraints

	// env is the reused predicate environment; passing &env avoids boxing
	// a fresh PairEnv per candidate pair (the assembly hot path).
	env expr.PairEnv
}

// ok reports whether l and r may be combined: the combined span must fit
// the window and all guards and value predicates must pass.
func (c *combineChecks) ok(l, r *buffer.Record) bool {
	start := l.Start
	if r.Start < start {
		start = r.Start
	}
	end := l.End
	if r.End > end {
		end = r.End
	}
	if end-start > c.window {
		return false
	}
	for _, g := range c.guards {
		if !g(l, r) {
			return false
		}
	}
	if c.pred != nil {
		c.env.L, c.env.R = l, r
		ok := c.pred(&c.env)
		c.env.L, c.env.R = nil, nil
		if !ok {
			return false
		}
	}
	return true
}

// consume marks the processed prefix of a child buffer consumed, dropping
// it when the child's records can never be needed again (static mode, or
// an internal child whose state is rebuilt on plan switches anyway).
func consume(b *buffer.Buf, drop bool) {
	b.Consume()
	if drop {
		b.DropConsumedPrefix()
	}
}
