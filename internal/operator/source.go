package operator

import (
	"repro/internal/buffer"
)

// Source is a leaf-position node whose records come from outside the plan:
// a shared-subplan consumer's stand-in for the subtree a producer
// materializes once on behalf of many queries. Each assembly round the
// source pulls the producer's new partial matches through its fill hook,
// which imports them into the owning plan's pool (Pool.Import) and appends
// them to the source's buffer in end-time order. Above the source, the
// plan joins, filters and consumes exactly as if the subtree were local.
//
// A Source with no fill hook yields nothing — an engine built with a
// shared prefix is inert until its runtime wires the hook at the query's
// exact registration position in the stream.
type Source struct {
	descHolder
	out  *buffer.Buf
	fill func(out *buffer.Buf)

	pulled uint64
}

// NewSource creates an unwired source node.
func NewSource() *Source { return &Source{out: buffer.New()} }

// SetFill installs the pull hook; fill must append records in
// non-decreasing end-time order (the shared buffer's own order).
func (s *Source) SetFill(fill func(out *buffer.Buf)) { s.fill = fill }

// Out returns the output buffer.
func (s *Source) Out() *buffer.Buf { return s.out }

// Assemble pulls new shared records into the output buffer.
func (s *Source) Assemble(eat, now int64) {
	if s.fill != nil {
		before := s.out.Len()
		s.fill(s.out)
		s.pulled += uint64(s.out.Len() - before)
	}
}

// Counters returns the number of shared records pulled from the producer;
// the source copies every record it pulls, so In and Out coincide.
func (s *Source) Counters() Counters { return Counters{In: s.pulled, Out: s.pulled} }

// Reset clears the pulled records (plan switching; the producer side is
// unaffected, and the fill cursor does not rewind).
func (s *Source) Reset() { s.out.Clear() }

// Children returns nil: the producing subtree lives in another plan.
func (s *Source) Children() []Node { return nil }

// Label names the node.
func (s *Source) Label() string { return "shared-source" }

var _ Node = (*Source)(nil)
