package operator

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

// reorderModel is the pre-heap reference implementation (sort the whole
// pending set per push, rescan for the newest timestamp). The heap
// rewrite must preserve its observable behavior exactly: release order,
// release timing, and drop counts.
type reorderModel struct {
	maxDelay int64
	pending  []*event.Event
	released int64
	dropped  uint64
}

func newReorderModel(maxDelay int64) *reorderModel {
	return &reorderModel{maxDelay: maxDelay, released: -1 << 62}
}

func (r *reorderModel) push(e *event.Event) []*event.Event {
	if e.Ts <= r.released {
		r.dropped++
		return nil
	}
	r.pending = append(r.pending, e)
	newest := int64(-1 << 62)
	for _, p := range r.pending {
		if p.Ts > newest {
			newest = p.Ts
		}
	}
	return r.releaseUpTo(newest - r.maxDelay)
}

func (r *reorderModel) flush() []*event.Event {
	return r.releaseUpTo(1<<62 - 1)
}

func (r *reorderModel) releaseUpTo(cutoff int64) []*event.Event {
	if len(r.pending) == 0 {
		return nil
	}
	sort.SliceStable(r.pending, func(i, j int) bool {
		if r.pending[i].Ts != r.pending[j].Ts {
			return r.pending[i].Ts < r.pending[j].Ts
		}
		return r.pending[i].Seq < r.pending[j].Seq
	})
	n := sort.Search(len(r.pending), func(i int) bool { return r.pending[i].Ts > cutoff })
	if n == 0 {
		return nil
	}
	out := make([]*event.Event, n)
	copy(out, r.pending[:n])
	r.pending = append(r.pending[:0], r.pending[n:]...)
	r.released = out[n-1].Ts
	return out
}

// TestReordererRunningMax pins the running-max fix: after the newest event
// is released is impossible (maxDelay >= 1 keeps the max pending), but the
// cutoff must still track the largest timestamp ever pushed, not the
// current pending set.
func TestReordererRunningMax(t *testing.T) {
	r := NewReorderer(5)
	if out := r.Push(event.NewStock(1, 100, 0, "X", 1, 1)); len(out) != 0 {
		t.Fatalf("nothing releasable yet, got %d", len(out))
	}
	// ts=107 moves the cutoff to 102: the ts=100 event must release.
	out := r.Push(event.NewStock(2, 107, 0, "X", 1, 1))
	if len(out) != 1 || out[0].Ts != 100 {
		t.Fatalf("expected release of ts=100, got %v", out)
	}
	// A late-but-in-bound event (ts=103 > released=100, above cutoff 102)
	// is buffered; the cutoff still derives from the running max 107.
	if out := r.Push(event.NewStock(3, 103, 0, "X", 1, 1)); len(out) != 0 {
		t.Fatalf("ts=103 is above cutoff 102 and must buffer, got %v", tss(out))
	}
	if r.Pending() != 2 {
		t.Fatalf("pending = %d, want 2 (ts 103 and 107)", r.Pending())
	}
	// Beyond the bound: dropped, counted.
	if out := r.Push(event.NewStock(4, 99, 0, "X", 1, 1)); len(out) != 0 {
		t.Fatalf("late event must not release anything, got %v", out)
	}
	if r.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", r.Dropped())
	}
	rest := r.Flush()
	if len(rest) != 2 || rest[0].Ts != 103 || rest[1].Ts != 107 {
		t.Fatalf("flush should release ts=103,107, got %v", tss(rest))
	}
}

// TestReordererStableOnTies pins release-order stability for events whose
// (Ts, Seq) fully collide — the public-API case where Seq is 0 until the
// engine stamps it after release. They must come out in arrival order.
func TestReordererStableOnTies(t *testing.T) {
	r := NewReorderer(2)
	a := event.NewStock(0, 5, 1, "A", 1, 1)
	b := event.NewStock(0, 6, 2, "B", 1, 1)
	c := event.NewStock(0, 5, 3, "C", 1, 1)
	d := event.NewStock(0, 5, 4, "D", 1, 1)
	var out []*event.Event
	for _, e := range []*event.Event{a, b, c, d} {
		out = append(out, r.Push(e)...)
	}
	out = append(out, r.Flush()...)
	want := []*event.Event{a, c, d, b} // ts 5,5,5 in arrival order, then 6
	if !sameEvents(out, want) {
		t.Fatalf("tie release order wrong: got %v", tss(out))
	}
}

// TestReordererMatchesModel is the model-based property test: on random
// bounded-disorder streams (with duplicates and bursts), the heap
// implementation and the reference model release identical event sequences
// at identical times and count identical drops.
func TestReordererMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bound := int64(1 + rng.Intn(25))
		heap := NewReorderer(bound)
		model := newReorderModel(bound)

		ts := int64(0)
		for i := 0; i < 300; i++ {
			// random walk with occasional large jumps and out-of-bound
			// stragglers so both paths (buffer, drop) are exercised
			switch rng.Intn(10) {
			case 0:
				ts += bound * 3
			case 1:
				ts -= bound * 2
			default:
				ts += int64(rng.Intn(3))
			}
			if ts < 0 {
				ts = 0
			}
			// Seq deliberately collides (including runs of Seq==0-like
			// duplicates): ties must release in arrival order, exactly as
			// the stable-sort model does.
			e := event.NewStock(uint64(i/3), ts, int64(i), "X", 1, 1)
			got := heap.Push(e)
			want := model.push(e)
			if !sameEvents(got, want) {
				t.Logf("seed %d push %d: got %v want %v", seed, i, tss(got), tss(want))
				return false
			}
			if heap.Dropped() != model.dropped {
				t.Logf("seed %d push %d: dropped %d vs %d", seed, i, heap.Dropped(), model.dropped)
				return false
			}
			if heap.Pending() != len(model.pending) {
				t.Logf("seed %d push %d: pending %d vs %d", seed, i, heap.Pending(), len(model.pending))
				return false
			}
		}
		return sameEvents(heap.Flush(), model.flush())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sameEvents(a, b []*event.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func tss(evs []*event.Event) []int64 {
	out := make([]int64, len(evs))
	for i, e := range evs {
		out[i] = e.Ts
	}
	return out
}
