package operator

import (
	"repro/internal/buffer"
)

// Disj evaluates disjunction (§4.4.4): the union of its inputs, merged by
// end time. Output records are shallow copies of the input records: the
// paper observes disjunction needs no materialization, but record pooling
// requires each record to live in exactly one buffer, so the slot vector
// is copied (events themselves are never duplicated).
type Disj struct {
	descHolder
	children []Node
	out      *buffer.Buf
	drop     bool

	emitted uint64
}

// NewDisj builds a disjunction over two or more children.
func NewDisj(children []Node, dropChildren bool) *Disj {
	return &Disj{children: children, out: buffer.New(), drop: dropChildren}
}

// Out returns the output buffer.
func (d *Disj) Out() *buffer.Buf { return d.out }

// Children returns the children.
func (d *Disj) Children() []Node { return d.children }

// Label names the node.
func (d *Disj) Label() string { return "disj" }

// Stats returns the number of records emitted.
func (d *Disj) Stats() (emitted uint64) { return d.emitted }

// Counters returns records merged; disjunction copies every input record,
// so In and Out coincide.
func (d *Disj) Counters() Counters { return Counters{In: d.emitted, Out: d.emitted} }

// Reset clears the output buffer.
func (d *Disj) Reset() { d.out.Clear() }

// Assemble merges the unconsumed region of every child by end time.
func (d *Disj) Assemble(eat, now int64) {
	for _, ch := range d.children {
		ch.Assemble(eat, now)
	}
	// k-way merge over the children's unconsumed regions.
	idx := make([]int, len(d.children))
	for i, ch := range d.children {
		idx[i] = ch.Out().Cursor()
	}
	for {
		best := -1
		var bestEnd int64
		for i, ch := range d.children {
			b := ch.Out()
			if idx[i] >= b.Len() {
				continue
			}
			if e := b.At(idx[i]).End; best < 0 || e < bestEnd {
				best, bestEnd = i, e
			}
		}
		if best < 0 {
			break
		}
		r := d.children[best].Out().At(idx[best])
		idx[best]++
		if r.Start < eat {
			continue
		}
		d.out.Append(d.out.Pool().Clone(r))
		d.emitted++
	}
	for _, ch := range d.children {
		consume(ch.Out(), d.drop)
	}
}

var _ Node = (*Disj)(nil)
