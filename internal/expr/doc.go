// Package expr compiles the value expressions and predicates of a parsed
// query (internal/query AST) into closures evaluated against event-class
// environments. Compiled predicates are what tree-plan nodes (and the NFA
// baseline) execute per candidate combination, so compilation happens once
// per query, not per event.
package expr
