package expr

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/event"
	"repro/internal/query"
)

// compileWhere parses a two/three-class query and compiles its first
// predicate.
func compileWhere(t *testing.T, src string) Predicate {
	t.Helper()
	q, err := query.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := CompilePred(q.Info.Preds[0].Cmp)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func stock(ts int64, name string, price, vol float64) *event.Event {
	return event.NewStock(uint64(ts), ts, ts, name, price, vol)
}

func recOf(n int, class int, e *event.Event) *buffer.Record {
	return buffer.Leaf(e, class, n)
}

func TestPredicateComparisons(t *testing.T) {
	cases := []struct {
		src   string
		price float64
		want  bool
	}{
		{"PATTERN A;B WHERE A.price > 10 WITHIN 5", 11, true},
		{"PATTERN A;B WHERE A.price > 10 WITHIN 5", 10, false},
		{"PATTERN A;B WHERE A.price >= 10 WITHIN 5", 10, true},
		{"PATTERN A;B WHERE A.price < 10 WITHIN 5", 9, true},
		{"PATTERN A;B WHERE A.price <= 10 WITHIN 5", 10, true},
		{"PATTERN A;B WHERE A.price = 10 WITHIN 5", 10, true},
		{"PATTERN A;B WHERE A.price = 10 WITHIN 5", 10.5, false},
		{"PATTERN A;B WHERE A.price != 10 WITHIN 5", 10.5, true},
		{"PATTERN A;B WHERE A.price != 10 WITHIN 5", 10, false},
	}
	for _, c := range cases {
		p := compileWhere(t, c.src)
		env := EventEnv{Class: 0, E: stock(1, "IBM", c.price, 0)}
		if got := p(env); got != c.want {
			t.Errorf("%s with price=%v: got %v, want %v", c.src, c.price, got, c.want)
		}
	}
}

func TestPredicateStringEquality(t *testing.T) {
	p := compileWhere(t, "PATTERN A;B WHERE A.name = 'Google' WITHIN 5")
	if !p(EventEnv{Class: 0, E: stock(1, "Google", 1, 1)}) {
		t.Error("Google should match")
	}
	if p(EventEnv{Class: 0, E: stock(1, "IBM", 1, 1)}) {
		t.Error("IBM should not match")
	}
}

func TestPredicateMultiClass(t *testing.T) {
	p := compileWhere(t, "PATTERN A;B WHERE A.price > 1.05 * B.price WITHIN 5")
	a := recOf(2, 0, stock(1, "IBM", 106, 0))
	b := recOf(2, 1, stock(2, "Google", 100, 0))
	if !p(PairEnv{L: a, R: b}) {
		t.Error("106 > 105 should hold")
	}
	b2 := recOf(2, 1, stock(2, "Google", 101, 0))
	if p(PairEnv{L: a, R: b2}) {
		t.Error("106 > 106.05 should not hold")
	}
}

func TestPredicateNullSemantics(t *testing.T) {
	// unbound class -> null -> false, for every operator
	for _, src := range []string{
		"PATTERN A;B WHERE A.price > 0 WITHIN 5",
		"PATTERN A;B WHERE A.price < 99999 WITHIN 5",
		"PATTERN A;B WHERE A.price = 0 WITHIN 5",
		"PATTERN A;B WHERE A.price != 123 WITHIN 5",
		"PATTERN A;B WHERE A.name = 'x' WITHIN 5",
	} {
		p := compileWhere(t, src)
		env := EventEnv{Class: 1, E: stock(1, "IBM", 1, 1)} // class 0 unbound
		if p(env) {
			t.Errorf("%s: predicate true on unbound class", src)
		}
	}
}

func TestPredicateTypeMismatch(t *testing.T) {
	p := compileWhere(t, "PATTERN A;B WHERE A.name > 5 WITHIN 5")
	if p(EventEnv{Class: 0, E: stock(1, "IBM", 1, 1)}) {
		t.Error("string > number should be false")
	}
	p = compileWhere(t, "PATTERN A;B WHERE A.name != 5 WITHIN 5")
	if p(EventEnv{Class: 0, E: stock(1, "IBM", 1, 1)}) {
		t.Error("string != number should be false (incomparable)")
	}
}

func TestArithmetic(t *testing.T) {
	q := query.MustParse("PATTERN A;B WHERE A.price > (B.price + 3) * 2 - 1 / 1 WITHIN 5")
	p, err := CompilePred(q.Info.Preds[0].Cmp)
	if err != nil {
		t.Fatal(err)
	}
	// (10+3)*2 - 1 = 25
	a := recOf(2, 0, stock(1, "A", 26, 0))
	b := recOf(2, 1, stock(2, "B", 10, 0))
	if !p(PairEnv{L: a, R: b}) {
		t.Error("26 > 25 should hold")
	}
	a2 := recOf(2, 0, stock(1, "A", 25, 0))
	if p(PairEnv{L: a2, R: b}) {
		t.Error("25 > 25 should not hold")
	}
}

func TestDivisionByZero(t *testing.T) {
	q := query.MustParse("PATTERN A;B WHERE A.price / A.volume > 1 WITHIN 5")
	p, err := CompilePred(q.Info.Preds[0].Cmp)
	if err != nil {
		t.Fatal(err)
	}
	if p(EventEnv{Class: 0, E: stock(1, "A", 5, 0)}) {
		t.Error("division by zero should yield null -> false")
	}
	if !p(EventEnv{Class: 0, E: stock(1, "A", 5, 2)}) {
		t.Error("5/2 > 1 should hold")
	}
}

func TestTsPseudoAttribute(t *testing.T) {
	q := query.MustParse("PATTERN A;B WHERE B.ts - A.ts > 10 WITHIN 100")
	p, err := CompilePred(q.Info.Preds[0].Cmp)
	if err != nil {
		t.Fatal(err)
	}
	a := recOf(2, 0, stock(5, "A", 1, 1))
	b := recOf(2, 1, stock(20, "B", 1, 1))
	if !p(PairEnv{L: a, R: b}) {
		t.Error("20-5 > 10 should hold")
	}
	b2 := recOf(2, 1, stock(14, "B", 1, 1))
	if p(PairEnv{L: a, R: b2}) {
		t.Error("14-5 > 10 should not hold")
	}
}

func TestAggregates(t *testing.T) {
	q := query.MustParse("PATTERN A;B+;C WHERE sum(B.volume) > 0 WITHIN 100 RETURN A, sum(B.volume), avg(B.price), count(B), min(B.price), max(B.price)")
	group := []*event.Event{
		stock(1, "B", 10, 100),
		stock(2, "B", 20, 200),
		stock(3, "B", 30, 300),
	}
	rec := &buffer.Record{Slots: make([]buffer.Slot, 3), Start: 1, End: 3}
	rec.Slots[1] = buffer.Slot{Group: group}
	env := RecordEnv{R: rec}

	wants := []float64{600, 20, 3, 10, 30} // sum vol, avg price, count, min, max
	for i, item := range q.Return[1:] {
		ev, err := Compile(item.Expr)
		if err != nil {
			t.Fatal(err)
		}
		got := ev(env)
		if got.Kind != event.KindFloat || got.F != wants[i] {
			t.Errorf("return item %d (%s) = %v, want %v", i+1, item.Expr, got, wants[i])
		}
	}
}

func TestAggregateEmptyGroup(t *testing.T) {
	q := query.MustParse("PATTERN A;B*;C WHERE sum(B.volume) >= 0 WITHIN 100")
	rec := &buffer.Record{Slots: make([]buffer.Slot, 3)}
	env := RecordEnv{R: rec}

	sumE, _ := Compile(&query.Agg{Fn: query.AggSum, Arg: &query.AttrRef{Alias: "B", Attr: "volume", Class: 1}})
	if v := sumE(env); v.F != 0 || v.Kind != event.KindFloat {
		t.Errorf("sum over empty group = %v, want 0", v)
	}
	avgE, _ := Compile(&query.Agg{Fn: query.AggAvg, Arg: &query.AttrRef{Alias: "B", Attr: "price", Class: 1}})
	if v := avgE(env); !v.IsNull() {
		t.Errorf("avg over empty group = %v, want null", v)
	}
	cntE, _ := Compile(&query.Agg{Fn: query.AggCount, Arg: &query.AttrRef{Alias: "B", Class: 1}})
	if v := cntE(env); v.F != 0 {
		t.Errorf("count over empty group = %v, want 0", v)
	}
	_ = q
}

func TestAggregateOverSingleSlot(t *testing.T) {
	// Group() on a single-event slot returns a one-element group.
	rec := recOf(2, 0, stock(1, "A", 42, 7))
	cntE, _ := Compile(&query.Agg{Fn: query.AggCount, Arg: &query.AttrRef{Alias: "A", Class: 0}})
	if v := cntE(RecordEnv{R: rec}); v.F != 1 {
		t.Errorf("count over single slot = %v", v)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(&query.AttrRef{Alias: "X", Attr: "y", Class: -1}); err == nil {
		t.Error("unresolved ref compiled")
	}
	if _, err := Compile(&query.Agg{Fn: query.AggSum, Arg: &query.AttrRef{Alias: "X", Attr: "y", Class: -1}}); err == nil {
		t.Error("unresolved agg compiled")
	}
	if _, err := CompilePred(&query.Cmp{Op: query.CmpEq, L: &query.AttrRef{Class: -1}, R: &query.NumLit{V: 1}}); err == nil {
		t.Error("bad pred compiled")
	}
	if _, err := CompilePred(&query.Cmp{Op: query.CmpEq, L: &query.NumLit{V: 1}, R: &query.AttrRef{Class: -1}}); err == nil {
		t.Error("bad pred compiled")
	}
}

func TestCompilePreds(t *testing.T) {
	q := query.MustParse("PATTERN A;B WHERE A.price > 1 AND A.price < 10 WITHIN 5")
	all, err := CompilePreds([]*query.Cmp{q.Info.Preds[0].Cmp, q.Info.Preds[1].Cmp})
	if err != nil {
		t.Fatal(err)
	}
	if !all(EventEnv{Class: 0, E: stock(1, "A", 5, 0)}) {
		t.Error("5 in (1,10) should hold")
	}
	if all(EventEnv{Class: 0, E: stock(1, "A", 11, 0)}) {
		t.Error("11 in (1,10) should not hold")
	}
	empty, err := CompilePreds(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !empty(EventEnv{}) {
		t.Error("empty conjunction should be true")
	}
}

func TestCompileKey(t *testing.T) {
	e := stock(9, "IBM", 1, 1)
	if v := CompileKey("name")(e); !v.Equal(event.Str("IBM")) {
		t.Errorf("key(name) = %v", v)
	}
	if v := CompileKey("ts")(e); !v.Equal(event.Float(9)) {
		t.Errorf("key(ts) = %v", v)
	}
	if v := CompileKey("nope")(e); !v.IsNull() {
		t.Errorf("key(nope) = %v", v)
	}
}

func TestPairEnvPrefersLeft(t *testing.T) {
	a1 := recOf(2, 0, stock(1, "L", 1, 1))
	a2 := recOf(2, 0, stock(2, "R", 2, 2))
	env := PairEnv{L: a1, R: a2}
	if got := env.Event(0); got.Get("name").S != "L" {
		t.Errorf("PairEnv should prefer left slot, got %v", got)
	}
	if g := env.Group(0); len(g) != 1 || g[0].Get("name").S != "L" {
		t.Errorf("PairEnv.Group should prefer left slot, got %v", g)
	}
}

func TestEnvOutOfRange(t *testing.T) {
	rec := recOf(1, 0, stock(1, "A", 1, 1))
	env := RecordEnv{R: rec}
	if env.Event(5) != nil || env.Group(5) != nil {
		t.Error("out-of-range class should be unbound")
	}
	pe := PairEnv{L: rec, R: rec}
	if pe.Event(5) != nil || pe.Group(5) != nil {
		t.Error("out-of-range class should be unbound in PairEnv")
	}
}
