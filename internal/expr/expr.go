package expr

import (
	"fmt"
	"math"

	"repro/internal/buffer"
	"repro/internal/event"
	"repro/internal/query"
)

// TsAttr is the pseudo-attribute resolving to an event's timestamp.
const TsAttr = "ts"

// Env resolves event classes to the events bound to them in a candidate
// combination. Event returns nil / Group returns empty when the class is
// unbound (e.g. not yet assembled, or a NULL negation slot).
type Env interface {
	Event(class int) *event.Event
	Group(class int) []*event.Event
}

// RecordEnv adapts one buffer record to an Env.
type RecordEnv struct {
	R *buffer.Record
}

// Event returns the single event bound to class, if any.
func (e RecordEnv) Event(class int) *event.Event {
	if class >= len(e.R.Slots) {
		return nil
	}
	return e.R.Slots[class].E
}

// Group returns the closure group bound to class, if any.
func (e RecordEnv) Group(class int) []*event.Event {
	if class >= len(e.R.Slots) {
		return nil
	}
	s := e.R.Slots[class]
	if s.E != nil {
		return []*event.Event{s.E}
	}
	return s.Group
}

// PairEnv adapts the would-be combination of two records to an Env without
// materializing the combined record. Operators use it to test predicates
// before combining (Algorithm 1 step 5).
type PairEnv struct {
	L, R *buffer.Record
}

// Event returns the event bound to class in either record.
func (e PairEnv) Event(class int) *event.Event {
	if class < len(e.L.Slots) {
		if ev := e.L.Slots[class].E; ev != nil {
			return ev
		}
	}
	if class < len(e.R.Slots) {
		return e.R.Slots[class].E
	}
	return nil
}

// Group returns the group bound to class in either record.
func (e PairEnv) Group(class int) []*event.Event {
	if class < len(e.L.Slots) {
		if s := e.L.Slots[class]; s.IsSet() {
			if s.E != nil {
				return []*event.Event{s.E}
			}
			return s.Group
		}
	}
	if class < len(e.R.Slots) {
		if s := e.R.Slots[class]; s.IsSet() {
			if s.E != nil {
				return []*event.Event{s.E}
			}
			return s.Group
		}
	}
	return nil
}

// EventEnv binds a single event to a single class (leaf predicates).
type EventEnv struct {
	Class int
	E     *event.Event
}

// Event returns the bound event when class matches.
func (e EventEnv) Event(class int) *event.Event {
	if class == e.Class {
		return e.E
	}
	return nil
}

// Group returns the bound event as a one-element group when class matches.
func (e EventEnv) Group(class int) []*event.Event {
	if class == e.Class {
		return []*event.Event{e.E}
	}
	return nil
}

// Evaluator computes a value against an environment.
type Evaluator func(Env) event.Value

// Predicate tests a candidate combination.
type Predicate func(Env) bool

// Compile turns a value expression into an Evaluator. Attribute references
// must have been resolved by query.Analyze (Class >= 0).
func Compile(e query.Expr) (Evaluator, error) {
	switch x := e.(type) {
	case *query.NumLit:
		v := event.Float(x.V)
		return func(Env) event.Value { return v }, nil
	case *query.StrLit:
		v := event.Str(x.V)
		return func(Env) event.Value { return v }, nil
	case *query.AttrRef:
		if x.Class < 0 {
			return nil, fmt.Errorf("expr: unresolved attribute reference %s", x)
		}
		cls := x.Class
		if x.Attr == TsAttr {
			return func(env Env) event.Value {
				ev := env.Event(cls)
				if ev == nil {
					return event.Value{}
				}
				return event.Float(float64(ev.Ts))
			}, nil
		}
		attr := x.Attr
		return func(env Env) event.Value {
			ev := env.Event(cls)
			if ev == nil {
				return event.Value{}
			}
			return ev.Get(attr)
		}, nil
	case *query.Arith:
		l, err := Compile(x.L)
		if err != nil {
			return nil, err
		}
		r, err := Compile(x.R)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(env Env) event.Value {
			lv, rv := l(env), r(env)
			if lv.Kind != event.KindFloat || rv.Kind != event.KindFloat {
				return event.Value{}
			}
			switch op {
			case query.OpAdd:
				return event.Float(lv.F + rv.F)
			case query.OpSub:
				return event.Float(lv.F - rv.F)
			case query.OpMul:
				return event.Float(lv.F * rv.F)
			default:
				if rv.F == 0 {
					return event.Value{}
				}
				return event.Float(lv.F / rv.F)
			}
		}, nil
	case *query.Agg:
		return compileAgg(x)
	default:
		return nil, fmt.Errorf("expr: unsupported expression %T", e)
	}
}

func compileAgg(a *query.Agg) (Evaluator, error) {
	if a.Arg.Class < 0 {
		return nil, fmt.Errorf("expr: unresolved aggregate argument %s", a.Arg)
	}
	cls := a.Arg.Class
	if a.Fn == query.AggCount {
		return func(env Env) event.Value {
			return event.Float(float64(len(env.Group(cls))))
		}, nil
	}
	attr := a.Arg.Attr
	get := func(ev *event.Event) (float64, bool) {
		var v event.Value
		if attr == TsAttr {
			v = event.Float(float64(ev.Ts))
		} else {
			v = ev.Get(attr)
		}
		if v.Kind != event.KindFloat {
			return 0, false
		}
		return v.F, true
	}
	fn := a.Fn
	return func(env Env) event.Value {
		g := env.Group(cls)
		if len(g) == 0 {
			if fn == query.AggSum {
				return event.Float(0)
			}
			return event.Value{}
		}
		sum, mn, mx := 0.0, math.Inf(1), math.Inf(-1)
		for _, ev := range g {
			f, ok := get(ev)
			if !ok {
				return event.Value{}
			}
			sum += f
			if f < mn {
				mn = f
			}
			if f > mx {
				mx = f
			}
		}
		switch fn {
		case query.AggSum:
			return event.Float(sum)
		case query.AggAvg:
			return event.Float(sum / float64(len(g)))
		case query.AggMin:
			return event.Float(mn)
		default:
			return event.Float(mx)
		}
	}, nil
}

// CompilePred turns a comparison into a Predicate. Null operands make the
// predicate false (a missing attribute can never satisfy a constraint).
func CompilePred(c *query.Cmp) (Predicate, error) {
	l, err := Compile(c.L)
	if err != nil {
		return nil, err
	}
	r, err := Compile(c.R)
	if err != nil {
		return nil, err
	}
	op := c.Op
	return func(env Env) bool {
		lv, rv := l(env), r(env)
		switch op {
		case query.CmpEq:
			return lv.Equal(rv)
		case query.CmpNeq:
			if lv.IsNull() || rv.IsNull() || lv.Kind != rv.Kind {
				return false
			}
			return !lv.Equal(rv)
		default:
			cmp, ok := lv.Compare(rv)
			if !ok {
				return false
			}
			switch op {
			case query.CmpLt:
				return cmp < 0
			case query.CmpLte:
				return cmp <= 0
			case query.CmpGt:
				return cmp > 0
			default:
				return cmp >= 0
			}
		}
	}, nil
}

// CompilePreds compiles a set of predicates into one conjunction.
func CompilePreds(cs []*query.Cmp) (Predicate, error) {
	if len(cs) == 0 {
		return func(Env) bool { return true }, nil
	}
	preds := make([]Predicate, len(cs))
	for i, c := range cs {
		p, err := CompilePred(c)
		if err != nil {
			return nil, err
		}
		preds[i] = p
	}
	if len(preds) == 1 {
		return preds[0], nil
	}
	return func(env Env) bool {
		for _, p := range preds {
			if !p(env) {
				return false
			}
		}
		return true
	}, nil
}

// CompileKey compiles an attribute reference into a key extractor over a
// single event, for hash-index construction (§5.2.2).
func CompileKey(attr string) func(*event.Event) event.Value {
	if attr == TsAttr {
		return func(e *event.Event) event.Value { return event.Float(float64(e.Ts)) }
	}
	return func(e *event.Event) event.Value { return e.Get(attr) }
}
