package zstream

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/explain"
	"repro/internal/runtime"
)

// ExplainDoc is the zstream-explain/v1 document: a stable, versioned JSON
// description of one query's physical plan, cost-model view, sharing
// decisions, router subscription and live operator counters. See
// docs/OBSERVABILITY.md for the field-by-field schema reference.
type ExplainDoc = explain.Doc

// ExplainVersion identifies the EXPLAIN document schema; ExplainDoc.Version
// always carries it.
const ExplainVersion = explain.Version

// Metrics is a consistent runtime-wide observability snapshot: aggregate
// Stats plus per-query, per-producer and router counters.
type Metrics = runtime.Metrics

// QueryMetrics is one live query's row in a Metrics snapshot.
type QueryMetrics = runtime.QueryMetrics

// ProducerMetrics is one shared-subplan producer's row in a Metrics
// snapshot.
type ProducerMetrics = runtime.ProducerMetrics

// RouterMetrics sums the per-shard router counters in a Metrics snapshot.
type RouterMetrics = runtime.RouterMetrics

// Explain assembles the zstream-explain/v1 document for a live query. The
// snapshot rides the worker op queues, so its counters cover exactly the
// events whose Ingest returned before the call; under adaptation, shards
// running different plans appear as separate plan variants.
func (r *Runtime) Explain(id QueryID) (*ExplainDoc, error) { return r.rt.Explain(id) }

// Metrics captures an observability snapshot; safe to call while ingesting.
func (r *Runtime) Metrics() Metrics { return r.rt.Metrics() }

// WriteMetrics renders a Metrics snapshot in Prometheus text exposition
// format to w.
func (r *Runtime) WriteMetrics(w io.Writer) error { return r.rt.WriteMetrics(w) }

// LiveQueries returns the ids of all registered queries, sorted.
func (r *Runtime) LiveQueries() []QueryID { return r.rt.LiveQueries() }

// ExplainDoc assembles the zstream-explain/v1 document for a standalone
// engine. Like Process, it must not race the goroutine driving the engine:
// call it between Process calls (the operator counters are owned by that
// goroutine).
func (e *Engine) ExplainDoc() *ExplainDoc {
	info := e.eng.BuildExplain()
	return &ExplainDoc{
		Version:  explain.Version,
		Query:    explain.QuerySection(e.eng.Query()),
		Strategy: info.Strategy,
		Cost:     info.Cost,
		Plans: []explain.PlanVariant{{
			Fingerprint: info.Fingerprint,
			Shards:      []int{0},
			Switches:    info.Switches,
			LastSwitch:  info.LastSwitch,
			Tree:        info.Tree,
		}},
		Text: explain.Render(info.Tree),
	}
}

// NewObservabilityHandler returns an http.Handler exposing the runtime's
// ops surface:
//
//	GET /metrics       Prometheus text exposition (0.0.4)
//	GET /explain       JSON array of live query ids
//	GET /explain/{id}  zstream-explain/v1 document for one query
//
// The handler holds no state of its own; every request takes a fresh
// snapshot through the worker op queues, so concurrent scrapes are safe.
func NewObservabilityHandler(r *Runtime) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteMetrics(w)
	})
	mux.HandleFunc("/explain", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(r.LiveQueries())
	})
	mux.HandleFunc("/explain/", func(w http.ResponseWriter, req *http.Request) {
		idStr := strings.TrimPrefix(req.URL.Path, "/explain/")
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil {
			http.Error(w, "bad query id", http.StatusBadRequest)
			return
		}
		doc, err := r.Explain(QueryID(id))
		switch {
		case errors.Is(err, ErrUnknownQuery):
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		b, err := doc.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(b)
		_, _ = w.Write([]byte("\n"))
	})
	return mux
}
