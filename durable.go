package zstream

import (
	"time"

	"repro/internal/runtime"
	"repro/internal/wal"
)

// FsyncPolicy selects when the write-ahead log fsyncs its active segment;
// see the Fsync* constants for the durability/throughput trade-off each
// point buys.
type FsyncPolicy = wal.FsyncPolicy

const (
	// FsyncBatch syncs after every appended batch (and every emit
	// watermark): maximum durability, one fsync per ingest flush.
	FsyncBatch = wal.FsyncBatch
	// FsyncInterval syncs at most once per configured interval, amortizing
	// fsync cost for a bounded window of recent events that an OS crash
	// (not a process crash) may lose.
	FsyncInterval = wal.FsyncInterval
	// FsyncOff never fsyncs; every record is still flushed to the OS per
	// append, so kill -9 loses nothing — only OS crash or power loss can.
	FsyncOff = wal.FsyncOff
)

// WALErrorPolicy selects how the runtime reacts to a write-ahead-log
// failure; see WALFailStop and WALDegrade.
type WALErrorPolicy = runtime.WALErrorPolicy

const (
	// WALFailStop (the default) sheds the failing ingest flush and
	// surfaces a WALError from Ingest: no event reaches the engines unless
	// it is durable first, preserving exactly-once recovery.
	WALFailStop = runtime.WALFailStop
	// WALDegrade records the fault, disables the log, and keeps serving
	// memory-only: availability over durability.
	WALDegrade = runtime.WALDegrade
)

// WALError is the typed error returned for write-ahead-log failures: the
// failed operation, the segment path, whether it was fault-injected, and
// the underlying cause (unwrappable with errors.As / errors.Is).
type WALError = wal.Error

// WALFault is one recorded write-ahead-log failure, inspectable via
// Runtime.WALFaults and counted by RuntimeStats.WALErrors and the
// zstream_wal_errors_total metric.
type WALFault = runtime.WALFault

// RecoverInfo summarizes what NewDurableRuntime recovered from an existing
// log directory: segments scanned, torn-tail bytes truncated, events
// replayed, queries re-registered, and the resume position. Its String
// method renders the one-line form the CLI logs.
type RecoverInfo = runtime.RecoverInfo

// DurabilityOption tunes WithDurability.
type DurabilityOption func(*runtime.DurConfig)

// WithFsync selects the fsync policy (default FsyncBatch).
func WithFsync(p FsyncPolicy) DurabilityOption {
	return func(d *runtime.DurConfig) { d.Fsync = p }
}

// WithFsyncInterval bounds the unsynced window under FsyncInterval
// (default 50ms).
func WithFsyncInterval(iv time.Duration) DurabilityOption {
	return func(d *runtime.DurConfig) { d.SyncEvery = iv }
}

// WithCheckpointEvery writes a checkpoint after roughly n logged events,
// at flush boundaries (default 4096). Registrations and unregistrations
// always checkpoint immediately.
func WithCheckpointEvery(n int) DurabilityOption {
	return func(d *runtime.DurConfig) { d.CheckpointEvery = n }
}

// WithSegmentBytes rotates log segments past this size (default 64 MiB).
// Smaller segments give retention pruning finer granularity.
func WithSegmentBytes(n int64) DurabilityOption {
	return func(d *runtime.DurConfig) { d.SegmentBytes = n }
}

// WithWALErrorPolicy selects the log-failure policy (default WALFailStop).
func WithWALErrorPolicy(p WALErrorPolicy) DurabilityOption {
	return func(d *runtime.DurConfig) { d.OnWALError = p }
}

// WithRecoverHandler installs the callback factory recovery consults for
// every checkpointed query: given the query's original id and normalized
// text it returns the OnMatch callback to attach (nil recovers the query
// without one). Without a handler, recovered queries run but deliver
// nowhere.
func WithRecoverHandler(f func(id QueryID, src string) func(*Match)) DurabilityOption {
	return func(d *runtime.DurConfig) { d.RecoverEmit = f }
}

// WithDurability arms the durability plane on a runtime built with
// NewDurableRuntime: every ingested event is appended to a CRC-framed
// write-ahead log under dir before any engine sees it, checkpoints record
// the registered query set and stream position at batch boundaries, and a
// restart over the same directory recovers — replaying the tail of the
// log through the normal ingest path and suppressing matches already
// delivered before the crash, so the combined output equals a crash-free
// run's exactly. NewRuntime ignores this option.
func WithDurability(dir string, opts ...DurabilityOption) RuntimeOption {
	return func(c *runtime.Config) {
		d := &runtime.DurConfig{Dir: dir}
		for _, o := range opts {
			o(d)
		}
		c.Durability = d
	}
}

// NewDurableRuntime creates a runtime whose stream is made durable by
// WithDurability (which must be among opts), recovering first if the log
// directory already holds a previous run. It returns the runtime and a
// report of what recovery found; on a fresh directory the report is all
// zeros. See WithDurability for the durability contract.
func NewDurableRuntime(opts ...RuntimeOption) (*Runtime, *RecoverInfo, error) {
	var cfg runtime.Config
	for _, o := range opts {
		o(&cfg)
	}
	rt, info, err := runtime.NewDurable(cfg)
	if err != nil {
		return nil, nil, err
	}
	return &Runtime{rt: rt}, info, nil
}

// WALFaults returns every recorded write-ahead-log failure (capped at the
// most recent 64), oldest first. Empty on a healthy or non-durable
// runtime.
func (r *Runtime) WALFaults() []WALFault { return r.rt.WALErrors() }
