// Command benchdiff compares two zstream-bench/v1 JSON documents (see
// cmd/zbench -json) and fails when the new run regresses beyond the
// configured tolerances. It is the CI performance gate:
//
//	benchdiff [-max-tput-drop 0.15] [-max-alloc-growth 0.10] baseline.json new.json
//
// Two checks gate the result:
//
//   - allocs_per_event is deterministic, so it is gated per run: any run
//     whose allocation count grows more than -max-alloc-growth (relative;
//     an absolute slack of -alloc-slack applies to near-zero baselines)
//     fails the gate.
//   - events_per_sec is noisy at per-run granularity (sub-second runs,
//     shared machines), so it is gated on the geometric mean of the
//     new/baseline ratios across all comparable runs: scheduler noise
//     averages out, a hot-path regression shifts the whole distribution.
//     A geomean drop beyond -max-tput-drop fails the gate. Per-run deltas
//     are still printed for inspection.
//
// Runs are matched by (experiment id, series label, plan). Runs present in
// only one document are reported but do not fail the gate (experiments
// come and go); changed workloads should regenerate the baseline instead.
//
// Throughput is machine-dependent — the geomean comparison assumes the
// baseline was produced on comparable hardware (in CI: the committed
// BENCH_*.json; regenerate it after intentional perf changes).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

// The types mirror internal/experiments' JSON shape; decoding is
// structural so benchdiff also works on baselines from older binaries.
type doc struct {
	Schema      string       `json:"schema"`
	Scale       float64      `json:"scale"`
	Experiments []experiment `json:"experiments"`
}

type experiment struct {
	ID     string   `json:"id"`
	Series []series `json:"series"`
}

type series struct {
	Label string `json:"label"`
	Runs  []run  `json:"runs"`
}

type run struct {
	Plan           string  `json:"plan"`
	Throughput     float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

type key struct{ exp, label, plan string }

func load(path string) (map[key]run, *doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var d doc
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.Schema != "zstream-bench/v1" {
		return nil, nil, fmt.Errorf("%s: unsupported schema %q", path, d.Schema)
	}
	m := map[key]run{}
	for _, e := range d.Experiments {
		for _, s := range e.Series {
			for _, r := range s.Runs {
				m[key{e.ID, s.Label, r.Plan}] = r
			}
		}
	}
	return m, &d, nil
}

func main() {
	var (
		maxTputDrop    = flag.Float64("max-tput-drop", 0.15, "max relative drop of the geomean events/s ratio before failing")
		maxAllocGrowth = flag.Float64("max-alloc-growth", 0.10, "max relative allocs/event growth of any single run before failing")
		allocSlack     = flag.Float64("alloc-slack", 0.05, "absolute allocs/event slack for near-zero baselines")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] baseline.json new.json")
		os.Exit(2)
	}
	base, bdoc, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, cdoc, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if bdoc.Scale != cdoc.Scale {
		fmt.Fprintf(os.Stderr, "benchdiff: scale mismatch: baseline %g vs new %g — comparison is meaningless\n",
			bdoc.Scale, cdoc.Scale)
		os.Exit(2)
	}

	fmt.Printf("%-44s %14s %14s %10s %10s\n", "experiment/series/plan", "events/s", "Δ tput", "allocs/ev", "Δ allocs")
	allocRegressions := 0
	compared := 0
	logSum, logN := 0.0, 0
	for _, e := range cdoc.Experiments {
		for _, s := range e.Series {
			for _, r := range s.Runs {
				k := key{e.ID, s.Label, r.Plan}
				b, ok := base[k]
				name := fmt.Sprintf("%s/%s/%s", k.exp, k.label, k.plan)
				if !ok {
					fmt.Printf("%-44s %14.0f %14s %10.2f %10s\n", name, r.Throughput, "(new)", r.AllocsPerEvent, "")
					continue
				}
				compared++
				tputDelta := 0.0
				if b.Throughput > 0 && r.Throughput > 0 {
					ratio := r.Throughput / b.Throughput
					tputDelta = ratio - 1
					logSum += math.Log(ratio)
					logN++
				}
				allocBad := false
				if growth := r.AllocsPerEvent - b.AllocsPerEvent; growth > *allocSlack {
					if b.AllocsPerEvent <= *allocSlack || growth > b.AllocsPerEvent**maxAllocGrowth {
						allocBad = true
					}
				}
				mark := ""
				if allocBad {
					allocRegressions++
					mark = "  << ALLOC REGRESSION"
				}
				fmt.Printf("%-44s %14.0f %+13.1f%% %10.2f %+10.2f%s\n",
					name, r.Throughput, tputDelta*100, r.AllocsPerEvent,
					r.AllocsPerEvent-b.AllocsPerEvent, mark)
			}
		}
	}
	for k := range base {
		if _, ok := cur[k]; !ok {
			fmt.Printf("%-44s (missing from new run)\n", fmt.Sprintf("%s/%s/%s", k.exp, k.label, k.plan))
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no comparable runs — wrong files?")
		os.Exit(2)
	}

	geomean := 1.0
	if logN > 0 {
		geomean = math.Exp(logSum / float64(logN))
	}
	tputBad := geomean < 1-*maxTputDrop
	fmt.Printf("throughput geomean ratio: %.3f over %d runs (gate: >= %.3f)\n", geomean, logN, 1-*maxTputDrop)

	if allocRegressions > 0 || tputBad {
		if allocRegressions > 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: %d run(s) regressed allocs/event beyond +%.0f%%\n",
				allocRegressions, *maxAllocGrowth*100)
		}
		if tputBad {
			fmt.Fprintf(os.Stderr, "benchdiff: geomean throughput ratio %.3f dropped beyond -%.0f%%\n",
				geomean, *maxTputDrop*100)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK — %d runs (geomean tput %+.1f%%, alloc gate +%.0f%%)\n",
		compared, (geomean-1)*100, *maxAllocGrowth*100)
}
