package main

import (
	"strings"
	"testing"

	zstream "repro"
)

const csvInput = `ts,kind,price
1,A,10
2,B,20
3,A,30
4,B,5
`

func TestFeedCSV(t *testing.T) {
	q, err := zstream.Compile(`
		PATTERN A;B
		WHERE A.kind='A' AND B.kind='B' AND B.price > A.price
		WITHIN 100`)
	if err != nil {
		t.Fatal(err)
	}
	var rendered []string
	eng, err := zstream.NewEngine(q, zstream.OnMatch(func(m *zstream.Match) {
		rendered = append(rendered, renderMatch(m))
	}))
	if err != nil {
		t.Fatal(err)
	}
	n, err := feedCSV(eng, strings.NewReader(csvInput))
	if err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	if n != 4 {
		t.Errorf("events = %d", n)
	}
	// matches: (1,2) 20>10 yes; (1,4) 5>10 no; (3,4) 5>30 no
	if len(rendered) != 1 {
		t.Fatalf("matches = %d: %v", len(rendered), rendered)
	}
	if !strings.Contains(rendered[0], "match [1..2]") {
		t.Errorf("rendered = %q", rendered[0])
	}
}

func TestFeedCSVErrors(t *testing.T) {
	q := zstream.MustCompile("PATTERN A;B WITHIN 10")
	eng, err := zstream.NewEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	// missing ts column
	if _, err := feedCSV(eng, strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("missing ts accepted")
	}
	// bad ts value
	if _, err := feedCSV(eng, strings.NewReader("ts,a\nxyz,1\n")); err == nil {
		t.Error("bad ts accepted")
	}
	// empty input (no header)
	if _, err := feedCSV(eng, strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestRenderMatchValueFields(t *testing.T) {
	q := zstream.MustCompile(`
		PATTERN A;B WHERE A.kind='A' AND B.kind='B'
		WITHIN 100 RETURN A.price + B.price AS total`)
	var out string
	eng, err := zstream.NewEngine(q, zstream.OnMatch(func(m *zstream.Match) {
		out = renderMatch(m)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := feedCSV(eng, strings.NewReader("ts,kind,price\n1,A,10\n2,B,5\n")); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	if !strings.Contains(out, "total=15") {
		t.Errorf("rendered = %q", out)
	}
}
