package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	zstream "repro"
)

const csvInput = `ts,kind,price
1,A,10
2,B,20
3,A,30
4,B,5
`

func TestFeedCSV(t *testing.T) {
	q, err := zstream.Compile(`
		PATTERN A;B
		WHERE A.kind='A' AND B.kind='B' AND B.price > A.price
		WITHIN 100`)
	if err != nil {
		t.Fatal(err)
	}
	var rendered []string
	eng, err := zstream.NewEngine(q, zstream.OnMatch(func(m *zstream.Match) {
		rendered = append(rendered, renderMatch(m))
	}))
	if err != nil {
		t.Fatal(err)
	}
	n, err := feedCSV(eng, strings.NewReader(csvInput))
	if err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	if n != 4 {
		t.Errorf("events = %d", n)
	}
	// matches: (1,2) 20>10 yes; (1,4) 5>10 no; (3,4) 5>30 no
	if len(rendered) != 1 {
		t.Fatalf("matches = %d: %v", len(rendered), rendered)
	}
	if !strings.Contains(rendered[0], "match [1..2]") {
		t.Errorf("rendered = %q", rendered[0])
	}
}

func TestFeedCSVErrors(t *testing.T) {
	q := zstream.MustCompile("PATTERN A;B WITHIN 10")
	eng, err := zstream.NewEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	// missing ts column
	if _, err := feedCSV(eng, strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("missing ts accepted")
	}
	// bad ts value
	if _, err := feedCSV(eng, strings.NewReader("ts,a\nxyz,1\n")); err == nil {
		t.Error("bad ts accepted")
	}
	// empty input (no header)
	if _, err := feedCSV(eng, strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestRenderMatchValueFields(t *testing.T) {
	q := zstream.MustCompile(`
		PATTERN A;B WHERE A.kind='A' AND B.kind='B'
		WITHIN 100 RETURN A.price + B.price AS total`)
	var out string
	eng, err := zstream.NewEngine(q, zstream.OnMatch(func(m *zstream.Match) {
		out = renderMatch(m)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := feedCSV(eng, strings.NewReader("ts,kind,price\n1,A,10\n2,B,5\n")); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	if !strings.Contains(out, "total=15") {
		t.Errorf("rendered = %q", out)
	}
}

func TestFeedCSVFuncServe(t *testing.T) {
	// Two queries on a sharded runtime over the same CSV: per-kind rising
	// pair and per-kind falling pair (partition-local over "kind").
	input := `ts,kind,price
1,A,10
2,B,20
3,A,30
4,B,5
5,A,12
`
	rise := zstream.MustCompile(`
		PATTERN X;Y WHERE X.kind = Y.kind AND Y.price > X.price WITHIN 100
		RETURN X, Y`)
	fall := zstream.MustCompile(`
		PATTERN X;Y WHERE X.kind = Y.kind AND Y.price < X.price WITHIN 100
		RETURN X, Y`)

	rt := zstream.NewRuntime(zstream.WithShards(2), zstream.WithPartitionBy("kind"),
		zstream.WithIngestBatch(2))
	counts := make([]int, 2)
	var ends []int64
	for i, q := range []*zstream.Query{rise, fall} {
		i := i
		if _, err := rt.Register(q, zstream.OnMatch(func(m *zstream.Match) {
			counts[i]++
			ends = append(ends, m.End)
		})); err != nil {
			t.Fatal(err)
		}
	}
	n, err := feedCSVFunc(strings.NewReader(input), rt.Ingest)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("events = %d", n)
	}
	// rise: A(10,30), B(5? no), A(10,12) => [1,3] [1,5]; fall: A(30,12) => [3,5], B(20,5) => [2,4]
	if counts[0] != 2 || counts[1] != 2 {
		t.Errorf("counts = %v", counts)
	}
	for i := 1; i < len(ends); i++ {
		if ends[i] < ends[i-1] {
			t.Errorf("merged delivery out of end-time order: %v", ends)
		}
	}
}

func TestParseFsync(t *testing.T) {
	for s, want := range map[string]zstream.FsyncPolicy{
		"batch": zstream.FsyncBatch, "interval": zstream.FsyncInterval, "off": zstream.FsyncOff,
	} {
		got, err := parseFsync(s)
		if err != nil || got != want {
			t.Errorf("parseFsync(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseFsync("always"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestServeDurableRecover(t *testing.T) {
	// The -wal-dir / -recover path end to end: a first durable serve run
	// over a prefix of the CSV, then a second run with -recover over the
	// full file; the second run must resume at the logged position (skip
	// the prefix rows) and the combined output must equal one
	// uninterrupted run.
	var b strings.Builder
	b.WriteString("ts,kind,price\n")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&b, "%d,%c,%d\n", i+1, 'A'+rune(i%3), 10+(i*7)%23)
	}
	input := b.String()
	lines := strings.SplitAfter(input, "\n")
	prefix := strings.Join(lines[:201], "") // header + 200 rows
	text := `PATTERN X;Y WHERE X.kind = Y.kind AND Y.price > X.price WITHIN 10 RETURN X, Y`

	run := func(in string, df durFlags) string {
		t.Helper()
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		runServe([]string{text}, strings.NewReader(in), 2, "kind", false, false, "", time.Second, df)
		w.Close()
		os.Stdout = old
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}

	want := run(input, durFlags{})

	dir := t.TempDir()
	df := durFlags{dir: dir, fsync: "off", ckptIv: 50}
	first := run(prefix, df)
	df.recover = true
	rest := run(input, df)

	if got := first + rest; got != want {
		t.Errorf("combined durable output differs from uninterrupted run:\nfirst %d + rest %d bytes, want %d bytes",
			len(first), len(rest), len(want))
	}
}
