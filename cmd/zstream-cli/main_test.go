package main

import (
	"strings"
	"testing"

	zstream "repro"
)

const csvInput = `ts,kind,price
1,A,10
2,B,20
3,A,30
4,B,5
`

func TestFeedCSV(t *testing.T) {
	q, err := zstream.Compile(`
		PATTERN A;B
		WHERE A.kind='A' AND B.kind='B' AND B.price > A.price
		WITHIN 100`)
	if err != nil {
		t.Fatal(err)
	}
	var rendered []string
	eng, err := zstream.NewEngine(q, zstream.OnMatch(func(m *zstream.Match) {
		rendered = append(rendered, renderMatch(m))
	}))
	if err != nil {
		t.Fatal(err)
	}
	n, err := feedCSV(eng, strings.NewReader(csvInput))
	if err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	if n != 4 {
		t.Errorf("events = %d", n)
	}
	// matches: (1,2) 20>10 yes; (1,4) 5>10 no; (3,4) 5>30 no
	if len(rendered) != 1 {
		t.Fatalf("matches = %d: %v", len(rendered), rendered)
	}
	if !strings.Contains(rendered[0], "match [1..2]") {
		t.Errorf("rendered = %q", rendered[0])
	}
}

func TestFeedCSVErrors(t *testing.T) {
	q := zstream.MustCompile("PATTERN A;B WITHIN 10")
	eng, err := zstream.NewEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	// missing ts column
	if _, err := feedCSV(eng, strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("missing ts accepted")
	}
	// bad ts value
	if _, err := feedCSV(eng, strings.NewReader("ts,a\nxyz,1\n")); err == nil {
		t.Error("bad ts accepted")
	}
	// empty input (no header)
	if _, err := feedCSV(eng, strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestRenderMatchValueFields(t *testing.T) {
	q := zstream.MustCompile(`
		PATTERN A;B WHERE A.kind='A' AND B.kind='B'
		WITHIN 100 RETURN A.price + B.price AS total`)
	var out string
	eng, err := zstream.NewEngine(q, zstream.OnMatch(func(m *zstream.Match) {
		out = renderMatch(m)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := feedCSV(eng, strings.NewReader("ts,kind,price\n1,A,10\n2,B,5\n")); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	if !strings.Contains(out, "total=15") {
		t.Errorf("rendered = %q", out)
	}
}

func TestFeedCSVFuncServe(t *testing.T) {
	// Two queries on a sharded runtime over the same CSV: per-kind rising
	// pair and per-kind falling pair (partition-local over "kind").
	input := `ts,kind,price
1,A,10
2,B,20
3,A,30
4,B,5
5,A,12
`
	rise := zstream.MustCompile(`
		PATTERN X;Y WHERE X.kind = Y.kind AND Y.price > X.price WITHIN 100
		RETURN X, Y`)
	fall := zstream.MustCompile(`
		PATTERN X;Y WHERE X.kind = Y.kind AND Y.price < X.price WITHIN 100
		RETURN X, Y`)

	rt := zstream.NewRuntime(zstream.WithShards(2), zstream.WithPartitionBy("kind"),
		zstream.WithIngestBatch(2))
	counts := make([]int, 2)
	var ends []int64
	for i, q := range []*zstream.Query{rise, fall} {
		i := i
		if _, err := rt.Register(q, zstream.OnMatch(func(m *zstream.Match) {
			counts[i]++
			ends = append(ends, m.End)
		})); err != nil {
			t.Fatal(err)
		}
	}
	n, err := feedCSVFunc(strings.NewReader(input), rt.Ingest)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("events = %d", n)
	}
	// rise: A(10,30), B(5? no), A(10,12) => [1,3] [1,5]; fall: A(30,12) => [3,5], B(20,5) => [2,4]
	if counts[0] != 2 || counts[1] != 2 {
		t.Errorf("counts = %v", counts)
	}
	for i := 1; i < len(ends); i++ {
		if ends[i] < ends[i-1] {
			t.Errorf("merged delivery out of end-time order: %v", ends)
		}
	}
}
