// Command zstream-cli runs CEP queries over a CSV event file and prints
// the matches.
//
// The CSV's first row names the attributes; one column must be "ts" (the
// event timestamp in ticks). Remaining columns become event attributes:
// values parsing as numbers are numeric, everything else is a string.
//
// Single-query mode (the default) runs one engine on one goroutine:
//
//	zstream-cli -query "PATTERN A;B WHERE A.name='x' ... WITHIN 100" events.csv
//	zstream-cli -query-file q.txt -explain events.csv
//	cat events.csv | zstream-cli -query "..." -
//
// Serve mode (-serve) hosts any number of queries on a concurrent sharded
// runtime: -query/-query-file repeat, the stream is partitioned by
// -partition-by across -shards workers, and matches from all queries are
// printed in one merged end-time-ordered stream tagged q0, q1, ...:
//
//	zstream-cli -serve -shards 4 -partition-by name \
//	    -query "PATTERN ..." -query-file more.txt events.csv
//
// -explain compiles the queries, prints one zstream-explain/v1 JSON
// document per query to stdout, and exits without reading events (the
// event-file argument is optional and ignored):
//
//	zstream-cli -query "PATTERN ..." -explain
//
// -listen (with -serve) exposes the live ops surface over HTTP while the
// stream runs: GET /metrics (Prometheus text), GET /explain (query ids),
// GET /explain/{id} (the EXPLAIN document with live counters):
//
//	zstream-cli -serve -listen :9090 -query "PATTERN ..." events.csv
//
// -wal-dir (with -serve) arms the durability plane: every event is
// appended to a write-ahead log before any engine sees it, with the fsync
// policy picked by -fsync and checkpoints every -checkpoint-interval
// events. After a crash, restart with -recover over the same directory:
// the runtime replays the log tail, suppresses matches already printed
// before the crash, skips the input rows it already processed, and the
// combined output of both runs equals one uninterrupted run:
//
//	zstream-cli -serve -wal-dir ./wal -query "PATTERN ..." events.csv
//	zstream-cli -serve -wal-dir ./wal -recover -query "PATTERN ..." events.csv
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	zstream "repro"
)

// stringList collects repeated flag values.
type stringList []string

// String implements fmt.Stringer.
func (s *stringList) String() string { return strings.Join(*s, "; ") }

// Set implements flag.Value.
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var queryTexts, queryFiles stringList
	flag.Var(&queryTexts, "query", "query text (repeatable with -serve)")
	flag.Var(&queryFiles, "query-file", "file containing a query (repeatable with -serve)")
	var (
		explain  = flag.Bool("explain", false, "print zstream-explain/v1 JSON per query and exit")
		adaptive = flag.Bool("adaptive", false, "enable plan adaptation")
		disorder = flag.Int64("max-disorder", 0, "tolerated timestamp disorder in ticks")
		quiet    = flag.Bool("quiet", false, "suppress per-match output; print only the summary")
		serve    = flag.Bool("serve", false, "run all queries on the concurrent sharded runtime")
		shards   = flag.Int("shards", 0, "worker shards in serve mode (default GOMAXPROCS)")
		partBy   = flag.String("partition-by", "name", "partition-key attribute in serve mode")
		listen   = flag.String("listen", "", "with -serve: serve GET /metrics and /explain/{id} on this address")
		drainTO  = flag.Duration("drain-timeout", 5*time.Second, "with -serve: bound on the final drain after SIGINT/SIGTERM")
		walDir   = flag.String("wal-dir", "", "with -serve: write-ahead-log directory (arms the durability plane)")
		fsyncPol = flag.String("fsync", "batch", "with -wal-dir: fsync policy, one of batch|interval|off")
		ckptIv   = flag.Int("checkpoint-interval", 0, "with -wal-dir: checkpoint roughly every N logged events (default 4096)")
		recover_ = flag.Bool("recover", false, "with -wal-dir: resume from an existing log instead of refusing it")
	)
	flag.Parse()

	for _, f := range queryFiles {
		b, err := os.ReadFile(f)
		fail(err)
		queryTexts = append(queryTexts, string(b))
	}
	if len(queryTexts) == 0 {
		fmt.Fprintln(os.Stderr, "zstream-cli: -query or -query-file required")
		os.Exit(2)
	}
	if !*serve && len(queryTexts) > 1 {
		fmt.Fprintln(os.Stderr, "zstream-cli: multiple queries require -serve")
		os.Exit(2)
	}
	if *serve && *disorder > 0 {
		fmt.Fprintln(os.Stderr, "zstream-cli: -max-disorder is not supported with -serve (runtime ingest requires in-order timestamps)")
		os.Exit(2)
	}
	if *walDir != "" && !*serve {
		fmt.Fprintln(os.Stderr, "zstream-cli: -wal-dir requires -serve")
		os.Exit(2)
	}
	if *recover_ && *walDir == "" {
		fmt.Fprintln(os.Stderr, "zstream-cli: -recover requires -wal-dir")
		os.Exit(2)
	}
	if _, err := parseFsync(*fsyncPol); err != nil {
		fmt.Fprintln(os.Stderr, "zstream-cli:", err)
		os.Exit(2)
	}
	if *explain {
		runExplain(queryTexts, *serve, *shards, *partBy, *adaptive, *disorder)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "zstream-cli: exactly one event file (or '-') required")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		fail(err)
		defer f.Close()
		in = f
	}

	if *serve {
		runServe(queryTexts, in, *shards, *partBy, *quiet, *adaptive, *listen, *drainTO,
			durFlags{dir: *walDir, fsync: *fsyncPol, ckptIv: *ckptIv, recover: *recover_})
		return
	}
	runSingle(queryTexts[0], in, *adaptive, *disorder, *quiet)
}

// runExplain compiles every query, prints one zstream-explain/v1 JSON
// document per query to stdout, and exits. In serve mode the queries are
// registered on a (never-ingesting) runtime first, so the documents show
// the runtime's sharing and router decisions; otherwise a standalone
// engine's document is printed.
func runExplain(texts []string, serve bool, shards int, partBy string, adaptive bool, disorder int64) {
	if !serve {
		q, err := zstream.Compile(texts[0])
		fail(err)
		var opts []zstream.Option
		if adaptive {
			opts = append(opts, zstream.WithAdaptation())
		}
		if disorder > 0 {
			opts = append(opts, zstream.WithMaxDisorder(disorder))
		}
		eng, err := zstream.NewEngine(q, opts...)
		fail(err)
		b, err := eng.ExplainDoc().JSON()
		fail(err)
		fmt.Println(string(b))
		return
	}
	var ropts []zstream.RuntimeOption
	if shards > 0 {
		ropts = append(ropts, zstream.WithShards(shards))
	}
	ropts = append(ropts, zstream.WithPartitionBy(partBy))
	rt := zstream.NewRuntime(ropts...)
	var ids []zstream.QueryID
	for _, text := range texts {
		q, err := zstream.Compile(text)
		fail(err)
		var qopts []zstream.Option
		if adaptive {
			qopts = append(qopts, zstream.WithAdaptation())
		}
		id, err := rt.Register(q, qopts...)
		fail(err)
		ids = append(ids, id)
	}
	for _, id := range ids {
		doc, err := rt.Explain(id)
		fail(err)
		b, err := doc.JSON()
		fail(err)
		fmt.Println(string(b))
	}
	fail(rt.Close())
}

// runSingle is the original one-query, one-goroutine mode.
func runSingle(text string, in io.Reader, adaptive bool, disorder int64, quiet bool) {
	q, err := zstream.Compile(text)
	fail(err)

	matches := 0
	opts := []zstream.Option{zstream.OnMatch(func(m *zstream.Match) {
		matches++
		if quiet {
			return
		}
		fmt.Print(renderMatch(m))
	})}
	if adaptive {
		opts = append(opts, zstream.WithAdaptation())
	}
	if disorder > 0 {
		opts = append(opts, zstream.WithMaxDisorder(disorder))
	}
	eng, err := zstream.NewEngine(q, opts...)
	fail(err)

	n, err := feedCSV(eng, in)
	fail(err)
	eng.Flush()
	st := eng.Stats()
	fmt.Fprintf(os.Stderr, "events=%d matches=%d rounds=%d peak-mem=%.2fMB\n",
		n, matches, st.Rounds, float64(st.PeakMemBytes)/(1<<20))
}

// durFlags bundles the -wal-dir/-fsync/-checkpoint-interval/-recover
// durability flags for serve mode.
type durFlags struct {
	dir     string
	fsync   string
	ckptIv  int
	recover bool
}

// parseFsync maps the -fsync flag value to a policy.
func parseFsync(s string) (zstream.FsyncPolicy, error) {
	switch s {
	case "batch":
		return zstream.FsyncBatch, nil
	case "interval":
		return zstream.FsyncInterval, nil
	case "off":
		return zstream.FsyncOff, nil
	}
	return 0, fmt.Errorf("bad -fsync %q: want batch, interval or off", s)
}

// runServe hosts every query on one sharded runtime and prints the merged
// end-time-ordered match stream, each line tagged with its query index.
// SIGINT/SIGTERM stop the feed and drain gracefully: buffered events are
// flushed and pending matches delivered, bounded by -drain-timeout, and
// the drain outcome is reported on stderr before a clean exit. With
// -wal-dir the runtime is durable; with -recover it resumes an existing
// log, skipping input rows the log shows were already processed.
func runServe(texts []string, in io.Reader, shards int, partBy string, quiet, adaptive bool, listen string, drainTO time.Duration, df durFlags) {
	var opts []zstream.RuntimeOption
	if shards > 0 {
		opts = append(opts, zstream.WithShards(shards))
	}
	opts = append(opts, zstream.WithPartitionBy(partBy))

	perQuery := make([]int, len(texts))
	emit := func(i int) func(*zstream.Match) {
		return func(m *zstream.Match) {
			perQuery[i]++
			if quiet {
				return
			}
			fmt.Printf("q%d %s", i, renderMatch(m))
		}
	}
	registerAll := func(rt *zstream.Runtime) {
		for i, text := range texts {
			q, err := zstream.Compile(text)
			fail(err)
			qopts := []zstream.Option{zstream.OnMatch(emit(i))}
			if adaptive {
				qopts = append(qopts, zstream.WithAdaptation())
			}
			_, err = rt.Register(q, qopts...)
			fail(err)
		}
	}

	var rt *zstream.Runtime
	var skipRows uint64
	if df.dir != "" {
		pol, err := parseFsync(df.fsync)
		fail(err)
		dopts := []zstream.DurabilityOption{
			zstream.WithFsync(pol),
			// Recovered queries print under their original q<i> tag: ids
			// are assigned 1..n in registration order, matching the -query
			// flag order of the pre-crash invocation.
			zstream.WithRecoverHandler(func(id zstream.QueryID, src string) func(*zstream.Match) {
				i := int(id) - 1
				for i >= len(perQuery) {
					perQuery = append(perQuery, 0)
				}
				return emit(i)
			}),
		}
		if df.ckptIv > 0 {
			dopts = append(dopts, zstream.WithCheckpointEvery(df.ckptIv))
		}
		opts = append(opts, zstream.WithDurability(df.dir, dopts...))
		var info *zstream.RecoverInfo
		rt, info, err = zstream.NewDurableRuntime(opts...)
		fail(err)
		if info.Events > 0 || info.Queries > 0 {
			if !df.recover {
				fail(fmt.Errorf("wal dir %q holds an existing log (%s); pass -recover to resume", df.dir, info))
			}
			fmt.Fprintln(os.Stderr, info)
			skipRows = info.LastSeq
		}
		if info.Queries == 0 {
			registerAll(rt)
		}
	} else {
		rt = zstream.NewRuntime(opts...)
		registerAll(rt)
	}

	if listen != "" {
		ln, err := net.Listen("tcp", listen)
		fail(err)
		fmt.Fprintf(os.Stderr, "observability: http://%s/metrics http://%s/explain/{id}\n", ln.Addr(), ln.Addr())
		go func() { _ = http.Serve(ln, zstream.NewObservabilityHandler(rt)) }()
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var row uint64
	n, err := feedCSVFunc(in, func(ev *zstream.Event) error {
		if row++; row <= skipRows {
			// Already durable and replayed; feeding it again would
			// double-process.
			return nil
		}
		return rt.IngestContext(ctx, ev)
	})
	interrupted := ctx.Err() != nil
	if err != nil && !interrupted {
		fail(err)
	}
	if interrupted {
		// A second signal during the drain kills the process normally.
		stopSignals()
		dctx, cancel := context.WithTimeout(context.Background(), drainTO)
		rep, derr := rt.CloseContext(dctx)
		cancel()
		if derr != nil && !errors.Is(derr, context.DeadlineExceeded) {
			fail(derr)
		}
		fmt.Fprintf(os.Stderr, "drain: interrupted complete=%v shed-events=%d timeout=%s\n",
			rep.Complete, rep.EventsShed, drainTO)
	} else {
		fail(rt.Close())
	}

	st := rt.Stats()
	var counts []string
	for i, c := range perQuery {
		counts = append(counts, fmt.Sprintf("q%d=%d", i, c))
	}
	wal := ""
	if st.WALEnabled || st.WALErrors > 0 {
		wal = fmt.Sprintf(" wal-events=%d wal-fsyncs=%d wal-errors=%d",
			st.WAL.AppendedEvents, st.WAL.Fsyncs, st.WALErrors)
	}
	fmt.Fprintf(os.Stderr, "events=%d shards=%d queries=%d matches=%d (%s) shed=%d rounds=%d peak-mem=%.2fMB%s\n",
		n, st.Shards, len(perQuery), st.MatchesDelivered, strings.Join(counts, " "),
		st.EventsShed, st.Engine.Rounds, float64(st.Engine.PeakMemBytes)/(1<<20), wal)
}

// feedCSV parses the CSV stream into events and feeds them to eng.
func feedCSV(eng *zstream.Engine, in io.Reader) (int, error) {
	return feedCSVFunc(in, func(ev *zstream.Event) error {
		eng.Process(ev)
		return nil
	})
}

// feedCSVFunc parses the CSV stream and hands each event to process.
func feedCSVFunc(in io.Reader, process func(*zstream.Event) error) (int, error) {
	r := csv.NewReader(in)
	r.TrimLeadingSpace = true
	header, err := r.Read()
	if err != nil {
		return 0, fmt.Errorf("read header: %w", err)
	}
	tsCol := -1
	var attrs []string
	var cols []int
	for i, h := range header {
		if strings.EqualFold(h, "ts") {
			tsCol = i
			continue
		}
		attrs = append(attrs, h)
		cols = append(cols, i)
	}
	if tsCol < 0 {
		return 0, fmt.Errorf("no 'ts' column in header %v", header)
	}
	schema, err := zstream.NewSchema("csv", attrs...)
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		row, err := r.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(row[tsCol]), 10, 64)
		if err != nil {
			return n, fmt.Errorf("row %d: bad ts %q", n+2, row[tsCol])
		}
		vals := make([]zstream.Value, len(cols))
		for k, ci := range cols {
			cell := strings.TrimSpace(row[ci])
			if f, err := strconv.ParseFloat(cell, 64); err == nil {
				vals[k] = zstream.Float(f)
			} else {
				vals[k] = zstream.Str(cell)
			}
		}
		ev, err := zstream.NewEvent(schema, ts, vals...)
		if err != nil {
			return n, err
		}
		if err := process(ev); err != nil {
			return n, err
		}
		n++
	}
}

func renderMatch(m *zstream.Match) string {
	var b strings.Builder
	fmt.Fprintf(&b, "match [%d..%d]", m.Start, m.End)
	for _, f := range m.Fields {
		fmt.Fprintf(&b, " %s=", f.Name)
		if len(f.Events) > 0 {
			for i, e := range f.Events {
				if i > 0 {
					b.WriteByte('+')
				}
				fmt.Fprintf(&b, "@%d", e.Ts)
			}
		} else {
			b.WriteString(f.Value.String())
		}
	}
	b.WriteByte('\n')
	return b.String()
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "zstream-cli:", err)
		os.Exit(1)
	}
}
