// Command zstream-cli runs one CEP query over a CSV event file and prints
// the matches.
//
// The CSV's first row names the attributes; one column must be "ts" (the
// event timestamp in ticks). Remaining columns become event attributes:
// values parsing as numbers are numeric, everything else is a string.
//
// Usage:
//
//	zstream-cli -query "PATTERN A;B WHERE A.name='x' ... WITHIN 100" events.csv
//	zstream-cli -query-file q.txt -explain events.csv
//	cat events.csv | zstream-cli -query "..." -
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	zstream "repro"
)

func main() {
	var (
		queryText = flag.String("query", "", "query text")
		queryFile = flag.String("query-file", "", "file containing the query")
		explain   = flag.Bool("explain", false, "print the physical plan before running")
		adaptive  = flag.Bool("adaptive", false, "enable plan adaptation")
		disorder  = flag.Int64("max-disorder", 0, "tolerated timestamp disorder in ticks")
		quiet     = flag.Bool("quiet", false, "suppress per-match output; print only the summary")
	)
	flag.Parse()

	if *queryText == "" && *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		fail(err)
		*queryText = string(b)
	}
	if *queryText == "" {
		fmt.Fprintln(os.Stderr, "zstream-cli: -query or -query-file required")
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "zstream-cli: exactly one event file (or '-') required")
		os.Exit(2)
	}

	q, err := zstream.Compile(*queryText)
	fail(err)

	var in io.Reader = os.Stdin
	if flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		fail(err)
		defer f.Close()
		in = f
	}

	matches := 0
	opts := []zstream.Option{zstream.OnMatch(func(m *zstream.Match) {
		matches++
		if *quiet {
			return
		}
		fmt.Print(renderMatch(m))
	})}
	if *adaptive {
		opts = append(opts, zstream.WithAdaptation())
	}
	if *disorder > 0 {
		opts = append(opts, zstream.WithMaxDisorder(*disorder))
	}
	eng, err := zstream.NewEngine(q, opts...)
	fail(err)
	if *explain {
		fmt.Fprint(os.Stderr, eng.Explain())
	}

	n, err := feedCSV(eng, in)
	fail(err)
	eng.Flush()
	st := eng.Stats()
	fmt.Fprintf(os.Stderr, "events=%d matches=%d rounds=%d peak-mem=%.2fMB\n",
		n, matches, st.Rounds, float64(st.PeakMemBytes)/(1<<20))
}

func feedCSV(eng *zstream.Engine, in io.Reader) (int, error) {
	r := csv.NewReader(in)
	r.TrimLeadingSpace = true
	header, err := r.Read()
	if err != nil {
		return 0, fmt.Errorf("read header: %w", err)
	}
	tsCol := -1
	var attrs []string
	var cols []int
	for i, h := range header {
		if strings.EqualFold(h, "ts") {
			tsCol = i
			continue
		}
		attrs = append(attrs, h)
		cols = append(cols, i)
	}
	if tsCol < 0 {
		return 0, fmt.Errorf("no 'ts' column in header %v", header)
	}
	schema, err := zstream.NewSchema("csv", attrs...)
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		row, err := r.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(row[tsCol]), 10, 64)
		if err != nil {
			return n, fmt.Errorf("row %d: bad ts %q", n+2, row[tsCol])
		}
		vals := make([]zstream.Value, len(cols))
		for k, ci := range cols {
			cell := strings.TrimSpace(row[ci])
			if f, err := strconv.ParseFloat(cell, 64); err == nil {
				vals[k] = zstream.Float(f)
			} else {
				vals[k] = zstream.Str(cell)
			}
		}
		ev, err := zstream.NewEvent(schema, ts, vals...)
		if err != nil {
			return n, err
		}
		eng.Process(ev)
		n++
	}
}

func renderMatch(m *zstream.Match) string {
	var b strings.Builder
	fmt.Fprintf(&b, "match [%d..%d]", m.Start, m.End)
	for _, f := range m.Fields {
		fmt.Fprintf(&b, " %s=", f.Name)
		if len(f.Events) > 0 {
			for i, e := range f.Events {
				if i > 0 {
					b.WriteByte('+')
				}
				fmt.Fprintf(&b, "@%d", e.Ts)
			}
		} else {
			b.WriteString(f.Value.String())
		}
	}
	b.WriteByte('\n')
	return b.String()
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "zstream-cli:", err)
		os.Exit(1)
	}
}
