// Command zbench regenerates the paper's evaluation (§6): every figure and
// table, plus the design-choice ablations listed in DESIGN.md.
//
// Usage:
//
//	zbench                      # run everything at default scale
//	zbench -exp fig8,fig12      # run selected experiments
//	zbench -scale 0.25          # quarter-size workloads
//	zbench -list                # list experiment ids
//	zbench -json -out BENCH.json # machine-readable baseline (see below)
//
// Output is one text table per experiment, with the paper's expectations
// attached as notes; EXPERIMENTS.md records a full paper-vs-measured run.
//
// With -json, zbench instead emits one JSON document ("zstream-bench/v1"):
//
//	{
//	  "schema": "zstream-bench/v1",
//	  "scale": 0.1,
//	  "experiments": [
//	    {"id": "fig8", "title": "...", "series": [
//	      {"label": "sel=1/8", "runs": [
//	        {"plan": "left-deep", "events_per_sec": 94000,
//	         "matches": 51673, "allocs_per_event": 0.9,
//	         "bytes_per_event": 120.5, "peak_mem_mb": 0.21}]}]}]
//	}
//
// events_per_sec is machine-dependent; allocs_per_event and
// bytes_per_event are not. cmd/benchdiff compares two such documents and
// enforces the CI regression gate against the committed BENCH_*.json
// baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

var registry = []struct {
	id  string
	fn  func(experiments.Scale) (*experiments.Result, error)
	doc string
}{
	{"fig8", experiments.Fig8, "Query 4 throughput vs predicate selectivity"},
	{"fig9", experiments.Fig9, "Query 4 1/estimated-cost vs selectivity"},
	{"fig10", experiments.Fig10, "Query 5 throughput vs relative event rate"},
	{"fig11", experiments.Fig11, "Query 5 1/estimated-cost vs relative rate"},
	{"fig12", experiments.Fig12, "Query 6 throughput across regimes, 5 plans"},
	{"fig13", experiments.Fig13, "Query 6 1/estimated-cost across regimes"},
	{"tab3", experiments.Table3, "Query 6 peak memory across plans"},
	{"fig14", experiments.Fig14, "adaptive vs fixed plans on a drifting stream"},
	{"fig15", experiments.Fig15, "Query 7 negation, varying Oracle rate"},
	{"fig16", experiments.Fig16, "Query 7 negation, varying Sun rate"},
	{"tab4", experiments.Table4Exp, "web log class cardinalities"},
	{"fig17", experiments.Fig17, "Query 8 throughput on the web log"},
	{"tab5", experiments.Table5, "Query 8 peak memory"},
	{"opt", experiments.OptimizerTiming, "Algorithm 5 planning time"},
	{"abl-hash", experiments.AblationHash, "ablation: hash equality"},
	{"abl-eat", experiments.AblationEAT, "ablation: EAT push-down"},
	{"abl-batch", experiments.AblationBatchSize, "ablation: batch size"},
	{"fanout", experiments.Fanout, "multi-query fan-out: predicate router vs naive deliver-to-all"},
	{"durability", experiments.Durability, "durability plane: WAL off vs fsync policies"},
	{"fanout-shared", experiments.FanoutShared, "cross-query shared-subplan execution vs unshared"},
	{"threshold-family", experiments.ThresholdFamily, "range-atom dispatch: sorted-threshold tables vs interned residuals"},
}

// Doc is the -json output document ("zstream-bench/v1"). It deliberately
// omits timestamps and host details so regenerating a baseline on the same
// machine yields minimal diffs.
type Doc struct {
	Schema      string                `json:"schema"`
	Scale       float64               `json:"scale"`
	Experiments []*experiments.Result `json:"experiments"`
}

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		jsonFlag = flag.Bool("json", false, "emit the zstream-bench/v1 JSON document instead of text tables")
		out      = flag.String("out", "", "write output to this file instead of stdout")
	)
	flag.Parse()

	if *list {
		for _, e := range registry {
			fmt.Printf("%-10s %s\n", e.id, e.doc)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	doc := Doc{Schema: "zstream-bench/v1", Scale: *scale}
	var text strings.Builder
	for _, e := range registry {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		r, err := e.fn(experiments.Scale(*scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "zbench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		if *jsonFlag {
			fmt.Fprintf(os.Stderr, "zbench: %s done\n", e.id)
		} else {
			text.WriteString(r.Table())
			text.WriteByte('\n')
		}
		doc.Experiments = append(doc.Experiments, r)
	}
	if len(doc.Experiments) == 0 {
		fmt.Fprintf(os.Stderr, "zbench: no experiment matched %q (use -list)\n", *expFlag)
		os.Exit(1)
	}

	var payload []byte
	if *jsonFlag {
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "zbench: marshal: %v\n", err)
			os.Exit(1)
		}
		payload = append(b, '\n')
	} else {
		payload = []byte(text.String())
	}
	if *out != "" {
		if err := os.WriteFile(*out, payload, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "zbench: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		return
	}
	os.Stdout.Write(payload)
}
