// Command zbench regenerates the paper's evaluation (§6): every figure and
// table, plus the design-choice ablations listed in DESIGN.md.
//
// Usage:
//
//	zbench                      # run everything at default scale
//	zbench -exp fig8,fig12      # run selected experiments
//	zbench -scale 0.25          # quarter-size workloads
//	zbench -list                # list experiment ids
//
// Output is one text table per experiment, with the paper's expectations
// attached as notes; EXPERIMENTS.md records a full paper-vs-measured run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

var registry = []struct {
	id  string
	fn  func(experiments.Scale) (*experiments.Result, error)
	doc string
}{
	{"fig8", experiments.Fig8, "Query 4 throughput vs predicate selectivity"},
	{"fig9", experiments.Fig9, "Query 4 1/estimated-cost vs selectivity"},
	{"fig10", experiments.Fig10, "Query 5 throughput vs relative event rate"},
	{"fig11", experiments.Fig11, "Query 5 1/estimated-cost vs relative rate"},
	{"fig12", experiments.Fig12, "Query 6 throughput across regimes, 5 plans"},
	{"fig13", experiments.Fig13, "Query 6 1/estimated-cost across regimes"},
	{"tab3", experiments.Table3, "Query 6 peak memory across plans"},
	{"fig14", experiments.Fig14, "adaptive vs fixed plans on a drifting stream"},
	{"fig15", experiments.Fig15, "Query 7 negation, varying Oracle rate"},
	{"fig16", experiments.Fig16, "Query 7 negation, varying Sun rate"},
	{"tab4", experiments.Table4Exp, "web log class cardinalities"},
	{"fig17", experiments.Fig17, "Query 8 throughput on the web log"},
	{"tab5", experiments.Table5, "Query 8 peak memory"},
	{"opt", experiments.OptimizerTiming, "Algorithm 5 planning time"},
	{"abl-hash", experiments.AblationHash, "ablation: hash equality"},
	{"abl-eat", experiments.AblationEAT, "ablation: EAT push-down"},
	{"abl-batch", experiments.AblationBatchSize, "ablation: batch size"},
}

func main() {
	var (
		expFlag = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range registry {
			fmt.Printf("%-10s %s\n", e.id, e.doc)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	ran := 0
	for _, e := range registry {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		r, err := e.fn(experiments.Scale(*scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "zbench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(r.Table())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "zbench: no experiment matched %q (use -list)\n", *expFlag)
		os.Exit(1)
	}
}
