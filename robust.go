package zstream

import (
	"context"
	"time"

	"repro/internal/runtime"
)

// ErrQuarantined is matched (errors.Is) by the QueryFaultError returned
// for a query the runtime removed from execution after a contained fault.
var ErrQuarantined = runtime.ErrQuarantined

// QueryFault records one contained fault: the quarantined query, the
// dispatch site and shard the panic was recovered on, the panic message
// and stack, and the stream position the query's output is complete up to.
type QueryFault = runtime.QueryFault

// QueryFaultError is returned by Explain for a quarantined query; it
// matches ErrQuarantined under errors.Is and carries the QueryFault.
type QueryFaultError = runtime.QueryFaultError

// UnknownQueryError carries the id Unregister or Explain did not find; it
// matches ErrUnknownQuery under errors.Is.
type UnknownQueryError = runtime.UnknownQueryError

// OutOfOrderError carries the regressing timestamp Ingest rejected and the
// stream time it regressed behind; it matches ErrOutOfOrder under
// errors.Is.
type OutOfOrderError = runtime.OutOfOrderError

// OverloadPolicy selects what Ingest does when a worker shard's input
// queue is full; see the policy constants. Whatever the policy, only event
// batches are ever shed — registrations, unregistrations and snapshots
// always take effect.
type OverloadPolicy = runtime.OverloadPolicy

const (
	// OverloadBlock blocks Ingest until the slow shard drains — classic
	// backpressure, the default, never sheds.
	OverloadBlock = runtime.OverloadBlock
	// OverloadBlockWithTimeout blocks up to the configured overload
	// timeout (WithOverloadTimeout), then sheds the stuck shard's batch.
	OverloadBlockWithTimeout = runtime.OverloadBlockWithTimeout
	// OverloadDropNewest sheds the incoming batch when the queue is full,
	// preferring queued (older) work.
	OverloadDropNewest = runtime.OverloadDropNewest
	// OverloadDropOldest sheds the oldest queued batch to make room,
	// preferring fresh data.
	OverloadDropOldest = runtime.OverloadDropOldest
)

// DrainReport is CloseContext's account of a bounded drain: whether every
// engine flushed and every match delivered before the deadline, and how
// many buffered events were shed because they could not be.
type DrainReport = runtime.DrainReport

// WithOverloadPolicy selects the ingest overload policy (default
// OverloadBlock). Shed events are counted per shard in
// RuntimeStats.ShedByShard and the zstream_ingest_shed_events_total
// metric.
func WithOverloadPolicy(p OverloadPolicy) RuntimeOption {
	return func(c *runtime.Config) { c.Overload = p }
}

// WithOverloadTimeout bounds the wait under OverloadBlockWithTimeout
// (default 50ms).
func WithOverloadTimeout(d time.Duration) RuntimeOption {
	return func(c *runtime.Config) { c.OverloadTimeout = d }
}

// IngestContext is Ingest with a deadline: when backpressure would block
// past ctx's expiry, the undelivered shard batches of the current flush
// are shed (counted in RuntimeStats.EventsShed) and ctx's error returned.
// Under a shedding overload policy it behaves like Ingest — those policies
// never block long enough to notice the deadline.
func (r *Runtime) IngestContext(ctx context.Context, ev *Event) error {
	return r.rt.IngestContext(ctx, ev)
}

// CloseContext is Close with a deadline: it flushes and drains what it can
// before ctx expires, always stops the workers, and reports whether the
// drain completed and how many buffered events were dropped. A timed-out
// drain may be re-awaited by calling CloseContext again with a fresh
// context.
func (r *Runtime) CloseContext(ctx context.Context) (DrainReport, error) {
	return r.rt.CloseContext(ctx)
}

// Faults returns every contained query fault recorded so far, sorted by
// query id. A faulted query is quarantined: its engines are dropped on
// every shard, its Explain returns a QueryFaultError, and every other
// query keeps running untouched. Unregistering a quarantined id removes
// its registry entry (the fault record stays); re-registering the same
// query text starts a fresh group. Faults keeps working after Close.
func (r *Runtime) Faults() []QueryFault { return r.rt.Faults() }
