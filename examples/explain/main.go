// Explain: the observability plane in action. Registers three stock
// monitoring queries on the sharded runtime — a hash-dispatched spike
// detector plus a two-query shared-prefix family, partition-local
// variants of the stockmonitor example's patterns (the paper's Q1-Q3
// correlate across symbols, which a name-partitioned runtime cannot do;
// examples/stockmonitor runs them verbatim on standalone engines) — and
// walks the ops surface:
//
//  1. the planned EXPLAIN before any event arrives (cost-model estimates,
//     chosen plan shape, router subscription);
//  2. a live EXPLAIN after ingest, where the same document carries real
//     operator counters and both selectivity views (the router's
//     unconditioned admission rate vs the leaf's conditioned pass rate);
//  3. the consumer's sharing section, naming the producer subplan its
//     prefix work was delegated to;
//  4. a metrics snapshot diff across the second half of the stream, the
//     same numbers GET /metrics exposes in Prometheus form.
//
// The equivalent CLI invocations are:
//
//	zstream-cli -serve -query "..." -explain            # step 1
//	zstream-cli -serve -query "..." -listen :9090 ...   # steps 2-4, live
package main

import (
	"fmt"
	"log"

	zstream "repro"
	"repro/internal/workload"
)

const (
	nEvents = 40_000
	symbols = 4
)

func main() {
	rt := zstream.NewRuntime(
		zstream.WithShards(4),
		zstream.WithPartitionBy("name"),
	)

	register := func(src string) zstream.QueryID {
		q, err := zstream.Compile(src)
		if err != nil {
			log.Fatal(err)
		}
		id, err := rt.Register(q, zstream.OnMatch(func(*zstream.Match) {}))
		if err != nil {
			log.Fatal(err)
		}
		return id
	}

	// A spike detector on one symbol: the equality atoms are served by the
	// router's hash dispatch, the price bounds become leaf filters.
	spike := register(`
		PATTERN Low; High
		WHERE Low.name = 'S00' AND Low.price < 20
		  AND High.name = 'S00' AND High.price > 90
		WITHIN 50 units
		RETURN Low, High`)

	// A shared-prefix family: both queries agree on the Dip1;Dip2 prefix
	// and differ only in the recovery threshold, so the runtime builds the
	// dip join once and the second registrant reads the shared producer.
	dip := func(threshold float64) string {
		return fmt.Sprintf(`
		PATTERN Dip1; Dip2; Rec
		WHERE Dip1.name = 'S01' AND Dip1.price > 45
		  AND Dip2.name = 'S01' AND Dip2.price < Dip1.price - 40
		  AND Rec.name = 'S01' AND Rec.price > %g
		WITHIN 100 units
		RETURN Dip1, Dip2, Rec`, threshold)
	}
	register(dip(90))
	consumer := register(dip(95))

	// --- 1. the planned view: EXPLAIN before any event ------------------
	doc, err := rt.Explain(spike)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== EXPLAIN before ingest (planned view) ===")
	fmt.Printf("strategy=%s use_hash=%v  cost: source=%s est_card=%.2f est_cost=%.0f\n",
		doc.Strategy.Strategy, doc.Strategy.UseHash,
		doc.Cost.Source, doc.Cost.TotalCard, doc.Cost.TotalCost)
	for _, cc := range doc.Cost.Classes {
		fmt.Printf("  class %-4s rate=%.2f single_sel=%.2f card=%.1f\n",
			cc.Class, cc.Rate, cc.SingleSel, cc.Card)
	}
	fmt.Print(doc.Text)

	// --- ingest, with a metrics snapshot at the halfway mark -------------
	names := make([]string, symbols)
	weights := make([]float64, symbols)
	for i := range names {
		names[i] = fmt.Sprintf("S%02d", i)
		weights[i] = 1
	}
	events := workload.GenStocks(workload.StockSpec{
		N: nEvents, Seed: 7, Names: names, Weights: weights,
	})
	half := len(events) / 2
	for _, ev := range events[:half] {
		if err := rt.Ingest(ev); err != nil {
			log.Fatal(err)
		}
	}
	mid := rt.Metrics()
	for _, ev := range events[half:] {
		if err := rt.Ingest(ev); err != nil {
			log.Fatal(err)
		}
	}
	end := rt.Metrics()

	// --- 2. the live view: same document, real counters ------------------
	doc, err = rt.Explain(spike)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== EXPLAIN after ingest (live counters) ===")
	fmt.Printf("router mode=%s events_routed=%d\n", doc.Router.Mode, doc.Router.Events)
	for _, rc := range doc.Router.Classes {
		fmt.Printf("  class %-4s admitted=%-6d admission_rate=%.3f (unconditioned)  "+
			"leaf %d/%d pass_rate=%.3f (conditioned)\n",
			rc.Class, rc.Admitted, rc.AdmissionRate,
			rc.LeafPassed, rc.LeafSeen, rc.PassRate)
	}
	fmt.Print(doc.Text)

	// --- 3. the sharing section of a shared-prefix consumer --------------
	cdoc, err := rt.Explain(consumer)
	if err != nil {
		log.Fatal(err)
	}
	sh := cdoc.Sharing
	fmt.Println("\n=== sharing section of the second dip query ===")
	fmt.Printf("group=%d members=%d shared_prefix_len=%d producer=%d readers=%d\n",
		sh.GroupID, sh.Members, sh.PrefixLen, sh.ProducerID, sh.ProducerReaders)
	if sh.ProducerTree != nil {
		fmt.Printf("producer emitted %d prefix records for %d readers\n",
			sh.ProducerTree.Out, sh.ProducerReaders)
	}

	// --- 4. metrics snapshot diff over the second half -------------------
	fmt.Println("\n=== metrics diff (halfway -> end of stream) ===")
	fmt.Printf("events ingested:    %6d -> %d\n",
		mid.Stats.EventsIngested, end.Stats.EventsIngested)
	fmt.Printf("engine deliveries:  %6d -> %d  (router fan-out %.2f of naive)\n",
		mid.Stats.EngineDeliveries, end.Stats.EngineDeliveries,
		float64(end.Stats.EngineDeliveries)/float64(end.Stats.EventsIngested*uint64(end.Stats.EngineGroups)))
	fmt.Printf("router residuals:   %6d -> %d\n",
		mid.Router.ResidualEvals, end.Router.ResidualEvals)
	for i, q := range end.Queries {
		fmt.Printf("query %d: records_in %6d -> %-6d records_out %5d -> %-5d matches %d -> %d\n",
			q.ID, mid.Queries[i].Operators.In, q.Operators.In,
			mid.Queries[i].Operators.Out, q.Operators.Out,
			mid.Queries[i].Engine.Matches, q.Engine.Matches)
	}
	for i, p := range end.Producers {
		fmt.Printf("producer %d: events %6d -> %-6d records_out %5d -> %d\n",
			p.ID, mid.Producers[i].Events, p.Events,
			mid.Producers[i].Operators.Out, p.Operators.Out)
	}

	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}
}
