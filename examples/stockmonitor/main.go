// Stockmonitor runs the paper's three motivating stock-market queries
// (§3.2) concurrently over one synthetic feed:
//
//   - Query 1: a stock first 5% above the Google price, then 3% below it;
//   - Query 2: a 20% rise through a threshold with no dip in between
//     (negation, evaluated with the NSEQ push-down);
//   - Query 3: the total volume of 5 successive Google trades exceeding a
//     bound before another stock jumps 20% (Kleene closure + aggregate).
package main

import (
	"fmt"
	"log"
	"math/rand"

	zstream "repro"
)

func main() {
	queries := []struct {
		name string
		src  string
	}{
		{"Q1 rise-then-fall vs Google", `
			PATTERN T1; T2; T3
			WHERE T1.name = T3.name
			  AND T2.name = 'Google'
			  AND T1.price > 1.05 * T2.price
			  AND T3.price < 0.97 * T2.price
			WITHIN 10 secs
			RETURN T1, T2, T3`},
		// The paper enforces "same stock" structurally by hash-partitioning
		// the stream on name; without partitioning, T1.name = T3.name must
		// be stated explicitly (predicates through the negated T2 only
		// gate which events negate).
		{"Q2 breakout without dip", `
			PATTERN T1; !T2; T3
			WHERE T1.name = T3.name
			  AND T2.name = T3.name
			  AND T1.price > 100
			  AND T2.price < 100
			  AND T3.price > 120
			WITHIN 10 secs
			RETURN T1, T3`},
		{"Q3 Google volume impact", `
			PATTERN T1; T2^5; T3
			WHERE T1.name = T3.name
			  AND T2.name = 'Google'
			  AND sum(T2.volume) > 2500
			  AND T3.price > 1.2 * T1.price
			WITHIN 10 secs
			RETURN T1, sum(T2.volume) AS gvol, T3`},
	}

	var engines []*zstream.Engine
	counts := make([]int, len(queries))
	for i, qd := range queries {
		q, err := zstream.Compile(qd.src)
		if err != nil {
			log.Fatalf("%s: %v", qd.name, err)
		}
		i := i
		name := qd.name
		eng, err := zstream.NewEngine(q, zstream.OnMatch(func(m *zstream.Match) {
			counts[i]++
			if counts[i] <= 3 { // print the first few matches per query
				fmt.Printf("[%s] match at [%d..%d]ms", name, m.Start, m.End)
				for _, f := range m.Fields {
					if len(f.Events) == 1 {
						fmt.Printf(" %s=%s@%.2f", f.Name, f.Events[0].Get("name").S, f.Events[0].Get("price").F)
					} else if len(f.Events) > 1 {
						fmt.Printf(" %s=%d events", f.Name, len(f.Events))
					} else {
						fmt.Printf(" %s=%s", f.Name, f.Value)
					}
				}
				fmt.Println()
			}
		}))
		if err != nil {
			log.Fatalf("%s: %v", qd.name, err)
		}
		engines = append(engines, eng)
	}

	// synthetic feed: random walks around 100 for a few symbols, Google
	// trading densely. Demo-sized: the 10s windows over a 25ms tick make
	// match counts grow cubically with the feed length, and CI smoke-runs
	// every example to completion.
	rng := rand.New(rand.NewSource(42))
	symbols := []string{"IBM", "Sun", "Oracle", "Google"}
	price := map[string]float64{"IBM": 100, "Sun": 100, "Oracle": 100, "Google": 100}
	const n = 6000
	for i := 0; i < n; i++ {
		name := symbols[rng.Intn(len(symbols))]
		price[name] *= 1 + (rng.Float64()-0.5)*0.08
		if price[name] < 50 {
			price[name] = 50
		}
		ev := zstream.NewStock(uint64(i+1), int64(i)*25, int64(i), name,
			price[name], float64(100+rng.Intn(900)))
		for _, eng := range engines {
			// each engine owns its copy (engines assign sequence numbers)
			cp := *ev
			eng.Process(&cp)
		}
	}
	for i, eng := range engines {
		eng.Flush()
		st := eng.Stats()
		fmt.Printf("%-28s matches=%-6d rounds=%-5d peak-mem=%.2fMB\n",
			queries[i].name, st.Matches, st.Rounds, float64(st.PeakMemBytes)/(1<<20))
	}
}
