// Adaptive demonstrates §5.3 plan adaptation: the stream's statistics flip
// mid-run (the rare class changes), and the engine re-plans on the fly.
// Compare the adaptive engine's wall time against the same engine pinned to
// its initial plan.
package main

import (
	"fmt"
	"log"
	"time"

	zstream "repro"
	"repro/internal/workload"
)

func main() {
	src := `
		PATTERN IBM; Sun; Oracle; Google
		WHERE IBM.name = 'IBM' AND Sun.name = 'Sun'
		  AND Oracle.name = 'Oracle' AND Google.name = 'Google'
		WITHIN 100 units`

	// phase 1: IBM rare (left-deep is right); phase 2: Google rare
	// (right-deep is right)
	const n = 30_000
	phase1 := workload.GenStocks(workload.StockSpec{
		N: n, Seed: 1, Names: []string{"IBM", "Sun", "Oracle", "Google"},
		Weights: []float64{1, 60, 60, 60}})
	phase2 := workload.GenStocks(workload.StockSpec{
		N: n, Seed: 2, Names: []string{"IBM", "Sun", "Oracle", "Google"},
		Weights: []float64{60, 60, 60, 1}})
	all := workload.Concat(phase1, phase2)

	run := func(label string, opts ...zstream.Option) {
		q, err := zstream.Compile(src)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := zstream.NewEngine(q, opts...)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		for _, ev := range all {
			cp := *ev
			eng.Process(&cp)
		}
		eng.Flush()
		st := eng.Stats()
		fmt.Printf("%-22s %8.0f events/s  matches=%d  plan-switches=%d\n",
			label, float64(len(all))/time.Since(start).Seconds(), st.Matches, st.PlanSwitches)
	}

	run("static left-deep", zstream.WithPlan(zstream.PlanLeftDeep))
	run("static right-deep", zstream.WithPlan(zstream.PlanRightDeep))
	run("adaptive", zstream.WithAdaptation())
}
