// Multiquery: serve several per-symbol patterns concurrently on the
// sharded runtime. The stream is partitioned by stock symbol across one
// worker per core; each worker owns a private engine per query, and
// matches from every query and shard arrive merged in end-time order.
package main

import (
	"fmt"
	"log"
	"runtime"

	zstream "repro"
	"repro/internal/workload"
)

func main() {
	// Three monitoring patterns, all partition-local over "name": every
	// predicate equates the symbol across classes, so sharded results are
	// identical to a single global engine's.
	patterns := map[string]string{
		"rally": `
			PATTERN T1; T2; T3
			WHERE T1.name = T2.name AND T2.name = T3.name
			  AND T1.price < T2.price AND T2.price < T3.price
			WITHIN 30 units
			RETURN T1, T2, T3`,
		"spike": `
			PATTERN Low; High
			WHERE Low.name = High.name AND High.price > 1.8 * Low.price
			WITHIN 20 units
			RETURN Low, High`,
		"crash": `
			PATTERN High; Low
			WHERE High.name = Low.name AND Low.price < 0.2 * High.price
			WITHIN 20 units
			RETURN High, Low`,
	}

	rt := zstream.NewRuntime(
		zstream.WithShards(runtime.GOMAXPROCS(0)),
		zstream.WithPartitionBy("name"),
	)

	counts := map[string]int{}
	shown := 0
	for name, src := range patterns {
		name := name
		q, err := zstream.Compile(src)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if _, err := rt.Register(q, zstream.OnMatch(func(m *zstream.Match) {
			counts[name]++
			if shown < 8 { // first few, to keep the demo readable
				shown++
				sym := m.Fields[0].Events[0].Get("name").S
				fmt.Printf("%-5s %s [%d..%d]\n", name, sym, m.Start, m.End)
			}
		})); err != nil {
			log.Fatalf("register %s: %v", name, err)
		}
	}

	// A 16-symbol synthetic tick stream (one event per tick).
	names := make([]string, 16)
	weights := make([]float64, 16)
	for i := range names {
		names[i] = fmt.Sprintf("SYM%02d", i)
		weights[i] = 1
	}
	events := workload.GenStocks(workload.StockSpec{
		N: 50_000, Seed: 99, Names: names, Weights: weights,
	})
	for _, ev := range events {
		if err := rt.Ingest(ev); err != nil {
			log.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}

	st := rt.Stats()
	fmt.Printf("\n%d events over %d shards, %d queries:\n",
		st.EventsIngested, st.Shards, len(patterns))
	for name := range patterns {
		fmt.Printf("  %-5s %6d matches\n", name, counts[name])
	}
	fmt.Printf("merged deliveries=%d assembly rounds=%d\n",
		st.MatchesDelivered, st.Engine.Rounds)
}
