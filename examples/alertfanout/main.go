// Alertfanout: serve hundreds of parameterized standing alerts — the
// "alert me when <symbol> dips N%" workload — on one runtime. Most
// queries are per-symbol variants of one template, so the predicate-
// indexed router delivers each event only to the handful of engines whose
// equality atoms match its symbol, instead of all of them; the printed
// stats show the effective fan-out (deliveries per event) next to the
// registered query count.
package main

import (
	"fmt"
	"log"
	"runtime"

	zstream "repro"
	"repro/internal/workload"
)

const (
	symbols = 64
	// 4 alert tiers per symbol: dip thresholds of 60, 70, 80, 90 price
	// points within the window.
	tiers   = 4
	nEvents = 100_000
)

func main() {
	rt := zstream.NewRuntime(
		zstream.WithShards(runtime.GOMAXPROCS(0)),
		zstream.WithPartitionBy("name"),
	)

	// Register symbols x tiers parameterized dip alerts plus one
	// market-wide alert with no symbol equality: it can't use hash
	// dispatch, so the router checks its (deduplicated) price residuals
	// against every event and delivers only the extreme-priced ones.
	counts := make([]int, symbols*tiers)
	for i := 0; i < symbols*tiers; i++ {
		i := i
		sym := fmt.Sprintf("S%02d", i%symbols)
		drop := 60 + 10*(i/symbols)
		q, err := zstream.Compile(fmt.Sprintf(`
			PATTERN High; Low
			WHERE High.name = '%s' AND Low.name = '%s'
			  AND Low.price < High.price - %d
			WITHIN 50 units
			RETURN High, Low`, sym, sym, drop))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := rt.Register(q, zstream.OnMatch(func(*zstream.Match) { counts[i]++ })); err != nil {
			log.Fatal(err)
		}
	}
	crashes := 0
	crash, err := zstream.Compile(`
		PATTERN High; Low
		WHERE High.price > 99 AND Low.price < 1
		WITHIN 20 units
		RETURN High, Low`)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rt.Register(crash, zstream.OnMatch(func(*zstream.Match) { crashes++ })); err != nil {
		log.Fatal(err)
	}

	names := make([]string, symbols)
	weights := make([]float64, symbols)
	for i := range names {
		names[i] = fmt.Sprintf("S%02d", i)
		weights[i] = 1
	}
	events := workload.GenStocks(workload.StockSpec{
		N: nEvents, Seed: 7, Names: names, Weights: weights,
	})
	for _, ev := range events {
		if err := rt.Ingest(ev); err != nil {
			log.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}

	st := rt.Stats()
	total := 0
	for _, c := range counts {
		total += c
	}
	nQueries := symbols*tiers + 1
	fmt.Printf("%d standing queries over %d events on %d shards\n",
		nQueries, st.EventsIngested, st.Shards)
	fmt.Printf("alerts fired: %d per-symbol dips, %d market crashes\n", total, crashes)
	fmt.Printf("engine deliveries: %d (%.1f per event vs %d naive) — %.0fx fan-out reduction\n",
		st.EngineDeliveries,
		float64(st.EngineDeliveries)/float64(st.EventsIngested),
		nQueries,
		float64(nQueries)*float64(st.EventsIngested)/float64(st.EngineDeliveries))
	for i, c := range counts {
		if c > 0 && i%symbols == 0 { // one sample tier row
			fmt.Printf("sample: S00 dip>%d fired %d times\n", 60+10*(i/symbols), c)
		}
	}
}
