// Quickstart: compile a simple sequential pattern, feed a handful of stock
// ticks, and print the matches.
package main

import (
	"fmt"
	"log"

	zstream "repro"
)

func main() {
	// A price spike: any stock rising more than 10% between two
	// consecutive observations of the same symbol within 5 seconds.
	q, err := zstream.Compile(`
		PATTERN Low; High
		WHERE Low.name = High.name
		  AND High.price > 1.10 * Low.price
		WITHIN 5 secs
		RETURN Low, High, High.price - Low.price AS jump`)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := zstream.NewEngine(q, zstream.OnMatch(func(m *zstream.Match) {
		low := m.Fields[0].Events[0]
		high := m.Fields[1].Events[0]
		fmt.Printf("spike on %s: %.2f -> %.2f (jump %.2f) within %dms\n",
			low.Get("name").S, low.Get("price").F, high.Get("price").F,
			m.Fields[2].Value.F, m.End-m.Start)
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("physical plan:")
	fmt.Print(eng.Explain())

	ticks := []struct {
		ts    int64
		name  string
		price float64
	}{
		{1000, "IBM", 100}, {1500, "Sun", 50}, {2000, "IBM", 103},
		{2500, "Sun", 58}, {3000, "IBM", 114}, {9000, "IBM", 140},
	}
	for i, t := range ticks {
		eng.Process(zstream.NewStock(uint64(i+1), t.ts, int64(i), t.name, t.price, 100))
	}
	eng.Flush()

	st := eng.Stats()
	fmt.Printf("processed %d events, %d matches, %d assembly rounds\n",
		st.Events, st.Matches, st.Rounds)
}
