// Weblog runs the paper's §6.5 web-access pattern (Query 8) over the
// synthetic MIT DB-group web log: visitors who download a publication,
// then browse a project page, then a course page from the same IP within
// ten hours.
package main

import (
	"fmt"
	"log"

	zstream "repro"
	"repro/internal/workload"
)

func main() {
	const n = 150_000 // 1/10th of the paper's 1.5M records
	span := int64(float64(30*24*3_600_000) * n / 1_500_000)
	events, counts := workload.GenWeblog(workload.WeblogSpec{N: n, Seed: 17, SpanTicks: span})
	fmt.Printf("generated web log: %v\n", counts)

	q, err := zstream.Compile(`
		PATTERN P; J; C
		WHERE P.desc = 'publication' AND J.desc = 'project' AND C.desc = 'courses'
		  AND P.ip = J.ip = C.ip
		WITHIN 10 hours
		RETURN P, J, C`)
	if err != nil {
		log.Fatal(err)
	}

	shown := 0
	eng, err := zstream.NewEngine(q, zstream.OnMatch(func(m *zstream.Match) {
		if shown < 5 {
			p := m.Fields[0].Events[0]
			fmt.Printf("visitor %s: %s -> %s -> %s\n",
				p.Get("ip").S, p.Get("url").S,
				m.Fields[1].Events[0].Get("url").S,
				m.Fields[2].Events[0].Get("url").S)
			shown++
		}
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("physical plan (cost-based; publications are rarest, so they join first):")
	fmt.Print(eng.Explain())

	for _, ev := range events {
		eng.Process(ev)
	}
	eng.Flush()
	st := eng.Stats()
	fmt.Printf("%d accesses scanned, %d pattern matches, peak-mem=%.2fMB\n",
		st.Events, st.Matches, float64(st.PeakMemBytes)/(1<<20))
}
