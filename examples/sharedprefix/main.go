// Sharedprefix: serve a family of parameterized three-step alerts —
// "after the <symbol> dip pattern, alert me when price recovers past N" —
// and let the runtime share their common work. All queries per symbol
// agree on the same canonical `Dip1; Dip2` prefix, so one shared subplan
// per shard buffers and joins it once while every query's engine only
// evaluates its private recovery threshold; textually identical queries
// collapse onto one engine entirely. The printed stats show physical
// engine groups, shared producers and consumers next to the registered
// query count, and the same run with sharing disabled for comparison.
package main

import (
	"fmt"
	"log"
	"time"

	zstream "repro"
	"repro/internal/workload"
)

const (
	symbols = 8
	// alert tiers per symbol: recovery thresholds spread over the top of
	// the price range, plus one duplicated "house default" alert per
	// symbol registered by many hypothetical users.
	tiers      = 24
	duplicates = 8
	nEvents    = 100_000
)

func run(share bool) (matches int, elapsed time.Duration, st zstream.RuntimeStats) {
	rt := zstream.NewRuntime(
		zstream.WithShards(4),
		zstream.WithPartitionBy("name"),
		zstream.WithSubplanSharing(share),
	)
	register := func(src string) {
		q, err := zstream.Compile(src)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := rt.Register(q, zstream.OnMatch(func(*zstream.Match) { matches++ })); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < symbols*tiers; i++ {
		sym := fmt.Sprintf("S%02d", i%symbols)
		th := 90 + float64(i/symbols)*0.25
		register(fmt.Sprintf(`
			PATTERN Dip1; Dip2; Rec
			WHERE Dip1.name = '%s' AND Dip1.price > 45
			  AND Dip2.name = '%s' AND Dip2.price < Dip1.price - 85
			  AND Rec.name = '%s' AND Rec.price > %g
			WITHIN 100 units
			RETURN Dip1, Dip2, Rec`, sym, sym, sym, th))
	}
	// The "house default" alert, registered once per hypothetical user:
	// textually identical, so sharing runs one engine and fans out.
	for u := 0; u < duplicates; u++ {
		for s := 0; s < symbols; s++ {
			sym := fmt.Sprintf("S%02d", s)
			register(fmt.Sprintf(`
				PATTERN Dip1; Dip2; Rec
				WHERE Dip1.name = '%s' AND Dip1.price > 45
				  AND Dip2.name = '%s' AND Dip2.price < Dip1.price - 85
				  AND Rec.name = '%s' AND Rec.price > 97
				WITHIN 100 units
				RETURN Dip1, Dip2, Rec`, sym, sym, sym))
		}
	}

	names := make([]string, symbols)
	weights := make([]float64, symbols)
	for i := range names {
		names[i] = fmt.Sprintf("S%02d", i)
		weights[i] = 1
	}
	events := workload.GenStocks(workload.StockSpec{N: nEvents, Seed: 7, Names: names, Weights: weights})

	start := time.Now()
	for _, ev := range events {
		if err := rt.Ingest(ev); err != nil {
			log.Fatal(err)
		}
	}
	st = rt.Stats()
	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}
	return matches, time.Since(start), st
}

func main() {
	sharedMatches, sharedDur, st := run(true)
	fmt.Printf("queries registered:      %d\n", st.LiveQueries)
	fmt.Printf("physical engine groups:  %d (%d queries aliased onto duplicates)\n",
		st.EngineGroups, st.LiveQueries-st.EngineGroups)
	fmt.Printf("shared subplans:         %d producers, %d consumer groups\n",
		st.SharedSubplans, st.SharedPrefixConsumers)
	fmt.Printf("shared run:              %d matches in %v (%.0f events/s)\n",
		sharedMatches, sharedDur.Round(time.Millisecond), nEvents/sharedDur.Seconds())

	unsharedMatches, unsharedDur, _ := run(false)
	fmt.Printf("unshared run:            %d matches in %v (%.0f events/s)\n",
		unsharedMatches, unsharedDur.Round(time.Millisecond), nEvents/unsharedDur.Seconds())
	if sharedMatches != unsharedMatches {
		log.Fatalf("match counts diverge: shared=%d unshared=%d", sharedMatches, unsharedMatches)
	}
	fmt.Printf("identical matches, %.1fx throughput with sharing\n",
		unsharedDur.Seconds()/sharedDur.Seconds())
}
